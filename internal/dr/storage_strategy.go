package dr

// StorageStrategy answers DR dispatches with a behind-the-meter battery:
// it discharges for the duration of each event and recharges outside
// events at a throttled rate so the rebound cannot create a new peak.
// Unlike compute curtailment, battery response has no mission impact —
// its operational cost is cycle wear, priced per kWh of throughput.

import (
	"errors"
	"fmt"

	"repro/internal/market"
	"repro/internal/storage"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// StorageStrategy is a battery-backed DR response.
type StorageStrategy struct {
	// Battery is the storage system (required).
	Battery *storage.Battery
	// CycleCostPerKWh prices battery wear per kWh discharged.
	CycleCostPerKWh units.EnergyPrice
	// RechargeHeadroom bounds recharge draw outside events, as a
	// fraction of the battery's MaxCharge (default 1.0 = full rate).
	RechargeHeadroom float64
}

// Name implements Strategy.
func (s *StorageStrategy) Name() string {
	if s.Battery == nil {
		return "storage(unconfigured)"
	}
	return fmt.Sprintf("storage(%s)", s.Battery.Capacity)
}

// Respond implements Strategy.
func (s *StorageStrategy) Respond(baseline *timeseries.PowerSeries, events []market.Event) (*Response, error) {
	if s.Battery == nil {
		return nil, errors.New("dr: storage strategy needs a battery")
	}
	if s.CycleCostPerKWh < 0 {
		return nil, errors.New("dr: cycle cost must be non-negative")
	}
	headroom := s.RechargeHeadroom
	if headroom == 0 {
		headroom = 1
	}
	if headroom < 0 || headroom > 1 {
		return nil, errors.New("dr: recharge headroom must be in (0,1]")
	}
	rechargeRate := units.Power(float64(s.Battery.MaxCharge) * headroom)
	// Recharging must never set a new billing peak: outside events the
	// draw is bounded by the baseline's own peak.
	basePeak, _, err := baseline.Peak()
	if err != nil {
		return nil, err
	}
	res, err := storage.RunPolicy(s.Battery, baseline, func(i int, load units.Power, soc float64) units.Power {
		if inEvent(baseline.TimeAt(i), events) {
			return -s.Battery.MaxDischarge // discharge as hard as allowed
		}
		room := basePeak - load
		if room <= 0 {
			return 0
		}
		return units.MinPower(rechargeRate, room)
	})
	if err != nil {
		return nil, err
	}
	return &Response{
		Load:            res.Net,
		CurtailedEnergy: res.Discharged,
		OpCost:          s.CycleCostPerKWh.Cost(res.Discharged + res.Charged),
	}, nil
}

var _ Strategy = (*StorageStrategy)(nil)
