package grid

// Supply-mix accounting: the machinery behind CSCS's 80 % renewable
// requirement (§4). Two accounting conventions exist and diverge, and
// the difference matters for contract language:
//
//   - annual matching: renewable energy bought over the year ÷ energy
//     consumed over the year (how such clauses are usually settled);
//   - time matching: in every metering interval, only renewable
//     generation actually available then counts toward the share.
//
// A site that consumes flat 24×7 against a solar-heavy mix can be 100 %
// renewable annually while far lower time-matched.

import (
	"errors"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// MixReport summarizes renewable coverage of a consumption profile.
type MixReport struct {
	// Consumed is the site's total energy.
	Consumed units.Energy
	// RenewableAvailable is the renewable generation allocated to the
	// site over the period (its contracted share of the fleet).
	RenewableAvailable units.Energy
	// AnnualShare is min(1, RenewableAvailable/Consumed).
	AnnualShare float64
	// TimeMatchedShare counts, interval by interval, only renewable
	// energy actually generated while the site consumed.
	TimeMatchedShare float64
}

// MatchingGap returns annual minus time-matched share (≥ 0 in practice).
func (r *MixReport) MatchingGap() float64 { return r.AnnualShare - r.TimeMatchedShare }

// RenewableShare computes both accounting conventions for a consumption
// profile against an allocated renewable-generation profile (aligned
// series: same start, interval, length).
func RenewableShare(consumption, renewable *timeseries.PowerSeries) (*MixReport, error) {
	if consumption == nil || renewable == nil {
		return nil, errors.New("grid: mix accounting needs both profiles")
	}
	if consumption.Len() == 0 {
		return nil, errors.New("grid: empty consumption profile")
	}
	if !consumption.Start().Equal(renewable.Start()) ||
		consumption.Interval() != renewable.Interval() ||
		consumption.Len() != renewable.Len() {
		return nil, timeseries.ErrMisaligned
	}
	rep := &MixReport{
		Consumed:           consumption.Energy(),
		RenewableAvailable: renewable.Energy(),
	}
	if rep.Consumed <= 0 {
		return nil, errors.New("grid: consumption must be positive")
	}
	// Annual matching.
	rep.AnnualShare = float64(rep.RenewableAvailable) / float64(rep.Consumed)
	if rep.AnnualShare > 1 {
		rep.AnnualShare = 1
	}
	// Time matching: per interval, covered = min(consumed, renewable).
	var covered float64
	h := consumption.Interval().Hours()
	for i := 0; i < consumption.Len(); i++ {
		c := float64(consumption.At(i))
		r := float64(renewable.At(i))
		if r < 0 {
			r = 0
		}
		m := c
		if r < c {
			m = r
		}
		if m > 0 {
			covered += m * h
		}
	}
	rep.TimeMatchedShare = covered / float64(rep.Consumed)
	return rep, nil
}

// VerifyMixClause checks a contracted renewable-share floor under the
// chosen accounting convention.
func VerifyMixClause(rep *MixReport, floor float64, timeMatched bool) (bool, error) {
	if rep == nil {
		return false, errors.New("grid: nil mix report")
	}
	if floor < 0 || floor > 1 {
		return false, errors.New("grid: floor must be in [0,1]")
	}
	if timeMatched {
		return rep.TimeMatchedShare >= floor, nil
	}
	return rep.AnnualShare >= floor, nil
}
