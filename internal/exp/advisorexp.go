package exp

// E16: the contract advisor run across the ten survey sites — the §5
// recommendation ("SCs with direct negotiation responsibility ... should
// seek to influence the implementation of these elements in their own
// contracts") turned into a per-site, per-RNP decision table.

import (
	"fmt"
	"time"

	"repro/internal/advisor"
	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/hpc"
	"repro/internal/report"
	"repro/internal/survey"
	"repro/internal/tariff"
	"repro/internal/units"
)

func init() {
	register("E16", runE16)
}

// E16Row is one site's advice.
type E16Row struct {
	Site          int
	RNP           survey.RNP
	CurrentAnnual units.Money
	BestName      string
	Saving        units.Money
	Renegotiate   bool
}

// RunE16 advises every survey site. Each site gets a synthetic annual
// load whose peakiness varies with its ID (the survey gives no load
// data; diversity in peak/average is what drives structure choice).
func RunE16() ([]E16Row, error) {
	ctx := survey.DefaultBuildContext(expStart)
	var rows []E16Row
	for _, site := range survey.Records() {
		current, err := survey.BuildContract(site, ctx)
		if err != nil {
			return nil, err
		}
		ratio := 1.1 + 0.15*float64(site.ID-1) // 1.1 .. 2.45
		load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
			Start: expStart, Span: 365 * 24 * time.Hour, Interval: time.Hour,
			Base: 8 * units.Megawatt, PeakToAverage: ratio,
			NoiseSigma: 0.02, Seed: int64(site.ID),
		})
		if err != nil {
			return nil, err
		}
		candidates := []advisor.Candidate{
			{Name: "current", Contract: current},
			{
				Name: "tendered flat (CSCS-style)",
				Contract: &contract.Contract{
					Name:    "tendered",
					Tariffs: []tariff.Tariff{tariff.MustNewFixed(0.080)},
				},
			},
			{
				Name: "kW-discount (cheap energy + demand charge)",
				Contract: &contract.Contract{
					Name:          "kw-heavy",
					Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.055)},
					DemandCharges: []*demand.Charge{demand.SimpleCharge(18)},
				},
			},
		}
		advice, err := advisor.Advise("current", candidates, load,
			contract.BillingInput{}, units.CurrencyUnits(50_000))
		if err != nil {
			return nil, err
		}
		rows = append(rows, E16Row{
			Site:          site.ID,
			RNP:           site.RNP,
			CurrentAnnual: advice.Current.Annual,
			BestName:      advice.Best.Candidate.Name,
			Saving:        advice.AnnualSaving,
			Renegotiate:   advice.ShouldRenegotiate,
		})
	}
	return rows, nil
}

func runE16() (*Exhibit, error) {
	rows, err := RunE16()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Contract advisor across the ten survey sites (synthetic annual loads, peakiness rising with site ID)",
		"Site", "RNP", "Current cost/yr", "Best structure", "Saving/yr", "Renegotiate?")
	renegotiable := 0
	directlyActionable := 0
	for _, r := range rows {
		tbl.AddRow(
			fmt.Sprintf("Site %d", r.Site),
			r.RNP.String(),
			r.CurrentAnnual.String(),
			r.BestName,
			r.Saving.String(),
			report.Check(r.Renegotiate),
		)
		if r.Renegotiate {
			renegotiable++
			if r.RNP == survey.RNPSupercomputingCenter {
				directlyActionable++
			}
		}
	}
	return &Exhibit{
		ID:         "E16",
		Title:      "Who should renegotiate, and who can (extension, §5)",
		PaperClaim: "§5: SCs with direct negotiation responsibility should seek to influence these contract elements; for facilities with indirect responsibility \"the aim should be to move closer to the decision process.\"",
		Table:      tbl,
		Notes: []string{
			fmt.Sprintf("%d of 10 sites would save materially by restructuring, but only %d of those has the SC itself as negotiating party — the rest must influence an internal or external organization first, which is exactly the governance gap §3.3/§5 describe.",
				renegotiable, directlyActionable),
		},
	}, nil
}
