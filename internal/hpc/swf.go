package hpc

// Standard Workload Format (SWF) interop. SWF is the de-facto archive
// format for production batch traces (the Parallel Workloads Archive):
// one job per line, 18 whitespace-separated fields, ';' comment lines.
// Supporting it lets the simulator replay real site traces in place of
// the synthetic generator, and export generated traces for other tools.
//
// Field mapping used here (0-based SWF field numbers):
//
//	0  job number          → Job.ID
//	1  submit time (s)     → Job.Arrival
//	3  run time (s)        → Job.Runtime
//	4  allocated processors → Job.Nodes (processors/CoresPerNode, ≥1)
//	8  requested time (s)  → Job.Walltime (falls back to run time)
//
// Unused fields are written as -1, the SWF "unknown" marker.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// SWFConfig controls the SWF ↔ Job mapping.
type SWFConfig struct {
	// CoresPerNode converts SWF processor counts into whole nodes
	// (default 1: treat processors as nodes).
	CoresPerNode int
	// DefaultPowerFraction is assigned to imported jobs, which carry no
	// power information (default 0.75).
	DefaultPowerFraction float64
	// CheckpointableFraction marks every k-th job checkpointable when
	// > 0 (SWF has no such flag); 0 imports none.
	CheckpointableFraction float64
}

func (c SWFConfig) withDefaults() SWFConfig {
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 1
	}
	if c.DefaultPowerFraction <= 0 || c.DefaultPowerFraction > 1 {
		c.DefaultPowerFraction = 0.75
	}
	return c
}

// ParseSWF reads an SWF trace into jobs, skipping comment lines and
// jobs with unknown (-1) run time or processor count.
func ParseSWF(r io.Reader, cfg SWFConfig) ([]*Job, error) {
	c := cfg.withDefaults()
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var jobs []*Job
	lineNo := 0
	kept := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 9 {
			return nil, fmt.Errorf("hpc: SWF line %d has %d fields, need at least 9", lineNo, len(fields))
		}
		get := func(i int) (int64, error) {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return 0, fmt.Errorf("hpc: SWF line %d field %d: %w", lineNo, i, err)
			}
			return v, nil
		}
		id, err := get(0)
		if err != nil {
			return nil, err
		}
		submit, err := get(1)
		if err != nil {
			return nil, err
		}
		runSecs, err := get(3)
		if err != nil {
			return nil, err
		}
		procs, err := get(4)
		if err != nil {
			return nil, err
		}
		reqSecs, err := get(8)
		if err != nil {
			return nil, err
		}
		if runSecs <= 0 || procs <= 0 || submit < 0 {
			continue // unknown or zero-length jobs are not simulable
		}
		nodes := int(procs) / c.CoresPerNode
		if nodes < 1 {
			nodes = 1
		}
		walltime := time.Duration(reqSecs) * time.Second
		runtime := time.Duration(runSecs) * time.Second
		if walltime < runtime {
			walltime = runtime
		}
		j := &Job{
			ID:            int(id),
			Arrival:       time.Duration(submit) * time.Second,
			Runtime:       runtime,
			Walltime:      walltime,
			Nodes:         nodes,
			PowerFraction: c.DefaultPowerFraction,
		}
		if c.CheckpointableFraction > 0 {
			period := int(1 / c.CheckpointableFraction)
			if period < 1 {
				period = 1
			}
			j.Checkpointable = kept%period == 0
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("hpc: SWF line %d: %w", lineNo, err)
		}
		jobs = append(jobs, j)
		kept++
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, errors.New("hpc: SWF trace contained no usable jobs")
	}
	return jobs, nil
}

// WriteSWF exports jobs as an SWF trace (18 fields, unknowns as -1).
func WriteSWF(w io.Writer, jobs []*Job, cfg SWFConfig) error {
	c := cfg.withDefaults()
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "; SWF export from the scgrid HPC simulator")
	fmt.Fprintln(bw, "; fields: job submit wait run procs avgcpu mem reqprocs reqtime reqmem status user group app queue partition prevjob thinktime")
	for _, j := range jobs {
		procs := j.Nodes * c.CoresPerNode
		fields := []int64{
			int64(j.ID),
			int64(j.Arrival / time.Second),
			-1,
			int64(j.Runtime / time.Second),
			int64(procs),
			-1, -1,
			int64(procs),
			int64(j.Walltime / time.Second),
			-1, 1, -1, -1, -1, -1, -1, -1, -1,
		}
		parts := make([]string, len(fields))
		for i, f := range fields {
			parts[i] = strconv.FormatInt(f, 10)
		}
		fmt.Fprintln(bw, strings.Join(parts, " "))
	}
	return bw.Flush()
}
