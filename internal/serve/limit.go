package serve

// Bounded-concurrency admission with a finite queue. The limiter holds
// two token buckets: slots (requests actually evaluating, capacity
// MaxConcurrent) and queue (requests admitted into the building —
// evaluating or waiting — capacity MaxConcurrent + QueueDepth). A
// request first claims a queue token without blocking; if none is free
// the server is saturated and the caller sheds the request with 429.
// With a queue token held it blocks for an evaluation slot until its
// deadline expires. This is the classic bounded-queue front end: the
// wait is bounded, memory per queued request is one goroutine, and
// overload degrades into fast, explicit rejections instead of latency
// collapse.

import (
	"context"
	"errors"
)

// errSaturated reports that both the evaluation slots and the wait
// queue are full.
var errSaturated = errors.New("serve: request queue is full")

type limiter struct {
	slots chan struct{}
	queue chan struct{}
}

func newLimiter(maxConcurrent, queueDepth int) *limiter {
	return &limiter{
		slots: make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxConcurrent+queueDepth),
	}
}

// acquire claims an evaluation slot, waiting in the bounded queue if
// necessary. It returns errSaturated when the queue itself is full, or
// ctx.Err() when the deadline expires while waiting.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.queue <- struct{}{}:
	default:
		return errSaturated
	}
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		// A slot can free at the same instant the deadline fires, in
		// which case select picks a branch at random: without this
		// final non-blocking grab a request could be told "timed out
		// waiting for a slot" while holding a winning ticket.
		select {
		case l.slots <- struct{}{}:
			return nil
		default:
		}
		<-l.queue
		return ctx.Err()
	}
}

// release returns the slot and queue tokens.
func (l *limiter) release() {
	<-l.slots
	<-l.queue
}

// active returns the number of requests currently holding an
// evaluation slot.
func (l *limiter) active() int { return len(l.slots) }

// waiting returns the number of requests queued for a slot.
func (l *limiter) waiting() int {
	w := len(l.queue) - len(l.slots)
	if w < 0 {
		w = 0
	}
	return w
}
