// Package ctxflow requires functions that accept a context to thread
// it into their outbound calls.
//
// Invariant guarded: PR 9 made the request deadline a first-class
// value — the router stamps X-SCBill-Deadline-Ms, internal/serve
// parses it into the request context, and every layer below is
// expected to stop working the moment the caller gives up. That chain
// is only as strong as its weakest call site: one context.Background()
// in a request path detaches everything below it from the deadline,
// and one Bill where a BillCtx exists silently turns a cancelable
// evaluation into an uninterruptible one. A dropped ctx is therefore a
// correctness bug, not a style nit. Three rules, inside any function
// that has a context.Context parameter in the fleet packages:
//
//  1. context.Background() / context.TODO() is a finding: derive from
//     the ctx already in scope (context.WithTimeout(ctx, ...)), or —
//     for work that must survive the request — accept a detached ctx
//     from the owner instead of minting one mid-path.
//  2. http.NewRequest is a finding: use http.NewRequestWithContext
//     with the ctx in scope, so the transport work is cancelable.
//  3. Calling X when an XCtx sibling exists (same package scope or
//     same method set, first parameter context.Context) is a finding:
//     the sibling exists precisely so this call can be canceled.
//
// Blessed escapes: a function whose own signature has no ctx is not
// patrolled (constructors wiring detached daemon contexts stay legal),
// and a deliberate detachment in a request path is blessed with
// //lint:scvet-ignore ctxflow <reason>.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "require ctx-taking functions in the fleet packages to thread their " +
		"context: no context.Background/TODO, no http.NewRequest, no X where XCtx exists",
	Run: run,
}

// scopes are the request-path packages behind the router's deadline
// propagation.
var scopes = []string{
	"internal/route",
	"internal/serve",
	"internal/feed",
	"internal/chaos",
	"internal/loadgen",
	"internal/resilience",
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg, scopes...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && takesContext(pass, n.Type) {
					check(pass, n.Body)
				}
				return true
			case *ast.FuncLit:
				// Literals are checked through their enclosing context:
				// a literal inside a patrolled function is walked by
				// check itself (it still sees the enclosing ctx), and a
				// ctx-taking literal in an unpatrolled function is rare
				// enough to leave to the signature rule when it lands in
				// a declared function.
				return true
			}
			return true
		})
	}
	return nil
}

// takesContext reports whether the function type has a
// context.Context parameter.
func takesContext(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && analysis.IsContextType(tv.Type) {
			return true
		}
	}
	return false
}

// check scans one patrolled body. Function literals are descended: a
// literal declared here captures the enclosing ctx, so dropping it is
// the same bug.
func check(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case analysis.FuncIs(fn, "context", "Background"), analysis.FuncIs(fn, "context", "TODO"):
			pass.Reportf(call.Pos(),
				"context.%s() inside a ctx-taking function detaches this call chain from the request deadline; derive from the ctx in scope, or bless a deliberate detachment with //lint:scvet-ignore ctxflow <reason>",
				fn.Name())
		case analysis.FuncIs(fn, "net/http", "NewRequest"):
			pass.Reportf(call.Pos(),
				"http.NewRequest inside a ctx-taking function builds an uncancelable request; use http.NewRequestWithContext with the ctx in scope")
		default:
			if sib := ctxSibling(fn); sib != "" {
				pass.Reportf(call.Pos(),
					"%s has a context-taking sibling %s; call it with the ctx in scope so the work is cancelable",
					fn.Name(), sib)
			}
		}
		return true
	})
}

// ctxSibling returns the name of fn's <name>Ctx sibling — a function
// in the same package scope (or method on the same receiver type)
// whose first parameter is a context.Context — or "" when none
// exists. Functions already threading a ctx, and the Ctx variants
// themselves, have no sibling to prefer.
func ctxSibling(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sigTakesContext(sig) {
		return ""
	}
	want := fn.Name() + "Ctx"
	var cand types.Object
	if recv := sig.Recv(); recv != nil {
		named := analysis.NamedOf(recv.Type())
		if named == nil {
			return ""
		}
		// Walk the declared method set of the receiver's named type.
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == want {
				cand = m
				break
			}
		}
	} else if fn.Pkg() != nil {
		cand = fn.Pkg().Scope().Lookup(want)
	}
	cfn, ok := cand.(*types.Func)
	if !ok {
		return ""
	}
	csig, ok := cfn.Type().(*types.Signature)
	if !ok || csig.Params().Len() == 0 || !analysis.IsContextType(csig.Params().At(0).Type()) {
		return ""
	}
	return want
}

// sigTakesContext reports whether any parameter is a context.Context.
func sigTakesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
