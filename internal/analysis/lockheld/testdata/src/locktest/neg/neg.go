// Package neg holds lockheld near-misses that must stay silent: the
// unlock-before-slow-work shapes the production caches actually use.
package neg

import (
	"net/http"
	"sync"
	"time"
)

type cache struct {
	mu    sync.Mutex
	val   []float64
	stamp time.Time
	now   func() time.Time
	ttl   time.Duration
	ch    chan int
	onEvt func(int)
}

// Unlock before the slow call: the straight-line happy path.
func (c *cache) refresh() error {
	c.mu.Lock()
	stale := c.now().Sub(c.stamp) > c.ttl // injected clock: blessed under the lock
	c.mu.Unlock()
	if !stale {
		return nil
	}
	resp, err := http.Get("http://example.com/prices")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	c.mu.Lock()
	c.stamp = c.now()
	c.mu.Unlock()
	return nil
}

// The fresh-hit fast path: unlock inside the if body, return; the
// slow work after the if runs with the lock released on every path.
func (c *cache) prices() ([]float64, error) {
	c.mu.Lock()
	if c.now().Sub(c.stamp) <= c.ttl {
		v := c.val
		c.mu.Unlock()
		return v, nil
	}
	c.mu.Unlock()
	resp, err := http.Get("http://example.com/prices")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return c.val, nil
}

// Channel operations without any lock held are no business of this
// analyzer.
func (c *cache) publish(v int) {
	c.ch <- v
	_ = <-c.ch
}

// A select with a default never blocks; polling under a short lock is
// legal.
func (c *cache) poll() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-c.ch:
		return v, true
	default:
		return 0, false
	}
}

// Work handed to a goroutine does not run under the caller's lock.
func (c *cache) fanOut() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
		c.onEvt(1)
	}()
}

// Deliver callbacks after unlocking: the fixed breaker shape.
func (c *cache) notify(evts []int) {
	c.mu.Lock()
	pending := evts
	c.mu.Unlock()
	for _, e := range pending {
		c.onEvt(e)
	}
}

// Calling a plain named helper under the lock is fine — the analyzer
// is intra-procedural and bans only the known-slow call classes.
func (c *cache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.len()
}

func (c *cache) len() int { return len(c.val) }
