// Package clock is outside the nondeterm scopes (no internal/billing,
// internal/contract, internal/feed, or internal/resilience segment in
// its path), so wall-clock reads here are legal — the serving layer,
// CLIs, and observability code are allowed real time.
package clock

import "time"

func Uptime(start time.Time) time.Duration { return time.Since(start) }

func Stamp() time.Time { return time.Now() }
