package colo

import (
	"testing"
	"time"

	"repro/internal/units"
)

func tenants() []*Tenant {
	return []*Tenant{
		{Name: "web-tier", Baseline: 2000, Flexible: 500, ReservePrice: 0.20},
		{Name: "batch-analytics", Baseline: 3000, Flexible: 2000, ReservePrice: 0.05},
		{Name: "database", Baseline: 1500, Flexible: 100, ReservePrice: 1.50},
		{Name: "dev-cluster", Baseline: 1000, Flexible: 800, ReservePrice: 0.10},
	}
}

func TestTenantValidate(t *testing.T) {
	bad := []*Tenant{
		{Name: "", Baseline: 1, Flexible: 1},
		{Name: "x", Baseline: -1},
		{Name: "x", Baseline: 1, Flexible: 2},
		{Name: "x", Baseline: 1, Flexible: 1, ReservePrice: -1},
	}
	for i, tn := range bad {
		if err := tn.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	good := &Tenant{Name: "x", Baseline: 10, Flexible: 5, ReservePrice: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("good tenant: %v", err)
	}
}

func TestPricingRuleString(t *testing.T) {
	if PayAsBid.String() != "pay-as-bid" || UniformPrice.String() != "uniform-price" {
		t.Error("rule names")
	}
	if PricingRule(9).String() == "" {
		t.Error("unknown rule should format")
	}
}

func TestReverseAuctionMeritOrder(t *testing.T) {
	res, err := ReverseAuction(tenants(), 2500, time.Hour, PayAsBid)
	if err != nil {
		t.Fatal(err)
	}
	// Merit order: batch (0.05, 2000) then dev (0.10, 500 of 800).
	if len(res.Winners) != 2 {
		t.Fatalf("winners = %d", len(res.Winners))
	}
	if res.Winners[0].Tenant.Name != "batch-analytics" || res.Winners[0].Reduction != 2000 {
		t.Errorf("first winner = %+v", res.Winners[0])
	}
	if res.Winners[1].Tenant.Name != "dev-cluster" || res.Winners[1].Reduction != 500 {
		t.Errorf("second winner = %+v", res.Winners[1])
	}
	if res.Achieved != 2500 || res.Shortfall() != 0 {
		t.Errorf("achieved = %v", res.Achieved)
	}
	if res.ClearingPrice != 0.10 {
		t.Errorf("clearing price = %v", res.ClearingPrice)
	}
	// Pay-as-bid payments: 2000 kWh × 0.05 + 500 kWh × 0.10 = 150.
	if res.TotalPayment != units.CurrencyUnits(150) {
		t.Errorf("total payment = %v", res.TotalPayment)
	}
}

func TestReverseAuctionUniformPrice(t *testing.T) {
	res, err := ReverseAuction(tenants(), 2500, time.Hour, UniformPrice)
	if err != nil {
		t.Fatal(err)
	}
	// All winners paid the clearing price 0.10: 2500 kWh × 0.10 = 250.
	if res.TotalPayment != units.CurrencyUnits(250) {
		t.Errorf("uniform total = %v", res.TotalPayment)
	}
	for _, w := range res.Winners {
		if w.PricePaid != 0.10 {
			t.Errorf("winner %s paid %v", w.Tenant.Name, w.PricePaid)
		}
	}
}

func TestReverseAuctionShortfall(t *testing.T) {
	res, err := ReverseAuction(tenants(), 10000, time.Hour, PayAsBid)
	if err != nil {
		t.Fatal(err)
	}
	// All flexibility: 500+2000+100+800 = 3400.
	if res.Achieved != 3400 {
		t.Errorf("achieved = %v", res.Achieved)
	}
	if res.Shortfall() != 6600 {
		t.Errorf("shortfall = %v", res.Shortfall())
	}
	if len(res.Winners) != 4 {
		t.Errorf("winners = %d", len(res.Winners))
	}
}

func TestReverseAuctionValidation(t *testing.T) {
	if _, err := ReverseAuction(tenants(), 0, time.Hour, PayAsBid); err == nil {
		t.Error("zero target should fail")
	}
	if _, err := ReverseAuction(tenants(), 100, 0, PayAsBid); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := ReverseAuction(nil, 100, time.Hour, PayAsBid); err == nil {
		t.Error("no tenants should fail")
	}
	rigid := []*Tenant{{Name: "rigid", Baseline: 100, Flexible: 0}}
	if _, err := ReverseAuction(rigid, 100, time.Hour, PayAsBid); err == nil {
		t.Error("no flexibility should fail")
	}
	bad := []*Tenant{{Name: "", Baseline: 100, Flexible: 10}}
	if _, err := ReverseAuction(bad, 100, time.Hour, PayAsBid); err == nil {
		t.Error("invalid tenant should fail")
	}
}

func TestDecide(t *testing.T) {
	res, err := ReverseAuction(tenants(), 2500, time.Hour, PayAsBid)
	if err != nil {
		t.Fatal(err)
	}
	// Avoidable cost 5000 (e.g. emergency penalty): auction pays 150,
	// full procurement → net 4850.
	d, err := Decide(res, units.CurrencyUnits(5000))
	if err != nil {
		t.Fatal(err)
	}
	if d.ResidualCost != 0 {
		t.Errorf("residual = %v", d.ResidualCost)
	}
	if d.Net != units.CurrencyUnits(4850) {
		t.Errorf("net = %v", d.Net)
	}
	// Shortfall scenario: only 3400 of 10000 procured → 66% residual.
	short, err := ReverseAuction(tenants(), 10000, time.Hour, PayAsBid)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decide(short, units.CurrencyUnits(10000))
	if err != nil {
		t.Fatal(err)
	}
	if d2.ResidualCost != units.CurrencyUnits(6600) {
		t.Errorf("residual = %v", d2.ResidualCost)
	}
	// Errors.
	if _, err := Decide(nil, 0); err == nil {
		t.Error("nil auction should fail")
	}
	if _, err := Decide(res, -1); err == nil {
		t.Error("negative cost should fail")
	}
}

func TestSplitIncentiveBaseline(t *testing.T) {
	// The documented no-mechanism outcome: operator absorbs everything.
	if SplitIncentiveBaseline(units.CurrencyUnits(5000)) != units.CurrencyUnits(5000) {
		t.Error("baseline must equal the full avoidable cost")
	}
}

func TestUniformCostsAtLeastPayAsBid(t *testing.T) {
	pab, err := ReverseAuction(tenants(), 3000, time.Hour, PayAsBid)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := ReverseAuction(tenants(), 3000, time.Hour, UniformPrice)
	if err != nil {
		t.Fatal(err)
	}
	if uni.TotalPayment < pab.TotalPayment {
		t.Errorf("uniform %v must cost at least pay-as-bid %v", uni.TotalPayment, pab.TotalPayment)
	}
}
