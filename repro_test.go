package repro

import (
	"strings"
	"testing"
	"time"

	"repro/internal/contingency"
	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/grid"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/tariff"
	"repro/internal/units"
)

var facadeStart = time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)

func facadeContract() *Contract {
	return &Contract{
		Name:          "facade-test",
		Tariffs:       []Tariff{tariff.MustNewFixed(0.08)},
		DemandCharges: []*DemandCharge{demand.SimpleCharge(12)},
	}
}

func TestFacadeClassifyAndBill(t *testing.T) {
	c := facadeContract()
	p := Classify(c)
	if !p.FixedTariff || !p.DemandCharge {
		t.Errorf("profile = %+v", p)
	}
	load, err := SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: facadeStart, Span: 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 10 * units.Megawatt, PeakToAverage: 1.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bill, err := ComputeBill(c, load, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if bill.Total <= 0 {
		t.Error("bill should be positive")
	}
	a, err := Analyze(c, load, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if a.DemandShare <= 0 {
		t.Error("analysis demand share")
	}
}

func TestFacadeTablesAndFigure(t *testing.T) {
	if !strings.Contains(Table1(), "Oak Ridge") {
		t.Error("Table1")
	}
	t2, err := Table2()
	if err != nil || !strings.Contains(t2, "Site 10") {
		t.Errorf("Table2: %v", err)
	}
	if !strings.Contains(Figure1(), "Powerband") {
		t.Error("Figure1")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 26 {
		t.Errorf("experiments = %d, want 26", len(ids))
	}
	e, err := RunExperiment("T1")
	if err != nil || e.ID != "T1" {
		t.Errorf("RunExperiment: %v", err)
	}
}

func TestFacadeSimulateAndDR(t *testing.T) {
	m := hpc.SmallSiteMachine()
	wcfg := hpc.DefaultWorkload()
	wcfg.Span = 6 * time.Hour
	jobs, err := hpc.GenerateWorkload(m, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(m, jobs, SchedulerConfig{Start: facadeStart, Horizon: 12 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.FacilityLoad.Len() == 0 {
		t.Fatal("no load produced")
	}
	program := &DRProgram{Kind: market.EmergencyDR, CommittedReduction: 200, EnergyIncentive: 0.5}
	events := []DREvent{{Start: facadeStart.Add(2 * time.Hour), Duration: time.Hour, RequestedReduction: 200}}
	ev, err := EvaluateDR(facadeContract(), res.FacilityLoad,
		&dr.ShedStrategy{Fraction: 0.1, OpCostPerKWh: 0.01}, program, events, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Settlement == nil {
		t.Error("settlement missing")
	}
}

func TestFacadeContingencyAndAdvisor(t *testing.T) {
	load, err := SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: facadeStart, Span: 48 * time.Hour, Interval: time.Hour,
		Base: 10 * units.Megawatt, PeakToAverage: 1.4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := &ContingencyPlan{
		Name: "facade-plan",
		Levels: []contingency.Level{{
			Name:     "guard",
			Trigger:  contingency.Trigger{Kind: contingency.OwnLoadAbove, PowerBudget: 12 * units.Megawatt},
			Strategy: &dr.CapStrategy{Cap: 12 * units.Megawatt, OpCostPerKWh: 0.01},
		}},
	}
	im, err := EvaluatePlan(plan, facadeContract(), load, contingency.Signals{})
	if err != nil {
		t.Fatal(err)
	}
	if im.PlannedBill == nil {
		t.Fatal("impact must carry bills")
	}

	candidates := []ContractCandidate{
		{Name: "current", Contract: facadeContract()},
		{Name: "flat", Contract: &Contract{
			Name:    "flat",
			Tariffs: []Tariff{tariff.MustNewFixed(0.09)},
		}},
	}
	advice, err := AdviseContract("current", candidates, load, contract.BillingInput{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if advice.String() == "" {
		t.Error("advice should render")
	}
}

func TestFacadeSystemLoad(t *testing.T) {
	cfg := grid.DefaultRegion(facadeStart)
	cfg.Span = 24 * time.Hour
	s, err := SystemLoad(cfg)
	if err != nil || s.Len() == 0 {
		t.Errorf("SystemLoad: %v", err)
	}
}
