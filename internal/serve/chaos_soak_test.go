package serve

// The chaos soak: the acceptance check for the resilient price-feed
// stack. A fault-injected market feed (seeded, 30% hard errors, latency
// spikes, occasional NaN-poisoned payloads) sits behind the full
// upstream -> feed.HTTP -> chaos.Injector -> feed.Cached -> Server
// chain, and the server must answer 100% of /v1/bill requests without
// a feed-caused 5xx — every response is fresh, stale-within-budget, or
// explicitly degraded onto the fallback tariff. Static-tariff bills
// must stay byte-identical to a feed-less server throughout.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/feed"
	"repro/internal/resilience"
)

// newChaosServer builds the full resilient stack over a fault-injected
// upstream and returns the server, its test listener, and the injector.
func newChaosServer(t *testing.T, chaosCfg chaos.Config) (*Server, *httptest.Server, *chaos.Injector) {
	t.Helper()
	u := newPriceUpstream(t)
	injector := chaos.New(&feed.HTTP{URL: u.ts.URL}, chaosCfg)
	cached := feed.NewCached(injector, feed.CachedConfig{
		// A tiny TTL forces a real (fault-injected) fetch on nearly
		// every request; the generous budget means a cached series
		// keeps bills flowing through long fault bursts.
		TTL:             time.Nanosecond,
		StalenessBudget: time.Hour,
		Retry:           resilience.Retry{MaxAttempts: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond},
		Breaker:         &resilience.BreakerConfig{FailureThreshold: 5, OpenTimeout: 10 * time.Millisecond},
	})
	t.Cleanup(cached.Close)
	s := NewServer(Config{PriceFeed: cached})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, injector
}

// soakOutcome classifies one /v1/bill answer during the soak.
type soakOutcome struct {
	code     int
	feed     string // X-SCBill-Feed
	degraded bool   // body marked degraded
	body     string
}

func soakBill(t *testing.T, ts *httptest.Server, req BillRequest) soakOutcome {
	t.Helper()
	resp, body := postBill(t, ts, "/v1/bill", req)
	var marked struct {
		Degraded bool `json:"degraded"`
	}
	_ = json.Unmarshal(body, &marked)
	return soakOutcome{
		code:     resp.StatusCode,
		feed:     resp.Header.Get("X-SCBill-Feed"),
		degraded: marked.Degraded,
		body:     string(body),
	}
}

func checkOutcome(t *testing.T, o soakOutcome, what string) {
	t.Helper()
	if o.code >= 500 {
		t.Fatalf("%s: feed faults must never 5xx a bill, got %d: %s", what, o.code, o.body)
	}
	if o.code != http.StatusOK {
		t.Fatalf("%s: %d: %s", what, o.code, o.body)
	}
	switch o.feed {
	case "fresh", "stale":
		if o.degraded {
			t.Fatalf("%s: %s answer marked degraded", what, o.feed)
		}
	case "degraded":
		if !o.degraded {
			t.Fatalf("%s: degraded answer not marked in body: %s", what, o.body)
		}
	default:
		t.Fatalf("%s: unexpected X-SCBill-Feed %q", what, o.feed)
	}
}

// TestChaosSoak drives the acceptance scenario: 30% upstream error
// rate, latency spikes, and malformed payloads, with a sequential soak
// followed by a concurrent burst (meaningful under -race). Interleaved
// static-tariff bills must stay byte-identical to a feed-less server's.
func TestChaosSoak(t *testing.T) {
	s, ts, injector := newChaosServer(t, chaos.Config{
		Seed:          2016, // the survey year; any seed works, this one is pinned for replay
		ErrorRate:     0.30,
		LatencyRate:   0.15,
		Latency:       2 * time.Millisecond,
		MalformedRate: 0.10,
	})

	plain := NewServer(Config{})
	plainTS := httptest.NewServer(plain.Handler())
	defer plainTS.Close()

	dynReq := dynamicBillRequest(t)
	staticReq := BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}
	_, staticWant := postBill(t, plainTS, "/v1/bill", staticReq)

	const sequential = 120
	counts := map[string]int{}
	for i := 0; i < sequential; i++ {
		o := soakBill(t, ts, dynReq)
		checkOutcome(t, o, fmt.Sprintf("sequential call %d", i))
		counts[o.feed]++

		if i%10 == 0 {
			// Static specs ride through the same server untouched by
			// the chaos: identical bytes to the feed-less server.
			resp, got := postBill(t, ts, "/v1/bill", staticReq)
			if resp.StatusCode != http.StatusOK || string(got) != string(staticWant) {
				t.Fatalf("static bill diverged during chaos at call %d (code %d)", i, resp.StatusCode)
			}
		}
	}
	// With a 30% error rate and a nanosecond TTL the soak must actually
	// have exercised the resilience paths, not just the happy one.
	if counts["fresh"] == 0 || counts["stale"] == 0 {
		t.Errorf("soak did not exercise fresh+stale paths: %v", counts)
	}
	if st := injector.Stats(); st.Errors == 0 || st.Malformed == 0 {
		t.Errorf("injector fired no faults: %+v", st)
	}
	t.Logf("sequential soak outcomes: %v; injector: %+v", counts, injector.Stats())

	// Concurrent burst: 8 clients hammering the same flaky stack.
	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				data, _ := json.Marshal(dynReq)
				resp, err := ts.Client().Post(ts.URL+"/v1/bill", "application/json", strings.NewReader(string(data)))
				if err != nil {
					errs <- fmt.Sprintf("worker %d call %d: %v", w, i, err)
					continue
				}
				state := resp.Header.Get("X-SCBill-Feed")
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("worker %d call %d: status %d", w, i, resp.StatusCode)
				}
				if state != "fresh" && state != "stale" && state != "degraded" {
					errs <- fmt.Sprintf("worker %d call %d: feed state %q", w, i, state)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// The whole soak produced zero 5xx: the request counters have no
	// 5xx buckets for /v1/bill.
	s.metrics.mu.Lock()
	for key := range s.metrics.requests {
		if strings.HasPrefix(key, "/v1/bill|5") {
			t.Errorf("soak recorded a 5xx bucket: %s", key)
		}
	}
	s.metrics.mu.Unlock()
}

// TestChaosSoakTotalOutage: with a 100% error rate the feed never
// succeeds, and every bill is the explicit degraded fallback — still
// 200, deterministically.
func TestChaosSoakTotalOutage(t *testing.T) {
	_, ts, _ := newChaosServer(t, chaos.Config{Seed: 7, ErrorRate: 1})
	dynReq := dynamicBillRequest(t)
	var firstTotal float64
	for i := 0; i < 5; i++ {
		o := soakBill(t, ts, dynReq)
		checkOutcome(t, o, fmt.Sprintf("outage call %d", i))
		if o.feed != "degraded" {
			t.Fatalf("outage call %d: state %q, want degraded", i, o.feed)
		}
		// The degraded reason varies (injected error vs. open breaker)
		// but the fallback bill itself is deterministic.
		var out struct {
			Total          float64 `json:"total"`
			DegradedReason string  `json:"degraded_reason"`
		}
		if err := json.Unmarshal([]byte(o.body), &out); err != nil || out.DegradedReason == "" {
			t.Fatalf("outage call %d: bad degraded body (%v): %s", i, err, o.body)
		}
		if i == 0 {
			firstTotal = out.Total
		} else if out.Total != firstTotal {
			t.Fatalf("degraded totals must be deterministic: call %d got %g, want %g", i, out.Total, firstTotal)
		}
	}
}
