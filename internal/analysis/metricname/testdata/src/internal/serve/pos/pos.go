// Package pos holds metricname true positives (in scope: its package
// path contains internal/serve).
package pos

import (
	"fmt"
	"io"
)

type snapshot struct{}

func (snapshot) WriteProm(w io.Writer, name, labels string) {}

func emit(w io.Writer, s snapshot) {
	fmt.Fprintf(w, "scserved_BadName 1\n")                          // want `metric name "scserved_BadName" does not match`
	fmt.Fprintf(w, "scserved_http_5xx_total 0\n")                   // want `metric name "scserved_http_5xx_total" does not match`
	fmt.Fprintf(w, "# TYPE scserved_requests counter\n")            // want `counter "scserved_requests" must end in _total`
	fmt.Fprintf(w, "# TYPE scserved_active_total gauge\n")          // want `gauge "scserved_active_total" must not end in _total`
	fmt.Fprintf(w, "# TYPE scserved_latency histogram\n")           // want `histogram "scserved_latency" must be named for its unit`
	fmt.Fprintf(w, "scserved_request_seconds_bucket{le=\"1\"} 3\n") // want `hand-rolled histogram series "scserved_request_seconds_bucket"`
	s.WriteProm(w, "scserved_latency", "")                          // want `histogram family "scserved_latency" must be named for its unit`
}
