package market

// Frequency-regulation service: the fast, bidirectional product LANL's
// "generation and voltage control programs" participation (§4) points
// at. The balancing authority broadcasts a normalized signal in [-1, 1];
// a participant offering R kW of regulation capacity must track
// signal×R around its baseline. Settlement pays capacity scaled by a
// performance score, PJM-style: poor tracking earns little.
//
// Supercomputers are interesting regulation providers precisely because
// of the fast ramping the paper highlights — the same capability that
// strains the grid when uncontrolled can serve it when dispatched. The
// tracker models the facility's one limit: a maximum ramp rate.

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// RegulationSignal is a normalized AGC-like control signal in [-1, 1]
// at a fixed interval (typically seconds; we use the metering interval
// for tractability).
type RegulationSignal struct {
	Start    time.Time
	Interval time.Duration
	Values   []float64
}

// GenerateRegulationSignal draws a bounded, zero-reverting random walk —
// the standard shape of a regulation test signal.
func GenerateRegulationSignal(start time.Time, interval time.Duration, n int, seed int64) (*RegulationSignal, error) {
	if interval <= 0 {
		return nil, errors.New("market: signal interval must be positive")
	}
	if n <= 0 {
		return nil, errors.New("market: signal needs at least one sample")
	}
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	v := 0.0
	for i := range values {
		v = 0.9*v + 0.3*rng.NormFloat64()
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		values[i] = v
	}
	return &RegulationSignal{Start: start, Interval: interval, Values: values}, nil
}

// TrackingResult is the outcome of following a regulation signal.
type TrackingResult struct {
	// Response is the facility's achieved deviation from baseline
	// (kW, positive = consuming more).
	Response []units.Power
	// Score is the mean tracking accuracy in [0,1]:
	// 1 − mean(|achieved − requested|)/capacity.
	Score float64
	// Payment = capacity × rate × score.
	Payment units.Money
}

// TrackRegulation simulates a facility offering `capacity` of regulation
// around its baseline, limited by maxRamp. rate is the capacity payment
// per kW per settlement period at perfect score. The convention here is
// grid-side: signal +1 asks the participant to RAISE grid frequency,
// i.e. consume capacity kW less; −1 to consume capacity kW more.
func TrackRegulation(sig *RegulationSignal, capacity units.Power, maxRamp units.RampRate, rate units.DemandPrice) (*TrackingResult, error) {
	if sig == nil || len(sig.Values) == 0 {
		return nil, errors.New("market: empty regulation signal")
	}
	if capacity <= 0 {
		return nil, errors.New("market: regulation capacity must be positive")
	}
	if maxRamp <= 0 {
		return nil, errors.New("market: max ramp must be positive")
	}
	if rate < 0 {
		return nil, errors.New("market: rate must be non-negative")
	}
	stepMinutes := sig.Interval.Minutes()
	maxStep := float64(maxRamp) * stepMinutes // kW change per step
	achieved := 0.0                           // current deviation, kW (positive = consuming less)
	response := make([]units.Power, len(sig.Values))
	var errSum float64
	for i, s := range sig.Values {
		target := s * float64(capacity)
		delta := target - achieved
		if delta > maxStep {
			delta = maxStep
		}
		if delta < -maxStep {
			delta = -maxStep
		}
		achieved += delta
		// Facility-side response: consuming less = negative load delta.
		response[i] = units.Power(-achieved)
		errSum += math.Abs(target-achieved) / float64(capacity)
	}
	score := 1 - errSum/float64(len(sig.Values))
	if score < 0 {
		score = 0
	}
	payment := units.MoneyFromFloat(float64(rate) * float64(capacity) * score)
	return &TrackingResult{Response: response, Score: score, Payment: payment}, nil
}

// ApplyRegulation overlays a tracking response on a facility baseline,
// producing the metered profile during regulation service. The signal
// must not be longer than the baseline; it is applied from the
// baseline's start.
func ApplyRegulation(baseline *timeseries.PowerSeries, res *TrackingResult) (*timeseries.PowerSeries, error) {
	if res == nil || len(res.Response) == 0 {
		return nil, errors.New("market: empty tracking result")
	}
	if len(res.Response) > baseline.Len() {
		return nil, errors.New("market: response longer than baseline")
	}
	samples := baseline.Samples()
	for i, r := range res.Response {
		v := samples[i] + r
		if v < 0 {
			v = 0
		}
		samples[i] = v
	}
	return timeseries.NewPower(baseline.Start(), baseline.Interval(), samples)
}
