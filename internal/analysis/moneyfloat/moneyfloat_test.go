package moneyfloat_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/moneyfloat"
)

func TestMoneyFloat(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), moneyfloat.Analyzer,
		"moneytest/pos",
		"moneytest/neg",
		"internal/contract/blessed",
	)
}
