// Package neg holds moneyfloat near-misses that must stay silent.
package neg

import "internal/units"

// Ordered comparisons on float money are fine: representation error
// cannot flip a strict ordering the way it breaks equality.
func ordered(a, b units.EnergyPrice, d units.DemandPrice) []bool {
	return []bool{a < b, a >= b, d > 0}
}

// Money is int64 micro-units; equality is exact.
func moneyEquality(m1, m2 units.Money) bool { return m1 == m2 }

// Integer-to-Money conversion is exact.
func fromInt(n int64) units.Money { return units.Money(n) }

// MoneyFromFloat on a variable is the blessed path for values that are
// genuinely float at the boundary (parsed tariffs); only literals are
// flagged.
func fromVar(rate float64) units.Money { return units.MoneyFromFloat(rate) }

// The integer constructors are the blessed way to write constants.
func constants() units.Money { return units.Cents(250) + units.CurrencyUnits(3) }

// Float arithmetic that never meets == / Money is not money linting's
// business.
func arithmetic(a units.EnergyPrice) float64 { return float64(a) * 1.1 }
