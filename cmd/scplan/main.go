// Command scplan evaluates a contingency plan (JSON spec) for a site:
// it builds a month of facility load and grid signals, runs the plan,
// and prints the impact analysis — per-level activations, bill delta,
// operational cost and emergency compliance.
//
// Usage:
//
//	scplan -plan plan.json -contract site.json
//	scplan -plan plan.json -contract site.json -base-mw 15 -stress 3
//	scplan -example > plan.json      # write a starter plan spec
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/contingency"
	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func main() {
	planPath := flag.String("plan", "", "path to a JSON contingency-plan spec (required unless -example)")
	contractPath := flag.String("contract", "", "path to a JSON contract spec (required unless -example)")
	baseMW := flag.Float64("base-mw", 12, "facility base load in MW")
	stressCount := flag.Int("stress", 2, "number of grid-stress events in the month")
	emergencies := flag.Int("emergencies", 1, "number of declared grid emergencies")
	seed := flag.Int64("seed", 11, "generation seed")
	example := flag.Bool("example", false, "print a starter plan spec and exit")
	flag.Parse()

	if *example {
		printExample()
		return
	}
	if err := run(*planPath, *contractPath, *baseMW, *stressCount, *emergencies, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "scplan:", err)
		os.Exit(1)
	}
}

func printExample() {
	spec := &contingency.PlanSpec{
		Name: "starter-plan",
		Levels: []contingency.LevelSpec{
			{Name: "price-watch", Trigger: "price-above", PriceThreshold: 0.15,
				Strategy: contingency.StrategySpec{Type: "shed", Fraction: 0.05, OpCost: 0.01}},
			{Name: "stress-shed", Trigger: "grid-stress",
				Strategy: contingency.StrategySpec{Type: "shed", Fraction: 0.10, OpCost: 0.02}},
			{Name: "emergency-cap", Trigger: "emergency-declared",
				Strategy: contingency.StrategySpec{Type: "cap", CapKW: 9000, OpCost: 0.20}},
		},
	}
	data, err := contingency.EncodePlanSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scplan:", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
}

func run(planPath, contractPath string, baseMW float64, stressCount, emergencies int, seed int64) error {
	if planPath == "" || contractPath == "" {
		return fmt.Errorf("-plan and -contract are required (or use -example)")
	}
	planData, err := os.ReadFile(planPath)
	if err != nil {
		return err
	}
	planSpec, err := contingency.ParsePlanSpec(planData)
	if err != nil {
		return err
	}
	plan, err := planSpec.Build()
	if err != nil {
		return err
	}
	contractData, err := os.ReadFile(contractPath)
	if err != nil {
		return err
	}
	cSpec, err := contract.ParseSpec(contractData)
	if err != nil {
		return err
	}
	start := time.Date(2016, time.September, 1, 0, 0, 0, 0, time.UTC)
	feed := timeseries.ConstantPrice(start, time.Hour, 31*24, 0.045)
	c, err := cSpec.Build(contract.BuildContext{Feed: feed})
	if err != nil {
		return err
	}

	baseline, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: start, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: units.Power(baseMW) * units.Megawatt, PeakToAverage: 1.3,
		NoiseSigma: 0.02, Seed: seed,
	})
	if err != nil {
		return err
	}

	// Grid signals: regional prices plus evenly spaced stress events
	// and emergencies in business hours.
	region := grid.DefaultRegion(start)
	regional, err := grid.SystemLoad(region)
	if err != nil {
		return err
	}
	pm := market.DefaultPriceModel(5500 * units.Megawatt)
	prices, err := pm.PriceSeries(regional)
	if err != nil {
		return err
	}
	sig := contingency.Signals{Prices: prices}
	for i := 0; i < stressCount; i++ {
		day := 3 + i*(24/maxInt(stressCount, 1))
		sig.Stress = append(sig.Stress, grid.StressEvent{
			Start: start.Add(time.Duration(day)*24*time.Hour + 17*time.Hour), Duration: 2 * time.Hour,
		})
	}
	for i := 0; i < emergencies; i++ {
		day := 10 + i*7
		sig.Emergencies = append(sig.Emergencies, contract.EmergencyEvent{
			Start: start.Add(time.Duration(day)*24*time.Hour + 15*time.Hour), Duration: 2 * time.Hour,
		})
	}

	im, err := contingency.Evaluate(plan, c, baseline, sig)
	if err != nil {
		return err
	}

	fmt.Printf("Plan %q against contract %q (%.0f MW site, %d stress events, %d emergencies)\n\n",
		plan.Name, c.Name, baseMW, stressCount, emergencies)
	tbl := report.NewTable("Per-level impact", "Level", "Activations", "Active for", "Curtailed", "Op cost")
	for _, l := range im.Levels {
		tbl.AddRow(l.Level, fmt.Sprintf("%d", l.Activations), l.ActiveFor.String(),
			l.Curtailed.String(), l.OpCost.String())
	}
	fmt.Print(tbl.Render())
	fmt.Println()
	fmt.Print(report.KV([][2]string{
		{"Baseline bill", im.BaselineBill.Total.String()},
		{"Planned bill", im.PlannedBill.Total.String()},
		{"Bill savings", im.BillSavings().String()},
		{"Operational cost", im.TotalOpCost.String()},
		{"NET BENEFIT", im.NetBenefit.String()},
		{"Emergency compliant", fmt.Sprintf("%v", im.EmergencyCompliant)},
	}))
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
