// Package neg holds nondeterm near-misses that must stay silent.
package neg

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Taking a reference to time.Now as the injectable default is the
// blessed wiring idiom; only calling it is banned.
type config struct {
	Now func() time.Time
}

func defaults(c config) config {
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Reading the injected clock is the whole point of injecting it.
func stamp(c config) time.Time { return c.Now() }

// A seeded generator is deterministic: constructors and methods on the
// resulting *rand.Rand are fine.
func seeded(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 4)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// Collect-then-sort is the blessed way to emit map contents.
func printTotals(w io.Writer, totals map[string]int64) {
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, totals[name])
	}
}

// Ranging over a map without emitting output (pure aggregation) is
// order-insensitive and legal.
func sum(totals map[string]int64) int64 {
	var s int64
	for _, v := range totals {
		s += v
	}
	return s
}
