// Package sched simulates a power-aware batch scheduler running a job
// trace on an hpc.Machine, producing the facility load profile that the
// billing, demand-response and grid layers consume.
//
// The simulator is time-stepped (default one minute) and supports the
// coarse-grained power-management strategies the EE HPC Working Group
// survey identified as the most effective SC responses to ESP programs:
// "energy and power-aware job scheduling, power capping, and shutdown".
// Concretely:
//
//   - FCFS and EASY-backfill queue policies (backfill is the production
//     baseline in SC batch systems);
//   - a facility power cap, possibly time-varying (the DR dispatch case:
//     a cap window during a declared grid event);
//   - price-aware shifting: deferrable jobs wait while the real-time
//     price is above a threshold (bounded by a maximum defer time);
//   - idle-node shutdown: free nodes draw zero instead of idle power.
//
// Every run is deterministic given its inputs.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/hpc"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// Policy selects the queueing discipline.
type Policy int

// Queue policies.
const (
	// FCFS starts jobs strictly in arrival order.
	FCFS Policy = iota
	// EASYBackfill starts the queue head when possible and backfills
	// later jobs that do not delay the head's reservation.
	EASYBackfill
)

var policyNames = map[Policy]string{
	FCFS:         "fcfs",
	EASYBackfill: "easy-backfill",
}

// String returns the policy name.
func (p Policy) String() string {
	if n, ok := policyNames[p]; ok {
		return n
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// CapWindow is a time-varying IT-power cap: within [Start, End) the
// scheduler must keep projected IT power at or below Cap. Used to model
// DR dispatch and emergency curtailment.
type CapWindow struct {
	Start time.Time
	End   time.Time
	Cap   units.Power
}

// covers reports whether t falls inside the window.
func (w CapWindow) covers(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// Config parameterizes a simulation run.
type Config struct {
	// Start anchors the simulation clock (job arrivals are offsets from
	// this instant).
	Start time.Time
	// Step is the simulation time step (default one minute).
	Step time.Duration
	// MeterInterval is the sampling interval of the produced load
	// profiles (default 15 minutes; must be a multiple of Step).
	MeterInterval time.Duration
	// Policy is the queue discipline (default EASYBackfill).
	Policy Policy

	// PowerCap, when positive, is a static IT-power cap: the scheduler
	// will not start a job that would push projected IT power above it.
	PowerCap units.Power
	// CapWindows are additional time-varying caps (DR events). The
	// effective cap at any instant is the minimum of all active caps.
	CapWindows []CapWindow

	// PriceFeed and PriceThreshold enable price-aware shifting: while
	// the feed price exceeds the threshold, deferrable (checkpointable)
	// jobs are not started unless they have waited MaxDefer already.
	PriceFeed      *timeseries.PriceSeries
	PriceThreshold units.EnergyPrice
	// MaxDefer bounds price-driven waiting (default 12 h).
	MaxDefer time.Duration

	// ShutdownIdle makes free nodes draw zero power instead of idle
	// power (the "shutdown" strategy).
	ShutdownIdle bool

	// DVFSUnderCap lets the scheduler start a job in a lower node
	// power state when the nominal state would breach the active cap:
	// the job draws the state's power and runs 1/FreqFactor times
	// longer. Without it, capped jobs simply wait. A job keeps its
	// start-time state for its whole run.
	DVFSUnderCap bool

	// PreemptUnderCap lets the scheduler checkpoint and requeue
	// running checkpointable jobs when a cap window activates below
	// the current draw (without it, pre-existing load rides through
	// the window). Preempted work resumes at the front of the queue
	// with CheckpointOverhead added to its remaining runtime.
	PreemptUnderCap bool
	// CheckpointOverhead is the time cost of one checkpoint/restart
	// cycle (default 5 minutes).
	CheckpointOverhead time.Duration

	// Horizon extends the simulation past the last arrival so queued
	// work can drain (default 7 days).
	Horizon time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Step <= 0 {
		out.Step = time.Minute
	}
	if out.MeterInterval <= 0 {
		out.MeterInterval = 15 * time.Minute
	}
	if out.MaxDefer <= 0 {
		out.MaxDefer = 12 * time.Hour
	}
	if out.Horizon <= 0 {
		out.Horizon = 7 * 24 * time.Hour
	}
	if out.CheckpointOverhead <= 0 {
		out.CheckpointOverhead = 5 * time.Minute
	}
	return out
}

// JobRecord is the per-job outcome of a run.
type JobRecord struct {
	Job *hpc.Job
	// Start is when the job began executing (offset from Config.Start).
	Start time.Duration
	// Wait is Start − Arrival.
	Wait time.Duration
	// Completed reports whether the job finished inside the horizon.
	Completed bool
	// State names the node power state the job ran in ("nominal"
	// unless DVFSUnderCap picked a lower one).
	State string
	// EnergyUsed is the job's IT energy across all its run segments —
	// the per-job quantity behind the paper's "reduce job costs with
	// respect to demand charges" recommendation.
	EnergyUsed units.Energy
}

// BoundedSlowdown returns the standard scheduling metric
// max(1, (wait+runtime)/max(runtime, 10 min)).
func (r JobRecord) BoundedSlowdown() float64 {
	den := r.Job.Runtime
	if den < 10*time.Minute {
		den = 10 * time.Minute
	}
	s := float64(r.Wait+r.Job.Runtime) / float64(den)
	if s < 1 {
		return 1
	}
	return s
}

// Result is the outcome of a simulation run.
type Result struct {
	// ITLoad is the compute-only load profile; FacilityLoad includes
	// cooling and fixed overhead via the machine's PUE model.
	ITLoad       *timeseries.PowerSeries
	FacilityLoad *timeseries.PowerSeries
	// Records holds one entry per started job, in start order.
	Records []JobRecord
	// Unstarted counts jobs still queued when the horizon ended.
	Unstarted int
	// Preemptions counts checkpoint/requeue cycles forced by caps.
	Preemptions int
	// Utilization is used node-steps / available node-steps.
	Utilization float64
	// Makespan is the instant the last job completed (or the horizon).
	Makespan time.Duration
}

// MeanWait returns the mean job wait time (0 if no jobs started).
func (r *Result) MeanWait() time.Duration {
	if len(r.Records) == 0 {
		return 0
	}
	var sum time.Duration
	for _, rec := range r.Records {
		sum += rec.Wait
	}
	return sum / time.Duration(len(r.Records))
}

// MeanBoundedSlowdown returns the mean bounded slowdown (0 if none).
func (r *Result) MeanBoundedSlowdown() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	var sum float64
	for _, rec := range r.Records {
		sum += rec.BoundedSlowdown()
	}
	return sum / float64(len(r.Records))
}

type runningJob struct {
	job   *hpc.Job
	end   time.Duration // simulation offset when it completes
	power units.Power   // total draw of the job (all nodes)
}

// Simulate runs the job trace on the machine under the config.
func Simulate(m *hpc.Machine, jobs []*hpc.Job, cfg Config) (*Result, error) {
	if m == nil {
		return nil, errors.New("sched: nil machine")
	}
	c := cfg.withDefaults()
	if c.MeterInterval%c.Step != 0 {
		return nil, errors.New("sched: meter interval must be a multiple of the step")
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
		if j.Nodes > m.Nodes {
			return nil, fmt.Errorf("sched: job %d needs %d nodes, machine has %d", j.ID, j.Nodes, m.Nodes)
		}
	}
	queue := append([]*hpc.Job(nil), jobs...)
	sort.SliceStable(queue, func(a, b int) bool { return queue[a].Arrival < queue[b].Arrival })

	var lastArrival time.Duration
	if len(queue) > 0 {
		lastArrival = queue[len(queue)-1].Arrival
	}
	end := lastArrival + c.Horizon

	state := &simState{
		machine:  m,
		cfg:      c,
		free:     m.Nodes,
		pending:  queue,
		nominal:  m.Node.States[0],
		endLimit: end,
	}
	return state.run()
}

type simState struct {
	machine *hpc.Machine
	cfg     Config
	nominal hpc.PowerState

	free     int
	pending  []*hpc.Job // not yet arrived or not yet started, arrival order
	running  []runningJob
	itPower  units.Power
	endLimit time.Duration

	records    []JobRecord
	usedSteps  float64 // node-steps of work done
	totalSteps float64
	makespan   time.Duration

	// preempted marks job IDs that were checkpointed at least once, so
	// their restart does not duplicate the job record.
	preempted   map[int]bool
	preemptions int
	// recordIdx maps job IDs to their index in records.
	recordIdx map[int]int
}

// enforceCap checkpoints and requeues checkpointable running jobs when
// the active cap sits below the current draw (newest starts first —
// least sunk work). Non-checkpointable jobs ride through the window.
func (s *simState) enforceCap(now time.Duration, wallNow time.Time) {
	cap := s.effectiveCap(wallNow)
	if cap <= 0 {
		return
	}
	current := func() units.Power {
		it := s.itPower
		if !s.cfg.ShutdownIdle {
			it += units.Power(float64(s.machine.Node.IdlePower) * float64(s.free))
		}
		return it
	}
	for current() > cap {
		// Pick the most recently started checkpointable job.
		victim := -1
		for i := len(s.running) - 1; i >= 0; i-- {
			if s.running[i].job.Checkpointable {
				victim = i
				break
			}
		}
		if victim < 0 {
			return
		}
		r := s.running[victim]
		remaining := r.end - now
		if remaining <= 0 {
			return // completes this step anyway
		}
		s.running = append(s.running[:victim], s.running[victim+1:]...)
		s.free += r.job.Nodes
		s.itPower -= r.power
		if len(s.running) == 0 {
			s.itPower = 0
		}
		// Give back the unrun part of the segment's energy; the resume
		// segment re-adds what actually runs (plus checkpoint overhead).
		if i, ok := s.recordIdx[r.job.ID]; ok {
			s.records[i].EnergyUsed -= r.power.Over(remaining)
		}
		// Requeue the remainder at the front of the queue.
		resumed := *r.job
		resumed.Runtime = remaining + s.cfg.CheckpointOverhead
		if resumed.Walltime < resumed.Runtime {
			resumed.Walltime = resumed.Runtime
		}
		s.pending = append([]*hpc.Job{&resumed}, s.pending...)
		if s.preempted == nil {
			s.preempted = make(map[int]bool)
		}
		s.preempted[resumed.ID] = true
		s.preemptions++
	}
}

func (s *simState) run() (*Result, error) {
	c := s.cfg
	stepsPerMeter := int(c.MeterInterval / c.Step)
	var samples []units.Power
	var acc float64
	accN := 0

	for now := time.Duration(0); now < s.endLimit; now += c.Step {
		wallNow := c.Start.Add(now)

		// 1. Complete finished jobs.
		s.completeJobs(now)

		// 2. Enforce a newly binding cap by preemption if configured.
		if c.PreemptUnderCap {
			s.enforceCap(now, wallNow)
		}

		// 3. Try to start queued, arrived jobs under the policy.
		s.startJobs(now, wallNow)

		// 3. Account power and utilization for this step.
		it := s.itPower
		if !c.ShutdownIdle {
			it += units.Power(float64(s.machine.Node.IdlePower) * float64(s.free))
		}
		acc += float64(it)
		accN++
		if accN == stepsPerMeter {
			samples = append(samples, units.Power(acc/float64(accN)))
			acc, accN = 0, 0
		}
		s.usedSteps += float64(s.machine.Nodes - s.free)
		s.totalSteps += float64(s.machine.Nodes)

		// Early exit: nothing running, nothing pending.
		if len(s.running) == 0 && len(s.pending) == 0 {
			break
		}
	}
	if accN > 0 {
		// Trailing partial group: divide by the full group size so the
		// sample × interval preserves energy (the unsimulated remainder
		// of the interval is genuinely zero draw — the machine drained).
		samples = append(samples, units.Power(acc/float64(stepsPerMeter)))
	}

	itLoad, err := timeseries.NewPower(c.Start, c.MeterInterval, samples)
	if err != nil {
		return nil, err
	}
	facility := itLoad.Map(s.machine.PUE.Total)

	util := 0.0
	if s.totalSteps > 0 {
		util = s.usedSteps / s.totalSteps
	}
	return &Result{
		ITLoad:       itLoad,
		FacilityLoad: facility,
		Records:      s.records,
		Unstarted:    len(s.pending),
		Preemptions:  s.preemptions,
		Utilization:  util,
		Makespan:     s.makespan,
	}, nil
}

func (s *simState) completeJobs(now time.Duration) {
	keep := s.running[:0]
	for _, r := range s.running {
		if r.end <= now {
			s.free += r.job.Nodes
			s.itPower -= r.power
			if r.end > s.makespan {
				s.makespan = r.end
			}
			// Mark the record completed.
			if i, ok := s.recordIdx[r.job.ID]; ok {
				s.records[i].Completed = true
			}
			continue
		}
		keep = append(keep, r)
	}
	s.running = keep
	if len(s.running) == 0 {
		s.itPower = 0 // guard float drift when the machine drains
	}
}

// effectiveCap returns the binding IT-power cap at wallNow (0 = uncapped).
func (s *simState) effectiveCap(wallNow time.Time) units.Power {
	cap := s.cfg.PowerCap
	for _, w := range s.cfg.CapWindows {
		if w.covers(wallNow) && (cap <= 0 || w.Cap < cap) {
			cap = w.Cap
		}
	}
	return cap
}

// priceDefer reports whether price-aware shifting wants to hold job j at
// wallNow.
func (s *simState) priceDefer(j *hpc.Job, now time.Duration, wallNow time.Time) bool {
	if s.cfg.PriceFeed == nil || !j.Checkpointable {
		return false
	}
	price, _ := s.cfg.PriceFeed.PriceAt(wallNow)
	if price <= s.cfg.PriceThreshold {
		return false
	}
	return now-j.Arrival < s.cfg.MaxDefer
}

// stateFor picks the power state job j would start in right now, or
// reports that it cannot start. Without DVFSUnderCap only the nominal
// state is considered; with it, lower states are tried in spec order
// until one fits under the active cap.
func (s *simState) stateFor(j *hpc.Job, wallNow time.Time) (hpc.PowerState, bool) {
	if j.Nodes > s.free {
		return hpc.PowerState{}, false
	}
	cap := s.effectiveCap(wallNow)
	if cap <= 0 {
		return s.nominal, true
	}
	idle := units.Power(0)
	if !s.cfg.ShutdownIdle {
		idle = units.Power(float64(s.machine.Node.IdlePower) * float64(s.free-j.Nodes))
	}
	states := s.machine.Node.States[:1]
	if s.cfg.DVFSUnderCap {
		states = s.machine.Node.States
	}
	for _, st := range states {
		jobPower := units.Power(float64(j.NodePower(s.machine.Node, st)) * float64(j.Nodes))
		if s.itPower+jobPower+idle <= cap {
			return st, true
		}
	}
	return hpc.PowerState{}, false
}

// canStart reports whether job j fits right now under nodes and cap.
func (s *simState) canStart(j *hpc.Job, wallNow time.Time) bool {
	_, ok := s.stateFor(j, wallNow)
	return ok
}

func (s *simState) start(j *hpc.Job, now time.Duration, state hpc.PowerState) {
	power := units.Power(float64(j.NodePower(s.machine.Node, state)) * float64(j.Nodes))
	runtime := time.Duration(float64(j.Runtime) / state.FreqFactor)
	s.free -= j.Nodes
	s.itPower += power
	s.running = append(s.running, runningJob{job: j, end: now + runtime, power: power})
	segEnergy := power.Over(runtime)
	if s.preempted[j.ID] {
		// Resuming a checkpointed job: accumulate energy on the
		// original record instead of duplicating it.
		if i, ok := s.recordIdx[j.ID]; ok {
			s.records[i].EnergyUsed += segEnergy
		}
		return
	}
	if s.recordIdx == nil {
		s.recordIdx = make(map[int]int)
	}
	s.recordIdx[j.ID] = len(s.records)
	s.records = append(s.records, JobRecord{
		Job: j, Start: now, Wait: now - j.Arrival, State: state.Name,
		EnergyUsed: segEnergy,
	})
}

func (s *simState) startJobs(now time.Duration, wallNow time.Time) {
	// Partition pending into arrived (queue) and future.
	arrived := 0
	for arrived < len(s.pending) && s.pending[arrived].Arrival <= now {
		arrived++
	}
	if arrived == 0 {
		return
	}
	queue := s.pending[:arrived]

	started := make(map[int]bool)
	switch s.cfg.Policy {
	case FCFS:
		for _, j := range queue {
			if s.priceDefer(j, now, wallNow) {
				break // strict FCFS: a held head blocks the queue
			}
			state, ok := s.stateFor(j, wallNow)
			if !ok {
				break
			}
			s.start(j, now, state)
			started[j.ID] = true
		}
	default: // EASYBackfill
		s.easyBackfill(queue, now, wallNow, started)
	}
	if len(started) == 0 {
		return
	}
	keep := s.pending[:0]
	for _, j := range s.pending {
		if !started[j.ID] {
			keep = append(keep, j)
		}
	}
	s.pending = keep
}

// easyBackfill starts the head if possible; otherwise computes the
// head's shadow time (when enough nodes free up, by walltime) and
// backfills any later job that fits now and finishes (by walltime)
// before the shadow time or uses only nodes the head will not need.
func (s *simState) easyBackfill(queue []*hpc.Job, now time.Duration, wallNow time.Time, started map[int]bool) {
	i := 0
	// Greedily start from the head.
	for i < len(queue) {
		j := queue[i]
		if s.priceDefer(j, now, wallNow) {
			break
		}
		state, ok := s.stateFor(j, wallNow)
		if !ok {
			break
		}
		s.start(j, now, state)
		started[j.ID] = true
		i++
	}
	if i >= len(queue) {
		return
	}
	head := queue[i]
	// Shadow time: when will head.Nodes be free, assuming running jobs
	// end at start+walltime (conservative, as EASY does)?
	shadow, spare := s.shadowFor(head, now)
	for _, j := range queue[i+1:] {
		if started[j.ID] || s.priceDefer(j, now, wallNow) {
			continue
		}
		state, ok := s.stateFor(j, wallNow)
		if !ok {
			continue
		}
		fitsBeforeShadow := now+j.Walltime <= shadow
		fitsInSpare := j.Nodes <= spare
		if fitsBeforeShadow || fitsInSpare {
			s.start(j, now, state)
			if fitsInSpare && !fitsBeforeShadow {
				spare -= j.Nodes
			}
			started[j.ID] = true
		}
	}
}

// shadowFor returns the head job's earliest guaranteed start (shadow
// time) and the node count that will remain spare at that time.
func (s *simState) shadowFor(head *hpc.Job, now time.Duration) (time.Duration, int) {
	if head.Nodes <= s.free {
		return now, s.free - head.Nodes
	}
	// Sort running jobs by conservative end (start+walltime ≈ end here:
	// we track actual runtime ends; EASY would use walltime, but actual
	// ends are what our simulator knows deterministically — this makes
	// backfill slightly more aggressive, never less safe in simulation).
	ends := make([]runningJob, len(s.running))
	copy(ends, s.running)
	sort.Slice(ends, func(a, b int) bool { return ends[a].end < ends[b].end })
	free := s.free
	for _, r := range ends {
		free += r.job.Nodes
		if free >= head.Nodes {
			return r.end, free - head.Nodes
		}
	}
	// Unreachable if job fits the machine (validated), but stay safe.
	return s.endLimit, 0
}
