package contract

// Engine compiles a contract into the single-pass billing engine
// (package billing). Compilation maps every contract component onto a
// billing.LineItemProducer — tariffs through the tariff package's
// adapter, demand charges, powerbands and emergency obligations
// directly (they implement the interface), fees as billing.FlatFee —
// and validates the lot once. Evaluation then streams each billing
// period's load series exactly once, regardless of how many components
// the contract has, and calendar months evaluate concurrently.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/billing"
	"repro/internal/obs"
	"repro/internal/tariff"
	"repro/internal/timeseries"
)

// Engine is a contract compiled for repeated billing. It is immutable
// after construction and safe for concurrent use — optimizers that bill
// the same contract in a tight loop should build one Engine and reuse
// it rather than calling ComputeBill per iteration.
type Engine struct {
	c    *Contract
	eval *billing.Evaluator
}

// NewEngine validates the contract and all its components and compiles
// the producer set.
func NewEngine(c *Contract) (*Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	producers := make([]billing.LineItemProducer, 0,
		len(c.Tariffs)+len(c.DemandCharges)+len(c.Powerbands)+len(c.Emergencies)+len(c.Fees))
	for _, t := range c.Tariffs {
		producers = append(producers, tariff.Producer(t))
	}
	for _, dc := range c.DemandCharges {
		producers = append(producers, dc)
	}
	for _, pb := range c.Powerbands {
		producers = append(producers, pb)
	}
	for _, o := range c.Emergencies {
		producers = append(producers, o)
	}
	for _, fee := range c.Fees {
		producers = append(producers, billing.FlatFee{Name: fee.Name, Amount: fee.Amount})
	}
	eval, err := billing.NewEvaluator(producers...)
	if err != nil {
		return nil, fmt.Errorf("contract %q: %w", c.Name, err)
	}
	return &Engine{c: c, eval: eval}, nil
}

// Contract returns the compiled contract.
func (e *Engine) Contract() *Contract { return e.c }

// Columnar reports whether the engine bills on the columnar fast path
// (every contract component compiled a kernel).
func (e *Engine) Columnar() bool { return e.eval.Columnar() }

// SetColumnar switches the engine between the columnar fast path and
// the legacy per-sample walk, returning the path in effect. Both paths
// produce byte-identical bills; this is a test and diagnostics hook —
// do not call it concurrently with billing.
func (e *Engine) SetColumnar(on bool) bool { return e.eval.SetColumnar(on) }

// Bill prices one billing period's load profile.
func (e *Engine) Bill(load *timeseries.PowerSeries, in BillingInput) (*Bill, error) {
	return e.BillCtx(context.Background(), load, in)
}

// BillCtx is Bill with cooperative cancellation: evaluation polls ctx
// and stops with ctx.Err() once it is done. Services use it to bound
// each request's evaluation by the request deadline.
func (e *Engine) BillCtx(ctx context.Context, load *timeseries.PowerSeries, in BillingInput) (*Bill, error) {
	defer obs.Span(ctx, "engine.bill")()
	res, err := e.eval.EvaluatePeriodCtx(ctx, load, periodContext(in))
	if err != nil {
		return nil, translateEngineErr(err)
	}
	return e.billFromResult(res), nil
}

// BillMonths splits the load into calendar months and bills each month
// concurrently, threading the running historical peak into ratchet
// charges via the engine's peak prescan. Bills come back in
// chronological order, identical to billing the months sequentially.
func (e *Engine) BillMonths(load *timeseries.PowerSeries, in BillingInput) ([]*Bill, error) {
	return e.BillMonthsWorkers(load, in, 0)
}

// BillMonthsWorkers is BillMonths with an explicit worker-pool size;
// workers <= 0 selects GOMAXPROCS, 1 forces sequential evaluation.
func (e *Engine) BillMonthsWorkers(load *timeseries.PowerSeries, in BillingInput, workers int) ([]*Bill, error) {
	return e.BillMonthsCtx(context.Background(), load, in, workers)
}

// BillMonthsCtx is BillMonthsWorkers with cooperative cancellation
// threaded into the month worker pool: once ctx is done, workers stop
// picking up months and the cancellation error is returned.
func (e *Engine) BillMonthsCtx(ctx context.Context, load *timeseries.PowerSeries, in BillingInput, workers int) ([]*Bill, error) {
	defer obs.Span(ctx, "engine.bill_months")()
	if load == nil || load.Len() == 0 {
		// A load with no samples has no months to bill.
		return []*Bill{}, nil
	}
	results, err := e.eval.EvaluateMonths(load, periodContext(in), billing.MonthsOptions{Workers: workers, Context: ctx})
	if err != nil {
		return nil, translateEngineErr(err)
	}
	// Convert into slab-backed bills: one Bill slab and one shared
	// line-item slab (sub-sliced with full capacity caps so a caller
	// appending to one bill's lines cannot clobber the next bill's).
	nlines := 0
	for _, r := range results {
		nlines += len(r.Lines)
	}
	bills := make([]*Bill, len(results))
	slab := make([]Bill, len(results))
	lineSlab := make([]LineItem, nlines)
	for i, r := range results {
		lines := lineSlab[:len(r.Lines):len(r.Lines)]
		lineSlab = lineSlab[len(r.Lines):]
		e.fillBill(&slab[i], r, lines)
		bills[i] = &slab[i]
	}
	return bills, nil
}

// Incremental opens a staged month-by-month billing session over the
// load — the optimizer's objective fast path. The caller typically
// builds load via timeseries.PowerSeries.WithSamples over a mutable
// buffer, mutates the buffer between candidates, and Stages only the
// months it touched; see billing.IncrementalMonths for the
// stage/commit/discard contract.
func (e *Engine) Incremental(ctx context.Context, load *timeseries.PowerSeries, in BillingInput) (*billing.IncrementalMonths, error) {
	im, err := e.eval.IncrementalMonths(ctx, load, periodContext(in))
	if err != nil {
		return nil, translateEngineErr(err)
	}
	return im, nil
}

// periodContext maps the contract-level billing input onto the engine's
// period context.
func periodContext(in BillingInput) billing.PeriodContext {
	ctx := billing.PeriodContext{HistoricalPeak: in.HistoricalPeak}
	if len(in.Events) > 0 {
		ctx.Emergencies = make([]billing.Window, len(in.Events))
		for i, ev := range in.Events {
			ctx.Emergencies[i] = billing.Window{Start: ev.Start, End: ev.End()}
		}
	}
	return ctx
}

// billFromResult converts an engine period result into a Bill.
func (e *Engine) billFromResult(r *billing.Result) *Bill {
	bill := &Bill{}
	e.fillBill(bill, r, make([]LineItem, len(r.Lines)))
	return bill
}

// fillBill populates a caller-owned Bill from an engine period result;
// lines must have len(r.Lines) elements and becomes the bill's Lines.
func (e *Engine) fillBill(bill *Bill, r *billing.Result, lines []LineItem) {
	*bill = Bill{
		Contract:    e.c.Name,
		PeriodStart: r.PeriodStart,
		PeriodEnd:   r.PeriodEnd,
		Energy:      r.Energy,
		PeakDemand:  r.Peak,
		Lines:       lines,
		Total:       r.Total,
	}
	for i, l := range r.Lines {
		lines[i] = LineItem{
			Component:   componentOf(l.Class),
			Description: l.Description,
			Quantity:    l.Quantity,
			Amount:      l.Amount,
		}
	}
}

// componentOf maps engine line-item classes onto typology components.
func componentOf(c billing.Class) Component {
	switch c {
	case billing.ClassFixedTariff:
		return CompFixedTariff
	case billing.ClassTOUTariff:
		return CompTOUTariff
	case billing.ClassDynamicTariff:
		return CompDynamicTariff
	case billing.ClassDemandCharge:
		return CompDemandCharge
	case billing.ClassPowerband:
		return CompPowerband
	case billing.ClassEmergencyDR:
		return CompEmergencyDR
	case billing.ClassFlatFee:
		return CompFlatFee
	default:
		return CompFlatFee
	}
}

// translateEngineErr keeps the package's historical error text for the
// empty-load case.
func translateEngineErr(err error) error {
	if errors.Is(err, billing.ErrEmptyLoad) {
		return errors.New("contract: cannot bill an empty load profile")
	}
	return err
}
