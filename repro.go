// Package repro is the public facade of scgrid, a Go library reproducing
// "An Analysis of Contracts and Relationships between Supercomputing
// Centers and Electricity Service Providers" (Clausen et al., ICPP 2019
// Workshops) as an executable system.
//
// The library models the full SC–ESP relationship:
//
//   - electricity contracts as compositions of typed components — the
//     paper's contract typology (tariffs mapped to kWh, demand charges
//     and powerbands mapped to kW, emergency-DR obligations) — with an
//     itemized billing engine;
//   - the supercomputing facility (nodes, DVFS states, PUE, batch jobs,
//     a power-aware scheduler) producing realistic MW-scale load
//     profiles;
//   - the ESP side (regional load, wind/solar, wholesale price
//     formation, DR program catalog with dispatch and settlement);
//   - SC demand-response strategies (capping, shedding, shifting,
//     on-site generation) with operational-cost accounting;
//   - the survey dataset behind the paper's Tables 1–2 and Figure 1,
//     with the classification pipeline that regenerates them;
//   - a CSCS-style procurement tender and a good-neighbor deviation
//     reporting protocol.
//
// This file re-exports the stable surface; the implementation lives in
// the internal packages, one per subsystem (see DESIGN.md for the map).
package repro

import (
	"repro/internal/advisor"
	"repro/internal/colo"
	"repro/internal/contingency"
	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/exp"
	"repro/internal/forecast"
	"repro/internal/grid"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/procurement"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/survey"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// Quantities and series.
type (
	// Power is electrical power in kW.
	Power = units.Power
	// Energy is electrical energy in kWh.
	Energy = units.Energy
	// Money is an exact fixed-point currency amount.
	Money = units.Money
	// EnergyPrice is a price per kWh.
	EnergyPrice = units.EnergyPrice
	// DemandPrice is a price per kW of billed demand.
	DemandPrice = units.DemandPrice
	// PowerSeries is a regular-interval load profile.
	PowerSeries = timeseries.PowerSeries
	// PriceSeries is a regular-interval price feed.
	PriceSeries = timeseries.PriceSeries
)

// Contract modeling.
type (
	// Contract is a complete SC electricity service contract.
	Contract = contract.Contract
	// ContractSpec is the JSON-serializable contract form.
	ContractSpec = contract.Spec
	// Profile is a contract's typology classification.
	Profile = contract.Profile
	// Bill is an itemized billing-period result.
	Bill = contract.Bill
	// Tariff prices energy consumption (fixed / TOU / dynamic).
	Tariff = tariff.Tariff
	// DemandCharge bills peak power.
	DemandCharge = demand.Charge
	// Powerband bounds consumption with continuous sampling.
	Powerband = demand.Powerband
)

// Facility and grid simulation.
type (
	// Machine is a simulated supercomputer.
	Machine = hpc.Machine
	// Job is one batch job.
	Job = hpc.Job
	// SchedulerConfig parameterizes the batch-scheduler simulation.
	SchedulerConfig = sched.Config
	// SchedulerResult is a simulation outcome.
	SchedulerResult = sched.Result
	// PriceModel forms wholesale prices from net load.
	PriceModel = market.PriceModel
	// DRProgram is one demand-response program offering.
	DRProgram = market.Program
	// DREvent is one dispatched DR event.
	DREvent = market.Event
	// DRStrategy is an SC-side response capability.
	DRStrategy = dr.Strategy
	// DREvaluation is the economics of one participation decision.
	DREvaluation = dr.Evaluation
	// ForecastModel is a load-forecasting model.
	ForecastModel = forecast.Model
	// Tender is a CSCS-style procurement tender.
	Tender = procurement.Tender
	// Exhibit is one reproduced paper exhibit or derived experiment.
	Exhibit = exp.Exhibit
	// ContingencyPlan is an escalation ladder of grid-condition
	// triggers and response strategies (§5 future work).
	ContingencyPlan = contingency.Plan
	// Battery is a behind-the-meter storage system.
	Battery = storage.Battery
	// ColoTenant is one colocation customer in the split-incentive
	// model.
	ColoTenant = colo.Tenant
	// ContractCandidate is one structure the advisor considers.
	ContractCandidate = advisor.Candidate
)

// Classify maps a contract onto the paper's typology (Figure 1).
func Classify(c *Contract) Profile { return contract.Classify(c) }

// ComputeBill prices one billing period's load under a contract.
func ComputeBill(c *Contract, load *PowerSeries, in contract.BillingInput) (*Bill, error) {
	return contract.ComputeBill(c, load, in)
}

// BillingEngine is a contract compiled for repeated billing: one pass
// over the load per period, calendar months evaluated concurrently.
type BillingEngine = contract.Engine

// NewBillingEngine validates and compiles a contract. Callers billing
// the same contract many times should reuse the returned engine.
func NewBillingEngine(c *Contract) (*BillingEngine, error) {
	return contract.NewEngine(c)
}

// Analyze produces the headline contract-against-load analysis.
func Analyze(c *Contract, load *PowerSeries, in contract.BillingInput) (*core.Analysis, error) {
	return core.Analyze(c, load, in)
}

// Simulate runs a job trace through the batch-scheduler simulator.
func Simulate(m *Machine, jobs []*Job, cfg SchedulerConfig) (*SchedulerResult, error) {
	return sched.Simulate(m, jobs, cfg)
}

// EvaluateDR runs the full DR participation decision.
func EvaluateDR(c *Contract, baseline *PowerSeries, s DRStrategy, p *DRProgram,
	events []DREvent, in contract.BillingInput) (*DREvaluation, error) {
	return dr.Evaluate(c, baseline, s, p, events, in)
}

// RunExperiment regenerates one paper exhibit or derived experiment by
// ID ("T1", "T2", "F1", "E1".."E10").
func RunExperiment(id string) (*Exhibit, error) { return exp.Run(id) }

// ExperimentIDs lists the available experiments in order.
func ExperimentIDs() []string { return exp.IDs() }

// Table1 and Table2 regenerate the paper's tables; Figure1 its typology
// figure, rendered as text.
func Table1() string { return survey.Table1().Render() }

// Table2 regenerates the paper's Table 2.
func Table2() (string, error) {
	t, err := survey.Table2()
	if err != nil {
		return "", err
	}
	return t.Render(), nil
}

// Figure1 renders the contract typology tree.
func Figure1() string { return report.RenderTree(survey.Figure1()) }

// SyntheticFacilityLoad generates a statistically shaped facility load
// profile (see hpc.LoadProfileConfig for the knobs).
func SyntheticFacilityLoad(cfg hpc.LoadProfileConfig) (*PowerSeries, error) {
	return hpc.SyntheticFacilityLoad(cfg)
}

// SystemLoad generates a regional demand profile (ESP side).
func SystemLoad(cfg grid.RegionConfig) (*PowerSeries, error) {
	return grid.SystemLoad(cfg)
}

// EvaluatePlan runs a contingency plan against grid signals and returns
// its full impact analysis.
func EvaluatePlan(p *ContingencyPlan, c *Contract, baseline *PowerSeries, sig contingency.Signals) (*contingency.Impact, error) {
	return contingency.Evaluate(p, c, baseline, sig)
}

// AdviseContract ranks candidate contract structures against a reference
// load and recommends whether to renegotiate.
func AdviseContract(currentName string, candidates []ContractCandidate, load *PowerSeries,
	in contract.BillingInput, materiality Money) (*advisor.Advice, error) {
	return advisor.Advise(currentName, candidates, load, in, materiality)
}
