// Package forecast implements the load-forecasting models the SC–ESP
// relationship relies on: the paper reports that sites collaborate with
// their ESPs "for forecasting of deviations from normal power consumption
// patterns" and that six of ten sites communicate swings in load. The
// models here (seasonal naive, moving average, simple exponential
// smoothing, additive Holt-Winters) produce a baseline expectation of
// facility load; the deviation detector compares actual consumption to
// that baseline and emits the events a "good neighbor" site would phone
// in to its ESP (maintenance windows, benchmark runs, outages).
package forecast

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// Errors returned by models.
var (
	ErrNotFitted  = errors.New("forecast: model not fitted")
	ErrTooShort   = errors.New("forecast: series too short for this model")
	ErrBadHorizon = errors.New("forecast: horizon must be positive")
	ErrBadParam   = errors.New("forecast: parameter out of range")
)

// Model is a univariate point-forecast model over equally spaced samples.
type Model interface {
	// Name identifies the model in reports and ablations.
	Name() string
	// Fit estimates model state from a history. It may be called again
	// to refit on new data.
	Fit(history []float64) error
	// Forecast returns h steps of point forecasts after the history.
	Forecast(h int) ([]float64, error)
}

// SeasonalNaive repeats the last observed season: the forecast for step
// t+k is the observation one period before. With Period = one day of
// samples this is the classic "same time yesterday" facility baseline.
type SeasonalNaive struct {
	Period int
	season []float64
}

// Name implements Model.
func (m *SeasonalNaive) Name() string { return fmt.Sprintf("seasonal-naive(%d)", m.Period) }

// Fit stores the last full period of the history.
func (m *SeasonalNaive) Fit(history []float64) error {
	if m.Period <= 0 {
		return fmt.Errorf("%w: period must be positive", ErrBadParam)
	}
	if len(history) < m.Period {
		return ErrTooShort
	}
	m.season = append(m.season[:0], history[len(history)-m.Period:]...)
	return nil
}

// Forecast implements Model.
func (m *SeasonalNaive) Forecast(h int) ([]float64, error) {
	if m.season == nil {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = m.season[i%m.Period]
	}
	return out, nil
}

// MovingAverage forecasts the mean of the last Window observations,
// held flat over the horizon.
type MovingAverage struct {
	Window int
	level  float64
	fitted bool
}

// Name implements Model.
func (m *MovingAverage) Name() string { return fmt.Sprintf("moving-average(%d)", m.Window) }

// Fit computes the trailing-window mean.
func (m *MovingAverage) Fit(history []float64) error {
	if m.Window <= 0 {
		return fmt.Errorf("%w: window must be positive", ErrBadParam)
	}
	if len(history) < m.Window {
		return ErrTooShort
	}
	var sum float64
	for _, x := range history[len(history)-m.Window:] {
		sum += x
	}
	m.level = sum / float64(m.Window)
	m.fitted = true
	return nil
}

// Forecast implements Model.
func (m *MovingAverage) Forecast(h int) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = m.level
	}
	return out, nil
}

// SES is simple exponential smoothing with smoothing factor Alpha∈(0,1].
type SES struct {
	Alpha  float64
	level  float64
	fitted bool
}

// Name implements Model.
func (m *SES) Name() string { return fmt.Sprintf("ses(%.2f)", m.Alpha) }

// Fit runs the smoother over the history.
func (m *SES) Fit(history []float64) error {
	if m.Alpha <= 0 || m.Alpha > 1 {
		return fmt.Errorf("%w: alpha must be in (0,1]", ErrBadParam)
	}
	if len(history) == 0 {
		return ErrTooShort
	}
	level := history[0]
	for _, x := range history[1:] {
		level = m.Alpha*x + (1-m.Alpha)*level
	}
	m.level = level
	m.fitted = true
	return nil
}

// Forecast implements Model.
func (m *SES) Forecast(h int) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, h)
	for i := range out {
		out[i] = m.level
	}
	return out, nil
}

// HoltWinters is additive triple exponential smoothing: level + trend +
// additive seasonality of the given Period. It needs at least two full
// periods of history.
type HoltWinters struct {
	Alpha, Beta, Gamma float64
	Period             int

	level, trend float64
	seasonal     []float64
	fitted       bool
	// lastIndex is where the fitted history ended, so forecasts pick
	// the right seasonal slot.
	lastIndex int
}

// Name implements Model.
func (m *HoltWinters) Name() string {
	return fmt.Sprintf("holt-winters(%.2f,%.2f,%.2f,p=%d)", m.Alpha, m.Beta, m.Gamma, m.Period)
}

// Fit estimates level, trend and seasonal components.
func (m *HoltWinters) Fit(history []float64) error {
	if m.Alpha <= 0 || m.Alpha > 1 || m.Beta < 0 || m.Beta > 1 || m.Gamma < 0 || m.Gamma > 1 {
		return fmt.Errorf("%w: smoothing factors out of range", ErrBadParam)
	}
	if m.Period <= 0 {
		return fmt.Errorf("%w: period must be positive", ErrBadParam)
	}
	p := m.Period
	if len(history) < 2*p {
		return ErrTooShort
	}
	// Initial level: mean of first season. Initial trend: mean period-
	// over-period change. Initial seasonal: first-season deviations.
	var s1 float64
	for _, x := range history[:p] {
		s1 += x
	}
	level := s1 / float64(p)
	var tr float64
	for i := 0; i < p; i++ {
		tr += (history[p+i] - history[i]) / float64(p)
	}
	trend := tr / float64(p)
	seasonal := make([]float64, p)
	for i := 0; i < p; i++ {
		seasonal[i] = history[i] - level
	}
	// Run the recursions over the remaining history.
	for t := p; t < len(history); t++ {
		x := history[t]
		si := t % p
		prevLevel := level
		level = m.Alpha*(x-seasonal[si]) + (1-m.Alpha)*(level+trend)
		trend = m.Beta*(level-prevLevel) + (1-m.Beta)*trend
		seasonal[si] = m.Gamma*(x-level) + (1-m.Gamma)*seasonal[si]
	}
	m.level, m.trend, m.seasonal, m.fitted = level, trend, seasonal, true
	m.lastIndex = len(history)
	return nil
}

// Forecast implements Model.
func (m *HoltWinters) Forecast(h int) ([]float64, error) {
	if !m.fitted {
		return nil, ErrNotFitted
	}
	if h <= 0 {
		return nil, ErrBadHorizon
	}
	out := make([]float64, h)
	for i := 0; i < h; i++ {
		si := (m.lastIndex + i) % m.Period
		out[i] = m.level + float64(i+1)*m.trend + m.seasonal[si]
	}
	return out, nil
}

// ForecastPower fits the model on a power series and returns the h-step
// forecast as a power series starting where the history ends.
func ForecastPower(m Model, history *timeseries.PowerSeries, h int) (*timeseries.PowerSeries, error) {
	xs := make([]float64, history.Len())
	for i := 0; i < history.Len(); i++ {
		xs[i] = float64(history.At(i))
	}
	if err := m.Fit(xs); err != nil {
		return nil, err
	}
	fc, err := m.Forecast(h)
	if err != nil {
		return nil, err
	}
	samples := make([]units.Power, len(fc))
	for i, v := range fc {
		samples[i] = units.Power(v)
	}
	return timeseries.NewPower(history.End(), history.Interval(), samples)
}

// Accuracy metrics over paired actual/forecast slices.

// MAE returns the mean absolute error.
func MAE(actual, predicted []float64) (float64, error) {
	if err := checkPairs(actual, predicted); err != nil {
		return 0, err
	}
	var sum float64
	for i := range actual {
		d := actual[i] - predicted[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(actual)), nil
}

// RMSE returns the root mean squared error.
func RMSE(actual, predicted []float64) (float64, error) {
	if err := checkPairs(actual, predicted); err != nil {
		return 0, err
	}
	var sum float64
	for i := range actual {
		d := actual[i] - predicted[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(actual))), nil
}

// MAPE returns the mean absolute percentage error, skipping zero actuals.
func MAPE(actual, predicted []float64) (float64, error) {
	if err := checkPairs(actual, predicted); err != nil {
		return 0, err
	}
	var sum float64
	n := 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		d := (actual[i] - predicted[i]) / actual[i]
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0, errors.New("forecast: MAPE undefined for all-zero actuals")
	}
	return sum / float64(n) * 100, nil
}

func checkPairs(actual, predicted []float64) error {
	if len(actual) == 0 {
		return errors.New("forecast: empty evaluation window")
	}
	if len(actual) != len(predicted) {
		return errors.New("forecast: actual and predicted lengths differ")
	}
	return nil
}

// Deviation is a contiguous run where actual load strays from the
// forecast baseline by more than a threshold — the event a good-neighbor
// SC reports to its ESP.
type Deviation struct {
	// Start of the run (first deviating interval).
	Start time.Time
	// Duration of the run.
	Duration time.Duration
	// Peak absolute deviation in kW over the run.
	Peak units.Power
	// Above is true when consumption exceeds the baseline.
	Above bool
}

// String formats the deviation the way an operator would report it.
func (d Deviation) String() string {
	dir := "below"
	if d.Above {
		dir = "above"
	}
	return fmt.Sprintf("deviation %s baseline from %s for %s (peak %s)",
		dir, d.Start.Format("2006-01-02 15:04"), d.Duration, d.Peak)
}

// DetectDeviations compares an actual load profile to a baseline and
// returns every run where |actual − baseline| > threshold. The two
// series must be aligned.
func DetectDeviations(actual, baseline *timeseries.PowerSeries, threshold units.Power) ([]Deviation, error) {
	diff, err := actual.Sub(baseline)
	if err != nil {
		return nil, err
	}
	if threshold < 0 {
		return nil, errors.New("forecast: threshold must be non-negative")
	}
	var out []Deviation
	var cur *Deviation
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	for i := 0; i < diff.Len(); i++ {
		d := diff.At(i)
		abs := d
		above := true
		if abs < 0 {
			abs = -abs
			above = false
		}
		if abs <= threshold {
			flush()
			continue
		}
		if cur == nil || cur.Above != above {
			flush()
			cur = &Deviation{Start: diff.TimeAt(i), Above: above}
		}
		cur.Duration += diff.Interval()
		if abs > cur.Peak {
			cur.Peak = abs
		}
	}
	flush()
	return out, nil
}
