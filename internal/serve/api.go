package serve

// Request/response shapes and handlers. The bill endpoint accepts the
// contract as a contract.Spec, the load inline (CSV or JSON samples) or
// as a named synthetic profile, and optional billing input (historical
// peak, declared emergencies). Single-period responses are exactly
// contract.Bill.JSON() — byte for byte what the in-process API
// produces — so CLI pipelines and the service are interchangeable.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/advisor"
	"repro/internal/contract"
	"repro/internal/feed"
	"repro/internal/hpc"
	"repro/internal/obs"
	"repro/internal/survey"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// maxBodyBytes bounds request bodies (inline CSV year at one-minute
// resolution fits comfortably).
const maxBodyBytes = 16 << 20

// defaultFlatFeedRate mirrors cmd/scbill: dynamic tariffs evaluated
// without market data get a flat reference feed at this price.
const defaultFlatFeedRate = 0.045

// LoadSpec selects the load profile for a request: exactly one of the
// fields must be set.
type LoadSpec struct {
	// CSV is an inline "timestamp,kw" profile (header optional).
	CSV string `json:"csv,omitempty"`
	// Series is an inline JSON profile.
	Series *SeriesSpec `json:"series,omitempty"`
	// Profile names a built-in synthetic profile (see NamedProfiles).
	Profile string `json:"profile,omitempty"`
	// Synthetic generates a profile from explicit parameters.
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
}

// SeriesSpec is an inline load profile: a start instant, a fixed
// metering interval, and the kW samples.
type SeriesSpec struct {
	Start           time.Time `json:"start"`
	IntervalSeconds int       `json:"interval_seconds"`
	KW              []float64 `json:"kw"`
}

// SyntheticSpec parameterizes the synthetic facility-load generator,
// mirroring cmd/scbill's flags.
type SyntheticSpec struct {
	Start           time.Time `json:"start,omitempty"`
	Days            int       `json:"days,omitempty"`
	IntervalMinutes int       `json:"interval_minutes,omitempty"`
	BaseMW          float64   `json:"base_mw,omitempty"`
	PeakRatio       float64   `json:"peak_ratio,omitempty"`
	NoiseSigma      float64   `json:"noise_sigma,omitempty"`
	Seed            int64     `json:"seed,omitempty"`
}

// EventSpec is one declared grid emergency.
type EventSpec struct {
	Start           time.Time `json:"start"`
	DurationMinutes int       `json:"duration_minutes"`
}

// InputSpec is the optional billing input.
type InputSpec struct {
	HistoricalPeakKW float64     `json:"historical_peak_kw,omitempty"`
	Events           []EventSpec `json:"events,omitempty"`
}

// FeedSpec configures the price feed behind dynamic tariffs. Only flat
// reference feeds are supported over the wire; omitted means the
// default reference rate.
type FeedSpec struct {
	FlatRatePerKWh float64 `json:"flat_rate_per_kwh"`
}

// BillRequest is the POST /v1/bill body.
type BillRequest struct {
	Contract json.RawMessage `json:"contract"`
	Load     LoadSpec        `json:"load"`
	Input    *InputSpec      `json:"input,omitempty"`
	Feed     *FeedSpec       `json:"feed,omitempty"`
}

// AdviseCandidate is one candidate contract structure.
type AdviseCandidate struct {
	Name     string          `json:"name,omitempty"`
	Contract json.RawMessage `json:"contract"`
}

// AdviseRequest is the POST /v1/advise body.
type AdviseRequest struct {
	Current     string            `json:"current"`
	Candidates  []AdviseCandidate `json:"candidates"`
	Load        LoadSpec          `json:"load"`
	Input       *InputSpec        `json:"input,omitempty"`
	Feed        *FeedSpec         `json:"feed,omitempty"`
	Materiality float64           `json:"materiality,omitempty"`
}

// NamedProfiles lists the built-in synthetic load profiles and their
// generator parameters.
func NamedProfiles() map[string]hpc.LoadProfileConfig {
	march := time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
	january := time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)
	return map[string]hpc.LoadProfileConfig{
		// The examples/quickstart month: steady 12 MW facility.
		"quickstart-month": {
			Start: march, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
			Base: 12 * units.Megawatt, PeakToAverage: 1.5, NoiseSigma: 0.02, Seed: 1,
		},
		// A peakier month — the kitchen-sink golden-test load.
		"peaky-month": {
			Start: march, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
			Base: 12 * units.Megawatt, PeakToAverage: 1.8, NoiseSigma: 0.03, Seed: 21,
		},
		// A full calendar year for monthly billing and ratchet studies.
		"year-in-life": {
			Start: january, Span: 365 * 24 * time.Hour, Interval: 15 * time.Minute,
			Base: 12 * units.Megawatt, PeakToAverage: 1.6, NoiseSigma: 0.02, Seed: 7,
		},
	}
}

// resolveLoad materializes the request's load profile.
func resolveLoad(ls LoadSpec) (*timeseries.PowerSeries, error) {
	set := 0
	for _, present := range []bool{ls.CSV != "", ls.Series != nil, ls.Profile != "", ls.Synthetic != nil} {
		if present {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("load: set exactly one of csv, series, profile, synthetic")
	}
	switch {
	case ls.CSV != "":
		return timeseries.ReadPowerCSV(strings.NewReader(ls.CSV))
	case ls.Series != nil:
		if ls.Series.IntervalSeconds <= 0 {
			return nil, errors.New("load.series: interval_seconds must be positive")
		}
		samples := make([]units.Power, len(ls.Series.KW))
		for i, v := range ls.Series.KW {
			samples[i] = units.Power(v)
		}
		return timeseries.NewPower(ls.Series.Start,
			time.Duration(ls.Series.IntervalSeconds)*time.Second, samples)
	case ls.Profile != "":
		cfg, ok := NamedProfiles()[ls.Profile]
		if !ok {
			names := make([]string, 0, len(NamedProfiles()))
			for n := range NamedProfiles() {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("load.profile: unknown profile %q (have: %s)",
				ls.Profile, strings.Join(names, ", "))
		}
		return hpc.SyntheticFacilityLoad(cfg)
	default:
		return resolveSynthetic(*ls.Synthetic)
	}
}

func resolveSynthetic(sp SyntheticSpec) (*timeseries.PowerSeries, error) {
	cfg := hpc.LoadProfileConfig{
		Start:         sp.Start,
		Span:          time.Duration(sp.Days) * 24 * time.Hour,
		Interval:      time.Duration(sp.IntervalMinutes) * time.Minute,
		Base:          units.Power(sp.BaseMW) * units.Megawatt,
		PeakToAverage: sp.PeakRatio,
		NoiseSigma:    sp.NoiseSigma,
		Seed:          sp.Seed,
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
	}
	if sp.Days == 0 {
		cfg.Span = 30 * 24 * time.Hour
	}
	if sp.IntervalMinutes == 0 {
		cfg.Interval = 15 * time.Minute
	}
	if sp.BaseMW == 0 {
		cfg.Base = 12 * units.Megawatt
	}
	if sp.PeakRatio == 0 {
		cfg.PeakToAverage = 1.5
	}
	if sp.Seed == 0 {
		cfg.Seed = 1
	}
	return hpc.SyntheticFacilityLoad(cfg)
}

func resolveInput(in *InputSpec) contract.BillingInput {
	if in == nil {
		return contract.BillingInput{}
	}
	out := contract.BillingInput{HistoricalPeak: units.Power(in.HistoricalPeakKW)}
	for _, ev := range in.Events {
		out.Events = append(out.Events, contract.EmergencyEvent{
			Start:    ev.Start,
			Duration: time.Duration(ev.DurationMinutes) * time.Minute,
		})
	}
	return out
}

// specNeedsFeed reports whether any tariff in the spec prices against a
// market feed — only then does the feed participate in the cache key.
func specNeedsFeed(spec *contract.Spec) bool {
	for _, t := range spec.Tariffs {
		if t.Type == "dynamic" {
			return true
		}
	}
	return false
}

// feedResolution records how a request's market prices were obtained —
// for response headers, the degraded body marking, and metrics. The
// zero value means "no server feed consulted" (static spec, explicit
// flat rate, or no feed configured).
type feedResolution struct {
	used   bool
	state  feed.State
	age    time.Duration
	reason string
}

func (fr feedResolution) degraded() bool { return fr.used && fr.state == feed.Degraded }

// worse keeps the more severe of two resolutions (degraded > stale >
// fresh > unused), for multi-engine requests like /v1/advise.
func (fr feedResolution) worse(other feedResolution) feedResolution {
	switch {
	case !other.used:
		return fr
	case !fr.used, other.state > fr.state:
		return other
	default:
		return fr
	}
}

// engineFor parses the raw contract spec, resolves the feed, and
// returns the compiled engine — from the LRU when the same spec (and,
// for dynamic tariffs, the same feed) was compiled before. The cache
// span covers the whole lookup (including any single-flight wait); the
// compile span covers only an actual build.
//
// Feed resolution, for specs with a dynamic tariff: an explicit
// feed.flat_rate_per_kwh in the request (or no configured PriceFeed)
// selects the flat reference feed, bit-for-bit the pre-feed behavior.
// Otherwise the configured feed answers fresh or stale — the engine is
// keyed on the feed version, so a refreshed feed recompiles and a
// stable one reuses the cache — and a degraded answer swaps the spec
// for its fixed-fallback form (Spec.FallbackSpec) so billing proceeds
// at the contract's declared backstop price instead of failing.
func (s *Server) engineFor(ctx context.Context, raw json.RawMessage, feedSpec *FeedSpec, load *timeseries.PowerSeries) (*contract.Engine, feedResolution, error) {
	ps, err := parseSpecRaw(raw)
	if err != nil {
		return nil, feedResolution{}, err
	}
	return s.engineForSpec(ctx, ps, feedSpec, load)
}

// parsedSpec is a contract spec parsed and content-hashed once, so
// batch requests re-billing the same spec against many loads pay the
// parse exactly once per distinct input.
type parsedSpec struct {
	spec *contract.Spec
	key  string
}

func parseSpecRaw(raw json.RawMessage) (parsedSpec, error) {
	if len(raw) == 0 {
		return parsedSpec{}, errors.New("contract: missing contract spec")
	}
	spec, err := contract.ParseSpec(raw)
	if err != nil {
		return parsedSpec{}, err
	}
	key, err := contract.HashSpec(spec)
	if err != nil {
		return parsedSpec{}, err
	}
	return parsedSpec{spec: spec, key: key}, nil
}

// engineForSpec is engineFor after spec parsing: feed resolution, cache
// lookup and (on a miss) the compile.
func (s *Server) engineForSpec(ctx context.Context, ps parsedSpec, feedSpec *FeedSpec, load *timeseries.PowerSeries) (*contract.Engine, feedResolution, error) {
	var res feedResolution
	spec, key := ps.spec, ps.key

	var prices *timeseries.PriceSeries
	switch {
	case !specNeedsFeed(spec):
		// Static specs never consult a feed; key and build match the
		// pre-feed fast path exactly.
	case s.cfg.PriceFeed == nil || (feedSpec != nil && feedSpec.FlatRatePerKWh > 0):
		// Flat reference feed over the load span, as cmd/scbill does.
		rate := defaultFlatFeedRate
		if feedSpec != nil && feedSpec.FlatRatePerKWh > 0 {
			rate = feedSpec.FlatRatePerKWh
		}
		n := int(load.End().Sub(load.Start())/time.Hour) + 1
		prices = timeseries.ConstantPrice(load.Start(), time.Hour, n, units.EnergyPrice(rate))
		key = fmt.Sprintf("%s|flat:%g:%s:%d", key, rate,
			load.Start().UTC().Format(time.RFC3339), n)
	default:
		fr := s.cfg.PriceFeed.Prices(ctx, load.Start(), load.End())
		res = feedResolution{used: true, state: fr.State, age: fr.Age, reason: fr.Reason}
		if fr.State == feed.Degraded {
			spec = spec.FallbackSpec(s.cfg.FallbackRate)
			key = fmt.Sprintf("%s|fallback:%g", key, s.cfg.FallbackRate)
		} else {
			prices = fr.Series
			key = fmt.Sprintf("%s|feed:%d", key, fr.Version)
		}
	}

	defer obs.Span(ctx, stageCache)()
	eng, err := s.cache.get(key, func() (*contract.Engine, error) {
		defer obs.Span(ctx, stageCompile)()
		c, err := spec.Build(contract.BuildContext{Feed: prices})
		if err != nil {
			return nil, err
		}
		return contract.NewEngine(c)
	})
	return eng, res, err
}

// noteFeed sets the feed-state response headers and counts stale and
// degraded answers. Must run before the response body is written.
func (s *Server) noteFeed(w http.ResponseWriter, fr feedResolution) {
	if !fr.used {
		return
	}
	w.Header().Set("X-SCBill-Feed", fr.state.String())
	switch fr.state {
	case feed.Stale:
		s.metrics.feedStale.Add(1)
		w.Header().Set("X-SCBill-Feed-Age", fr.age.Round(time.Second).String())
	case feed.Degraded:
		s.metrics.degraded.Add(1)
		w.Header().Set("X-SCBill-Degraded", fr.reason)
	}
}

// markDegraded splices "degraded": true and the reason into a rendered
// bill without re-marshalling, so non-degraded responses stay byte-
// identical to contract.Bill.JSON().
func markDegraded(data []byte, reason string) []byte {
	i := bytes.LastIndexByte(data, '}')
	if i < 0 {
		return data
	}
	reasonJSON, _ := json.Marshal(reason)
	var b bytes.Buffer
	b.Grow(len(data) + len(reasonJSON) + 64)
	b.Write(bytes.TrimRight(data[:i], " \t\n"))
	b.WriteString(",\n  \"degraded\": true,\n  \"degraded_reason\": ")
	b.Write(reasonJSON)
	b.WriteString("\n}")
	b.Write(data[i+1:])
	return b.Bytes()
}

func (s *Server) handleBill(w http.ResponseWriter, r *http.Request) {
	var req BillRequest
	if !decodeBody(w, r, &req) {
		return
	}
	load, err := resolveLoad(req.Load)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	eng, feedRes, err := s.engineFor(r.Context(), req.Contract, req.Feed, load)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.noteFeed(w, feedRes)
	in := resolveInput(req.Input)

	if hook := s.billHook; hook != nil {
		hook(r.Context())
	}

	if r.URL.Query().Get("monthly") == "1" {
		endEval := obs.Span(r.Context(), stageEvaluate)
		bills, err := eng.BillMonthsCtx(r.Context(), load, in, s.cfg.MonthWorkers)
		endEval()
		if err != nil {
			writeEvalError(w, err)
			return
		}
		endEncode := obs.Span(r.Context(), stageEncode)
		defer endEncode()
		data, err := monthlyBillBody(eng, bills, feedRes)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
		_, _ = w.Write([]byte("\n"))
		return
	}

	endEval := obs.Span(r.Context(), stageEvaluate)
	bill, err := eng.BillCtx(r.Context(), load, in)
	endEval()
	if err != nil {
		writeEvalError(w, err)
		return
	}
	endEncode := obs.Span(r.Context(), stageEncode)
	defer endEncode()
	data, err := bill.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if feedRes.degraded() {
		data = markDegraded(data, feedRes.reason)
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// monthlyBillBody renders the monthly-billing response object — the
// exact bytes /v1/bill?monthly=1 serves before its trailing newline,
// shared with the batch endpoint so per-item batch bodies stay
// byte-identical to sequential responses.
func monthlyBillBody(eng *contract.Engine, bills []*contract.Bill, fr feedResolution) ([]byte, error) {
	months := make([]json.RawMessage, len(bills))
	for i, b := range bills {
		data, err := b.JSON()
		if err != nil {
			return nil, err
		}
		months[i] = data
	}
	return json.MarshalIndent(struct {
		Contract       string            `json:"contract"`
		Months         []json.RawMessage `json:"months"`
		GrandTotal     float64           `json:"grand_total"`
		Degraded       bool              `json:"degraded,omitempty"`
		DegradedReason string            `json:"degraded_reason,omitempty"`
	}{eng.Contract().Name, months, contract.TotalOf(bills).Float(),
		fr.degraded(), degradedReason(fr)}, "", "  ")
}

// degradedReason returns the reason only for degraded resolutions, so
// omitempty drops the field from healthy responses.
func degradedReason(fr feedResolution) string {
	if fr.degraded() {
		return fr.reason
	}
	return ""
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req AdviseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Candidates) == 0 {
		writeError(w, http.StatusBadRequest, "advise: no candidates")
		return
	}
	load, err := resolveLoad(req.Load)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var feedRes feedResolution
	candidates := make([]advisor.EngineCandidate, 0, len(req.Candidates))
	for i, c := range req.Candidates {
		eng, fr, err := s.engineFor(r.Context(), c.Contract, req.Feed, load)
		if err != nil {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("advise: candidate %d: %v", i, err))
			return
		}
		feedRes = feedRes.worse(fr)
		name := c.Name
		if name == "" {
			name = eng.Contract().Name
		}
		candidates = append(candidates, advisor.EngineCandidate{Name: name, Engine: eng})
	}
	s.noteFeed(w, feedRes)
	endEval := obs.Span(r.Context(), stageEvaluate)
	advice, ranked, err := advisor.AdviseEngines(r.Context(), req.Current, candidates,
		load, resolveInput(req.Input), units.MoneyFromFloat(req.Materiality))
	endEval()
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeEvalError(w, err)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	type rankedJSON struct {
		Name        string  `json:"name"`
		Annual      float64 `json:"annual"`
		DeltaVsBest float64 `json:"delta_vs_best"`
	}
	out := struct {
		Ranking           []rankedJSON `json:"ranking"`
		Current           string       `json:"current"`
		Best              string       `json:"best"`
		AnnualSaving      float64      `json:"annual_saving"`
		ShouldRenegotiate bool         `json:"should_renegotiate"`
		Advice            string       `json:"advice"`
	}{
		Current:           advice.Current.Candidate.Name,
		Best:              advice.Best.Candidate.Name,
		AnnualSaving:      advice.AnnualSaving.Float(),
		ShouldRenegotiate: advice.ShouldRenegotiate,
		Advice:            advice.String(),
	}
	for _, sc := range ranked {
		out.Ranking = append(out.Ranking, rankedJSON{
			Name: sc.Candidate.Name, Annual: sc.Annual.Float(), DeltaVsBest: sc.DeltaVsBest.Float(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSurveyRoster(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Name    string `json:"name"`
		Country string `json:"country"`
		Region  string `json:"region"`
	}
	var out []entry
	for _, e := range survey.Roster() {
		out = append(out, entry{e.Name, e.Country, e.Region.String()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSurveyRecords(w http.ResponseWriter, _ *http.Request) {
	type record struct {
		ID                 int      `json:"id"`
		Components         []string `json:"components"`
		RNP                string   `json:"rnp"`
		CommunicatesSwings bool     `json:"communicates_swings"`
		SwingsByContract   bool     `json:"swings_by_contract"`
	}
	var out []record
	for _, site := range survey.Records() {
		rec := record{
			ID:                 site.ID,
			RNP:                site.RNP.String(),
			CommunicatesSwings: site.CommunicatesSwings,
			SwingsByContract:   site.SwingsByContract,
		}
		for _, comp := range site.Profile.Components() {
			rec.Components = append(rec.Components, comp.String())
		}
		out = append(out, rec)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSurveyTypology(w http.ResponseWriter, _ *http.Request) {
	matrix, err := survey.MatrixCounts()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	discrepancies, err := survey.Discrepancies()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	type discJSON struct {
		Component string `json:"component"`
		Text      int    `json:"text"`
		Matrix    int    `json:"matrix"`
	}
	out := struct {
		Figure1       *typologyJSON  `json:"figure1"`
		MatrixCounts  map[string]int `json:"matrix_counts"`
		TextClaims    map[string]int `json:"text_claims"`
		RNP           map[string]int `json:"rnp"`
		Sites         int            `json:"sites"`
		Discrepancies []discJSON     `json:"discrepancies"`
	}{
		Figure1:      typologyTree(contract.Typology()),
		MatrixCounts: componentCounts(matrix.Component),
		TextClaims:   componentCounts(survey.TextClaims().Component),
		RNP:          rnpCounts(matrix.RNP),
		Sites:        matrix.Sites,
	}
	for _, d := range discrepancies {
		out.Discrepancies = append(out.Discrepancies, discJSON{
			Component: d.Component.String(), Text: d.Text, Matrix: d.Matrix,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type typologyJSON struct {
	Title      string          `json:"title"`
	Detail     string          `json:"detail,omitempty"`
	Component  string          `json:"component,omitempty"`
	Encourages string          `json:"encourages,omitempty"`
	Children   []*typologyJSON `json:"children,omitempty"`
}

func typologyTree(n *contract.TypologyNode) *typologyJSON {
	out := &typologyJSON{
		Title:      n.Title,
		Detail:     n.Detail,
		Encourages: n.Encourages,
	}
	if n.Component >= 0 {
		out.Component = n.Component.String()
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, typologyTree(c))
	}
	return out
}

func componentCounts(m map[contract.Component]int) map[string]int {
	out := make(map[string]int, len(m))
	for c, n := range m {
		out[c.String()] = n
	}
	return out
}

func rnpCounts(m map[survey.RNP]int) map[string]int {
	out := make(map[string]int, len(m))
	for r, n := range m {
		out[r.String()] = n
	}
	return out
}

// handleHealthz is the liveness probe: 200 for as long as the process
// can serve HTTP at all, draining included. Restart decisions belong to
// a dead process, not a graceful drain — that distinction is /readyz's.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Inflight      int     `json:"inflight"`
	}{status, time.Since(s.started).Seconds(), s.Inflight()})
}

// handleReadyz is the readiness probe: it flips to 503 the moment
// Shutdown begins, so load balancers stop routing new work while the
// in-flight requests drain behind a still-live /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	status, code := "ready", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status   string `json:"status"`
		Inflight int    `json:"inflight"`
	}{status, s.Inflight()})
}

// decodeBody parses the JSON request body into dst, writing a 400 and
// returning false on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// writeEvalError maps an evaluation error onto a status: deadline and
// cancellation become 504 (the request ran out of time mid-evaluation),
// anything else is a client-side contract/load problem.
func writeEvalError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeError(w, http.StatusGatewayTimeout, "evaluation exceeded the request deadline")
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(data)
	_, _ = w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}
