package analysistest

import (
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestNearestDiagnostic: an unsatisfied want is reported with the
// closest actual diagnostic — same file by line distance, any file as
// a fallback, and an explicit note when the analyzer said nothing.
func TestNearestDiagnostic(t *testing.T) {
	fset := token.NewFileSet()
	fa := fset.AddFile("a.go", -1, 1000)
	fb := fset.AddFile("b.go", -1, 1000)
	for i := 0; i < 20; i++ {
		fa.AddLine(i * 40)
		fb.AddLine(i * 40)
	}
	atLine := func(f *token.File, line int) token.Pos { return f.LineStart(line) }

	diags := []analysis.Diagnostic{
		{Pos: atLine(fa, 3), Analyzer: "goroleak", Message: "goroutine has no bounded lifetime"},
		{Pos: atLine(fa, 12), Analyzer: "timerstop", Message: "timer is not stopped"},
		{Pos: atLine(fb, 5), Analyzer: "respclose", Message: "body is not closed"},
	}

	got := nearestDiagnostic(fset, diags, lineKey{file: "a.go", line: 11})
	if !strings.Contains(got, "a.go:12: [timerstop] timer is not stopped") {
		t.Errorf("want nearest same-file diagnostic a.go:12, got %q", got)
	}

	got = nearestDiagnostic(fset, diags, lineKey{file: "c.go", line: 1})
	if !strings.Contains(got, "nearest actual diagnostic") || !strings.Contains(got, "goroleak") {
		t.Errorf("want any-file fallback naming the first diagnostic, got %q", got)
	}

	got = nearestDiagnostic(fset, nil, lineKey{file: "a.go", line: 1})
	if !strings.Contains(got, "no diagnostics were reported") {
		t.Errorf("want empty-package note, got %q", got)
	}
}
