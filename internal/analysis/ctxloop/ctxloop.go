// Package ctxloop requires sample loops in billing paths to poll for
// cancellation.
//
// Invariant guarded: a year of 15-minute samples is ~35k points and a
// pathological request can carry far more; scserved threads a request
// context into every evaluation precisely so that a disconnected
// client stops burning CPU. A function that takes a context and then
// iterates PowerSeries samples without ever consulting it silently
// breaks that contract. Inside internal/billing and internal/contract,
// any outermost loop whose body reads PowerSeries samples (At/TimeAt)
// must poll ctx.Done(), receive from a done channel, or delegate to a
// context-aware ...Ctx helper (possibly every N iterations — the
// stride check counts).
//
// The columnar evaluation path reads samples without ever calling At:
// it ranges over month blocks (PowerSeries.Blocks/AppendBlocks) and
// scans the MonthBlock.Samples slices directly. Those block-scan loops
// carry exactly the same obligation — a year of samples is a year of
// samples whichever representation it flows through — so fetching a
// block view or touching a MonthBlock's Samples field inside the loop
// counts as reading the sample stream.
//
// The optimizer (internal/optimize) is in scope for the same reason:
// its candidate-evaluation loop re-reads the sample stream thousands of
// times per request — a 2000-candidate search over a year of 15-minute
// samples touches tens of millions of points — and /v1/optimize threads
// the request context into it. A strided poll between candidates (or
// delegating each evaluation to a ctx-forwarding helper like
// IncrementalMonths.Stage) satisfies the check.
//
// The router (internal/route) carries the dual obligation. Its
// ctx-taking functions run clock-driven background loops — health
// pollers sleeping or ticking between probes — and a loop that blocks
// on the clock without ever consulting ctx leaks its goroutine past
// shutdown. There the rule is: any outermost loop that waits on the
// clock (time.Sleep, or a receive from a time.Time channel such as a
// ticker's) must poll cancellation the same way the sample loops must.
//
// Functions without a context parameter are exempt: they have nothing
// to poll (bounded helpers like a per-month peak scan stay legal), and
// the analyzer's job is to keep the ctx-taking entry points honest.
package ctxloop

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var scopes = []string{
	"internal/billing",
	"internal/contract",
	"internal/optimize",
}

// waitScopes are packages whose ctx-taking functions run clock-driven
// background loops instead of sample scans; there the obligation is a
// cancellation poll next to every clock wait.
var waitScopes = []string{
	"internal/route",
}

var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "require loops over PowerSeries samples (per-sample reads or columnar " +
		"month-block scans) in ctx-taking billing functions to poll ctx.Done() " +
		"or call a ...Ctx helper; in router packages, require clock-wait loops " +
		"(sleep/ticker) in ctx-taking functions to poll cancellation",
	Run: run,
}

func run(pass *analysis.Pass) error {
	samples := analysis.InScope(pass.Pkg, scopes...)
	waits := analysis.InScope(pass.Pkg, waitScopes...)
	if !samples && !waits {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass.TypesInfo, fd) {
				continue
			}
			if samples {
				checkBody(pass, fd.Body)
			}
			if waits {
				checkWaitBody(pass, fd.Body)
			}
		}
	}
	return nil
}

// hasCtxParam reports whether the declared function takes a
// context.Context parameter.
func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.IsContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// checkBody walks statements looking for outermost loops. Only maximal
// loops are judged: a bounded inner loop is fine when the enclosing
// loop polls (the per-block trace loop shape), so the poll and the
// sample reads are sought anywhere in the outermost loop's subtree.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a literal's ctx discipline is its own affair
		case *ast.ForStmt, *ast.RangeStmt:
			if readsSamples(pass.TypesInfo, n) && !pollsCancellation(pass.TypesInfo, n) {
				pass.Reportf(n.Pos(),
					"loop reads PowerSeries samples but never polls ctx; check ctx.Done() (a strided check is fine) or call a ...Ctx helper")
			}
			return false // inner loops are covered by the outermost verdict
		}
		return true
	})
}

// checkWaitBody is checkBody's router-side dual: outermost loops that
// block on the clock must poll cancellation, or shutdown leaks the
// goroutine.
func checkWaitBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if waitsOnClock(pass.TypesInfo, n) && !pollsCancellation(pass.TypesInfo, n) {
				pass.Reportf(n.Pos(),
					"loop blocks on the clock but never polls ctx; select on ctx.Done() alongside the sleep or ticker")
			}
			return false
		}
		return true
	})
}

// waitsOnClock reports whether the subtree blocks on the passage of
// time (outside nested function literals): a time.Sleep call, or a
// receive from / range over a time.Time channel (ticker or timer).
func waitsOnClock(info *types.Info, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isTimeChan(info, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isTimeChan(info, n.X) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if analysis.FuncIs(analysis.CalleeFunc(info, n), "time", "Sleep") {
				found = true
			}
		}
		return !found
	})
	return found
}

// isTimeChan reports whether the expression is a channel of time.Time.
func isTimeChan(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	ch, ok := types.Unalias(tv.Type).Underlying().(*types.Chan)
	if !ok {
		return false
	}
	return analysis.TypeIs(ch.Elem(), "time", "Time")
}

// readsSamples reports whether the subtree reads the sample stream
// (outside nested function literals): a per-sample accessor call
// (PowerSeries.At/TimeAt/Value), a block-view fetch
// (PowerSeries.Blocks/AppendBlocks), or a columnar read of a
// MonthBlock's Samples field.
func readsSamples(info *types.Info, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// blk.Samples on a timeseries.MonthBlock: the columnar scan.
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal &&
				n.Sel.Name == "Samples" &&
				analysis.TypeIs(sel.Recv(), "internal/timeseries", "MonthBlock") {
				found = true
				return false
			}
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(info, n)
			if fn == nil {
				return true
			}
			switch fn.Name() {
			case "At", "TimeAt", "Value", "Blocks", "AppendBlocks":
			default:
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if analysis.TypeIs(sig.Recv().Type(), "internal/timeseries", "PowerSeries") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// pollsCancellation reports whether the subtree contains any
// cancellation poll: a ctx.Done() call, a receive from a struct{}
// channel (the shape Done() returns), a call that forwards a
// context.Context argument, or a call to a ...Ctx helper.
func pollsCancellation(info *types.Info, loop ast.Node) bool {
	polled := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if polled {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			// <-done where done is a struct{} channel.
			if n.Op.String() == "<-" {
				if tv, ok := info.Types[n.X]; ok {
					if ch, ok := types.Unalias(tv.Type).Underlying().(*types.Chan); ok {
						// Empty struct only: chan struct{} is the Done()
						// shape; a chan time.Time (whose underlying type
						// is also a struct) is a clock, not a poll.
						if st, isStruct := types.Unalias(ch.Elem()).Underlying().(*types.Struct); isStruct && st.NumFields() == 0 {
							polled = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(info, n); fn != nil {
				if fn.Name() == "Done" {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
						analysis.IsContextType(sig.Recv().Type()) {
						polled = true
						return false
					}
				}
				if strings.HasSuffix(fn.Name(), "Ctx") {
					polled = true
					return false
				}
			}
			for _, arg := range n.Args {
				if tv, ok := info.Types[arg]; ok && analysis.IsContextType(tv.Type) {
					polled = true
					return false
				}
			}
		}
		return true
	})
	return polled
}
