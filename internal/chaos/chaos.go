// Package chaos fault-injects price providers so the resilience stack
// can be exercised deterministically. The surveyed centers' dynamic
// tariffs depend on live market data, and the interesting billing
// failures all start with that dependency misbehaving: refused
// connections, latency spikes, hung sockets, and structurally valid
// but numerically garbage payloads. Injector wraps any feed provider
// and produces exactly those faults from a seeded PRNG, so a soak run
// that finds a bug can be replayed bit-for-bit from its seed.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/feed"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// ErrInjected is the base error for injected fetch failures.
var ErrInjected = errors.New("chaos: injected feed failure")

// Config sets fault probabilities, each in [0, 1] and drawn
// independently per call in the order error, stuck, malformed,
// latency. The zero value injects nothing.
type Config struct {
	// Seed fixes the fault schedule; runs with the same seed and call
	// sequence see the same faults.
	Seed int64
	// ErrorRate is the probability a Fetch fails outright.
	ErrorRate float64
	// LatencyRate is the probability a Fetch is delayed by Latency
	// before proceeding normally.
	LatencyRate float64
	// Latency is the injected delay; <= 0 selects 50 ms.
	Latency time.Duration
	// StuckRate is the probability a Fetch blocks until its context
	// dies — the hung-socket fault. Keep this small or give callers
	// deadlines.
	StuckRate float64
	// MalformedRate is the probability a Fetch returns a structurally
	// valid series poisoned with a NaN sample, which must be caught by
	// feed.Validate at the cache boundary.
	MalformedRate float64
}

// Stats counts injected faults.
type Stats struct {
	Calls, Errors, Latencies, Stuck, Malformed uint64
}

// Injector wraps a PriceProvider with seeded fault injection. Safe for
// concurrent use.
type Injector struct {
	next feed.PriceProvider
	cfg  Config

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// New wraps next with fault injection per cfg.
func New(next feed.PriceProvider, cfg Config) *Injector {
	if cfg.Latency <= 0 {
		cfg.Latency = 50 * time.Millisecond
	}
	return &Injector{
		next: next,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// roll draws the per-call fault decisions under one lock acquisition so
// concurrent fetches cannot interleave draws (which would break seed
// reproducibility for a fixed call order).
func (j *Injector) roll() (fail, stuck, malformed, delayed bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stats.Calls++
	fail = j.rng.Float64() < j.cfg.ErrorRate
	stuck = j.rng.Float64() < j.cfg.StuckRate
	malformed = j.rng.Float64() < j.cfg.MalformedRate
	delayed = j.rng.Float64() < j.cfg.LatencyRate
	switch {
	case fail:
		j.stats.Errors++
	case stuck:
		j.stats.Stuck++
	case malformed:
		j.stats.Malformed++
	}
	if delayed && !fail && !stuck {
		j.stats.Latencies++
	}
	return fail, stuck, malformed, delayed
}

// Fetch applies at most one primary fault (error, stuck, or malformed,
// in that precedence) plus an optional latency spike, then delegates.
func (j *Injector) Fetch(ctx context.Context, start, end time.Time) (*timeseries.PriceSeries, error) {
	fail, stuck, malformed, delayed := j.roll()
	switch {
	case fail:
		return nil, fmt.Errorf("%w: connection refused", ErrInjected)
	case stuck:
		<-ctx.Done()
		return nil, fmt.Errorf("%w: upstream hung: %v", ErrInjected, ctx.Err())
	}
	if delayed {
		t := time.NewTimer(j.cfg.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: upstream slow: %v", ErrInjected, ctx.Err())
		}
	}
	s, err := j.next.Fetch(ctx, start, end)
	if err != nil {
		return nil, err
	}
	if malformed {
		return poison(s), nil
	}
	return s, nil
}

// poison rebuilds s with its middle sample replaced by NaN — parses
// and type-checks fine, must die at feed.Validate.
func poison(s *timeseries.PriceSeries) *timeseries.PriceSeries {
	samples := make([]units.EnergyPrice, s.Len())
	for i := range samples {
		samples[i] = s.At(i)
	}
	samples[len(samples)/2] = units.EnergyPrice(math.NaN())
	out, err := timeseries.NewPrice(s.Start(), s.Interval(), samples)
	if err != nil {
		// NewPrice does not inspect sample values; reaching here means
		// it grew validation, and the poisoned-series fault needs a new
		// vehicle.
		panic(fmt.Sprintf("chaos: cannot build poisoned series: %v", err))
	}
	return out
}

// Describe labels the wrapped provider as fault-injected.
func (j *Injector) Describe() string {
	return fmt.Sprintf("chaos(seed=%d, err=%.2f, stuck=%.2f, malformed=%.2f, latency=%.2f@%s) over %s",
		j.cfg.Seed, j.cfg.ErrorRate, j.cfg.StuckRate, j.cfg.MalformedRate,
		j.cfg.LatencyRate, j.cfg.Latency, j.next.Describe())
}

// Stats returns a snapshot of the fault counters.
func (j *Injector) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

var _ feed.PriceProvider = (*Injector)(nil)
