package route

// digest is a small decaying latency record per backend: a fixed ring
// of the most recent forward latencies, quantiled on demand. The ring
// overwrite is the decay — a backend that was slow an hour ago but has
// answered 256 requests since carries no trace of it — which is what
// the hedge-delay estimate wants: "how slow is this backend right
// now", not "ever". It is fed from the same observation point as the
// scroute_upstream_seconds histogram, so the hedge math and the
// exported latency picture can never disagree about what was measured.

import (
	"sort"
	"sync"
)

// digestSize is the ring capacity. 256 samples give a stable p95 (the
// 12th-largest sample) while decaying within seconds at fleet rates.
const digestSize = 256

type digest struct {
	mu      sync.Mutex
	samples [digestSize]float64
	next    int
	filled  int
}

// Observe records one latency in seconds.
func (d *digest) Observe(seconds float64) {
	d.mu.Lock()
	d.samples[d.next] = seconds
	d.next = (d.next + 1) % digestSize
	if d.filled < digestSize {
		d.filled++
	}
	d.mu.Unlock()
}

// Quantile returns the q-th quantile (0 < q <= 1) of the retained
// samples in seconds, or 0 with no samples yet — callers floor the
// result with their own minimum hedge delay.
func (d *digest) Quantile(q float64) float64 {
	d.mu.Lock()
	n := d.filled
	buf := make([]float64, n)
	copy(buf, d.samples[:n])
	d.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Float64s(buf)
	idx := int(q*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}
