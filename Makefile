# Developer entry points. `make check` is the full gate: build, vet,
# and the race-enabled test suite (the parallel month evaluator in
# internal/billing makes -race mandatory before merging).

GO ?= go

.PHONY: all build vet test race check bench bench-billing fuzz clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

# Full benchmark sweep (paper exhibits + ablations).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the billing-engine pair: legacy multi-pass vs single-pass engine.
bench-billing:
	$(GO) test -run '^$$' -bench 'BenchmarkBillYear|BenchmarkBillingYear' -benchmem .

# Short fuzz pass over the timeseries parsers and transforms.
fuzz:
	$(GO) test ./internal/timeseries/ -fuzz FuzzReadPowerCSV -fuzztime 20s
	$(GO) test ./internal/timeseries/ -fuzz FuzzResampleWindow -fuzztime 20s

clean:
	$(GO) clean ./...
