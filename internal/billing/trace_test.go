package billing

// Span-tracing tests: evaluation with an obs.Registry attached to the
// context must produce a bit-identical Result to the untraced path
// while attributing observation cost per component family.

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// famProbe is a probe producer with an explicit trace family.
type famProbe struct {
	probe
	family string
}

func (p *famProbe) SpanFamily() string { return p.family }

func traceLoad(n int) []float64 {
	kw := make([]float64, n)
	for i := range kw {
		kw[i] = 1000 + float64(i%700)
	}
	return kw
}

// TestTracedEvaluationMatchesUntraced: attaching a span registry must
// not change the arithmetic — same energy, peak, lines, total.
func TestTracedEvaluationMatchesUntraced(t *testing.T) {
	// Enough samples to cross several trace blocks.
	load := series(traceLoad(3 * traceBlock)...)
	mk := func() *Evaluator {
		ev, err := NewEvaluator(
			&famProbe{family: "tariff"},
			&famProbe{family: "demand"},
			FlatFee{Name: "metering", Amount: units.MoneyFromFloat(500)},
			&probe{}, // no family: pools under "other"
		)
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}

	plain, err := mk().EvaluatePeriod(load, PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.WithSpans(context.Background(), reg)
	traced, err := mk().EvaluatePeriodCtx(ctx, load, PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("traced result differs from untraced:\n%+v\nvs\n%+v", plain, traced)
	}

	names := map[string]bool{}
	for _, s := range reg.Snapshot() {
		names[s.Name] = true
		if s.Count == 0 {
			t.Errorf("span %s recorded no observations", s.Name)
		}
	}
	for _, want := range []string{
		SpanPeriod, "billing.tariff", "billing.demand", "billing.fee", "billing.other",
	} {
		if !names[want] {
			t.Errorf("missing span %q in %v", want, names)
		}
	}
}

// TestTracedObservationOrder: the block-wise traced loop must still
// hand every accumulator every sample exactly once, in order.
func TestTracedObservationOrder(t *testing.T) {
	n := traceBlock + 7 // a full block plus a partial tail
	load := series(traceLoad(n)...)
	p := &famProbe{family: "tariff"}
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.WithSpans(context.Background(), obs.NewRegistry())
	if _, err := ev.EvaluatePeriodCtx(ctx, load, PeriodContext{}); err != nil {
		t.Fatal(err)
	}
	acc := p.last
	if len(acc.samples) != n {
		t.Fatalf("accumulator saw %d samples, want %d", len(acc.samples), n)
	}
	for i, s := range acc.samples {
		if s.Index != i {
			t.Fatalf("sample %d has index %d: traced loop broke chronological order", i, s.Index)
		}
	}
}

// TestTracedMonths: the month pool records the months/prescan spans and
// each month's period span, and cancellation still works under tracing.
func TestTracedMonths(t *testing.T) {
	// Two months of hourly samples.
	start := time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
	hours := int(start.AddDate(0, 2, 0).Sub(start) / time.Hour)
	samples := make([]units.Power, hours)
	for i, v := range traceLoad(hours) {
		samples[i] = units.Power(v)
	}
	load := timeseries.MustNewPower(start, time.Hour, samples)

	ev, err := NewEvaluator(&famProbe{family: "demand"})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.WithSpans(context.Background(), reg)
	results, err := ev.EvaluateMonths(load, PeriodContext{}, MonthsOptions{Workers: 2, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("months = %d, want 2", len(results))
	}
	counts := map[string]uint64{}
	for _, s := range reg.Snapshot() {
		counts[s.Name] = s.Count
	}
	if counts[SpanMonths] != 1 || counts[SpanPrescan] != 1 {
		t.Errorf("months/prescan spans: %v", counts)
	}
	if counts[SpanPeriod] != 2 {
		t.Errorf("period spans = %d, want one per month", counts[SpanPeriod])
	}
}
