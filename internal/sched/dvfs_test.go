package sched

import (
	"testing"
	"time"

	"repro/internal/hpc"
)

// dvfsMachine has two power states so capping can downshift:
// nominal 1 kW/node, powersave 0.6 kW/node at 0.5× frequency.
func dvfsMachine(t *testing.T) *hpc.Machine {
	t.Helper()
	node := &hpc.NodeSpec{
		Name:      "dvfs-node",
		IdlePower: 0.1,
		States: []hpc.PowerState{
			{Name: "nominal", FreqFactor: 1.0, Power: 1.0},
			{Name: "powersave", FreqFactor: 0.5, Power: 0.6},
		},
		Cores: 1,
	}
	m, err := hpc.NewMachine("dvfs", node, 10, hpc.PUEModel{Fixed: 0, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDVFSUnderCapStartsInLowerState(t *testing.T) {
	m := dvfsMachine(t)
	// Cap 7 kW IT with shutdown: a 10-node full-power job needs 10 kW
	// (blocked), but powersave needs 6 kW (fits).
	j := job(1, 0, time.Hour, 10)
	res, err := Simulate(m, []*hpc.Job{j}, Config{
		Start: t0, PowerCap: 7, ShutdownIdle: true, DVFSUnderCap: true,
		Horizon: 6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatal("job should start")
	}
	rec := res.Records[0]
	if rec.State != "powersave" {
		t.Errorf("state = %q, want powersave", rec.State)
	}
	if rec.Start != 0 {
		t.Errorf("start = %v, want immediate (in powersave)", rec.Start)
	}
	// Runs at half frequency → twice the runtime.
	if res.Makespan != 2*time.Hour {
		t.Errorf("makespan = %v, want 2 h (stretched)", res.Makespan)
	}
	// Power stays under the cap.
	peak, _, _ := res.ITLoad.Peak()
	if peak > 7 {
		t.Errorf("IT peak %v exceeds cap", peak)
	}
}

func TestWithoutDVFSCapBlocks(t *testing.T) {
	m := dvfsMachine(t)
	j := job(1, 0, time.Hour, 10)
	res, err := Simulate(m, []*hpc.Job{j}, Config{
		Start: t0, PowerCap: 7, ShutdownIdle: true, DVFSUnderCap: false,
		Horizon: 3 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.Unstarted != 1 {
		t.Errorf("without DVFS the job must stay blocked: records=%d unstarted=%d",
			len(res.Records), res.Unstarted)
	}
}

func TestDVFSPrefersNominalWhenUncapped(t *testing.T) {
	m := dvfsMachine(t)
	j := job(1, 0, time.Hour, 10)
	res, err := Simulate(m, []*hpc.Job{j}, Config{
		Start: t0, DVFSUnderCap: true, ShutdownIdle: true, Horizon: 3 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].State != "nominal" {
		t.Errorf("uncapped job should run nominal, got %q", res.Records[0].State)
	}
	if res.Makespan != time.Hour {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestDVFSTradesThroughputForContinuity(t *testing.T) {
	m := dvfsMachine(t)
	// A DR cap window over hours 0–2. With DVFS the machine keeps
	// computing (slower); without it the queue stalls until the window
	// lifts — DVFS finishes the work earlier overall.
	window := CapWindow{Start: t0, End: t0.Add(2 * time.Hour), Cap: 7}
	jobs := []*hpc.Job{job(1, 0, time.Hour, 10), job(2, 0, time.Hour, 10)}
	withDVFS, err := Simulate(m, jobs, Config{
		Start: t0, CapWindows: []CapWindow{window}, ShutdownIdle: true,
		DVFSUnderCap: true, Horizon: 12 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Simulate(m, jobs, Config{
		Start: t0, CapWindows: []CapWindow{window}, ShutdownIdle: true,
		Horizon: 12 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withDVFS.Makespan >= without.Makespan {
		t.Errorf("DVFS should finish earlier under a long cap: %v vs %v",
			withDVFS.Makespan, without.Makespan)
	}
}
