package main

import (
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

func TestRunBadAddr(t *testing.T) {
	err := run("256.256.256.256:99999", serve.Config{}, time.Second)
	if err == nil {
		t.Fatal("expected listen error")
	}
}

// TestRunDrainsOnSignal boots the daemon on a free port and delivers
// SIGTERM: run must drain and return nil.
func TestRunDrainsOnSignal(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- run("127.0.0.1:0", serve.Config{}, time.Second) }()

	// Give the listener a moment, then ask the process to stop.
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "http shutdown") {
			t.Fatalf("run after SIGTERM: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
}
