// Quickstart: build a supercomputing center's electricity contract from
// typed components, classify it against the paper's typology, generate a
// month of facility load, and print the itemized bill.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/hpc"
	"repro/internal/tariff"
	"repro/internal/units"
)

func main() {
	// A contract like the survey's most common shape: fixed tariff plus
	// a 3-peak demand charge (Table 2's modal row).
	band, err := demand.NewUpperPowerband(18*units.Megawatt, 0.40)
	if err != nil {
		log.Fatal(err)
	}
	c := &repro.Contract{
		Name:          "quickstart-site",
		Tariffs:       []repro.Tariff{tariff.MustNewFixed(0.085)},
		DemandCharges: []*repro.DemandCharge{demand.SimpleCharge(12)},
		Powerbands:    []*repro.Powerband{band},
	}

	// Where does this contract sit in the paper's typology (Figure 1)?
	profile := repro.Classify(c)
	fmt.Println("Typology classification:", profile)
	fmt.Println("Encourages demand-side management:", profile.EncouragesDSM())
	fmt.Println("Has real-time DR elements:", profile.EncouragesRealTimeDR())
	fmt.Println()

	// A month of 12 MW facility load with realistic peaks.
	load, err := repro.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start:         time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC),
		Span:          30 * 24 * time.Hour,
		Interval:      15 * time.Minute,
		Base:          12 * units.Megawatt,
		PeakToAverage: 1.5,
		NoiseSigma:    0.02,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Facility load:", load)
	fmt.Println()

	// Bill it.
	analysis, err := repro.Analyze(c, load, contract.BillingInput{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(analysis.Bill)
	for _, line := range analysis.Bill.Lines {
		fmt.Printf("  %-55s %12s  %s\n", line.Description, line.Quantity, line.Amount)
	}
	fmt.Printf("  %-55s %12s  %s\n", "TOTAL", analysis.Bill.Energy, analysis.Bill.Total)
	fmt.Println()
	fmt.Printf("Demand-related share of the bill: %.1f%% (load factor %.2f)\n",
		analysis.DemandShare*100, analysis.LoadFactor)
	for _, inc := range analysis.Incentives {
		fmt.Println("Incentive:", inc)
	}
}
