package billing

// Edge cases of calendar-month evaluation: partial months, samples
// landing exactly on month boundaries, worker pools larger than the
// month count, and cooperative cancellation through MonthsOptions.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// TestEvaluateMonthsSinglePartialMonth bills a load spanning only part
// of one month: one result covering exactly the sampled span.
func TestEvaluateMonthsSinglePartialMonth(t *testing.T) {
	start := time.Date(2016, time.March, 10, 6, 0, 0, 0, time.UTC)
	load := timeseries.MustNewPower(start, time.Hour, []units.Power{1000, 3000, 2000})

	e, _ := NewEvaluator(&probe{name: "p"})
	res, err := e.EvaluateMonths(load, PeriodContext{}, MonthsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("partial month must yield one result, got %d", len(res))
	}
	r := res[0]
	if !r.PeriodStart.Equal(start) || !r.PeriodEnd.Equal(start.Add(3*time.Hour)) {
		t.Errorf("period %v–%v, want %v–%v", r.PeriodStart, r.PeriodEnd, start, start.Add(3*time.Hour))
	}
	if r.Peak != 3000 || float64(r.Energy) != 6000 {
		t.Errorf("peak %v energy %v", r.Peak, r.Energy)
	}
}

// TestEvaluateMonthsBoundaryOnSample puts a sample exactly at midnight
// of the first of the next month: the sample must open the new month,
// appear exactly once, and carry its energy into the new month's total.
func TestEvaluateMonthsBoundaryOnSample(t *testing.T) {
	// Last 2 hours of March and first 2 hours of April, hourly.
	start := time.Date(2016, time.March, 31, 22, 0, 0, 0, time.UTC)
	load := timeseries.MustNewPower(start, time.Hour, []units.Power{1000, 2000, 7000, 4000})

	e, _ := NewEvaluator(&probe{name: "p"})
	res, err := e.EvaluateMonths(load, PeriodContext{}, MonthsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("want 2 months, got %d", len(res))
	}
	march, april := res[0], res[1]
	boundary := time.Date(2016, time.April, 1, 0, 0, 0, 0, time.UTC)
	if !march.PeriodEnd.Equal(boundary) || !april.PeriodStart.Equal(boundary) {
		t.Errorf("boundary: march ends %v, april starts %v, want %v", march.PeriodEnd, april.PeriodStart, boundary)
	}
	// The midnight sample (7000) belongs to April, once.
	if march.Peak != 2000 || april.Peak != 7000 {
		t.Errorf("peaks %v / %v, want 2000 / 7000", march.Peak, april.Peak)
	}
	if float64(march.Energy) != 3000 || float64(april.Energy) != 11000 {
		t.Errorf("energy %v / %v, want 3000 / 11000", march.Energy, april.Energy)
	}
	// No sample lost or duplicated across the split.
	if got := float64(march.Energy + april.Energy); got != float64(load.Energy()) {
		t.Errorf("split loses energy: %v != %v", got, load.Energy())
	}
}

// TestEvaluateMonthsMoreWorkersThanMonths: a pool far larger than the
// month count must behave identically to a right-sized one.
func TestEvaluateMonthsMoreWorkersThanMonths(t *testing.T) {
	// Two months of hourly data.
	n := (31 + 30) * 24
	samples := make([]units.Power, n)
	for i := range samples {
		samples[i] = units.Power(1000 + i%7)
	}
	load := timeseries.MustNewPower(t0, time.Hour, samples)

	e, _ := NewEvaluator(&probe{name: "p"})
	want, err := e.EvaluateMonths(load, PeriodContext{}, MonthsOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvaluateMonths(load, PeriodContext{}, MonthsOptions{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 2 {
		t.Fatalf("months: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Peak != want[i].Peak || got[i].Energy != want[i].Energy ||
			got[i].Total != want[i].Total ||
			!got[i].PeriodStart.Equal(want[i].PeriodStart) ||
			!got[i].PeriodEnd.Equal(want[i].PeriodEnd) {
			t.Errorf("month %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestEvaluateMonthsCancelled: a pre-cancelled context stops the worker
// pool and surfaces the cancellation error for every pool size.
func TestEvaluateMonthsCancelled(t *testing.T) {
	n := (31 + 30 + 31) * 24
	samples := make([]units.Power, n)
	for i := range samples {
		samples[i] = 1000
	}
	load := timeseries.MustNewPower(t0, time.Hour, samples)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, _ := NewEvaluator(&probe{name: "p"})
	for _, workers := range []int{1, 4} {
		_, err := e.EvaluateMonths(load, PeriodContext{}, MonthsOptions{Workers: workers, Context: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestEvaluatePeriodCtxDeadline: the single-pass loop itself honours an
// already-expired deadline.
func TestEvaluatePeriodCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	e, _ := NewEvaluator(&probe{name: "p"})
	if _, err := e.EvaluatePeriodCtx(ctx, series(1000, 2000), PeriodContext{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}
