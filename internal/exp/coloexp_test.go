package exp

import (
	"strings"
	"testing"

	"repro/internal/colo"
)

func TestE15AuctionBeatsSplitIncentive(t *testing.T) {
	res, err := RunE15()
	if err != nil {
		t.Fatal(err)
	}
	// Doing nothing costs the full penalty.
	if res.DoNothing != res.AvoidableCost {
		t.Error("split-incentive baseline must equal the avoidable cost")
	}
	// Both auctions procure fully and net positive.
	for name, d := range map[string]*colo.OperatorDecision{
		"pay-as-bid": res.PayAsBid,
		"uniform":    res.Uniform,
	} {
		if d.Auction.Shortfall() != 0 {
			t.Errorf("%s: auction should procure the full target", name)
		}
		if d.Net <= 0 {
			t.Errorf("%s: auction net %v should beat the penalty", name, d.Net)
		}
	}
	// Uniform pricing pays the clearing price to everyone: strictly
	// more than pay-as-bid here (distinct reserve prices, marginal
	// winner above the cheapest).
	if res.Uniform.Auction.TotalPayment <= res.PayAsBid.Auction.TotalPayment {
		t.Errorf("uniform %v should cost more than pay-as-bid %v",
			res.Uniform.Auction.TotalPayment, res.PayAsBid.Auction.TotalPayment)
	}
}

func TestE15Exhibit(t *testing.T) {
	e, err := Run("E15")
	if err != nil {
		t.Fatal(err)
	}
	out := e.Render()
	for _, want := range []string{"split incentive", "pay-as-bid", "uniform"} {
		if !strings.Contains(out, want) {
			t.Errorf("E15 missing %q", want)
		}
	}
	if len(e.Table.Rows) != 3 {
		t.Errorf("rows = %d", len(e.Table.Rows))
	}
}
