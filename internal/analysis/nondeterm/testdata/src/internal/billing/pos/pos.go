// Package pos holds nondeterm true positives (in scope: its package
// path contains internal/billing).
package pos

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"
)

func stamp() time.Time {
	return time.Now() // want `time.Now\(\) reads the wall clock`
}

func age(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since\(\) reads the wall clock`
}

func jitter() int {
	return rand.Intn(100) // want `global rand.Intn\(\) is process-seeded`
}

func noise() float64 {
	return rand.Float64() // want `global rand.Float64\(\) is process-seeded`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle\(\) is process-seeded`
}

func printTotals(w io.Writer, totals map[string]int64) {
	for name, cents := range totals {
		fmt.Fprintf(w, "%s %d\n", name, cents) // want "fmt.Fprintf inside range over map"
	}
}

func buildReport(totals map[string]int64) string {
	var b strings.Builder
	for name := range totals {
		b.WriteString(name) // want `\(\*strings.Builder\).WriteString inside range over map`
	}
	return b.String()
}
