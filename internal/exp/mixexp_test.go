package exp

import (
	"strings"
	"testing"
)

func TestE23MatchingGap(t *testing.T) {
	res, err := RunE23()
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	// The portfolio covers the clause annually…
	if !res.AnnualPasses {
		t.Errorf("annual share %.2f should pass the 0.80 floor", r.AnnualShare)
	}
	// …but not hour-by-hour: intermittency opens a material gap.
	if res.TimeMatchedPasses {
		t.Errorf("time-matched share %.2f should fail the 0.80 floor", r.TimeMatchedShare)
	}
	if r.MatchingGap() < 0.1 {
		t.Errorf("matching gap %.2f too small — scenario degenerate", r.MatchingGap())
	}
	// Sanity: time-matched can never exceed annual.
	if r.TimeMatchedShare > r.AnnualShare+1e-9 {
		t.Error("time-matched share cannot exceed annual share")
	}
}

func TestE23Exhibit(t *testing.T) {
	e, err := Run("E23")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Render(), "matching gap") {
		t.Error("E23 table incomplete")
	}
}
