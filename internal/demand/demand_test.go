package demand

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)

func load(t *testing.T, kw ...float64) *timeseries.PowerSeries {
	t.Helper()
	samples := make([]units.Power, len(kw))
	for i, v := range kw {
		samples[i] = units.Power(v)
	}
	return timeseries.MustNewPower(t0, 15*time.Minute, samples)
}

func TestMethodString(t *testing.T) {
	if SinglePeak.String() != "single-peak" || NPeakAverage.String() != "n-peak-average" || Ratchet.String() != "ratchet" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should format")
	}
}

func TestNewChargeValidation(t *testing.T) {
	if _, err := NewCharge(-1, SinglePeak, 0, 0); err == nil {
		t.Error("negative price should fail")
	}
	if _, err := NewCharge(10, NPeakAverage, 0, 0); err == nil {
		t.Error("NPeakAverage without N should fail")
	}
	if _, err := NewCharge(10, Ratchet, 0, 0); err == nil {
		t.Error("Ratchet without fraction should fail")
	}
	if _, err := NewCharge(10, Ratchet, 0, 1.5); err == nil {
		t.Error("fraction > 1 should fail")
	}
	if _, err := NewCharge(10, Method(42), 0, 0); err == nil {
		t.Error("unknown method should fail")
	}
	if _, err := NewCharge(10, Ratchet, 0, 0.8); err != nil {
		t.Errorf("valid ratchet should pass: %v", err)
	}
}

func TestMustNewChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("should panic")
		}
	}()
	MustNewCharge(-1, SinglePeak, 0, 0)
}

func TestSinglePeakBilling(t *testing.T) {
	c := MustNewCharge(12, SinglePeak, 0, 0)
	l := load(t, 10000, 15000, 12000)
	if got := c.BilledDemand(l, 0); got != 15000 {
		t.Errorf("billed = %v", got)
	}
	if got, want := c.Cost(l, 0), units.CurrencyUnits(180000); got != want {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

func TestPaperThreePeakExample(t *testing.T) {
	// The paper: "three 15 MW peaks in a billing period" billed on those
	// peaks; next period "the peaks are 12 MW instead" → charges fall.
	c := SimpleCharge(10)
	p1 := load(t, 8000, 15000, 9000, 15000, 7000, 15000)
	p2 := load(t, 8000, 12000, 9000, 12000, 7000, 12000)
	b1 := c.BilledDemand(p1, 0)
	b2 := c.BilledDemand(p2, 0)
	if b1 != 15000 || b2 != 12000 {
		t.Errorf("billed = %v then %v; want 15 MW then 12 MW", b1, b2)
	}
	if c.Cost(p2, 0) >= c.Cost(p1, 0) {
		t.Error("demand charges must fall when peaks fall")
	}
}

func TestNPeakAveragesDistinctPeaks(t *testing.T) {
	c := MustNewCharge(10, NPeakAverage, 3, 0)
	l := load(t, 9000, 12000, 15000) // top-3 = all
	if got := c.BilledDemand(l, 0); got != 12000 {
		t.Errorf("billed = %v, want mean 12000", got)
	}
	// With more samples than N, only top-3 count.
	l2 := load(t, 1000, 9000, 12000, 15000, 2000)
	if got := c.BilledDemand(l2, 0); got != 12000 {
		t.Errorf("billed = %v, want 12000", got)
	}
}

func TestNPeakDefaultsTo3(t *testing.T) {
	c := &Charge{Price: 10, Method: NPeakAverage} // zero NPeaks, constructed directly
	l := load(t, 3000, 6000, 9000, 100)
	if got := c.BilledDemand(l, 0); got != 6000 {
		t.Errorf("billed = %v, want 6000 (top-3 mean)", got)
	}
	if !strings.Contains(c.Describe(), "top 3") {
		t.Error("describe should mention default 3")
	}
}

func TestRatchet(t *testing.T) {
	c := MustNewCharge(10, Ratchet, 0, 0.8)
	l := load(t, 5000, 6000) // current peak 6 MW
	// Historical peak 10 MW → floor 8 MW dominates.
	if got := c.BilledDemand(l, 10000); got != 8000 {
		t.Errorf("ratcheted billed = %v, want 8000", got)
	}
	// Historical peak small → current peak dominates.
	if got := c.BilledDemand(l, 1000); got != 6000 {
		t.Errorf("billed = %v, want 6000", got)
	}
	if !strings.Contains(c.Describe(), "ratchet") {
		t.Error("describe")
	}
}

func TestBilledDemandEdgeCases(t *testing.T) {
	c := SimpleCharge(10)
	if got := c.BilledDemand(load(t), 0); got != 0 {
		t.Errorf("empty load billed = %v", got)
	}
	// Net-export samples clamp to zero.
	if got := c.BilledDemand(load(t, -500, -100, -200), 0); got != 0 {
		t.Errorf("export-only billed = %v", got)
	}
	sp := MustNewCharge(10, SinglePeak, 0, 0)
	if got := sp.BilledDemand(load(t, -500), 0); got != 0 {
		t.Errorf("single-peak export billed = %v", got)
	}
}

func TestChargeDescribe(t *testing.T) {
	if !strings.Contains(MustNewCharge(10, SinglePeak, 0, 0).Describe(), "single peak") {
		t.Error("single-peak describe")
	}
	// Unknown method falls back to peak in BilledDemand.
	c := &Charge{Price: 10, Method: Method(42)}
	if got := c.BilledDemand(load(t, 1000, 2000), 0); got != 2000 {
		t.Errorf("unknown-method billed = %v", got)
	}
}

func TestNewPowerbandValidation(t *testing.T) {
	if _, err := NewPowerband(0, 0, 0, 0); err == nil {
		t.Error("zero upper should fail")
	}
	if _, err := NewPowerband(5000, 4000, 1, 1); err == nil {
		t.Error("lower >= upper should fail")
	}
	if _, err := NewPowerband(-1, 4000, 1, 1); err == nil {
		t.Error("negative lower should fail")
	}
	if _, err := NewPowerband(1000, 4000, -1, 1); err == nil {
		t.Error("negative penalty should fail")
	}
	if _, err := NewUpperPowerband(0, 1); err == nil {
		t.Error("zero upper should fail")
	}
	if _, err := NewUpperPowerband(1000, -1); err == nil {
		t.Error("negative penalty should fail")
	}
}

func TestMustNewPowerbandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("should panic")
		}
	}()
	MustNewPowerband(0, 0, 0, 0)
}

func TestPowerbandViolations(t *testing.T) {
	b := MustNewPowerband(2000, 10000, 0.50, 1.00)
	// In, over, over, in, under, in — two excursions.
	l := load(t, 5000, 12000, 14000, 5000, 1000, 5000)
	vs := b.Violations(l)
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2", len(vs))
	}
	over := vs[0]
	if !over.Above || over.Duration != 30*time.Minute || over.WorstPower != 14000 {
		t.Errorf("over excursion = %+v", over)
	}
	// Excess: (2 MW + 4 MW) × 0.25 h = 1.5 MWh.
	if math.Abs(over.ExcessEnergy.MWh()-1.5) > 1e-9 {
		t.Errorf("over excess = %v", over.ExcessEnergy)
	}
	under := vs[1]
	if under.Above || under.WorstPower != 1000 {
		t.Errorf("under excursion = %+v", under)
	}
	// Shortfall: 1 MW × 0.25 h = 0.25 MWh.
	if math.Abs(under.ExcessEnergy.MWh()-0.25) > 1e-9 {
		t.Errorf("under excess = %v", under.ExcessEnergy)
	}
}

func TestPowerbandAdjacentOpposingExcursionsSplit(t *testing.T) {
	b := MustNewPowerband(2000, 10000, 0.50, 1.00)
	l := load(t, 12000, 1000) // over then immediately under
	vs := b.Violations(l)
	if len(vs) != 2 || !vs[0].Above || vs[1].Above {
		t.Errorf("adjacent opposing excursions should split: %+v", vs)
	}
}

func TestPowerbandCost(t *testing.T) {
	b := MustNewPowerband(2000, 10000, 0.50, 1.00)
	l := load(t, 12000, 1000)
	// Over: 2 MW × 0.25 h × 1.00/kWh = 500 kWh → 500.
	// Under: 1 MW × 0.25 h × 0.50/kWh = 250 kWh × 0.5 → 125.
	if got, want := b.Cost(l), units.CurrencyUnits(625); got != want {
		t.Errorf("cost = %v, want %v", got, want)
	}
	clean := load(t, 5000, 5000)
	if b.Cost(clean) != 0 {
		t.Error("in-band load should cost nothing")
	}
}

func TestUpperOnlyPowerband(t *testing.T) {
	b, err := NewUpperPowerband(10000, 1.00)
	if err != nil {
		t.Fatal(err)
	}
	l := load(t, 500, 12000) // low draw fine, over penalized
	vs := b.Violations(l)
	if len(vs) != 1 || !vs[0].Above {
		t.Errorf("violations = %+v", vs)
	}
	if !strings.Contains(b.Describe(), "[0,") {
		t.Error("describe should show upper-only form")
	}
}

func TestComplianceRatio(t *testing.T) {
	b := MustNewPowerband(2000, 10000, 0.5, 1)
	l := load(t, 5000, 12000, 1000, 5000)
	if got := b.ComplianceRatio(l); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("compliance = %v, want 0.5", got)
	}
	if got := b.ComplianceRatio(load(t)); got != 1 {
		t.Errorf("empty compliance = %v, want 1", got)
	}
	if !strings.Contains(b.Describe(), "powerband") {
		t.Error("describe")
	}
}

// Property: powerband cost is zero iff compliance is 1 (with positive
// penalties).
func TestQuickPowerbandCostIffViolation(t *testing.T) {
	b := MustNewPowerband(2000, 10000, 0.5, 1)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		l := timeseries.MustNewPower(t0, 15*time.Minute, samples)
		cost := b.Cost(l)
		ratio := b.ComplianceRatio(l)
		if ratio == 1 {
			return cost == 0
		}
		return cost > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: billed demand under NPeakAverage never exceeds the single
// peak and never falls below the N-th ranked sample.
func TestQuickNPeakBounds(t *testing.T) {
	c := SimpleCharge(10)
	sp := MustNewCharge(10, SinglePeak, 0, 0)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		l := timeseries.MustNewPower(t0, 15*time.Minute, samples)
		return c.BilledDemand(l, 0) <= sp.BilledDemand(l, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ratchet billed demand is monotone in historical peak.
func TestQuickRatchetMonotone(t *testing.T) {
	c := MustNewCharge(10, Ratchet, 0, 0.8)
	l := load(t, 4000, 5000, 6000)
	f := func(h1, h2 uint16) bool {
		a, b := units.Power(h1), units.Power(h2)
		if a > b {
			a, b = b, a
		}
		return c.BilledDemand(l, a) <= c.BilledDemand(l, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: capping a load at the band's upper limit eliminates all
// over-band cost.
func TestQuickCappingEliminatesOverCost(t *testing.T) {
	b, _ := NewUpperPowerband(8000, 2)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		l := timeseries.MustNewPower(t0, 15*time.Minute, samples)
		capped := l.ClampAbove(8000)
		return b.Cost(capped) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPowerbandViolationsYear(b *testing.B) {
	samples := make([]units.Power, 35040)
	for i := range samples {
		samples[i] = units.Power(8000 + 4000*math.Sin(float64(i)/96))
	}
	l := timeseries.MustNewPower(t0, 15*time.Minute, samples)
	band := MustNewPowerband(5000, 11000, 0.5, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = band.Violations(l)
	}
}
