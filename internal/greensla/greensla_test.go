package greensla

import (
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.November, 7, 0, 0, 0, 0, time.UTC)

func agreement() *Agreement {
	return &Agreement{
		BaseRate:           0.080,
		GreenDiscount:      0.030,
		RedReward:          0.200,
		CommittedReduction: 2000,
		Penalty:            0.300,
	}
}

// dayWindows puts a green window over hours 2–4 and a red window over
// hours 8–10.
func dayWindows() []Window {
	return []Window{
		{Kind: Green, Start: t0.Add(2 * time.Hour), Duration: 2 * time.Hour},
		{Kind: Red, Start: t0.Add(8 * time.Hour), Duration: 2 * time.Hour},
	}
}

func TestWindowKindString(t *testing.T) {
	if Green.String() != "green" || Red.String() != "red" || WindowKind(9).String() == "" {
		t.Error("window kind names")
	}
}

func TestAgreementValidate(t *testing.T) {
	if err := agreement().Validate(); err != nil {
		t.Errorf("good agreement: %v", err)
	}
	bad := []*Agreement{
		{BaseRate: 0},
		{BaseRate: 0.08, GreenDiscount: 0.1},
		{BaseRate: 0.08, RedReward: -1},
		{BaseRate: 0.08, CommittedReduction: -1},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSettleNoAdaptationPaysPenalties(t *testing.T) {
	a := agreement()
	baseline := timeseries.ConstantPower(t0, time.Hour, 12, 10000)
	s, err := a.Settle(baseline, baseline, dayWindows())
	if err != nil {
		t.Fatal(err)
	}
	// No adaptation: zero avoided, zero absorbed.
	if s.AvoidedRed != 0 || s.AbsorbedGreen != 0 {
		t.Errorf("no adaptation should measure zero: %+v", s)
	}
	// Red penalty: 2 h × 2 MW committed shortfall × 0.30 = 1200.
	if s.Penalty != units.CurrencyUnits(1200) {
		t.Errorf("penalty = %v", s.Penalty)
	}
	// Green discount still applies to consumption in the window:
	// 2 h × 10 MW × 0.03 = 600.
	if s.GreenCredit != units.CurrencyUnits(600) {
		t.Errorf("green credit = %v", s.GreenCredit)
	}
	// Energy cost: 120 MWh × 0.08 = 9600. Net = 9600 − 600 + 1200.
	if s.Net != units.CurrencyUnits(9600-600+1200) {
		t.Errorf("net = %v", s.Net)
	}
}

func TestAdaptShiftsRedIntoGreen(t *testing.T) {
	baseline := timeseries.ConstantPower(t0, time.Hour, 12, 10000)
	adapted, err := Adapt(baseline, dayWindows(), 2000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Energy conserved.
	if math.Abs(float64(adapted.Energy()-baseline.Energy())) > 1e-6 {
		t.Errorf("energy changed: %v vs %v", adapted.Energy(), baseline.Energy())
	}
	// Red hours (8,9) reduced by committed 2 MW.
	if adapted.At(8) != 8000 || adapted.At(9) != 8000 {
		t.Errorf("red hours = %v, %v", adapted.At(8), adapted.At(9))
	}
	// Green hours (2,3) absorb the 4 MWh: +2 MW each.
	if adapted.At(2) != 12000 || adapted.At(3) != 12000 {
		t.Errorf("green hours = %v, %v", adapted.At(2), adapted.At(3))
	}
	// Other hours untouched.
	if adapted.At(0) != 10000 || adapted.At(11) != 10000 {
		t.Error("hours outside windows must be untouched")
	}
}

func TestAdaptValidation(t *testing.T) {
	baseline := timeseries.ConstantPower(t0, time.Hour, 4, 1000)
	if _, err := Adapt(baseline, nil, 2000, 0); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, err := Adapt(baseline, nil, 0, 0.5); err == nil {
		t.Error("zero commitment should fail")
	}
	// No green windows: red energy is not shifted (stays removed? no —
	// not shifted at all when nothing can absorb it... it IS removed
	// from red and dropped if no green exists; assert conservation only
	// when green windows exist).
	redOnly := []Window{{Kind: Red, Start: t0, Duration: time.Hour}}
	adapted, err := Adapt(baseline, redOnly, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if adapted.At(0) != 500 {
		t.Errorf("red-only adaptation = %v", adapted.At(0))
	}
}

func TestAdaptationBeatsNoAdaptation(t *testing.T) {
	a := agreement()
	baseline := timeseries.ConstantPower(t0, time.Hour, 12, 10000)
	windows := dayWindows()
	passive, err := a.Settle(baseline, baseline, windows)
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := Adapt(baseline, windows, 2000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	active, err := a.Settle(baseline, adapted, windows)
	if err != nil {
		t.Fatal(err)
	}
	if active.Net >= passive.Net {
		t.Errorf("adaptation should pay: active %v vs passive %v", active.Net, passive.Net)
	}
	if active.AvoidedRed.MWh() < 3.9 || active.AbsorbedGreen.MWh() < 3.9 {
		t.Errorf("flexibility delivered: %+v", active)
	}
	if active.Penalty != 0 {
		t.Errorf("full delivery should avoid penalties, got %v", active.Penalty)
	}
}

func TestSettleValidation(t *testing.T) {
	baseline := timeseries.ConstantPower(t0, time.Hour, 4, 1000)
	short := timeseries.ConstantPower(t0, time.Hour, 3, 1000)
	if _, err := agreement().Settle(baseline, short, nil); err == nil {
		t.Error("misaligned should fail")
	}
	bad := &Agreement{}
	if _, err := bad.Settle(baseline, baseline, nil); err == nil {
		t.Error("invalid agreement should fail")
	}
}

func TestSettleNoWindowsIsPlainEnergyBill(t *testing.T) {
	a := agreement()
	baseline := timeseries.ConstantPower(t0, time.Hour, 10, 5000)
	s, err := a.Settle(baseline, baseline, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Net != a.BaseRate.Cost(baseline.Energy()) {
		t.Errorf("no windows: net %v should equal plain energy cost", s.Net)
	}
}
