// Package lockheld forbids slow or blocking work while a mutex is
// held.
//
// Invariant guarded: scserved's hot paths serialize on small critical
// sections (engine cache, feed cache, breaker state). Doing anything
// slow under one of those locks — a network call, a retry/breaker Do,
// an engine compile, a channel send, a sleep — turns a per-request
// cost into a whole-server stall, and calling back into user code
// under a lock invites the reentrancy deadlock class PR 3 fixed by
// hand in the engine cache. The analyzer tracks Lock/RLock ... Unlock
// pairs intra-procedurally over the shared flow walk (straight-line,
// if/else, switch, loops) and flags banned operations on any path
// where a lock is still held. Methods named ...Locked with a receiver
// are analyzed as holding their receiver's lock at entry, per the
// repo's naming convention.
//
// Calls through plain function values are banned too (a callback's
// cost is unknowable at the call site) with one blessing: values of
// type func() time.Time — the injected-clock shape — are exempt.
package lockheld

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "forbid network calls, retry/breaker Do, engine compiles, sleeps, and " +
		"channel operations while holding a sync.Mutex/RWMutex",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := flow.State{}
			if fd.Recv != nil && strings.HasSuffix(fd.Name.Name, "Locked") {
				held["the caller's lock (...Locked convention)"] = true
			}
			c := &checker{pass: pass}
			flow.Walk(fd.Body, held, flow.Hooks{
				Stmt:   c.stmt,
				Expr:   c.expr,
				Select: c.selectStmt,
			})
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// stmt is the transfer function: Lock/Unlock expression statements
// mutate the held set (and are consumed); a channel send under a lock
// is reported here because the walker hands the send operands to expr
// afterwards.
func (c *checker) stmt(s ast.Stmt, held flow.State) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			return c.lockOp(call, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			c.pass.Reportf(s.Arrow, "channel send while holding %s; release the lock first", heldNames(held))
		}
	}
	return false
}

// selectStmt reports a select with no default — a blocking wait —
// while a lock is held.
func (c *checker) selectStmt(s *ast.SelectStmt, held flow.State) {
	if s.Body == nil || len(held) == 0 {
		return
	}
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return // has a default: non-blocking poll
		}
	}
	c.pass.Reportf(s.Pos(), "blocking select while holding %s; release the lock first", heldNames(held))
}

// lockOp handles mu.Lock/RLock/Unlock/RUnlock expression statements,
// returning true if the call was one.
func (c *checker) lockOp(call *ast.CallExpr, held flow.State) bool {
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		held[key] = true
		return true
	case "Unlock", "RUnlock":
		delete(held, key)
		return true
	case "TryLock", "TryRLock":
		// Result-dependent; treated as not acquiring for tracking.
		return true
	}
	return false
}

// expr inspects an expression subtree for banned operations while a
// lock is held. Function literals are not descended: they run later,
// in a context of their own.
func (c *checker) expr(e ast.Expr, held flow.State) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				c.pass.Reportf(n.OpPos, "blocking channel receive while holding %s; release the lock first", heldNames(held))
			}
		case *ast.CallExpr:
			c.checkCall(n, held)
		}
		return true
	})
}

// checkCall flags banned callees while a lock is held.
func (c *checker) checkCall(call *ast.CallExpr, held flow.State) {
	info := c.pass.TypesInfo
	if analysis.IsBuiltin(info, call) || analysis.IsConversion(info, call) {
		return
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		// A call through a plain function value: unknowable cost and a
		// reentrancy hazard — except the blessed injected clock.
		if tv, ok := info.Types[call.Fun]; ok && analysis.IsClockFuncType(tv.Type) {
			return
		}
		c.pass.Reportf(call.Pos(),
			"call through function value %s while holding %s; deliver callbacks after unlocking",
			types.ExprString(call.Fun), heldNames(held))
		return
	}
	name := fn.Name()
	var pkgPath string
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	hasRecv := sig != nil && sig.Recv() != nil

	bad := ""
	switch {
	case pkgPath == "time" && name == "Sleep":
		bad = "time.Sleep"
	case pkgPath == "sync" && name == "Wait":
		bad = "sync ...Wait"
	case pkgPath == "net/http" && (name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
		bad = "net/http " + name
	case pkgPath == "net" && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")):
		bad = "net." + name
	case pkgPath == "os/exec" && hasRecv && (name == "Run" || name == "Output" || name == "CombinedOutput" || name == "Start" || name == "Wait"):
		bad = "os/exec Cmd." + name
	case name == "Do" && analysis.PathHasSegments(pkgPath, "internal/resilience"):
		bad = "resilience " + recvName(sig) + ".Do"
	case analysis.PathHasSegments(pkgPath, "internal/contract") && (name == "Build" || name == "NewEngine"):
		bad = "contract engine compile (" + name + ")"
	case name == "Fetch" && hasRecv && sig.Params().Len() > 0 && analysis.IsContextType(sig.Params().At(0).Type()):
		bad = "provider Fetch"
	}
	if bad != "" {
		c.pass.Reportf(call.Pos(), "%s while holding %s; release the lock first", bad, heldNames(held))
	}
}

func recvName(sig *types.Signature) string {
	if sig == nil || sig.Recv() == nil {
		return "Retry/Breaker"
	}
	if n := analysis.NamedOf(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return "Retry/Breaker"
}

func heldNames(held flow.State) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
