// Package tariff implements the kWh branch of the paper's contract
// typology (Figure 1): prices mapped to energy consumption. Three kinds
// exist, exactly as the paper classifies them:
//
//   - Fixed: one price per kWh for the whole contractual period. Fixed
//     tariffs encourage energy-efficiency measures but provide no
//     incentive for demand-side management.
//   - Time-of-use (TOU): the kWh price varies across a known,
//     contractually defined time structure (seasonal pricing, day/night
//     pricing). TOU encourages static demand-side management.
//   - Dynamic: the kWh price follows real-time communication between
//     consumer and provider (a market feed). Dynamic tariffs encourage
//     demand response proper.
//
// A tariff prices energy only; demand charges and powerbands (the kW
// branch) live in package demand. Riders — a variable service charge
// applied on top of a fixed rate, the configuration the paper observed at
// the two sites holding both a fixed and a variable component — are
// expressed by giving a contract several tariff components.
package tariff

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/billing"
	"repro/internal/calendar"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// Kind classifies a tariff into the typology's kWh branch.
type Kind int

// Tariff kinds, in increasing order of demand-management incentive.
const (
	Fixed Kind = iota
	TimeOfUse
	Dynamic
)

var kindNames = map[Kind]string{
	Fixed:     "fixed",
	TimeOfUse: "time-of-use",
	Dynamic:   "dynamic",
}

// String returns the kind name used in tables and reports.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Incentive describes what consumption behaviour a tariff kind rewards,
// quoting the paper's own mapping (§3.2.1).
func (k Kind) Incentive() string {
	switch k {
	case Fixed:
		return "energy efficiency only; no demand-side management incentive"
	case TimeOfUse:
		return "static demand-side management (shift into known cheap windows)"
	case Dynamic:
		return "demand response (react to real-time price signals)"
	default:
		return "unknown"
	}
}

// Tariff prices the energy consumption of a load profile.
type Tariff interface {
	// Kind classifies the tariff within the typology.
	Kind() Kind
	// PriceAt returns the kWh price in effect at instant t.
	PriceAt(t time.Time) units.EnergyPrice
	// Cost prices an entire load profile: each sample's energy is
	// billed at the price in effect at the sample's interval start.
	Cost(load *timeseries.PowerSeries) units.Money
	// Describe returns a one-line human-readable description.
	Describe() string
}

// costByPriceAt bills every sample at PriceAt of its interval start.
// It drives the same streaming accumulator the billing engine uses
// (producer.go), so standalone Cost calls and engine passes share one
// integration loop.
func costByPriceAt(t Tariff, load *timeseries.PowerSeries) units.Money {
	acc := priceAtAcc{t: t}
	h := load.Interval().Hours()
	for i := 0; i < load.Len(); i++ {
		acc.observe(billing.Sample{
			Index:  i,
			Time:   load.TimeAt(i),
			Power:  load.At(i),
			Energy: units.Energy(float64(load.At(i)) * h),
		})
	}
	return acc.amount()
}

// FixedTariff is a single constant price per kWh.
type FixedTariff struct {
	Rate units.EnergyPrice
}

// NewFixed returns a fixed tariff at the given rate. Negative rates are
// rejected: a tariff is a price, not a subsidy.
func NewFixed(rate units.EnergyPrice) (*FixedTariff, error) {
	if rate < 0 {
		return nil, errors.New("tariff: fixed rate must be non-negative")
	}
	return &FixedTariff{Rate: rate}, nil
}

// MustNewFixed is NewFixed that panics on error.
func MustNewFixed(rate units.EnergyPrice) *FixedTariff {
	t, err := NewFixed(rate)
	if err != nil {
		panic(err)
	}
	return t
}

// Kind returns Fixed.
func (t *FixedTariff) Kind() Kind { return Fixed }

// PriceAt returns the constant rate regardless of instant.
func (t *FixedTariff) PriceAt(time.Time) units.EnergyPrice { return t.Rate }

// Cost prices the load at the flat rate.
func (t *FixedTariff) Cost(load *timeseries.PowerSeries) units.Money {
	return t.Rate.Cost(load.Energy())
}

// Describe returns a one-line description.
func (t *FixedTariff) Describe() string {
	return fmt.Sprintf("fixed tariff @ %s", t.Rate)
}

// TOUTariff prices energy by the named band a calendar.Schedule assigns
// to each instant — the "seasonal pricing and day/night pricing" form.
type TOUTariff struct {
	schedule *calendar.Schedule
	rates    map[string]units.EnergyPrice
}

// NewTOU builds a TOU tariff. Every label the schedule can produce must
// have a rate, and rates must be non-negative.
func NewTOU(schedule *calendar.Schedule, rates map[string]units.EnergyPrice) (*TOUTariff, error) {
	if schedule == nil {
		return nil, errors.New("tariff: TOU requires a schedule")
	}
	for _, label := range schedule.Labels() {
		r, ok := rates[label]
		if !ok {
			return nil, fmt.Errorf("tariff: TOU missing rate for band %q", label)
		}
		if r < 0 {
			return nil, fmt.Errorf("tariff: TOU rate for band %q is negative", label)
		}
	}
	cp := make(map[string]units.EnergyPrice, len(rates))
	for k, v := range rates {
		cp[k] = v
	}
	return &TOUTariff{schedule: schedule, rates: cp}, nil
}

// MustNewTOU is NewTOU that panics on error.
func MustNewTOU(schedule *calendar.Schedule, rates map[string]units.EnergyPrice) *TOUTariff {
	t, err := NewTOU(schedule, rates)
	if err != nil {
		panic(err)
	}
	return t
}

// Kind returns TimeOfUse.
func (t *TOUTariff) Kind() Kind { return TimeOfUse }

// PriceAt returns the rate of the band in effect at t.
func (t *TOUTariff) PriceAt(at time.Time) units.EnergyPrice {
	return t.rates[t.schedule.LabelAt(at)]
}

// Cost prices the load band by band.
func (t *TOUTariff) Cost(load *timeseries.PowerSeries) units.Money {
	return costByPriceAt(t, load)
}

// EnergyByBand decomposes a load profile's energy across the schedule's
// bands — the basis for static DSM analysis ("how much consumption sits
// in the peak window?").
func (t *TOUTariff) EnergyByBand(load *timeseries.PowerSeries) map[string]units.Energy {
	out := make(map[string]units.Energy)
	h := load.Interval().Hours()
	for i := 0; i < load.Len(); i++ {
		label := t.schedule.LabelAt(load.TimeAt(i))
		out[label] += units.Energy(float64(load.At(i)) * h)
	}
	return out
}

// Bands returns the band labels and their rates, sorted by label.
func (t *TOUTariff) Bands() []Band {
	labels := t.schedule.Labels()
	out := make([]Band, 0, len(labels))
	for _, l := range labels {
		out = append(out, Band{Label: l, Rate: t.rates[l]})
	}
	return out
}

// Band is one named TOU price band.
type Band struct {
	Label string
	Rate  units.EnergyPrice
}

// Describe returns a one-line description listing the bands.
func (t *TOUTariff) Describe() string {
	var parts []string
	for _, b := range t.Bands() {
		parts = append(parts, fmt.Sprintf("%s@%s", b.Label, b.Rate))
	}
	return "time-of-use tariff [" + strings.Join(parts, ", ") + "]"
}

// DynamicTariff prices energy from a real-time price feed, optionally
// transformed by a retail markup: price = feed × Multiplier + Adder.
// This models the "dynamically variable tariff ... subject to real-time
// communication between the consumer and the provider".
type DynamicTariff struct {
	feed       *timeseries.PriceSeries
	multiplier float64
	adder      units.EnergyPrice
}

// NewDynamic builds a dynamic tariff over a price feed. multiplier must
// be positive (a retailer passes through, it does not invert the market).
func NewDynamic(feed *timeseries.PriceSeries, multiplier float64, adder units.EnergyPrice) (*DynamicTariff, error) {
	if feed == nil {
		return nil, errors.New("tariff: dynamic requires a price feed")
	}
	if multiplier <= 0 {
		return nil, errors.New("tariff: dynamic multiplier must be positive")
	}
	return &DynamicTariff{feed: feed, multiplier: multiplier, adder: adder}, nil
}

// MustNewDynamic is NewDynamic that panics on error.
func MustNewDynamic(feed *timeseries.PriceSeries, multiplier float64, adder units.EnergyPrice) *DynamicTariff {
	t, err := NewDynamic(feed, multiplier, adder)
	if err != nil {
		panic(err)
	}
	return t
}

// PassThrough builds a dynamic tariff that charges the feed price as-is.
func PassThrough(feed *timeseries.PriceSeries) *DynamicTariff {
	return MustNewDynamic(feed, 1, 0)
}

// Kind returns Dynamic.
func (t *DynamicTariff) Kind() Kind { return Dynamic }

// PriceAt returns the marked-up feed price at t (clamping at feed edges).
func (t *DynamicTariff) PriceAt(at time.Time) units.EnergyPrice {
	p, _ := t.feed.PriceAt(at)
	return units.EnergyPrice(float64(p)*t.multiplier) + t.adder
}

// Cost prices the load against the feed.
func (t *DynamicTariff) Cost(load *timeseries.PowerSeries) units.Money {
	return costByPriceAt(t, load)
}

// Feed returns the underlying price series.
func (t *DynamicTariff) Feed() *timeseries.PriceSeries { return t.feed }

// Describe returns a one-line description.
func (t *DynamicTariff) Describe() string {
	return fmt.Sprintf("dynamic tariff (feed mean %s, ×%.2f %+.4f/kWh)",
		t.feed.Mean(), t.multiplier, float64(t.adder))
}

// Stack is an ordered list of tariff components applied additively to the
// same load — e.g. a fixed base rate plus a time-of-use service-charge
// rider (the Sites 1 and 9 configuration in the paper's Table 2).
type Stack struct {
	components []Tariff
}

// NewStack builds a stack; at least one component is required.
func NewStack(components ...Tariff) (*Stack, error) {
	if len(components) == 0 {
		return nil, errors.New("tariff: stack needs at least one component")
	}
	return &Stack{components: components}, nil
}

// MustNewStack is NewStack that panics on error.
func MustNewStack(components ...Tariff) *Stack {
	s, err := NewStack(components...)
	if err != nil {
		panic(err)
	}
	return s
}

// Components returns the stacked tariffs in application order.
func (s *Stack) Components() []Tariff {
	out := make([]Tariff, len(s.components))
	copy(out, s.components)
	return out
}

// Kind returns the most dynamic kind present: a stack containing any
// dynamic component is classified dynamic; else TOU if present; else
// fixed. This mirrors how the paper's Table 2 ticks multiple tariff
// columns per site while the discussion treats the most flexible
// component as the site's DR exposure.
func (s *Stack) Kind() Kind {
	best := Fixed
	for _, c := range s.components {
		if c.Kind() > best {
			best = c.Kind()
		}
	}
	return best
}

// Kinds returns the distinct kinds present, sorted.
func (s *Stack) Kinds() []Kind {
	set := map[Kind]bool{}
	for _, c := range s.components {
		set[c.Kind()] = true
	}
	out := make([]Kind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PriceAt returns the summed effective price at t.
func (s *Stack) PriceAt(at time.Time) units.EnergyPrice {
	var sum units.EnergyPrice
	for _, c := range s.components {
		sum += c.PriceAt(at)
	}
	return sum
}

// Cost sums the component costs.
func (s *Stack) Cost(load *timeseries.PowerSeries) units.Money {
	var total units.Money
	for _, c := range s.components {
		total += c.Cost(load)
	}
	return total
}

// CostByComponent returns each component's contribution in order.
func (s *Stack) CostByComponent(load *timeseries.PowerSeries) []units.Money {
	out := make([]units.Money, len(s.components))
	for i, c := range s.components {
		out[i] = c.Cost(load)
	}
	return out
}

// Describe returns a one-line description of the whole stack.
func (s *Stack) Describe() string {
	parts := make([]string, len(s.components))
	for i, c := range s.components {
		parts[i] = c.Describe()
	}
	return strings.Join(parts, " + ")
}

var _ Tariff = (*FixedTariff)(nil)
var _ Tariff = (*TOUTariff)(nil)
var _ Tariff = (*DynamicTariff)(nil)
var _ Tariff = (*Stack)(nil)
