package serve

// LRU cache of compiled billing engines. Compiling a contract spec into
// a contract.Engine validates every component and builds the producer
// set; billing with a compiled engine is then a single streaming pass.
// The service compiles each distinct spec once and reuses the engine
// across requests — the cache key is the canonical content hash of the
// spec (contract.HashSpec) so formatting differences between clients
// cannot cause duplicate compiles, concatenated with a descriptor of
// the price feed for specs that contain dynamic tariffs (the same spec
// built against a different feed is a different executable engine;
// specs without dynamic tariffs ignore the feed and share one entry).

import (
	"container/list"
	"sync"

	"repro/internal/contract"
)

type cacheEntry struct {
	key    string
	engine *contract.Engine
}

// engineCache is a mutex-guarded LRU. Compilation happens under the
// lock: engines compile in microseconds-to-milliseconds and holding the
// lock guarantees a given key is compiled exactly once even under
// concurrent identical requests.
type engineCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List               // front = most recent
	entries   map[string]*list.Element // key -> *cacheEntry element
	hits      uint64
	misses    uint64
	evictions uint64
	compiles  uint64
}

func newEngineCache(capacity int) *engineCache {
	if capacity < 1 {
		capacity = 1
	}
	return &engineCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// get returns the engine for key, compiling it with build on a miss.
// build runs at most once per key while the key stays resident.
func (c *engineCache) get(key string, build func() (*contract.Engine, error)) (*contract.Engine, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).engine, nil
	}
	c.misses++
	c.compiles++
	eng, err := build()
	if err != nil {
		// Failed compiles are not cached: the error goes back to the
		// client and the (cheap) validation re-runs on retry.
		return nil, err
	}
	el := c.order.PushFront(&cacheEntry{key: key, engine: eng})
	c.entries[key] = el
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	return eng, nil
}

// cacheStats is a consistent snapshot of the cache counters.
type cacheStats struct {
	size, capacity                    int
	hits, misses, evictions, compiles uint64
}

func (c *engineCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		size:      c.order.Len(),
		capacity:  c.capacity,
		hits:      c.hits,
		misses:    c.misses,
		evictions: c.evictions,
		compiles:  c.compiles,
	}
}
