package optimize

// The perturbation move set. Every move mutates the shared candidate
// buffer in place, records an undo entry per touched sample, and lists
// the calendar months it touched; the search loop either commits the
// edit (objective accepted) or replays the undo log (rejected).
//
// Feasibility is maintained by construction:
//
//   - Shave levels never go below the load floor, and block deferral
//     caps its delta at the source window's floor headroom.
//   - Clamp-above (min(x, L)) and water-fill (max(x, θ)) are 1-Lipschitz
//     maps applied to a whole month, so within-month ramps never grow;
//     the two cross-month boundary steps — and all four window edges of
//     a block deferral — are checked explicitly against the ramp
//     envelope and the move is rejected outright on violation.
//   - Shaved energy is water-filled back into the same month's valleys
//     (deferral) or dropped against the partial-execution budget, so
//     total energy is conserved up to the dropped amount.

import (
	"math"
	"math/rand"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// levelBisectIters is the bisection depth for budget-capped shave
// levels and water-fill levels: 52 halvings of a kW-scale bracket reach
// float64 resolution, making the fill/shave energy mismatch negligible
// against the feasibility tolerance.
const levelBisectIters = 52

type undoEdit struct {
	idx int
	old units.Power
}

// searchState is the mutable candidate schedule plus the flexibility
// bookkeeping the move set works against.
type searchState struct {
	rng *rand.Rand

	base  []units.Power // baseline samples (never mutated)
	buf   []units.Power // candidate samples (mutated in place)
	lower []units.Power // per-sample floor: min(base, FloorKW)
	h     float64       // interval length in hours

	blocks []timeseries.MonthBlock // month views over buf

	// baseRamp[j] is |base[j+1]-base[j]|; the envelope allows each step
	// the larger of this and MaxRampKW.
	baseRamp []float64
	maxRamp  float64 // +Inf when unconstrained

	deferBudget   float64 // kWh that may be time-shifted, total
	partialBudget float64 // kWh that may be dropped, total
	moved         float64 // kWh of defer budget consumed (committed)
	dropped       float64 // kWh of partial budget consumed (committed)

	undo    []undoEdit
	touched []int

	rampRejected int
	floorLimited int
}

func newSearchState(baseline *timeseries.PowerSeries, flex Flexibility, seed int64) *searchState {
	base := baseline.AppendSamples(nil)
	s := &searchState{
		rng:   rand.New(rand.NewSource(seed)),
		base:  base,
		buf:   baseline.AppendSamples(nil),
		lower: make([]units.Power, len(base)),
		h:     baseline.Interval().Hours(),
	}
	floor := units.Power(flex.FloorKW)
	for i, p := range base {
		lo := floor
		if p < lo {
			lo = p
		}
		if lo < 0 {
			lo = 0
		}
		s.lower[i] = lo
	}
	if len(base) > 1 {
		s.baseRamp = make([]float64, len(base)-1)
		for j := range s.baseRamp {
			s.baseRamp[j] = math.Abs(float64(base[j+1] - base[j]))
		}
	}
	s.maxRamp = flex.MaxRampKW
	if s.maxRamp <= 0 {
		s.maxRamp = math.Inf(1)
	}
	e := float64(baseline.Energy())
	s.deferBudget = flex.DeferrableFraction * e
	s.partialBudget = flex.PartialFraction * e
	return s
}

// set writes one sample, recording the undo entry.
func (s *searchState) set(i int, v units.Power) {
	s.undo = append(s.undo, undoEdit{idx: i, old: s.buf[i]})
	s.buf[i] = v
}

// revert replays the undo log backwards, restoring the last committed
// schedule.
func (s *searchState) revert() {
	for i := len(s.undo) - 1; i >= 0; i-- {
		e := s.undo[i]
		s.buf[e.idx] = e.old
	}
	s.undo = s.undo[:0]
	s.touched = s.touched[:0]
}

// commit forgets the undo log, adopting the current buffer.
func (s *searchState) commit() {
	s.undo = s.undo[:0]
	s.touched = s.touched[:0]
}

// allow returns the ramp envelope for the step between samples j and
// j+1.
func (s *searchState) allow(j int) float64 {
	a := s.baseRamp[j]
	if s.maxRamp > a {
		a = s.maxRamp
	}
	return a
}

// rampOK checks the step between samples j and j+1 against the
// envelope (out-of-range steps pass).
func (s *searchState) rampOK(j int) bool {
	if j < 0 || j+1 >= len(s.buf) {
		return true
	}
	return math.Abs(float64(s.buf[j+1]-s.buf[j])) <= s.allow(j)+1e-9
}

// propose mutates the buffer with one randomly selected move and
// returns the deferrable/partial energy it would consume if accepted.
// ok is false when no well-formed move came out (buffer unchanged).
func (s *searchState) propose() (movedDelta, droppedDelta float64, ok bool) {
	s.undo = s.undo[:0]
	s.touched = s.touched[:0]

	deferrable := s.deferBudget-s.moved > 1e-9
	droppable := s.partialBudget-s.dropped > 1e-9
	if !deferrable && !droppable {
		return 0, 0, false
	}
	r := s.rng.Float64()
	switch {
	case deferrable && (r < 0.45 || !droppable && r < 0.7):
		return s.clipShift()
	case deferrable && r < 0.7:
		return s.deferBlock()
	case droppable:
		return s.shaveDrop()
	default:
		return s.deferBlock()
	}
}

// pickMonth returns a random month index with at least 4 samples, or
// -1 when none exists.
func (s *searchState) pickMonth() int {
	m := s.rng.Intn(len(s.blocks))
	for try := 0; try < 4; try++ {
		if len(s.blocks[(m+try)%len(s.blocks)].Samples) >= 4 {
			return (m + try) % len(s.blocks)
		}
	}
	return -1
}

// monthStats scans one month of the current buffer.
func monthStats(samples []units.Power) (mean, minv, peak float64) {
	minv, peak = float64(samples[0]), float64(samples[0])
	var sum float64
	for _, p := range samples {
		v := float64(p)
		sum += v
		if v < minv {
			minv = v
		}
		if v > peak {
			peak = v
		}
	}
	return sum / float64(len(samples)), minv, peak
}

// excessAbove returns the energy (kWh) above level L in the month.
func (s *searchState) excessAbove(samples []units.Power, L float64) float64 {
	var kw float64
	for _, p := range samples {
		if v := float64(p); v > L {
			kw += v - L
		}
	}
	return kw * s.h
}

// deficitBelow returns the energy (kWh) needed to fill the month up to
// level th.
func (s *searchState) deficitBelow(samples []units.Power, th float64) float64 {
	var kw float64
	for _, p := range samples {
		if v := float64(p); v < th {
			kw += th - v
		}
	}
	return kw * s.h
}

// capLevelToBudget raises the shave level L within [L, peak] until the
// energy above it fits the budget.
func (s *searchState) capLevelToBudget(samples []units.Power, L, peak, budget float64) float64 {
	if s.excessAbove(samples, L) <= budget {
		return L
	}
	lo, hi := L, peak
	for k := 0; k < levelBisectIters; k++ {
		mid := (lo + hi) / 2
		if s.excessAbove(samples, mid) > budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// clipShift shaves one month's peaks down to a level and water-fills
// the same month's valleys with the shaved energy: an in-month deferral
// that attacks demand charges, ratchets and upper powerband excursions
// while conserving energy exactly.
func (s *searchState) clipShift() (movedDelta, droppedDelta float64, ok bool) {
	m := s.pickMonth()
	if m < 0 {
		return 0, 0, false
	}
	blk := s.blocks[m]
	mean, minv, peak := monthStats(blk.Samples)
	low, floorBound := mean, false
	if f := s.floorOf(blk); f > low {
		low, floorBound = f, true
	}
	if peak <= low {
		if floorBound {
			s.floorLimited++
		}
		return 0, 0, false
	}
	budget := s.deferBudget - s.moved
	u := 0.05 + 0.95*s.rng.Float64()
	L := peak - u*(peak-low)
	L = s.capLevelToBudget(blk.Samples, L, peak, budget)
	removed := s.excessAbove(blk.Samples, L)
	if removed <= 1e-9 {
		return 0, 0, false
	}
	for i, p := range blk.Samples {
		if float64(p) > L {
			s.set(blk.Offset+i, units.Power(L))
		}
	}
	// Water-fill level θ absorbing exactly the removed energy. The fill
	// capacity up to L is removed + n·(L − mean) ≥ removed because
	// L ≥ mean, so the bracket [minv, L] always contains θ.
	lo, hi := minv, L
	for k := 0; k < levelBisectIters; k++ {
		mid := (lo + hi) / 2
		if s.deficitBelow(blk.Samples, mid) < removed {
			lo = mid
		} else {
			hi = mid
		}
	}
	th := hi
	for i, p := range blk.Samples {
		if float64(p) < th {
			s.set(blk.Offset+i, units.Power(th))
		}
	}
	if !s.rampOK(blk.Offset-1) || !s.rampOK(blk.Offset+len(blk.Samples)-1) {
		s.rampRejected++
		s.revert()
		return 0, 0, false
	}
	s.touched = append(s.touched, m)
	return removed, 0, true
}

// shaveDrop shaves one month's peaks and drops the energy against the
// partial-execution budget (Xu & Li): the workload above the level
// simply does not run.
func (s *searchState) shaveDrop() (movedDelta, droppedDelta float64, ok bool) {
	m := s.pickMonth()
	if m < 0 {
		return 0, 0, false
	}
	blk := s.blocks[m]
	mean, _, peak := monthStats(blk.Samples)
	low, floorBound := mean*0.5, false
	if f := s.floorOf(blk); f > low {
		low, floorBound = f, true
	}
	if peak <= low {
		if floorBound {
			s.floorLimited++
		}
		return 0, 0, false
	}
	budget := s.partialBudget - s.dropped
	u := 0.05 + 0.6*s.rng.Float64()
	L := peak - u*(peak-low)
	L = s.capLevelToBudget(blk.Samples, L, peak, budget)
	removed := s.excessAbove(blk.Samples, L)
	if removed <= 1e-9 {
		return 0, 0, false
	}
	for i, p := range blk.Samples {
		if float64(p) > L {
			s.set(blk.Offset+i, units.Power(L))
		}
	}
	if !s.rampOK(blk.Offset-1) || !s.rampOK(blk.Offset+len(blk.Samples)-1) {
		s.rampRejected++
		s.revert()
		return 0, 0, false
	}
	s.touched = append(s.touched, m)
	return 0, removed, true
}

// floorOf returns the highest per-sample floor inside the block — the
// lowest level the whole block may be clamped to.
func (s *searchState) floorOf(blk timeseries.MonthBlock) float64 {
	var hi float64
	for i := range blk.Samples {
		if v := float64(s.lower[blk.Offset+i]); v > hi {
			hi = v
		}
	}
	return hi
}

// deferBlock moves a rectangle of power from one window to another
// (possibly in a different month): the schedule-level picture of
// deferring a job slice. Interior ramps are untouched (uniform shift);
// the four window edges are checked against the envelope.
func (s *searchState) deferBlock() (movedDelta, droppedDelta float64, ok bool) {
	ms := s.pickMonth()
	md := s.pickMonth()
	if ms < 0 || md < 0 {
		return 0, 0, false
	}
	src, dst := s.blocks[ms], s.blocks[md]
	w := 4 + s.rng.Intn(61)
	if w > len(src.Samples) {
		w = len(src.Samples)
	}
	if w > len(dst.Samples) {
		w = len(dst.Samples)
	}

	// Source window: usually around the month's current peak (that is
	// where shaving pays), sometimes anywhere.
	var srcStart int
	if s.rng.Float64() < 0.7 {
		argmax := 0
		for i, p := range src.Samples {
			if p > src.Samples[argmax] {
				argmax = i
			}
		}
		srcStart = argmax - w/2
	} else {
		srcStart = s.rng.Intn(len(src.Samples) - w + 1)
	}
	if srcStart < 0 {
		srcStart = 0
	}
	if srcStart > len(src.Samples)-w {
		srcStart = len(src.Samples) - w
	}
	dstStart := s.rng.Intn(len(dst.Samples) - w + 1)

	sa, sb := src.Offset+srcStart, src.Offset+srcStart+w // [sa, sb)
	da, db := dst.Offset+dstStart, dst.Offset+dstStart+w
	if sa < db && da < sb {
		return 0, 0, false // overlapping windows cancel out
	}

	// Delta capped by the source window's floor headroom and the
	// remaining defer budget.
	head := math.Inf(1)
	for i := sa; i < sb; i++ {
		if h := float64(s.buf[i] - s.lower[i]); h < head {
			head = h
		}
	}
	if head <= 1e-9 {
		s.floorLimited++
		return 0, 0, false
	}
	budget := s.deferBudget - s.moved
	capKW := math.Min(head, budget/(float64(w)*s.h))
	delta := (0.2 + 0.8*s.rng.Float64()) * capKW
	if delta <= 1e-9 {
		return 0, 0, false
	}

	for i := sa; i < sb; i++ {
		s.set(i, s.buf[i]-units.Power(delta))
	}
	for i := da; i < db; i++ {
		s.set(i, s.buf[i]+units.Power(delta))
	}
	if !s.rampOK(sa-1) || !s.rampOK(sb-1) || !s.rampOK(da-1) || !s.rampOK(db-1) {
		s.rampRejected++
		s.revert()
		return 0, 0, false
	}
	s.touched = append(s.touched, ms)
	if md != ms {
		s.touched = append(s.touched, md)
	}
	return delta * float64(w) * s.h, 0, true
}
