package units

// Append-style formatters for the hot billing path. The billing
// engine's columnar scanners render one quantity string per line item
// per period; the fmt-based String methods cost several allocations
// each (interface boxing, scratch buffers). AppendPower/AppendEnergy
// produce byte-identical output via strconv into a caller-owned buffer,
// so a reused scratch buffer leaves exactly one allocation — the final
// string — per rendered quantity.

import (
	"math"
	"strconv"
)

// AppendPower appends the exact Power.String() rendering of p to dst
// and returns the extended slice.
func AppendPower(dst []byte, p Power) []byte {
	v := float64(p)
	abs := math.Abs(v)
	switch {
	case abs >= 1e6:
		dst = strconv.AppendFloat(dst, v/1e6, 'f', 2, 64)
		return append(dst, " GW"...)
	case abs >= 1000:
		dst = strconv.AppendFloat(dst, v/1000, 'f', 2, 64)
		return append(dst, " MW"...)
	case abs >= 1:
		dst = strconv.AppendFloat(dst, v, 'f', 2, 64)
		return append(dst, " kW"...)
	default:
		dst = strconv.AppendFloat(dst, v*1000, 'f', 1, 64)
		return append(dst, " W"...)
	}
}

// AppendEnergy appends the exact Energy.String() rendering of e to dst
// and returns the extended slice.
func AppendEnergy(dst []byte, e Energy) []byte {
	v := float64(e)
	abs := math.Abs(v)
	switch {
	case abs >= 1e6:
		dst = strconv.AppendFloat(dst, v/1e6, 'f', 2, 64)
		return append(dst, " GWh"...)
	case abs >= 1000:
		dst = strconv.AppendFloat(dst, v/1000, 'f', 2, 64)
		return append(dst, " MWh"...)
	case abs >= 1:
		dst = strconv.AppendFloat(dst, v, 'f', 2, 64)
		return append(dst, " kWh"...)
	default:
		dst = strconv.AppendFloat(dst, v*1000, 'f', 1, 64)
		return append(dst, " Wh"...)
	}
}
