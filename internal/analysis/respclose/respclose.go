// Package respclose ensures http.Response bodies in the fleet path
// are closed on every exit path — and drained before close, so the
// transport can reuse the connection.
//
// Invariant guarded: the route→serve fleet path issues HTTP requests
// at request rate (forward attempts, /readyz polls, feed fetches,
// admin-client calls, load-generator fire). An unclosed response body
// pins its connection and goroutine for good; a closed-but-undrained
// body forces the transport to tear the connection down instead of
// returning it to the keep-alive pool, which at fleet rates turns
// every request into a fresh dial — exactly the failure mode the
// router's deep idle pools exist to avoid. Two rules, run over the
// shared internal/analysis/flow dataflow:
//
//  1. A variable bound to a call returning *http.Response must have
//     resp.Body.Close() called on every path out of the function
//     (a deferred Close, including inside a deferred literal, covers
//     all exits from that point on). The err != nil / resp == nil
//     branch of the idiomatic check prunes the nil response.
//  2. A Close with no prior read of the body anywhere in the function
//     is reported: drain first (io.Copy(io.Discard, resp.Body), a
//     bounded io.CopyN, or a real read) so the connection is reusable.
//
// Blessed escapes: handing the response away transfers the obligation
// — returning it, passing it (or its Body) to a call, or storing it
// in anything that is not a simple local stops the tracking; the new
// owner is accountable. A deliberate undrained close (poisoned body
// after a canceled request, connection being torn down anyway) is
// blessed with //lint:scvet-ignore respclose <reason>.
package respclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "respclose",
	Doc: "require http.Response bodies to be closed on all exit paths and " +
		"drained before close in the fleet packages",
	Run: run,
}

// scopes are the packages that issue HTTP requests on the fleet path:
// route forwards and readyz polls, feed fetches, the chaos and load
// harnesses, and the admin/driver commands.
var scopes = []string{
	"internal/route",
	"internal/serve",
	"internal/feed",
	"internal/chaos",
	"internal/loadgen",
	"cmd/scchaos",
	"cmd/scroute",
	"cmd/scload",
}

// State-key prefixes: "open:<var>" is the outstanding close
// obligation, "read:<var>" records that the body was read on this
// path (the drain evidence rule 2 wants).
const (
	openPrefix = "open:"
	readPrefix = "read:"
)

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg, scopes...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{
		pass:     pass,
		created:  map[string]token.Pos{},
		errPair:  map[string]string{},
		reported: map[token.Pos]bool{},
	}
	flow.Walk(body, flow.State{}, flow.Hooks{
		Stmt:     c.stmt,
		Expr:     c.uses,
		Cond:     c.cond,
		Exit:     c.exit,
		WalkComm: true,
	})
}

type checker struct {
	pass     *analysis.Pass
	created  map[string]token.Pos // resp var -> creation site
	errPair  map[string]string    // err var -> resp var from the same assignment
	reported map[token.Pos]bool   // one report per creation site
	inDefer  bool                 // inside a defer statement's expressions
}

// respResult reports whether the call produces an *http.Response, and
// at which result index.
func (c *checker) respResult(e ast.Expr) (int, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	if analysis.IsConversion(c.pass.TypesInfo, call) || analysis.IsBuiltin(c.pass.TypesInfo, call) {
		return 0, false
	}
	tv, ok := c.pass.TypesInfo.Types[call]
	if !ok {
		return 0, false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isResponse(t.At(i).Type()) {
				return i, true
			}
		}
	default:
		if isResponse(tv.Type) {
			return 0, true
		}
	}
	return 0, false
}

func isResponse(t types.Type) bool {
	return analysis.TypeIs(t, "net/http", "Response")
}

// stmt is the transfer function: track `resp, err := client.Do(req)`
// bindings, discharge on resp.Body.Close(), and let defers discharge
// from here on.
func (c *checker) stmt(s ast.Stmt, st flow.State) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.uses(r, st)
		}
		c.trackAssign(s, st)
		for _, l := range s.Lhs {
			if _, ok := l.(*ast.Ident); !ok {
				c.uses(l, st) // field/index targets may consume a response
			}
		}
		return true
	case *ast.ExprStmt:
		if name, ok := c.closeCall(s.X, st); ok {
			c.checkDrained(s.X.Pos(), name, st)
			delete(st, openPrefix+name)
			return true
		}
		if _, ok := c.respResult(s.X); ok {
			c.report(s.X.Pos(), "response is discarded without closing its body; bind it and defer resp.Body.Close()")
			return true
		}
	case *ast.DeferStmt:
		// A deferred Close (directly or inside a deferred literal)
		// covers every exit from here on; other deferred uses hand the
		// response away. The drain rule is skipped for deferred closes:
		// the reads it wants happen after the defer statement, and the
		// close itself runs at exit, after them.
		c.inDefer = true
		c.uses(s.Call.Fun, st)
		for _, a := range s.Call.Args {
			c.uses(a, st)
		}
		c.inDefer = false
		return true
	}
	return false
}

// trackAssign begins tracking responses bound to simple locals.
func (c *checker) trackAssign(s *ast.AssignStmt, st flow.State) {
	// One call, two results: resp, err := client.Do(req).
	if len(s.Rhs) == 1 && len(s.Lhs) == 2 {
		if idx, ok := c.respResult(s.Rhs[0]); ok {
			respID, isIdent := s.Lhs[idx].(*ast.Ident)
			if !isIdent || respID.Name == "_" {
				if isIdent {
					c.report(s.Rhs[0].Pos(), "response is discarded without closing its body; bind it and defer resp.Body.Close()")
				}
				return
			}
			st[openPrefix+respID.Name] = true
			c.created[respID.Name] = s.Rhs[0].Pos()
			if errID, ok := s.Lhs[1-idx].(*ast.Ident); ok && errID.Name != "_" {
				c.errPair[errID.Name] = respID.Name
			}
			return
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, r := range s.Rhs {
			if _, ok := c.respResult(r); !ok {
				continue
			}
			id, isIdent := s.Lhs[i].(*ast.Ident)
			if !isIdent {
				continue // stored away: the new owner is accountable
			}
			if id.Name == "_" {
				c.report(r.Pos(), "response is discarded without closing its body; bind it and defer resp.Body.Close()")
				continue
			}
			st[openPrefix+id.Name] = true
			c.created[id.Name] = r.Pos()
		}
	}
}

// closeCall returns the tracked variable a resp.Body.Close() call
// releases, if the call is one.
func (c *checker) closeCall(e ast.Expr, st flow.State) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return "", false
	}
	body, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || body.Sel.Name != "Body" {
		return "", false
	}
	id, ok := ast.Unparen(body.X).(*ast.Ident)
	if !ok || !st[openPrefix+id.Name] {
		return "", false
	}
	return id.Name, true
}

// uses scans an expression subtree for uses of tracked responses:
// resp.Body.Close discharges, any other resp.Body use marks the body
// read, resp.StatusCode / resp.Header / resp.Status are free, and any
// other appearance of resp hands it (and the obligation) away.
func (c *checker) uses(e ast.Expr, st flow.State) {
	if e == nil || len(st) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok {
			// resp.Body.Close() — discharge (covers the deferred shape).
			if sel.Sel.Name == "Close" {
				if body, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && body.Sel.Name == "Body" {
					if id, ok := ast.Unparen(body.X).(*ast.Ident); ok && st[openPrefix+id.Name] {
						c.checkDrained(sel.Pos(), id.Name, st)
						delete(st, openPrefix+id.Name)
						return false
					}
				}
			}
			// resp.Body in any other position is a read (or a handoff of
			// the reader — either way the connection gets drained by it).
			if sel.Sel.Name == "Body" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && st[openPrefix+id.Name] {
					st[readPrefix+id.Name] = true
					return false
				}
			}
			// Metadata reads keep the obligation in place.
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && st[openPrefix+id.Name] {
				switch sel.Sel.Name {
				case "StatusCode", "Status", "Header", "ContentLength", "Proto", "Trailer", "Uncompressed", "TransferEncoding":
					return false
				default:
					// resp.Cookies(), resp.Write(w), ... — treat as a read
					// plus continued ownership? No: unknown methods manage
					// the body themselves; hand the obligation away.
					delete(st, openPrefix+id.Name)
					return false
				}
			}
			return true
		}
		if id, ok := n.(*ast.Ident); ok && st[openPrefix+id.Name] {
			// Bare use of resp: returned, passed to a call, stored — the
			// obligation transfers with it.
			delete(st, openPrefix+id.Name)
		}
		return true
	})
}

// cond prunes the nil branch of the idiomatic post-call checks:
// `if err != nil` (resp is nil where err isn't) and `if resp == nil`.
func (c *checker) cond(cond ast.Expr, thenSt, elseSt flow.State) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	id, nilOnEq := nilCheck(be)
	if id == "" {
		return
	}
	// nilSide is the state where the checked value IS nil.
	nilSt := thenSt
	if !nilOnEq {
		nilSt = elseSt
	}
	if resp, ok := c.errPair[id]; ok {
		// resp is nil exactly where its paired err is non-nil: prune the
		// obligation from the err-is-non-nil branch.
		if nilOnEq {
			delete(elseSt, openPrefix+resp) // cond is err == nil
		} else {
			delete(thenSt, openPrefix+resp) // cond is err != nil
		}
		return
	}
	if _, tracked := c.created[id]; tracked {
		delete(nilSt, openPrefix+id)
	}
}

// nilCheck matches `x == nil` / `x != nil` (either operand order) and
// returns the ident name plus whether the nil case is the == branch.
func nilCheck(be *ast.BinaryExpr) (name string, nilOnEq bool) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return "", false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	var id *ast.Ident
	switch {
	case isNil(y):
		id, _ = x.(*ast.Ident)
	case isNil(x):
		id, _ = y.(*ast.Ident)
	}
	if id == nil {
		return "", false
	}
	return id.Name, be.Op == token.EQL
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// report emits one diagnostic per position.
func (c *checker) report(pos token.Pos, msg string) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, "%s", msg)
}

// checkDrained reports a Close on a path where the body was never
// read: the transport cannot reuse the connection.
func (c *checker) checkDrained(pos token.Pos, name string, st flow.State) {
	if c.inDefer || st[readPrefix+name] {
		return
	}
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos,
		"response body %s.Body is closed without being drained; io.Copy(io.Discard, %s.Body) first so the connection is reusable, or bless a deliberate teardown with //lint:scvet-ignore respclose <reason>",
		name, name)
}

// exit reports every response still owed a Close at a point where
// control leaves the function.
func (c *checker) exit(pos token.Pos, st flow.State) {
	for key := range st {
		name, ok := cutPrefix(key, openPrefix)
		if !ok {
			continue
		}
		cr, ok := c.created[name]
		if !ok || c.reported[cr] {
			continue
		}
		c.reported[cr] = true
		c.pass.Reportf(cr,
			"response body %s.Body is not closed on every exit path; the connection and its goroutine leak — defer %s.Body.Close()",
			name, name)
	}
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}
