// Near-miss fixtures: the bounded goroutine shapes the fleet path
// actually uses, each one mutation away from a positive. None may
// diagnose.
package neg

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

// WaitGroup registration: Add before the spawn, deferred Done inside.
func registered(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		f()
	}()
}

// ctx threaded as a spawn argument into a same-package function.
func ctxArg(ctx context.Context, interval time.Duration) {
	go pollLoop(ctx, interval)
}

func pollLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			t.Reset(interval)
		}
	}
}

// ctx captured by the literal body: referencing it is the evidence.
func ctxCaptured(ctx context.Context, client *http.Client, url string) {
	go func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
}

// Done-channel plumbing: a captured chan struct{} receive bounds the
// loop; the owner closes it.
func doneChan(stop chan struct{}, f func()) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				f()
			}
		}
	}()
}

// The accept-loop idiom: the spawned same-package method registers on
// the owner's WaitGroup inside its own body.
type proxy struct {
	wg    sync.WaitGroup
	conns chan struct{}
}

func (p *proxy) start() {
	p.wg.Add(1)
	go p.acceptLoop()
}

func (p *proxy) acceptLoop() {
	defer p.wg.Done()
	for range p.conns {
	}
}

// An *http.Request argument carries its context: the transport work
// the goroutine does is cancelable through it.
func attempt(req *http.Request, client *http.Client, out chan error) {
	go runAttempt(client, req, out)
}

func runAttempt(client *http.Client, req *http.Request, out chan error) {
	resp, err := client.Do(req)
	if err == nil {
		resp.Body.Close()
	}
	out <- err
}

// A deliberate process-lifetime daemon is blessed with a reason.
func blessedDaemon(f func()) {
	//lint:scvet-ignore goroleak metrics flusher lives for the process by design
	go func() {
		for {
			f()
			time.Sleep(time.Minute)
		}
	}()
}
