package exp

import (
	"strings"
	"testing"

	"repro/internal/grid"
)

func TestE18AllocationStory(t *testing.T) {
	res, err := RunE18()
	if err != nil {
		t.Fatal(err)
	}
	shareOf := func(a *grid.Allocation, name string) float64 {
		s, err := a.ShareOf(name)
		if err != nil {
			t.Fatal(err)
		}
		return s.Share
	}
	// Shares sum to 1 under both rules.
	for _, a := range []*grid.Allocation{res.Coincident, res.NonCoincident} {
		var sum float64
		for _, s := range a.Shares {
			sum += s.Share
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%v shares sum to %v", a.Rule, sum)
		}
	}
	// The night-peaking industrial overpays under demand charges.
	ind := "industrial (night)"
	if shareOf(res.NonCoincident, ind) <= shareOf(res.Coincident, ind) {
		t.Error("off-peak consumer must overpay under non-coincident allocation")
	}
	// The on-peak office underpays under demand charges.
	off := "office park (evening)"
	if shareOf(res.NonCoincident, off) >= shareOf(res.Coincident, off) {
		t.Error("on-peak consumer must underpay under non-coincident allocation")
	}
	// The flat SC is mispriced least: its rule-to-rule share delta is
	// the smallest of the three.
	sc := "supercomputer (flat)"
	scDelta := abs(shareOf(res.NonCoincident, sc) - shareOf(res.Coincident, sc))
	for _, name := range []string{ind, off} {
		if d := abs(shareOf(res.NonCoincident, name) - shareOf(res.Coincident, name)); d <= scDelta {
			t.Errorf("flat SC should be mispriced least: sc %v vs %s %v", scDelta, name, d)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestE19LandscapeMatchesPaper(t *testing.T) {
	res, err := RunE19()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rank1.MW() < 10 {
		t.Errorf("rank 1 = %v", res.Rank1)
	}
	if res.Rank500.KW() < 20 || res.Rank500.KW() > 120 {
		t.Errorf("rank 500 = %v, want ≈40 kW", res.Rank500)
	}
	if res.Rank50 < res.Rank167 || res.Rank167 < res.Rank500 {
		t.Error("powers must fall with rank")
	}
	if res.Top50Sum.MW() < 30 {
		t.Errorf("Top50 aggregate = %v", res.Top50Sum)
	}
}

func TestE18E19Exhibits(t *testing.T) {
	for id, want := range map[string]string{
		"E18": "Demand-charge share",
		"E19": "Top50 aggregate",
	} {
		e, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(e.Render(), want) {
			t.Errorf("%s missing %q", id, want)
		}
	}
}
