// Package stats provides the small set of descriptive statistics the
// experiment harnesses need: moments, quantiles, histograms, simple
// linear regression, and bootstrap confidence intervals. It exists so
// the analysis layers do not each hand-roll (and subtly disagree on)
// these primitives; it is not a general statistics library.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean, or an error for an empty sample.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance (n−1 denominator).
// Samples of size < 2 yield an error.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest values.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation
// between order statistics. The input need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary. Samples of size 1 report zero StdDev.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd := 0.0
	if len(xs) > 1 {
		sd, _ = StdDev(xs)
	}
	lo, hi, _ := MinMax(xs)
	q25, _ := Quantile(xs, 0.25)
	q50, _ := Quantile(xs, 0.50)
	q75, _ := Quantile(xs, 0.75)
	q95, _ := Quantile(xs, 0.95)
	q99, _ := Quantile(xs, 0.99)
	return Summary{
		N: len(xs), Mean: m, StdDev: sd,
		Min: lo, P25: q25, Median: q50, P75: q75, P95: q95, P99: q99, Max: hi,
	}, nil
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count out-of-range observations.
	Under, Over int
}

// NewHistogram builds a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(hi > lo) {
		return nil, errors.New("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard the hi boundary under float round
			i--
		}
		h.Counts[i]++
	}
}

// AddAll records a batch of observations.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinBounds returns the [lo, hi) bounds of bin i.
func (h *Histogram) BinBounds(i int) (float64, float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Render draws the histogram as ASCII art, scaling bars to width.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo, hi := h.BinBounds(i)
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&b, "[%10.2f, %10.2f) %6d %s\n", lo, hi, c, bar)
	}
	return b.String()
}

// LinearFit is the result of a simple least-squares regression y = a + bx.
type LinearFit struct {
	Intercept float64
	Slope     float64
	// R2 is the coefficient of determination.
	R2 float64
}

// FitLinear performs ordinary least squares on paired samples.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: x and y lengths differ")
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: x has zero variance")
	}
	slope := sxy / sxx
	fit := LinearFit{Intercept: my - slope*mx, Slope: slope}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // y constant and perfectly predicted by the constant fit
	}
	return fit, nil
}

// Predict evaluates the fit at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// BootstrapCI estimates a two-sided confidence interval for a statistic
// via the percentile bootstrap. stat receives a resampled copy; level is
// e.g. 0.95; rng drives resampling (deterministic experiments pass a
// seeded source).
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, iters int, rng *rand.Rand) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return 0, 0, errors.New("stats: confidence level must be in (0,1)")
	}
	if iters < 10 {
		iters = 10
	}
	estimates := make([]float64, iters)
	resample := make([]float64, len(xs))
	for it := 0; it < iters; it++ {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		estimates[it] = stat(resample)
	}
	alpha := (1 - level) / 2
	lo, _ = Quantile(estimates, alpha)
	hi, _ = Quantile(estimates, 1-alpha)
	return lo, hi, nil
}

// CDF returns the empirical CDF evaluated at x.
func CDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
