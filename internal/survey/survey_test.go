package survey

import (
	"strings"
	"testing"
	"time"

	"repro/internal/contract"
)

func TestRosterMatchesTable1(t *testing.T) {
	roster := Roster()
	if len(roster) != 10 {
		t.Fatalf("roster = %d sites, want 10", len(roster))
	}
	// Paper: four US, six European sites.
	us, eu := 0, 0
	for _, e := range roster {
		switch e.Region {
		case UnitedStates:
			us++
		case Europe:
			eu++
		}
	}
	if us != 4 || eu != 6 {
		t.Errorf("regions = %d US, %d Europe; want 4 and 6", us, eu)
	}
	// Four German sites.
	de := 0
	for _, e := range roster {
		if e.Country == "Germany" {
			de++
		}
	}
	if de != 4 {
		t.Errorf("German sites = %d, want 4", de)
	}
	// Spot-check specific named sites from the paper.
	names := make(map[string]bool)
	for _, e := range roster {
		names[e.Name] = true
	}
	for _, want := range []string{
		"Oak Ridge National Laboratory",
		"Swiss National Supercomputing Centre",
		"Jülich Supercomputing Centre",
	} {
		if !names[want] {
			t.Errorf("roster missing %q", want)
		}
	}
}

func TestRegionString(t *testing.T) {
	if Europe.String() != "Europe" || UnitedStates.String() != "United States" {
		t.Error("region names")
	}
	if Region(9).String() == "" {
		t.Error("unknown region should format")
	}
}

func TestRNPString(t *testing.T) {
	if RNPSupercomputingCenter.String() != "SC" || RNPInternal.String() != "Internal" || RNPExternal.String() != "External" {
		t.Error("RNP names")
	}
	if RNP(9).String() == "" {
		t.Error("unknown RNP should format")
	}
}

func TestRecordsMatchTable2Matrix(t *testing.T) {
	recs := Records()
	if len(recs) != 10 {
		t.Fatalf("records = %d, want 10", len(recs))
	}
	// Row-level spot checks straight from the printed matrix.
	site7 := recs[6]
	if !site7.Profile.DemandCharge || !site7.Profile.Powerband || !site7.Profile.DynamicTariff || !site7.Profile.EmergencyDR {
		t.Errorf("site 7 row wrong: %+v", site7.Profile)
	}
	if site7.Profile.FixedTariff || site7.Profile.TOUTariff {
		t.Errorf("site 7 must not have fixed/TOU: %+v", site7.Profile)
	}
	site6 := recs[5]
	if site6.RNP != RNPSupercomputingCenter {
		t.Errorf("site 6 RNP = %v, want SC", site6.RNP)
	}
	site10 := recs[9]
	if !site10.Profile.FixedTariff || site10.Profile.DemandCharge {
		t.Errorf("site 10 row wrong: %+v", site10.Profile)
	}
	// IDs are 1..10 in order.
	for i, r := range recs {
		if r.ID != i+1 {
			t.Errorf("record %d has ID %d", i, r.ID)
		}
	}
}

func TestMatrixCounts(t *testing.T) {
	counts, err := MatrixCounts()
	if err != nil {
		t.Fatal(err)
	}
	if counts.Sites != 10 {
		t.Errorf("sites = %d", counts.Sites)
	}
	// Tallied straight from the printed Table 2.
	want := map[contract.Component]int{
		contract.CompDemandCharge:  7,
		contract.CompPowerband:     5,
		contract.CompFixedTariff:   7,
		contract.CompTOUTariff:     2,
		contract.CompDynamicTariff: 3,
		contract.CompEmergencyDR:   2,
	}
	for comp, n := range want {
		if counts.Component[comp] != n {
			t.Errorf("%v = %d, want %d", comp, counts.Component[comp], n)
		}
	}
	// RNP split 1/6/3 (§3.3 — text and matrix agree here).
	if counts.RNP[RNPSupercomputingCenter] != 1 || counts.RNP[RNPInternal] != 6 || counts.RNP[RNPExternal] != 3 {
		t.Errorf("RNP counts = %v", counts.RNP)
	}
	// §3.4: six of ten communicate swings.
	if counts.CommunicateSwings != 6 {
		t.Errorf("communicate swings = %d, want 6", counts.CommunicateSwings)
	}
}

func TestTextClaims(t *testing.T) {
	c := TextClaims()
	if c.Component[contract.CompFixedTariff] != 8 || c.Component[contract.CompDemandCharge] != 8 {
		t.Error("text claims eight fixed and eight demand-charge sites")
	}
	if c.RNP[RNPInternal] != 6 || c.Sites != 10 || c.CommunicateSwings != 6 {
		t.Error("text claim aggregates wrong")
	}
}

func TestDiscrepancies(t *testing.T) {
	ds, err := Discrepancies()
	if err != nil {
		t.Fatal(err)
	}
	// Exactly four cells disagree: fixed (8v7), TOU (3v2), dynamic
	// (2v3), demand charge (8v7).
	if len(ds) != 4 {
		t.Fatalf("discrepancies = %d, want 4: %+v", len(ds), ds)
	}
	byComp := map[contract.Component]Discrepancy{}
	for _, d := range ds {
		byComp[d.Component] = d
	}
	if d := byComp[contract.CompFixedTariff]; d.Text != 8 || d.Matrix != 7 {
		t.Errorf("fixed discrepancy = %+v", d)
	}
	if d := byComp[contract.CompDynamicTariff]; d.Text != 2 || d.Matrix != 3 {
		t.Errorf("dynamic discrepancy = %+v", d)
	}
}

func TestBuildContractReproducesEveryRow(t *testing.T) {
	ctx := DefaultBuildContext(time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC))
	for _, site := range Records() {
		c, err := BuildContract(site, ctx)
		if err != nil {
			t.Fatalf("site %d: %v", site.ID, err)
		}
		got := contract.Classify(c)
		if got != site.Profile {
			t.Errorf("site %d: classification %v != row %v", site.ID, got, site.Profile)
		}
	}
}

func TestTable1Render(t *testing.T) {
	out := Table1().Render()
	if !strings.Contains(out, "Oak Ridge National Laboratory") || !strings.Contains(out, "Switzerland") {
		t.Error("Table 1 rendering incomplete")
	}
	md := Table1().Markdown()
	if !strings.Contains(md, "| Interview Site | Country |") {
		t.Error("Table 1 markdown header missing")
	}
}

func TestTable2Render(t *testing.T) {
	tbl, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	if !strings.Contains(out, "Site 1") || !strings.Contains(out, "Site 10") {
		t.Error("Table 2 rows missing")
	}
	if !strings.Contains(out, "✓") {
		t.Error("Table 2 ticks missing")
	}
	if !strings.Contains(out, "External") || !strings.Contains(out, "Internal") || !strings.Contains(out, "SC") {
		t.Error("Table 2 RNP column incomplete")
	}
	// Exactly 10 data rows.
	if len(tbl.Rows) != 10 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestFigure1Render(t *testing.T) {
	tree := Figure1()
	if tree.Label != "SC electricity service contract" {
		t.Errorf("root = %q", tree.Label)
	}
	if len(tree.Children) != 3 {
		t.Errorf("branches = %d", len(tree.Children))
	}
}

func TestCountsTable(t *testing.T) {
	tbl, err := CountsTable()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	if !strings.Contains(out, "fixed-tariff") || !strings.Contains(out, "7/10") || !strings.Contains(out, "8/10") {
		t.Errorf("counts table incomplete:\n%s", out)
	}
	if len(tbl.Rows) != 6 {
		t.Errorf("rows = %d, want 6 components", len(tbl.Rows))
	}
}

func TestRNPTable(t *testing.T) {
	tbl, err := RNPTable()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	for _, want := range []string{"SC", "Internal", "External", "1", "6", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("RNP table missing %q:\n%s", want, out)
		}
	}
}

func TestGeographicFindingRecorded(t *testing.T) {
	if !strings.Contains(GeographicFinding, "not a difference") {
		t.Error("the geographic finding should state the null result")
	}
}
