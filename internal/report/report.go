// Package report renders the library's outputs — survey tables, typology
// trees, itemized bills, experiment results — as aligned ASCII for
// terminals and as Markdown for documents. It is deliberately free of
// domain knowledge: callers hand it strings.
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a rectangular report with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Short rows are padded with empty cells; long
// rows are truncated to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// widths returns the display width of each column.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > w[i] {
				w[i] = n
			}
		}
	}
	return w
}

func pad(s string, width int) string {
	n := utf8.RuneCountInString(s)
	if n >= width {
		return s
	}
	return s + strings.Repeat(" ", width-n)
}

// Render draws the table as aligned ASCII.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", utf8.RuneCountInString(t.Title)))
		b.WriteByte('\n')
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, w[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	var total int
	for i, width := range w {
		if i > 0 {
			total += 2
		}
		total += width
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		escaped := make([]string, len(row))
		for i, c := range row {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(escaped, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as RFC 4180 CSV (header row first). The title
// is not emitted — CSV consumers want pure data.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// TreeNode is a generic labeled tree for rendering hierarchies (the
// contract typology of Figure 1, bill structures, ...).
type TreeNode struct {
	Label    string
	Detail   string
	Children []*TreeNode
}

// RenderTree draws the tree with box-drawing connectors. Details, when
// present, are appended after an em-dash.
func RenderTree(root *TreeNode) string {
	if root == nil {
		return ""
	}
	var b strings.Builder
	writeNode(&b, root, "", true, true)
	return b.String()
}

func writeNode(b *strings.Builder, n *TreeNode, prefix string, isLast, isRoot bool) {
	label := n.Label
	if n.Detail != "" {
		label += " — " + n.Detail
	}
	if isRoot {
		b.WriteString(label)
		b.WriteByte('\n')
	} else {
		connector := "├── "
		if isLast {
			connector = "└── "
		}
		b.WriteString(prefix + connector + label + "\n")
	}
	childPrefix := prefix
	if !isRoot {
		if isLast {
			childPrefix += "    "
		} else {
			childPrefix += "│   "
		}
	}
	for i, c := range n.Children {
		writeNode(b, c, childPrefix, i == len(n.Children)-1, false)
	}
}

// Check renders a Table 2-style tick: "✓" for true, "" for false.
func Check(v bool) string {
	if v {
		return "✓"
	}
	return ""
}

// KV renders an aligned key/value block (for bill summaries and
// experiment headlines).
func KV(pairs [][2]string) string {
	width := 0
	for _, p := range pairs {
		if n := utf8.RuneCountInString(p[0]); n > width {
			width = n
		}
	}
	var b strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&b, "%s  %s\n", pad(p[0], width), p[1])
	}
	return b.String()
}
