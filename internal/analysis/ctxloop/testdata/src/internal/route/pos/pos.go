// Package pos holds clock-wait violations ctxloop must flag: router
// background loops that block on the clock without polling ctx leak
// their goroutines past shutdown.
package pos

import (
	"context"
	"time"
)

// A health poller that sleeps without consulting ctx never exits.
func SleepPoller(ctx context.Context, probe func() bool) {
	for { // want "loop blocks on the clock but never polls ctx"
		time.Sleep(50 * time.Millisecond)
		probe()
	}
}

// A bare ticker receive carries the same obligation.
func TickerPoller(ctx context.Context, t *time.Ticker, probe func() bool) {
	for { // want "loop blocks on the clock but never polls ctx"
		<-t.C
		probe()
	}
}

// Ranging over the ticker channel is still a clock wait.
func RangePoller(ctx context.Context, t *time.Ticker, probe func() bool) {
	for range t.C { // want "loop blocks on the clock but never polls ctx"
		probe()
	}
}

// A hedge dispatch loop that selects on the hedge timer and the
// attempt results but never on ctx.Done(): when the client hangs up,
// the loop keeps waiting on the clock for a hedge it should never
// fire.
func HedgeWithoutCtx(ctx context.Context, hedge *time.Timer, results chan int, launch func()) int {
	for { // want "loop blocks on the clock but never polls ctx"
		select {
		case <-hedge.C:
			launch()
		case r := <-results:
			return r
		}
	}
}
