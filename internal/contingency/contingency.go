// Package contingency implements the paper's proposed future work made
// concrete: "we foresee a future need for contingency planning, where
// specific actions can be applied in SC operation, to adhere to grid
// conditions ... This approach will enable SCs to perform impact analysis
// of contingency planning on their operation" (§5).
//
// A Plan is an ordered escalation ladder: each Level pairs a Trigger
// (a grid condition — price above a threshold, a declared stress event,
// a grid emergency, the site's own load approaching a peak budget) with
// a response Strategy from package dr. Evaluating a plan against a
// facility baseline and a set of grid signals produces the windows each
// level activates in, applies the strategies, and reports the full
// operational and economic impact — the "impact analysis" the paper
// calls for.
package contingency

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/contract"
	"repro/internal/dr"
	"repro/internal/grid"
	"repro/internal/market"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// TriggerKind selects what grid condition arms a level.
type TriggerKind int

// Trigger kinds, in rough order of severity.
const (
	// PriceAbove fires while the real-time price exceeds Threshold.
	PriceAbove TriggerKind = iota
	// GridStress fires during detected regional stress events.
	GridStress
	// EmergencyDeclared fires during declared grid emergencies (the
	// mandatory emergency-DR condition).
	EmergencyDeclared
	// OwnLoadAbove fires while the site's own baseline load exceeds
	// PowerBudget (demand-charge self-protection).
	OwnLoadAbove
)

var triggerNames = map[TriggerKind]string{
	PriceAbove:        "price-above",
	GridStress:        "grid-stress",
	EmergencyDeclared: "emergency-declared",
	OwnLoadAbove:      "own-load-above",
}

// String returns the trigger name.
func (k TriggerKind) String() string {
	if n, ok := triggerNames[k]; ok {
		return n
	}
	return fmt.Sprintf("TriggerKind(%d)", int(k))
}

// Trigger is one armed grid condition.
type Trigger struct {
	Kind TriggerKind
	// PriceThreshold applies to PriceAbove.
	PriceThreshold units.EnergyPrice
	// PowerBudget applies to OwnLoadAbove.
	PowerBudget units.Power
}

// Validate checks the trigger's parameters.
func (t Trigger) Validate() error {
	switch t.Kind {
	case PriceAbove:
		if t.PriceThreshold <= 0 {
			return errors.New("contingency: price trigger needs a positive threshold")
		}
	case OwnLoadAbove:
		if t.PowerBudget <= 0 {
			return errors.New("contingency: own-load trigger needs a positive budget")
		}
	case GridStress, EmergencyDeclared:
		// No parameters.
	default:
		return fmt.Errorf("contingency: unknown trigger kind %d", int(t.Kind))
	}
	return nil
}

// Level is one rung of the escalation ladder.
type Level struct {
	// Name identifies the level ("watch", "curtail", "emergency").
	Name string
	// Trigger arms the level.
	Trigger Trigger
	// Strategy is the response applied while the level is the highest
	// active one.
	Strategy dr.Strategy
}

// Plan is an ordered escalation ladder; later levels outrank earlier
// ones when several trigger at once.
type Plan struct {
	Name   string
	Levels []Level
}

// Validate checks the plan.
func (p *Plan) Validate() error {
	if p == nil || len(p.Levels) == 0 {
		return errors.New("contingency: plan needs at least one level")
	}
	seen := map[string]bool{}
	for i, l := range p.Levels {
		if l.Name == "" {
			return fmt.Errorf("contingency: level %d needs a name", i)
		}
		if seen[l.Name] {
			return fmt.Errorf("contingency: duplicate level %q", l.Name)
		}
		seen[l.Name] = true
		if l.Strategy == nil {
			return fmt.Errorf("contingency: level %q needs a strategy", l.Name)
		}
		if err := l.Trigger.Validate(); err != nil {
			return fmt.Errorf("contingency: level %q: %w", l.Name, err)
		}
	}
	return nil
}

// Signals carries the grid conditions a plan is evaluated against.
type Signals struct {
	// Prices is the real-time price feed (needed by PriceAbove levels).
	Prices *timeseries.PriceSeries
	// Stress are detected regional stress events.
	Stress []grid.StressEvent
	// Emergencies are declared grid emergencies.
	Emergencies []contract.EmergencyEvent
}

// LevelImpact reports one level's contribution.
type LevelImpact struct {
	Level string
	// Activations is the number of contiguous windows the level ran in.
	Activations int
	// ActiveFor is the total activated duration.
	ActiveFor time.Duration
	// Curtailed is the strategy's reported reduction.
	Curtailed units.Energy
	// OpCost is the strategy's own cost.
	OpCost units.Money
}

// Impact is the plan's full impact analysis.
type Impact struct {
	// BaselineBill and PlannedBill compare the billing outcome without
	// and with the plan.
	BaselineBill *contract.Bill
	PlannedBill  *contract.Bill
	// Levels holds per-level contributions in ladder order.
	Levels []LevelImpact
	// TotalOpCost sums the strategies' costs.
	TotalOpCost units.Money
	// NetBenefit = bill savings − operational cost.
	NetBenefit units.Money
	// Load is the facility profile with the plan applied.
	Load *timeseries.PowerSeries
	// EmergencyCompliant reports whether, with the plan applied, the
	// site stayed at or below every declared emergency cap (checked
	// against the contract's obligations).
	EmergencyCompliant bool
}

// BillSavings returns baseline minus planned totals.
func (im *Impact) BillSavings() units.Money {
	return im.BaselineBill.Total - im.PlannedBill.Total
}

// Evaluate runs the plan: it determines, per metering interval, the
// highest triggered level, converts each level's intervals into event
// windows, applies the strategies in ladder order, bills both profiles
// under the contract and checks emergency compliance.
func Evaluate(p *Plan, c *contract.Contract, baseline *timeseries.PowerSeries, sig Signals) (*Impact, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if baseline == nil || baseline.Len() == 0 {
		return nil, errors.New("contingency: baseline required")
	}
	for _, l := range p.Levels {
		if l.Trigger.Kind == PriceAbove && sig.Prices == nil {
			return nil, fmt.Errorf("contingency: level %q needs a price feed in the signals", l.Name)
		}
	}

	// 1. Per-interval highest active level (-1 = none).
	active := make([]int, baseline.Len())
	for i := range active {
		active[i] = -1
		ts := baseline.TimeAt(i)
		for li, l := range p.Levels { // later levels overwrite earlier
			if triggered(l.Trigger, ts, baseline.At(i), sig) {
				active[i] = li
			}
		}
	}

	// 2. Contiguous runs per level → event windows.
	windows := make([][]market.Event, len(p.Levels))
	runStart := -1
	runLevel := -1
	flush := func(endIdx int) {
		if runLevel >= 0 {
			windows[runLevel] = append(windows[runLevel], market.Event{
				Start:    baseline.TimeAt(runStart),
				Duration: time.Duration(endIdx-runStart) * baseline.Interval(),
			})
		}
		runStart, runLevel = -1, -1
	}
	for i, li := range active {
		if li != runLevel {
			flush(i)
			if li >= 0 {
				runStart, runLevel = i, li
			}
		}
	}
	flush(baseline.Len())

	// 3. Apply strategies in ladder order.
	in := contract.BillingInput{Events: sig.Emergencies}
	impact := &Impact{}
	load := baseline
	for li, l := range p.Levels {
		var activeFor time.Duration
		for _, w := range windows[li] {
			activeFor += w.Duration
		}
		lvl := LevelImpact{Level: l.Name, Activations: len(windows[li]), ActiveFor: activeFor}
		if len(windows[li]) > 0 {
			resp, err := l.Strategy.Respond(load, windows[li])
			if err != nil {
				return nil, fmt.Errorf("contingency: level %q: %w", l.Name, err)
			}
			load = resp.Load
			lvl.Curtailed = resp.CurtailedEnergy
			lvl.OpCost = resp.OpCost
			impact.TotalOpCost += resp.OpCost
		}
		impact.Levels = append(impact.Levels, lvl)
	}
	impact.Load = load

	// 4. Bill both profiles through one compiled engine.
	eng, err := contract.NewEngine(c)
	if err != nil {
		return nil, err
	}
	baseBill, err := eng.Bill(baseline, in)
	if err != nil {
		return nil, err
	}
	planBill, err := eng.Bill(load, in)
	if err != nil {
		return nil, err
	}
	impact.BaselineBill = baseBill
	impact.PlannedBill = planBill
	impact.NetBenefit = impact.BillSavings() - impact.TotalOpCost

	// 5. Emergency compliance with the plan applied.
	impact.EmergencyCompliant = compliant(c, load, sig.Emergencies)
	return impact, nil
}

func triggered(t Trigger, ts time.Time, own units.Power, sig Signals) bool {
	switch t.Kind {
	case PriceAbove:
		price, _ := sig.Prices.PriceAt(ts)
		return price > t.PriceThreshold
	case GridStress:
		for _, s := range sig.Stress {
			if !ts.Before(s.Start) && ts.Before(s.Start.Add(s.Duration)) {
				return true
			}
		}
		return false
	case EmergencyDeclared:
		for _, e := range sig.Emergencies {
			if e.Covers(ts) {
				return true
			}
		}
		return false
	case OwnLoadAbove:
		return own > t.PowerBudget
	default:
		return false
	}
}

func compliant(c *contract.Contract, load *timeseries.PowerSeries, emergencies []contract.EmergencyEvent) bool {
	if len(c.Emergencies) == 0 || len(emergencies) == 0 {
		return true
	}
	for i := 0; i < load.Len(); i++ {
		ts := load.TimeAt(i)
		for _, e := range emergencies {
			if !e.Covers(ts) {
				continue
			}
			for _, o := range c.Emergencies {
				if load.At(i) > o.Cap {
					return false
				}
			}
		}
	}
	return true
}
