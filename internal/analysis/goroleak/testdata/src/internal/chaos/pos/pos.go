// Positive fixtures: fire-and-forget goroutines with no lifetime
// bound. Package path is scope-aligned with internal/chaos.
package pos

import (
	"sync"
	"time"
)

// A bare worker loop: nothing can ever stop it.
func daemonLoop(work chan int) {
	go func() { // want "goroutine has no bounded lifetime"
		for w := range work {
			_ = w * 2
		}
	}()
}

// A periodic ticker goroutine with no shutdown signal.
func periodic(interval time.Duration, f func()) {
	go func() { // want "goroutine has no bounded lifetime"
		tk := time.NewTicker(interval)
		defer tk.Stop()
		for range tk.C {
			f()
		}
	}()
}

// Spawning a same-package function whose body has no bound.
func spawnHelper(n int) {
	go leakyHelper(n) // want "goroutine has no bounded lifetime"
}

func leakyHelper(n int) {
	for i := 0; i < n; i++ {
		time.Sleep(time.Millisecond)
	}
}

// A send on a data channel is not a lifetime bound: the receiver may
// be gone and the send blocks forever.
func sendOnly(results chan int) {
	go func() { // want "goroutine has no bounded lifetime"
		results <- compute()
	}()
}

func compute() int { return 42 }

// Receiving from a *data* channel is not the done shape: chan int
// carries work, not shutdown.
func dataRecv(jobs chan int) {
	go func() { // want "goroutine has no bounded lifetime"
		for j := range jobs {
			_ = j
		}
	}()
}

// Add without Done in the body: registration half missing, the Wait
// side would hang, and the goroutine itself shows no bound.
func addNoDone(wg *sync.WaitGroup, f func()) {
	wg.Add(1)
	go func() { // want "goroutine has no bounded lifetime"
		f()
		for {
			time.Sleep(time.Second)
		}
	}()
}
