package exp

import (
	"testing"

	"repro/internal/units"
)

func TestE13SavingsGrowThenSaturate(t *testing.T) {
	points, err := SweepE13([]units.Energy{
		1 * units.MegawattHour, 2 * units.MegawattHour,
		4 * units.MegawattHour, 8 * units.MegawattHour,
		16 * units.MegawattHour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Savings grow with battery size (small tolerance for recharge
	// energy costs) and every size saves something.
	tol := points[len(points)-1].Savings / 50
	for i := 1; i < len(points); i++ {
		if points[i].Savings < points[i-1].Savings-tol {
			t.Errorf("bigger battery must not save less: %v then %v",
				points[i-1].Savings, points[i].Savings)
		}
	}
	for _, p := range points {
		if p.Savings <= 0 {
			t.Errorf("battery %v should save under depth-sized shaving, got %v",
				p.BatteryCapacity, p.Savings)
		}
	}
	// Saturation: beyond the discharge-rate limit (4 MW, reached near
	// 4.4 MWh), extra capacity buys nothing — the two largest sizes
	// save (nearly) the same.
	last := points[len(points)-1].Savings
	prev := points[len(points)-2].Savings
	diff := last - prev
	if diff < 0 {
		diff = -diff
	}
	if diff > last*15/100 {
		t.Errorf("savings should saturate: %v then %v", prev, last)
	}
}

func TestE14ScoreMonotoneInRamp(t *testing.T) {
	points, err := SweepE14([]units.RampRate{20, 100, 500, 2000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Score < points[i-1].Score {
			t.Errorf("faster ramps must not score lower: %v then %v",
				points[i-1].Score, points[i].Score)
		}
		if points[i].Payment < points[i-1].Payment {
			t.Error("payment must follow score")
		}
	}
	// The fast end approaches a perfect score; the slow end is poor.
	if points[len(points)-1].Score < 0.95 {
		t.Errorf("10 MW/min should track nearly perfectly: %v", points[len(points)-1].Score)
	}
	if points[0].Score > 0.8 {
		t.Errorf("20 kW/min should track poorly: %v", points[0].Score)
	}
}

func TestE13E14Exhibits(t *testing.T) {
	for _, id := range []string{"E13", "E14"} {
		e, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if e.Table == nil || len(e.Table.Rows) == 0 {
			t.Errorf("%s should render a table", id)
		}
	}
}
