package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

var t0 = time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)

func mkPower(t *testing.T, interval time.Duration, kw ...float64) *PowerSeries {
	t.Helper()
	samples := make([]units.Power, len(kw))
	for i, v := range kw {
		samples[i] = units.Power(v)
	}
	s, err := NewPower(t0, interval, samples)
	if err != nil {
		t.Fatalf("NewPower: %v", err)
	}
	return s
}

func TestNewPowerRejectsBadInterval(t *testing.T) {
	if _, err := NewPower(t0, 0, nil); err != ErrBadInterval {
		t.Errorf("want ErrBadInterval, got %v", err)
	}
	if _, err := NewPower(t0, -time.Minute, nil); err != ErrBadInterval {
		t.Errorf("want ErrBadInterval, got %v", err)
	}
}

func TestEndAndTimeAt(t *testing.T) {
	s := mkPower(t, time.Hour, 1, 2, 3)
	if got := s.End(); !got.Equal(t0.Add(3 * time.Hour)) {
		t.Errorf("End = %v", got)
	}
	if got := s.TimeAt(2); !got.Equal(t0.Add(2 * time.Hour)) {
		t.Errorf("TimeAt(2) = %v", got)
	}
}

func TestIndexAt(t *testing.T) {
	s := mkPower(t, time.Hour, 1, 2, 3)
	if i, ok := s.IndexAt(t0.Add(90 * time.Minute)); !ok || i != 1 {
		t.Errorf("IndexAt mid = %d,%v", i, ok)
	}
	if _, ok := s.IndexAt(t0.Add(-time.Minute)); ok {
		t.Error("IndexAt before start should be !ok")
	}
	if _, ok := s.IndexAt(t0.Add(5 * time.Hour)); ok {
		t.Error("IndexAt after end should be !ok")
	}
}

func TestEnergyIntegration(t *testing.T) {
	// 4 MW for 2 hours at 15-min sampling = 8 MWh.
	s := ConstantPower(t0, 15*time.Minute, 8, 4*units.Megawatt)
	if got, want := s.Energy().MWh(), 8.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Energy = %v MWh, want %v", got, want)
	}
}

func TestPeakMinMean(t *testing.T) {
	s := mkPower(t, time.Hour, 5, 9, 3, 9, 1)
	peak, at, err := s.Peak()
	if err != nil {
		t.Fatal(err)
	}
	if peak != 9 || !at.Equal(t0.Add(time.Hour)) {
		t.Errorf("Peak = %v at %v; want 9 at first occurrence", peak, at)
	}
	mn, err := s.Min()
	if err != nil || mn != 1 {
		t.Errorf("Min = %v (%v)", mn, err)
	}
	if got := s.Mean(); math.Abs(float64(got)-5.4) > 1e-12 {
		t.Errorf("Mean = %v, want 5.4", got)
	}
}

func TestEmptySeriesErrors(t *testing.T) {
	s := mkPower(t, time.Hour)
	if _, _, err := s.Peak(); err != ErrEmpty {
		t.Errorf("Peak on empty: %v", err)
	}
	if _, err := s.Min(); err != ErrEmpty {
		t.Errorf("Min on empty: %v", err)
	}
	if _, err := s.Percentile(0.5); err != ErrEmpty {
		t.Errorf("Percentile on empty: %v", err)
	}
	if s.Mean() != 0 {
		t.Error("Mean on empty should be 0")
	}
	if s.LoadFactor() != 0 {
		t.Error("LoadFactor on empty should be 0")
	}
}

func TestLoadFactor(t *testing.T) {
	s := mkPower(t, time.Hour, 10, 10, 10, 10)
	if got := s.LoadFactor(); math.Abs(got-1) > 1e-12 {
		t.Errorf("flat load factor = %v, want 1", got)
	}
	s2 := mkPower(t, time.Hour, 10, 0, 0, 0)
	if got := s2.LoadFactor(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("peaky load factor = %v, want 0.25", got)
	}
}

func TestTopN(t *testing.T) {
	s := mkPower(t, time.Hour, 5, 9, 3, 9, 7)
	top := s.TopN(3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Power != 9 || top[1].Power != 9 || top[2].Power != 7 {
		t.Errorf("TopN powers = %v,%v,%v", top[0].Power, top[1].Power, top[2].Power)
	}
	// Ties broken by earlier time first.
	if !top[0].Time.Before(top[1].Time) {
		t.Error("tie should order by time")
	}
	if got := s.TopN(99); len(got) != 5 {
		t.Errorf("TopN over-length = %d", len(got))
	}
	if got := s.TopN(-1); len(got) != 0 {
		t.Errorf("TopN negative = %d", len(got))
	}
}

func TestPercentile(t *testing.T) {
	s := mkPower(t, time.Hour, 1, 2, 3, 4, 5)
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	} {
		got, err := s.Percentile(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(float64(got)-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestWindow(t *testing.T) {
	s := mkPower(t, time.Hour, 0, 1, 2, 3, 4, 5)
	w, err := s.Window(t0.Add(2*time.Hour), t0.Add(4*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 || w.At(0) != 2 || w.At(1) != 3 {
		t.Errorf("window = %v", w.Samples())
	}
	// Clipping at the edges.
	w2, err := s.Window(t0.Add(-time.Hour), t0.Add(100*time.Hour))
	if err != nil || w2.Len() != 6 {
		t.Errorf("clipped window len = %d (%v)", w2.Len(), err)
	}
	// Disjoint window.
	if _, err := s.Window(t0.Add(100*time.Hour), t0.Add(101*time.Hour)); err != ErrWindowOutside {
		t.Errorf("disjoint window: %v", err)
	}
	if _, err := s.Window(t0, t0); err != ErrWindowOutside {
		t.Errorf("empty window: %v", err)
	}
	// Partial-interval start rounds up to next whole interval.
	w3, err := s.Window(t0.Add(90*time.Minute), t0.Add(4*time.Hour))
	if err != nil || w3.Len() != 2 || w3.At(0) != 2 {
		t.Errorf("partial start window = %v (%v)", w3.Samples(), err)
	}
}

func TestResamplePreservesEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]units.Power, 96) // one day at 15 min
	for i := range samples {
		samples[i] = units.Power(rng.Float64() * 10000)
	}
	s := MustNewPower(t0, 15*time.Minute, samples)
	r, err := s.Resample(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 24 {
		t.Fatalf("resampled len = %d", r.Len())
	}
	if math.Abs(float64(s.Energy()-r.Energy())) > 1e-6 {
		t.Errorf("energy changed: %v vs %v", s.Energy(), r.Energy())
	}
}

func TestResampleErrorsAndIdentity(t *testing.T) {
	s := mkPower(t, 15*time.Minute, 1, 2, 3, 4)
	if _, err := s.Resample(20 * time.Minute); err != ErrBadResample {
		t.Errorf("non-multiple: %v", err)
	}
	if _, err := s.Resample(0); err != ErrBadResample {
		t.Errorf("zero: %v", err)
	}
	same, err := s.Resample(15 * time.Minute)
	if err != nil || same != s {
		t.Error("identity resample should return the receiver")
	}
	// Trailing partial group.
	r, err := s.Resample(45 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.At(0) != 2 || r.At(1) != 4 {
		t.Errorf("partial group resample = %v", r.Samples())
	}
}

func TestScaleClampAddSub(t *testing.T) {
	a := mkPower(t, time.Hour, 1, 2, 3)
	b := mkPower(t, time.Hour, 10, 20, 30)
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(2) != 33 {
		t.Errorf("Add = %v", sum.Samples())
	}
	diff, err := b.Sub(a)
	if err != nil {
		t.Fatal(err)
	}
	if diff.At(2) != 27 {
		t.Errorf("Sub = %v", diff.Samples())
	}
	if got := a.Scale(2).At(1); got != 4 {
		t.Errorf("Scale = %v", got)
	}
	if got := b.ClampAbove(15).At(2); got != 15 {
		t.Errorf("ClampAbove = %v", got)
	}
	// Misaligned.
	c := mkPower(t, time.Minute, 1, 2, 3)
	if _, err := a.Add(c); err != ErrMisaligned {
		t.Errorf("misaligned Add: %v", err)
	}
	d := mkPower(t, time.Hour, 1, 2)
	if _, err := a.Sub(d); err != ErrMisaligned {
		t.Errorf("length-mismatched Sub: %v", err)
	}
}

func TestRamps(t *testing.T) {
	s := mkPower(t, time.Minute, 0, 600, 600, 0)
	ramps := s.Ramps()
	if len(ramps) != 3 {
		t.Fatalf("len = %d", len(ramps))
	}
	if ramps[0] != 600 || ramps[1] != 0 || ramps[2] != -600 {
		t.Errorf("ramps = %v", ramps)
	}
	if got := s.MaxRamp(); got != 600 {
		t.Errorf("MaxRamp = %v", got)
	}
	if got := mkPower(t, time.Minute, 5).Ramps(); got != nil {
		t.Errorf("single-sample ramps = %v", got)
	}
}

func TestRollingMax(t *testing.T) {
	s := mkPower(t, time.Hour, 1, 5, 2, 7, 3, 1)
	r := s.RollingMax(2)
	want := []units.Power{1, 5, 5, 7, 7, 3}
	for i, w := range want {
		if r.At(i) != w {
			t.Errorf("RollingMax[%d] = %v, want %v", i, r.At(i), w)
		}
	}
	// w<1 behaves as w=1 (identity).
	id := s.RollingMax(0)
	for i := 0; i < s.Len(); i++ {
		if id.At(i) != s.At(i) {
			t.Errorf("RollingMax(0)[%d] = %v", i, id.At(i))
		}
	}
}

func TestSplitMonths(t *testing.T) {
	// 90 days of hourly data spanning Jan, Feb, Mar 2016.
	s := ConstantPower(t0, time.Hour, 24*91, 1000)
	months := s.SplitMonths()
	if len(months) != 4 { // Jan(31) Feb(29, leap) Mar(31) + 1 hour of Apr? 31+29+31=91 days exactly; so 3 months
		// 2016: Jan 31 + Feb 29 + Mar 31 = 91 days, so exactly 3 months.
		if len(months) != 3 {
			t.Fatalf("months = %d", len(months))
		}
	}
	total := 0
	for _, m := range months {
		total += m.Len()
	}
	if total != s.Len() {
		t.Errorf("month split loses samples: %d vs %d", total, s.Len())
	}
	if months[0].Len() != 31*24 {
		t.Errorf("Jan len = %d", months[0].Len())
	}
	if got := mkPower(t, time.Hour).SplitMonths(); got != nil {
		t.Errorf("empty split = %v", got)
	}
}

func TestStringSummaries(t *testing.T) {
	s := mkPower(t, time.Hour, 1000, 2000)
	if got := s.String(); got == "" {
		t.Error("String should not be empty")
	}
	if got := mkPower(t, time.Hour).String(); got == "" {
		t.Error("empty String should not be empty")
	}
}

func TestSamplesIsCopy(t *testing.T) {
	s := mkPower(t, time.Hour, 1, 2, 3)
	cp := s.Samples()
	cp[0] = 99
	if s.At(0) != 1 {
		t.Error("Samples() must return a copy")
	}
}

func TestPriceSeriesBasics(t *testing.T) {
	p := MustNewPrice(t0, time.Hour, []units.EnergyPrice{0.05, 0.10, 0.20})
	if p.Len() != 3 || p.Interval() != time.Hour || !p.Start().Equal(t0) {
		t.Error("basic accessors wrong")
	}
	if !p.End().Equal(t0.Add(3 * time.Hour)) {
		t.Errorf("End = %v", p.End())
	}
	if p.At(1) != 0.10 {
		t.Errorf("At(1) = %v", p.At(1))
	}
	if !p.TimeAt(2).Equal(t0.Add(2 * time.Hour)) {
		t.Errorf("TimeAt(2) = %v", p.TimeAt(2))
	}
	if got := p.Mean(); math.Abs(float64(got)-0.35/3) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if _, err := NewPrice(t0, 0, nil); err != ErrBadInterval {
		t.Errorf("bad interval: %v", err)
	}
}

func TestPriceAtClamping(t *testing.T) {
	p := MustNewPrice(t0, time.Hour, []units.EnergyPrice{0.05, 0.10, 0.20})
	if got, ok := p.PriceAt(t0.Add(30 * time.Minute)); !ok || got != 0.05 {
		t.Errorf("inside = %v,%v", got, ok)
	}
	if got, ok := p.PriceAt(t0.Add(-time.Hour)); ok || got != 0.05 {
		t.Errorf("before = %v,%v", got, ok)
	}
	if got, ok := p.PriceAt(t0.Add(10 * time.Hour)); ok || got != 0.20 {
		t.Errorf("after = %v,%v", got, ok)
	}
	empty := MustNewPrice(t0, time.Hour, nil)
	if _, ok := empty.PriceAt(t0); ok {
		t.Error("empty PriceAt should be !ok")
	}
	if empty.Mean() != 0 {
		t.Error("empty Mean should be 0")
	}
}

func TestCostOf(t *testing.T) {
	// 1 MW for 2 hours: first hour at 0.10, second at 0.30.
	load := ConstantPower(t0, time.Hour, 2, 1000)
	price := MustNewPrice(t0, time.Hour, []units.EnergyPrice{0.10, 0.30})
	got := price.CostOf(load)
	want := units.CurrencyUnits(100 + 300)
	if got != want {
		t.Errorf("CostOf = %v, want %v", got, want)
	}
}

func TestCostOfMisalignedClamps(t *testing.T) {
	// Load extends past price feed: trailing hours clamp to last price.
	load := ConstantPower(t0, time.Hour, 4, 1000)
	price := MustNewPrice(t0, time.Hour, []units.EnergyPrice{0.10})
	got := price.CostOf(load)
	want := units.CurrencyUnits(400)
	if got != want {
		t.Errorf("CostOf clamped = %v, want %v", got, want)
	}
}

func TestConstantConstructors(t *testing.T) {
	s := ConstantPower(t0, time.Hour, 5, 42)
	for i := 0; i < 5; i++ {
		if s.At(i) != 42 {
			t.Fatalf("sample %d = %v", i, s.At(i))
		}
	}
	p := ConstantPrice(t0, time.Hour, 4, 0.07)
	for i := 0; i < 4; i++ {
		if p.At(i) != 0.07 {
			t.Fatalf("price %d = %v", i, p.At(i))
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewPower should panic on bad interval")
		}
	}()
	MustNewPower(t0, 0, nil)
}

func TestMustNewPricePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewPrice should panic on bad interval")
		}
	}()
	MustNewPrice(t0, -time.Second, nil)
}

// Property: integration is linear — Energy(a+b) == Energy(a)+Energy(b).
func TestQuickEnergyLinear(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		a := make([]units.Power, len(raw))
		b := make([]units.Power, len(raw))
		for i, v := range raw {
			a[i] = units.Power(v % 10000)
			b[i] = units.Power((v / 3) % 10000)
		}
		sa := MustNewPower(t0, 15*time.Minute, a)
		sb := MustNewPower(t0, 15*time.Minute, b)
		sum, err := sa.Add(sb)
		if err != nil {
			return false
		}
		return math.Abs(float64(sum.Energy()-(sa.Energy()+sb.Energy()))) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Peak of a clamped series never exceeds the clamp limit, and
// energy never increases under clamping.
func TestQuickClampInvariants(t *testing.T) {
	f := func(raw []uint16, limit uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		s := MustNewPower(t0, 15*time.Minute, samples)
		c := s.ClampAbove(units.Power(limit))
		peak, _, err := c.Peak()
		if err != nil {
			return false
		}
		return peak <= units.Power(limit) && c.Energy() <= s.Energy()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: resampling to any divisor multiple preserves energy when the
// length divides evenly.
func TestQuickResampleEnergy(t *testing.T) {
	f := func(raw []uint16) bool {
		n := (len(raw) / 4) * 4
		if n == 0 {
			return true
		}
		samples := make([]units.Power, n)
		for i := 0; i < n; i++ {
			samples[i] = units.Power(raw[i])
		}
		s := MustNewPower(t0, 15*time.Minute, samples)
		r, err := s.Resample(time.Hour)
		if err != nil {
			return false
		}
		return math.Abs(float64(s.Energy()-r.Energy())) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TopN(1) equals Peak.
func TestQuickTopNPeak(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		s := MustNewPower(t0, time.Hour, samples)
		peak, at, err := s.Peak()
		if err != nil {
			return false
		}
		top := s.TopN(1)
		return len(top) == 1 && top[0].Power == peak && top[0].Time.Equal(at)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RollingMax is pointwise ≥ the original and monotone in window.
func TestQuickRollingMaxDominates(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		s := MustNewPower(t0, time.Hour, samples)
		r2 := s.RollingMax(2)
		r4 := s.RollingMax(4)
		for i := 0; i < s.Len(); i++ {
			if r2.At(i) < s.At(i) || r4.At(i) < r2.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEnergyIntegration(b *testing.B) {
	s := ConstantPower(t0, 15*time.Minute, 35040, 12*units.Megawatt) // one year
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Energy()
	}
}

func BenchmarkTopN(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]units.Power, 35040)
	for i := range samples {
		samples[i] = units.Power(rng.Float64() * 20000)
	}
	s := MustNewPower(t0, 15*time.Minute, samples)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.TopN(3)
	}
}
