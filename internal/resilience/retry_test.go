package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDeterministicPerSeed(t *testing.T) {
	r := Retry{Base: 50 * time.Millisecond, Cap: 5 * time.Second, Seed: 42}
	other := Retry{Base: 50 * time.Millisecond, Cap: 5 * time.Second, Seed: 43}
	var differs bool
	for attempt := 0; attempt < 10; attempt++ {
		a, b := r.Backoff(attempt), r.Backoff(attempt)
		if a != b {
			t.Fatalf("attempt %d: same seed gave %v then %v", attempt, a, b)
		}
		if attempt > 0 && other.Backoff(attempt) != a {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds never produced a different schedule")
	}
}

func TestBackoffEnvelopeGrows(t *testing.T) {
	r := Retry{Base: 10 * time.Millisecond, Cap: time.Second, Multiplier: 2, Seed: 7}
	// The envelope doubles per attempt; the jittered value must respect
	// [Base, min(Cap, Base×2^attempt)].
	for attempt := 0; attempt < 12; attempt++ {
		d := r.Backoff(attempt)
		envelope := 10 * time.Millisecond << attempt
		if envelope > time.Second || envelope <= 0 {
			envelope = time.Second
		}
		if d < 10*time.Millisecond || d > envelope {
			t.Errorf("attempt %d: backoff %v outside [10ms, %v]", attempt, d, envelope)
		}
	}
}

func TestDoStopsOnSuccess(t *testing.T) {
	calls := 0
	r := Retry{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	var slept []time.Duration
	r := Retry{MaxAttempts: 3, Seed: 1,
		Sleep: func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil }}
	err := r.Do(context.Background(), func(context.Context) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want wrapped %v", err, boom)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls=%d sleeps=%d, want 3 calls with 2 sleeps between", calls, len(slept))
	}
	// The recorded sleeps are exactly the deterministic schedule.
	for i, d := range slept {
		if want := r.Backoff(i); d != want {
			t.Errorf("sleep %d = %v, want Backoff(%d) = %v", i, d, i, want)
		}
	}
}

func TestDoStopsWhenContextDies(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	r := Retry{MaxAttempts: 10, Sleep: func(ctx context.Context, _ time.Duration) error {
		cancel()
		return ctx.Err()
	}}
	err := r.Do(ctx, func(context.Context) error { calls++; return errors.New("down") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled in the chain", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times after the context died, want 1", calls)
	}
}

func TestSleepCtxHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sleepCtx(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("sleepCtx on dead context = %v", err)
	}
	if err := sleepCtx(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("sleepCtx = %v", err)
	}
}

// FuzzBackoff pins the jitter window invariant for arbitrary policies:
// every delay stays within [Base, Cap], and the schedule is a pure
// function of (seed, attempt).
func FuzzBackoff(f *testing.F) {
	f.Add(int64(1), int64(100), int64(10000), 2.0, 3)
	f.Add(int64(-9), int64(1), int64(1), 1.5, 0)
	f.Add(int64(7), int64(50000), int64(1000), 10.0, 40)
	f.Fuzz(func(t *testing.T, seed, baseMS, capMS int64, mult float64, attempt int) {
		if baseMS < 0 || capMS < 0 || baseMS > 1<<20 || capMS > 1<<20 || attempt < 0 || attempt > 1000 {
			t.Skip()
		}
		r := Retry{
			Base:       time.Duration(baseMS) * time.Millisecond,
			Cap:        time.Duration(capMS) * time.Millisecond,
			Multiplier: mult,
			Seed:       seed,
		}
		eff := r.withDefaults()
		d := r.Backoff(attempt)
		if d < eff.Base || d > eff.Cap {
			t.Fatalf("Backoff(%d) = %v outside [%v, %v] (policy %+v)", attempt, d, eff.Base, eff.Cap, eff)
		}
		if again := r.Backoff(attempt); again != d {
			t.Fatalf("Backoff(%d) not reproducible: %v then %v", attempt, d, again)
		}
	})
}
