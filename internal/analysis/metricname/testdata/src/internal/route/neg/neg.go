// Package neg holds compliant router exposition shapes that must stay
// silent: the scroute_ namespace with conventional suffixes, histogram
// series via WriteProm.
package neg

import (
	"fmt"
	"io"
)

type snapshot struct{}

func (snapshot) WriteProm(w io.Writer, name, labels string) {}

func emit(w io.Writer, s snapshot) {
	fmt.Fprintf(w, "# TYPE scroute_requests_total counter\n")
	fmt.Fprintf(w, "scroute_requests_total{path=%q,code=%q} %d\n", "/v1/bill", "200", 7)
	fmt.Fprintf(w, "# TYPE scroute_backend_healthy gauge\n")
	fmt.Fprintf(w, "scroute_backend_healthy{backend=%q} 1\n", "http://127.0.0.1:9101")
	fmt.Fprintf(w, "# TYPE scroute_upstream_seconds histogram\n")
	s.WriteProm(w, "scroute_upstream_seconds", "")
	// The brownout families: hedge/budget/deadline counters end in
	// _total, the live token level is a plain gauge.
	fmt.Fprintf(w, "# TYPE scroute_hedges_total counter\n")
	fmt.Fprintf(w, "scroute_hedges_total %d\n", 4)
	fmt.Fprintf(w, "# TYPE scroute_hedge_wins_total counter\n")
	fmt.Fprintf(w, "# TYPE scroute_retry_budget_exhausted_total counter\n")
	fmt.Fprintf(w, "# TYPE scroute_try_timeouts_total counter\n")
	fmt.Fprintf(w, "# TYPE scroute_deadline_expired_total counter\n")
	fmt.Fprintf(w, "# TYPE scroute_retry_budget_tokens gauge\n")
	fmt.Fprintf(w, "scroute_retry_budget_tokens %g\n", 10.0)
	// Non-fleet names are someone else's namespace.
	fmt.Fprintf(w, "# TYPE go_goroutines gauge\n")
}
