package exp

import (
	"strings"
	"testing"
)

func TestE11PlanPaysAndRestoresCompliance(t *testing.T) {
	res, err := RunE11()
	if err != nil {
		t.Fatal(err)
	}
	im := res.Impact
	// The plan must turn a non-compliant baseline into a compliant one.
	if res.BaselineCompliant {
		t.Error("scenario should start non-compliant (emergency cap below load)")
	}
	if !im.EmergencyCompliant {
		t.Error("plan should restore emergency compliance")
	}
	// All three levels see action.
	if len(im.Levels) != 3 {
		t.Fatalf("levels = %d", len(im.Levels))
	}
	for _, l := range im.Levels {
		if l.Activations == 0 {
			t.Errorf("level %s never activated", l.Level)
		}
	}
	// Penalty avoidance plus price shedding should net positive.
	if im.NetBenefit <= 0 {
		t.Errorf("net benefit = %v, want positive", im.NetBenefit)
	}
	if im.BillSavings() <= im.TotalOpCost {
		t.Error("savings must exceed operational cost in this scenario")
	}
}

func TestE11Exhibit(t *testing.T) {
	e, err := Run("E11")
	if err != nil {
		t.Fatal(err)
	}
	out := e.Render()
	for _, want := range []string{"price-watch", "stress-shed", "emergency-cap", "compliance"} {
		if !strings.Contains(out, want) {
			t.Errorf("E11 missing %q", want)
		}
	}
}

func TestE12Crossover(t *testing.T) {
	points, err := SweepE12([]float64{0.6, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	byCap := map[float64]E12Point{}
	for _, p := range points {
		byCap[p.CapFractionOfPeak] = p
	}
	moderate := byCap[0.6]
	tight := byCap[0.3]
	// Moderate cap: blocking at least as good (DVFS stretches runtimes
	// that would have fit anyway).
	if moderate.BlockingMakespan > moderate.DVFSMakespan {
		t.Errorf("moderate cap: blocking %v should not lose to DVFS %v",
			moderate.BlockingMakespan, moderate.DVFSMakespan)
	}
	// Tight cap: DVFS wins by keeping the machine busy.
	if tight.DVFSMakespan >= tight.BlockingMakespan {
		t.Errorf("tight cap: DVFS %v should beat blocking %v",
			tight.DVFSMakespan, tight.BlockingMakespan)
	}
	// Tightening the cap never shortens the blocking makespan.
	if tight.BlockingMakespan < moderate.BlockingMakespan {
		t.Error("tighter caps cannot drain faster under blocking")
	}
}

func TestE12Exhibit(t *testing.T) {
	e, err := Run("E12")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Render(), "crossover") {
		t.Error("E12 should describe the crossover")
	}
}

func TestRegistryIncludesExtensions(t *testing.T) {
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, want := range []string{"E11", "E12", "E13", "E14"} {
		if !have[want] {
			t.Errorf("extension experiment %s missing: %v", want, IDs())
		}
	}
}
