package unitchecker_test

// End-to-end protocol test: build the real cmd/scvet binary and drive
// it through the real `go vet -vettool` machinery against synthetic
// modules in a temp dir — one with a violation (vet must fail and name
// it), one clean (vet must exit 0). This is the test that would catch
// a drift between unitchecker and cmd/go's vettool contract (-V=full
// version-line format, -flags JSON, per-unit .cfg runs, exit codes).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

func goCmd(t *testing.T, dir string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GO111MODULE=on", "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestGoVetProtocol(t *testing.T) {
	tmp := t.TempDir()
	scvet := filepath.Join(tmp, "scvet")

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if out, err := goCmd(t, wd, "build", "-o", scvet, "repro/cmd/scvet"); err != nil {
		t.Fatalf("building scvet: %v\n%s", err, out)
	}

	t.Run("dirty module fails with a named diagnostic", func(t *testing.T) {
		dir := filepath.Join(tmp, "dirty")
		writeTree(t, dir, map[string]string{
			"go.mod": "module example.com/dirty\n\ngo 1.22\n",
			"internal/billing/clock.go": `package billing

import "time"

// Stamp reads the wall clock inside a deterministic-billing package
// path: scvet must fail the build.
func Stamp() time.Time { return time.Now() }
`,
		})
		out, err := goCmd(t, dir, "vet", "-vettool="+scvet, "./...")
		if err == nil {
			t.Fatalf("go vet succeeded on a module with a violation; output:\n%s", out)
		}
		if !strings.Contains(out, "nondeterm") || !strings.Contains(out, "time.Now") {
			t.Errorf("diagnostic must name the analyzer and the offense; got:\n%s", out)
		}
		if !strings.Contains(out, "clock.go:7") {
			t.Errorf("diagnostic must carry a file:line position; got:\n%s", out)
		}
	})

	t.Run("suppressed and clean module passes", func(t *testing.T) {
		dir := filepath.Join(tmp, "clean")
		writeTree(t, dir, map[string]string{
			"go.mod": "module example.com/clean\n\ngo 1.22\n",
			"internal/billing/clock.go": `package billing

import "time"

type Config struct{ Now func() time.Time }

// Injected-clock wiring: a reference to time.Now is the blessed idiom.
func (c Config) withDefaults() Config {
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

//lint:scvet-ignore nondeterm exercised by the protocol test: reasoned ignores suppress
func Sentinel() time.Time { return time.Now() }
`,
			"cmd/tool/main.go": `package main

import "fmt"

func main() { fmt.Println("ok") }
`,
		})
		out, err := goCmd(t, dir, "vet", "-vettool="+scvet, "./...")
		if err != nil {
			t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
		}
	})
}
