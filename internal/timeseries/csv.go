package timeseries

// CSV interchange for load profiles: the format utility meters and
// building-management exports commonly use — one header line, then
// RFC 3339 timestamp and kW value per row. Only the first row's
// timestamp and the first-to-second spacing define start and interval;
// every subsequent row must land on the grid.

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/units"
)

// WritePowerCSV writes the series as "timestamp,kw" rows with a header.
func WritePowerCSV(w io.Writer, s *PowerSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "kw"}); err != nil {
		return err
	}
	for i := 0; i < s.Len(); i++ {
		rec := []string{
			s.TimeAt(i).Format(time.RFC3339),
			strconv.FormatFloat(float64(s.At(i)), 'f', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// csvRow is one data row plus the file line it came from, so errors can
// point at the exact spot in the export.
type csvRow struct {
	line int
	ts   string
	kw   string
}

// ReadPowerCSV parses a "timestamp,kw" CSV into a series. A header row
// is optional: if the first row's timestamp column does not parse as
// RFC 3339 it is taken as a header and skipped. Rows must be equally
// spaced and in order; errors name the offending line and field.
func ReadPowerCSV(r io.Reader) (*PowerSeries, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	var rows []csvRow
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// csv.ParseError already carries the line number.
			return nil, fmt.Errorf("timeseries: bad CSV: %w", err)
		}
		line, _ := cr.FieldPos(0)
		rows = append(rows, csvRow{line: line, ts: rec[0], kw: rec[1]})
	}
	if len(rows) > 0 {
		if _, err := time.Parse(time.RFC3339, rows[0].ts); err != nil {
			rows = rows[1:] // header row
		}
	}
	if len(rows) < 2 { // at least two samples to fix the interval
		return nil, fmt.Errorf("timeseries: CSV needs at least two data rows to fix the sample interval")
	}
	parse := func(row csvRow) (time.Time, units.Power, error) {
		ts, err := time.Parse(time.RFC3339, row.ts)
		if err != nil {
			return time.Time{}, 0, fmt.Errorf("timeseries: line %d: timestamp field %q is not RFC 3339 (e.g. 2016-03-01T00:00:00Z)",
				row.line, row.ts)
		}
		v, err := strconv.ParseFloat(row.kw, 64)
		if err != nil {
			return time.Time{}, 0, fmt.Errorf("timeseries: line %d: kw field %q is not a number", row.line, row.kw)
		}
		return ts, units.Power(v), nil
	}
	start, first, err := parse(rows[0])
	if err != nil {
		return nil, err
	}
	second, _, err := parse(rows[1])
	if err != nil {
		return nil, err
	}
	interval := second.Sub(start)
	if interval <= 0 {
		return nil, fmt.Errorf("timeseries: line %d: timestamp %s is not after line %d's %s (rows must be in order)",
			rows[1].line, second.Format(time.RFC3339), rows[0].line, start.Format(time.RFC3339))
	}
	samples := make([]units.Power, 0, len(rows))
	samples = append(samples, first)
	for i := 1; i < len(rows); i++ {
		ts, v, err := parse(rows[i])
		if err != nil {
			return nil, err
		}
		want := start.Add(time.Duration(i) * interval)
		if !ts.Equal(want) {
			return nil, fmt.Errorf("timeseries: line %d: timestamp %s breaks the %s grid (want %s)",
				rows[i].line, ts.Format(time.RFC3339), interval, want.Format(time.RFC3339))
		}
		samples = append(samples, v)
	}
	return NewPower(start, interval, samples)
}
