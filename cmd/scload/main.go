// Command scload is a seeded open-loop load generator for scserved and
// scroute. It fires requests on a fixed arrival schedule (so an
// overloaded server sheds instead of silently throttling the
// generator), draws the endpoint/spec/profile mix from a seeded PRNG
// (so runs replay identically against different fleet shapes), and
// reports per-endpoint outcome counts and latency quantiles. See
// internal/loadgen.
//
// Usage:
//
//	scload -target http://127.0.0.1:9090 -rps 200 -duration 30s
//	scload -target ... -specs 96 -profiles year-in-life -batch-fraction 0.1
//	scload -target ... -ndjson run.ndjson -assert-zero-5xx -assert-min-shed 0.05
//
// The -assert-* flags turn the run into an acceptance check: scload
// exits 1 when an assertion fails, so make targets and CI can gate on
// shed-not-collapse behavior directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	target := flag.String("target", "", "base URL to load: a scroute front or scserved backend (required)")
	rps := flag.Float64("rps", 50, "open-loop arrival rate, requests per second")
	duration := flag.Duration("duration", 10*time.Second, "length of the arrival schedule")
	seed := flag.Int64("seed", 1, "PRNG seed for the endpoint/spec/profile sequence")
	specs := flag.Int("specs", 16, "distinct synthetic contract specs to cycle through")
	profiles := flag.String("profiles", "quickstart-month", "comma-separated named load profiles drawn uniformly")
	batchFraction := flag.Float64("batch-fraction", 0, "fraction of requests sent to /v1/bill/batch")
	batchItems := flag.Int("batch-items", 8, "loads per batch request")
	maxInflight := flag.Int("max-inflight", 512, "concurrent request cap; arrivals past it are skipped")
	ndjson := flag.String("ndjson", "", "write one JSON line per request to this file")
	var events eventFlags
	flag.Var(&events, "event", "scheduled control action offset|url|body (repeatable; empty body = GET)")
	assertZero5xx := flag.Bool("assert-zero-5xx", false, "exit 1 if any request got a 5xx or transport error")
	assertMinShed := flag.Float64("assert-min-shed", -1, "exit 1 if the 429 fraction is below this (e.g. 0.05)")
	assertP99 := flag.Duration("assert-p99", 0, "exit 1 if admitted p99 exceeds this (0 = no bound)")
	assertErrRateAfter := flag.String("assert-error-rate-after", "", "offset:rate — exit 1 if the 5xx+transport fraction of requests arriving after offset exceeds rate (e.g. 7s:0.01)")
	assertZero5xxAfter := flag.Duration("assert-zero-5xx-after", 0, "exit 1 on any 5xx or transport error among requests arriving after this offset")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "scload: -target is required")
		os.Exit(2)
	}

	cfg := loadgen.Config{
		Target:        strings.TrimSuffix(*target, "/"),
		RPS:           *rps,
		Duration:      *duration,
		Seed:          *seed,
		Specs:         *specs,
		Profiles:      splitList(*profiles),
		BatchFraction: *batchFraction,
		BatchItems:    *batchItems,
		MaxInflight:   *maxInflight,
		Events:        events.parsed,
	}
	if *ndjson != "" {
		f, err := os.Create(*ndjson)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scload:", err)
			os.Exit(2)
		}
		defer f.Close()
		cfg.NDJSON = f
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil && rep == nil {
		fmt.Fprintln(os.Stderr, "scload:", err)
		os.Exit(2)
	}
	rep.WriteSummary(os.Stdout)

	failed := false
	_, _, _, serverErr, _, transport := rep.Totals()
	if *assertZero5xx && (serverErr > 0 || transport > 0) {
		fmt.Fprintf(os.Stderr, "scload: ASSERT FAILED: %d 5xx and %d transport errors (want 0)\n", serverErr, transport)
		failed = true
	}
	if *assertMinShed >= 0 {
		if got := rep.ShedFraction(); got < *assertMinShed {
			fmt.Fprintf(os.Stderr, "scload: ASSERT FAILED: shed fraction %.3f below %.3f\n", got, *assertMinShed)
			failed = true
		}
	}
	if *assertP99 > 0 {
		if got := time.Duration(rep.AdmittedP99() * float64(time.Second)); got > *assertP99 {
			fmt.Fprintf(os.Stderr, "scload: ASSERT FAILED: admitted p99 %s above %s\n", got.Round(time.Millisecond), *assertP99)
			failed = true
		}
	}
	if *assertErrRateAfter != "" {
		cutoff, bound, err := parseErrRateAfter(*assertErrRateAfter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scload:", err)
			os.Exit(2)
		}
		if got := rep.ErrorRateAfter(cutoff); got > bound {
			f, n := rep.FailuresAfter(cutoff)
			fmt.Fprintf(os.Stderr, "scload: ASSERT FAILED: error rate after %s is %.4f (%d/%d), above %.4f\n",
				cutoff, got, f, n, bound)
			failed = true
		}
	}
	if *assertZero5xxAfter > 0 {
		if f, n := rep.FailuresAfter(*assertZero5xxAfter); f > 0 {
			fmt.Fprintf(os.Stderr, "scload: ASSERT FAILED: %d of %d requests after %s got a 5xx or transport error (want 0)\n",
				f, n, *assertZero5xxAfter)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// eventFlags parses repeated -event "offset|url|body" specs.
type eventFlags struct {
	raw    []string
	parsed []loadgen.ScheduledEvent
}

func (e *eventFlags) String() string { return strings.Join(e.raw, " ") }

func (e *eventFlags) Set(v string) error {
	parts := strings.SplitN(v, "|", 3)
	if len(parts) < 2 {
		return fmt.Errorf("bad -event %q (want offset|url|body)", v)
	}
	at, err := time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil {
		return fmt.Errorf("bad -event offset %q: %v", parts[0], err)
	}
	ev := loadgen.ScheduledEvent{At: at, URL: strings.TrimSpace(parts[1])}
	if len(parts) == 3 {
		ev.Body = parts[2]
	}
	e.raw = append(e.raw, v)
	e.parsed = append(e.parsed, ev)
	return nil
}

// parseErrRateAfter splits "7s:0.01" into cutoff and bound.
func parseErrRateAfter(s string) (time.Duration, float64, error) {
	offset, rate, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -assert-error-rate-after %q (want offset:rate)", s)
	}
	cutoff, err := time.ParseDuration(strings.TrimSpace(offset))
	if err != nil {
		return 0, 0, fmt.Errorf("bad -assert-error-rate-after offset %q: %v", offset, err)
	}
	var bound float64
	if _, err := fmt.Sscanf(strings.TrimSpace(rate), "%g", &bound); err != nil {
		return 0, 0, fmt.Errorf("bad -assert-error-rate-after rate %q: %v", rate, err)
	}
	return cutoff, bound, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
