// Package registry is the single source of truth for which analyzers
// make up the scvet suite. cmd/scvet wires unitchecker.Main through
// All, and the parity test in this package fails `make check` when a
// registered analyzer is missing its analysistest fixture package —
// an analyzer without fixtures is an analyzer whose rule has never
// been demonstrated to fire.
package registry

import (
	"repro/internal/analysis"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/goroleak"
	"repro/internal/analysis/lockheld"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/moneyfloat"
	"repro/internal/analysis/nondeterm"
	"repro/internal/analysis/respclose"
	"repro/internal/analysis/timerstop"
)

// All returns the full scvet suite in a stable order: the billing
// invariants first (PR 4), then the concurrency and resource-lifecycle
// analyzers (PR 10).
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		moneyfloat.Analyzer,
		nondeterm.Analyzer,
		ctxloop.Analyzer,
		lockheld.Analyzer,
		metricname.Analyzer,
		goroleak.Analyzer,
		timerstop.Analyzer,
		respclose.Analyzer,
		ctxflow.Analyzer,
	}
}
