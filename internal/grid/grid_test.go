package grid

import (
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.January, 4, 0, 0, 0, 0, time.UTC) // a Monday

func TestSystemLoadValidation(t *testing.T) {
	bad := []RegionConfig{
		{},
		{Span: time.Hour, Interval: 0, BaseLoad: 1},
		{Span: time.Hour, Interval: time.Hour, BaseLoad: 0},
		{Span: time.Minute, Interval: time.Hour, BaseLoad: 1},
	}
	for i, cfg := range bad {
		if _, err := SystemLoad(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSystemLoadShape(t *testing.T) {
	cfg := DefaultRegion(t0)
	cfg.NoiseSigma = 0 // deterministic shape checks
	s, err := SystemLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 30*96 {
		t.Fatalf("len = %d", s.Len())
	}
	// Mean near the base load.
	if math.Abs(float64(s.Mean()-cfg.BaseLoad)) > float64(cfg.BaseLoad)*0.1 {
		t.Errorf("mean = %v, want ≈%v", s.Mean(), cfg.BaseLoad)
	}
	// Evening (18:00 Monday) above early morning (04:00 Monday).
	evening, _ := s.IndexAt(t0.Add(18 * time.Hour))
	morning, _ := s.IndexAt(t0.Add(4 * time.Hour))
	if s.At(evening) <= s.At(morning) {
		t.Errorf("diurnal shape: evening %v should exceed morning %v", s.At(evening), s.At(morning))
	}
	// Weekend (Saturday noon) below weekday (Monday noon).
	satNoon, _ := s.IndexAt(t0.Add(5*24*time.Hour + 12*time.Hour))
	monNoon, _ := s.IndexAt(t0.Add(12 * time.Hour))
	if s.At(satNoon) >= s.At(monNoon) {
		t.Errorf("weekend dip: sat %v should be below mon %v", s.At(satNoon), s.At(monNoon))
	}
}

func TestSystemLoadDeterministic(t *testing.T) {
	cfg := DefaultRegion(t0)
	a, _ := SystemLoad(cfg)
	b, _ := SystemLoad(cfg)
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatal("equal seeds must reproduce")
		}
	}
}

func TestSolar(t *testing.T) {
	template := timeseries.ConstantPower(t0, 15*time.Minute, 96, 0)
	s, err := Solar(template, SolarConfig{Capacity: 1000, CloudNoise: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Midnight zero, noon at capacity.
	if s.At(0) != 0 {
		t.Errorf("midnight output = %v", s.At(0))
	}
	noon, _ := s.IndexAt(t0.Add(12 * time.Hour))
	if math.Abs(float64(s.At(noon))-1000) > 10 {
		t.Errorf("noon output = %v, want ≈1000", s.At(noon))
	}
	// Cloud noise only reduces output.
	cloudy, err := Solar(template, SolarConfig{Capacity: 1000, CloudNoise: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		if cloudy.At(i) > s.At(i)+1e-9 {
			t.Fatalf("clouds must not increase output at %d", i)
		}
	}
}

func TestSolarValidation(t *testing.T) {
	template := timeseries.ConstantPower(t0, time.Hour, 24, 0)
	if _, err := Solar(nil, SolarConfig{}); err == nil {
		t.Error("nil template should fail")
	}
	if _, err := Solar(template, SolarConfig{Capacity: -1}); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := Solar(template, SolarConfig{CloudNoise: -1}); err == nil {
		t.Error("negative noise should fail")
	}
}

func TestWind(t *testing.T) {
	template := timeseries.ConstantPower(t0, 15*time.Minute, 960, 0)
	w, err := Wind(template, WindConfig{
		Capacity: 2000, MeanCF: 0.35, Persistence: 0.95, Sigma: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Output bounded by nameplate and non-negative.
	for i := 0; i < w.Len(); i++ {
		if w.At(i) < 0 || w.At(i) > 2000 {
			t.Fatalf("wind output %v out of [0, capacity]", w.At(i))
		}
	}
	// Long-run mean near MeanCF × capacity (loose bound).
	mean := float64(w.Mean())
	if mean < 0.2*2000 || mean > 0.5*2000 {
		t.Errorf("wind mean = %v, want ≈700", mean)
	}
}

func TestWindValidation(t *testing.T) {
	template := timeseries.ConstantPower(t0, time.Hour, 24, 0)
	bad := []WindConfig{
		{Capacity: -1, MeanCF: 0.3, Persistence: 0.9},
		{Capacity: 1, MeanCF: 1.5, Persistence: 0.9},
		{Capacity: 1, MeanCF: 0.3, Persistence: 0},
		{Capacity: 1, MeanCF: 0.3, Persistence: 1},
	}
	for i, cfg := range bad {
		if _, err := Wind(template, cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := Wind(nil, WindConfig{Capacity: 1, MeanCF: 0.3, Persistence: 0.9}); err == nil {
		t.Error("nil template should fail")
	}
}

func TestNetLoad(t *testing.T) {
	demand := timeseries.ConstantPower(t0, time.Hour, 4, 1000)
	re := timeseries.MustNewPower(t0, time.Hour, []units.Power{200, 1200, 0, 500})
	net, err := NetLoad(demand, re)
	if err != nil {
		t.Fatal(err)
	}
	want := []units.Power{800, 0, 1000, 500} // clamped at zero in hour 2
	for i, w := range want {
		if net.At(i) != w {
			t.Errorf("net[%d] = %v, want %v", i, net.At(i), w)
		}
	}
	// Misaligned renewables error.
	short := timeseries.ConstantPower(t0, time.Hour, 3, 100)
	if _, err := NetLoad(demand, short); err == nil {
		t.Error("misaligned should fail")
	}
}

func TestDetectStress(t *testing.T) {
	net := timeseries.MustNewPower(t0, 15*time.Minute, []units.Power{
		900, 1100, 1300, 950, 1050, 900,
	})
	events, err := DetectStress(net, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	e := events[0]
	if e.Duration != 30*time.Minute || e.PeakNetLoad != 1300 {
		t.Errorf("event = %+v", e)
	}
	// Shortfall: (100+300) kW × 0.25 h = 100 kWh.
	if math.Abs(e.Shortfall.KWh()-100) > 1e-9 {
		t.Errorf("shortfall = %v", e.Shortfall)
	}
	if _, err := DetectStress(net, 0); err == nil {
		t.Error("zero threshold should fail")
	}
	quiet, err := DetectStress(net, 5000)
	if err != nil || len(quiet) != 0 {
		t.Error("no stress expected above all samples")
	}
}

func TestPeakReduction(t *testing.T) {
	before := timeseries.MustNewPower(t0, time.Hour, []units.Power{900, 1000, 950})
	after := timeseries.MustNewPower(t0, time.Hour, []units.Power{900, 934, 900})
	abs, rel, err := PeakReduction(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if abs != 66 {
		t.Errorf("abs = %v", abs)
	}
	if math.Abs(rel-0.066) > 1e-9 {
		t.Errorf("rel = %v, want 0.066", rel)
	}
	empty := timeseries.MustNewPower(t0, time.Hour, nil)
	if _, _, err := PeakReduction(empty, after); err == nil {
		t.Error("empty before should fail")
	}
	if _, _, err := PeakReduction(before, empty); err == nil {
		t.Error("empty after should fail")
	}
	// Zero peak guards division.
	zeros := timeseries.ConstantPower(t0, time.Hour, 3, 0)
	_, rel0, err := PeakReduction(zeros, zeros)
	if err != nil || rel0 != 0 {
		t.Errorf("zero-peak rel = %v (%v)", rel0, err)
	}
}
