package goroleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), goroleak.Analyzer,
		"internal/chaos/pos",
		"internal/chaos/neg",
		"outofscope/worker",
	)
}
