package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Error("empty mean should fail")
	}
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil || m != 2.5 {
		t.Errorf("mean = %v (%v)", m, err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if _, err := Variance([]float64{1}); err != ErrEmpty {
		t.Error("singleton variance should fail")
	}
	v, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !almostEq(v, 4.571428571, 1e-6) {
		t.Errorf("variance = %v (%v)", v, err)
	}
	sd, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || !almostEq(sd, math.Sqrt(4.571428571), 1e-6) {
		t.Errorf("sd = %v (%v)", sd, err)
	}
	if _, err := StdDev(nil); err == nil {
		t.Error("empty sd should fail")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("minmax = %v %v (%v)", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Error("empty minmax should fail")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4} // unsorted on purpose
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2}, {-1, 1}, {2, 5},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil || !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v (%v)", c.q, got, err)
		}
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile must not sort the input in place")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Error("empty quantile should fail")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("summary should format")
	}
	one, err := Summarize([]float64{42})
	if err != nil || one.StdDev != 0 {
		t.Errorf("singleton summary = %+v (%v)", one, err)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("empty summarize should fail")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{-1, 0, 1.9, 2, 9.999, 10, 11})
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 4 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	lo, hi := h.BinBounds(1)
	if lo != 2 || hi != 4 {
		t.Errorf("bounds = %v %v", lo, hi)
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Error("render should draw bars")
	}
	if h.Render(0) == "" {
		t.Error("render with default width")
	}
}

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("lo==hi should fail")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v", fit.R2)
	}
	if !almostEq(fit.Predict(10), 21, 1e-12) {
		t.Errorf("Predict = %v", fit.Predict(10))
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("n<2 should fail")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero x-variance should fail")
	}
	// Constant y: slope 0, R2 defined as 1.
	fit, err := FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil || fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("constant-y fit = %+v (%v)", fit, err)
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 10
	}
	mean := func(s []float64) float64 { m, _ := Mean(s); return m }
	lo, hi, err := BootstrapCI(xs, mean, 0.95, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 10 && 10 < hi) {
		t.Errorf("CI [%v, %v] should cover the true mean 10", lo, hi)
	}
	if hi-lo > 1.5 {
		t.Errorf("CI [%v, %v] suspiciously wide", lo, hi)
	}
	if _, _, err := BootstrapCI(nil, mean, 0.95, 100, rng); err != ErrEmpty {
		t.Error("empty bootstrap should fail")
	}
	if _, _, err := BootstrapCI(xs, mean, 1.5, 100, rng); err == nil {
		t.Error("bad level should fail")
	}
	// Tiny iteration counts are bumped to a sane floor.
	if _, _, err := BootstrapCI(xs, mean, 0.9, 1, rng); err != nil {
		t.Errorf("small iters should still work: %v", err)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if CDF(xs, 0) != 0 || CDF(xs, 2) != 0.5 || CDF(xs, 10) != 1 {
		t.Error("CDF values wrong")
	}
	if CDF(nil, 1) != 0 {
		t.Error("empty CDF should be 0")
	}
}

// Property: mean lies within [min, max].
func TestQuickMeanBounded(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m, err := Mean(xs)
		if err != nil {
			return false
		}
		lo, hi, _ := MinMax(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []int16, q1, q2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a := float64(q1%101) / 100
		b := float64(q2%101) / 100
		if a > b {
			a, b = b, a
		}
		qa, _ := Quantile(xs, a)
		qb, _ := Quantile(xs, b)
		return qa <= qb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: histogram conserves observations.
func TestQuickHistogramConserves(t *testing.T) {
	f := func(raw []int16) bool {
		h, _ := NewHistogram(-1000, 1000, 16)
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		h.AddAll(xs)
		return h.Total()+h.Under+h.Over == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
