package contract

// JSON import/export for bills — the machine-readable counterpart of
// the rendered bill, with currency amounts as floats and typology
// components by name. Encoding and decoding are exact inverses:
// DecodeBill(b.JSON()) reproduces b, and re-encoding the decoded bill
// yields byte-identical JSON (amounts are micro-unit fixed point, so
// the float round trip is lossless).

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/units"
)

// billJSON is the serialized shape.
type billJSON struct {
	Contract    string         `json:"contract"`
	PeriodStart time.Time      `json:"period_start"`
	PeriodEnd   time.Time      `json:"period_end"`
	EnergyKWh   float64        `json:"energy_kwh"`
	PeakKW      float64        `json:"peak_kw"`
	Lines       []lineItemJSON `json:"lines"`
	Total       float64        `json:"total"`
	DemandShare float64        `json:"demand_share"`
}

type lineItemJSON struct {
	Component   string  `json:"component"`
	Description string  `json:"description"`
	Quantity    string  `json:"quantity"`
	Amount      float64 `json:"amount"`
}

// componentByName is the inverse of Component.String for decoding.
var componentByName = func() map[string]Component {
	m := make(map[string]Component, len(componentNames))
	for c, n := range componentNames {
		m[n] = c
	}
	return m
}()

// DecodeBill parses bill JSON produced by Bill.JSON back into a Bill.
// The serialized demand share is derived data and is discarded (the
// decoded bill recomputes it from its lines).
func DecodeBill(data []byte) (*Bill, error) {
	var in billJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("contract: bad bill JSON: %w", err)
	}
	b := &Bill{
		Contract:    in.Contract,
		PeriodStart: in.PeriodStart,
		PeriodEnd:   in.PeriodEnd,
		Energy:      units.Energy(in.EnergyKWh),
		PeakDemand:  units.Power(in.PeakKW),
		Total:       units.MoneyFromFloat(in.Total),
	}
	for i, l := range in.Lines {
		comp, ok := componentByName[l.Component]
		if !ok {
			return nil, fmt.Errorf("contract: bill line %d: unknown component %q", i, l.Component)
		}
		b.Lines = append(b.Lines, LineItem{
			Component:   comp,
			Description: l.Description,
			Quantity:    l.Quantity,
			Amount:      units.MoneyFromFloat(l.Amount),
		})
	}
	return b, nil
}

// JSON serializes the bill as indented JSON.
func (b *Bill) JSON() ([]byte, error) {
	out := billJSON{
		Contract:    b.Contract,
		PeriodStart: b.PeriodStart,
		PeriodEnd:   b.PeriodEnd,
		EnergyKWh:   float64(b.Energy),
		PeakKW:      float64(b.PeakDemand),
		Total:       b.Total.Float(),
		DemandShare: b.DemandShare(),
	}
	for _, l := range b.Lines {
		out.Lines = append(out.Lines, lineItemJSON{
			Component:   l.Component.String(),
			Description: l.Description,
			Quantity:    l.Quantity,
			Amount:      l.Amount.Float(),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
