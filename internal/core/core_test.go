package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/calendar"
	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/market"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)

func testContract() *contract.Contract {
	return &contract.Contract{
		Name:          "analysis-test",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.08)},
		DemandCharges: []*demand.Charge{demand.MustNewCharge(14, demand.SinglePeak, 0, 0)},
	}
}

func peakyLoad() *timeseries.PowerSeries {
	samples := make([]units.Power, 96)
	for i := range samples {
		samples[i] = 8000
	}
	for i := 40; i < 44; i++ {
		samples[i] = 16000
	}
	return timeseries.MustNewPower(t0, 15*time.Minute, samples)
}

func TestAnalyze(t *testing.T) {
	a, err := Analyze(testContract(), peakyLoad(), contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Profile.FixedTariff || !a.Profile.DemandCharge {
		t.Errorf("profile = %+v", a.Profile)
	}
	if a.DemandShare <= 0 || a.DemandShare >= 1 {
		t.Errorf("demand share = %v", a.DemandShare)
	}
	// Load factor: mean 8333.33 / peak 16000 ≈ 0.52.
	if a.LoadFactor < 0.5 || a.LoadFactor > 0.55 {
		t.Errorf("load factor = %v", a.LoadFactor)
	}
	if a.EffectiveRate <= 0.08 {
		t.Errorf("all-in rate %v should exceed the energy rate", a.EffectiveRate)
	}
	if len(a.Incentives) != 1 || !strings.Contains(a.Incentives[0], "energy efficiency") {
		t.Errorf("incentives = %v", a.Incentives)
	}
}

func TestAnalyzeListsAllTariffIncentives(t *testing.T) {
	feed := timeseries.ConstantPrice(t0, time.Hour, 24, 0.05)
	c := &contract.Contract{
		Name: "multi",
		Tariffs: []tariff.Tariff{
			tariff.MustNewFixed(0.05),
			tariff.MustNewTOU(calendar.DayNight(8, 20, nil), map[string]units.EnergyPrice{"peak": 0.02, "offpeak": 0.01}),
			tariff.PassThrough(feed),
		},
	}
	a, err := Analyze(c, peakyLoad(), contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Incentives) != 3 {
		t.Errorf("incentives = %v", a.Incentives)
	}
}

func TestAnalyzeError(t *testing.T) {
	if _, err := Analyze(&contract.Contract{Name: "x"}, peakyLoad(), contract.BillingInput{}); err == nil {
		t.Error("invalid contract should fail")
	}
}

func TestPeakShave(t *testing.T) {
	load := peakyLoad()
	shaved, err := PeakShave(load, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	peak, _, _ := shaved.Peak()
	if peak != 12000 {
		t.Errorf("shaved peak = %v, want 12000", peak)
	}
	if _, err := PeakShave(load, 1.0); err == nil {
		t.Error("fraction 1 should fail")
	}
	if _, err := PeakShave(load, -0.1); err == nil {
		t.Error("negative fraction should fail")
	}
	empty := timeseries.MustNewPower(t0, time.Hour, nil)
	if _, err := PeakShave(empty, 0.1); err == nil {
		t.Error("empty load should fail")
	}
	// Zero fraction is identity.
	same, err := PeakShave(load, 0)
	if err != nil {
		t.Fatal(err)
	}
	p0, _, _ := same.Peak()
	if p0 != 16000 {
		t.Errorf("zero shave should keep the peak, got %v", p0)
	}
}

func TestPeakShaveSweepMonotone(t *testing.T) {
	fractions := []float64{0, 0.1, 0.2, 0.3}
	results, err := PeakShaveSweep(testContract(), peakyLoad(), fractions, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].ShavedTotal > results[i-1].ShavedTotal {
			t.Errorf("deeper shaving must not raise the bill: %v then %v",
				results[i-1].ShavedTotal, results[i].ShavedTotal)
		}
		if results[i].EnergyLost < results[i-1].EnergyLost {
			t.Error("deeper shaving loses at least as much energy")
		}
	}
	if results[0].Savings != 0 {
		t.Errorf("zero shave savings = %v", results[0].Savings)
	}
	if results[3].Savings <= 0 {
		t.Error("30% shave should save on a single-peak demand charge")
	}
}

func TestPeakShaveSweepErrors(t *testing.T) {
	if _, err := PeakShaveSweep(&contract.Contract{Name: "x"}, peakyLoad(), []float64{0.1}, contract.BillingInput{}); err == nil {
		t.Error("invalid contract should fail")
	}
	if _, err := PeakShaveSweep(testContract(), peakyLoad(), []float64{2}, contract.BillingInput{}); err == nil {
		t.Error("bad fraction should fail")
	}
}

func TestCompareTariffs(t *testing.T) {
	load := peakyLoad()
	fixed := tariff.MustNewFixed(0.10)
	tou := tariff.MustNewTOU(calendar.DayNight(8, 20, nil),
		map[string]units.EnergyPrice{"peak": 0.15, "offpeak": 0.05})
	results, err := CompareTariffs(load, fixed, tou)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Kind != tariff.Fixed || results[1].Kind != tariff.TimeOfUse {
		t.Error("kinds preserved in order")
	}
	if results[0].Cost != fixed.Cost(load) {
		t.Error("cost mismatch")
	}
	if _, err := CompareTariffs(load); err == nil {
		t.Error("no tariffs should fail")
	}
}

func TestBreakEvenIncentive(t *testing.T) {
	// Flat load so the cap does not touch the demand charge: the only
	// benefit is the incentive, the only cost is op cost — break-even
	// should land exactly at the op-cost rate.
	baseline := timeseries.ConstantPower(t0, 15*time.Minute, 96, 10000)
	c := &contract.Contract{
		Name:    "flat",
		Tariffs: []tariff.Tariff{tariff.MustNewFixed(0.08)},
	}
	events := []market.Event{{Start: t0.Add(10 * time.Hour), Duration: time.Hour, RequestedReduction: 2000}}
	strategy := &dr.CapStrategy{Cap: 8000, OpCostPerKWh: 0.30}

	be, err := BreakEvenIncentive(c, baseline, strategy, events, 2000, 0, 2.0, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	// Bill savings: curtailed 2 MWh × 0.08 = 160. Op cost: 2 MWh × 0.30
	// = 600. Incentive pays 2 MWh × x. Break-even: x = 0.22.
	if math.Abs(float64(be)-0.22) > 0.001 {
		t.Errorf("break-even = %v, want ≈0.22", be)
	}
}

func TestBreakEvenIncentiveBracketErrors(t *testing.T) {
	baseline := timeseries.ConstantPower(t0, 15*time.Minute, 96, 10000)
	c := &contract.Contract{Name: "flat", Tariffs: []tariff.Tariff{tariff.MustNewFixed(0.08)}}
	events := []market.Event{{Start: t0, Duration: time.Hour, RequestedReduction: 2000}}
	cheap := &dr.CapStrategy{Cap: 8000, OpCostPerKWh: 0} // free strategy: pays at any incentive
	if _, err := BreakEvenIncentive(c, baseline, cheap, events, 2000, 0.01, 1, contract.BillingInput{}); err == nil {
		t.Error("already-profitable lo should error")
	}
	costly := &dr.CapStrategy{Cap: 8000, OpCostPerKWh: 100}
	if _, err := BreakEvenIncentive(c, baseline, costly, events, 2000, 0, 0.5, contract.BillingInput{}); err == nil {
		t.Error("never-profitable hi should error")
	}
	if _, err := BreakEvenIncentive(c, baseline, cheap, events, 2000, 1, 0.5, contract.BillingInput{}); err == nil {
		t.Error("inverted bracket should error")
	}
}

func TestScenarioRun(t *testing.T) {
	// Two months of flat load with one spike per month.
	samples := make([]units.Power, (31+30)*96)
	for i := range samples {
		samples[i] = 8000
	}
	samples[500] = 15000
	samples[31*96+700] = 12000
	load := timeseries.MustNewPower(t0, 15*time.Minute, samples)

	s := &Scenario{
		Contract: testContract(),
		Load:     load,
		Program: &market.Program{
			Kind: market.EmergencyDR, CommittedReduction: 2000, EnergyIncentive: 0.4,
		},
		Strategy: &dr.ShedStrategy{Fraction: 0.2, OpCostPerKWh: 0.05},
		Events: []market.Event{
			{Start: t0.Add(125 * time.Hour), Duration: time.Hour, RequestedReduction: 2000},
		},
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bills) != 2 {
		t.Fatalf("bills = %d, want 2 months", len(res.Bills))
	}
	if res.Total != res.Bills[0].Total+res.Bills[1].Total {
		t.Error("total mismatch")
	}
	if res.DR == nil || res.DR.Settlement == nil {
		t.Fatal("DR evaluation missing")
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := (&Scenario{}).Run(); err == nil {
		t.Error("empty scenario should fail")
	}
	if _, err := (&Scenario{Contract: testContract()}).Run(); err == nil {
		t.Error("missing load should fail")
	}
}

func TestScenarioWithoutDR(t *testing.T) {
	s := &Scenario{Contract: testContract(), Load: peakyLoad()}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DR != nil {
		t.Error("no program/strategy, no DR evaluation")
	}
}
