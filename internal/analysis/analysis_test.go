package analysis_test

// Driver-level tests: _test.go filtering, diagnostic ordering, and the
// scvet-ignore suppression contract (reasoned directives suppress on
// their own line or the line below; reasonless directives suppress
// nothing and are themselves reported).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis"
)

const prodSrc = `package p

func bad() {}

func f() {
	bad()
	bad() //lint:scvet-ignore testcheck boundary code audited in review
	//lint:scvet-ignore testcheck the line-above form also counts
	bad()
	//lint:scvet-ignore othercheck a different analyzer's directive does not cover testcheck
	bad()
	//lint:scvet-ignore testcheck
	bad()
}
`

const testSrc = `package p

func g() {
	bad() // in a _test.go file: never analyzed
}
`

// testcheck flags every call to a function named bad.
var testcheck = &analysis.Analyzer{
	Name: "testcheck",
	Doc:  "flags calls to bad()",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
					pass.Reportf(call.Pos(), "call to bad")
				}
				return true
			})
		}
		return nil
	},
}

func TestSuppressionAndFiltering(t *testing.T) {
	fset := token.NewFileSet()
	var files []*ast.File
	for name, src := range map[string]string{"p.go": prodSrc, "p_test.go": testSrc} {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, files, info)
	if err != nil {
		t.Fatal(err)
	}

	diags, err := analysis.RunAnalyzers(fset, files, pkg, info, []*analysis.Analyzer{testcheck})
	if err != nil {
		t.Fatal(err)
	}

	type finding struct {
		line     int
		analyzer string
	}
	var got []finding
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		if posn.Filename != "p.go" {
			t.Errorf("diagnostic from %s: _test.go files must not be analyzed", posn.Filename)
		}
		got = append(got, finding{posn.Line, d.Analyzer})
	}
	want := []finding{
		{6, "testcheck"},              // no directive
		{11, "testcheck"},             // othercheck directive does not cover testcheck
		{12, analysis.IgnoreAnalyzer}, // reasonless directive is itself a finding
		{13, "testcheck"},             // ... and suppresses nothing
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d = %+v, want %+v (order must be positional)", i, got[i], want[i])
		}
	}
}
