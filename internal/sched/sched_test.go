package sched

import (
	"testing"
	"time"

	"repro/internal/hpc"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.June, 6, 0, 0, 0, 0, time.UTC) // a Monday

// tinyMachine returns a 10-node machine with simple round numbers:
// idle 0.1 kW, full load 1 kW per node, PUE factor 1.0, no fixed load.
func tinyMachine(t *testing.T) *hpc.Machine {
	t.Helper()
	node := &hpc.NodeSpec{
		Name:      "test-node",
		IdlePower: 0.1,
		States:    []hpc.PowerState{{Name: "nominal", FreqFactor: 1, Power: 1.0}},
		Cores:     1,
	}
	m, err := hpc.NewMachine("tiny", node, 10, hpc.PUEModel{Fixed: 0, Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func job(id int, arrival, runtime time.Duration, nodes int) *hpc.Job {
	return &hpc.Job{
		ID: id, Arrival: arrival, Runtime: runtime, Walltime: runtime,
		Nodes: nodes, PowerFraction: 1,
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || EASYBackfill.String() != "easy-backfill" {
		t.Error("policy names")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should format")
	}
}

func TestSimulateValidation(t *testing.T) {
	m := tinyMachine(t)
	if _, err := Simulate(nil, nil, Config{Start: t0}); err == nil {
		t.Error("nil machine should fail")
	}
	bad := []*hpc.Job{{ID: 1, Runtime: 0, Walltime: 1, Nodes: 1, PowerFraction: 1}}
	if _, err := Simulate(m, bad, Config{Start: t0}); err == nil {
		t.Error("invalid job should fail")
	}
	tooBig := []*hpc.Job{job(1, 0, time.Hour, 11)}
	if _, err := Simulate(m, tooBig, Config{Start: t0}); err == nil {
		t.Error("oversized job should fail")
	}
	if _, err := Simulate(m, nil, Config{Start: t0, Step: time.Minute, MeterInterval: 90 * time.Second}); err == nil {
		t.Error("non-multiple meter interval should fail")
	}
}

func TestSimulateEmptyTrace(t *testing.T) {
	m := tinyMachine(t)
	res, err := Simulate(m, nil, Config{Start: t0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.Unstarted != 0 {
		t.Error("empty trace should produce no records")
	}
	if res.MeanWait() != 0 || res.MeanBoundedSlowdown() != 0 {
		t.Error("empty metrics should be zero")
	}
}

func TestSingleJobPowerAccounting(t *testing.T) {
	m := tinyMachine(t)
	// One job on 5 nodes for 1 h: IT power = 5×1 kW + 5 idle ×0.1 = 5.5 kW.
	jobs := []*hpc.Job{job(1, 0, time.Hour, 5)}
	res, err := Simulate(m, jobs, Config{Start: t0, Horizon: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.ITLoad.Len() == 0 {
		t.Fatal("no load samples")
	}
	if got := res.ITLoad.At(0); got != 5.5 {
		t.Errorf("IT power = %v, want 5.5", got)
	}
	if len(res.Records) != 1 || res.Records[0].Wait != 0 || !res.Records[0].Completed {
		t.Errorf("record = %+v", res.Records[0])
	}
	if res.Makespan != time.Hour {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestShutdownIdleReducesPower(t *testing.T) {
	m := tinyMachine(t)
	jobs := []*hpc.Job{job(1, 0, time.Hour, 5)}
	res, err := Simulate(m, jobs, Config{Start: t0, ShutdownIdle: true, Horizon: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ITLoad.At(0); got != 5.0 {
		t.Errorf("IT power with shutdown = %v, want 5.0", got)
	}
}

func TestFCFSOrdering(t *testing.T) {
	m := tinyMachine(t)
	// Job 1 takes the whole machine for 2 h; job 2 (1 node) arrives later
	// and must wait under FCFS ... and also under backfill (no spare).
	jobs := []*hpc.Job{
		job(1, 0, 2*time.Hour, 10),
		job(2, 10*time.Minute, time.Hour, 1),
	}
	res, err := Simulate(m, jobs, Config{Start: t0, Policy: FCFS, Horizon: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if res.Records[1].Wait < 100*time.Minute {
		t.Errorf("job 2 wait = %v, want ≈110 min", res.Records[1].Wait)
	}
}

func TestBackfillBeatsFCFS(t *testing.T) {
	m := tinyMachine(t)
	// Classic backfill scenario: running job holds 6 nodes for 2 h; head
	// job needs 10 nodes (must wait); a small short job can backfill
	// into the 4 spare nodes without delaying the head.
	jobs := []*hpc.Job{
		job(1, 0, 2*time.Hour, 6),
		job(2, 1*time.Minute, 2*time.Hour, 10),
		job(3, 2*time.Minute, 30*time.Minute, 4),
	}
	fcfs, err := Simulate(m, jobs, Config{Start: t0, Policy: FCFS, Horizon: 12 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	bf, err := Simulate(m, jobs, Config{Start: t0, Policy: EASYBackfill, Horizon: 12 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	waitOf := func(res *Result, id int) time.Duration {
		for _, r := range res.Records {
			if r.Job.ID == id {
				return r.Wait
			}
		}
		t.Fatalf("job %d not started", id)
		return 0
	}
	if waitOf(bf, 3) >= waitOf(fcfs, 3) {
		t.Errorf("backfill should start job 3 earlier: bf=%v fcfs=%v",
			waitOf(bf, 3), waitOf(fcfs, 3))
	}
	// Backfilling must not delay the head job.
	if waitOf(bf, 2) > waitOf(fcfs, 2) {
		t.Errorf("backfill delayed the head: bf=%v fcfs=%v", waitOf(bf, 2), waitOf(fcfs, 2))
	}
	if bf.Utilization <= fcfs.Utilization {
		t.Errorf("backfill utilization %v should beat FCFS %v", bf.Utilization, fcfs.Utilization)
	}
}

func TestPowerCapBlocksStarts(t *testing.T) {
	m := tinyMachine(t)
	// Cap at 6 kW IT: two 5-node full-power jobs cannot run together
	// (5 + 5 = 10 kW > 6), so the second waits for the first.
	jobs := []*hpc.Job{
		job(1, 0, time.Hour, 5),
		job(2, 0, time.Hour, 5),
	}
	res, err := Simulate(m, jobs, Config{
		Start: t0, PowerCap: 6, ShutdownIdle: true, Horizon: 6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	peak, _, _ := res.ITLoad.Peak()
	if peak > 6 {
		t.Errorf("IT peak %v exceeds cap 6", peak)
	}
	if len(res.Records) != 2 {
		t.Fatalf("both jobs should eventually run")
	}
	if res.Records[1].Wait < 50*time.Minute {
		t.Errorf("second job should wait out the first, wait = %v", res.Records[1].Wait)
	}
}

func TestCapWindowOnlyBindsInside(t *testing.T) {
	m := tinyMachine(t)
	// DR window caps IT power to 3 kW for hour two. A 5-node job arriving
	// inside the window must wait until it closes.
	window := CapWindow{Start: t0.Add(time.Hour), End: t0.Add(2 * time.Hour), Cap: 3}
	jobs := []*hpc.Job{job(1, 70*time.Minute, time.Hour, 5)}
	res, err := Simulate(m, jobs, Config{
		Start: t0, CapWindows: []CapWindow{window}, ShutdownIdle: true,
		Horizon: 6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Start < 2*time.Hour {
		t.Errorf("job started at %v, should wait for window end", res.Records[0].Start)
	}
	// Without the window it starts immediately.
	res2, err := Simulate(m, jobs, Config{Start: t0, ShutdownIdle: true, Horizon: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Records[0].Start != 70*time.Minute {
		t.Errorf("uncapped start = %v", res2.Records[0].Start)
	}
}

func TestPriceAwareShiftingDefers(t *testing.T) {
	m := tinyMachine(t)
	// Price is 0.50 for the first 2 h, then 0.05. A checkpointable job
	// should defer into the cheap window; a rigid job should not.
	feed := timeseries.MustNewPrice(t0, time.Hour, []units.EnergyPrice{
		0.50, 0.50, 0.05, 0.05, 0.05, 0.05,
	})
	mk := func(checkpointable bool) []*hpc.Job {
		j := job(1, 0, time.Hour, 5)
		j.Checkpointable = checkpointable
		return []*hpc.Job{j}
	}
	cfg := Config{
		Start: t0, PriceFeed: feed, PriceThreshold: 0.10,
		Horizon: 12 * time.Hour,
	}
	deferred, err := Simulate(m, mk(true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if deferred.Records[0].Start < 2*time.Hour {
		t.Errorf("checkpointable job started at %v, want ≥ 2 h", deferred.Records[0].Start)
	}
	rigid, err := Simulate(m, mk(false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rigid.Records[0].Start != 0 {
		t.Errorf("rigid job should start immediately, got %v", rigid.Records[0].Start)
	}
}

func TestPriceDeferBoundedByMaxDefer(t *testing.T) {
	m := tinyMachine(t)
	// Price never drops; MaxDefer 1 h forces the start after an hour.
	feed := timeseries.ConstantPrice(t0, time.Hour, 48, 0.50)
	j := job(1, 0, time.Hour, 5)
	j.Checkpointable = true
	res, err := Simulate(m, []*hpc.Job{j}, Config{
		Start: t0, PriceFeed: feed, PriceThreshold: 0.10, MaxDefer: time.Hour,
		Horizon: 12 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Records[0].Start
	if got < time.Hour || got > time.Hour+2*time.Minute {
		t.Errorf("start = %v, want ≈1 h (MaxDefer)", got)
	}
}

func TestFacilityLoadAppliesPUE(t *testing.T) {
	node := &hpc.NodeSpec{
		Name: "n", IdlePower: 0,
		States: []hpc.PowerState{{Name: "x", FreqFactor: 1, Power: 1}},
		Cores:  1,
	}
	m, err := hpc.NewMachine("pue", node, 10, hpc.PUEModel{Fixed: 100, Factor: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*hpc.Job{job(1, 0, time.Hour, 10)}
	res, err := Simulate(m, jobs, Config{Start: t0, Horizon: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	it := res.ITLoad.At(0)
	fac := res.FacilityLoad.At(0)
	if fac != 100+units.Power(float64(it)*1.5) {
		t.Errorf("facility = %v for IT %v", fac, it)
	}
}

func TestUtilizationAndUnstarted(t *testing.T) {
	m := tinyMachine(t)
	// Saturating load: 20 sequential full-machine jobs of 1 h each with
	// a 4-hour horizon after last arrival — some cannot start.
	var jobs []*hpc.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, job(i, 0, time.Hour, 10))
	}
	res, err := Simulate(m, jobs, Config{Start: t0, Horizon: 4 * time.Hour, ShutdownIdle: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unstarted == 0 {
		t.Error("saturating trace should leave unstarted jobs")
	}
	if res.Utilization < 0.9 {
		t.Errorf("utilization = %v, want ≈1", res.Utilization)
	}
}

func TestDeterminism(t *testing.T) {
	m := hpc.SmallSiteMachine()
	cfg := hpc.DefaultWorkload()
	cfg.Span = 24 * time.Hour
	jobs, err := hpc.GenerateWorkload(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := Config{Start: t0, Horizon: 24 * time.Hour}
	a, err := Simulate(m, jobs, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(m, jobs, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ITLoad.Len() != b.ITLoad.Len() {
		t.Fatal("lengths differ")
	}
	for i := 0; i < a.ITLoad.Len(); i++ {
		if a.ITLoad.At(i) != b.ITLoad.At(i) {
			t.Fatal("identical inputs must reproduce the load")
		}
	}
}

func TestBoundedSlowdown(t *testing.T) {
	r := JobRecord{
		Job:  job(1, 0, time.Hour, 1),
		Wait: time.Hour,
	}
	if got := r.BoundedSlowdown(); got != 2 {
		t.Errorf("slowdown = %v, want 2", got)
	}
	// Short jobs use the 10-minute floor.
	r2 := JobRecord{Job: job(2, 0, time.Minute, 1), Wait: 0}
	if got := r2.BoundedSlowdown(); got != 1 {
		t.Errorf("short-job slowdown = %v, want 1 (floored)", got)
	}
}

func TestRealisticWorkloadRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m := hpc.SmallSiteMachine()
	wcfg := hpc.DefaultWorkload()
	wcfg.Span = 48 * time.Hour
	jobs, err := hpc.GenerateWorkload(m, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(m, jobs, Config{Start: t0, Horizon: 72 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.3 {
		t.Errorf("utilization = %v, suspiciously low", res.Utilization)
	}
	peak, _, _ := res.FacilityLoad.Peak()
	if peak <= 0 || peak > m.PeakFacilityPower() {
		t.Errorf("facility peak %v outside (0, %v]", peak, m.PeakFacilityPower())
	}
}

func BenchmarkSimulateWeek(b *testing.B) {
	m := hpc.SmallSiteMachine()
	jobs, err := hpc.GenerateWorkload(m, hpc.DefaultWorkload())
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Start: t0, Horizon: 48 * time.Hour}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(m, jobs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
