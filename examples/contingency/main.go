// Contingency-planning example — the paper's §5 future work, executable:
// a site defines an escalation ladder (price watch → grid-stress shed →
// emergency cap), evaluates it against a month of grid conditions, and
// reads off the impact analysis: what each level did, what it cost, what
// it saved, and whether the site stayed emergency-compliant.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/contingency"
	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/grid"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/tariff"
	"repro/internal/units"
)

func main() {
	start := time.Date(2016, time.September, 1, 0, 0, 0, 0, time.UTC)

	baseline, err := repro.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: start, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 12 * units.Megawatt, PeakToAverage: 1.3, NoiseSigma: 0.02, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	c := &repro.Contract{
		Name:          "plan-site",
		Tariffs:       []repro.Tariff{tariff.MustNewFixed(0.06)},
		DemandCharges: []*repro.DemandCharge{demand.SimpleCharge(12)},
		Emergencies: []*contract.EmergencyObligation{{
			Name: "regional emergency DR", Cap: 9 * units.Megawatt, Penalty: 2.0,
		}},
	}

	plan := &contingency.Plan{
		Name: "site contingency plan",
		Levels: []contingency.Level{
			{
				Name:     "price-watch",
				Trigger:  contingency.Trigger{Kind: contingency.PriceAbove, PriceThreshold: 0.15},
				Strategy: &dr.ShedStrategy{Fraction: 0.05, OpCostPerKWh: 0.01},
			},
			{
				Name:     "stress-shed",
				Trigger:  contingency.Trigger{Kind: contingency.GridStress},
				Strategy: &dr.ShedStrategy{Fraction: 0.10, OpCostPerKWh: 0.02},
			},
			{
				Name:     "emergency-cap",
				Trigger:  contingency.Trigger{Kind: contingency.EmergencyDeclared},
				Strategy: &dr.CapStrategy{Cap: 9 * units.Megawatt, OpCostPerKWh: 0.20},
			},
		},
	}

	// The month's grid conditions.
	region := grid.DefaultRegion(start)
	regional, err := grid.SystemLoad(region)
	if err != nil {
		log.Fatal(err)
	}
	pm := market.DefaultPriceModel(5500 * units.Megawatt)
	prices, err := pm.PriceSeries(regional)
	if err != nil {
		log.Fatal(err)
	}
	sig := contingency.Signals{
		Prices: prices,
		Stress: []grid.StressEvent{
			{Start: start.Add(5*24*time.Hour + 17*time.Hour), Duration: 2 * time.Hour},
			{Start: start.Add(12*24*time.Hour + 18*time.Hour), Duration: time.Hour},
		},
		Emergencies: []contract.EmergencyEvent{
			{Start: start.Add(20*24*time.Hour + 15*time.Hour), Duration: 2 * time.Hour},
		},
	}

	im, err := contingency.Evaluate(plan, c, baseline, sig)
	if err != nil {
		log.Fatal(err)
	}

	tbl := report.NewTable("Impact per escalation level",
		"Level", "Activations", "Active for", "Curtailed", "Op cost")
	for _, l := range im.Levels {
		tbl.AddRow(l.Level, fmt.Sprintf("%d", l.Activations),
			l.ActiveFor.String(), l.Curtailed.String(), l.OpCost.String())
	}
	fmt.Print(tbl.Render())
	fmt.Println()
	fmt.Print(report.KV([][2]string{
		{"Baseline bill", im.BaselineBill.Total.String()},
		{"Planned bill", im.PlannedBill.Total.String()},
		{"Bill savings", im.BillSavings().String()},
		{"Operational cost", im.TotalOpCost.String()},
		{"NET BENEFIT", im.NetBenefit.String()},
		{"Emergency compliant", fmt.Sprintf("%v", im.EmergencyCompliant)},
	}))
	fmt.Println("\n\"SCs should consider designing and potentially implementing contingency")
	fmt.Println("planning for power management in collaboration with their ESP.\" — §4")
}
