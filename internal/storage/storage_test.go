package storage

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.October, 3, 0, 0, 0, 0, time.UTC)

func battery() *Battery {
	return &Battery{
		Capacity:            4 * units.MegawattHour,
		MaxCharge:           2 * units.Megawatt,
		MaxDischarge:        2 * units.Megawatt,
		RoundTripEfficiency: 0.90,
		InitialSoC:          0.5,
	}
}

func TestBatteryValidate(t *testing.T) {
	if err := battery().Validate(); err != nil {
		t.Errorf("good battery: %v", err)
	}
	bad := []*Battery{
		{Capacity: 0, MaxCharge: 1, MaxDischarge: 1, RoundTripEfficiency: 0.9},
		{Capacity: 1, MaxCharge: 0, MaxDischarge: 1, RoundTripEfficiency: 0.9},
		{Capacity: 1, MaxCharge: 1, MaxDischarge: 1, RoundTripEfficiency: 0},
		{Capacity: 1, MaxCharge: 1, MaxDischarge: 1, RoundTripEfficiency: 1.5},
		{Capacity: 1, MaxCharge: 1, MaxDischarge: 1, RoundTripEfficiency: 0.9, InitialSoC: 2},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if !strings.Contains(battery().Describe(), "battery") {
		t.Error("describe")
	}
}

func TestPeakShaveClipsPeak(t *testing.T) {
	b := battery()
	// 10 MW base with a 13 MW hour; threshold 11 MW.
	samples := make([]units.Power, 12) // 3 hours at 15 min
	for i := range samples {
		samples[i] = 10000
	}
	for i := 4; i < 8; i++ {
		samples[i] = 13000
	}
	load := timeseries.MustNewPower(t0, 15*time.Minute, samples)
	res, err := PeakShave(b, load, 11000)
	if err != nil {
		t.Fatal(err)
	}
	peak, _, _ := res.Net.Peak()
	if peak > 11000 {
		t.Errorf("shaved peak = %v, want ≤ 11 MW", peak)
	}
	// 2 MW × 1 h discharged.
	if math.Abs(res.Discharged.MWh()-2) > 1e-9 {
		t.Errorf("discharged = %v", res.Discharged)
	}
	// Battery recharges in the low hours but never pushes above the
	// threshold.
	for i := 0; i < res.Net.Len(); i++ {
		if res.Net.At(i) > 11000+1e-9 {
			t.Fatalf("net load above threshold at %d", i)
		}
	}
	if res.EquivalentFullCycles <= 0 {
		t.Error("cycles should be counted")
	}
}

func TestPeakShaveSoCBounded(t *testing.T) {
	b := battery()
	// Sustained 14 MW: the battery drains, then the peak reappears.
	load := timeseries.ConstantPower(t0, 15*time.Minute, 24, 14000)
	res, err := PeakShave(b, load, 11000)
	if err != nil {
		t.Fatal(err)
	}
	for i, soc := range res.SoC {
		if soc < -1e-9 || soc > 1+1e-9 {
			t.Fatalf("SoC out of bounds at %d: %v", i, soc)
		}
	}
	// With 2 MWh initial usable energy and a 3 MW excess (capped at
	// 2 MW discharge), shaving holds for 1 h then fails.
	early := res.Net.At(0)
	if early != 12000 { // 14 MW − 2 MW max discharge
		t.Errorf("early net = %v, want 12 MW (rate-limited)", early)
	}
	late, _ := res.Net.Window(t0.Add(3*time.Hour), t0.Add(6*time.Hour))
	lateMin, _ := late.Min()
	if lateMin < 14000 {
		t.Errorf("battery exhausted: late net should return to 14 MW, got %v", lateMin)
	}
}

func TestPeakShaveValidation(t *testing.T) {
	load := timeseries.ConstantPower(t0, time.Hour, 4, 1000)
	if _, err := PeakShave(&Battery{}, load, 500); err == nil {
		t.Error("invalid battery should fail")
	}
	if _, err := PeakShave(battery(), load, 0); err == nil {
		t.Error("zero threshold should fail")
	}
	empty := timeseries.MustNewPower(t0, time.Hour, nil)
	if _, err := PeakShave(battery(), empty, 500); err == nil {
		t.Error("empty load should fail")
	}
}

func TestArbitrage(t *testing.T) {
	b := battery()
	b.InitialSoC = 0
	// 12 hours: cheap first 4, mid 4, expensive last 4.
	load := timeseries.ConstantPower(t0, time.Hour, 12, 10000)
	prices := make([]units.EnergyPrice, 12)
	for i := range prices {
		switch {
		case i < 4:
			prices[i] = 0.02
		case i < 8:
			prices[i] = 0.06
		default:
			prices[i] = 0.30
		}
	}
	feed := timeseries.MustNewPrice(t0, time.Hour, prices)
	res, err := Arbitrage(b, load, feed, 0.03, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Cheap hours: net load rises (charging).
	if res.Net.At(0) <= 10000 {
		t.Errorf("cheap hour should charge: net = %v", res.Net.At(0))
	}
	// Mid hours: unchanged.
	if res.Net.At(5) != 10000 {
		t.Errorf("mid hour should idle: net = %v", res.Net.At(5))
	}
	// Expensive hours: net load falls (discharging).
	if res.Net.At(8) >= 10000 {
		t.Errorf("expensive hour should discharge: net = %v", res.Net.At(8))
	}
	// Round-trip efficiency: discharged ≤ charged × η.
	if float64(res.Discharged) > float64(res.Charged)*b.RoundTripEfficiency+1e-6 {
		t.Errorf("discharged %v exceeds charged %v × η", res.Discharged, res.Charged)
	}
}

func TestArbitrageValidation(t *testing.T) {
	load := timeseries.ConstantPower(t0, time.Hour, 4, 1000)
	feed := timeseries.ConstantPrice(t0, time.Hour, 4, 0.05)
	if _, err := Arbitrage(&Battery{}, load, feed, 0.02, 0.10); err == nil {
		t.Error("invalid battery should fail")
	}
	if _, err := Arbitrage(battery(), load, nil, 0.02, 0.10); err == nil {
		t.Error("nil feed should fail")
	}
	if _, err := Arbitrage(battery(), load, feed, 0.10, 0.02); err == nil {
		t.Error("inverted thresholds should fail")
	}
}

// Property: SoC stays within [0,1] and net load is non-negative under
// peak shaving for arbitrary loads.
func TestQuickPeakShaveInvariants(t *testing.T) {
	b := battery()
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		load := timeseries.MustNewPower(t0, 15*time.Minute, samples)
		res, err := PeakShave(b, load, 20000)
		if err != nil {
			return false
		}
		for _, soc := range res.SoC {
			if soc < -1e-9 || soc > 1+1e-9 {
				return false
			}
		}
		mn, _ := res.Net.Min()
		return mn >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: energy conservation — net energy equals load energy plus
// charged minus discharged.
func TestQuickEnergyAccounting(t *testing.T) {
	b := battery()
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v % 30000)
		}
		load := timeseries.MustNewPower(t0, 15*time.Minute, samples)
		res, err := PeakShave(b, load, 15000)
		if err != nil {
			return false
		}
		want := float64(load.Energy()) + float64(res.Charged) - float64(res.Discharged)
		return math.Abs(float64(res.Net.Energy())-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
