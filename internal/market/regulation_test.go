package market

import (
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

func TestGenerateRegulationSignal(t *testing.T) {
	sig, err := GenerateRegulationSignal(t0, time.Minute, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Values) != 600 {
		t.Fatalf("len = %d", len(sig.Values))
	}
	var sum float64
	for _, v := range sig.Values {
		if v < -1 || v > 1 {
			t.Fatalf("signal out of [-1,1]: %v", v)
		}
		sum += v
	}
	// Zero-reverting: long-run mean near zero.
	if mean := sum / 600; math.Abs(mean) > 0.3 {
		t.Errorf("signal mean = %v, want ≈0", mean)
	}
	// Deterministic.
	again, _ := GenerateRegulationSignal(t0, time.Minute, 600, 1)
	for i := range sig.Values {
		if sig.Values[i] != again.Values[i] {
			t.Fatal("equal seeds must reproduce")
		}
	}
}

func TestGenerateRegulationSignalValidation(t *testing.T) {
	if _, err := GenerateRegulationSignal(t0, 0, 10, 1); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := GenerateRegulationSignal(t0, time.Minute, 0, 1); err == nil {
		t.Error("zero length should fail")
	}
}

func TestTrackRegulationPerfectWithFastRamp(t *testing.T) {
	sig, _ := GenerateRegulationSignal(t0, time.Minute, 300, 2)
	// Ramp so fast every step is achievable: score ≈ 1.
	res, err := TrackRegulation(sig, 2000, units.RampRate(1e9), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < 0.999 {
		t.Errorf("fast-ramp score = %v, want ≈1", res.Score)
	}
	// Payment = capacity × rate × score ≈ 10000.
	if res.Payment < units.CurrencyUnits(9990) || res.Payment > units.CurrencyUnits(10000) {
		t.Errorf("payment = %v", res.Payment)
	}
}

func TestTrackRegulationSlowRampScoresLower(t *testing.T) {
	sig, _ := GenerateRegulationSignal(t0, time.Minute, 300, 2)
	fast, _ := TrackRegulation(sig, 2000, 2000, 5) // 2 MW/min
	slow, err := TrackRegulation(sig, 2000, 20, 5) // 20 kW/min
	if err != nil {
		t.Fatal(err)
	}
	if slow.Score >= fast.Score {
		t.Errorf("slow ramp %v should score below fast %v", slow.Score, fast.Score)
	}
	if slow.Payment >= fast.Payment {
		t.Error("payment must follow score")
	}
	if slow.Score < 0 || slow.Score > 1 {
		t.Errorf("score out of range: %v", slow.Score)
	}
}

func TestTrackRegulationValidation(t *testing.T) {
	sig, _ := GenerateRegulationSignal(t0, time.Minute, 10, 1)
	if _, err := TrackRegulation(nil, 1000, 100, 5); err == nil {
		t.Error("nil signal should fail")
	}
	if _, err := TrackRegulation(sig, 0, 100, 5); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := TrackRegulation(sig, 1000, 0, 5); err == nil {
		t.Error("zero ramp should fail")
	}
	if _, err := TrackRegulation(sig, 1000, 100, -1); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestApplyRegulation(t *testing.T) {
	baseline := timeseries.ConstantPower(t0, time.Minute, 10, 10000)
	sig, _ := GenerateRegulationSignal(t0, time.Minute, 10, 3)
	res, err := TrackRegulation(sig, 2000, units.RampRate(1e9), 5)
	if err != nil {
		t.Fatal(err)
	}
	metered, err := ApplyRegulation(baseline, res)
	if err != nil {
		t.Fatal(err)
	}
	// Metered = baseline + response everywhere, bounded away from the
	// baseline by capacity.
	for i := 0; i < metered.Len(); i++ {
		dev := math.Abs(float64(metered.At(i) - 10000))
		if dev > 2000+1e-9 {
			t.Fatalf("deviation %v exceeds capacity at %d", dev, i)
		}
	}
	// Errors.
	if _, err := ApplyRegulation(baseline, &TrackingResult{}); err == nil {
		t.Error("empty result should fail")
	}
	short := timeseries.ConstantPower(t0, time.Minute, 5, 10000)
	if _, err := ApplyRegulation(short, res); err == nil {
		t.Error("response longer than baseline should fail")
	}
}

func TestApplyRegulationClampsAtZero(t *testing.T) {
	baseline := timeseries.ConstantPower(t0, time.Minute, 5, 100)
	res := &TrackingResult{Response: []units.Power{-500, 0, 0, 0, 0}}
	metered, err := ApplyRegulation(baseline, res)
	if err != nil {
		t.Fatal(err)
	}
	if metered.At(0) != 0 {
		t.Errorf("metered load must clamp at zero, got %v", metered.At(0))
	}
}
