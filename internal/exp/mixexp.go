package exp

// E23: the CSCS 80 %-renewables clause (§4) under the two accounting
// conventions. A flat 24×7 SC against a wind+solar portfolio can satisfy
// the clause on annual matching while covering far less of its
// consumption hour by hour — contract language decides which claim the
// site gets to make.

import (
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/report"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func init() {
	register("E23", runE23)
}

// E23Result carries the mix report for the portfolio.
type E23Result struct {
	Report *grid.MixReport
	// AnnualPasses / TimeMatchedPasses verify the 0.80 floor.
	AnnualPasses      bool
	TimeMatchedPasses bool
}

// RunE23 allocates a wind+solar portfolio sized to ≈90 % of a flat 5 MW
// site's annual energy and accounts for it both ways.
func RunE23() (*E23Result, error) {
	const days = 30
	consumption := timeseries.ConstantPower(expStart, 15*time.Minute, days*96, 5*units.Megawatt)
	solar, err := grid.Solar(consumption, grid.SolarConfig{Capacity: 9 * units.Megawatt, CloudNoise: 0.2, Seed: 12})
	if err != nil {
		return nil, err
	}
	wind, err := grid.Wind(consumption, grid.WindConfig{
		Capacity: 8 * units.Megawatt, MeanCF: 0.35, Persistence: 0.97, Sigma: 0.04, Seed: 13,
	})
	if err != nil {
		return nil, err
	}
	portfolio, err := solar.Add(wind)
	if err != nil {
		return nil, err
	}
	rep, err := grid.RenewableShare(consumption, portfolio)
	if err != nil {
		return nil, err
	}
	annual, err := grid.VerifyMixClause(rep, 0.80, false)
	if err != nil {
		return nil, err
	}
	matched, err := grid.VerifyMixClause(rep, 0.80, true)
	if err != nil {
		return nil, err
	}
	return &E23Result{Report: rep, AnnualPasses: annual, TimeMatchedPasses: matched}, nil
}

func runE23() (*Exhibit, error) {
	res, err := RunE23()
	if err != nil {
		return nil, err
	}
	r := res.Report
	tbl := report.NewTable("An 80% renewable-supply clause under two accounting conventions (flat 5 MW site, wind+solar portfolio)",
		"Quantity", "Value")
	tbl.AddRow("consumed", r.Consumed.String())
	tbl.AddRow("renewable allocated", r.RenewableAvailable.String())
	tbl.AddRow("annual-matched share", fmt.Sprintf("%.1f%%", r.AnnualShare*100))
	tbl.AddRow("time-matched share", fmt.Sprintf("%.1f%%", r.TimeMatchedShare*100))
	tbl.AddRow("matching gap", fmt.Sprintf("%.1f pp", r.MatchingGap()*100))
	tbl.AddRow("80% clause, annual convention", report.Check(res.AnnualPasses))
	tbl.AddRow("80% clause, time-matched convention", report.Check(res.TimeMatchedPasses))
	return &Exhibit{
		ID:         "E23",
		Title:      "The CSCS renewables clause: annual vs time-matched accounting (extension, §4)",
		PaperClaim: "§4: CSCS's procurement model defined \"a requirement for an energy supply mix which included 80% electricity from renewable generation.\"",
		Table:      tbl,
		Notes: []string{
			"Intermittency (§1) is exactly the matching gap: the same portfolio that satisfies the clause as an annual average leaves a large fraction of the flat 24×7 consumption uncovered hour by hour. Which convention the contract names determines what the site may claim.",
		},
	}, nil
}
