package billing

// Columnar-path mechanics: chunking, cancellation polling, tracing and
// scanner reuse. Arithmetic equivalence against the sample walk is
// pinned end to end by contract's golden and fuzz suites; these tests
// cover the evaluator-level contract of the columnar machinery itself.

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// scanProbe is a kernel-capable producer that records every chunk its
// scanner receives and can invoke a hook on each Scan call.
type scanProbe struct {
	name   string
	family string
	onScan func()

	// chunks records (base, len) per Scan call; indexes records the
	// period-relative index of every sample seen, in order.
	chunks  [][2]int
	indexes []int
	begun   int
}

func (p *scanProbe) Validate() error    { return nil }
func (p *scanProbe) Describe() string   { return p.name }
func (p *scanProbe) SpanFamily() string { return p.family }

func (p *scanProbe) BeginPeriod(*PeriodContext, time.Duration) Accumulator {
	panic("scanProbe: sample-walk path must not run in columnar tests")
}

func (p *scanProbe) CompileKernel() Kernel { return (*scanProbeKernel)(p) }

type scanProbeKernel scanProbe

func (k *scanProbeKernel) NewScanner() Scanner { return &scanProbeScanner{p: (*scanProbe)(k)} }

type scanProbeScanner struct{ p *scanProbe }

func (s *scanProbeScanner) Begin(*PeriodContext, time.Time, time.Duration, int) {
	s.p.begun++
	s.p.chunks = s.p.chunks[:0]
	s.p.indexes = s.p.indexes[:0]
}

func (s *scanProbeScanner) Scan(samples []units.Power, base int) {
	s.p.chunks = append(s.p.chunks, [2]int{base, len(samples)})
	for i := range samples {
		s.p.indexes = append(s.p.indexes, base+i)
	}
	if s.p.onScan != nil {
		s.p.onScan()
	}
}

func (s *scanProbeScanner) AppendLines(dst []LineItem) []LineItem {
	return append(dst, LineItem{
		Class:       ClassFlatFee,
		Description: s.p.name,
		Quantity:    "flat",
		Amount:      units.Money(len(s.p.indexes)),
	})
}

// twoMonthLoad returns hourly samples covering March and April 2016.
func twoMonthLoad() *timeseries.PowerSeries {
	hours := int(t0.AddDate(0, 2, 0).Sub(t0) / time.Hour)
	samples := make([]units.Power, hours)
	for i := range samples {
		samples[i] = units.Power(1000 + i%700)
	}
	return timeseries.MustNewPower(t0, time.Hour, samples)
}

// TestColumnarChunksPartitionPeriod: the columnar loop must hand every
// scanner every sample exactly once, in order, with chunks that never
// cross a month-block boundary — on both the untraced and traced paths.
func TestColumnarChunksPartitionPeriod(t *testing.T) {
	for _, traced := range []bool{false, true} {
		p := &scanProbe{name: "probe", family: "tariff"}
		e, err := NewEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Columnar() {
			t.Fatal("probe kernel should compile")
		}
		load := twoMonthLoad()
		ctx := context.Background()
		if traced {
			ctx = obs.WithSpans(ctx, obs.NewRegistry())
		}
		if _, err := e.EvaluatePeriodCtx(ctx, load, PeriodContext{}); err != nil {
			t.Fatal(err)
		}
		if len(p.indexes) != load.Len() {
			t.Fatalf("traced=%v: scanner saw %d samples, want %d", traced, len(p.indexes), load.Len())
		}
		for i, idx := range p.indexes {
			if idx != i {
				t.Fatalf("traced=%v: sample %d arrived with index %d", traced, i, idx)
			}
		}
		blocks := load.Blocks()
		bi := 0
		for _, ch := range p.chunks {
			base, n := ch[0], ch[1]
			for base >= blocks[bi].Offset+len(blocks[bi].Samples) {
				bi++
			}
			if base+n > blocks[bi].Offset+len(blocks[bi].Samples) {
				t.Fatalf("traced=%v: chunk [%d,%d) crosses month-block boundary at %d",
					traced, base, base+n, blocks[bi].Offset+len(blocks[bi].Samples))
			}
		}
	}
}

// TestColumnarCancelsMidScan: the columnar loop polls the context
// between chunks, so a cancellation raised during evaluation stops it.
func TestColumnarCancelsMidScan(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &scanProbe{name: "probe", family: "tariff", onScan: cancel}
	e, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.EvaluatePeriodCtx(ctx, twoMonthLoad(), PeriodContext{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(p.chunks) >= 2+1 {
		// Hourly months are under one cancel stride, so the first chunk
		// cancels and at most the in-flight poll gap leaks one more.
		t.Fatalf("scanner kept receiving chunks after cancellation: %d", len(p.chunks))
	}
}

// TestColumnarTracedMatchesUntracedAndRecordsSpans: attaching a span
// registry must not change the result, and family spans must appear.
func TestColumnarTracedMatchesUntracedAndRecordsSpans(t *testing.T) {
	load := twoMonthLoad()
	mk := func() *Evaluator {
		e, err := NewEvaluator(
			&scanProbe{name: "a", family: "tariff"},
			&scanProbe{name: "b", family: "demand"},
			FlatFee{Name: "metering", Amount: units.MoneyFromFloat(500)},
		)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Columnar() {
			t.Fatal("kernels should compile")
		}
		return e
	}
	plain, err := mk().EvaluatePeriod(load, PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	traced, err := mk().EvaluatePeriodCtx(obs.WithSpans(context.Background(), reg), load, PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("traced columnar result differs:\n%+v\nvs\n%+v", plain, traced)
	}
	names := map[string]bool{}
	for _, s := range reg.Snapshot() {
		names[s.Name] = true
	}
	for _, want := range []string{SpanPeriod, "billing.tariff", "billing.demand", "billing.fee"} {
		if !names[want] {
			t.Errorf("missing span %q in %v", want, names)
		}
	}
}

// TestColumnarScannerReuse: pooled scanners must fully reset between
// periods — consecutive evaluations see identical results.
func TestColumnarScannerReuse(t *testing.T) {
	e, err := NewEvaluator(&scanProbe{name: "probe", family: "tariff"})
	if err != nil {
		t.Fatal(err)
	}
	load := twoMonthLoad()
	first, err := e.EvaluatePeriod(load, PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.EvaluatePeriod(load, PeriodContext{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("pooled scanner leaked state between periods:\n%+v\nvs\n%+v", first, second)
	}
}

// TestSetColumnarRefusedWithoutKernels: a producer without a kernel
// keeps the evaluator on the sample walk, and SetColumnar cannot force
// it columnar.
func TestSetColumnarRefusedWithoutKernels(t *testing.T) {
	e, err := NewEvaluator(&probe{name: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Columnar() {
		t.Fatal("probe has no kernel; evaluator must start on the sample walk")
	}
	if e.SetColumnar(true) {
		t.Fatal("SetColumnar(true) must be refused without kernels")
	}
}

// TestCeilIndex pins the duration-to-index ceiling conversion.
func TestCeilIndex(t *testing.T) {
	cases := []struct {
		d, interval time.Duration
		want        int
	}{
		{0, time.Hour, 0},
		{time.Nanosecond, time.Hour, 1},
		{time.Hour, time.Hour, 1},
		{time.Hour + time.Nanosecond, time.Hour, 2},
		{90 * time.Minute, time.Hour, 2},
		{15 * time.Minute, 15 * time.Minute, 1},
	}
	for _, c := range cases {
		if got := CeilIndex(c.d, c.interval); got != c.want {
			t.Errorf("CeilIndex(%v, %v) = %d, want %d", c.d, c.interval, got, c.want)
		}
	}
}
