package serve

// Engine-cache concurrency tests: per-key single-flight compilation
// must never let one slow compile serialize the rest of the cache.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/contract"
)

func testEngine(t *testing.T) *contract.Engine {
	t.Helper()
	c, err := quickstartSpec().Build(contract.BuildContext{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := contract.NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestCacheHitProceedsDuringParkedCompile is the head-of-line-blocking
// regression test: while a compile for key "slow" is parked, a hit on
// an unrelated resident key must return promptly instead of waiting on
// the global mutex.
func TestCacheHitProceedsDuringParkedCompile(t *testing.T) {
	c := newEngineCache(8)
	fast := testEngine(t)
	if _, err := c.get("fast", func() (*contract.Engine, error) { return fast, nil }); err != nil {
		t.Fatal(err)
	}

	park := make(chan struct{})
	started := make(chan struct{})
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		_, _ = c.get("slow", func() (*contract.Engine, error) {
			close(started)
			<-park
			return testEngine(t), nil
		})
	}()
	<-started

	hit := make(chan *contract.Engine, 1)
	go func() {
		eng, _ := c.get("fast", func() (*contract.Engine, error) {
			panic("resident key must not recompile")
		})
		hit <- eng
	}()
	select {
	case eng := <-hit:
		if eng != fast {
			t.Errorf("hit returned a different engine")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cache hit blocked behind a parked compile")
	}

	close(park)
	<-slowDone
	st := c.stats()
	if st.compiles != 2 || st.hits != 1 {
		t.Errorf("stats after parked compile: %+v", st)
	}
}

// TestCacheSingleFlight: concurrent requests for the same missing key
// share one compile and all receive the same engine.
func TestCacheSingleFlight(t *testing.T) {
	c := newEngineCache(8)
	eng := testEngine(t)
	var builds int
	gate := make(chan struct{})
	var wg sync.WaitGroup
	got := make([]*contract.Engine, 8)
	for i := 0; i < len(got); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = c.get("k", func() (*contract.Engine, error) {
				builds++ // single-flight: only one goroutine runs build
				<-gate
				return eng, nil
			})
		}(i)
	}
	waitUntil(t, "a compile to start", func() bool {
		return c.stats().building == 1
	})
	close(gate)
	wg.Wait()

	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}
	for i, e := range got {
		if e != eng {
			t.Errorf("caller %d got a different engine", i)
		}
	}
	st := c.stats()
	if st.compiles != 1 || st.misses != 1 || st.hits != 7 {
		t.Errorf("stats: %+v", st)
	}
}

// TestCacheEvictionDuringCompile: evicting an entry mid-compile must
// not orphan its waiters — they still get the compiled engine — and a
// later request for the evicted key compiles anew.
func TestCacheEvictionDuringCompile(t *testing.T) {
	c := newEngineCache(1)
	slowEng := testEngine(t)
	park := make(chan struct{})
	started := make(chan struct{})
	got := make(chan *contract.Engine, 1)
	go func() {
		eng, _ := c.get("a", func() (*contract.Engine, error) {
			close(started)
			<-park
			return slowEng, nil
		})
		got <- eng
	}()
	<-started

	// Insert "b": capacity 1 evicts the still-compiling "a".
	if _, err := c.get("b", func() (*contract.Engine, error) { return testEngine(t), nil }); err != nil {
		t.Fatal(err)
	}
	if st := c.stats(); st.evictions != 1 {
		t.Fatalf("want the compiling entry evicted, stats %+v", st)
	}

	close(park)
	if eng := <-got; eng != slowEng {
		t.Error("waiter on the evicted entry must still receive its engine")
	}

	// "a" is gone from the map: the next get recompiles.
	recompiled := false
	if _, err := c.get("a", func() (*contract.Engine, error) {
		recompiled = true
		return testEngine(t), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recompiled {
		t.Error("evicted key must compile anew")
	}
}

// TestCacheFailedCompileNotCached: a failed build propagates its error
// to every concurrent waiter and leaves the key absent so a retry
// rebuilds.
func TestCacheFailedCompileNotCached(t *testing.T) {
	c := newEngineCache(4)
	boom := errors.New("boom")
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.get("bad", func() (*contract.Engine, error) {
				<-gate
				return nil, boom
			})
		}(i)
	}
	waitUntil(t, "a compile to start", func() bool { return c.stats().building == 1 })
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d error = %v, want boom", i, err)
		}
	}
	st := c.stats()
	if st.size != 0 {
		t.Errorf("failed compile must not stay cached: %+v", st)
	}
	// Retry rebuilds and can succeed.
	eng := testEngine(t)
	out, err := c.get("bad", func() (*contract.Engine, error) { return eng, nil })
	if err != nil || out != eng {
		t.Errorf("retry after failed compile: %v %v", out, err)
	}
}
