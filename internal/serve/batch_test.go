package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/contract"
)

// batchEnvelope mirrors the /v1/bill/batch response. Body is a
// json.RawMessage so the decoded bytes are exactly the span the server
// embedded — the byte-identity checks compare it verbatim against a
// sequential /v1/bill response.
type batchEnvelope struct {
	Count int `json:"count"`
	Items []struct {
		Status   int             `json:"status"`
		Degraded bool            `json:"degraded"`
		Body     json.RawMessage `json:"body"`
	} `json:"items"`
}

func postBatch(t *testing.T, ts *httptest.Server, path string, req BatchRequest) (*http.Response, batchEnvelope, []byte) {
	t.Helper()
	resp, raw := postBill(t, ts, path, req)
	var env batchEnvelope
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("batch envelope does not parse: %v\n%s", err, raw)
		}
	}
	return resp, env, raw
}

// TestBatchMatchesSequential is the batch acceptance check: one load ×
// N contracts through /v1/bill/batch must return, per item, the exact
// bytes N sequential /v1/bill calls return.
func TestBatchMatchesSequential(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	input := &InputSpec{
		HistoricalPeakKW: 21000,
		Events: []EventSpec{{
			Start: time.Date(2016, time.March, 10, 12, 0, 0, 0, time.UTC), DurationMinutes: 120,
		}},
	}
	specs := []json.RawMessage{
		specJSON(t, quickstartSpec()),
		specJSON(t, kitchenSinkSpec()),
		specJSON(t, quickstartSpec()), // repeated spec: shares the parse and engine
	}
	load := LoadSpec{Profile: "peaky-month"}

	resp, env, raw := postBatch(t, ts, "/v1/bill/batch", BatchRequest{
		Contracts: specs, Load: &load, Input: input,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	if env.Count != len(specs) || len(env.Items) != len(specs) {
		t.Fatalf("count %d, %d items, want %d", env.Count, len(env.Items), len(specs))
	}
	for i, spec := range specs {
		seq, want := postBill(t, ts, "/v1/bill", BillRequest{Contract: spec, Load: load, Input: input})
		if seq.StatusCode != http.StatusOK {
			t.Fatalf("sequential item %d: %d %s", i, seq.StatusCode, want)
		}
		if env.Items[i].Status != http.StatusOK {
			t.Fatalf("item %d status %d: %s", i, env.Items[i].Status, env.Items[i].Body)
		}
		if !bytes.Equal(env.Items[i].Body, want) {
			t.Errorf("item %d body differs from sequential /v1/bill:\n%s\nvs\n%s", i, env.Items[i].Body, want)
		}
	}

	// The same spec appears twice: the batch must have compiled it once.
	if st := s.cache.stats(); st.compiles != 2 {
		t.Errorf("3 items over 2 distinct specs must compile twice, got %+v", st)
	}

	// Batch admission accounting is exposed on /metrics.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"scserved_batch_requests_total 1",
		"scserved_batch_items_total 3",
		`stage="batch_evaluate"`,
		`stage="batch_encode"`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBatchMonthlyMatchesSequential: ?monthly=1 batch bodies must be
// the sequential /v1/bill?monthly=1 body minus its trailing newline.
func TestBatchMonthlyMatchesSequential(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := specJSON(t, quickstartSpec())
	loads := []LoadSpec{{Profile: "year-in-life"}, {Profile: "quickstart-month"}}

	resp, env, raw := postBatch(t, ts, "/v1/bill/batch?monthly=1", BatchRequest{
		Contract: spec, Loads: loads,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	for i, load := range loads {
		seq, want := postBill(t, ts, "/v1/bill?monthly=1", BillRequest{Contract: spec, Load: load})
		if seq.StatusCode != http.StatusOK {
			t.Fatalf("sequential item %d: %d %s", i, seq.StatusCode, want)
		}
		want = bytes.TrimSuffix(want, []byte("\n"))
		if env.Items[i].Status != http.StatusOK {
			t.Fatalf("item %d status %d: %s", i, env.Items[i].Status, env.Items[i].Body)
		}
		if !bytes.Equal(env.Items[i].Body, want) {
			t.Errorf("item %d monthly body differs from sequential:\n%s\nvs\n%s", i, env.Items[i].Body, want)
		}
	}
	// N loads × one contract: the spec parsed and compiled once.
	if st := s.cache.stats(); st.compiles != 1 {
		t.Errorf("one contract across 2 loads must compile once, got %+v", st)
	}
}

// TestBatchItemErrorIsolation: a broken spec fails its own item with a
// 400 marker while the rest of the batch bills normally.
func TestBatchItemErrorIsolation(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, env, raw := postBatch(t, ts, "/v1/bill/batch", BatchRequest{
		Contracts: []json.RawMessage{
			specJSON(t, quickstartSpec()),
			json.RawMessage(`{"name":"x","tariffs":[{"type":"warp"}]}`),
		},
		Load: &LoadSpec{Profile: "quickstart-month"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	if env.Items[0].Status != http.StatusOK {
		t.Errorf("good item: %d %s", env.Items[0].Status, env.Items[0].Body)
	}
	if env.Items[1].Status != http.StatusBadRequest {
		t.Errorf("bad item must carry 400, got %d: %s", env.Items[1].Status, env.Items[1].Body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(env.Items[1].Body, &e); err != nil || e.Error == "" {
		t.Errorf("bad item body: %s (%v)", env.Items[1].Body, err)
	}
}

// TestBatchValidation pins the request-shape rules.
func TestBatchValidation(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := specJSON(t, quickstartSpec())
	load := LoadSpec{Profile: "quickstart-month"}
	tooMany := make([]json.RawMessage, maxBatchItems+1)
	for i := range tooMany {
		tooMany[i] = spec
	}
	cases := []struct {
		name string
		req  BatchRequest
	}{
		{"no contract", BatchRequest{Load: &load}},
		{"no load", BatchRequest{Contract: spec}},
		{"both contract forms", BatchRequest{Contract: spec, Contracts: []json.RawMessage{spec}, Load: &load}},
		{"both load forms", BatchRequest{Contract: spec, Load: &load, Loads: []LoadSpec{load}}},
		{"N x M", BatchRequest{Contracts: []json.RawMessage{spec, spec}, Loads: []LoadSpec{load, load}}},
		{"too many items", BatchRequest{Contracts: tooMany, Load: &load}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postBill(t, ts, "/v1/bill/batch", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("want 400, got %d: %s", resp.StatusCode, body)
			}
		})
	}
}

// BenchmarkBatchVsSequential documents the batch amortization claim:
// one /v1/bill/batch request over N contracts vs N sequential /v1/bill
// calls against the same server. Compare ns/op between the two
// sub-benchmarks; both bill the identical work.
func BenchmarkBatchVsSequential(b *testing.B) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	specs := make([]json.RawMessage, n)
	for i := range specs {
		spec := quickstartSpec()
		spec.Name = fmt.Sprintf("site-%d", i)
		spec.Tariffs[0].Rate = 0.05 + 0.005*float64(i)
		data, err := contract.EncodeSpec(spec)
		if err != nil {
			b.Fatal(err)
		}
		specs[i] = data
	}
	load := LoadSpec{Profile: "quickstart-month"}

	post := func(path string, body any) int {
		data, _ := json.Marshal(body)
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, spec := range specs {
				if code := post("/v1/bill", BillRequest{Contract: spec, Load: load}); code != http.StatusOK {
					b.Fatalf("status %d", code)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if code := post("/v1/bill/batch", BatchRequest{Contracts: specs, Load: &load}); code != http.StatusOK {
				b.Fatalf("status %d", code)
			}
		}
	})
}
