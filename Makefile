# Developer entry points. `make check` is the full gate: build, vet,
# the scvet invariant suite, and the race-enabled test suite (the
# parallel month evaluator in internal/billing makes -race mandatory
# before merging).

GO ?= go
SCVET := bin/scvet

.PHONY: all build vet scvet-build scvet scvet-report test race check fmt-check lint serve bench bench-billing bench-artifact bench-json bench-check optimize-accept loadtest loadtest-smoke fleetchaos fleetchaos-smoke fuzz chaos clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Build the repo's custom analyzer suite from the module itself: scvet
# can never be "not installed", so unlike the third-party linters it
# never soft-skips.
scvet-build:
	$(GO) build -o $(SCVET) ./cmd/scvet

# The vettool path must be absolute: go vet execs it from each
# package's directory.
scvet: scvet-build
	$(GO) vet -vettool=$(CURDIR)/$(SCVET) ./...

# CI artifact run: the same gate, but findings and the suppression
# ledger land in files the workflow uploads. The ledger runs strict so
# a stale, malformed, or misspelled scvet-ignore directive fails the
# job, not just the eyeball pass.
scvet-report: scvet-build
	@$(GO) vet -vettool=$(CURDIR)/$(SCVET) ./... >scvet-findings.txt 2>&1; \
		status=$$?; cat scvet-findings.txt; \
		if [ $$status -ne 0 ]; then exit $$status; fi
	@$(CURDIR)/$(SCVET) -ignores -strict . >scvet-ignores.txt 2>&1; \
		status=$$?; cat scvet-ignores.txt; \
		if [ $$status -ne 0 ]; then exit $$status; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet scvet race

# Fail if any file is not gofmt-clean (CI gate).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static analysis beyond vet: the in-tree scvet suite always runs;
# staticcheck and govulncheck run when installed. Locally a missing
# tool skips with a notice (bare checkouts stay usable); in CI ($CI
# set) a missing tool is a hard failure — CI must never silently "pass"
# a gate it didn't run.
lint: vet scvet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ -n "$$CI" ]; then \
		echo "lint: staticcheck not installed in CI" >&2; exit 1; \
	else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	elif [ -n "$$CI" ]; then \
		echo "lint: govulncheck not installed in CI" >&2; exit 1; \
	else echo "lint: govulncheck not installed, skipping"; fi

# Run the billing-as-a-service daemon on :8080 (see cmd/scserved -h).
serve:
	$(GO) run ./cmd/scserved -addr :8080

# Full benchmark sweep (paper exhibits + ablations).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The billing hot-path family: legacy multi-pass vs single-pass engine,
# plus the optimizer's year-long annealing search on top of it.
bench-billing:
	$(GO) test -run '^$$' -bench 'BenchmarkBillYear|BenchmarkBillingYear|BenchmarkOptimizeYear' -benchmem .

# Benchmark sweep into bench.txt for archiving (CI uploads this as a
# build artifact so perf history survives past the run log).
bench-artifact:
	$(GO) test -run '^$$' -bench . -benchmem -count 1 . | tee bench.txt

# Structured billing-benchmark record: the BillYear* family parsed by
# cmd/scbench into $(BENCH_OUT) (name, ns/op, B/op, allocs/op, commit).
# Run locally to refresh the committed BENCH_billing.json baseline
# after an intentional perf change.
BENCH_OUT ?= BENCH_billing.json
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkBillYear|BenchmarkBillingYear|BenchmarkOptimizeYear' -benchmem -count 1 . \
		| $(GO) run ./cmd/scbench \
			-commit $$(git rev-parse --short HEAD 2>/dev/null || echo unknown) \
			-out $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# CI perf gate: rerun the billing benchmarks into BENCH_current.json and
# fail on a >15% ns/op or >10% allocs/op regression of the gated
# benchmarks (the engine year-bill and the optimizer search riding on
# it) vs the committed BENCH_billing.json baseline.
bench-check:
	$(GO) test -run '^$$' -bench 'BenchmarkBillYear|BenchmarkBillingYear|BenchmarkOptimizeYear' -benchmem -count 1 . \
		| $(GO) run ./cmd/scbench \
			-commit $$(git rev-parse --short HEAD 2>/dev/null || echo unknown) \
			-out BENCH_current.json \
			-compare BENCH_billing.json -gate 'BillYearEngine|OptimizeYear' \
			-threshold 0.15 -alloc-threshold 0.10

# Seeded acceptance sweep: optimize the year-in-life load against all
# ten survey-site contracts and fail when the table drifts from the
# committed ACCEPTANCE_optimize.md or any demand-charge/powerband site
# is not strictly cheaper than baseline. ACCEPTANCE_current.md is
# uploaded by CI as an artifact. After an intentional optimizer change,
# regenerate with:
#	go run ./cmd/scopt -survey -check -out ACCEPTANCE_optimize.md
optimize-accept:
	$(GO) run ./cmd/scopt -survey -check -out ACCEPTANCE_current.md
	@if ! cmp -s ACCEPTANCE_current.md ACCEPTANCE_optimize.md; then \
		echo "optimize-accept: sweep drifted from committed ACCEPTANCE_optimize.md:"; \
		diff -u ACCEPTANCE_optimize.md ACCEPTANCE_current.md || true; exit 1; fi
	@echo "optimize-accept: sweep matches ACCEPTANCE_optimize.md"

# Sharded-fleet acceptance: boots a 1-backend baseline and a 3-backend
# scroute fleet, drives both with the seeded scload generator, and
# asserts shed-not-collapse (429s rise with offered load, admitted p99
# bounded, zero 5xx) plus the router's raison d'être — every sharded
# backend's engine-cache hit rate beats the unsharded baseline. Writes
# ACCEPTANCE_loadtest.md; regenerate and commit after intentional
# fleet/admission changes.
loadtest:
	scripts/loadtest.sh accept

# CI smoke: 2 backends behind scroute, short overload burst; fails on
# any 5xx or if nothing was shed. Writes loadtest-summary.md (uploaded
# as a CI artifact).
loadtest-smoke:
	scripts/loadtest.sh smoke

# Fleet chaos acceptance: 3 backends behind scchaos fault proxies
# behind scroute; scload events blackhole one backend mid-load and
# then brown it out 10x while windowed assertions check ejection,
# hedging, and the retry-budget cap. Writes ACCEPTANCE_fleetchaos.md;
# regenerate and commit after intentional routing/resilience changes.
fleetchaos:
	scripts/fleetchaos.sh accept

# CI smoke: 2 backends, 1 chaos proxy, one short blackhole flip; fails
# if the error rate stays elevated after the ejection window. Writes
# fleetchaos-summary.md (uploaded as a CI artifact).
fleetchaos-smoke:
	scripts/fleetchaos.sh smoke

# Chaos soak: the fault-injected price-feed acceptance suite plus the
# resilience state-machine tests, race-enabled with a short timeout so
# a wedged retry loop fails fast instead of hanging CI. The verbose log
# is teed to chaos-soak.log (CI uploads it as an artifact).
# (log-then-cat instead of tee so the test's exit status survives the
# POSIX shell make uses.)
chaos:
	@$(GO) test -race -count=1 -timeout 120s -v \
		-run 'Chaos|Breaker|Cached|Injector' \
		./internal/serve/ ./internal/feed/ ./internal/chaos/ ./internal/resilience/ \
		> chaos-soak.log 2>&1; status=$$?; cat chaos-soak.log; exit $$status

# Short fuzz pass over the timeseries parsers and transforms.
fuzz:
	$(GO) test ./internal/timeseries/ -fuzz FuzzReadPowerCSV -fuzztime 20s
	$(GO) test ./internal/timeseries/ -fuzz FuzzResampleWindow -fuzztime 20s

clean:
	$(GO) clean ./...
	rm -f $(SCVET)
