package calendar

import (
	"testing"
	"testing/quick"
	"time"
)

func date(y int, m time.Month, d, h int) time.Time {
	return time.Date(y, m, d, h, 0, 0, 0, time.UTC)
}

func TestSeasonOf(t *testing.T) {
	cases := map[time.Month]Season{
		time.January:   Winter,
		time.February:  Winter,
		time.March:     Shoulder,
		time.April:     Shoulder,
		time.May:       Shoulder,
		time.June:      Summer,
		time.July:      Summer,
		time.August:    Summer,
		time.September: Summer,
		time.October:   Shoulder,
		time.November:  Winter,
		time.December:  Winter,
	}
	for m, want := range cases {
		if got := SeasonOf(date(2016, m, 15, 12)); got != want {
			t.Errorf("SeasonOf(%v) = %v, want %v", m, got, want)
		}
	}
}

func TestSeasonString(t *testing.T) {
	if Summer.String() != "summer" || AllYear.String() != "all-year" {
		t.Error("season names wrong")
	}
	if Season(99).String() == "" {
		t.Error("unknown season should still format")
	}
}

func TestDayKindString(t *testing.T) {
	if Weekday.String() != "weekday" || DayKind(42).String() == "" {
		t.Error("day kind names wrong")
	}
}

func TestHolidayCalendar(t *testing.T) {
	newYear := date(2016, time.January, 1, 0)
	c := NewHolidayCalendar(newYear)
	if !c.IsHoliday(date(2016, time.January, 1, 17)) {
		t.Error("same date, different hour should be holiday")
	}
	if c.IsHoliday(date(2016, time.January, 2, 0)) {
		t.Error("next day should not be holiday")
	}
	c.Add(date(2016, time.December, 25, 0))
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	var nilCal *HolidayCalendar
	if nilCal.IsHoliday(newYear) {
		t.Error("nil calendar has no holidays")
	}
	if nilCal.Len() != 0 {
		t.Error("nil calendar Len should be 0")
	}
}

func TestKindOf(t *testing.T) {
	hol := NewHolidayCalendar(date(2016, time.January, 1, 0)) // a Friday
	if got := KindOf(date(2016, time.January, 1, 9), hol); got != Holiday {
		t.Errorf("holiday Friday = %v", got)
	}
	if got := KindOf(date(2016, time.January, 2, 9), hol); got != Weekend { // Saturday
		t.Errorf("Saturday = %v", got)
	}
	if got := KindOf(date(2016, time.January, 4, 9), hol); got != Weekday { // Monday
		t.Errorf("Monday = %v", got)
	}
}

func TestHourBand(t *testing.T) {
	day := HourBand{From: 8, To: 20}
	if !day.Contains(date(2016, time.March, 1, 8)) {
		t.Error("8:00 should be inside 8-20")
	}
	if day.Contains(date(2016, time.March, 1, 20)) {
		t.Error("20:00 should be outside 8-20 (half-open)")
	}
	night := HourBand{From: 22, To: 6}
	if !night.Contains(date(2016, time.March, 1, 23)) || !night.Contains(date(2016, time.March, 1, 3)) {
		t.Error("wrapping band should contain 23:00 and 03:00")
	}
	if night.Contains(date(2016, time.March, 1, 12)) {
		t.Error("wrapping band should not contain noon")
	}
	full := HourBand{}
	if !full.Contains(date(2016, time.March, 1, 0)) || !full.Contains(date(2016, time.March, 1, 23)) {
		t.Error("zero band should match all hours")
	}
}

func TestHourBandValidate(t *testing.T) {
	if err := (HourBand{From: 0, To: 24}).Validate(); err != nil {
		t.Errorf("0-24 should validate: %v", err)
	}
	if err := (HourBand{From: -1, To: 5}).Validate(); err == nil {
		t.Error("negative From should fail")
	}
	if err := (HourBand{From: 0, To: 25}).Validate(); err == nil {
		t.Error("To>24 should fail")
	}
	if (HourBand{From: 8, To: 20}).String() != "08-20" {
		t.Error("band format wrong")
	}
}

func TestRuleMatching(t *testing.T) {
	hol := NewHolidayCalendar(date(2016, time.July, 4, 0)) // a Monday
	summerWeekdayDay := Rule{Season: Summer, DayKind: Weekday, Hours: HourBand{From: 8, To: 20}}

	if !summerWeekdayDay.Matches(date(2016, time.July, 5, 12), hol) {
		t.Error("summer Tuesday noon should match")
	}
	if summerWeekdayDay.Matches(date(2016, time.July, 4, 12), hol) {
		t.Error("holiday should not match Weekday rule")
	}
	if summerWeekdayDay.Matches(date(2016, time.January, 5, 12), hol) {
		t.Error("winter should not match Summer rule")
	}
	if summerWeekdayDay.Matches(date(2016, time.July, 5, 22), hol) {
		t.Error("night hour should not match")
	}

	weekendRule := Rule{DayKind: Weekend}
	if !weekendRule.Matches(date(2016, time.July, 4, 12), hol) {
		t.Error("holiday should count as weekend/off-peak")
	}
	if !weekendRule.Matches(date(2016, time.July, 9, 12), hol) {
		t.Error("Saturday should match Weekend")
	}

	holidayRule := Rule{DayKind: Holiday}
	if !holidayRule.Matches(date(2016, time.July, 4, 12), hol) {
		t.Error("holiday should match Holiday rule")
	}
	if holidayRule.Matches(date(2016, time.July, 9, 12), hol) {
		t.Error("plain Saturday should not match Holiday rule")
	}

	catchAll := Rule{}
	if !catchAll.Matches(date(2016, time.March, 13, 4), hol) {
		t.Error("zero rule should match everything")
	}
	if catchAll.String() == "" {
		t.Error("rule should format")
	}
}

func TestBillingPeriod(t *testing.T) {
	p := MonthOf(date(2016, time.February, 14, 12))
	if !p.Start.Equal(date(2016, time.February, 1, 0)) {
		t.Errorf("Start = %v", p.Start)
	}
	if !p.End.Equal(date(2016, time.March, 1, 0)) {
		t.Errorf("End = %v", p.End)
	}
	if !p.Contains(date(2016, time.February, 29, 23)) {
		t.Error("leap day should be inside Feb 2016")
	}
	if p.Contains(p.End) {
		t.Error("period is half-open")
	}
	if p.Duration() != 29*24*time.Hour {
		t.Errorf("Duration = %v", p.Duration())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := (BillingPeriod{Start: p.End, End: p.Start}).Validate(); err == nil {
		t.Error("inverted period should fail validation")
	}
	if p.String() == "" {
		t.Error("period should format")
	}
}

func TestYearOf(t *testing.T) {
	p := YearOf(date(2016, time.July, 4, 12))
	if !p.Start.Equal(date(2016, time.January, 1, 0)) || !p.End.Equal(date(2017, time.January, 1, 0)) {
		t.Errorf("YearOf = %v", p)
	}
}

func TestMonthsBetween(t *testing.T) {
	from := date(2016, time.January, 15, 0)
	to := date(2016, time.March, 10, 0)
	periods := MonthsBetween(from, to)
	if len(periods) != 3 {
		t.Fatalf("len = %d", len(periods))
	}
	if !periods[0].Start.Equal(from) {
		t.Error("first period should clip to from")
	}
	if !periods[0].End.Equal(date(2016, time.February, 1, 0)) {
		t.Error("first period should end at month boundary")
	}
	if !periods[2].End.Equal(to) {
		t.Error("last period should clip to to")
	}
	// Contiguity.
	for i := 1; i < len(periods); i++ {
		if !periods[i].Start.Equal(periods[i-1].End) {
			t.Errorf("gap between period %d and %d", i-1, i)
		}
	}
	if got := MonthsBetween(to, from); got != nil {
		t.Error("inverted range should be nil")
	}
}

func TestScheduleDayNight(t *testing.T) {
	hol := NewHolidayCalendar(date(2016, time.July, 4, 0))
	s := DayNight(8, 20, hol)
	if got := s.LabelAt(date(2016, time.July, 5, 12)); got != "peak" {
		t.Errorf("weekday noon = %q", got)
	}
	if got := s.LabelAt(date(2016, time.July, 5, 22)); got != "offpeak" {
		t.Errorf("weekday night = %q", got)
	}
	if got := s.LabelAt(date(2016, time.July, 9, 12)); got != "offpeak" {
		t.Errorf("Saturday noon = %q", got)
	}
	if got := s.LabelAt(date(2016, time.July, 4, 12)); got != "offpeak" {
		t.Errorf("holiday noon = %q", got)
	}
	labels := s.Labels()
	if len(labels) != 2 || labels[0] != "offpeak" || labels[1] != "peak" {
		t.Errorf("Labels = %v", labels)
	}
	if s.Fallback() != "offpeak" {
		t.Error("fallback wrong")
	}
}

func TestSeasonalDayNight(t *testing.T) {
	s := SeasonalDayNight(8, 20, nil)
	if got := s.LabelAt(date(2016, time.July, 5, 12)); got != "summer-peak" {
		t.Errorf("summer weekday noon = %q", got)
	}
	if got := s.LabelAt(date(2016, time.January, 5, 12)); got != "peak" {
		t.Errorf("winter weekday noon = %q", got)
	}
	if got := s.LabelAt(date(2016, time.July, 5, 23)); got != "offpeak" {
		t.Errorf("summer weekday night = %q", got)
	}
	if len(s.Labels()) != 3 {
		t.Errorf("Labels = %v", s.Labels())
	}
}

func TestNewScheduleValidation(t *testing.T) {
	if _, err := NewSchedule("", nil); err == nil {
		t.Error("empty fallback should fail")
	}
	if _, err := NewSchedule("x", nil, ScheduleEntry{Label: ""}); err == nil {
		t.Error("empty entry label should fail")
	}
	if _, err := NewSchedule("x", nil, ScheduleEntry{Label: "y", Rule: Rule{Hours: HourBand{From: 99}}}); err == nil {
		t.Error("invalid hour band should fail")
	}
}

func TestMustNewSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewSchedule should panic")
		}
	}()
	MustNewSchedule("", nil)
}

// Property: MonthsBetween periods tile the range exactly: contiguous,
// first starts at from, last ends at to.
func TestQuickMonthsBetweenTiles(t *testing.T) {
	f := func(startDay uint16, lenDays uint16) bool {
		from := date(2015, time.January, 1, 0).AddDate(0, 0, int(startDay%2000))
		to := from.AddDate(0, 0, int(lenDays%1500)+1)
		periods := MonthsBetween(from, to)
		if len(periods) == 0 {
			return false
		}
		if !periods[0].Start.Equal(from) || !periods[len(periods)-1].End.Equal(to) {
			return false
		}
		for i := 1; i < len(periods); i++ {
			if !periods[i].Start.Equal(periods[i-1].End) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every instant gets exactly one label from a schedule, and it
// is one of Labels().
func TestQuickScheduleTotal(t *testing.T) {
	s := SeasonalDayNight(7, 21, nil)
	valid := map[string]bool{}
	for _, l := range s.Labels() {
		valid[l] = true
	}
	f := func(hours uint32) bool {
		ts := date(2016, time.January, 1, 0).Add(time.Duration(hours%87600) * time.Hour)
		return valid[s.LabelAt(ts)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
