// Package contract composes tariff components (kWh branch), demand
// components (kW branch) and emergency-DR obligations ("other" branch)
// into a complete SC electricity service contract, mirrors the paper's
// contract typology (Figure 1) as a type system, classifies arbitrary
// contracts against that typology, and computes itemized bills.
//
// A Contract is what a supercomputing center actually signs: one or more
// energy tariffs, zero or more demand charges, zero or more powerbands,
// optional mandatory emergency-DR obligations, and fixed service fees.
// Location-specific taxes and service fees are representable as fixed
// fees but are excluded from the typology, exactly as the paper excludes
// them ("these are not included in the typology as they cannot be
// generalized").
package contract

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/billing"
	"repro/internal/demand"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// Component identifies a leaf of the contract typology — exactly the six
// columns of the paper's Table 2 — plus CompFlatFee for bill lines that
// fall outside the typology.
type Component int

// Typology leaves.
const (
	CompDemandCharge Component = iota
	CompPowerband
	CompFixedTariff
	CompTOUTariff
	CompDynamicTariff
	CompEmergencyDR
	// CompFlatFee marks flat service fees and folded taxes. It is not a
	// typology leaf (the paper excludes fees as "they cannot be
	// generalized") and so is absent from AllComponents, but bill lines
	// need a real component value for ComponentTotal and JSON export.
	CompFlatFee
)

var componentNames = map[Component]string{
	CompDemandCharge:  "demand-charge",
	CompPowerband:     "powerband",
	CompFixedTariff:   "fixed-tariff",
	CompTOUTariff:     "time-of-use-tariff",
	CompDynamicTariff: "dynamic-tariff",
	CompEmergencyDR:   "emergency-dr",
	CompFlatFee:       "flat-fee",
}

// String returns the component's typology name.
func (c Component) String() string {
	if n, ok := componentNames[c]; ok {
		return n
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// Branch returns the typology branch the component belongs to:
// "tariffs (kWh)", "demand charges (kW)" or "other".
func (c Component) Branch() string {
	switch c {
	case CompFixedTariff, CompTOUTariff, CompDynamicTariff:
		return "tariffs (kWh)"
	case CompDemandCharge, CompPowerband:
		return "demand charges (kW)"
	case CompEmergencyDR:
		return "other"
	case CompFlatFee:
		return "fees"
	default:
		return "unknown"
	}
}

// AllComponents lists the typology leaves in Table 2 column order.
// CompFlatFee is excluded: it is not part of the typology.
func AllComponents() []Component {
	return []Component{
		CompDemandCharge, CompPowerband,
		CompFixedTariff, CompTOUTariff, CompDynamicTariff,
		CompEmergencyDR,
	}
}

// EmergencyObligation is the "other" branch: a mandatory emergency-DR
// element imposed by the ESP. When the ESP declares a grid emergency the
// site must reduce consumption to at most Cap within Notice; consumption
// above the cap during a declared event is penalized per kWh of excess.
// As the paper notes, unlike commercial DR programs these are mandatory.
type EmergencyObligation struct {
	// Name of the program (e.g. the regional emergency DR scheme).
	Name string
	// Cap is the maximum allowed draw during a declared emergency.
	Cap units.Power
	// Notice is the lead time the ESP gives before the cap applies.
	Notice time.Duration
	// Penalty prices energy drawn above Cap during an event.
	Penalty units.EnergyPrice
}

// Validate checks the obligation's fields.
func (o *EmergencyObligation) Validate() error {
	if o.Cap < 0 {
		return errors.New("contract: emergency cap must be non-negative")
	}
	if o.Penalty < 0 {
		return errors.New("contract: emergency penalty must be non-negative")
	}
	if o.Notice < 0 {
		return errors.New("contract: emergency notice must be non-negative")
	}
	return nil
}

// Describe returns a one-line description.
func (o *EmergencyObligation) Describe() string {
	name := o.Name
	if name == "" {
		name = "emergency DR"
	}
	return fmt.Sprintf("%s: cap %s on %s notice, excess @ %s",
		name, o.Cap, o.Notice, o.Penalty)
}

// EmergencyEvent is one declared grid emergency: between Start and
// Start+Duration the obligation's cap applies.
type EmergencyEvent struct {
	Start    time.Time
	Duration time.Duration
}

// End returns the instant the event ends.
func (e EmergencyEvent) End() time.Time { return e.Start.Add(e.Duration) }

// Covers reports whether instant t falls inside the event.
func (e EmergencyEvent) Covers(t time.Time) bool {
	return !t.Before(e.Start) && t.Before(e.End())
}

// Cost returns the penalty incurred by a load profile for a set of
// declared events under this obligation.
func (o *EmergencyObligation) Cost(load *timeseries.PowerSeries, events []EmergencyEvent) units.Money {
	if len(events) == 0 {
		return 0
	}
	var total units.Money
	h := load.Interval().Hours()
	for i := 0; i < load.Len(); i++ {
		ts := load.TimeAt(i)
		covered := false
		for _, e := range events {
			if e.Covers(ts) {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		if p := load.At(i); p > o.Cap {
			total += o.Penalty.Cost(units.Energy(float64(p-o.Cap) * h))
		}
	}
	return total
}

// BeginPeriod returns the obligation's streaming accumulator, which
// prices excess draw during declared emergencies on the engine's single
// pass. Declared events arrive through the period context's windows.
func (o *EmergencyObligation) BeginPeriod(ctx *billing.PeriodContext, interval time.Duration) billing.Accumulator {
	return &emergencyAcc{ob: o, windows: ctx.Emergencies, h: interval.Hours()}
}

// SpanFamily attributes observation cost to the emergency-DR family
// (the typology's "other" branch) in span traces.
func (o *EmergencyObligation) SpanFamily() string { return "emergency" }

var _ billing.LineItemProducer = (*EmergencyObligation)(nil)

type emergencyAcc struct {
	ob      *EmergencyObligation
	windows []billing.Window
	h       float64
	total   units.Money
}

func (a *emergencyAcc) Observe(s billing.Sample) {
	if len(a.windows) == 0 || s.Power <= a.ob.Cap {
		return
	}
	for _, w := range a.windows {
		if w.Covers(s.Time) {
			a.total += a.ob.Penalty.Cost(units.Energy(float64(s.Power-a.ob.Cap) * a.h))
			return
		}
	}
}

func (a *emergencyAcc) Lines() []billing.LineItem {
	return []billing.LineItem{{
		Class:       billing.ClassEmergencyDR,
		Description: a.ob.Describe(),
		Quantity:    fmt.Sprintf("%d events", len(a.windows)),
		Amount:      a.total,
	}}
}

// FixedFee is a flat per-billing-period amount (service fees, metering
// fees, taxes folded to a constant). Excluded from the typology.
type FixedFee struct {
	Name   string
	Amount units.Money
}

// Contract is a complete SC electricity service contract.
type Contract struct {
	// Name identifies the contract (site name, tariff code, ...).
	Name string
	// Tariffs is the kWh branch: one or more energy-pricing components
	// applied additively (a fixed base plus TOU rider is two entries).
	Tariffs []tariff.Tariff
	// DemandCharges is the kW branch's per-period peak pricing.
	DemandCharges []*demand.Charge
	// Powerbands is the kW branch's consumption-boundary components.
	Powerbands []*demand.Powerband
	// Emergencies are mandatory emergency-DR obligations.
	Emergencies []*EmergencyObligation
	// Fees are flat per-period amounts outside the typology.
	Fees []FixedFee
}

// Validate checks the contract is billable: at least one tariff and all
// obligations valid.
func (c *Contract) Validate() error {
	if c == nil {
		return errors.New("contract: nil contract")
	}
	if len(c.Tariffs) == 0 {
		return fmt.Errorf("contract %q: needs at least one tariff component", c.Name)
	}
	for _, t := range c.Tariffs {
		if t == nil {
			return fmt.Errorf("contract %q: nil tariff component", c.Name)
		}
	}
	for _, o := range c.Emergencies {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("contract %q: %w", c.Name, err)
		}
	}
	return nil
}

// Profile is the typology classification of a contract: which Table 2
// columns it ticks.
type Profile struct {
	DemandCharge  bool
	Powerband     bool
	FixedTariff   bool
	TOUTariff     bool
	DynamicTariff bool
	EmergencyDR   bool
}

// Has reports whether the profile contains the given component.
func (p Profile) Has(c Component) bool {
	switch c {
	case CompDemandCharge:
		return p.DemandCharge
	case CompPowerband:
		return p.Powerband
	case CompFixedTariff:
		return p.FixedTariff
	case CompTOUTariff:
		return p.TOUTariff
	case CompDynamicTariff:
		return p.DynamicTariff
	case CompEmergencyDR:
		return p.EmergencyDR
	default:
		return false
	}
}

// Components lists the components present, in Table 2 column order.
func (p Profile) Components() []Component {
	var out []Component
	for _, c := range AllComponents() {
		if p.Has(c) {
			out = append(out, c)
		}
	}
	return out
}

// EncouragesDSM reports whether the contract gives any demand-side
// management incentive (anything beyond a pure fixed tariff does).
func (p Profile) EncouragesDSM() bool {
	return p.DemandCharge || p.Powerband || p.TOUTariff || p.DynamicTariff || p.EmergencyDR
}

// EncouragesRealTimeDR reports whether the contract has any real-time DR
// element (dynamic tariff or emergency DR). Demand charges and powerbands
// encourage DSM "but are not DR (real-time) programs" (§3.2.2).
func (p Profile) EncouragesRealTimeDR() bool {
	return p.DynamicTariff || p.EmergencyDR
}

// String renders the ticked components.
func (p Profile) String() string {
	var parts []string
	for _, c := range p.Components() {
		parts = append(parts, c.String())
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, ", ")
}

// Classify maps a contract onto the typology. Tariff stacks are unpacked
// so each stacked component is classified individually (the paper's
// "variable service-charge applied on top of their fixed rate tariff"
// sites tick both Fixed and Variable).
func Classify(c *Contract) Profile {
	var p Profile
	var visit func(t tariff.Tariff)
	visit = func(t tariff.Tariff) {
		if s, ok := t.(*tariff.Stack); ok {
			for _, inner := range s.Components() {
				visit(inner)
			}
			return
		}
		switch t.Kind() {
		case tariff.Fixed:
			p.FixedTariff = true
		case tariff.TimeOfUse:
			p.TOUTariff = true
		case tariff.Dynamic:
			p.DynamicTariff = true
		}
	}
	for _, t := range c.Tariffs {
		visit(t)
	}
	p.DemandCharge = len(c.DemandCharges) > 0
	p.Powerband = len(c.Powerbands) > 0
	p.EmergencyDR = len(c.Emergencies) > 0
	return p
}

// LineItem is one itemized bill entry.
type LineItem struct {
	// Component is the typology leaf the item belongs to, or CompFlatFee
	// for items outside the typology (fees).
	Component Component
	// Description is the human-readable label.
	Description string
	// Quantity describes the billed quantity ("8.40 GWh", "15.00 MW").
	Quantity string
	// Amount is the exact charge.
	Amount units.Money
}

// Bill is an itemized bill for one billing period.
type Bill struct {
	Contract string
	// PeriodStart / PeriodEnd delimit the billed interval.
	PeriodStart time.Time
	PeriodEnd   time.Time
	// Energy is the total consumption billed.
	Energy units.Energy
	// PeakDemand is the highest metered interval in the period.
	PeakDemand units.Power
	// Lines are the itemized entries; Total is their exact sum.
	Lines []LineItem
	Total units.Money
}

// ComponentTotal sums the bill lines belonging to component c.
func (b *Bill) ComponentTotal(c Component) units.Money {
	var total units.Money
	for _, l := range b.Lines {
		if l.Component == c {
			total += l.Amount
		}
	}
	return total
}

// DemandShare returns the fraction of the total bill attributable to the
// kW branch (demand charges + powerbands) — the quantity Xu & Li's study
// (cited in §2) relates to the peak/average ratio.
func (b *Bill) DemandShare() float64 {
	if b.Total == 0 {
		return 0
	}
	kw := b.ComponentTotal(CompDemandCharge) + b.ComponentTotal(CompPowerband)
	return kw.Float() / b.Total.Float()
}

// String renders a compact bill summary.
func (b *Bill) String() string {
	return fmt.Sprintf("Bill[%s %s–%s: %s, peak %s, total %s]",
		b.Contract,
		b.PeriodStart.Format("2006-01-02"), b.PeriodEnd.Format("2006-01-02"),
		b.Energy, b.PeakDemand, b.Total)
}

// BillingInput carries the optional context a bill computation may need.
type BillingInput struct {
	// HistoricalPeak feeds ratchet demand charges (0 if none).
	HistoricalPeak units.Power
	// Events are the grid emergencies declared during the period.
	Events []EmergencyEvent
}

// ComputeBill prices one billing period's load profile under the
// contract. The bill's Total is always the exact sum of its Lines.
//
// It is a convenience wrapper that compiles the contract into an Engine
// and evaluates one period; callers billing the same contract many
// times (optimizers, sweeps) should build the Engine once and reuse it.
func ComputeBill(c *Contract, load *timeseries.PowerSeries, in BillingInput) (*Bill, error) {
	eng, err := NewEngine(c)
	if err != nil {
		return nil, err
	}
	return eng.Bill(load, in)
}

func tariffComponent(t tariff.Tariff) Component {
	switch t.Kind() {
	case tariff.TimeOfUse:
		return CompTOUTariff
	case tariff.Dynamic:
		return CompDynamicTariff
	default:
		return CompFixedTariff
	}
}

// BillMonths splits a load profile into calendar months and bills each
// month, threading the running historical peak into ratchet charges.
// Months are evaluated concurrently (see Engine.BillMonths).
func BillMonths(c *Contract, load *timeseries.PowerSeries, in BillingInput) ([]*Bill, error) {
	eng, err := NewEngine(c)
	if err != nil {
		return nil, err
	}
	return eng.BillMonths(load, in)
}

// TotalOf sums the totals of a set of bills.
func TotalOf(bills []*Bill) units.Money {
	var total units.Money
	for _, b := range bills {
		total += b.Total
	}
	return total
}
