package main

import "testing"

func TestRunStrategies(t *testing.T) {
	for _, s := range []string{"cap", "shed", "shift", "gen"} {
		if err := run(s, 8, 0.1, 3, 0.25, 0.05, 0.5, 2, 1, 10, 5); err != nil {
			t.Errorf("strategy %s: %v", s, err)
		}
	}
}

func TestRunUnknownStrategy(t *testing.T) {
	if err := run("bogus", 8, 0.1, 3, 0.25, 0.05, 0.5, 2, 1, 10, 5); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestRunInvalidStrategyParams(t *testing.T) {
	if err := run("cap", 0, 0.1, 3, 0.25, 0.05, 0.5, 2, 1, 10, 5); err == nil {
		t.Error("zero cap should fail")
	}
	if err := run("shed", 8, 0, 3, 0.25, 0.05, 0.5, 2, 1, 10, 5); err == nil {
		t.Error("zero shed fraction should fail")
	}
}
