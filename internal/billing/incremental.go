package billing

// Incremental month re-evaluation: the bill-as-objective fast path for
// load-reshaping optimizers. A candidate perturbation touches one or two
// calendar months of a year-long series; re-running EvaluateMonths would
// bill all twelve. IncrementalMonths keeps the committed per-month
// results and re-evaluates only the touched months (plus, for ratchet
// contracts, any later month whose historical peak the touch changed),
// with stage/commit/discard semantics matching a local-search accept/
// reject loop.
//
// The caller owns the sample storage: build the load with
// timeseries.PowerSeries.WithSamples over a mutable buffer, mutate the
// buffer, then Stage the months mutated. Month views are created once —
// block boundaries depend only on the series clock, not the sample
// values — so they always read the buffer's current contents.
//
// Staged evaluation is exact: a Stage over every month produces the same
// per-month totals as EvaluateMonths on the same samples (pinned by
// equivalence tests), because the per-month arithmetic is the same
// evaluatePeriodInto core with the same prefix-maximum historical peak.

import (
	"context"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// HistoricalPeakUser is an optional LineItemProducer extension letting
// the incremental evaluator know whether a producer's arithmetic reads
// PeriodContext.HistoricalPeak. Producers that read the historical peak
// MUST implement it (returning true for the configurations that do);
// producers that do not implement it are assumed peak-independent, which
// lets a touched month skip re-evaluating every month after it.
type HistoricalPeakUser interface {
	// UsesHistoricalPeak reports whether this producer's line items
	// depend on PeriodContext.HistoricalPeak.
	UsesHistoricalPeak() bool
}

// UsesHistoricalPeak reports whether any compiled producer bills against
// PeriodContext.HistoricalPeak (in practice: a ratchet demand charge).
// When false, months are independent billing periods and incremental
// staging re-evaluates exactly the touched months.
func (e *Evaluator) UsesHistoricalPeak() bool {
	for _, p := range e.producers {
		if u, ok := p.(HistoricalPeakUser); ok && u.UsesHistoricalPeak() {
			return true
		}
	}
	return false
}

// IncrementalMonths is a stateful per-month billing session over one
// load series whose samples the caller mutates between stages. It is
// not safe for concurrent use.
type IncrementalMonths struct {
	eval    *Evaluator
	pctx    PeriodContext
	months  []timeseries.PowerSeries
	blocks  []timeseries.MonthBlock
	ratchet bool

	// Committed state: per-month peaks, the historical peak entering
	// each month (prefix maximum), per-month results, and their total.
	peaks   []units.Power
	hist    []units.Power
	results []Result
	total   units.Money

	// Staged state, valid between Stage and Commit/Discard. dirty marks
	// the months the pending stage re-evaluated; their candidate results
	// live in stageResults at the same index.
	dirty        []bool
	stageResults []Result
	stagePeaks   []units.Power
	stageHist    []units.Power
	stageTotal   units.Money
	staged       bool

	evals int
}

// IncrementalMonths evaluates every calendar month of load sequentially
// and returns a session ready for staged re-evaluation. The load's
// sample storage may be mutated by the caller afterwards (WithSamples
// pattern); the session's month views read the current contents.
func (e *Evaluator) IncrementalMonths(ctx context.Context, load *timeseries.PowerSeries, pctx PeriodContext) (*IncrementalMonths, error) {
	if load == nil || load.Len() == 0 {
		return nil, ErrEmptyLoad
	}
	blocks := load.Blocks()
	months := load.Months()
	n := len(months)
	im := &IncrementalMonths{
		eval:         e,
		pctx:         pctx,
		months:       months,
		blocks:       blocks,
		ratchet:      e.UsesHistoricalPeak(),
		peaks:        make([]units.Power, n),
		hist:         make([]units.Power, n),
		results:      make([]Result, n),
		dirty:        make([]bool, n),
		stageResults: make([]Result, n),
		stagePeaks:   make([]units.Power, n),
		stageHist:    make([]units.Power, n),
	}
	run := pctx.HistoricalPeak
	for i := range blocks {
		im.peaks[i] = blocks[i].Peak()
		im.hist[i] = run
		if im.peaks[i] > run {
			run = im.peaks[i]
		}
	}
	for i := range months {
		mctx := pctx
		mctx.HistoricalPeak = im.hist[i]
		if err := e.evaluatePeriodInto(ctx, &im.months[i], mctx, &im.results[i]); err != nil {
			return nil, err
		}
		im.evals++
		im.total += im.results[i].Total
	}
	return im, nil
}

// Months returns the number of calendar months in the session.
func (im *IncrementalMonths) Months() int { return len(im.months) }

// Total returns the committed grand total across all months.
func (im *IncrementalMonths) Total() units.Money { return im.total }

// Evaluations returns the cumulative number of single-month evaluations
// performed (including the initial full pass) — the optimizer's measure
// of how much re-billing the incremental path actually did.
func (im *IncrementalMonths) Evaluations() int { return im.evals }

// Result returns the committed result for month i. The returned pointer
// is invalidated by the next Commit of a stage touching month i.
func (im *IncrementalMonths) Result(i int) *Result { return &im.results[i] }

// Stage re-evaluates the given months against the series' current
// sample contents and returns the candidate grand total. touched lists
// the month indices whose samples changed since the last Commit (order
// and duplicates are irrelevant). For ratchet-sensitive evaluators any
// later month whose entering historical peak changed is re-evaluated
// too. A new Stage discards any previous uncommitted stage.
func (im *IncrementalMonths) Stage(ctx context.Context, touched []int) (units.Money, error) {
	im.Discard()

	copy(im.stagePeaks, im.peaks)
	for _, m := range touched {
		im.stagePeaks[m] = im.blocks[m].Peak()
	}

	// Recompute the prefix-maximum historical peak; for peak-independent
	// evaluators the committed one is still valid and months stay
	// independent.
	copy(im.stageHist, im.hist)
	if im.ratchet {
		run := im.pctx.HistoricalPeak
		for i := range im.stagePeaks {
			im.stageHist[i] = run
			if im.stagePeaks[i] > run {
				run = im.stagePeaks[i]
			}
		}
	}

	for _, m := range touched {
		im.dirty[m] = true
	}
	if im.ratchet {
		for i := range im.stageHist {
			if im.stageHist[i] != im.hist[i] {
				im.dirty[i] = true
			}
		}
	}

	im.stageTotal = im.total
	for i := range im.dirty {
		if !im.dirty[i] {
			continue
		}
		mctx := im.pctx
		mctx.HistoricalPeak = im.stageHist[i]
		// Reset the staged slot before reuse: the sample-walk path
		// appends to Lines while the columnar path assigns it, so a
		// stale slot must present an empty (capacity-preserving) state.
		im.stageResults[i] = Result{Lines: im.stageResults[i].Lines[:0]}
		if err := im.eval.evaluatePeriodInto(ctx, &im.months[i], mctx, &im.stageResults[i]); err != nil {
			im.Discard()
			return 0, err
		}
		im.evals++
		im.stageTotal += im.stageResults[i].Total - im.results[i].Total
	}
	im.staged = true
	return im.stageTotal, nil
}

// Commit adopts the pending stage: staged month results replace the
// committed ones and the staged peaks/historical peaks/total become
// current. Commit without a pending stage is a no-op.
func (im *IncrementalMonths) Commit() {
	if !im.staged {
		return
	}
	for i := range im.dirty {
		if im.dirty[i] {
			// Swap rather than copy so both slots keep their line-item
			// capacity for reuse.
			im.results[i], im.stageResults[i] = im.stageResults[i], im.results[i]
			im.dirty[i] = false
		}
	}
	im.peaks, im.stagePeaks = im.stagePeaks, im.peaks
	im.hist, im.stageHist = im.stageHist, im.hist
	im.total = im.stageTotal
	im.staged = false
}

// Discard drops the pending stage, keeping the committed state. The
// caller must also revert its own sample-buffer mutations — the session
// never copies samples back.
func (im *IncrementalMonths) Discard() {
	if !im.staged {
		for i := range im.dirty {
			im.dirty[i] = false
		}
		return
	}
	for i := range im.dirty {
		im.dirty[i] = false
	}
	im.staged = false
}
