package registry_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/registry"
)

// TestRegistryParity fails when a registered analyzer lacks an
// analysistest fixture package: every analyzer in the suite must ship
// testdata/src fixtures and a test that runs them, so a rule never
// lands without a demonstration that it fires (and that its near
// misses stay quiet).
func TestRegistryParity(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range registry.All() {
		if a.Name == "" {
			t.Fatalf("registered analyzer has empty Name (doc: %.40q)", a.Doc)
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Run == nil {
			t.Errorf("analyzer %q has nil Run", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has empty Doc", a.Name)
		}

		dir := filepath.Join("..", a.Name)
		fixtures := filepath.Join(dir, "testdata", "src")
		if fi, err := os.Stat(fixtures); err != nil || !fi.IsDir() {
			t.Errorf("analyzer %q has no analysistest fixtures: %s missing", a.Name, fixtures)
			continue
		}
		// The fixture tree must contain at least one Go file; an empty
		// testdata skeleton does not count as coverage.
		var goFiles int
		filepath.WalkDir(fixtures, func(path string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && filepath.Ext(path) == ".go" {
				goFiles++
			}
			return nil
		})
		if goFiles == 0 {
			t.Errorf("analyzer %q fixture tree %s contains no Go files", a.Name, fixtures)
		}

		testFile := filepath.Join(dir, a.Name+"_test.go")
		if _, err := os.Stat(testFile); err != nil {
			t.Errorf("analyzer %q has no fixture-running test: %s missing", a.Name, testFile)
		}
	}
}
