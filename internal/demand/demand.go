// Package demand implements the kW branch of the paper's contract
// typology: contract components mapped to the magnitude of peak power
// consumption rather than to energy.
//
// Two component families exist, exactly as the paper describes (§3.2.2):
//
//   - Demand charges: part of the electricity price is determined by the
//     peak consumption across a billing period. The paper's example —
//     "three 15 MW peaks in a billing period" billed after the period,
//     falling when the next period peaks at 12 MW — is the NPeak method
//     with N=3. Single-peak and annual-ratchet variants are also
//     implemented, since US industrial tariffs commonly use both.
//
//   - Powerbands: consumption boundaries (an upper and optionally a lower
//     limit) with continuous sampling; consumption outside the band incurs
//     high additional cost. The paper characterizes powerbands as "a
//     variation over demand charges with upper- and lower limit and
//     continuous sampling ... as opposed to measuring a fixed number of
//     peaks".
//
// Both encourage demand-side management but are not real-time DR programs.
package demand

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// Method selects how a demand charge derives billed demand from a load
// profile.
type Method int

// Demand-charge methods.
const (
	// SinglePeak bills the single highest metered interval of the period.
	SinglePeak Method = iota
	// NPeakAverage bills the average of the N highest metered intervals
	// (the paper's "three 15 MW peaks" formulation).
	NPeakAverage
	// Ratchet bills the greater of this period's peak and a fraction of
	// the highest peak seen in a trailing history (typically 11 months) —
	// one bad month haunts the whole year.
	Ratchet
)

var methodNames = map[Method]string{
	SinglePeak:   "single-peak",
	NPeakAverage: "n-peak-average",
	Ratchet:      "ratchet",
}

// String returns the method name.
func (m Method) String() string {
	if n, ok := methodNames[m]; ok {
		return n
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Charge is a demand-charge contract component.
type Charge struct {
	// Price per kW of billed demand per billing period.
	Price units.DemandPrice
	// Method selects how billed demand is derived.
	Method Method
	// NPeaks is the N for NPeakAverage (ignored otherwise; default 3).
	NPeaks int
	// RatchetFraction is the fraction of the historical peak that
	// ratchets into the current period (ignored unless Method==Ratchet;
	// typical utility value 0.8).
	RatchetFraction float64
}

// NewCharge validates and returns a demand charge.
func NewCharge(price units.DemandPrice, method Method, nPeaks int, ratchetFraction float64) (*Charge, error) {
	if price < 0 {
		return nil, errors.New("demand: price must be non-negative")
	}
	switch method {
	case SinglePeak:
	case NPeakAverage:
		if nPeaks <= 0 {
			return nil, errors.New("demand: NPeakAverage requires NPeaks >= 1")
		}
	case Ratchet:
		if ratchetFraction <= 0 || ratchetFraction > 1 {
			return nil, errors.New("demand: ratchet fraction must be in (0, 1]")
		}
	default:
		return nil, fmt.Errorf("demand: unknown method %d", int(method))
	}
	return &Charge{Price: price, Method: method, NPeaks: nPeaks, RatchetFraction: ratchetFraction}, nil
}

// MustNewCharge is NewCharge that panics on error.
func MustNewCharge(price units.DemandPrice, method Method, nPeaks int, ratchetFraction float64) *Charge {
	c, err := NewCharge(price, method, nPeaks, ratchetFraction)
	if err != nil {
		panic(err)
	}
	return c
}

// SimpleCharge returns the paper's canonical 3-peak-average charge.
func SimpleCharge(price units.DemandPrice) *Charge {
	return MustNewCharge(price, NPeakAverage, 3, 0)
}

// BilledDemand derives the billed demand for one period's load profile.
// historicalPeak is the highest peak over the ratchet history (pass 0 when
// unknown or for non-ratchet methods).
func (c *Charge) BilledDemand(load *timeseries.PowerSeries, historicalPeak units.Power) units.Power {
	if load.Len() == 0 {
		return 0
	}
	peak, _, err := load.Peak()
	if err != nil {
		return 0
	}
	if peak < 0 {
		peak = 0 // net export does not earn negative demand charges
	}
	switch c.Method {
	case SinglePeak:
		return peak
	case NPeakAverage:
		n := c.NPeaks
		if n <= 0 {
			n = 3
		}
		top := load.TopN(n)
		var sum float64
		for _, p := range top {
			v := float64(p.Power)
			if v < 0 {
				v = 0
			}
			sum += v
		}
		return units.Power(sum / float64(len(top)))
	case Ratchet:
		floor := units.Power(float64(historicalPeak) * c.RatchetFraction)
		return units.MaxPower(peak, floor)
	default:
		return peak
	}
}

// Cost returns the period's demand-charge cost.
func (c *Charge) Cost(load *timeseries.PowerSeries, historicalPeak units.Power) units.Money {
	return c.Price.Cost(c.BilledDemand(load, historicalPeak))
}

// UsesHistoricalPeak reports whether the charge's billed demand reads
// the period's historical peak — only the ratchet method does. This is
// the billing.HistoricalPeakUser hook the incremental month evaluator
// uses to decide whether touching one month can re-price later ones.
func (c *Charge) UsesHistoricalPeak() bool { return c.Method == Ratchet }

// Describe returns a one-line description.
func (c *Charge) Describe() string {
	switch c.Method {
	case NPeakAverage:
		n := c.NPeaks
		if n <= 0 {
			n = 3
		}
		return fmt.Sprintf("demand charge @ %s on avg of top %d peaks", c.Price, n)
	case Ratchet:
		return fmt.Sprintf("demand charge @ %s with %.0f%% ratchet", c.Price, c.RatchetFraction*100)
	default:
		return fmt.Sprintf("demand charge @ %s on single peak", c.Price)
	}
}

// Powerband is the upper/lower consumption-boundary component. Samples
// above Upper pay OverPenalty per kWh of excess energy; samples below
// Lower (when HasLower) pay UnderPenalty per kWh of shortfall energy.
// Pricing excursions by excess energy reflects the continuous-sampling
// character the paper attributes to powerbands.
type Powerband struct {
	// Upper is the maximum allowed power draw.
	Upper units.Power
	// Lower is the minimum allowed draw; only enforced when HasLower.
	Lower    units.Power
	HasLower bool
	// OverPenalty prices energy drawn above Upper.
	OverPenalty units.EnergyPrice
	// UnderPenalty prices the shortfall below Lower.
	UnderPenalty units.EnergyPrice
}

// NewPowerband validates and returns a powerband with both limits.
func NewPowerband(lower, upper units.Power, underPenalty, overPenalty units.EnergyPrice) (*Powerband, error) {
	if upper <= 0 {
		return nil, errors.New("demand: powerband upper limit must be positive")
	}
	if lower < 0 || lower >= upper {
		return nil, errors.New("demand: powerband lower limit must be in [0, upper)")
	}
	if overPenalty < 0 || underPenalty < 0 {
		return nil, errors.New("demand: powerband penalties must be non-negative")
	}
	return &Powerband{
		Upper: upper, Lower: lower, HasLower: true,
		OverPenalty: overPenalty, UnderPenalty: underPenalty,
	}, nil
}

// NewUpperPowerband returns a powerband with only an upper limit.
func NewUpperPowerband(upper units.Power, overPenalty units.EnergyPrice) (*Powerband, error) {
	if upper <= 0 {
		return nil, errors.New("demand: powerband upper limit must be positive")
	}
	if overPenalty < 0 {
		return nil, errors.New("demand: powerband penalty must be non-negative")
	}
	return &Powerband{Upper: upper, OverPenalty: overPenalty}, nil
}

// MustNewPowerband is NewPowerband that panics on error.
func MustNewPowerband(lower, upper units.Power, underPenalty, overPenalty units.EnergyPrice) *Powerband {
	b, err := NewPowerband(lower, upper, underPenalty, overPenalty)
	if err != nil {
		panic(err)
	}
	return b
}

// Excursion is one contiguous run of samples outside the band.
type Excursion struct {
	// Start is the first out-of-band interval's start instant.
	Start time.Time
	// Duration of the run.
	Duration time.Duration
	// Above is true for an over-limit run, false for under-limit.
	Above bool
	// WorstPower is the most extreme sample in the run.
	WorstPower units.Power
	// ExcessEnergy is the integrated energy outside the band.
	ExcessEnergy units.Energy
}

// Violations scans a load profile and returns every excursion outside the
// band in chronological order.
func (b *Powerband) Violations(load *timeseries.PowerSeries) []Excursion {
	var out []Excursion
	var cur *Excursion
	h := load.Interval().Hours()
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	for i := 0; i < load.Len(); i++ {
		p := load.At(i)
		var above bool
		var excess units.Energy
		switch {
		case p > b.Upper:
			above = true
			excess = units.Energy(float64(p-b.Upper) * h)
		case b.HasLower && p < b.Lower:
			above = false
			excess = units.Energy(float64(b.Lower-p) * h)
		default:
			flush()
			continue
		}
		if cur == nil || cur.Above != above {
			flush()
			cur = &Excursion{Start: load.TimeAt(i), Above: above, WorstPower: p}
		}
		cur.Duration += load.Interval()
		cur.ExcessEnergy += excess
		if above && p > cur.WorstPower {
			cur.WorstPower = p
		}
		if !above && p < cur.WorstPower {
			cur.WorstPower = p
		}
	}
	flush()
	return out
}

// Cost returns the total penalty for all excursions in the profile.
func (b *Powerband) Cost(load *timeseries.PowerSeries) units.Money {
	return b.CostOfViolations(b.Violations(load))
}

// CostOfViolations prices an excursion list already produced by
// Violations, letting callers that also need the excursions avoid a
// second scan of the load profile.
func (b *Powerband) CostOfViolations(vs []Excursion) units.Money {
	var total units.Money
	for _, v := range vs {
		if v.Above {
			total += b.OverPenalty.Cost(v.ExcessEnergy)
		} else {
			total += b.UnderPenalty.Cost(v.ExcessEnergy)
		}
	}
	return total
}

// ComplianceRatio returns the fraction of samples inside the band
// (1.0 for an empty profile: no samples, no violations).
func (b *Powerband) ComplianceRatio(load *timeseries.PowerSeries) float64 {
	if load.Len() == 0 {
		return 1
	}
	in := 0
	for i := 0; i < load.Len(); i++ {
		p := load.At(i)
		if p <= b.Upper && (!b.HasLower || p >= b.Lower) {
			in++
		}
	}
	return float64(in) / float64(load.Len())
}

// Describe returns a one-line description.
func (b *Powerband) Describe() string {
	if b.HasLower {
		return fmt.Sprintf("powerband [%s, %s] (under %s, over %s)",
			b.Lower, b.Upper, b.UnderPenalty, b.OverPenalty)
	}
	return fmt.Sprintf("powerband [0, %s] (over %s)", b.Upper, b.OverPenalty)
}
