package timeseries

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

func TestPowerCSVRoundTrip(t *testing.T) {
	s := MustNewPower(t0, 15*time.Minute, []units.Power{1000, 2000.5, 0, 3000})
	var buf bytes.Buffer
	if err := WritePowerCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPowerCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Start().Equal(s.Start()) || back.Interval() != s.Interval() || back.Len() != s.Len() {
		t.Fatalf("shape mismatch: %v vs %v", back, s)
	}
	for i := 0; i < s.Len(); i++ {
		if back.At(i) != s.At(i) {
			t.Errorf("sample %d: %v vs %v", i, back.At(i), s.At(i))
		}
	}
}

func TestReadPowerCSVErrors(t *testing.T) {
	cases := map[string]string{
		"too short":     "timestamp,kw\n2016-01-01T00:00:00Z,1\n",
		"bad timestamp": "timestamp,kw\nnope,1\n2016-01-01T00:15:00Z,2\n2016-01-01T00:30:00Z,3\n",
		"bad value":     "timestamp,kw\n2016-01-01T00:00:00Z,x\n2016-01-01T00:15:00Z,2\n2016-01-01T00:30:00Z,3\n",
		"out of order":  "timestamp,kw\n2016-01-01T01:00:00Z,1\n2016-01-01T00:00:00Z,2\n2016-01-01T02:00:00Z,3\n",
		"off grid":      "timestamp,kw\n2016-01-01T00:00:00Z,1\n2016-01-01T00:15:00Z,2\n2016-01-01T00:31:00Z,3\n",
		"wrong fields":  "timestamp,kw\n2016-01-01T00:00:00Z\n",
	}
	for name, in := range cases {
		if _, err := ReadPowerCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadPowerCSVBadSecondTimestamp(t *testing.T) {
	in := "timestamp,kw\n2016-01-01T00:00:00Z,1\nbad,2\n2016-01-01T00:30:00Z,3\n"
	if _, err := ReadPowerCSV(strings.NewReader(in)); err == nil {
		t.Error("bad second timestamp should fail")
	}
}
