package resilience

// Regression test for the lock-held callback bug scvet's lockheld
// analyzer surfaced: OnTransition used to fire inside the breaker's
// critical section, so a callback touching the breaker (even just
// State()) self-deadlocked. Transitions are now queued under the lock
// and delivered after it is released.

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// TestBreakerOnTransitionReentrancy drives the breaker through its
// full closed → open → half-open → closed cycle with an OnTransition
// callback that re-enters the breaker. Before the fix this deadlocked
// on the first transition; the watchdog turns that hang into a test
// failure.
func TestBreakerOnTransitionReentrancy(t *testing.T) {
	clock := newFakeClock()
	var b *Breaker
	var seen []string
	b = NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		OpenTimeout:      time.Second,
		ProbeBudget:      1,
		Now:              clock.Now,
		OnTransition: func(from, to State) {
			// Re-entering the breaker here is the whole point: the
			// callback must run outside the critical section, and it
			// must observe the post-transition state.
			seen = append(seen, fmt.Sprintf("%s->%s observed=%s", from, to, b.State()))
		},
	})

	finished := make(chan struct{})
	go func() {
		defer close(finished)
		done, err := b.Allow()
		if err != nil {
			t.Errorf("closed Allow: %v", err)
			return
		}
		done(false) // threshold 1: trips closed -> open

		clock.Advance(2 * time.Second)
		probe, err := b.Allow() // cooldown over: open -> half-open, takes the probe
		if err != nil {
			t.Errorf("post-cooldown Allow: %v", err)
			return
		}
		probe(true) // successful probe: half-open -> closed
	}()

	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: OnTransition callback could not re-enter the breaker")
	}

	want := []string{
		"closed->open observed=open",
		"open->half-open observed=half-open",
		"half-open->closed observed=closed",
	}
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("transition delivery:\n got %q\nwant %q", seen, want)
	}
}
