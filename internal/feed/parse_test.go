package feed

import (
	"strings"
	"testing"
	"time"
)

const goodCSV = `timestamp,price_per_kwh
2016-03-01T00:00:00Z,0.031
2016-03-01T01:00:00Z,0.042
2016-03-01T02:00:00Z,-0.005
`

func TestParseCSV(t *testing.T) {
	s, err := ParseCSV(strings.NewReader(goodCSV))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Interval() != time.Hour {
		t.Fatalf("parsed %d samples at %s, want 3 at 1h", s.Len(), s.Interval())
	}
	// Negative prices are legal: real-time markets clear negative.
	if float64(s.At(2)) != -0.005 {
		t.Errorf("sample 2 = %v, want -0.005", s.At(2))
	}
	// Headerless input works too.
	headerless := strings.Join(strings.Split(goodCSV, "\n")[1:], "\n")
	if _, err := ParseCSV(strings.NewReader(headerless)); err != nil {
		t.Fatalf("headerless: %v", err)
	}
}

// TestParseCSVRejectsMalformed pins the strict-parsing satellite: every
// class of garbage is refused with an error naming the offending line.
func TestParseCSVRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, csv, wantErr string
	}{
		{
			name: "NaN price",
			csv: "timestamp,price_per_kwh\n2016-03-01T00:00:00Z,0.03\n" +
				"2016-03-01T01:00:00Z,NaN\n",
			wantErr: "line 3: price \"NaN\" is not finite",
		},
		{
			name: "positive infinity",
			csv: "timestamp,price_per_kwh\n2016-03-01T00:00:00Z,+Inf\n" +
				"2016-03-01T01:00:00Z,0.03\n",
			wantErr: "line 2: price \"+Inf\" is not finite",
		},
		{
			name: "negative infinity",
			csv: "timestamp,price_per_kwh\n2016-03-01T00:00:00Z,0.03\n" +
				"2016-03-01T01:00:00Z,-inf\n",
			wantErr: "line 3: price \"-inf\" is not finite",
		},
		{
			name: "non-numeric price",
			csv: "timestamp,price_per_kwh\n2016-03-01T00:00:00Z,0.03\n" +
				"2016-03-01T01:00:00Z,cheap\n",
			wantErr: "line 3: price field \"cheap\" is not a number",
		},
		{
			name: "backwards timestamps",
			csv: "timestamp,price_per_kwh\n2016-03-01T02:00:00Z,0.03\n" +
				"2016-03-01T01:00:00Z,0.04\n",
			wantErr: "line 3: timestamp 2016-03-01T01:00:00Z is not after line 2's 2016-03-01T02:00:00Z",
		},
		{
			name: "repeated timestamp",
			csv: "timestamp,price_per_kwh\n2016-03-01T00:00:00Z,0.03\n" +
				"2016-03-01T01:00:00Z,0.04\n2016-03-01T01:00:00Z,0.05\n",
			wantErr: "line 4: timestamp 2016-03-01T01:00:00Z is not after the previous row",
		},
		{
			name: "off-grid timestamp",
			csv: "timestamp,price_per_kwh\n2016-03-01T00:00:00Z,0.03\n" +
				"2016-03-01T01:00:00Z,0.04\n2016-03-01T02:30:00Z,0.05\n",
			wantErr: "line 4: timestamp 2016-03-01T02:30:00Z breaks the 1h0m0s grid",
		},
		{
			name:    "bad timestamp",
			csv:     "2016-03-01T00:00:00Z,0.03\nyesterday,0.04\n",
			wantErr: "line 2: timestamp field \"yesterday\" is not RFC 3339",
		},
		{
			name:    "too few rows",
			csv:     "timestamp,price_per_kwh\n2016-03-01T00:00:00Z,0.03\n",
			wantErr: "at least two data rows",
		},
		{
			name:    "wrong field count",
			csv:     "2016-03-01T00:00:00Z,0.03,extra\n",
			wantErr: "bad CSV",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseCSV(strings.NewReader(tc.csv))
			if err == nil {
				t.Fatalf("parsed successfully, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseJSON(t *testing.T) {
	s, err := ParseJSON(strings.NewReader(
		`{"start":"2016-03-01T00:00:00Z","interval_seconds":3600,"prices":[0.031,0.042,-0.005]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Interval() != time.Hour {
		t.Fatalf("parsed %d samples at %s, want 3 at 1h", s.Len(), s.Interval())
	}
}

func TestParseJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{
			name:    "NaN token",
			body:    `{"start":"2016-03-01T00:00:00Z","interval_seconds":3600,"prices":[0.03,NaN]}`,
			wantErr: "bad JSON",
		},
		{
			name:    "infinity via exponent overflow",
			body:    `{"start":"2016-03-01T00:00:00Z","interval_seconds":3600,"prices":[0.03,1e999]}`,
			wantErr: "bad JSON",
		},
		{
			name:    "missing start",
			body:    `{"interval_seconds":3600,"prices":[0.03,0.04]}`,
			wantErr: `missing "start"`,
		},
		{
			name:    "non-positive interval",
			body:    `{"start":"2016-03-01T00:00:00Z","interval_seconds":0,"prices":[0.03]}`,
			wantErr: `"interval_seconds" 0 must be positive`,
		},
		{
			name:    "empty prices",
			body:    `{"start":"2016-03-01T00:00:00Z","interval_seconds":3600,"prices":[]}`,
			wantErr: `"prices" is empty`,
		},
		{
			name:    "unknown field",
			body:    `{"start":"2016-03-01T00:00:00Z","interval_seconds":3600,"prices":[0.03],"pricez":[1]}`,
			wantErr: "bad JSON",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseJSON(strings.NewReader(tc.body))
			if err == nil {
				t.Fatalf("parsed successfully, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
