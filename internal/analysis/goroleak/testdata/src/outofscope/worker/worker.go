// Out of scope: goroleak only patrols the fleet-path packages, so a
// fire-and-forget goroutine here must not diagnose.
package worker

func Spawn(f func()) {
	go func() {
		for {
			f()
		}
	}()
}
