package analysis

// Shared type- and AST-interrogation helpers used by the scvet
// analyzers. Scope matching is segment-aligned ("internal/billing"
// matches both the production path "repro/internal/billing" and the
// fixture path "internal/billing/pos") so analyzers behave identically
// under go vet and under analysistest's GOPATH-style fixture loading.

import (
	"go/ast"
	"go/types"
	"strings"
)

// PathHasSegments reports whether want ("internal/billing") appears in
// path as a contiguous, slash-segment-aligned run.
func PathHasSegments(path, want string) bool {
	if path == want {
		return true
	}
	segs := strings.Split(path, "/")
	wsegs := strings.Split(want, "/")
	if len(wsegs) > len(segs) {
		return false
	}
	for i := 0; i+len(wsegs) <= len(segs); i++ {
		match := true
		for j, w := range wsegs {
			if segs[i+j] != w {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// InScope reports whether the package path matches any of the
// segment-aligned scopes.
func InScope(pkg *types.Package, scopes ...string) bool {
	if pkg == nil {
		return false
	}
	for _, s := range scopes {
		if PathHasSegments(pkg.Path(), s) {
			return true
		}
	}
	return false
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package function or method), or nil for calls through function
// values, conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// FuncIs reports whether fn is the named package-level function of a
// package whose path matches pkgSegs (segment-aligned). Methods never
// match: time.Time.After must not pass for time.After.
func FuncIs(fn *types.Func, pkgSegs, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil ||
		!PathHasSegments(fn.Pkg().Path(), pkgSegs) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsConversion reports whether the call expression is a type
// conversion rather than a function call.
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// IsBuiltin reports whether the call invokes a language builtin
// (len, append, close, ...).
func IsBuiltin(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return true
		}
	}
	return false
}

// NamedOf unwraps pointers and aliases down to the named type, or nil.
func NamedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// TypeIs reports whether t (possibly behind a pointer or alias) is the
// named type name declared in a package matching pkgSegs.
func TypeIs(t types.Type, pkgSegs, name string) bool {
	n := NamedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && PathHasSegments(n.Obj().Pkg().Path(), pkgSegs)
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	n := NamedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Context" && n.Obj().Pkg().Path() == "context"
}

// IsClockFuncType reports whether t is exactly func() time.Time — the
// blessed injected-clock shape that may be called anywhere, including
// under a lock.
func IsClockFuncType(t types.Type) bool {
	sig, ok := types.Unalias(t).(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return TypeIs(sig.Results().At(0).Type(), "time", "Time")
}

// IsFloat reports whether t's core representation is a floating-point
// kind (including untyped float constants).
func IsFloat(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
