// Command scload is a seeded open-loop load generator for scserved and
// scroute. It fires requests on a fixed arrival schedule (so an
// overloaded server sheds instead of silently throttling the
// generator), draws the endpoint/spec/profile mix from a seeded PRNG
// (so runs replay identically against different fleet shapes), and
// reports per-endpoint outcome counts and latency quantiles. See
// internal/loadgen.
//
// Usage:
//
//	scload -target http://127.0.0.1:9090 -rps 200 -duration 30s
//	scload -target ... -specs 96 -profiles year-in-life -batch-fraction 0.1
//	scload -target ... -ndjson run.ndjson -assert-zero-5xx -assert-min-shed 0.05
//
// The -assert-* flags turn the run into an acceptance check: scload
// exits 1 when an assertion fails, so make targets and CI can gate on
// shed-not-collapse behavior directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	target := flag.String("target", "", "base URL to load: a scroute front or scserved backend (required)")
	rps := flag.Float64("rps", 50, "open-loop arrival rate, requests per second")
	duration := flag.Duration("duration", 10*time.Second, "length of the arrival schedule")
	seed := flag.Int64("seed", 1, "PRNG seed for the endpoint/spec/profile sequence")
	specs := flag.Int("specs", 16, "distinct synthetic contract specs to cycle through")
	profiles := flag.String("profiles", "quickstart-month", "comma-separated named load profiles drawn uniformly")
	batchFraction := flag.Float64("batch-fraction", 0, "fraction of requests sent to /v1/bill/batch")
	batchItems := flag.Int("batch-items", 8, "loads per batch request")
	maxInflight := flag.Int("max-inflight", 512, "concurrent request cap; arrivals past it are skipped")
	ndjson := flag.String("ndjson", "", "write one JSON line per request to this file")
	assertZero5xx := flag.Bool("assert-zero-5xx", false, "exit 1 if any request got a 5xx or transport error")
	assertMinShed := flag.Float64("assert-min-shed", -1, "exit 1 if the 429 fraction is below this (e.g. 0.05)")
	assertP99 := flag.Duration("assert-p99", 0, "exit 1 if admitted p99 exceeds this (0 = no bound)")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "scload: -target is required")
		os.Exit(2)
	}

	cfg := loadgen.Config{
		Target:        strings.TrimSuffix(*target, "/"),
		RPS:           *rps,
		Duration:      *duration,
		Seed:          *seed,
		Specs:         *specs,
		Profiles:      splitList(*profiles),
		BatchFraction: *batchFraction,
		BatchItems:    *batchItems,
		MaxInflight:   *maxInflight,
	}
	if *ndjson != "" {
		f, err := os.Create(*ndjson)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scload:", err)
			os.Exit(2)
		}
		defer f.Close()
		cfg.NDJSON = f
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	rep, err := loadgen.Run(ctx, cfg)
	if err != nil && rep == nil {
		fmt.Fprintln(os.Stderr, "scload:", err)
		os.Exit(2)
	}
	rep.WriteSummary(os.Stdout)

	failed := false
	_, _, _, serverErr, _, transport := rep.Totals()
	if *assertZero5xx && (serverErr > 0 || transport > 0) {
		fmt.Fprintf(os.Stderr, "scload: ASSERT FAILED: %d 5xx and %d transport errors (want 0)\n", serverErr, transport)
		failed = true
	}
	if *assertMinShed >= 0 {
		if got := rep.ShedFraction(); got < *assertMinShed {
			fmt.Fprintf(os.Stderr, "scload: ASSERT FAILED: shed fraction %.3f below %.3f\n", got, *assertMinShed)
			failed = true
		}
	}
	if *assertP99 > 0 {
		if got := time.Duration(rep.AdmittedP99() * float64(time.Second)); got > *assertP99 {
			fmt.Fprintf(os.Stderr, "scload: ASSERT FAILED: admitted p99 %s above %s\n", got.Round(time.Millisecond), *assertP99)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
