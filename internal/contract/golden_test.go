package contract

// Golden equivalence: the single-pass Engine must reproduce the legacy
// multi-pass billing path exactly — same line items, same quantities,
// amounts identical to the micro-currency unit, bit-identical energy
// and peak — on every example contract shipped with the repo plus
// contracts exercising the remaining tariff kinds.

import (
	"math"
	"testing"
	"time"

	"repro/internal/calendar"
	"repro/internal/demand"
	"repro/internal/hpc"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func goldenLoad(t *testing.T, cfg hpc.LoadProfileConfig) *timeseries.PowerSeries {
	t.Helper()
	load, err := hpc.SyntheticFacilityLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return load
}

// assertBillsIdentical compares every observable field of two bills.
func assertBillsIdentical(t *testing.T, label string, got, want *Bill) {
	t.Helper()
	if got.Contract != want.Contract {
		t.Errorf("%s: contract %q != %q", label, got.Contract, want.Contract)
	}
	if !got.PeriodStart.Equal(want.PeriodStart) || !got.PeriodEnd.Equal(want.PeriodEnd) {
		t.Errorf("%s: period %v–%v != %v–%v", label,
			got.PeriodStart, got.PeriodEnd, want.PeriodStart, want.PeriodEnd)
	}
	if float64(got.Energy) != float64(want.Energy) {
		t.Errorf("%s: energy %v != %v (diff %g)", label, got.Energy, want.Energy,
			math.Abs(float64(got.Energy)-float64(want.Energy)))
	}
	if got.PeakDemand != want.PeakDemand {
		t.Errorf("%s: peak %v != %v", label, got.PeakDemand, want.PeakDemand)
	}
	if len(got.Lines) != len(want.Lines) {
		t.Fatalf("%s: %d lines != %d", label, len(got.Lines), len(want.Lines))
	}
	for i := range got.Lines {
		g, w := got.Lines[i], want.Lines[i]
		if g.Component != w.Component {
			t.Errorf("%s line %d: component %v != %v", label, i, g.Component, w.Component)
		}
		if g.Description != w.Description {
			t.Errorf("%s line %d: description %q != %q", label, i, g.Description, w.Description)
		}
		if g.Quantity != w.Quantity {
			t.Errorf("%s line %d: quantity %q != %q", label, i, g.Quantity, w.Quantity)
		}
		if g.Amount != w.Amount {
			t.Errorf("%s line %d (%s): amount %v != %v (off by %d micro-units)",
				label, i, g.Description, g.Amount, w.Amount, int64(g.Amount-w.Amount))
		}
	}
	if got.Total != want.Total {
		t.Errorf("%s: total %v != %v", label, got.Total, want.Total)
	}
}

// goldenCase is one contract + load + billing input to cross-check.
type goldenCase struct {
	name string
	c    *Contract
	load *timeseries.PowerSeries
	in   BillingInput
}

func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	march := time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
	september := time.Date(2016, time.September, 1, 0, 0, 0, 0, time.UTC)

	// examples/quickstart: fixed tariff + 3-peak demand charge + upper
	// powerband on a month of 12 MW load.
	quickBand, err := demand.NewUpperPowerband(18*units.Megawatt, 0.40)
	if err != nil {
		t.Fatal(err)
	}
	quickstart := goldenCase{
		name: "quickstart",
		c: &Contract{
			Name:          "quickstart-site",
			Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.085)},
			DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
			Powerbands:    []*demand.Powerband{quickBand},
		},
		load: goldenLoad(t, hpc.LoadProfileConfig{
			Start: march, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
			Base: 12 * units.Megawatt, PeakToAverage: 1.5, NoiseSigma: 0.02, Seed: 1,
		}),
	}

	// examples/demandcharge: fixed tariff + 3-peak charge on a peaky month.
	demandcharge := goldenCase{
		name: "demandcharge",
		c: &Contract{
			Name:          "industrial-style",
			Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.06)},
			DemandCharges: []*demand.Charge{demand.SimpleCharge(13)},
		},
		load: goldenLoad(t, hpc.LoadProfileConfig{
			Start: march, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
			Base: 10 * units.Megawatt, PeakToAverage: 2.5, NoiseSigma: 0.02, Seed: 3,
		}),
	}

	// examples/yearinlife: fixed tariff + ratchet charge on a full year.
	yearinlife := goldenCase{
		name: "yearinlife",
		c: &Contract{
			Name:          "annual-contract",
			Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.065)},
			DemandCharges: []*demand.Charge{demand.MustNewCharge(12, demand.Ratchet, 0, 0.8)},
		},
		load: goldenLoad(t, hpc.LoadProfileConfig{
			Start: time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC),
			Span:  365 * 24 * time.Hour, Interval: 15 * time.Minute,
			Base: 12 * units.Megawatt, PeakToAverage: 1.5, NoiseSigma: 0.02,
			DiurnalSwing: 0.03, Seed: 2016,
		}),
	}

	// examples/contingency: fixed tariff + demand charge + emergency
	// obligation with declared events.
	contingency := goldenCase{
		name: "contingency",
		c: &Contract{
			Name:          "plan-site",
			Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.06)},
			DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
			Emergencies: []*EmergencyObligation{{
				Name: "regional emergency DR", Cap: 9 * units.Megawatt, Penalty: 2.0,
			}},
		},
		load: goldenLoad(t, hpc.LoadProfileConfig{
			Start: september, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
			Base: 12 * units.Megawatt, PeakToAverage: 1.3, NoiseSigma: 0.02, Seed: 11,
		}),
		in: BillingInput{Events: []EmergencyEvent{
			{Start: september.Add(5*24*time.Hour + 14*time.Hour), Duration: 2 * time.Hour},
			{Start: september.Add(19*24*time.Hour + 16*time.Hour), Duration: time.Hour},
		}},
	}

	// All remaining tariff kinds in one contract: TOU + dynamic feed +
	// a stacked base+rider, plus a two-sided powerband and flat fees.
	kitchenLoad := goldenLoad(t, hpc.LoadProfileConfig{
		Start: march, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 12 * units.Megawatt, PeakToAverage: 1.8, NoiseSigma: 0.03, Seed: 21,
	})
	hours := 30 * 24
	prices := make([]units.EnergyPrice, hours)
	for i := range prices {
		prices[i] = units.EnergyPrice(0.03 + 0.02*math.Sin(float64(i)/7))
	}
	feed := timeseries.MustNewPrice(march, time.Hour, prices)
	kitchenSink := goldenCase{
		name: "kitchen-sink",
		c: &Contract{
			Name: "all-tariff-kinds",
			Tariffs: []tariff.Tariff{
				tariff.MustNewTOU(calendar.SeasonalDayNight(8, 20, nil), map[string]units.EnergyPrice{
					"summer-peak": 0.04, "peak": 0.02, "offpeak": 0.005,
				}),
				tariff.MustNewDynamic(feed, 1.1, 0.012),
				tariff.MustNewStack(tariff.MustNewFixed(0.05), tariff.MustNewDynamic(feed, 0.4, 0)),
			},
			DemandCharges: []*demand.Charge{demand.MustNewCharge(11, demand.SinglePeak, 0, 0)},
			Powerbands:    []*demand.Powerband{demand.MustNewPowerband(6*units.Megawatt, 19*units.Megawatt, 0.2, 0.6)},
			Fees: []FixedFee{
				{Name: "metering", Amount: units.CurrencyUnits(500)},
				{Name: "grid levy", Amount: units.CurrencyUnits(1250)},
			},
		},
		load: kitchenLoad,
		in:   BillingInput{HistoricalPeak: 21 * units.Megawatt},
	}

	return []goldenCase{quickstart, demandcharge, yearinlife, contingency, kitchenSink}
}

// TestGoldenEngineMatchesLegacyBill cross-checks single-period billing.
func TestGoldenEngineMatchesLegacyBill(t *testing.T) {
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			want, err := ComputeBillLegacy(tc.c, tc.load, tc.in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ComputeBill(tc.c, tc.load, tc.in)
			if err != nil {
				t.Fatal(err)
			}
			assertBillsIdentical(t, tc.name, got, want)
		})
	}
}

// TestGoldenEngineMatchesLegacyMonths cross-checks the parallel monthly
// path — including the ratchet threading — against the sequential loop.
func TestGoldenEngineMatchesLegacyMonths(t *testing.T) {
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			want, err := BillMonthsLegacy(tc.c, tc.load, tc.in)
			if err != nil {
				t.Fatal(err)
			}
			got, err := BillMonths(tc.c, tc.load, tc.in)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%d months != %d", len(got), len(want))
			}
			for i := range got {
				assertBillsIdentical(t, got[i].PeriodStart.Format("2006-01"), got[i], want[i])
			}
		})
	}
}

// TestGoldenWorkerCountsAgree pins the parallel evaluator against the
// sequential one for several pool sizes.
func TestGoldenWorkerCountsAgree(t *testing.T) {
	tc := goldenCases(t)[2] // yearinlife: 12 months, ratchet dependency
	eng, err := NewEngine(tc.c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.BillMonthsWorkers(tc.load, tc.in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8, 64} {
		got, err := eng.BillMonthsWorkers(tc.load, tc.in, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d months != %d", workers, len(got), len(want))
		}
		for i := range got {
			assertBillsIdentical(t, got[i].PeriodStart.Format("2006-01"), got[i], want[i])
		}
	}
}
