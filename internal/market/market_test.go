package market

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/grid"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.July, 18, 0, 0, 0, 0, time.UTC)

func TestPriceModelValidate(t *testing.T) {
	good := DefaultPriceModel(1000)
	if err := good.Validate(); err != nil {
		t.Errorf("default model should validate: %v", err)
	}
	bad := []PriceModel{
		{Capacity: 0, Gamma: 1, ScarcityThreshold: 0.9},
		{Capacity: 1000, Base: -1, Gamma: 1, ScarcityThreshold: 0.9},
		{Capacity: 1000, Gamma: 0.5, ScarcityThreshold: 0.9},
		{Capacity: 1000, Gamma: 1, ScarcityThreshold: 0},
		{Capacity: 1000, Gamma: 1, ScarcityThreshold: 1.5},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPriceAtMonotone(t *testing.T) {
	m := DefaultPriceModel(1000)
	prev := units.EnergyPrice(-1)
	for u := 0.0; u <= 1.2; u += 0.05 {
		p := m.PriceAt(units.Power(1000 * u))
		if p < prev {
			t.Fatalf("price must be monotone in load: %v then %v at u=%.2f", prev, p, u)
		}
		prev = p
	}
	// Negative net load clamps to base.
	if got := m.PriceAt(-100); got != m.Base {
		t.Errorf("negative load price = %v, want base", got)
	}
}

func TestPriceRealism(t *testing.T) {
	m := DefaultPriceModel(1000)
	offpeak := m.PriceAt(500) // 50% utilization
	if offpeak.PerMWh() < 15 || offpeak.PerMWh() > 80 {
		t.Errorf("off-peak price = %.1f /MWh, want 15–80", offpeak.PerMWh())
	}
	scarcity := m.PriceAt(990) // 99% utilization
	if scarcity.PerMWh() < 300 {
		t.Errorf("scarcity price = %.1f /MWh, want > 300", scarcity.PerMWh())
	}
}

func TestPriceSeriesAndDayAhead(t *testing.T) {
	// Net load with intra-hour volatility: RT should see the spike,
	// DA (hourly averaged) should not fully.
	samples := make([]units.Power, 96)
	for i := range samples {
		samples[i] = 600
	}
	samples[40] = 990 // one 15-min spike
	net := timeseries.MustNewPower(t0, 15*time.Minute, samples)
	m := DefaultPriceModel(1000)

	rt, err := m.PriceSeries(net)
	if err != nil {
		t.Fatal(err)
	}
	da, err := m.DayAheadPrice(net)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != 96 || da.Len() != 96 {
		t.Fatal("series lengths")
	}
	if rt.At(40) <= da.At(40) {
		t.Errorf("RT price %v at the spike should exceed DA %v", rt.At(40), da.At(40))
	}
	// Away from the spike they agree closely.
	if math.Abs(float64(rt.At(10)-da.At(10))) > 1e-9 {
		t.Errorf("flat hours should match: rt %v da %v", rt.At(10), da.At(10))
	}
}

func TestPriceSeriesValidates(t *testing.T) {
	net := timeseries.ConstantPower(t0, time.Hour, 4, 500)
	bad := PriceModel{Capacity: 0, Gamma: 1, ScarcityThreshold: 0.9}
	if _, err := bad.PriceSeries(net); err == nil {
		t.Error("invalid model should fail")
	}
	if _, err := bad.DayAheadPrice(net); err == nil {
		t.Error("invalid model should fail for DA")
	}
	// Hourly input passes through DayAhead unchanged.
	m := DefaultPriceModel(1000)
	da, err := m.DayAheadPrice(net)
	if err != nil || da.Len() != 4 {
		t.Errorf("hourly DA: %v (%v)", da, err)
	}
}

func TestProgramKindNames(t *testing.T) {
	for _, k := range []ProgramKind{EmergencyDR, CapacityBidding, Regulation, CriticalPeakPricing} {
		if k.String() == "" {
			t.Errorf("kind %d should have a name", int(k))
		}
	}
	if ProgramKind(9).String() == "" {
		t.Error("unknown kind should format")
	}
	if !EmergencyDR.IncentiveBased() || CriticalPeakPricing.IncentiveBased() {
		t.Error("incentive-based classification wrong")
	}
}

func TestProgramValidate(t *testing.T) {
	good := &Program{Kind: EmergencyDR, CommittedReduction: 1000, EnergyIncentive: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("good program: %v", err)
	}
	bad := []*Program{
		{CommittedReduction: 0},
		{CommittedReduction: 1000, EnergyIncentive: -1},
		{CommittedReduction: 1000, Notice: -time.Minute},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDispatchFromStress(t *testing.T) {
	p := &Program{
		Kind: EmergencyDR, CommittedReduction: 2000,
		MaxEventDuration: time.Hour, MaxEventsPerPeriod: 2,
	}
	stress := []grid.StressEvent{
		{Start: t0, Duration: 3 * time.Hour},
		{Start: t0.Add(10 * time.Hour), Duration: 30 * time.Minute},
		{Start: t0.Add(20 * time.Hour), Duration: time.Hour},
	}
	events := p.DispatchFromStress(stress)
	if len(events) != 2 {
		t.Fatalf("events = %d, want capped at 2", len(events))
	}
	if events[0].Duration != time.Hour {
		t.Errorf("duration should clip to max: %v", events[0].Duration)
	}
	if events[1].Duration != 30*time.Minute {
		t.Errorf("short event should keep its duration: %v", events[1].Duration)
	}
	if events[0].RequestedReduction != 2000 {
		t.Errorf("requested = %v", events[0].RequestedReduction)
	}
	if !events[0].End().Equal(t0.Add(time.Hour)) {
		t.Errorf("End = %v", events[0].End())
	}
	// No limits: all stress events dispatch at full duration.
	p2 := &Program{Kind: EmergencyDR, CommittedReduction: 2000}
	if got := p2.DispatchFromStress(stress); len(got) != 3 || got[0].Duration != 3*time.Hour {
		t.Errorf("unlimited dispatch = %+v", got)
	}
}

func TestSettleFullDelivery(t *testing.T) {
	p := &Program{
		Kind: EmergencyDR, CommittedReduction: 2000,
		EnergyIncentive: 0.50, UnderDeliveryPenalty: 1.00,
	}
	baseline := timeseries.ConstantPower(t0, 15*time.Minute, 8, 10000)
	// Actual drops by exactly 2 MW during the one-hour event (samples 2–5).
	actualSamples := []units.Power{10000, 10000, 8000, 8000, 8000, 8000, 10000, 10000}
	actual := timeseries.MustNewPower(t0, 15*time.Minute, actualSamples)
	events := []Event{{Start: t0.Add(30 * time.Minute), Duration: time.Hour, RequestedReduction: 2000}}

	s, err := p.Settle(baseline, actual, events)
	if err != nil {
		t.Fatal(err)
	}
	// Curtailed: 2 MW × 1 h = 2 MWh.
	if math.Abs(s.CurtailedEnergy.MWh()-2) > 1e-9 {
		t.Errorf("curtailed = %v", s.CurtailedEnergy)
	}
	if s.ShortfallEnergy != 0 {
		t.Errorf("shortfall = %v, want 0", s.ShortfallEnergy)
	}
	if s.EnergyPayment != units.CurrencyUnits(1000) {
		t.Errorf("payment = %v, want 1000", s.EnergyPayment)
	}
	if s.Penalty != 0 || s.Net != s.EnergyPayment {
		t.Errorf("net = %v", s.Net)
	}
}

func TestSettleUnderDelivery(t *testing.T) {
	p := &Program{
		Kind: CapacityBidding, CommittedReduction: 2000,
		EnergyIncentive: 0.50, AvailabilityIncentive: 5, UnderDeliveryPenalty: 1.00,
	}
	baseline := timeseries.ConstantPower(t0, time.Hour, 2, 10000)
	// Only 1 MW delivered of 2 MW committed for one hour.
	actual := timeseries.MustNewPower(t0, time.Hour, []units.Power{9000, 10000})
	events := []Event{{Start: t0, Duration: time.Hour, RequestedReduction: 2000}}
	s, err := p.Settle(baseline, actual, events)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.CurtailedEnergy.MWh()-1) > 1e-9 {
		t.Errorf("curtailed = %v", s.CurtailedEnergy)
	}
	if math.Abs(s.ShortfallEnergy.MWh()-1) > 1e-9 {
		t.Errorf("shortfall = %v", s.ShortfallEnergy)
	}
	// Energy: 1 MWh × 0.5 = 500; availability: 2000 kW × 5 = 10000;
	// penalty: 1 MWh × 1.0 = 1000.
	if s.Net != units.CurrencyUnits(500+10000-1000) {
		t.Errorf("net = %v", s.Net)
	}
}

func TestSettleIgnoresIncreases(t *testing.T) {
	p := &Program{Kind: EmergencyDR, CommittedReduction: 1000, EnergyIncentive: 0.5}
	baseline := timeseries.ConstantPower(t0, time.Hour, 1, 10000)
	actual := timeseries.ConstantPower(t0, time.Hour, 1, 12000) // consumed MORE
	events := []Event{{Start: t0, Duration: time.Hour, RequestedReduction: 1000}}
	s, err := p.Settle(baseline, actual, events)
	if err != nil {
		t.Fatal(err)
	}
	if s.CurtailedEnergy != 0 {
		t.Errorf("curtailed = %v, want 0 (no negative curtailment)", s.CurtailedEnergy)
	}
	if math.Abs(s.ShortfallEnergy.MWh()-1) > 1e-9 {
		t.Errorf("shortfall = %v, want full commitment", s.ShortfallEnergy)
	}
}

func TestSettleErrors(t *testing.T) {
	bad := &Program{CommittedReduction: 0}
	base := timeseries.ConstantPower(t0, time.Hour, 2, 1)
	if _, err := bad.Settle(base, base, nil); err == nil {
		t.Error("invalid program should fail")
	}
	good := &Program{CommittedReduction: 1000}
	other := timeseries.ConstantPower(t0, time.Hour, 3, 1)
	if _, err := good.Settle(base, other, nil); err == nil {
		t.Error("misaligned series should fail")
	}
}

// Property: settlement net is monotone in delivered reduction — deliver
// more, never earn less.
func TestQuickSettleMonotone(t *testing.T) {
	p := &Program{
		Kind: EmergencyDR, CommittedReduction: 2000,
		EnergyIncentive: 0.5, UnderDeliveryPenalty: 0.8,
	}
	baseline := timeseries.ConstantPower(t0, time.Hour, 1, 10000)
	events := []Event{{Start: t0, Duration: time.Hour, RequestedReduction: 2000}}
	net := func(delivered units.Power) units.Money {
		actual := timeseries.ConstantPower(t0, time.Hour, 1, 10000-delivered)
		s, err := p.Settle(baseline, actual, events)
		if err != nil {
			t.Fatal(err)
		}
		return s.Net
	}
	f := func(a, b uint16) bool {
		da, db := units.Power(a%3000), units.Power(b%3000)
		if da > db {
			da, db = db, da
		}
		return net(da) <= net(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: prices from a profile are bounded by prices at its min/max.
func TestQuickPriceSeriesBounds(t *testing.T) {
	m := DefaultPriceModel(10000)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v % 12000)
		}
		net := timeseries.MustNewPower(t0, time.Hour, samples)
		ps, err := m.PriceSeries(net)
		if err != nil {
			return false
		}
		mn, _ := net.Min()
		pk, _, _ := net.Peak()
		lo, hi := m.PriceAt(mn), m.PriceAt(pk)
		for i := 0; i < ps.Len(); i++ {
			if ps.At(i) < lo-1e-12 || ps.At(i) > hi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
