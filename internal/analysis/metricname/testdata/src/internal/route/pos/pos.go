// Package pos holds metricname true positives for the router scope
// (in scope: its package path contains internal/route).
package pos

import (
	"fmt"
	"io"
)

type snapshot struct{}

func (snapshot) WriteProm(w io.Writer, name, labels string) {}

func emit(w io.Writer, s snapshot) {
	fmt.Fprintf(w, "scroute_BadName 1\n")                           // want `metric name "scroute_BadName" does not match`
	fmt.Fprintf(w, "# TYPE scroute_requests counter\n")             // want `counter "scroute_requests" must end in _total`
	fmt.Fprintf(w, "# TYPE scroute_healthy_total gauge\n")          // want `gauge "scroute_healthy_total" must not end in _total`
	fmt.Fprintf(w, "# TYPE scroute_upstream histogram\n")           // want `histogram "scroute_upstream" must be named for its unit`
	fmt.Fprintf(w, "scroute_upstream_seconds_bucket{le=\"1\"} 3\n") // want `hand-rolled histogram series "scroute_upstream_seconds_bucket"`
	s.WriteProm(w, "scroute_upstream", "")                          // want `histogram family "scroute_upstream" must be named for its unit`
	// The brownout counters carry the same _total obligation, and the
	// budget token level is a gauge, not a counter.
	fmt.Fprintf(w, "# TYPE scroute_hedges counter\n")                  // want `counter "scroute_hedges" must end in _total`
	fmt.Fprintf(w, "# TYPE scroute_retry_budget_exhausted counter\n")  // want `counter "scroute_retry_budget_exhausted" must end in _total`
	fmt.Fprintf(w, "# TYPE scroute_deadline_expired counter\n")        // want `counter "scroute_deadline_expired" must end in _total`
	fmt.Fprintf(w, "# TYPE scroute_retry_budget_tokens_total gauge\n") // want `gauge "scroute_retry_budget_tokens_total" must not end in _total`
	// The router must not mint backend series: side-by-side scrapes
	// would collide.
	fmt.Fprintf(w, "scserved_requests_total 1\n") // want `metric name "scserved_requests_total" is outside this package's namespace`
}
