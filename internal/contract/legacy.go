package contract

// Legacy multi-pass billing: each component scans the load profile
// independently (tariff costs, billed demand, powerband excursions and
// emergency exposure are each a separate traversal). Retained as the
// reference implementation the single-pass Engine is golden-tested
// against, and as the baseline for the BenchmarkBillYear* pair.

import (
	"errors"
	"fmt"

	"repro/internal/timeseries"
)

// ComputeBillLegacy prices one billing period with one pass per
// component. It produces exactly the same Bill as Engine.Bill.
func ComputeBillLegacy(c *Contract, load *timeseries.PowerSeries, in BillingInput) (*Bill, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if load == nil || load.Len() == 0 {
		return nil, errors.New("contract: cannot bill an empty load profile")
	}
	peak, _, err := load.Peak()
	if err != nil {
		return nil, err
	}
	bill := &Bill{
		Contract:    c.Name,
		PeriodStart: load.Start(),
		PeriodEnd:   load.End(),
		Energy:      load.Energy(),
		PeakDemand:  peak,
	}
	for _, t := range c.Tariffs {
		amount := t.Cost(load)
		bill.Lines = append(bill.Lines, LineItem{
			Component:   tariffComponent(t),
			Description: t.Describe(),
			Quantity:    load.Energy().String(),
			Amount:      amount,
		})
	}
	for _, dc := range c.DemandCharges {
		billed := dc.BilledDemand(load, in.HistoricalPeak)
		bill.Lines = append(bill.Lines, LineItem{
			Component:   CompDemandCharge,
			Description: dc.Describe(),
			Quantity:    billed.String(),
			Amount:      dc.Price.Cost(billed),
		})
	}
	for _, pb := range c.Powerbands {
		vs := pb.Violations(load)
		bill.Lines = append(bill.Lines, LineItem{
			Component:   CompPowerband,
			Description: pb.Describe(),
			Quantity:    fmt.Sprintf("%d excursions", len(vs)),
			Amount:      pb.CostOfViolations(vs),
		})
	}
	for _, o := range c.Emergencies {
		cost := o.Cost(load, in.Events)
		bill.Lines = append(bill.Lines, LineItem{
			Component:   CompEmergencyDR,
			Description: o.Describe(),
			Quantity:    fmt.Sprintf("%d events", len(in.Events)),
			Amount:      cost,
		})
	}
	for _, fee := range c.Fees {
		bill.Lines = append(bill.Lines, LineItem{
			Component:   CompFlatFee,
			Description: fee.Name,
			Quantity:    "flat",
			Amount:      fee.Amount,
		})
	}
	for _, l := range bill.Lines {
		bill.Total += l.Amount
	}
	return bill, nil
}

// BillMonthsLegacy bills each calendar month sequentially, threading
// the running historical peak into ratchet charges. It produces exactly
// the same bills as Engine.BillMonths.
func BillMonthsLegacy(c *Contract, load *timeseries.PowerSeries, in BillingInput) ([]*Bill, error) {
	months := load.SplitMonths()
	bills := make([]*Bill, 0, len(months))
	historical := in.HistoricalPeak
	for _, m := range months {
		bi := BillingInput{HistoricalPeak: historical, Events: in.Events}
		b, err := ComputeBillLegacy(c, m, bi)
		if err != nil {
			return nil, err
		}
		bills = append(bills, b)
		if b.PeakDemand > historical {
			historical = b.PeakDemand
		}
	}
	return bills, nil
}
