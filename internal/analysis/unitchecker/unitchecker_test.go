package unitchecker_test

// End-to-end protocol test: build the real cmd/scvet binary and drive
// it through the real `go vet -vettool` machinery against synthetic
// modules in a temp dir — one with a violation (vet must fail and name
// it), one clean (vet must exit 0). This is the test that would catch
// a drift between unitchecker and cmd/go's vettool contract (-V=full
// version-line format, -flags JSON, per-unit .cfg runs, exit codes).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/registry"
	"repro/internal/analysis/unitchecker"
)

func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

func goCmd(t *testing.T, dir string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GO111MODULE=on", "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestGoVetProtocol(t *testing.T) {
	tmp := t.TempDir()
	scvet := filepath.Join(tmp, "scvet")

	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if out, err := goCmd(t, wd, "build", "-o", scvet, "repro/cmd/scvet"); err != nil {
		t.Fatalf("building scvet: %v\n%s", err, out)
	}

	t.Run("dirty module fails with a named diagnostic", func(t *testing.T) {
		dir := filepath.Join(tmp, "dirty")
		writeTree(t, dir, map[string]string{
			"go.mod": "module example.com/dirty\n\ngo 1.22\n",
			"internal/billing/clock.go": `package billing

import "time"

// Stamp reads the wall clock inside a deterministic-billing package
// path: scvet must fail the build.
func Stamp() time.Time { return time.Now() }
`,
			// One violation per PR-10 analyzer, in a scope-aligned path:
			// the e2e run must name all four.
			"internal/route/fleet.go": `package route

import (
	"context"
	"net/http"
	"time"
)

func spawn() {
	go func() {
		for {
		}
	}()
}

func wait(d time.Duration) {
	t := time.NewTimer(d)
	<-t.C
}

func fetch(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	_ = resp.Status
	return nil
}

func handle(ctx context.Context) error {
	return work(context.Background())
}

func work(ctx context.Context) error { return ctx.Err() }
`,
		})
		out, err := goCmd(t, dir, "vet", "-vettool="+scvet, "./...")
		if err == nil {
			t.Fatalf("go vet succeeded on a module with a violation; output:\n%s", out)
		}
		if !strings.Contains(out, "nondeterm") || !strings.Contains(out, "time.Now") {
			t.Errorf("diagnostic must name the analyzer and the offense; got:\n%s", out)
		}
		if !strings.Contains(out, "clock.go:7") {
			t.Errorf("diagnostic must carry a file:line position; got:\n%s", out)
		}
		for _, analyzer := range []string{"goroleak", "timerstop", "respclose", "ctxflow"} {
			if !strings.Contains(out, "["+analyzer+"]") {
				t.Errorf("dirty module must trip %s; got:\n%s", analyzer, out)
			}
		}
	})

	t.Run("suppressed and clean module passes", func(t *testing.T) {
		dir := filepath.Join(tmp, "clean")
		writeTree(t, dir, map[string]string{
			"go.mod": "module example.com/clean\n\ngo 1.22\n",
			"internal/billing/clock.go": `package billing

import "time"

type Config struct{ Now func() time.Time }

// Injected-clock wiring: a reference to time.Now is the blessed idiom.
func (c Config) withDefaults() Config {
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

//lint:scvet-ignore nondeterm exercised by the protocol test: reasoned ignores suppress
func Sentinel() time.Time { return time.Now() }
`,
			// The compliant counterparts of the dirty module's fleet
			// shapes: the e2e run must stay quiet on all four.
			"internal/route/fleet.go": `package route

import (
	"context"
	"io"
	"net/http"
	"time"
)

func spawn(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func wait(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func fetch(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}
`,
			"cmd/tool/main.go": `package main

import "fmt"

func main() { fmt.Println("ok") }
`,
		})
		out, err := goCmd(t, dir, "vet", "-vettool="+scvet, "./...")
		if err != nil {
			t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
		}
	})
}

// TestIgnoresInventory drives the suppression ledger over a synthetic
// module covering all four directive states: active (it suppressed a
// real finding), stale (reasoned but nothing to suppress), malformed
// (no reason), and unknown analyzer. Strict mode must fail on the
// dirty ledger and pass once only the active directive remains.
func TestIgnoresInventory(t *testing.T) {
	tmp := t.TempDir()
	dir := filepath.Join(tmp, "ledger")
	writeTree(t, dir, map[string]string{
		"go.mod": "module example.com/ledger\n\ngo 1.22\n",
		"internal/route/daemon.go": `package route

func spawnDaemon() {
	//lint:scvet-ignore goroleak metrics flusher is a process-lifetime daemon
	go func() {
		for {
		}
	}()
}

func helper() int {
	//lint:scvet-ignore timerstop the timer this blessed was removed long ago
	return 1
}

func bad() int {
	//lint:scvet-ignore respclose
	return 2
}

func typo() int {
	//lint:scvet-ignore gorleak reason with a misspelled analyzer name
	return 3
}
`,
	})

	var out strings.Builder
	code, err := unitchecker.RunIgnores(&out, dir, false, registry.All())
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("non-strict inventory exit = %d, want 0", code)
	}
	ledger := out.String()
	for _, want := range []string{
		"daemon.go:4: goroleak — metrics flusher is a process-lifetime daemon",
		"daemon.go:12: timerstop — the timer this blessed was removed long ago [STALE",
		"daemon.go:17: respclose — [MALFORMED",
		"daemon.go:22: gorleak — reason with a misspelled analyzer name [UNKNOWN ANALYZER]",
		"4 directive(s): 1 active, 1 stale, 1 malformed, 1 unknown",
	} {
		if !strings.Contains(ledger, want) {
			t.Errorf("ledger missing %q; got:\n%s", want, ledger)
		}
	}
	if strings.Contains(ledger, "goroleak — metrics flusher is a process-lifetime daemon [") {
		t.Errorf("the used directive must not carry a marker; got:\n%s", ledger)
	}

	out.Reset()
	code, err = unitchecker.RunIgnores(&out, dir, true, registry.All())
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("strict inventory over a dirty ledger exit = %d, want 1", code)
	}

	// With only the active directive left, strict passes.
	clean := filepath.Join(tmp, "cleanledger")
	writeTree(t, clean, map[string]string{
		"go.mod": "module example.com/cleanledger\n\ngo 1.22\n",
		"internal/route/daemon.go": `package route

func spawnDaemon() {
	//lint:scvet-ignore goroleak metrics flusher is a process-lifetime daemon
	go func() {
		for {
		}
	}()
}
`,
	})
	out.Reset()
	code, err = unitchecker.RunIgnores(&out, clean, true, registry.All())
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("strict inventory over a clean ledger exit = %d, want 0; ledger:\n%s", code, out.String())
	}
}
