package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPowerConversions(t *testing.T) {
	p := 12.5 * Megawatt
	if got := p.KW(); got != 12500 {
		t.Errorf("KW() = %v, want 12500", got)
	}
	if got := p.MW(); got != 12.5 {
		t.Errorf("MW() = %v, want 12.5", got)
	}
	if got := (2 * Kilowatt).W(); got != 2000 {
		t.Errorf("W() = %v, want 2000", got)
	}
}

func TestPowerString(t *testing.T) {
	cases := []struct {
		p    Power
		want string
	}{
		{500 * Watt, "500.0 W"},
		{42 * Kilowatt, "42.00 kW"},
		{12.5 * Megawatt, "12.50 MW"},
		{2.5 * Gigawatt, "2.50 GW"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Power(%v).String() = %q, want %q", float64(c.p), got, c.want)
		}
	}
}

func TestPowerClamp(t *testing.T) {
	if got := Power(5).Clamp(10, 20); got != 10 {
		t.Errorf("Clamp below = %v, want 10", got)
	}
	if got := Power(25).Clamp(10, 20); got != 20 {
		t.Errorf("Clamp above = %v, want 20", got)
	}
	if got := Power(15).Clamp(10, 20); got != 15 {
		t.Errorf("Clamp inside = %v, want 15", got)
	}
}

func TestPowerExport(t *testing.T) {
	if Power(5).IsExport() {
		t.Error("positive power should not be export")
	}
	if !Power(-5).IsExport() {
		t.Error("negative power should be export")
	}
}

func TestEnergyOverAndAverageRoundTrip(t *testing.T) {
	p := 3 * Megawatt
	d := 90 * time.Minute
	e := p.Over(d)
	if got, want := e.MWh(), 4.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("Over: got %v MWh, want %v", got, want)
	}
	back := e.Average(d)
	if math.Abs(back.KW()-p.KW()) > 1e-9 {
		t.Errorf("Average round-trip: got %v, want %v", back, p)
	}
}

func TestEnergyAveragePanicsOnZeroDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero duration")
		}
	}()
	Energy(1).Average(0)
}

func TestEnergyString(t *testing.T) {
	cases := []struct {
		e    Energy
		want string
	}{
		{500 * WattHour, "500.0 Wh"},
		{42 * KilowattHour, "42.00 kWh"},
		{3.25 * MegawattHour, "3.25 MWh"},
		{1.5 * GigawattHour, "1.50 GWh"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("Energy.String() = %q, want %q", got, c.want)
		}
	}
}

func TestRampBetween(t *testing.T) {
	r := RampBetween(2*Megawatt, 8*Megawatt, 3*time.Minute)
	if got, want := r.MWPerMin(), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ramp = %v MW/min, want %v", got, want)
	}
	down := RampBetween(8*Megawatt, 2*Megawatt, 3*time.Minute)
	if down >= 0 {
		t.Errorf("downward ramp should be negative, got %v", down)
	}
}

func TestRampBetweenPanicsOnZeroDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RampBetween(0, 1, 0)
}

func TestMoneyExactness(t *testing.T) {
	// A classic float trap: 0.1 + 0.2. In micro-units this is exact.
	a := MoneyFromFloat(0.1)
	b := MoneyFromFloat(0.2)
	if got := a + b; got != MoneyFromFloat(0.3) {
		t.Errorf("0.1+0.2 = %v, want 0.3", got)
	}
}

func TestMoneyString(t *testing.T) {
	cases := []struct {
		m    Money
		want string
	}{
		{CurrencyUnits(0), "0.00"},
		{Cents(5), "0.05"},
		{CurrencyUnits(1234567) + Cents(89), "1,234,567.89"},
		{-Cents(250), "-2.50"},
		{CurrencyUnits(999), "999.00"},
		{CurrencyUnits(1000), "1,000.00"},
	}
	for _, c := range cases {
		if got := c.m.String(); got != c.want {
			t.Errorf("Money(%d).String() = %q, want %q", int64(c.m), got, c.want)
		}
	}
}

func TestMoneyFromFloatRounding(t *testing.T) {
	if got := MoneyFromFloat(0.0000005); got != 1 {
		t.Errorf("round half up: got %d, want 1", got)
	}
	if got := MoneyFromFloat(-0.0000005); got != -1 {
		t.Errorf("round half away from zero: got %d, want -1", got)
	}
}

func TestEnergyPriceCost(t *testing.T) {
	p := EnergyPrice(0.085) // 8.5 cents/kWh
	cost := p.Cost(1000 * KilowattHour)
	if got, want := cost, CurrencyUnits(85); got != want {
		t.Errorf("cost = %v, want %v", got, want)
	}
	if got := p.PerMWh(); math.Abs(got-85) > 1e-9 {
		t.Errorf("PerMWh = %v, want 85", got)
	}
}

func TestDemandPriceCost(t *testing.T) {
	p := DemandPrice(12) // 12 currency units per kW-month
	cost := p.Cost(15 * Megawatt)
	if got, want := cost, CurrencyUnits(180000); got != want {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

func TestParsePower(t *testing.T) {
	cases := []struct {
		in   string
		want Power
	}{
		{"12.5 MW", 12500},
		{"950kW", 950},
		{"40 kW", 40},
		{"60MW", 60000},
		{"700 W", 0.7},
		{"1 gw", 1e6},
		{"-2 MW", -2000},
	}
	for _, c := range cases {
		got, err := ParsePower(c.in)
		if err != nil {
			t.Errorf("ParsePower(%q) error: %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-9 {
			t.Errorf("ParsePower(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParsePowerErrors(t *testing.T) {
	for _, in := range []string{"", "MW", "12.5", "12.5 XW", "abc MW"} {
		if _, err := ParsePower(in); err == nil {
			t.Errorf("ParsePower(%q) should fail", in)
		}
	}
}

func TestParseEnergy(t *testing.T) {
	cases := []struct {
		in   string
		want Energy
	}{
		{"1.2 GWh", 1.2e6},
		{"350MWh", 350000},
		{"42 kWh", 42},
		{"500 Wh", 0.5},
	}
	for _, c := range cases {
		got, err := ParseEnergy(c.in)
		if err != nil {
			t.Errorf("ParseEnergy(%q) error: %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-6 {
			t.Errorf("ParseEnergy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseEnergyErrors(t *testing.T) {
	for _, in := range []string{"", "kWh", "42 kW", "x kWh"} {
		if _, err := ParseEnergy(in); err == nil {
			t.Errorf("ParseEnergy(%q) should fail", in)
		}
	}
}

func TestSumMoney(t *testing.T) {
	if got := SumMoney(); got != 0 {
		t.Errorf("empty sum = %v, want 0", got)
	}
	if got := SumMoney(Cents(1), Cents(2), Cents(3)); got != Cents(6) {
		t.Errorf("sum = %v, want 6 cents", got)
	}
}

func TestMinMaxPower(t *testing.T) {
	if got := MaxPower(3, 7); got != 7 {
		t.Errorf("MaxPower = %v", got)
	}
	if got := MinPower(3, 7); got != 3 {
		t.Errorf("MinPower = %v", got)
	}
}

// Property: power→energy→power round trip is the identity for any positive
// duration and finite power.
func TestQuickPowerEnergyRoundTrip(t *testing.T) {
	f := func(kw float64, minutes uint16) bool {
		if math.IsNaN(kw) || math.IsInf(kw, 0) || math.Abs(kw) > 1e9 {
			return true // out of modeled domain
		}
		d := time.Duration(int(minutes)+1) * time.Minute
		p := Power(kw)
		back := p.Over(d).Average(d)
		return math.Abs(float64(back-p)) <= 1e-6*math.Max(1, math.Abs(kw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Money addition is associative and commutative (it is int64
// arithmetic), and String round-trips sign.
func TestQuickMoneyAdditionExact(t *testing.T) {
	f := func(a, b, c int32) bool {
		ma, mb, mc := Money(a), Money(b), Money(c)
		return (ma+mb)+mc == ma+(mb+mc) && ma+mb == mb+ma
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MoneyFromFloat(m.Float()) == m for all in-range Money values
// (the float64 mantissa covers int64 values up to 2^53 exactly).
func TestQuickMoneyFloatRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		m := Money(v) * 100 // widen range a bit
		return MoneyFromFloat(m.Float()) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EnergyPrice.Cost is additive in energy within rounding slack.
func TestQuickEnergyCostAdditive(t *testing.T) {
	f := func(priceMilli uint16, e1, e2 uint32) bool {
		p := EnergyPrice(float64(priceMilli) / 1000)
		a := Energy(e1 % 1_000_000)
		b := Energy(e2 % 1_000_000)
		sum := p.Cost(a + b)
		parts := p.Cost(a) + p.Cost(b)
		diff := sum - parts
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // at most one micro-unit rounding per part
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGroupThousands(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		999:        "999",
		1000:       "1,000",
		12345:      "12,345",
		1234567:    "1,234,567",
		1000000000: "1,000,000,000",
	}
	for in, want := range cases {
		if got := groupThousands(in); got != want {
			t.Errorf("groupThousands(%d) = %q, want %q", in, got, want)
		}
	}
}
