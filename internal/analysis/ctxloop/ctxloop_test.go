package ctxloop_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxloop"
)

func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxloop.Analyzer,
		"internal/billing/pos",
		"internal/billing/neg",
		"internal/optimize/pos",
		"internal/optimize/neg",
		"internal/route/pos",
		"internal/route/neg",
		"outofscope/sweep",
	)
}
