package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/contingency"
)

func writeFiles(t *testing.T) (plan, site string) {
	t.Helper()
	dir := t.TempDir()
	plan = filepath.Join(dir, "plan.json")
	spec := &contingency.PlanSpec{
		Name: "test-plan",
		Levels: []contingency.LevelSpec{
			{Name: "watch", Trigger: "price-above", PriceThreshold: 0.15,
				Strategy: contingency.StrategySpec{Type: "shed", Fraction: 0.05}},
			{Name: "emergency", Trigger: "emergency-declared",
				Strategy: contingency.StrategySpec{Type: "cap", CapKW: 9000}},
		},
	}
	data, err := contingency.EncodePlanSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(plan, data, 0o644); err != nil {
		t.Fatal(err)
	}
	site = filepath.Join(dir, "site.json")
	contractSpec := `{"name":"plan-site","tariffs":[{"type":"fixed","rate":0.06}],"emergencies":[{"cap_kw":9000,"penalty":2.0}]}`
	if err := os.WriteFile(site, []byte(contractSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return plan, site
}

func TestRunPlan(t *testing.T) {
	plan, site := writeFiles(t)
	if err := run(plan, site, 12, 2, 1, 11); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlanNoEvents(t *testing.T) {
	plan, site := writeFiles(t)
	if err := run(plan, site, 12, 0, 0, 11); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlanValidation(t *testing.T) {
	plan, site := writeFiles(t)
	if err := run("", site, 12, 1, 1, 11); err == nil {
		t.Error("missing plan should fail")
	}
	if err := run(plan, "", 12, 1, 1, 11); err == nil {
		t.Error("missing contract should fail")
	}
	if err := run("/nonexistent.json", site, 12, 1, 1, 11); err == nil {
		t.Error("missing plan file should fail")
	}
	if err := run(plan, "/nonexistent.json", 12, 1, 1, 11); err == nil {
		t.Error("missing contract file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if err := run(bad, site, 12, 1, 1, 11); err == nil {
		t.Error("bad plan JSON should fail")
	}
	if err := run(plan, bad, 12, 1, 1, 11); err == nil {
		t.Error("bad contract JSON should fail")
	}
}
