// Positive fixtures: response bodies leaked or closed without a
// drain. Package path is scope-aligned with internal/feed.
package pos

import (
	"io"
	"net/http"
)

// Fall-through end of function with an open body.
func fallThrough(client *http.Client, req *http.Request) error {
	resp, err := client.Do(req) // want `response body resp.Body is not closed on every exit path`
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// Closed on the happy path, leaked on the early return.
func earlyReturn(client *http.Client, req *http.Request) (int, error) {
	resp, err := client.Do(req) // want `response body resp.Body is not closed on every exit path`
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Only one switch case closes.
func switchLeak(client *http.Client, req *http.Request, mode int) {
	resp, err := client.Do(req) // want `response body resp.Body is not closed on every exit path`
	if err != nil {
		return
	}
	switch mode {
	case 0:
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	case 1:
		_ = resp.StatusCode
	}
}

// http.Get result discarded entirely.
func discarded(url string) {
	_, _ = http.Get(url) // want `response is discarded without closing its body`
}

// Closed without any read: the transport cannot reuse the connection.
func undrained(client *http.Client, req *http.Request) (int, error) {
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close() // want `closed without being drained`
	return resp.StatusCode, nil
}
