package exp

// E18: the cost-causation economics behind demand charges (§1's opening
// argument). E19: the Top500 power landscape the paper scopes its study
// by (§1: 40 kW to 10+ MW, focus on the Top50).

import (
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/hpc"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func init() {
	register("E18", runE18)
	register("E19", runE19)
}

// E18Result carries both allocations for the three-consumer feeder.
type E18Result struct {
	Coincident    *grid.Allocation
	NonCoincident *grid.Allocation
}

// RunE18 builds a feeder with three consumers — a flat SC, an evening-
// peaking office, a night-peaking industrial — and allocates one unit of
// capacity cost under both rules.
func RunE18() (*E18Result, error) {
	mk := func(kw ...float64) *timeseries.PowerSeries {
		samples := make([]units.Power, len(kw))
		for i, v := range kw {
			samples[i] = units.Power(v)
		}
		s, err := timeseries.NewPower(expStart, 3*time.Hour, samples)
		if err != nil {
			panic(err)
		}
		return s
	}
	// Eight 3-hour blocks of one day.
	consumers := []grid.Consumer{
		{Name: "supercomputer (flat)", Load: mk(10000, 10000, 10000, 10000, 10000, 10000, 10000, 10000)},
		{Name: "office park (evening)", Load: mk(2000, 2000, 5000, 8000, 8000, 12000, 6000, 2000)},
		{Name: "industrial (night)", Load: mk(9000, 9000, 3000, 2000, 2000, 2000, 3000, 9000)},
	}
	cost := units.CurrencyUnits(100000)
	co, err := grid.AllocateCapacityCost(consumers, cost, grid.CoincidentPeak)
	if err != nil {
		return nil, err
	}
	nc, err := grid.AllocateCapacityCost(consumers, cost, grid.NonCoincidentPeak)
	if err != nil {
		return nil, err
	}
	return &E18Result{Coincident: co, NonCoincident: nc}, nil
}

func runE18() (*Exhibit, error) {
	res, err := RunE18()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable(
		fmt.Sprintf("Capacity-cost allocation on a shared feeder (system peak %s)", res.Coincident.SystemPeak),
		"Consumer", "Own peak", "At system peak", "Coincident share", "Demand-charge share")
	for i, s := range res.Coincident.Shares {
		n := res.NonCoincident.Shares[i]
		tbl.AddRow(s.Name, s.OwnPeak.String(), s.AtSystemPeak.String(),
			fmt.Sprintf("%.1f%%", s.Share*100),
			fmt.Sprintf("%.1f%%", n.Share*100))
	}
	return &Exhibit{
		ID:         "E18",
		Title:      "Why demand charges exist — and whom they misprice",
		PaperClaim: "§1: infrastructure is sized to peak demand; demand charges impose a static cost based on peak demand, \"where a consumer that has [a] peakier load profile shares the higher cost of the investment.\"",
		Table:      tbl,
		Notes: []string{
			"Demand charges (non-coincident) approximate cost causation but overcharge consumers whose private peaks are off the system peak — here the night-peaking industrial — and undercharge on-peak contributors; the flat SC pays nearly the same under both rules, which is why the paper's SCs experience demand charges as a stable, structural cost.",
		},
	}, nil
}

// E19Result summarizes the Top500 landscape.
type E19Result struct {
	Rank1    units.Power
	Rank50   units.Power
	Rank167  units.Power
	Rank500  units.Power
	Top50Sum units.Power
	Median   units.Power
}

// RunE19 generates the synthetic Top500 power list.
func RunE19() (*E19Result, error) {
	list, err := hpc.DefaultTop500().Generate()
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(list))
	for i, p := range list {
		xs[i] = float64(p)
	}
	med, err := stats.Quantile(xs, 0.5)
	if err != nil {
		return nil, err
	}
	return &E19Result{
		Rank1:    list[0],
		Rank50:   list[49],
		Rank167:  list[166],
		Rank500:  list[499],
		Top50Sum: hpc.Top50Aggregate(list),
		Median:   units.Power(med),
	}, nil
}

func runE19() (*Exhibit, error) {
	res, err := RunE19()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Synthetic Top500 system-power landscape (anchored to §1's published magnitudes)",
		"Quantity", "Power")
	tbl.AddRow("rank 1", res.Rank1.String())
	tbl.AddRow("rank 50 (study population floor)", res.Rank50.String())
	tbl.AddRow("rank 167 (the paper's 'smaller site')", res.Rank167.String())
	tbl.AddRow("rank 500", res.Rank500.String())
	tbl.AddRow("median", res.Median.String())
	tbl.AddRow("Top50 aggregate", res.Top50Sum.String())
	return &Exhibit{
		ID:         "E19",
		Title:      "The Top500 power landscape the study scopes by",
		PaperClaim: "§1: electricity use varies across the Top500 \"in the range of 40kW to +10MW\"; the study targets the Top50 where grid impact is already significant, plus one representative smaller site (rank 167 on the 2015 list).",
		Table:      tbl,
		Notes: []string{
			"The Top50 aggregate alone is a multi-hundred-MW interruptible-class load — the scale argument for why ESP relationships with these specific sites matter.",
		},
	}, nil
}
