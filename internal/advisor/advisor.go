// Package advisor implements the decision support the paper's discussion
// asks for: "SCs with direct negotiation responsibility over their power
// procurement contracts should seek to influence the implementation of
// these elements in their own contracts" (§5). Given a site's reference
// load and a menu of candidate contract structures, it ranks the
// candidates by annual cost, fits powerband limits to the site's actual
// consumption envelope, and frames the result as renegotiation advice.
package advisor

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// Candidate is one contract structure under consideration.
type Candidate struct {
	Name     string
	Contract *contract.Contract
}

// Scored is one evaluated candidate.
type Scored struct {
	Candidate Candidate
	// Annual is the cost of the reference load under the candidate.
	Annual units.Money
	// DeltaVsBest is the premium over the cheapest candidate.
	DeltaVsBest units.Money
}

// EngineCandidate is a candidate whose contract is already compiled —
// the form long-lived services hand in, so a cached engine is billed
// without recompiling per sweep.
type EngineCandidate struct {
	Name   string
	Engine *contract.Engine
}

// Rank bills the reference load under every candidate and returns them
// cheapest first.
func Rank(candidates []Candidate, load *timeseries.PowerSeries, in contract.BillingInput) ([]Scored, error) {
	compiled := make([]EngineCandidate, 0, len(candidates))
	for _, cand := range candidates {
		// Compile once per candidate; the engine bills all months in a
		// single pass each with the ratchet threaded through.
		eng, err := contract.NewEngine(cand.Contract)
		if err != nil {
			return nil, fmt.Errorf("advisor: candidate %q: %w", cand.Name, err)
		}
		compiled = append(compiled, EngineCandidate{Name: cand.Name, Engine: eng})
	}
	return RankEngines(context.Background(), compiled, load, in)
}

// RankEngines bills the reference load under every pre-compiled
// candidate and returns them cheapest first. Evaluation honours ctx:
// a cancelled sweep stops at the current candidate.
func RankEngines(ctx context.Context, candidates []EngineCandidate, load *timeseries.PowerSeries, in contract.BillingInput) ([]Scored, error) {
	if len(candidates) == 0 {
		return nil, errors.New("advisor: no candidates")
	}
	scored := make([]Scored, 0, len(candidates))
	for _, cand := range candidates {
		bills, err := cand.Engine.BillMonthsCtx(ctx, load, in, 0)
		if err != nil {
			return nil, fmt.Errorf("advisor: candidate %q: %w", cand.Name, err)
		}
		scored = append(scored, Scored{
			Candidate: Candidate{Name: cand.Name, Contract: cand.Engine.Contract()},
			Annual:    contract.TotalOf(bills),
		})
	}
	sort.SliceStable(scored, func(a, b int) bool { return scored[a].Annual < scored[b].Annual })
	best := scored[0].Annual
	for i := range scored {
		scored[i].DeltaVsBest = scored[i].Annual - best
	}
	return scored, nil
}

// FitPowerband chooses the tightest upper limit whose expected penalty
// on the reference load stays at or below budget: it searches the load's
// upper quantiles from tight to loose. The returned band uses the given
// penalty rate and no lower limit. An error is returned when even a
// band at the observed peak (which costs nothing) violates the search
// bounds — which cannot happen with a non-negative budget — or when the
// load is empty.
func FitPowerband(load *timeseries.PowerSeries, penalty units.EnergyPrice, budget units.Money) (*demand.Powerband, error) {
	if load == nil || load.Len() == 0 {
		return nil, errors.New("advisor: empty load")
	}
	if penalty < 0 {
		return nil, errors.New("advisor: penalty must be non-negative")
	}
	if budget < 0 {
		return nil, errors.New("advisor: budget must be non-negative")
	}
	// Search quantiles from tight (p80) to loose (p100).
	for _, q := range []float64{0.80, 0.85, 0.90, 0.95, 0.98, 0.99, 0.995, 1.0} {
		limit, err := load.Percentile(q)
		if err != nil {
			return nil, err
		}
		if limit <= 0 {
			continue
		}
		band, err := demand.NewUpperPowerband(limit, penalty)
		if err != nil {
			return nil, err
		}
		if band.Cost(load) <= budget {
			return band, nil
		}
	}
	// The p100 band costs zero by construction, so this is unreachable
	// unless the whole load is non-positive.
	return nil, errors.New("advisor: load has no positive consumption to band")
}

// Advice frames a ranking as a renegotiation recommendation.
type Advice struct {
	// Current and Best are the site's current structure and the
	// cheapest candidate.
	Current Scored
	Best    Scored
	// AnnualSaving is current minus best (≥ 0).
	AnnualSaving units.Money
	// ShouldRenegotiate is true when a different structure beats the
	// current one by more than the materiality threshold.
	ShouldRenegotiate bool
}

// Advise ranks candidates and compares the named current structure
// against the winner. materiality is the minimum annual saving that
// justifies renegotiation effort.
func Advise(currentName string, candidates []Candidate, load *timeseries.PowerSeries, in contract.BillingInput, materiality units.Money) (*Advice, error) {
	ranked, err := Rank(candidates, load, in)
	if err != nil {
		return nil, err
	}
	return adviceFromRanking(currentName, ranked, materiality)
}

// AdviseEngines is Advise over pre-compiled candidates with
// cancellation, returning the advice together with the full ranking.
func AdviseEngines(ctx context.Context, currentName string, candidates []EngineCandidate, load *timeseries.PowerSeries, in contract.BillingInput, materiality units.Money) (*Advice, []Scored, error) {
	ranked, err := RankEngines(ctx, candidates, load, in)
	if err != nil {
		return nil, nil, err
	}
	advice, err := adviceFromRanking(currentName, ranked, materiality)
	if err != nil {
		return nil, nil, err
	}
	return advice, ranked, nil
}

func adviceFromRanking(currentName string, ranked []Scored, materiality units.Money) (*Advice, error) {
	var current *Scored
	for i := range ranked {
		if ranked[i].Candidate.Name == currentName {
			current = &ranked[i]
			break
		}
	}
	if current == nil {
		return nil, fmt.Errorf("advisor: current structure %q is not among the candidates", currentName)
	}
	a := &Advice{Current: *current, Best: ranked[0]}
	a.AnnualSaving = current.Annual - ranked[0].Annual
	a.ShouldRenegotiate = a.AnnualSaving > materiality
	return a, nil
}

// String renders the advice.
func (a *Advice) String() string {
	if !a.ShouldRenegotiate {
		return fmt.Sprintf("keep %q: no candidate beats it materially (best alternative saves %s/yr)",
			a.Current.Candidate.Name, a.AnnualSaving)
	}
	return fmt.Sprintf("renegotiate from %q to %q: saves %s/yr",
		a.Current.Candidate.Name, a.Best.Candidate.Name, a.AnnualSaving)
}
