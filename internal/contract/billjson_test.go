package contract

import (
	"bytes"
	"strings"
	"testing"
)

// TestBillJSONRoundTrip encodes every golden bill (including the
// kitchen-sink contract exercising all component kinds), decodes it,
// and re-encodes: the decoded bill must equal the original field for
// field and the re-encoding must be byte-identical.
func TestBillJSONRoundTrip(t *testing.T) {
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			bill, err := ComputeBill(tc.c, tc.load, tc.in)
			if err != nil {
				t.Fatal(err)
			}
			first, err := bill.JSON()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeBill(first)
			if err != nil {
				t.Fatal(err)
			}
			assertBillsIdentical(t, tc.name, decoded, bill)
			second, err := decoded.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Errorf("re-encoding differs:\n%s\nvs\n%s", first, second)
			}
		})
	}
}

func TestDecodeBillErrors(t *testing.T) {
	if _, err := DecodeBill([]byte("not json")); err == nil {
		t.Error("malformed JSON should fail")
	}
	bad := `{"contract":"x","lines":[{"component":"witchcraft","amount":1}]}`
	_, err := DecodeBill([]byte(bad))
	if err == nil || !strings.Contains(err.Error(), "witchcraft") {
		t.Errorf("unknown component should fail naming it, got %v", err)
	}
}

// TestHashSpecCanonical pins the cache-key property the billing service
// relies on: formatting and key order do not change the hash, content
// does.
func TestHashSpecCanonical(t *testing.T) {
	a := &Spec{
		Name:          "site",
		Tariffs:       []TariffSpec{{Type: "fixed", Rate: 0.085}},
		DemandCharges: []DemandChargeSpec{{PricePerKW: 12, NPeaks: 3}},
	}
	ha, err := HashSpec(a)
	if err != nil {
		t.Fatal(err)
	}

	// The same spec parsed from differently formatted JSON with shuffled
	// keys and redundant zero fields hashes identically.
	alt := `{"demand_charges":[{"n_peaks":3,"price_per_kw":12}],` +
		`"tariffs":[{"rate":0.085,"type":"fixed","adder":0}],"name":"site"}`
	parsed, err := ParseSpec([]byte(alt))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := HashSpec(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("hash not canonical: %s != %s", ha, hb)
	}

	// A one-field change moves the hash.
	c := *a
	c.Tariffs = []TariffSpec{{Type: "fixed", Rate: 0.086}}
	hc, err := HashSpec(&c)
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Error("different specs must hash differently")
	}
	if len(ha) != 64 {
		t.Errorf("want hex sha256, got %q", ha)
	}
}
