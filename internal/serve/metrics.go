package serve

// Hand-rolled metrics in Prometheus text exposition format — request
// counts by path and status, request-latency and per-stage latency
// histograms (proper _bucket/_sum/_count series with the +Inf bucket),
// engine-cache counters and gauges, the in-flight/queued gauges and
// shed count. No client library: the histograms come from internal/obs
// and the format is lines of `name{labels} value`.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Stage span names recorded into the server's registry. The billing
// engine adds its own spans (billing.period, billing.tariff, ...) to
// the same registry through the request context, as does the optimizer
// (optimize_search, optimize_evaluate — see internal/optimize).
const (
	stageAdmissionWait = "admission_wait"
	stageCache         = "cache"
	stageCompile       = "compile"
	stageEvaluate      = "evaluate"
	stageEncode        = "encode"
	// Batch-aware stages: one batch_evaluate span covers the whole
	// fan-out across the batch pool, one batch_encode span per item.
	stageBatchEvaluate = "batch_evaluate"
	stageBatchEncode   = "batch_encode"
)

// Endpoint classes for the gated admission metrics: a one-slot batch
// request carries up to 64 bills and an optimize request up to 5000
// candidate evaluations, so their service times live on a different
// scale than a single bill or advise sweep. Tracking them apart keeps
// the Retry-After estimate honest for shed single-bill clients.
const (
	classSingle   = "single"
	classBatch    = "batch"
	classOptimize = "optimize"
)

// classFor maps a gated endpoint's path onto its admission class.
func classFor(path string) string {
	switch path {
	case "/v1/bill/batch":
		return classBatch
	case "/v1/optimize":
		return classOptimize
	default:
		return classSingle
	}
}

// classMetrics tracks one endpoint class's admission picture: how many
// requests of the class currently sit in the gate (holding or waiting
// for a slot) and the class's observed service-time distribution.
type classMetrics struct {
	pending atomic.Int64
	service *obs.Histogram
}

type metrics struct {
	mu       sync.Mutex
	requests map[string]uint64 // "path|code" -> count

	// latency is the all-requests histogram behind
	// scserved_request_seconds; gated tracks only the service time of
	// admitted gated requests (slot acquisition to handler return) and,
	// together with the per-class split in classes, feeds the
	// Retry-After estimate.
	latency *obs.Histogram
	gated   *obs.Histogram
	classes map[string]*classMetrics

	shed atomic.Uint64
	// clientCancels counts requests whose client disconnected while
	// they were queued for an evaluation slot — not a server timeout,
	// and not worth writing a 504 to a dead connection.
	clientCancels atomic.Uint64
	// panics counts handler panics recovered by instrument.
	panics atomic.Uint64
	// degraded counts bill/advise responses computed on the fixed
	// fallback tariff because the price feed was unavailable past its
	// staleness budget; feedStale counts responses served on cached
	// prices while the feed was failing within the budget.
	degraded  atomic.Uint64
	feedStale atomic.Uint64
	// batchRequests counts /v1/bill/batch requests admitted past body
	// validation; batchItems counts the items they carried — one gated
	// admission slot serves batchItems/batchRequests bills on average.
	batchRequests atomic.Uint64
	batchItems    atomic.Uint64
	// deadlinePropagated counts gated requests that arrived with a
	// parseable X-SCBill-Deadline-Ms budget from the router;
	// deadlineExpired counts those whose budget was already spent on
	// arrival and were refused with 504 before evaluation started.
	deadlinePropagated atomic.Uint64
	deadlineExpired    atomic.Uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]uint64),
		latency:  obs.NewHistogram(),
		gated:    obs.NewHistogram(),
		classes: map[string]*classMetrics{
			classSingle:   {service: obs.NewHistogram()},
			classBatch:    {service: obs.NewHistogram()},
			classOptimize: {service: obs.NewHistogram()},
		},
	}
}

// class returns the metrics bucket for an admission class.
func (m *metrics) class(name string) *classMetrics { return m.classes[name] }

func (m *metrics) observe(path string, code int, elapsed time.Duration) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%d", path, code)]++
	m.mu.Unlock()
	m.latency.Observe(elapsed.Seconds())
}

// observeGated records one admitted gated request's service time, both
// in the overall distribution and in its endpoint class's.
func (m *metrics) observeGated(class string, elapsed time.Duration) {
	m.gated.Observe(elapsed.Seconds())
	if cm := m.class(class); cm != nil {
		cm.service.Observe(elapsed.Seconds())
	}
}

// gatedMean returns the mean service time of admitted gated requests in
// seconds, 0 before any request completes.
func (m *metrics) gatedMean() float64 {
	return m.gated.Snapshot().Mean()
}

// statusRecorder captures the status code a handler produces. The
// status is latched by whichever comes first — an explicit WriteHeader
// or the implicit 200 of the first Write — mirroring net/http, which
// ignores any later WriteHeader. Without latching on Write, a handler
// that writes a body and then calls WriteHeader(500) (a no-op on the
// wire) would be miscounted as a 500.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		// Implicit 200: the first Write sends the header.
		r.code = http.StatusOK
		r.wrote = true
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with the observability front end: a
// request ID (client-supplied X-Request-ID or freshly generated) and
// the server's span registry go into the context, the status code and
// latency are recorded, and the request is logged — at warning level
// with a "slow" marker above the configured threshold.
func (s *Server) instrument(path string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 64 {
			id = obs.NewRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), id)
		ctx = obs.WithSpans(ctx, s.stages)
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-ID", id)

		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		defer func() {
			elapsed := time.Since(start)
			if v := recover(); v != nil {
				// A panicking handler must not take the daemon down: count
				// it, log it with the request ID, and answer 500 if the
				// handler had not started the response (if it had, the
				// connection is poisoned and closing it is all we can do).
				s.metrics.panics.Add(1)
				if lg := s.cfg.Logger; lg != nil {
					lg.Error("handler panic",
						"path", path, "request_id", id, "panic", fmt.Sprint(v))
				}
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, "internal server error")
				}
			}
			s.metrics.observe(path, rec.code, elapsed)
			s.logRequest(path, id, rec.code, elapsed)
		}()
		h.ServeHTTP(rec, r)
	})
}

func (s *Server) logRequest(path, id string, code int, elapsed time.Duration) {
	lg := s.cfg.Logger
	if lg == nil {
		return
	}
	if s.cfg.SlowRequest > 0 && elapsed >= s.cfg.SlowRequest {
		lg.Warn("slow request",
			"path", path, "code", code, "request_id", id,
			"elapsed_ms", float64(elapsed)/float64(time.Millisecond),
			"threshold_ms", float64(s.cfg.SlowRequest)/float64(time.Millisecond))
		return
	}
	lg.Info("request",
		"path", path, "code", code, "request_id", id,
		"elapsed_ms", float64(elapsed)/float64(time.Millisecond))
}

// render writes the exposition. Gauges are sampled at scrape time.
func (m *metrics) render(w *strings.Builder, s *Server) {
	m.mu.Lock()
	requests := make(map[string]uint64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP scserved_requests_total Requests served, by path and status code.\n")
	fmt.Fprintf(w, "# TYPE scserved_requests_total counter\n")
	keys := make([]string, 0, len(requests))
	for k := range requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		path, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "scserved_requests_total{path=%q,code=%q} %d\n", path, code, requests[k])
	}

	fmt.Fprintf(w, "# HELP scserved_request_seconds Request latency histogram.\n")
	fmt.Fprintf(w, "# TYPE scserved_request_seconds histogram\n")
	m.latency.Snapshot().WriteProm(w, "scserved_request_seconds", "")

	// Per-stage latency: one histogram per span name, covering both the
	// HTTP stages (admission_wait, cache, compile, evaluate, encode) and
	// the billing engine's spans (billing.period, billing.tariff, ...).
	stages := s.stages.Snapshot()
	if len(stages) > 0 {
		fmt.Fprintf(w, "# HELP scserved_stage_seconds Per-stage latency, by pipeline stage or billing span.\n")
		fmt.Fprintf(w, "# TYPE scserved_stage_seconds histogram\n")
		for _, st := range stages {
			st.WriteProm(w, "scserved_stage_seconds", fmt.Sprintf("stage=%q", st.Name))
		}
	}

	cs := s.cache.stats()
	fmt.Fprintf(w, "# HELP scserved_engine_cache_hits_total Engine cache hits.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_cache_hits_total counter\n")
	fmt.Fprintf(w, "scserved_engine_cache_hits_total %d\n", cs.hits)
	fmt.Fprintf(w, "# HELP scserved_engine_cache_misses_total Engine cache misses.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_cache_misses_total counter\n")
	fmt.Fprintf(w, "scserved_engine_cache_misses_total %d\n", cs.misses)
	fmt.Fprintf(w, "# HELP scserved_engine_compiles_total Contract engines compiled.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_compiles_total counter\n")
	fmt.Fprintf(w, "scserved_engine_compiles_total %d\n", cs.compiles)
	fmt.Fprintf(w, "# HELP scserved_engine_cache_evictions_total Engines evicted from the LRU.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_cache_evictions_total counter\n")
	fmt.Fprintf(w, "scserved_engine_cache_evictions_total %d\n", cs.evictions)
	fmt.Fprintf(w, "# HELP scserved_engine_cache_size Engines currently cached.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_cache_size gauge\n")
	fmt.Fprintf(w, "scserved_engine_cache_size %d\n", cs.size)
	fmt.Fprintf(w, "# HELP scserved_engine_cache_capacity Engine LRU capacity.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_cache_capacity gauge\n")
	fmt.Fprintf(w, "scserved_engine_cache_capacity %d\n", cs.capacity)
	fmt.Fprintf(w, "# HELP scserved_engine_compiles_inflight Engine compiles currently running.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_compiles_inflight gauge\n")
	fmt.Fprintf(w, "scserved_engine_compiles_inflight %d\n", cs.building)

	fmt.Fprintf(w, "# HELP scserved_in_flight Gated requests holding an evaluation slot.\n")
	fmt.Fprintf(w, "# TYPE scserved_in_flight gauge\n")
	fmt.Fprintf(w, "scserved_in_flight %d\n", s.limiter.active())
	fmt.Fprintf(w, "# HELP scserved_queued Gated requests waiting for a slot.\n")
	fmt.Fprintf(w, "# TYPE scserved_queued gauge\n")
	fmt.Fprintf(w, "scserved_queued %d\n", s.limiter.waiting())
	fmt.Fprintf(w, "# HELP scserved_slots Evaluation slot capacity (MaxConcurrent).\n")
	fmt.Fprintf(w, "# TYPE scserved_slots gauge\n")
	fmt.Fprintf(w, "scserved_slots %d\n", s.cfg.MaxConcurrent)
	fmt.Fprintf(w, "# HELP scserved_queue_capacity Admission queue capacity (QueueDepth).\n")
	fmt.Fprintf(w, "# TYPE scserved_queue_capacity gauge\n")
	fmt.Fprintf(w, "scserved_queue_capacity %d\n", s.cfg.QueueDepth)
	fmt.Fprintf(w, "# HELP scserved_shed_total Requests shed with 429 because the queue was full.\n")
	fmt.Fprintf(w, "# TYPE scserved_shed_total counter\n")
	fmt.Fprintf(w, "scserved_shed_total %d\n", m.shed.Load())
	fmt.Fprintf(w, "# HELP scserved_client_cancels_total Requests whose client disconnected while queued for a slot.\n")
	fmt.Fprintf(w, "# TYPE scserved_client_cancels_total counter\n")
	fmt.Fprintf(w, "scserved_client_cancels_total %d\n", m.clientCancels.Load())

	classNames := make([]string, 0, len(m.classes))
	for name := range m.classes {
		classNames = append(classNames, name)
	}
	sort.Strings(classNames)
	fmt.Fprintf(w, "# HELP scserved_gated_pending Gated requests holding or waiting for a slot, by endpoint class.\n")
	fmt.Fprintf(w, "# TYPE scserved_gated_pending gauge\n")
	for _, name := range classNames {
		fmt.Fprintf(w, "scserved_gated_pending{class=%q} %d\n", name, m.classes[name].pending.Load())
	}
	fmt.Fprintf(w, "# HELP scserved_gated_service_seconds Admitted gated service time, by endpoint class.\n")
	fmt.Fprintf(w, "# TYPE scserved_gated_service_seconds histogram\n")
	for _, name := range classNames {
		m.classes[name].service.Snapshot().WriteProm(w, "scserved_gated_service_seconds", fmt.Sprintf("class=%q", name))
	}
	fmt.Fprintf(w, "# HELP scserved_panics_total Handler panics recovered by the middleware.\n")
	fmt.Fprintf(w, "# TYPE scserved_panics_total counter\n")
	fmt.Fprintf(w, "scserved_panics_total %d\n", m.panics.Load())
	fmt.Fprintf(w, "# HELP scserved_degraded_total Responses billed on the fixed fallback tariff because the price feed was down past its staleness budget.\n")
	fmt.Fprintf(w, "# TYPE scserved_degraded_total counter\n")
	fmt.Fprintf(w, "scserved_degraded_total %d\n", m.degraded.Load())
	fmt.Fprintf(w, "# HELP scserved_feed_stale_total Responses billed on cached prices while the feed was failing within the staleness budget.\n")
	fmt.Fprintf(w, "# TYPE scserved_feed_stale_total counter\n")
	fmt.Fprintf(w, "scserved_feed_stale_total %d\n", m.feedStale.Load())
	fmt.Fprintf(w, "# HELP scserved_batch_requests_total Batch bill requests accepted.\n")
	fmt.Fprintf(w, "# TYPE scserved_batch_requests_total counter\n")
	fmt.Fprintf(w, "scserved_batch_requests_total %d\n", m.batchRequests.Load())
	fmt.Fprintf(w, "# HELP scserved_batch_items_total Items carried by batch bill requests.\n")
	fmt.Fprintf(w, "# TYPE scserved_batch_items_total counter\n")
	fmt.Fprintf(w, "scserved_batch_items_total %d\n", m.batchItems.Load())
	fmt.Fprintf(w, "# HELP scserved_deadline_propagated_total Gated requests carrying a propagated X-SCBill-Deadline-Ms budget.\n")
	fmt.Fprintf(w, "# TYPE scserved_deadline_propagated_total counter\n")
	fmt.Fprintf(w, "scserved_deadline_propagated_total %d\n", m.deadlinePropagated.Load())
	fmt.Fprintf(w, "# HELP scserved_deadline_expired_total Gated requests refused because their propagated deadline was already spent on arrival.\n")
	fmt.Fprintf(w, "# TYPE scserved_deadline_expired_total counter\n")
	fmt.Fprintf(w, "scserved_deadline_expired_total %d\n", m.deadlineExpired.Load())

	if pf := s.cfg.PriceFeed; pf != nil {
		fs := pf.Stats()
		fmt.Fprintf(w, "# HELP scserved_feed_answers_total Price-feed cache answers, by state.\n")
		fmt.Fprintf(w, "# TYPE scserved_feed_answers_total counter\n")
		fmt.Fprintf(w, "scserved_feed_answers_total{state=\"fresh\"} %d\n", fs.Fresh)
		fmt.Fprintf(w, "scserved_feed_answers_total{state=\"stale\"} %d\n", fs.Stale)
		fmt.Fprintf(w, "scserved_feed_answers_total{state=\"degraded\"} %d\n", fs.Degraded)
		fmt.Fprintf(w, "# HELP scserved_feed_refreshes_total Successful upstream price fetches.\n")
		fmt.Fprintf(w, "# TYPE scserved_feed_refreshes_total counter\n")
		fmt.Fprintf(w, "scserved_feed_refreshes_total %d\n", fs.Refreshes)
		fmt.Fprintf(w, "# HELP scserved_feed_refresh_failures_total Failed upstream price-fetch attempts.\n")
		fmt.Fprintf(w, "# TYPE scserved_feed_refresh_failures_total counter\n")
		fmt.Fprintf(w, "scserved_feed_refresh_failures_total %d\n", fs.RefreshFailures)
		if age, ok := pf.Age(); ok {
			fmt.Fprintf(w, "# HELP scserved_feed_age_seconds Age of the cached price series.\n")
			fmt.Fprintf(w, "# TYPE scserved_feed_age_seconds gauge\n")
			fmt.Fprintf(w, "scserved_feed_age_seconds %g\n", age.Seconds())
		}
		bs := pf.Breaker().Stats()
		fmt.Fprintf(w, "# HELP scserved_feed_breaker_state Feed circuit-breaker state (0 closed, 1 half-open, 2 open).\n")
		fmt.Fprintf(w, "# TYPE scserved_feed_breaker_state gauge\n")
		fmt.Fprintf(w, "scserved_feed_breaker_state %d\n", pf.Breaker().State())
		fmt.Fprintf(w, "# HELP scserved_feed_breaker_opens_total Times the feed breaker tripped open.\n")
		fmt.Fprintf(w, "# TYPE scserved_feed_breaker_opens_total counter\n")
		fmt.Fprintf(w, "scserved_feed_breaker_opens_total %d\n", bs.Opens)
		fmt.Fprintf(w, "# HELP scserved_feed_breaker_rejections_total Fetches rejected fast by the open feed breaker.\n")
		fmt.Fprintf(w, "# TYPE scserved_feed_breaker_rejections_total counter\n")
		fmt.Fprintf(w, "scserved_feed_breaker_rejections_total %d\n", bs.Rejections)
	}

	fmt.Fprintf(w, "# HELP scserved_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE scserved_uptime_seconds gauge\n")
	fmt.Fprintf(w, "scserved_uptime_seconds %g\n", time.Since(s.started).Seconds())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	s.metrics.render(&b, s)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
