package exp

// E17: GreenSDA flexibility contracts (§2 [5,6]) — designed in the
// literature "specifically aimed at enabling data center power
// flexibility; however, these were not implemented". Implemented here:
// a site under a GreenSDA adapts into green windows and out of red ones,
// and both sides gain — the economics the design intended, measured.

import (
	"fmt"
	"time"

	"repro/internal/greensla"
	"repro/internal/report"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func init() {
	register("E17", runE17)
}

// E17Result compares passive and adaptive behaviour under a GreenSDA.
type E17Result struct {
	PassiveNet units.Money
	ActiveNet  units.Money
	// Saving = passive − active.
	Saving units.Money
	// AbsorbedGreen and AvoidedRed are the flexibility delivered.
	AbsorbedGreen units.Energy
	AvoidedRed    units.Energy
	// FlatNet is the same consumption priced flat, for reference.
	FlatNet units.Money
}

// RunE17 evaluates a week under a GreenSDA with daily green (midday
// solar surplus) and red (evening peak) windows.
func RunE17() (*E17Result, error) {
	baseline := timeseries.ConstantPower(expStart, time.Hour, 7*24, 10*units.Megawatt)
	var windows []greensla.Window
	for d := 0; d < 7; d++ {
		day := expStart.Add(time.Duration(d) * 24 * time.Hour)
		windows = append(windows,
			greensla.Window{Kind: greensla.Green, Start: day.Add(11 * time.Hour), Duration: 3 * time.Hour},
			greensla.Window{Kind: greensla.Red, Start: day.Add(18 * time.Hour), Duration: 2 * time.Hour},
		)
	}
	a := &greensla.Agreement{
		BaseRate:           0.080,
		GreenDiscount:      0.030,
		RedReward:          0.200,
		CommittedReduction: 2 * units.Megawatt,
		Penalty:            0.300,
	}
	passive, err := a.Settle(baseline, baseline, windows)
	if err != nil {
		return nil, err
	}
	adapted, err := greensla.Adapt(baseline, windows, 2*units.Megawatt, 0.5)
	if err != nil {
		return nil, err
	}
	active, err := a.Settle(baseline, adapted, windows)
	if err != nil {
		return nil, err
	}
	return &E17Result{
		PassiveNet:    passive.Net,
		ActiveNet:     active.Net,
		Saving:        passive.Net - active.Net,
		AbsorbedGreen: active.AbsorbedGreen,
		AvoidedRed:    active.AvoidedRed,
		FlatNet:       a.BaseRate.Cost(baseline.Energy()),
	}, nil
}

func runE17() (*Exhibit, error) {
	res, err := RunE17()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("A week under a GreenSDA (10 MW site, daily green/red windows)",
		"Behaviour", "Weekly net cost", "Green absorbed", "Red avoided")
	tbl.AddRow("flat contract (reference)", res.FlatNet.String(), "—", "—")
	tbl.AddRow("GreenSDA, no adaptation", res.PassiveNet.String(), "0", "0")
	tbl.AddRow("GreenSDA, adapting", res.ActiveNet.String(),
		res.AbsorbedGreen.String(), res.AvoidedRed.String())
	return &Exhibit{
		ID:         "E17",
		Title:      "GreenSDA flexibility contracts, implemented (extension, §2 [5,6])",
		PaperClaim: "§2: \"some projects designed contracts that are specifically aimed at enabling data center power flexibility; however, these were not implemented.\"",
		Table:      tbl,
		Notes: []string{
			fmt.Sprintf("Adapting saves the site %s per week versus riding the GreenSDA passively, while delivering the ESP %s of green absorption and %s of scarcity avoidance — the win-win the design intended.",
				res.Saving, res.AbsorbedGreen, res.AvoidedRed),
			"A site that signs a GreenSDA but cannot adapt pays more than under a flat contract (penalties outweigh window discounts) — flexibility contracts only make sense for flexible consumers, which is the paper's recurring theme.",
		},
	}, nil
}
