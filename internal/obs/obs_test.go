package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestIDRoundTrip(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 {
		t.Errorf("request ID %q, want 16 hex digits", id)
	}
	if id2 := NewRequestID(); id2 == id {
		t.Errorf("two request IDs collided: %q", id)
	}
	ctx := WithRequestID(context.Background(), id)
	if got := RequestIDFrom(ctx); got != id {
		t.Errorf("RequestIDFrom = %q, want %q", got, id)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Errorf("bare context request ID = %q, want empty", got)
	}
}

func TestSpanNoOpWithoutRegistry(t *testing.T) {
	// Must not panic and must not record anywhere.
	end := Span(context.Background(), "compile")
	end()
}

func TestSpanRecordsIntoRegistry(t *testing.T) {
	reg := NewRegistry()
	ctx := WithSpans(context.Background(), reg)
	end := Span(ctx, "compile")
	time.Sleep(time.Millisecond)
	end()

	snaps := reg.Snapshot()
	if len(snaps) != 1 || snaps[0].Name != "compile" {
		t.Fatalf("snapshot = %+v, want one span named compile", snaps)
	}
	if snaps[0].Count != 1 || snaps[0].Sum <= 0 {
		t.Errorf("span stats: count=%d sum=%g", snaps[0].Count, snaps[0].Sum)
	}
	if reg2 := SpansFrom(ctx); reg2 != reg {
		t.Error("SpansFrom must return the attached registry")
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.002, 0.05, 99} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	// Per-bucket: <=0.001 gets one, <=0.01 one, <=0.1 one, +Inf one.
	for i, want := range []uint64{1, 1, 1, 1} {
		if s.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}

	var b strings.Builder
	s.WriteProm(&b, "t_seconds", "")
	text := b.String()
	for _, want := range []string{
		`t_seconds_bucket{le="0.001"} 1`,
		`t_seconds_bucket{le="0.01"} 2`,
		`t_seconds_bucket{le="0.1"} 3`,
		`t_seconds_bucket{le="+Inf"} 4`,
		"t_seconds_count 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	b.Reset()
	s.WriteProm(&b, "t_seconds", `stage="compile"`)
	labeled := b.String()
	for _, want := range []string{
		`t_seconds_bucket{stage="compile",le="+Inf"} 4`,
		`t_seconds_sum{stage="compile"}`,
		`t_seconds_count{stage="compile"} 4`,
	} {
		if !strings.Contains(labeled, want) {
			t.Errorf("labeled exposition missing %q:\n%s", want, labeled)
		}
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(1, 2)
	if got := h.Snapshot().Mean(); got != 0 {
		t.Errorf("empty mean = %g, want 0", got)
	}
	h.Observe(1)
	h.Observe(3)
	if got := h.Snapshot().Mean(); got != 2 {
		t.Errorf("mean = %g, want 2", got)
	}
}

func TestFormatBound(t *testing.T) {
	cases := map[float64]string{0.0005: "0.0005", 2.5: "2.5", 1: "1", 10: "10"}
	for v, want := range cases {
		if got := FormatBound(v); got != want {
			t.Errorf("FormatBound(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry(0.1, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg.Observe("a", 0.05)
				reg.Observe("b", 0.5)
			}
		}()
	}
	wg.Wait()
	snaps := reg.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot names = %d, want 2", len(snaps))
	}
	for _, s := range snaps {
		if s.Count != 800 {
			t.Errorf("span %s count = %d, want 800", s.Name, s.Count)
		}
	}
}
