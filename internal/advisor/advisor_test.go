package advisor

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/hpc"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)

func refLoad(t *testing.T, ratio float64) *timeseries.PowerSeries {
	t.Helper()
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: t0, Span: 90 * 24 * time.Hour, Interval: time.Hour,
		Base: 10 * units.Megawatt, PeakToAverage: ratio, NoiseSigma: 0.02, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return load
}

func candidates() []Candidate {
	return []Candidate{
		{
			Name: "current: fixed + demand charge",
			Contract: &contract.Contract{
				Name:          "current",
				Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.065)},
				DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
			},
		},
		{
			Name: "CSCS-style: flat, no demand charge",
			Contract: &contract.Contract{
				Name:    "tendered",
				Tariffs: []tariff.Tariff{tariff.MustNewFixed(0.075)},
			},
		},
		{
			Name: "cheap energy, heavy demand charge",
			Contract: &contract.Contract{
				Name:          "kw-heavy",
				Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.040)},
				DemandCharges: []*demand.Charge{demand.SimpleCharge(20)},
			},
		},
	}
}

func TestRankOrdersByCost(t *testing.T) {
	ranked, err := Rank(candidates(), refLoad(t, 1.8), contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Annual < ranked[i-1].Annual {
			t.Error("ranking must ascend")
		}
	}
	if ranked[0].DeltaVsBest != 0 {
		t.Error("best candidate has zero delta")
	}
	if ranked[2].DeltaVsBest <= 0 {
		t.Error("worst candidate has positive delta")
	}
}

func TestRankValidation(t *testing.T) {
	if _, err := Rank(nil, refLoad(t, 1.5), contract.BillingInput{}); err == nil {
		t.Error("no candidates should fail")
	}
	bad := []Candidate{{Name: "x", Contract: &contract.Contract{Name: "empty"}}}
	if _, err := Rank(bad, refLoad(t, 1.5), contract.BillingInput{}); err == nil {
		t.Error("invalid candidate should fail")
	}
}

func TestPeakinessFlipsTheWinner(t *testing.T) {
	// Flat site: the cheap-energy/heavy-demand-charge candidate wins.
	// Peaky site: the demand-charge-free structure wins. This is the
	// paper's CSCS logic made mechanical.
	flat, err := Rank(candidates(), refLoad(t, 1.0), contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	peaky, err := Rank(candidates(), refLoad(t, 2.5), contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if flat[0].Candidate.Name != "cheap energy, heavy demand charge" {
		t.Errorf("flat winner = %q, expected the kW-heavy discount structure", flat[0].Candidate.Name)
	}
	if peaky[0].Candidate.Name != "CSCS-style: flat, no demand charge" {
		t.Errorf("peaky winner = %q, expected the demand-charge-free structure", peaky[0].Candidate.Name)
	}
}

func TestFitPowerband(t *testing.T) {
	load := refLoad(t, 1.5)
	band, err := FitPowerband(load, 0.40, units.CurrencyUnits(1000))
	if err != nil {
		t.Fatal(err)
	}
	if band.Cost(load) > units.CurrencyUnits(1000) {
		t.Errorf("fitted band cost %v exceeds budget", band.Cost(load))
	}
	// The band must be meaningfully tighter than the peak when budget
	// allows some violations.
	peak, _, _ := load.Peak()
	if band.Upper > peak {
		t.Errorf("band upper %v above peak %v", band.Upper, peak)
	}
	// Zero budget: band must cost exactly zero (sits at the peak).
	tight, err := FitPowerband(load, 0.40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Cost(load) != 0 {
		t.Errorf("zero-budget band cost = %v", tight.Cost(load))
	}
}

func TestFitPowerbandValidation(t *testing.T) {
	load := refLoad(t, 1.5)
	empty := timeseries.MustNewPower(t0, time.Hour, nil)
	if _, err := FitPowerband(empty, 0.4, 0); err == nil {
		t.Error("empty load should fail")
	}
	if _, err := FitPowerband(load, -1, 0); err == nil {
		t.Error("negative penalty should fail")
	}
	if _, err := FitPowerband(load, 0.4, -1); err == nil {
		t.Error("negative budget should fail")
	}
	zeros := timeseries.ConstantPower(t0, time.Hour, 10, 0)
	if _, err := FitPowerband(zeros, 0.4, 0); err == nil {
		t.Error("all-zero load should fail")
	}
}

func TestAdvise(t *testing.T) {
	load := refLoad(t, 2.5)
	advice, err := Advise("current: fixed + demand charge", candidates(), load,
		contract.BillingInput{}, units.CurrencyUnits(10000))
	if err != nil {
		t.Fatal(err)
	}
	if advice.AnnualSaving < 0 {
		t.Error("saving cannot be negative")
	}
	if advice.ShouldRenegotiate && !strings.Contains(advice.String(), "renegotiate") {
		t.Error("advice text should match the decision")
	}
	if !advice.ShouldRenegotiate && !strings.Contains(advice.String(), "keep") {
		t.Error("advice text should match the decision")
	}
	// Unknown current name errors.
	if _, err := Advise("nope", candidates(), load, contract.BillingInput{}, 0); err == nil {
		t.Error("unknown current should fail")
	}
}

func TestAdviseMaterialityThreshold(t *testing.T) {
	load := refLoad(t, 2.5)
	// With an absurd materiality threshold nothing justifies the effort.
	advice, err := Advise("current: fixed + demand charge", candidates(), load,
		contract.BillingInput{}, units.CurrencyUnits(1_000_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if advice.ShouldRenegotiate {
		t.Error("billion-unit materiality should suppress renegotiation")
	}
	if math.Signbit(advice.AnnualSaving.Float()) {
		t.Error("saving must be non-negative")
	}
}
