package grid

import (
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// mkLoad builds an hourly series from kW values.
func mkLoad(kw ...float64) *timeseries.PowerSeries {
	samples := make([]units.Power, len(kw))
	for i, v := range kw {
		samples[i] = units.Power(v)
	}
	return timeseries.MustNewPower(t0, time.Hour, samples)
}

func TestAllocationRuleString(t *testing.T) {
	if CoincidentPeak.String() != "coincident-peak" || NonCoincidentPeak.String() != "non-coincident-peak" {
		t.Error("rule names")
	}
	if AllocationRule(9).String() == "" {
		t.Error("unknown rule should format")
	}
}

func TestCoincidentVsNonCoincident(t *testing.T) {
	// Consumer A peaks WITH the system (hour 1), B peaks at hour 0 when
	// the system is slack. Summed load: 150, 220, 70 → system peak at
	// hour 1 where A draws 200 and B only 20.
	a := Consumer{Name: "evening-peaker", Load: mkLoad(50, 200, 50)}
	b := Consumer{Name: "night-peaker", Load: mkLoad(100, 20, 20)}

	cost := units.CurrencyUnits(1000)
	co, err := AllocateCapacityCost([]Consumer{a, b}, cost, CoincidentPeak)
	if err != nil {
		t.Fatal(err)
	}
	if co.SystemPeak != 220 {
		t.Errorf("system peak = %v", co.SystemPeak)
	}
	sa, _ := co.ShareOf("evening-peaker")
	sb, _ := co.ShareOf("night-peaker")
	// At the system peak A draws 200, B draws 20 → shares 10/11, 1/11.
	if math.Abs(sa.Share-200.0/220) > 1e-9 || math.Abs(sb.Share-20.0/220) > 1e-9 {
		t.Errorf("coincident shares = %v, %v", sa.Share, sb.Share)
	}
	// Exactness: shares sum to the full cost within rounding.
	if d := sa.Cost + sb.Cost - cost; d < -2 || d > 2 {
		t.Errorf("allocated %v of %v", sa.Cost+sb.Cost, cost)
	}

	nc, err := AllocateCapacityCost([]Consumer{a, b}, cost, NonCoincidentPeak)
	if err != nil {
		t.Fatal(err)
	}
	na, _ := nc.ShareOf("evening-peaker")
	nb, _ := nc.ShareOf("night-peaker")
	// Own peaks 200 and 100 → shares 2/3 and 1/3.
	if math.Abs(na.Share-2.0/3) > 1e-9 || math.Abs(nb.Share-1.0/3) > 1e-9 {
		t.Errorf("non-coincident shares = %v, %v", na.Share, nb.Share)
	}
	// The §1 critique, quantified: the off-peak consumer pays more under
	// the non-coincident rule than its cost causation.
	if nb.Share <= sb.Share {
		t.Error("night peaker must overpay under non-coincident allocation")
	}
}

func TestPeakierConsumerPaysMore(t *testing.T) {
	// Two consumers with identical energy; one flat, one peaky. The
	// §1 claim: the peakier profile shares the higher cost.
	flat := Consumer{Name: "flat", Load: mkLoad(100, 100, 100, 100)}
	peaky := Consumer{Name: "peaky", Load: mkLoad(10, 370, 10, 10)}
	alloc, err := AllocateCapacityCost([]Consumer{flat, peaky}, units.CurrencyUnits(1000), NonCoincidentPeak)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := alloc.ShareOf("flat")
	p, _ := alloc.ShareOf("peaky")
	if p.Cost <= f.Cost {
		t.Errorf("peaky %v must pay more than flat %v", p.Cost, f.Cost)
	}
}

func TestAllocationValidation(t *testing.T) {
	a := Consumer{Name: "a", Load: mkLoad(1, 2)}
	if _, err := AllocateCapacityCost(nil, 0, CoincidentPeak); err == nil {
		t.Error("no consumers should fail")
	}
	if _, err := AllocateCapacityCost([]Consumer{a}, -1, CoincidentPeak); err == nil {
		t.Error("negative cost should fail")
	}
	short := Consumer{Name: "b", Load: mkLoad(1)}
	if _, err := AllocateCapacityCost([]Consumer{a, short}, 0, CoincidentPeak); err == nil {
		t.Error("misaligned should fail")
	}
	zero := Consumer{Name: "z", Load: mkLoad(0, 0)}
	if _, err := AllocateCapacityCost([]Consumer{zero}, 100, CoincidentPeak); err == nil {
		t.Error("zero draw should fail")
	}
	if _, err := AllocateCapacityCost([]Consumer{a}, 0, AllocationRule(9)); err == nil {
		t.Error("unknown rule should fail")
	}
	alloc, err := AllocateCapacityCost([]Consumer{a}, 100, CoincidentPeak)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alloc.ShareOf("missing"); err == nil {
		t.Error("unknown consumer should fail")
	}
}
