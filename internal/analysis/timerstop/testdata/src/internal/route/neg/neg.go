// Near-miss fixtures: the compliant shapes the fleet path actually
// uses, each one mutation away from a positive. None may diagnose.
package neg

import (
	"context"
	"net/http"
	"time"
)

// The poll-loop shape: defer Stop covers every exit, Reset keeps the
// obligation on the same variable.
func pollLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTimer(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		t.Reset(interval)
	}
}

// The per-try timeout shape: AfterFunc stopped on the straight line
// after the blocking call, before any exit.
func perTry(cancel context.CancelFunc, tryTimeout time.Duration, req *http.Request) (*http.Response, error) {
	timer := time.AfterFunc(tryTimeout, func() { cancel() })
	resp, err := http.DefaultClient.Do(req)
	timer.Stop()
	return resp, err
}

// Stop on both branches of an if/else.
func bothBranches(d time.Duration, fast bool) {
	t := time.NewTimer(d)
	if fast {
		t.Stop()
		return
	}
	<-t.C
	t.Stop()
}

// Deferred literal that stops: covers all exits from here on.
func deferredLiteral(d time.Duration) error {
	tk := time.NewTicker(d)
	defer func() { tk.Stop() }()
	<-tk.C
	return nil
}

// Returning the timer transfers the obligation to the caller.
func handoffReturn(d time.Duration) *time.Timer {
	t := time.NewTimer(d)
	return t
}

// Passing the timer to another function transfers the obligation.
func handoffArg(d time.Duration) {
	t := time.NewTimer(d)
	adopt(t)
}

func adopt(t *time.Timer) { t.Stop() }

// Storing the timer in a struct transfers the obligation to the
// owner's lifecycle.
type holder struct{ t *time.Timer }

func handoffField(h *holder, d time.Duration) {
	h.t = time.NewTimer(d)
}

// time.After outside a loop is a bounded one-shot.
func afterOnce(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// A new timer per iteration is fine when each iteration stops it on
// every path out.
func perIteration(ctx context.Context, waits []time.Duration) error {
	for _, w := range waits {
		t := time.NewTimer(w)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		t.Stop()
	}
	return nil
}

// The time.Time.After METHOD in a loop is a pure comparison — it must
// not be confused with the package function time.After.
func methodAfter(stamps []time.Time, cutoff time.Time) int {
	n := 0
	for _, ts := range stamps {
		if ts.After(cutoff) {
			n++
		}
	}
	return n
}

// A blessed fire-and-release one-shot: suppression carries a reason.
func blessedDaemon(d time.Duration, done func()) {
	//lint:scvet-ignore timerstop one-shot self-releasing notifier owned by the runtime
	time.AfterFunc(d, done)
}
