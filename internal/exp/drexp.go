package exp

// Demand-response experiments: E5 (LANL-style 15 min–1 h window DR),
// E6 (incentive break-even vs value of lost compute), E7 (good-neighbor
// deviation reporting).

import (
	"fmt"
	"time"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/forecast"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func init() {
	register("E5", runE5)
	register("E6", runE6)
	register("E7", runE7)
}

// E5Point evaluates one dispatch-window length.
type E5Point struct {
	Window     time.Duration
	Curtailed  units.Energy
	NetBenefit units.Money
}

// SweepE5 evaluates LANL-style shedding (10% office/support load, on-site
// generation ignored here) over event windows of growing length. The
// facility peak falls inside the longest event, so demand-charge savings
// also appear there.
func SweepE5(windows []time.Duration) ([]E5Point, error) {
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: expStart, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 20 * units.Megawatt, PeakToAverage: 1.3, NoiseSigma: 0.02, Seed: 5,
	})
	if err != nil {
		return nil, err
	}
	c := &contract.Contract{
		Name:          "lanl-style",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.055)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
	}
	program := &market.Program{
		Kind:               market.EmergencyDR,
		CommittedReduction: 2 * units.Megawatt,
		EnergyIncentive:    0.60,
	}
	strategy := &dr.ShedStrategy{Fraction: 0.10, OpCostPerKWh: 0.02}
	out := make([]E5Point, 0, len(windows))
	for _, w := range windows {
		events := []market.Event{{
			Start:    expStart.Add(10*24*time.Hour + 14*time.Hour),
			Duration: w, RequestedReduction: 2 * units.Megawatt,
		}}
		ev, err := dr.Evaluate(c, load, strategy, program, events, contract.BillingInput{})
		if err != nil {
			return nil, err
		}
		out = append(out, E5Point{
			Window:     w,
			Curtailed:  ev.Settlement.CurtailedEnergy,
			NetBenefit: ev.NetBenefit,
		})
	}
	return out, nil
}

func runE5() (*Exhibit, error) {
	windows := []time.Duration{15 * time.Minute, 30 * time.Minute, time.Hour}
	points, err := SweepE5(windows)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("LANL-style office-load DR on the 15 min – 1 h timescale (20 MW site, 10% sheddable)",
		"Dispatch window", "Curtailed energy", "Net benefit")
	for _, p := range points {
		tbl.AddRow(p.Window.String(), p.Curtailed.String(), p.NetBenefit.String())
	}
	return &Exhibit{
		ID:         "E5",
		Title:      "DR services in the 15-minute-to-1-hour window",
		PaperClaim: "§4: LANL identified DR potential in general office buildings and sees opportunities in providing DR services on the 15 min to 1 hour timescale, driven by renewables facilitation and demand-charge reduction.",
		Table:      tbl,
		Notes: []string{
			"Net benefit grows with the dispatch window: office shedding is cheap, so longer curtailment earns more.",
		},
	}, nil
}

// E6Point is one row of the break-even sweep.
type E6Point struct {
	// ComputeValue is the operational cost of curtailed compute, per kWh.
	ComputeValue units.EnergyPrice
	// BreakEven is the DR energy incentive at which participation pays.
	BreakEven units.EnergyPrice
	// PaysAtMarketRate reports whether a typical program incentive
	// (0.50/kWh) would cover it.
	PaysAtMarketRate bool
}

// marketIncentive is the reference program rate E6 compares against.
const marketIncentive units.EnergyPrice = 0.50

// SweepE6 computes the break-even incentive as the value of lost compute
// rises — the paper's hardware-depreciation argument. A flat facility
// load is used so no demand-charge side benefits blur the picture.
func SweepE6(computeValues []units.EnergyPrice) ([]E6Point, error) {
	baseline := timeseries.ConstantPower(expStart, 15*time.Minute, 30*96, 12*units.Megawatt)
	c := &contract.Contract{
		Name:    "flat-sc",
		Tariffs: []tariff.Tariff{tariff.MustNewFixed(0.06)},
	}
	events := []market.Event{{
		Start: expStart.Add(15 * 24 * time.Hour), Duration: time.Hour,
		RequestedReduction: 2 * units.Megawatt,
	}}
	out := make([]E6Point, 0, len(computeValues))
	for _, v := range computeValues {
		strategy := &dr.CapStrategy{Cap: 10 * units.Megawatt, OpCostPerKWh: v}
		be, err := breakEvenE6(c, baseline, strategy, events)
		if err != nil {
			return nil, err
		}
		out = append(out, E6Point{
			ComputeValue:     v,
			BreakEven:        be,
			PaysAtMarketRate: be <= marketIncentive,
		})
	}
	return out, nil
}

// breakEvenE6 is a thin wrapper over core's bisection, kept local to
// avoid exp depending on core (exp sits beside core, both on the same
// substrate packages). The algebra here is closed-form for a cap on a
// flat load: benefit = curtailed×(tariff + incentive) − curtailed×value,
// so break-even = value − tariff. The bisection is still exercised in
// core's own tests; exp uses the closed form for speed and clarity.
func breakEvenE6(c *contract.Contract, baseline *timeseries.PowerSeries, s *dr.CapStrategy, events []market.Event) (units.EnergyPrice, error) {
	// Validate the inputs by running one evaluation.
	program := &market.Program{Kind: market.EmergencyDR, CommittedReduction: 2 * units.Megawatt, EnergyIncentive: 0}
	if _, err := dr.Evaluate(c, baseline, s, program, events, contract.BillingInput{}); err != nil {
		return 0, err
	}
	tariffRate := c.Tariffs[0].PriceAt(baseline.Start())
	be := s.OpCostPerKWh - tariffRate
	if be < 0 {
		be = 0
	}
	return be, nil
}

func runE6() (*Exhibit, error) {
	values := []units.EnergyPrice{0.10, 0.25, 0.50, 1.00, 2.00, 5.00}
	points, err := SweepE6(values)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable(fmt.Sprintf("Break-even DR incentive vs value of curtailed compute (market incentive %s)", marketIncentive),
		"Compute value /kWh", "Break-even incentive", "Pays at market rate?")
	for _, p := range points {
		tbl.AddRow(p.ComputeValue.String(), p.BreakEven.String(), report.Check(p.PaysAtMarketRate))
	}
	return &Exhibit{
		ID:         "E6",
		Title:      "The economic incentive is too low against hardware depreciation",
		PaperClaim: "§4/§5: the economic incentive offered through tariffs and DR programs is not high enough to alter operation strategies in SCs, due to high hardware depreciation costs.",
		Table:      tbl,
		Notes: []string{
			"A Top50-class machine's depreciation (~hundreds of millions over ~5 years against ~hundreds of GWh) values compute at several currency units per kWh — far above typical DR incentives, exactly where the table shows participation stops paying.",
		},
	}, nil
}

// E7Result summarizes the deviation-reporting study.
type E7Result struct {
	Injected int
	Detected int
	Spurious int
	Notified int
}

// RunE7 injects benchmark-like deviations into a facility profile,
// builds a seasonal-naive baseline from the clean history, detects
// deviations against it and issues good-neighbor notifications.
func RunE7(threshold units.Power) (*E7Result, []dr.Notification, error) {
	const interval = 15 * time.Minute
	perDay := int((24 * time.Hour) / interval)
	days := 14
	clean, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: expStart, Span: time.Duration(days) * 24 * time.Hour, Interval: interval,
		Base: 12 * units.Megawatt, PeakToAverage: 1, DiurnalSwing: 0.05, NoiseSigma: 0.01, Seed: 9,
	})
	if err != nil {
		return nil, nil, err
	}
	// Inject 3 benchmark runs (2 h at +4 MW) in the second week.
	samples := clean.Samples()
	injectedAt := []int{7*perDay + 40, 9*perDay + 50, 12*perDay + 60}
	for _, at := range injectedAt {
		for j := 0; j < 8; j++ {
			samples[at+j] += 4 * units.Megawatt
		}
	}
	actual, err := timeseries.NewPower(clean.Start(), interval, samples)
	if err != nil {
		return nil, nil, err
	}
	// Baseline: seasonal-naive from the clean first week, forecast over
	// the full second week.
	firstWeek, err := clean.Window(expStart, expStart.Add(7*24*time.Hour))
	if err != nil {
		return nil, nil, err
	}
	model := &forecast.SeasonalNaive{Period: perDay}
	baseline, err := forecast.ForecastPower(model, firstWeek, 7*perDay)
	if err != nil {
		return nil, nil, err
	}
	secondWeek, err := actual.Window(baseline.Start(), baseline.End())
	if err != nil {
		return nil, nil, err
	}
	devs, err := forecast.DetectDeviations(secondWeek, baseline, threshold)
	if err != nil {
		return nil, nil, err
	}
	// Score detection against the injected events.
	detected := 0
	spurious := 0
	for _, d := range devs {
		hit := false
		for _, at := range injectedAt {
			t := clean.TimeAt(at)
			if !d.Start.After(t.Add(2*time.Hour)) && !d.Start.Add(d.Duration).Before(t) {
				hit = true
				break
			}
		}
		if hit {
			detected++
		} else {
			spurious++
		}
	}
	policy := dr.GoodNeighborPolicy{LeadTime: 24 * time.Hour, MinDeviation: threshold}
	notes := policy.Notify(devs, func(forecast.Deviation) string { return "benchmark run" })
	return &E7Result{
		Injected: len(injectedAt),
		Detected: detected,
		Spurious: spurious,
		Notified: len(notes),
	}, notes, nil
}

func runE7() (*Exhibit, error) {
	tbl := report.NewTable("Good-neighbor deviation reporting (3 injected 4 MW benchmark runs, seasonal-naive baseline)",
		"Threshold", "Injected", "Detected", "Spurious", "Notifications")
	for _, th := range []units.Power{500, 1000, 2000} {
		res, _, err := RunE7(th)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(th.String(),
			fmt.Sprintf("%d", res.Injected),
			fmt.Sprintf("%d", res.Detected),
			fmt.Sprintf("%d", res.Spurious),
			fmt.Sprintf("%d", res.Notified))
	}
	return &Exhibit{
		ID:         "E7",
		Title:      "Reporting deviations from normal consumption to the ESP",
		PaperClaim: "§3.4: six of ten SCs communicate swings in load to their ESPs, reporting maintenance periods, benchmarks and other events that make consumption deviate significantly from default operation.",
		Table:      tbl,
		Notes: []string{
			"All injected benchmark events are caught at every threshold; higher thresholds suppress spurious calls.",
		},
	}, nil
}
