package market

// Customer baseline load (CBL). Real DR programs cannot observe the
// counterfactual "what would the site have consumed?" — they estimate it
// from metering history, conventionally as the average of the same
// clock window over the N most recent event-free days. The estimate is
// gameable: consumption inflated during the look-back window becomes
// phantom curtailment during the event. This file implements the CBL
// and thereby makes that pathology measurable (E21).

import (
	"errors"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// CBLBaseline builds a settlement baseline over the actual metered
// series: inside event windows each interval is replaced by the mean of
// the same time-of-day interval over the `days` preceding days that are
// event-free at that clock slot; outside events the actual value is
// kept (settlement only reads the baseline inside events).
//
// An interval whose look-back finds no event-free history keeps the
// actual value (no curtailment credited).
func CBLBaseline(actual *timeseries.PowerSeries, events []Event, days int) (*timeseries.PowerSeries, error) {
	if actual == nil || actual.Len() == 0 {
		return nil, errors.New("market: empty metered series")
	}
	if days <= 0 {
		return nil, errors.New("market: CBL needs at least one look-back day")
	}
	perDay := int((24 * time.Hour) / actual.Interval())
	if perDay <= 0 || (24*time.Hour)%actual.Interval() != 0 {
		return nil, errors.New("market: CBL needs an interval dividing 24h")
	}
	inEvent := func(t time.Time) bool {
		for _, e := range events {
			if !t.Before(e.Start) && t.Before(e.End()) {
				return true
			}
		}
		return false
	}
	samples := actual.Samples()
	for i := 0; i < actual.Len(); i++ {
		ts := actual.TimeAt(i)
		if !inEvent(ts) {
			continue
		}
		var sum float64
		n := 0
		for d := 1; d <= days; d++ {
			j := i - d*perDay
			if j < 0 {
				break
			}
			if inEvent(actual.TimeAt(j)) {
				continue // skip event days in the look-back
			}
			sum += float64(actual.At(j))
			n++
		}
		if n > 0 {
			samples[i] = units.Power(sum / float64(n))
		}
	}
	return timeseries.NewPower(actual.Start(), actual.Interval(), samples)
}

// SettleWithCBL settles a participant using a CBL estimated from its own
// metered history rather than a trusted baseline — what real programs do.
func (p *Program) SettleWithCBL(actual *timeseries.PowerSeries, events []Event, lookbackDays int) (*Settlement, *timeseries.PowerSeries, error) {
	cbl, err := CBLBaseline(actual, events, lookbackDays)
	if err != nil {
		return nil, nil, err
	}
	s, err := p.Settle(cbl, actual, events)
	if err != nil {
		return nil, nil, err
	}
	return s, cbl, nil
}
