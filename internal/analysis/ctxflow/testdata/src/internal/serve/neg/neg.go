// Near-miss fixtures: the compliant ctx-threading shapes, each one
// mutation away from a positive. None may diagnose.
package neg

import (
	"context"
	"net/http"
	"time"
)

// Deriving from the ctx in scope keeps the deadline chain intact.
func derived(ctx context.Context, d time.Duration) error {
	dctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	return work(dctx)
}

// The cancelable request constructor.
func fetch(ctx context.Context, client *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return client.Do(req)
}

// A function with no ctx parameter is not patrolled: constructors
// wiring a detached daemon context stay legal.
type daemon struct {
	ctx    context.Context
	cancel context.CancelFunc
}

func newDaemon() *daemon {
	ctx, cancel := context.WithCancel(context.Background())
	return &daemon{ctx: ctx, cancel: cancel}
}

// Calling the Ctx sibling is the point of the rule.
type engine struct{}

func (engine) Bill(n int) int                         { return n }
func (engine) BillCtx(ctx context.Context, n int) int { return n }

func evaluate(ctx context.Context, e engine, n int) int {
	return e.BillCtx(ctx, n)
}

// A callee that already takes a ctx needs no sibling check.
func threaded(ctx context.Context) error {
	return work(ctx)
}

// Calling a no-sibling function is fine: there is nothing more
// cancelable to prefer.
func plain(ctx context.Context, n int) int {
	return double(n)
}

func double(n int) int { return 2 * n }

// A deliberate detachment — audit work that must survive the request
// — is blessed with a reason.
func blessedDetach(ctx context.Context, audit func(context.Context)) {
	//lint:scvet-ignore ctxflow audit trail must outlive the request by design
	audit(context.Background())
}

func work(ctx context.Context) error { return ctx.Err() }
