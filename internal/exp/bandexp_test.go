package exp

import (
	"strings"
	"testing"
)

func TestE20BatteryImprovesBandCompliance(t *testing.T) {
	res, err := RunE20()
	if err != nil {
		t.Fatal(err)
	}
	// The raw profile must actually violate the band (otherwise the
	// experiment is vacuous).
	if res.RawCompliance > 0.9 {
		t.Errorf("raw compliance %.2f too high — scenario degenerate", res.RawCompliance)
	}
	if res.KeptCompliance <= res.RawCompliance {
		t.Errorf("band keeping must improve compliance: %.2f → %.2f",
			res.RawCompliance, res.KeptCompliance)
	}
	if res.KeptPenalty >= res.RawPenalty {
		t.Errorf("band keeping must cut the penalty: %v → %v",
			res.RawPenalty, res.KeptPenalty)
	}
	// Substantial improvement, not a rounding artifact.
	if res.KeptCompliance < res.RawCompliance+0.2 {
		t.Errorf("improvement too small: %.2f → %.2f", res.RawCompliance, res.KeptCompliance)
	}
	if res.Cycles <= 0 {
		t.Error("the battery must actually cycle")
	}
}

func TestE20Exhibit(t *testing.T) {
	e, err := Run("E20")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Render(), "band-keeping battery") {
		t.Error("E20 table incomplete")
	}
}
