package obs

// Scalar metrics to complement the histograms: a monotonically
// increasing Counter and an instantaneous Gauge, both lock-free and
// safe for concurrent use. They exist so lower layers (the circuit
// breaker in internal/resilience, the price-feed cache in
// internal/feed) can expose state transitions without knowing how the
// serving layer renders them — the zero value of each is ready to use,
// and a nil receiver is a no-op, so instrumented code never has to
// check whether anyone is watching.

import "sync/atomic"

// Counter is a monotonically increasing event count. The zero value is
// ready to use; methods on a nil *Counter are no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move in both directions.
// The zero value is ready to use; methods on a nil *Gauge are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
