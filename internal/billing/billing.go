// Package billing is the unified single-pass billing engine underneath
// package contract. The paper's contract typology (Figure 1) prices a
// load profile through several independent components — energy tariffs
// (kWh branch), demand charges and powerbands (kW branch), emergency-DR
// obligations ("other") and flat fees — and the naive evaluation scans
// the metered series once per component. On a year of 15-minute data
// with a handful of components that is a dozen full traversals per
// bill, which matters because cost optimizers (demand-charge reduction,
// workload modulation under real-world pricing) call bill evaluation in
// a tight inner loop.
//
// The engine inverts the loop: components implement LineItemProducer,
// the Evaluator streams the load series exactly once per billing
// period, and every producer's Accumulator observes each metering
// sample as it flies by — accumulating energy, peak, per-tariff cost,
// billed demand, powerband excursions and emergency exposure
// simultaneously. Calendar months evaluate concurrently on a worker
// pool (months.go); the ratchet demand charge's sequential dependency
// on the historical peak is resolved by a cheap peak prescan before the
// parallel phase.
//
// The engine is arithmetic-identical to the per-component path: every
// accumulator performs the same floating-point operations in the same
// order as the component's standalone Cost method, so line amounts
// match to the micro-currency-unit (see contract's golden equivalence
// tests).
package billing

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// ErrEmptyLoad is returned when a period has no metering samples.
var ErrEmptyLoad = errors.New("billing: cannot evaluate an empty load profile")

// cancelCheckStride is how many samples the streaming loop processes
// between context-cancellation checks. A power of two so the check
// compiles to a mask; at 15-minute metering a year is ~35k samples, so
// a cancelled evaluation stops within a small fraction of a period.
const cancelCheckStride = 2048

// Span names recorded when the evaluating context carries an
// obs.Registry (obs.WithSpans). Per-family observation cost is recorded
// under SpanFamilyPrefix + the producer's family ("billing.tariff",
// "billing.demand", ...).
const (
	// SpanPeriod covers one EvaluatePeriodCtx call end to end.
	SpanPeriod = "billing.period"
	// SpanMonths covers one EvaluateMonths call end to end.
	SpanMonths = "billing.months"
	// SpanPrescan covers the ratchet peak prescan before the parallel
	// month phase.
	SpanPrescan = "billing.prescan"
	// SpanFamilyPrefix prefixes per-component-family observation spans.
	SpanFamilyPrefix = "billing."
)

// traceBlock is how many samples the traced evaluation buffers between
// per-family timing boundaries. Larger blocks amortize the clock reads
// that attribute observation cost to component families; the block is
// also the traced loop's cancellation-poll stride.
const traceBlock = 512

// Class identifies what kind of contract component produced a line
// item. It mirrors the typology leaves plus the flat-fee class the
// paper excludes from the typology ("these are not included ... as they
// cannot be generalized").
type Class int

// Line-item classes.
const (
	ClassFixedTariff Class = iota
	ClassTOUTariff
	ClassDynamicTariff
	ClassDemandCharge
	ClassPowerband
	ClassEmergencyDR
	ClassFlatFee
)

var classNames = map[Class]string{
	ClassFixedTariff:   "fixed-tariff",
	ClassTOUTariff:     "time-of-use-tariff",
	ClassDynamicTariff: "dynamic-tariff",
	ClassDemandCharge:  "demand-charge",
	ClassPowerband:     "powerband",
	ClassEmergencyDR:   "emergency-dr",
	ClassFlatFee:       "flat-fee",
}

// String returns the class name.
func (c Class) String() string {
	if n, ok := classNames[c]; ok {
		return n
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// LineItem is one itemized charge contributed by a producer.
type LineItem struct {
	// Class identifies the producing component kind.
	Class Class
	// Description is the human-readable label.
	Description string
	// Quantity describes the billed quantity ("8.40 GWh", "15.00 MW").
	Quantity string
	// Amount is the exact charge.
	Amount units.Money
}

// Window is a half-open [Start, End) wall-clock interval, used to carry
// declared emergency events into the engine without depending on the
// contract layer.
type Window struct {
	Start time.Time
	End   time.Time
}

// Covers reports whether instant t falls inside the window.
func (w Window) Covers(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// PeriodContext carries the per-period billing inputs every accumulator
// may need.
type PeriodContext struct {
	// HistoricalPeak feeds ratchet demand charges (0 if none).
	HistoricalPeak units.Power
	// Emergencies are the grid emergencies declared during the period.
	Emergencies []Window
}

// Sample is one metering observation handed to every accumulator during
// the single pass.
type Sample struct {
	// Index is the sample's position in the period's series.
	Index int
	// Time is the start instant of the metering interval.
	Time time.Time
	// Power is the average draw over the interval.
	Power units.Power
	// Energy is Power integrated over the interval, precomputed once
	// and shared by all accumulators.
	Energy units.Energy
}

// Accumulator is one component's per-period state: it observes every
// metering sample exactly once and then emits the component's line
// items.
type Accumulator interface {
	// Observe consumes one metering sample. Samples arrive in
	// chronological order, each exactly once.
	Observe(s Sample)
	// Lines returns the component's line items for the period, called
	// once after the last sample.
	Lines() []LineItem
}

// LineItemProducer is a contract component the engine can bill: it
// validates itself, describes itself, and contributes line items
// through a per-period Accumulator. Producers must be safe for
// concurrent BeginPeriod calls (month evaluation is parallel); all
// mutable state belongs in the accumulator.
type LineItemProducer interface {
	// Validate checks the component's parameters.
	Validate() error
	// Describe returns a one-line human-readable description.
	Describe() string
	// BeginPeriod returns a fresh accumulator for one billing period.
	// interval is the period's metering interval.
	BeginPeriod(ctx *PeriodContext, interval time.Duration) Accumulator
}

// FamilyReporter is an optional LineItemProducer extension: producers
// that implement it have their per-sample observation cost attributed
// to the named component family ("tariff", "demand", "powerband",
// "emergency", "fee") in span traces. Producers without it pool under
// "other".
type FamilyReporter interface {
	// SpanFamily names the producer's component family for traces.
	SpanFamily() string
}

// familyOf returns a producer's trace family.
func familyOf(p LineItemProducer) string {
	if f, ok := p.(FamilyReporter); ok {
		return f.SpanFamily()
	}
	return "other"
}

// FlatFee is the engine-level flat per-period charge (service fees,
// metering fees, taxes folded to a constant).
type FlatFee struct {
	Name   string
	Amount units.Money
}

// Validate accepts any flat fee (negative amounts model credits).
func (f FlatFee) Validate() error { return nil }

// Describe returns the fee's name.
func (f FlatFee) Describe() string { return f.Name }

// BeginPeriod returns the fee's (stateless) accumulator.
func (f FlatFee) BeginPeriod(*PeriodContext, time.Duration) Accumulator {
	return feeAcc{fee: f}
}

type feeAcc struct{ fee FlatFee }

func (feeAcc) Observe(Sample) {}

func (a feeAcc) Lines() []LineItem {
	return []LineItem{{
		Class:       ClassFlatFee,
		Description: a.fee.Name,
		Quantity:    "flat",
		Amount:      a.fee.Amount,
	}}
}

// SpanFamily attributes fee observation cost (trivial) to "fee".
func (f FlatFee) SpanFamily() string { return "fee" }

var _ LineItemProducer = FlatFee{}
var _ FamilyReporter = FlatFee{}

// Result is the outcome of evaluating one billing period.
type Result struct {
	// PeriodStart / PeriodEnd delimit the billed interval.
	PeriodStart time.Time
	PeriodEnd   time.Time
	// Energy is the total consumption billed.
	Energy units.Energy
	// Peak is the highest metered interval; PeakTime its start instant.
	Peak     units.Power
	PeakTime time.Time
	// Lines are the itemized entries in producer order; Total is their
	// exact sum.
	Lines []LineItem
	Total units.Money
}

// Evaluator is a compiled set of producers, reusable across any number
// of periods and load profiles. It is immutable after construction and
// safe for concurrent use (SetColumnar is the one test-only exception).
type Evaluator struct {
	producers []LineItemProducer
	// famNames / famIdx group producers by trace family (first-seen
	// order): famIdx[g] holds the producer indices of family famNames[g].
	// Precomputed so the traced path pays no per-period classification.
	famNames []string
	famIdx   [][]int
	// kernels holds every producer's compiled columnar kernel, in
	// producer order; nil when any producer failed to compile, in which
	// case evaluation stays on the sample-walk path.
	kernels []Kernel
	// columnar selects the evaluation path. Set at construction when
	// all producers compile; SetColumnar can force the sample-walk
	// oracle for equivalence testing.
	columnar bool
	// pool recycles scanSets (the per-period scanner state plus block
	// scratch) so steady-state columnar evaluation does not allocate
	// scanner machinery.
	pool sync.Pool
	// now is the clock the traced path stamps span durations with. It
	// is instrumentation only — no billing arithmetic may depend on it —
	// and it is injectable (WithNow) so evaluation stays testable
	// without wall-clock reads.
	now func() time.Time
}

// NewEvaluator validates every producer and returns the evaluator. When
// every producer compiles a columnar kernel (KernelProducer), the
// evaluator takes the columnar fast path; otherwise it keeps the
// per-sample accumulator walk.
func NewEvaluator(producers ...LineItemProducer) (*Evaluator, error) {
	for i, p := range producers {
		if p == nil {
			return nil, fmt.Errorf("billing: producer %d is nil", i)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("billing: producer %d (%T): %w", i, p, err)
		}
	}
	e := &Evaluator{producers: producers, now: time.Now}
	seen := make(map[string]int)
	for i, p := range producers {
		f := familyOf(p)
		g, ok := seen[f]
		if !ok {
			g = len(e.famNames)
			seen[f] = g
			e.famNames = append(e.famNames, f)
			e.famIdx = append(e.famIdx, nil)
		}
		e.famIdx[g] = append(e.famIdx[g], i)
	}
	kernels := make([]Kernel, len(producers))
	compiled := true
	for i, p := range producers {
		kp, ok := p.(KernelProducer)
		if !ok {
			compiled = false
			break
		}
		k := kp.CompileKernel()
		if k == nil {
			compiled = false
			break
		}
		kernels[i] = k
	}
	if compiled {
		e.kernels = kernels
		e.columnar = true
	}
	e.pool.New = func() any { return e.newScanSet() }
	return e, nil
}

// Columnar reports whether the evaluator is on the columnar fast path.
func (e *Evaluator) Columnar() bool { return e.columnar }

// SetColumnar switches between the columnar fast path and the legacy
// per-sample walk, returning the path actually in effect (enabling is
// refused when some producer did not compile a kernel). Both paths
// produce bit-identical results; this is a test and diagnostics hook —
// do not call it concurrently with evaluation.
func (e *Evaluator) SetColumnar(on bool) bool {
	e.columnar = on && e.kernels != nil
	return e.columnar
}

// Producers returns the number of compiled producers.
func (e *Evaluator) Producers() int { return len(e.producers) }

// WithNow replaces the span-timing clock and returns e. Only the
// traced path reads it; bill arithmetic is clock-free either way.
func (e *Evaluator) WithNow(now func() time.Time) *Evaluator {
	if now != nil {
		e.now = now
	}
	return e
}

// EvaluatePeriod streams the load series once, feeding every producer's
// accumulator, and assembles the period result. The built-in energy and
// peak aggregates ride the same pass.
func (e *Evaluator) EvaluatePeriod(load *timeseries.PowerSeries, ctx PeriodContext) (*Result, error) {
	return e.EvaluatePeriodCtx(context.Background(), load, ctx)
}

// EvaluatePeriodCtx is EvaluatePeriod with cooperative cancellation: the
// streaming loop polls ctx every cancelCheckStride samples and returns
// ctx.Err() once the context is done. Long-lived callers (the billing
// service) use it to enforce per-request deadlines on evaluation itself
// rather than only between requests.
func (e *Evaluator) EvaluatePeriodCtx(ctx context.Context, load *timeseries.PowerSeries, pctx PeriodContext) (*Result, error) {
	res := new(Result)
	if err := e.evaluatePeriodInto(ctx, load, pctx, res); err != nil {
		return nil, err
	}
	return res, nil
}

// evaluatePeriodInto evaluates one period into a caller-owned Result —
// the allocation-lean core EvaluateMonths fills its result slab with.
// It dispatches between the columnar fast path (columnar.go) and the
// legacy per-sample walk that remains the golden oracle.
func (e *Evaluator) evaluatePeriodInto(ctx context.Context, load *timeseries.PowerSeries, pctx PeriodContext, res *Result) error {
	if load == nil || load.Len() == 0 {
		return ErrEmptyLoad
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.columnar {
		return e.evaluateColumnar(ctx, load, pctx, res)
	}
	interval := load.Interval()
	accs := make([]Accumulator, len(e.producers))
	for i, p := range e.producers {
		accs[i] = p.BeginPeriod(&pctx, interval)
	}
	if reg := obs.SpansFrom(ctx); reg != nil {
		return e.evaluateTraced(ctx, reg, load, accs, res)
	}

	done := ctx.Done()
	h := interval.Hours()
	var kwh float64
	peak := load.At(0)
	peakIdx := 0
	for i := 0; i < load.Len(); i++ {
		if done != nil && i&(cancelCheckStride-1) == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		p := load.At(i)
		en := float64(p) * h
		kwh += en
		if p > peak {
			peak, peakIdx = p, i
		}
		s := Sample{Index: i, Time: load.TimeAt(i), Power: p, Energy: units.Energy(en)}
		for _, a := range accs {
			a.Observe(s)
		}
	}

	res.PeriodStart = load.Start()
	res.PeriodEnd = load.End()
	res.Energy = units.Energy(kwh)
	res.Peak = peak
	res.PeakTime = load.TimeAt(peakIdx)
	for _, a := range accs {
		for _, l := range a.Lines() {
			res.Lines = append(res.Lines, l)
			res.Total += l.Amount
		}
	}
	return nil
}

// evaluateTraced is the span-recording twin of the streaming loop,
// taken when the context carries an obs.Registry. It buffers samples in
// blocks and feeds each component family's accumulators block-at-a-time
// between clock reads, so attributing observation cost per family costs
// one timestamp pair per family per block instead of per sample. Every
// accumulator still sees every sample exactly once in chronological
// order, so the arithmetic — and therefore the bill — is identical to
// the untraced path.
func (e *Evaluator) evaluateTraced(ctx context.Context, reg *obs.Registry, load *timeseries.PowerSeries, accs []Accumulator, res *Result) error {
	endPeriod := obs.Span(ctx, SpanPeriod)
	groups := make([][]Accumulator, len(e.famIdx))
	for g, idx := range e.famIdx {
		groups[g] = make([]Accumulator, len(idx))
		for j, i := range idx {
			groups[g][j] = accs[i]
		}
	}

	done := ctx.Done()
	interval := load.Interval()
	h := interval.Hours()
	var kwh float64
	peak := load.At(0)
	peakIdx := 0
	nanos := make([]time.Duration, len(groups))
	buf := make([]Sample, 0, traceBlock)
	n := load.Len()
	for base := 0; base < n; base += traceBlock {
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		end := base + traceBlock
		if end > n {
			end = n
		}
		buf = buf[:0]
		for i := base; i < end; i++ {
			p := load.At(i)
			en := float64(p) * h
			kwh += en
			if p > peak {
				peak, peakIdx = p, i
			}
			buf = append(buf, Sample{Index: i, Time: load.TimeAt(i), Power: p, Energy: units.Energy(en)})
		}
		for g, group := range groups {
			t0 := e.now()
			for _, a := range group {
				for _, s := range buf {
					a.Observe(s)
				}
			}
			nanos[g] += e.now().Sub(t0)
		}
	}
	for g, name := range e.famNames {
		reg.Observe(SpanFamilyPrefix+name, nanos[g].Seconds())
	}

	res.PeriodStart = load.Start()
	res.PeriodEnd = load.End()
	res.Energy = units.Energy(kwh)
	res.Peak = peak
	res.PeakTime = load.TimeAt(peakIdx)
	for _, a := range accs {
		for _, l := range a.Lines() {
			res.Lines = append(res.Lines, l)
			res.Total += l.Amount
		}
	}
	endPeriod()
	return nil
}
