package dr

import (
	"strings"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/market"
	"repro/internal/storage"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func testBattery() *storage.Battery {
	return &storage.Battery{
		Capacity:            4 * units.MegawattHour,
		MaxCharge:           1 * units.Megawatt,
		MaxDischarge:        2 * units.Megawatt,
		RoundTripEfficiency: 0.9,
		InitialSoC:          1,
	}
}

func TestStorageStrategyRespond(t *testing.T) {
	s := &StorageStrategy{Battery: testBattery(), CycleCostPerKWh: 0.05}
	baseline := flat(12, 10000) // 3 hours at 15 min
	events := oneHourEvent(time.Hour)
	resp, err := s.Respond(baseline, events)
	if err != nil {
		t.Fatal(err)
	}
	// During the event (samples 4–7): discharge 2 MW → net 8 MW.
	for i := 4; i < 8; i++ {
		if resp.Load.At(i) != 8000 {
			t.Errorf("event sample %d = %v, want 8000", i, resp.Load.At(i))
		}
	}
	// Outside events recharging is peak-aware: the net load never
	// exceeds the baseline's own peak.
	for i := 8; i < 12; i++ {
		if resp.Load.At(i) > 10000+1e-9 {
			t.Errorf("rebound sample %d = %v sets a new peak", i, resp.Load.At(i))
		}
	}
	// 2 MW × 1 h discharged.
	if resp.CurtailedEnergy.MWh() < 1.99 {
		t.Errorf("curtailed = %v", resp.CurtailedEnergy)
	}
	if resp.OpCost <= 0 {
		t.Error("cycle wear should cost something")
	}
	if !strings.Contains(s.Name(), "storage") {
		t.Error("name")
	}
}

func TestStorageStrategyValidation(t *testing.T) {
	baseline := flat(4, 1000)
	if _, err := (&StorageStrategy{}).Respond(baseline, nil); err == nil {
		t.Error("nil battery should fail")
	}
	if (&StorageStrategy{}).Name() == "" {
		t.Error("unconfigured name should still render")
	}
	if _, err := (&StorageStrategy{Battery: testBattery(), CycleCostPerKWh: -1}).Respond(baseline, nil); err == nil {
		t.Error("negative cycle cost should fail")
	}
	if _, err := (&StorageStrategy{Battery: testBattery(), RechargeHeadroom: 2}).Respond(baseline, nil); err == nil {
		t.Error("headroom > 1 should fail")
	}
	bad := &storage.Battery{}
	if _, err := (&StorageStrategy{Battery: bad}).Respond(baseline, nil); err == nil {
		t.Error("invalid battery should fail")
	}
}

func TestStorageStrategyInFullEvaluation(t *testing.T) {
	// Storage answers an event with zero mission impact: for a typical
	// incentive it should be worth it where compute capping is not.
	s := &StorageStrategy{Battery: testBattery(), CycleCostPerKWh: 0.05}
	baseline := flat(96, 10000)
	events := oneHourEvent(10 * time.Hour)
	program := &market.Program{
		Kind: market.EmergencyDR, CommittedReduction: 2000, EnergyIncentive: 0.50,
	}
	ev, err := Evaluate(drContract(), baseline, s, program, events, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Settlement.CurtailedEnergy.MWh() < 1.9 {
		t.Errorf("curtailed = %v", ev.Settlement.CurtailedEnergy)
	}
	if !ev.WorthIt() {
		t.Errorf("battery DR at 0.50/kWh should pay: net %v", ev.NetBenefit)
	}
}

func TestStorageStrategyRechargeUsesValleyRoom(t *testing.T) {
	// A valley after the event gives the battery recharge room bounded
	// by the baseline peak.
	s := &StorageStrategy{Battery: testBattery(), RechargeHeadroom: 0.5}
	samples := make([]units.Power, 12)
	for i := range samples {
		samples[i] = 10000
	}
	for i := 8; i < 12; i++ {
		samples[i] = 8000 // valley
	}
	baseline := timeseries.MustNewPower(t0, 15*time.Minute, samples)
	resp, err := s.Respond(baseline, oneHourEvent(0))
	if err != nil {
		t.Fatal(err)
	}
	// In the valley the battery recharges at the throttled 0.5 MW.
	for i := 8; i < 12; i++ {
		if resp.Load.At(i) != 8500 {
			t.Errorf("valley sample %d = %v, want 8500 (throttled recharge)", i, resp.Load.At(i))
		}
	}
	// Flat stretch outside events: no room, no recharge.
	for i := 4; i < 8; i++ {
		if resp.Load.At(i) != 10000 {
			t.Errorf("flat sample %d = %v, want untouched", i, resp.Load.At(i))
		}
	}
}
