// Package goroleak requires every goroutine spawned in the fleet-path
// packages to have a bounded lifetime.
//
// Invariant guarded: the route→serve fleet path spawns goroutines per
// request (attempt forwards, hedge losers' settlement), per connection
// (chaos proxy copiers), and per daemon (health poll loops, feed
// refresh). A goroutine with no shutdown signal outlives the work that
// spawned it; at fleet request rates an unbounded accumulation is an
// OOM with a delay fuse, and a peak-window goroutine that never exits
// keeps billing state alive past the window — a billing error, not
// just a leak. Every `go` statement must therefore carry evidence of a
// bounded lifetime:
//
//   - ctx plumbing: the spawned function receives or references a
//     context.Context (or an *http.Request, which carries one) — its
//     blocking work is cancelable by the owner;
//   - done-channel plumbing: the body receives from or selects on a
//     captured `chan struct{}` — the owner's close is the bound;
//   - WaitGroup registration: the body calls Done on a sync.WaitGroup
//     (typically deferred) — the owner's Wait is the bound.
//
// For `go f(...)` / `go x.m(...)` where the callee is declared in the
// same package, the callee's body is inspected with the same rules, so
// the accept-loop idiom (`go p.acceptLoop()` with `defer p.wg.Done()`
// inside) passes without annotation. A goroutine with none of the
// three shapes is reported as fire-and-forget. A deliberate daemon
// whose lifetime is the process — there should be almost none outside
// package main — is blessed with //lint:scvet-ignore goroleak <reason>.
package goroleak

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "require every goroutine in the fleet packages to have a bounded " +
		"lifetime: ctx/done-channel plumbing or WaitGroup registration",
	Run: run,
}

// scopes are the fleet-path packages where goroutines churn per
// request or per connection.
var scopes = []string{
	"internal/route",
	"internal/serve",
	"internal/feed",
	"internal/chaos",
	"internal/loadgen",
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:  pass,
		decls: map[*types.Func]*ast.FuncDecl{},
	}
	if !analysis.InScope(pass.Pkg, scopes...) {
		return nil
	}
	// Index the package's own function declarations so `go f(...)` can
	// be judged by f's body when f lives in this package.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[obj] = fd
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				c.check(g)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
}

// check judges one go statement: spawn-site arguments first, then the
// spawned body (literal or same-package callee).
func (c *checker) check(g *ast.GoStmt) {
	// Evidence at the spawn site: an argument that carries a context
	// (context.Context itself, or an *http.Request, whose embedded
	// context bounds the transport work the goroutine will do).
	for _, arg := range g.Call.Args {
		if tv, ok := c.pass.TypesInfo.Types[arg]; ok && carriesContext(tv.Type) {
			return
		}
	}

	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if c.bounded(fun.Body) {
			return
		}
	default:
		if fn := analysis.CalleeFunc(c.pass.TypesInfo, g.Call); fn != nil {
			// The callee's own parameters count (a method value whose
			// receiver-bound state carries a ctx does not — too deep).
			if sig, ok := fn.Type().(*types.Signature); ok && sigTakesContext(sig) {
				return
			}
			if fd, ok := c.decls[fn]; ok {
				if c.bounded(fd.Body) {
					return
				}
			} else {
				// Declared in another package: its contract is invisible
				// here, and no ctx crossed the spawn. Report — thread a
				// ctx or wrap in a registered literal.
			}
		}
	}

	c.pass.Reportf(g.Pos(),
		"goroutine has no bounded lifetime: thread a context (or done channel) into it, "+
			"register it on a sync.WaitGroup the owner waits on, or bless a true daemon "+
			"with //lint:scvet-ignore goroleak <reason>")
}

// bounded scans a spawned body for any of the three lifetime shapes.
// Nested function literals are descended: a bound acquired by a nested
// literal the body runs or registers still evidences plumbing (the
// conservative direction for a may-analysis of "is there any signal").
func (c *checker) bounded(body *ast.BlockStmt) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			// Any reference to a context-carrying value: <-ctx.Done(),
			// fireEvent(ctx, ...), req-bound transport work.
			if obj := c.pass.TypesInfo.Uses[n]; obj != nil && carriesContext(obj.Type()) {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			// Receive from a captured chan struct{}: the done/stop shape.
			if n.Op.String() == "<-" && c.isDoneChan(n.X) {
				found = true
				return false
			}
		case *ast.CallExpr:
			// wg.Done() on a sync.WaitGroup (usually deferred). The Wait
			// side lives with the owner; Done here is the registration.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok &&
					analysis.TypeIs(tv.Type, "sync", "WaitGroup") {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isDoneChan reports whether e is a value of type <-chan struct{} or
// chan struct{} — the conventional done/stop signal. Receives from
// data channels (typed elements) are not lifetime bounds: the sender
// may be gone.
func (c *checker) isDoneChan(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	ch, ok := types.Unalias(tv.Type).Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := types.Unalias(ch.Elem()).Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// carriesContext reports whether t is context.Context or *http.Request
// (a request carries its context; transport work on it is cancelable).
func carriesContext(t types.Type) bool {
	if t == nil {
		return false
	}
	return analysis.IsContextType(t) || analysis.TypeIs(t, "net/http", "Request")
}

// sigTakesContext reports whether any parameter carries a context.
func sigTakesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if carriesContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
