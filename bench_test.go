package repro

// Benchmark harness: one testing.B target per paper exhibit (Table 1,
// Table 2, Figure 1) and per derived experiment (E1–E10; see DESIGN.md's
// per-experiment index), plus ablation benches for the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its exhibit end to end, so -bench doubles
// as the reproduction driver; use cmd/scsurvey or examples/ to see the
// rendered outputs.

import (
	"context"
	"testing"
	"time"

	"repro/internal/calendar"
	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/exp"
	"repro/internal/forecast"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/optimize"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := exp.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if e.Table == nil && e.Figure == "" {
			b.Fatalf("%s produced no output", id)
		}
	}
}

// BenchmarkTable1_SiteRoster regenerates Table 1 (interview sites).
func BenchmarkTable1_SiteRoster(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkTable2_SurveySummary regenerates Table 2 by classifying the
// ten synthetic site contracts through the typology pipeline.
func BenchmarkTable2_SurveySummary(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkFigure1_Typology regenerates the Figure 1 typology tree.
func BenchmarkFigure1_Typology(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkE1_ComponentFrequencies tallies the §3.2.4/§3.3 aggregates
// and the text/matrix discrepancies.
func BenchmarkE1_ComponentFrequencies(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2_DemandChargeShare sweeps peak/average ratio against
// demand-charge share of the bill (Xu & Li's shape, §2).
func BenchmarkE2_DemandChargeShare(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3_PowerbandVsDemandCharge compares continuous-sampling
// powerband penalties with N-peak demand charges (§3.2.2).
func BenchmarkE3_PowerbandVsDemandCharge(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4_CSCSTender runs the CSCS-style procurement simulation (§4).
func BenchmarkE4_CSCSTender(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5_LANLWindowDR evaluates office-load DR on the 15 min–1 h
// timescale (§4).
func BenchmarkE5_LANLWindowDR(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6_IncentiveBreakEven locates the DR incentive break-even
// against the value of curtailed compute (§4/§5).
func BenchmarkE6_IncentiveBreakEven(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7_GoodNeighbor runs the deviation-detection/notification
// study (§3.4).
func BenchmarkE7_GoodNeighbor(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8_GridPeakShaving measures regional peak reduction vs DR
// enrollment (§1, FERC 6.6%).
func BenchmarkE8_GridPeakShaving(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9_RampAnalysis measures batch-facility ramp rates against a
// smoothed delivery (§1).
func BenchmarkE9_RampAnalysis(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10_TariffIncentives prices a shifted vs baseline facility
// under fixed/TOU/dynamic tariffs (§3.2.1).
func BenchmarkE10_TariffIncentives(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11_ContingencyPlan evaluates the three-level contingency
// plan with impact analysis (the paper's §5 future work).
func BenchmarkE11_ContingencyPlan(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12_CapModeAblation compares blocking vs DVFS cap handling.
func BenchmarkE12_CapModeAblation(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13_EnergyBuffering sizes batteries against demand charges.
func BenchmarkE13_EnergyBuffering(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14_RegulationService prices the SC's ramp agility as a
// frequency-regulation product.
func BenchmarkE14_RegulationService(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15_ColoSplitIncentive runs the colocation reverse auction
// against the split-incentive baseline.
func BenchmarkE15_ColoSplitIncentive(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16_ContractAdvisor advises all ten survey sites.
func BenchmarkE16_ContractAdvisor(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17_GreenSDA settles a week under a GreenSDA flexibility
// contract, passive vs adapting.
func BenchmarkE17_GreenSDA(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18_CostAllocation splits feeder capacity cost under both
// allocation rules.
func BenchmarkE18_CostAllocation(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19_Top500Landscape generates the synthetic Top500 power list.
func BenchmarkE19_Top500Landscape(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkE20_PowerbandKeeping runs the battery band-keeping study.
func BenchmarkE20_PowerbandKeeping(b *testing.B) { benchExperiment(b, "E20") }

// BenchmarkE21_CBLSettlement settles honest, passive and gaming sites
// against a CBL baseline.
func BenchmarkE21_CBLSettlement(b *testing.B) { benchExperiment(b, "E21") }

// BenchmarkE22_ProgramChoice compares emergency/capacity/regulation
// revenue across dispatch frequencies.
func BenchmarkE22_ProgramChoice(b *testing.B) { benchExperiment(b, "E22") }

// BenchmarkE23_RenewableMatching accounts an 80% renewables clause under
// annual vs time-matched conventions.
func BenchmarkE23_RenewableMatching(b *testing.B) { benchExperiment(b, "E23") }

// ---------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------

var benchStart = time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)

func benchLoad(b *testing.B) *timeseries.PowerSeries {
	b.Helper()
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: benchStart, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 12 * units.Megawatt, PeakToAverage: 1.8, NoiseSigma: 0.03, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return load
}

// BenchmarkAblation_DemandChargeMethods compares billing cost across the
// three demand-charge derivations on the same monthly profile.
func BenchmarkAblation_DemandChargeMethods(b *testing.B) {
	load := benchLoad(b)
	charges := map[string]*demand.Charge{
		"single-peak": demand.MustNewCharge(13, demand.SinglePeak, 0, 0),
		"3-peak-avg":  demand.MustNewCharge(13, demand.NPeakAverage, 3, 0),
		"ratchet-0.8": demand.MustNewCharge(13, demand.Ratchet, 0, 0.8),
	}
	for name, c := range charges {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = c.Cost(load, 15*units.Megawatt)
			}
		})
	}
}

// BenchmarkAblation_SchedulerPolicies compares FCFS against EASY
// backfill on the same trace.
func BenchmarkAblation_SchedulerPolicies(b *testing.B) {
	m := hpc.SmallSiteMachine()
	wcfg := hpc.DefaultWorkload()
	wcfg.Span = 24 * time.Hour
	jobs, err := hpc.GenerateWorkload(m, wcfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []sched.Policy{sched.FCFS, sched.EASYBackfill} {
		b.Run(policy.String(), func(b *testing.B) {
			cfg := sched.Config{Start: benchStart, Policy: policy, Horizon: 24 * time.Hour}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sched.Simulate(m, jobs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ForecastModels compares the forecasting models on a
// two-week facility history.
func BenchmarkAblation_ForecastModels(b *testing.B) {
	history := benchLoad(b)
	perDay := 96
	models := map[string]forecast.Model{
		"seasonal-naive": &forecast.SeasonalNaive{Period: perDay},
		"moving-average": &forecast.MovingAverage{Window: perDay},
		"ses":            &forecast.SES{Alpha: 0.3},
		"holt-winters":   &forecast.HoltWinters{Alpha: 0.3, Beta: 0.05, Gamma: 0.2, Period: perDay},
	}
	for name, m := range models {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := forecast.ForecastPower(m, history, perDay); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_DRStrategies compares the four SC response
// strategies on one dispatched event.
func BenchmarkAblation_DRStrategies(b *testing.B) {
	baseline := benchLoad(b)
	events := []market.Event{{
		Start: benchStart.Add(10 * 24 * time.Hour), Duration: time.Hour,
		RequestedReduction: 2 * units.Megawatt,
	}}
	strategies := map[string]dr.Strategy{
		"cap":   &dr.CapStrategy{Cap: 14 * units.Megawatt, OpCostPerKWh: 0.5},
		"shed":  &dr.ShedStrategy{Fraction: 0.1, OpCostPerKWh: 0.02},
		"shift": &dr.ShiftStrategy{Fraction: 0.2, RecoverySpan: 4 * time.Hour, OpCostPerKWh: 0.05},
		"gen":   &dr.GenStrategy{Capacity: 3 * units.Megawatt, FuelCostPerKWh: 0.25},
	}
	for name, s := range strategies {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Respond(baseline, events); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_StoragePolicies compares peak shaving against price
// arbitrage on the same battery and month.
func BenchmarkAblation_StoragePolicies(b *testing.B) {
	load := benchLoad(b)
	battery := &storage.Battery{
		Capacity: 8 * units.MegawattHour, MaxCharge: 2 * units.Megawatt,
		MaxDischarge: 4 * units.Megawatt, RoundTripEfficiency: 0.9, InitialSoC: 1,
	}
	prices := timeseries.ConstantPrice(benchStart, time.Hour, 31*24, 0.05)
	b.Run("peak-shave", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := storage.PeakShave(battery, load, 18*units.Megawatt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arbitrage", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := storage.Arbitrage(battery, load, prices, 0.03, 0.10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchYearContract builds the year-billing fixture shared by the
// legacy/engine benchmark pair: a full metered year under a three-part
// contract (fixed + TOU rider + demand charge + powerband), the
// library's hot path.
func benchYearContract(b *testing.B) (*contract.Contract, *timeseries.PowerSeries) {
	b.Helper()
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: benchStart, Span: 365 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 12 * units.Megawatt, PeakToAverage: 1.6, NoiseSigma: 0.03, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	band, err := demand.NewUpperPowerband(20*units.Megawatt, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	c := &contract.Contract{
		Name: "bench-year",
		Tariffs: []tariff.Tariff{
			tariff.MustNewFixed(0.06),
			tariff.MustNewTOU(calendar.SeasonalDayNight(8, 20, nil), map[string]units.EnergyPrice{
				"summer-peak": 0.04, "peak": 0.02, "offpeak": 0.005,
			}),
		},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(13)},
		Powerbands:    []*demand.Powerband{band},
	}
	return c, load
}

// BenchmarkBillingYear prices the year through the default path (the
// single-pass engine behind contract.BillMonths).
func BenchmarkBillingYear(b *testing.B) {
	c, load := benchYearContract(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bills, err := contract.BillMonths(c, load, contract.BillingInput{})
		if err != nil {
			b.Fatal(err)
		}
		if len(bills) != 12 {
			b.Fatalf("months = %d", len(bills))
		}
	}
}

// BenchmarkBillYearLegacy is the multi-pass baseline: every component
// re-scans each month's series (tariff costs, top-N peaks, powerband
// excursions are separate traversals), months strictly sequential.
func BenchmarkBillYearLegacy(b *testing.B) {
	c, load := benchYearContract(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bills, err := contract.BillMonthsLegacy(c, load, contract.BillingInput{})
		if err != nil {
			b.Fatal(err)
		}
		if len(bills) != 12 {
			b.Fatalf("months = %d", len(bills))
		}
	}
}

// BenchmarkBillYearEngine is the single-pass engine with the contract
// compiled once outside the loop and months evaluated concurrently —
// the intended steady-state usage for optimizers.
func BenchmarkBillYearEngine(b *testing.B) {
	c, load := benchYearContract(b)
	eng, err := contract.NewEngine(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bills, err := eng.BillMonths(load, contract.BillingInput{})
		if err != nil {
			b.Fatal(err)
		}
		if len(bills) != 12 {
			b.Fatalf("months = %d", len(bills))
		}
	}
}

// BenchmarkOptimizeYear is the optimizer's acceptance benchmark: a full
// 2000-candidate annealing search over the metered year against the
// bench contract, priced through the incremental re-bill fast path.
// Each op is one complete /v1/optimize-sized search; the acceptance
// bound is one op under five seconds.
func BenchmarkOptimizeYear(b *testing.B) {
	c, load := benchYearContract(b)
	eng, err := contract.NewEngine(c)
	if err != nil {
		b.Fatal(err)
	}
	flex := optimize.Flexibility{DeferrableFraction: 0.10, PartialFraction: 0.20}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := optimize.Optimize(context.Background(), eng, load,
			contract.BillingInput{}, flex, optimize.Options{Seed: 1, Candidates: 2000})
		if err != nil {
			b.Fatal(err)
		}
		if res.Savings <= 0 {
			b.Fatalf("no savings on the bench contract: %+v", res.Savings)
		}
	}
}

// BenchmarkBillYearEngineSequential isolates the single-pass win from
// the parallel-months win by forcing a one-worker pool.
func BenchmarkBillYearEngineSequential(b *testing.B) {
	c, load := benchYearContract(b)
	eng, err := contract.NewEngine(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bills, err := eng.BillMonthsWorkers(load, contract.BillingInput{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(bills) != 12 {
			b.Fatalf("months = %d", len(bills))
		}
	}
}
