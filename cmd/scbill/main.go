// Command scbill computes an itemized electricity bill for a facility
// load profile under a contract specification.
//
// The contract comes from a JSON spec file (see contract.Spec); the load
// either from a CSV file ("timestamp,kw" rows) or from the synthetic
// facility-load generator.
//
// Usage:
//
//	scbill -contract site.json -load meter.csv
//	scbill -contract site.json -load meter.csv -feed prices.csv
//	scbill -contract site.json -base-mw 12 -peak-ratio 1.8 -days 30
//	scbill -contract site.json -base-mw 12 -monthly   # bill per month
//	scbill -contract site.json -base-mw 12 -trace     # + span timings
//	scbill -batch specs.d/ -load meter.csv            # one load, N contracts
//
// With -batch DIR, every *.json spec in DIR (sorted by name) is billed
// against the single load profile: the load is parsed once, the price
// feed resolved once, and evaluation fans across the contract batch
// pool — the CLI twin of POST /v1/bill/batch. One failing spec reports
// its error and fails the exit code without aborting the other bills.
//
// Dynamic tariffs price against -feed, a "timestamp,price_per_kwh" CSV
// (or .json price file); without it they fall back to a flat reference
// feed at 0.045/kWh over the profile span.
//
// With -trace the bill is computed through the engine's traced
// evaluation path and a per-span timing table (count, total, mean for
// billing.period, billing.tariff, billing.demand, ...) is printed to
// stderr after the bill.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/hpc"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func main() {
	contractPath := flag.String("contract", "", "path to a JSON contract spec (required unless -batch)")
	batchDir := flag.String("batch", "", "directory of *.json contract specs to bill against one load")
	loadPath := flag.String("load", "", "path to a timestamp,kw CSV load profile")
	feedPath := flag.String("feed", "", "price-feed file for dynamic tariffs (timestamp,price_per_kwh CSV or .json; default: flat 0.045/kWh)")
	baseMW := flag.Float64("base-mw", 12, "synthetic load: base facility power in MW")
	peakRatio := flag.Float64("peak-ratio", 1.5, "synthetic load: peak-to-average ratio")
	days := flag.Int("days", 30, "synthetic load: span in days")
	seed := flag.Int64("seed", 1, "synthetic load: random seed")
	monthly := flag.Bool("monthly", false, "bill per calendar month instead of one period")
	jsonOut := flag.Bool("json", false, "emit the bill as JSON instead of a rendered table")
	workers := flag.Int("workers", 0, "worker pool size for -monthly (0 = all CPUs, 1 = sequential)")
	trace := flag.Bool("trace", false, "print per-stage span timings (count/total/mean) to stderr")
	flag.Parse()

	if *batchDir != "" {
		if *contractPath != "" {
			fmt.Fprintln(os.Stderr, "scbill: -contract and -batch are mutually exclusive")
			os.Exit(1)
		}
		if err := runBatch(*batchDir, *loadPath, *feedPath, *baseMW, *peakRatio, *days, *seed, *monthly, *jsonOut, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "scbill:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*contractPath, *loadPath, *feedPath, *baseMW, *peakRatio, *days, *seed, *monthly, *jsonOut, *workers, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "scbill:", err)
		os.Exit(1)
	}
}

// runBatch bills every *.json spec in dir against one load profile via
// the contract batch pool. The load and price feed are resolved once
// and shared by every engine, so N specs cost one parse plus N compiles
// and evaluations.
func runBatch(dir, loadPath, feedPath string, baseMW, peakRatio float64, days int, seed int64, monthly, jsonOut bool, workers int) error {
	specPaths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return err
	}
	sort.Strings(specPaths)
	if len(specPaths) == 0 {
		return fmt.Errorf("batch: no *.json specs in %s", dir)
	}

	load, err := loadProfile(loadPath, baseMW, peakRatio, days, seed)
	if err != nil {
		return err
	}
	prices, err := priceFeed(feedPath, load)
	if err != nil {
		return err
	}

	// Compile every spec up front; a broken spec fails its own slot
	// (Engine nil -> per-item error from BillBatch) without blocking the
	// rest of the directory.
	items := make([]contract.BatchItem, len(specPaths))
	buildErrs := make([]error, len(specPaths))
	for i, path := range specPaths {
		data, err := os.ReadFile(path)
		if err != nil {
			buildErrs[i] = err
			continue
		}
		spec, err := contract.ParseSpec(data)
		if err != nil {
			buildErrs[i] = fmt.Errorf("%s: %w", path, err)
			continue
		}
		c, err := spec.Build(contract.BuildContext{Feed: prices})
		if err != nil {
			buildErrs[i] = fmt.Errorf("%s: %w", path, err)
			continue
		}
		eng, err := contract.NewEngine(c)
		if err != nil {
			buildErrs[i] = fmt.Errorf("%s: %w", path, err)
			continue
		}
		items[i] = contract.BatchItem{Engine: eng, Load: load}
	}

	outcomes := contract.BillBatch(context.Background(), items, contract.BillingInput{},
		contract.BatchOptions{Monthly: monthly, Workers: workers, MonthWorkers: 1})

	failed := 0
	for i, path := range specPaths {
		err := buildErrs[i]
		if err == nil {
			err = outcomes[i].Err
		}
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "scbill: %s: %v\n", path, err)
			continue
		}
		bills := outcomes[i].Months
		if !monthly {
			bills = []*contract.Bill{outcomes[i].Bill}
		}
		if !jsonOut {
			fmt.Printf("== %s\n", path)
		}
		for _, b := range bills {
			if jsonOut {
				if err := printBillJSON(b); err != nil {
					return err
				}
				continue
			}
			printBill(b)
			fmt.Println()
		}
		if monthly && !jsonOut {
			fmt.Printf("Grand total: %s\n", contract.TotalOf(outcomes[i].Months))
		}
	}
	if failed > 0 {
		return fmt.Errorf("batch: %d of %d specs failed", failed, len(specPaths))
	}
	return nil
}

// priceFeed resolves the dynamic-tariff price series: the -feed file
// when given (strictly parsed — NaN/Inf prices and broken timestamp
// grids are rejected with line numbers), else the flat reference feed
// over the profile span (real deployments would pass market data).
func priceFeed(path string, load *timeseries.PowerSeries) (*timeseries.PriceSeries, error) {
	if path == "" {
		return timeseries.ConstantPrice(load.Start(), time.Hour,
			int(load.End().Sub(load.Start())/time.Hour)+1, 0.045), nil
	}
	return (&feed.File{Path: path}).Fetch(context.Background(), load.Start(), load.End())
}

func run(contractPath, loadPath, feedPath string, baseMW, peakRatio float64, days int, seed int64, monthly, jsonOut bool, workers int, trace bool) error {
	if contractPath == "" {
		return fmt.Errorf("-contract is required")
	}
	data, err := os.ReadFile(contractPath)
	if err != nil {
		return err
	}
	spec, err := contract.ParseSpec(data)
	if err != nil {
		return err
	}

	load, err := loadProfile(loadPath, baseMW, peakRatio, days, seed)
	if err != nil {
		return err
	}
	prices, err := priceFeed(feedPath, load)
	if err != nil {
		return err
	}
	c, err := spec.Build(contract.BuildContext{Feed: prices})
	if err != nil {
		return err
	}

	// -trace attaches a span registry to the evaluation context; the
	// engine's traced path attributes time per component family.
	ctx := context.Background()
	var spans *obs.Registry
	if trace {
		spans = obs.NewRegistry()
		ctx = obs.WithSpans(ctx, spans)
	}

	if monthly {
		eng, err := contract.NewEngine(c)
		if err != nil {
			return err
		}
		bills, err := eng.BillMonthsCtx(ctx, load, contract.BillingInput{}, workers)
		if err != nil {
			return err
		}
		for _, b := range bills {
			if jsonOut {
				if err := printBillJSON(b); err != nil {
					return err
				}
				continue
			}
			printBill(b)
			fmt.Println()
		}
		if !jsonOut {
			fmt.Printf("Grand total: %s\n", contract.TotalOf(bills))
		}
		printSpans(spans)
		return nil
	}

	if trace {
		// Traced single-period billing goes through the engine so the
		// context (and its registry) reaches the evaluation loop.
		eng, err := contract.NewEngine(c)
		if err != nil {
			return err
		}
		b, err := eng.BillCtx(ctx, load, contract.BillingInput{})
		if err != nil {
			return err
		}
		if jsonOut {
			if err := printBillJSON(b); err != nil {
				return err
			}
		} else {
			printBill(b)
		}
		printSpans(spans)
		return nil
	}

	analysis, err := core.Analyze(c, load, contract.BillingInput{})
	if err != nil {
		return err
	}
	if jsonOut {
		return printBillJSON(analysis.Bill)
	}
	printBill(analysis.Bill)
	fmt.Println()
	fmt.Print(report.KV([][2]string{
		{"Typology profile", analysis.Profile.String()},
		{"Load factor", fmt.Sprintf("%.2f", analysis.LoadFactor)},
		{"Demand share of bill", fmt.Sprintf("%.1f%%", analysis.DemandShare*100)},
		{"Effective all-in rate", analysis.EffectiveRate.String()},
	}))
	for _, inc := range analysis.Incentives {
		fmt.Println("incentive:", inc)
	}
	return nil
}

func loadProfile(path string, baseMW, peakRatio float64, days int, seed int64) (*timeseries.PowerSeries, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		s, err := timeseries.ReadPowerCSV(f)
		if err != nil {
			return nil, fmt.Errorf("load profile %s: %w", path, err)
		}
		return s, nil
	}
	return hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start:         time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC),
		Span:          time.Duration(days) * 24 * time.Hour,
		Interval:      15 * time.Minute,
		Base:          units.Power(baseMW) * units.Megawatt,
		PeakToAverage: peakRatio,
		NoiseSigma:    0.02,
		Seed:          seed,
	})
}

// printSpans renders the -trace timing table to stderr: one line per
// span with its observation count, total time, and mean.
func printSpans(spans *obs.Registry) {
	if spans == nil {
		return
	}
	snaps := spans.Snapshot()
	if len(snaps) == 0 {
		return
	}
	fmt.Fprintln(os.Stderr, "span                        count      total       mean")
	for _, s := range snaps {
		fmt.Fprintf(os.Stderr, "%-24s %8d %9.3fms %9.4fms\n",
			s.Name, s.Count, s.Sum*1e3, s.Mean()*1e3)
	}
}

func printBillJSON(b *contract.Bill) error {
	data, err := b.JSON()
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func printBill(b *contract.Bill) {
	tbl := report.NewTable(
		fmt.Sprintf("Bill for %s  [%s – %s]", b.Contract,
			b.PeriodStart.Format("2006-01-02"), b.PeriodEnd.Format("2006-01-02")),
		"Line item", "Quantity", "Amount")
	for _, l := range b.Lines {
		tbl.AddRow(l.Description, l.Quantity, l.Amount.String())
	}
	tbl.AddRow("TOTAL", b.Energy.String(), b.Total.String())
	fmt.Print(tbl.Render())
}
