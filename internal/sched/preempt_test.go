package sched

import (
	"testing"
	"time"

	"repro/internal/hpc"
)

func TestPreemptUnderCapCheckpointsRunningJob(t *testing.T) {
	m := tinyMachine(t)
	// A checkpointable full-machine job starts at 0 (10 kW IT); a cap
	// window of 7 kW opens at +30 min. With preemption the job is
	// checkpointed and resumes after the window.
	j := job(1, 0, 2*time.Hour, 10)
	j.Checkpointable = true
	window := CapWindow{Start: t0.Add(30 * time.Minute), End: t0.Add(90 * time.Minute), Cap: 7}
	res, err := Simulate(m, []*hpc.Job{j}, Config{
		Start: t0, CapWindows: []CapWindow{window},
		PreemptUnderCap: true, ShutdownIdle: true,
		CheckpointOverhead: 10 * time.Minute,
		Horizon:            12 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", res.Preemptions)
	}
	// Exactly one record (the restart must not duplicate it).
	if len(res.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(res.Records))
	}
	// During the window the machine is idle (shutdown) → IT power 0.
	inWindow, err := res.ITLoad.Window(window.Start, window.End)
	if err != nil {
		t.Fatal(err)
	}
	peak, _, _ := inWindow.Peak()
	if peak > 7 {
		t.Errorf("cap violated during window: %v", peak)
	}
	// Work completes: 30 min done + (90 min remaining + 10 min overhead)
	// after the window ends at 90 min → makespan 90+100 = 190 min.
	want := 190 * time.Minute
	if res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	if !res.Records[0].Completed {
		t.Error("job should complete")
	}
}

func TestPreemptSkipsNonCheckpointable(t *testing.T) {
	m := tinyMachine(t)
	j := job(1, 0, 2*time.Hour, 10) // NOT checkpointable
	window := CapWindow{Start: t0.Add(30 * time.Minute), End: t0.Add(90 * time.Minute), Cap: 7}
	res, err := Simulate(m, []*hpc.Job{j}, Config{
		Start: t0, CapWindows: []CapWindow{window},
		PreemptUnderCap: true, ShutdownIdle: true,
		Horizon: 12 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 0 {
		t.Errorf("non-checkpointable job must ride through, got %d preemptions", res.Preemptions)
	}
	// It finishes undisturbed.
	if res.Makespan != 2*time.Hour {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestPreemptDisabledByDefault(t *testing.T) {
	m := tinyMachine(t)
	j := job(1, 0, 2*time.Hour, 10)
	j.Checkpointable = true
	window := CapWindow{Start: t0.Add(30 * time.Minute), End: t0.Add(90 * time.Minute), Cap: 7}
	res, err := Simulate(m, []*hpc.Job{j}, Config{
		Start: t0, CapWindows: []CapWindow{window}, ShutdownIdle: true,
		Horizon: 12 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 0 {
		t.Error("preemption must be opt-in")
	}
}

func TestPreemptPicksNewestVictimFirst(t *testing.T) {
	m := tinyMachine(t)
	// Two checkpointable 5-node jobs; the second starts later. A 6 kW
	// cap window at +30 min forces ONE preemption — the newer job.
	j1 := job(1, 0, 3*time.Hour, 5)
	j1.Checkpointable = true
	j2 := job(2, 10*time.Minute, 3*time.Hour, 5)
	j2.Checkpointable = true
	window := CapWindow{Start: t0.Add(30 * time.Minute), End: t0.Add(60 * time.Minute), Cap: 6}
	res, err := Simulate(m, []*hpc.Job{j1, j2}, Config{
		Start: t0, CapWindows: []CapWindow{window},
		PreemptUnderCap: true, ShutdownIdle: true,
		Horizon: 12 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", res.Preemptions)
	}
	// j1 (older) rides through: completes exactly at 3 h.
	var j1rec, j2rec *JobRecord
	for i := range res.Records {
		switch res.Records[i].Job.ID {
		case 1:
			j1rec = &res.Records[i]
		case 2:
			j2rec = &res.Records[i]
		}
	}
	if j1rec == nil || j2rec == nil {
		t.Fatal("both jobs should have records")
	}
	if !j1rec.Completed || !j2rec.Completed {
		t.Error("both jobs should complete eventually")
	}
	if j1rec.Start != 0 {
		t.Errorf("j1 start = %v", j1rec.Start)
	}
}

func TestPreemptedJobResumesBeforeQueue(t *testing.T) {
	m := tinyMachine(t)
	// A checkpointable job is preempted; a later rigid job is queued.
	// When the window lifts, the preempted job resumes first (front of
	// queue).
	j1 := job(1, 0, 2*time.Hour, 10)
	j1.Checkpointable = true
	j2 := job(2, 40*time.Minute, time.Hour, 10)
	window := CapWindow{Start: t0.Add(30 * time.Minute), End: t0.Add(60 * time.Minute), Cap: 7}
	res, err := Simulate(m, []*hpc.Job{j1, j2}, Config{
		Start: t0, CapWindows: []CapWindow{window},
		PreemptUnderCap: true, ShutdownIdle: true, Policy: FCFS,
		CheckpointOverhead: 5 * time.Minute,
		Horizon:            12 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	var j2rec *JobRecord
	for i := range res.Records {
		if res.Records[i].Job.ID == 2 {
			j2rec = &res.Records[i]
		}
	}
	if j2rec == nil {
		t.Fatal("j2 should run")
	}
	// j1 resumes at 60 min with 95 min remaining → j2 starts ≥ 155 min.
	if j2rec.Start < 150*time.Minute {
		t.Errorf("j2 started at %v; preempted job must resume first", j2rec.Start)
	}
}
