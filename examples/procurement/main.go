// Procurement example: the CSCS case study (§4) as code. The site
// publishes a contract model — demand charges removed, at least 80%
// renewable supply, a price formula with four variables left to the
// bidding ESPs — collects bids, awards the tender and quantifies the
// saving against the old contract.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/demand"
	"repro/internal/hpc"
	"repro/internal/procurement"
	"repro/internal/report"
	"repro/internal/tariff"
	"repro/internal/units"
)

func main() {
	// The buyer's reference year: a 5 MW-class site (CSCS scale).
	refLoad, err := repro.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC),
		Span:  365 * 24 * time.Hour, Interval: time.Hour,
		Base: 5 * units.Megawatt, PeakToAverage: 1.4, NoiseSigma: 0.02, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	tender := &repro.Tender{
		Name:                  "CSCS-style public tender",
		Variables:             procurement.CSCSVariables(),
		RenewableShareMin:     0.80,
		DisallowDemandCharges: true,
		ReferenceLoad:         refLoad,
	}

	bids, err := procurement.GenerateBids(tender, procurement.BidGenConfig{
		N: 25, CompliantFraction: 0.7, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	outcome, err := tender.Run(bids)
	if err != nil {
		log.Fatal(err)
	}

	tbl := report.NewTable("Top five compliant bids", "Rank", "Bidder", "Rate", "Annual cost", "Renewables")
	rank := 0
	for _, s := range outcome.Ranked {
		if !s.Compliant {
			continue
		}
		rank++
		if rank > 5 {
			break
		}
		tbl.AddRow(fmt.Sprintf("%d", rank), s.Bid.Bidder,
			s.Bid.EffectiveRate().String(), s.AnnualCost.String(),
			fmt.Sprintf("%.0f%%", s.Bid.RenewableShare*100))
	}
	fmt.Print(tbl.Render())

	// Compare against the pre-tender contract (fixed rate + the demand
	// charge the tender removed).
	statusQuo := &repro.Contract{
		Name:          "pre-tender contract",
		Tariffs:       []repro.Tariff{tariff.MustNewFixed(0.075)},
		DemandCharges: []*repro.DemandCharge{demand.SimpleCharge(11)},
	}
	base, won, saved, err := tender.Savings(outcome, statusQuo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report.KV([][2]string{
		{"Winner", outcome.Winner.Bid.Bidder},
		{"Old annual cost", base.String()},
		{"New annual cost", won.String()},
		{"Annual savings", fmt.Sprintf("%s (%.1f%%)", saved, saved.Float()/base.Float()*100)},
	}))
	fmt.Println("\n\"The management at CSCS have transformed from being a passive electricity")
	fmt.Println("consumer into one which is actively engaged with their ESP.\" — §4")
}
