package billing

// Columnar kernel interfaces. A Kernel is the compiled, columnar twin
// of a LineItemProducer: where an Accumulator observes boxed Samples
// one at a time through an interface call, a Scanner consumes
// contiguous []units.Power chunks of a month block in a tight loop —
// no per-sample dispatch, near-zero allocation. Producers opt in by
// implementing KernelProducer; the evaluator takes the columnar path
// only when every producer compiles (a single holdout falls the whole
// evaluation back to the sample-walk oracle, keeping bills exact).
//
// The compilation contract is strict arithmetic identity: a scanner
// must perform the same floating-point operations in the same order as
// the producer's accumulator, so the columnar path is byte-identical to
// the legacy path bill-for-bill (pinned by contract's golden tests).

import (
	"time"

	"repro/internal/units"
)

// Kernel is a producer compiled for columnar evaluation. Kernels are
// immutable and safe for concurrent NewScanner calls; all per-period
// state lives in the Scanner.
type Kernel interface {
	// NewScanner returns a fresh per-period scanner. Scanners are
	// pooled and reused across periods via Begin.
	NewScanner() Scanner
}

// Scanner is a kernel's per-period state. The evaluator calls Begin
// once per period, Scan for every chunk of the period's samples in
// order (each sample exactly once), and AppendLines after the last
// chunk. Scanners are reused across periods: Begin must fully reset.
type Scanner interface {
	// Begin resets the scanner for a period starting at start with the
	// given metering interval and n total samples. pctx remains valid
	// until AppendLines returns.
	Begin(pctx *PeriodContext, start time.Time, interval time.Duration, n int)
	// Scan consumes one chunk. base is the period-relative index of
	// samples[0]; chunks arrive in order and partition the period.
	Scan(samples []units.Power, base int)
	// AppendLines appends the period's line items to dst and returns
	// the extended slice, called once after the last chunk.
	AppendLines(dst []LineItem) []LineItem
}

// KernelProducer is an optional LineItemProducer extension: producers
// that can compile themselves into a columnar kernel implement it.
// CompileKernel may return nil when this particular instance cannot be
// compiled (e.g. a tariff stack containing a non-compilable component);
// the evaluator then keeps the sample-walk path for the whole contract.
type KernelProducer interface {
	CompileKernel() Kernel
}

// CompileKernel compiles the flat fee: no per-sample work at all.
func (f FlatFee) CompileKernel() Kernel { return feeKernel{fee: f} }

var _ KernelProducer = FlatFee{}

type feeKernel struct{ fee FlatFee }

func (k feeKernel) NewScanner() Scanner { return &feeScanner{fee: k.fee} }

type feeScanner struct{ fee FlatFee }

func (s *feeScanner) Begin(*PeriodContext, time.Time, time.Duration, int) {}

func (s *feeScanner) Scan([]units.Power, int) {}

func (s *feeScanner) AppendLines(dst []LineItem) []LineItem {
	return append(dst, LineItem{
		Class:       ClassFlatFee,
		Description: s.fee.Name,
		Quantity:    "flat",
		Amount:      s.fee.Amount,
	})
}

// CeilIndex returns the smallest sample index i such that
// start + i*interval is at or after start + d — the standard
// duration-to-index ceiling conversion kernels use to turn wall-clock
// boundaries (month edges, price-feed slots, emergency windows) into
// sample indices. d must be non-negative.
func CeilIndex(d, interval time.Duration) int {
	return int((d + interval - 1) / interval)
}
