// Package timeseries implements regular-interval time series as used in
// utility metering and facility power monitoring: a start instant, a fixed
// sampling interval, and a dense slice of samples.
//
// The package provides two concrete series types sharing one layout:
// PowerSeries (kW samples, the facility load profile a revenue meter
// records) and PriceSeries (currency/kWh samples, e.g. a real-time tariff
// feed). Common operations — integration of power to energy, peak
// extraction, resampling to a coarser interval, windowing by wall-clock
// time, ramp-rate analysis, percentiles — are the primitives every higher
// layer (billing, demand charges, DR evaluation, grid simulation) builds on.
//
// Utility revenue metering is conventionally done on 15-minute intervals;
// that is the package's DefaultInterval, but any positive interval works.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/units"
)

// DefaultInterval is the conventional utility metering interval.
const DefaultInterval = 15 * time.Minute

// Errors returned by series constructors and combinators.
var (
	ErrBadInterval   = errors.New("timeseries: interval must be positive")
	ErrEmpty         = errors.New("timeseries: series has no samples")
	ErrMisaligned    = errors.New("timeseries: series are not aligned")
	ErrBadResample   = errors.New("timeseries: target interval must be a positive multiple of the source interval")
	ErrWindowOutside = errors.New("timeseries: window does not intersect series")
)

// PowerSeries is a dense, regular-interval electrical load profile. The
// sample at index i is the average power drawn over the half-open interval
// [Start+i*Interval, Start+(i+1)*Interval).
type PowerSeries struct {
	start    time.Time
	interval time.Duration
	samples  []units.Power
}

// NewPower creates a PowerSeries. The sample slice is used directly (not
// copied); callers must not mutate it afterwards.
func NewPower(start time.Time, interval time.Duration, samples []units.Power) (*PowerSeries, error) {
	if interval <= 0 {
		return nil, ErrBadInterval
	}
	return &PowerSeries{start: start, interval: interval, samples: samples}, nil
}

// MustNewPower is NewPower that panics on error, for static construction.
func MustNewPower(start time.Time, interval time.Duration, samples []units.Power) *PowerSeries {
	s, err := NewPower(start, interval, samples)
	if err != nil {
		panic(err)
	}
	return s
}

// ConstantPower returns a series of n samples all equal to p.
func ConstantPower(start time.Time, interval time.Duration, n int, p units.Power) *PowerSeries {
	samples := make([]units.Power, n)
	for i := range samples {
		samples[i] = p
	}
	return MustNewPower(start, interval, samples)
}

// Start returns the instant the first sample interval begins.
func (s *PowerSeries) Start() time.Time { return s.start }

// Interval returns the sampling interval.
func (s *PowerSeries) Interval() time.Duration { return s.interval }

// Len returns the number of samples.
func (s *PowerSeries) Len() int { return len(s.samples) }

// End returns the instant just after the last sample interval.
func (s *PowerSeries) End() time.Time {
	return s.start.Add(time.Duration(len(s.samples)) * s.interval)
}

// At returns the i-th sample.
func (s *PowerSeries) At(i int) units.Power { return s.samples[i] }

// TimeAt returns the start instant of the i-th sample interval.
func (s *PowerSeries) TimeAt(i int) time.Time {
	return s.start.Add(time.Duration(i) * s.interval)
}

// Samples returns a copy of the underlying samples.
func (s *PowerSeries) Samples() []units.Power {
	out := make([]units.Power, len(s.samples))
	copy(out, s.samples)
	return out
}

// IndexAt returns the sample index whose interval contains instant t, and
// whether t falls inside the series' span.
func (s *PowerSeries) IndexAt(t time.Time) (int, bool) {
	if t.Before(s.start) {
		return 0, false
	}
	i := int(t.Sub(s.start) / s.interval)
	if i >= len(s.samples) {
		return len(s.samples) - 1, false
	}
	return i, true
}

// Energy integrates the whole series to total consumed energy.
func (s *PowerSeries) Energy() units.Energy {
	var kwh float64
	h := s.interval.Hours()
	for _, p := range s.samples {
		kwh += float64(p) * h
	}
	return units.Energy(kwh)
}

// Peak returns the maximum sample and the start time of its interval.
// It returns an error for an empty series.
func (s *PowerSeries) Peak() (units.Power, time.Time, error) {
	if len(s.samples) == 0 {
		return 0, time.Time{}, ErrEmpty
	}
	best, at := s.samples[0], 0
	for i, p := range s.samples {
		if p > best {
			best, at = p, i
		}
	}
	return best, s.TimeAt(at), nil
}

// Min returns the minimum sample. It returns an error for an empty series.
func (s *PowerSeries) Min() (units.Power, error) {
	if len(s.samples) == 0 {
		return 0, ErrEmpty
	}
	best := s.samples[0]
	for _, p := range s.samples {
		if p < best {
			best = p
		}
	}
	return best, nil
}

// Mean returns the average power across the series (0 for empty).
func (s *PowerSeries) Mean() units.Power {
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.samples {
		sum += float64(p)
	}
	return units.Power(sum / float64(len(s.samples)))
}

// LoadFactor is the ratio of average to peak power, the standard utility
// measure of how "peaky" a load is (1.0 = perfectly flat). The paper's
// demand-charge discussion (and Xu & Li's result it cites) is about how
// cost share varies with the inverse of this quantity.
func (s *PowerSeries) LoadFactor() float64 {
	peak, _, err := s.Peak()
	if err != nil || peak <= 0 {
		return 0
	}
	return float64(s.Mean()) / float64(peak)
}

// TopN returns the n largest samples in descending order, with their
// interval start times. If the series has fewer than n samples, all are
// returned. Demand charges of the "three 15 MW peaks" kind described in
// the paper bill on exactly this quantity.
func (s *PowerSeries) TopN(n int) []PeakSample {
	idx := make([]int, len(s.samples))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if s.samples[idx[a]] != s.samples[idx[b]] {
			return s.samples[idx[a]] > s.samples[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	if n < 0 {
		n = 0
	}
	out := make([]PeakSample, n)
	for i := 0; i < n; i++ {
		out[i] = PeakSample{Power: s.samples[idx[i]], Time: s.TimeAt(idx[i])}
	}
	return out
}

// PeakSample is one ranked peak observation.
type PeakSample struct {
	Power units.Power
	Time  time.Time
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1) of the samples using
// linear interpolation between order statistics. It returns an error for
// an empty series.
func (s *PowerSeries) Percentile(q float64) (units.Power, error) {
	if len(s.samples) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(s.samples))
	for i, p := range s.samples {
		sorted[i] = float64(p)
	}
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return units.Power(sorted[lo]), nil
	}
	frac := pos - float64(lo)
	return units.Power(sorted[lo]*(1-frac) + sorted[hi]*frac), nil
}

// Window returns the sub-series covering [from, to). The bounds are
// clipped to the series span; an error is returned if the window does not
// intersect the series at all. The returned series shares storage.
func (s *PowerSeries) Window(from, to time.Time) (*PowerSeries, error) {
	if !to.After(from) {
		return nil, ErrWindowOutside
	}
	lo := 0
	if from.After(s.start) {
		lo = int((from.Sub(s.start) + s.interval - 1) / s.interval)
	}
	hi := len(s.samples)
	if to.Before(s.End()) {
		hi = int(to.Sub(s.start) / s.interval)
	}
	if lo >= hi || lo >= len(s.samples) || hi <= 0 {
		return nil, ErrWindowOutside
	}
	return &PowerSeries{
		start:    s.TimeAt(lo),
		interval: s.interval,
		samples:  s.samples[lo:hi],
	}, nil
}

// Resample aggregates to a coarser interval that must be an integer
// multiple of the current one, averaging the samples inside each new
// interval (energy-preserving for complete groups). A trailing partial
// group is averaged over the samples present.
func (s *PowerSeries) Resample(target time.Duration) (*PowerSeries, error) {
	if target <= 0 || target%s.interval != 0 {
		return nil, ErrBadResample
	}
	k := int(target / s.interval)
	if k == 1 {
		return s, nil
	}
	n := (len(s.samples) + k - 1) / k
	out := make([]units.Power, 0, n)
	for i := 0; i < len(s.samples); i += k {
		end := i + k
		if end > len(s.samples) {
			end = len(s.samples)
		}
		var sum float64
		for _, p := range s.samples[i:end] {
			sum += float64(p)
		}
		out = append(out, units.Power(sum/float64(end-i)))
	}
	return &PowerSeries{start: s.start, interval: target, samples: out}, nil
}

// Map returns a new series with f applied to every sample.
func (s *PowerSeries) Map(f func(units.Power) units.Power) *PowerSeries {
	out := make([]units.Power, len(s.samples))
	for i, p := range s.samples {
		out[i] = f(p)
	}
	return &PowerSeries{start: s.start, interval: s.interval, samples: out}
}

// Scale returns the series multiplied by a constant factor.
func (s *PowerSeries) Scale(f float64) *PowerSeries {
	return s.Map(func(p units.Power) units.Power { return units.Power(float64(p) * f) })
}

// ClampAbove caps all samples at limit (power capping).
func (s *PowerSeries) ClampAbove(limit units.Power) *PowerSeries {
	return s.Map(func(p units.Power) units.Power {
		if p > limit {
			return limit
		}
		return p
	})
}

// Add returns the pointwise sum of two aligned series (same start,
// interval and length).
func (s *PowerSeries) Add(o *PowerSeries) (*PowerSeries, error) {
	if err := s.checkAligned(o); err != nil {
		return nil, err
	}
	out := make([]units.Power, len(s.samples))
	for i := range out {
		out[i] = s.samples[i] + o.samples[i]
	}
	return &PowerSeries{start: s.start, interval: s.interval, samples: out}, nil
}

// Sub returns the pointwise difference s − o of two aligned series.
func (s *PowerSeries) Sub(o *PowerSeries) (*PowerSeries, error) {
	if err := s.checkAligned(o); err != nil {
		return nil, err
	}
	out := make([]units.Power, len(s.samples))
	for i := range out {
		out[i] = s.samples[i] - o.samples[i]
	}
	return &PowerSeries{start: s.start, interval: s.interval, samples: out}, nil
}

func (s *PowerSeries) checkAligned(o *PowerSeries) error {
	if !s.start.Equal(o.start) || s.interval != o.interval || len(s.samples) != len(o.samples) {
		return ErrMisaligned
	}
	return nil
}

// Ramps returns the per-step ramp rates between consecutive samples
// (length Len()-1). The i-th element is the ramp from sample i to i+1.
func (s *PowerSeries) Ramps() []units.RampRate {
	if len(s.samples) < 2 {
		return nil
	}
	out := make([]units.RampRate, len(s.samples)-1)
	for i := 0; i+1 < len(s.samples); i++ {
		out[i] = units.RampBetween(s.samples[i], s.samples[i+1], s.interval)
	}
	return out
}

// MaxRamp returns the largest absolute ramp rate in the series, or zero
// for series with fewer than two samples.
func (s *PowerSeries) MaxRamp() units.RampRate {
	var best float64
	for _, r := range s.Ramps() {
		if a := math.Abs(float64(r)); a > best {
			best = a
		}
	}
	return units.RampRate(best)
}

// RollingMax returns a series where each sample is the maximum of the
// window of w samples ending at that position (w ≥ 1). Used for
// continuous powerband monitoring.
func (s *PowerSeries) RollingMax(w int) *PowerSeries {
	if w < 1 {
		w = 1
	}
	out := make([]units.Power, len(s.samples))
	// Monotonic deque of indices with decreasing values.
	deque := make([]int, 0, w)
	for i, p := range s.samples {
		for len(deque) > 0 && s.samples[deque[len(deque)-1]] <= p {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, i)
		if deque[0] <= i-w {
			deque = deque[1:]
		}
		out[i] = s.samples[deque[0]]
	}
	return &PowerSeries{start: s.start, interval: s.interval, samples: out}
}

// SplitMonths partitions the series into calendar-month sub-series in the
// series' location, in chronological order. Partial months at the edges
// are included as-is. This is the canonical billing-period split.
func (s *PowerSeries) SplitMonths() []*PowerSeries {
	if len(s.samples) == 0 {
		return nil
	}
	var out []*PowerSeries
	cur := 0
	curKey := monthKey(s.TimeAt(0))
	for i := 1; i < len(s.samples); i++ {
		if k := monthKey(s.TimeAt(i)); k != curKey {
			out = append(out, &PowerSeries{start: s.TimeAt(cur), interval: s.interval, samples: s.samples[cur:i]})
			cur, curKey = i, k
		}
	}
	out = append(out, &PowerSeries{start: s.TimeAt(cur), interval: s.interval, samples: s.samples[cur:]})
	return out
}

func monthKey(t time.Time) int {
	return t.Year()*12 + int(t.Month()) - 1
}

// String summarizes the series.
func (s *PowerSeries) String() string {
	peak, _, err := s.Peak()
	if err != nil {
		return fmt.Sprintf("PowerSeries[empty, start %s]", s.start.Format(time.RFC3339))
	}
	return fmt.Sprintf("PowerSeries[%d×%s from %s, mean %s, peak %s]",
		len(s.samples), s.interval, s.start.Format("2006-01-02 15:04"), s.Mean(), peak)
}

// PriceSeries is a dense, regular-interval energy price feed, e.g. the
// real-time price stream behind a dynamically variable tariff.
type PriceSeries struct {
	start    time.Time
	interval time.Duration
	samples  []units.EnergyPrice
}

// NewPrice creates a PriceSeries; the samples slice is used directly.
func NewPrice(start time.Time, interval time.Duration, samples []units.EnergyPrice) (*PriceSeries, error) {
	if interval <= 0 {
		return nil, ErrBadInterval
	}
	return &PriceSeries{start: start, interval: interval, samples: samples}, nil
}

// MustNewPrice is NewPrice that panics on error.
func MustNewPrice(start time.Time, interval time.Duration, samples []units.EnergyPrice) *PriceSeries {
	s, err := NewPrice(start, interval, samples)
	if err != nil {
		panic(err)
	}
	return s
}

// ConstantPrice returns a flat price series of n samples.
func ConstantPrice(start time.Time, interval time.Duration, n int, p units.EnergyPrice) *PriceSeries {
	samples := make([]units.EnergyPrice, n)
	for i := range samples {
		samples[i] = p
	}
	return MustNewPrice(start, interval, samples)
}

// Start returns the instant the first sample interval begins.
func (s *PriceSeries) Start() time.Time { return s.start }

// Interval returns the sampling interval.
func (s *PriceSeries) Interval() time.Duration { return s.interval }

// Len returns the number of samples.
func (s *PriceSeries) Len() int { return len(s.samples) }

// End returns the instant just after the last sample interval.
func (s *PriceSeries) End() time.Time {
	return s.start.Add(time.Duration(len(s.samples)) * s.interval)
}

// At returns the i-th sample.
func (s *PriceSeries) At(i int) units.EnergyPrice { return s.samples[i] }

// TimeAt returns the start instant of the i-th sample interval.
func (s *PriceSeries) TimeAt(i int) time.Time {
	return s.start.Add(time.Duration(i) * s.interval)
}

// PriceAt returns the price in effect at instant t. Instants before the
// series clamp to the first sample; instants at or after the end clamp to
// the last. ok reports whether t was inside the span.
func (s *PriceSeries) PriceAt(t time.Time) (price units.EnergyPrice, ok bool) {
	if len(s.samples) == 0 {
		return 0, false
	}
	if t.Before(s.start) {
		return s.samples[0], false
	}
	i := int(t.Sub(s.start) / s.interval)
	if i >= len(s.samples) {
		return s.samples[len(s.samples)-1], false
	}
	return s.samples[i], true
}

// Mean returns the average price (0 for empty).
func (s *PriceSeries) Mean() units.EnergyPrice {
	if len(s.samples) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.samples {
		sum += float64(p)
	}
	return units.EnergyPrice(sum / float64(len(s.samples)))
}

// CostOf integrates a power series against the price feed: each power
// sample is billed at the price in effect at its interval start. The two
// series need not be aligned; prices clamp at the feed's edges.
func (s *PriceSeries) CostOf(load *PowerSeries) units.Money {
	var total units.Money
	h := load.Interval().Hours()
	for i := 0; i < load.Len(); i++ {
		price, _ := s.PriceAt(load.TimeAt(i))
		e := units.Energy(float64(load.At(i)) * h)
		total += price.Cost(e)
	}
	return total
}
