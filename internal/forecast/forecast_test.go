package forecast

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.May, 2, 0, 0, 0, 0, time.UTC)

func TestSeasonalNaive(t *testing.T) {
	m := &SeasonalNaive{Period: 3}
	if err := m.Fit([]float64{9, 9, 9, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 1, 2}
	for i, w := range want {
		if fc[i] != w {
			t.Errorf("fc[%d] = %v, want %v", i, fc[i], w)
		}
	}
}

func TestSeasonalNaiveErrors(t *testing.T) {
	m := &SeasonalNaive{Period: 0}
	if err := m.Fit([]float64{1, 2}); !errors.Is(err, ErrBadParam) {
		t.Errorf("zero period: %v", err)
	}
	m2 := &SeasonalNaive{Period: 5}
	if err := m2.Fit([]float64{1, 2}); err != ErrTooShort {
		t.Errorf("short fit: %v", err)
	}
	if _, err := m2.Forecast(3); err != ErrNotFitted {
		t.Errorf("unfitted forecast: %v", err)
	}
	m3 := &SeasonalNaive{Period: 2}
	if err := m3.Fit([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := m3.Forecast(0); err != ErrBadHorizon {
		t.Errorf("zero horizon: %v", err)
	}
	if m3.Name() == "" {
		t.Error("name")
	}
}

func TestMovingAverage(t *testing.T) {
	m := &MovingAverage{Window: 4}
	if err := m.Fit([]float64{100, 100, 2, 4, 6, 8}); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(2)
	if err != nil {
		t.Fatal(err)
	}
	if fc[0] != 5 || fc[1] != 5 {
		t.Errorf("fc = %v, want flat 5", fc)
	}
}

func TestMovingAverageErrors(t *testing.T) {
	if err := (&MovingAverage{}).Fit([]float64{1}); !errors.Is(err, ErrBadParam) {
		t.Error("zero window")
	}
	m := &MovingAverage{Window: 10}
	if err := m.Fit([]float64{1, 2}); err != ErrTooShort {
		t.Error("short history")
	}
	if _, err := m.Forecast(1); err != ErrNotFitted {
		t.Error("unfitted")
	}
	m2 := &MovingAverage{Window: 2}
	if err := m2.Fit([]float64{1, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Forecast(-1); err != ErrBadHorizon {
		t.Error("bad horizon")
	}
	if m2.Name() == "" {
		t.Error("name")
	}
}

func TestSES(t *testing.T) {
	// Alpha=1 tracks the last observation exactly.
	m := &SES{Alpha: 1}
	if err := m.Fit([]float64{5, 9, 2}); err != nil {
		t.Fatal(err)
	}
	fc, _ := m.Forecast(1)
	if fc[0] != 2 {
		t.Errorf("alpha=1 should track last obs, got %v", fc[0])
	}
	// Small alpha stays near the initial level.
	m2 := &SES{Alpha: 0.01}
	if err := m2.Fit([]float64{10, 20, 20, 20}); err != nil {
		t.Fatal(err)
	}
	fc2, _ := m2.Forecast(1)
	if !(fc2[0] > 10 && fc2[0] < 11) {
		t.Errorf("small alpha should stay near 10, got %v", fc2[0])
	}
}

func TestSESErrors(t *testing.T) {
	if err := (&SES{Alpha: 0}).Fit([]float64{1}); !errors.Is(err, ErrBadParam) {
		t.Error("alpha 0")
	}
	if err := (&SES{Alpha: 1.1}).Fit([]float64{1}); !errors.Is(err, ErrBadParam) {
		t.Error("alpha > 1")
	}
	if err := (&SES{Alpha: 0.5}).Fit(nil); err != ErrTooShort {
		t.Error("empty history")
	}
	m := &SES{Alpha: 0.5}
	if _, err := m.Forecast(1); err != ErrNotFitted {
		t.Error("unfitted")
	}
	if err := m.Fit([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0); err != ErrBadHorizon {
		t.Error("bad horizon")
	}
	if m.Name() == "" {
		t.Error("name")
	}
}

func TestHoltWintersRecoversSeasonalPattern(t *testing.T) {
	// Pure seasonal signal, no trend: HW should forecast it well.
	period := 24
	var history []float64
	for d := 0; d < 14; d++ {
		for h := 0; h < period; h++ {
			history = append(history, 1000+500*math.Sin(2*math.Pi*float64(h)/float64(period)))
		}
	}
	m := &HoltWinters{Alpha: 0.3, Beta: 0.05, Gamma: 0.3, Period: period}
	if err := m.Fit(history); err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(period)
	if err != nil {
		t.Fatal(err)
	}
	var actual []float64
	for h := 0; h < period; h++ {
		actual = append(actual, 1000+500*math.Sin(2*math.Pi*float64(h)/float64(period)))
	}
	mape, err := MAPE(actual, fc)
	if err != nil {
		t.Fatal(err)
	}
	if mape > 5 {
		t.Errorf("HW MAPE on clean seasonal = %.2f%%, want < 5%%", mape)
	}
}

func TestHoltWintersTracksTrend(t *testing.T) {
	// Linear ramp with flat seasonality: forecast should keep climbing.
	period := 4
	var history []float64
	for i := 0; i < 40; i++ {
		history = append(history, float64(i))
	}
	m := &HoltWinters{Alpha: 0.5, Beta: 0.5, Gamma: 0.1, Period: period}
	if err := m.Fit(history); err != nil {
		t.Fatal(err)
	}
	fc, _ := m.Forecast(4)
	for i := 1; i < len(fc); i++ {
		if fc[i] <= fc[i-1] {
			t.Errorf("trend forecast should increase: %v", fc)
			break
		}
	}
	if math.Abs(fc[0]-40) > 3 {
		t.Errorf("first step = %v, want ≈40", fc[0])
	}
}

func TestHoltWintersErrors(t *testing.T) {
	if err := (&HoltWinters{Alpha: 0, Period: 4}).Fit(make([]float64, 20)); !errors.Is(err, ErrBadParam) {
		t.Error("bad alpha")
	}
	if err := (&HoltWinters{Alpha: 0.5, Beta: 2, Period: 4}).Fit(make([]float64, 20)); !errors.Is(err, ErrBadParam) {
		t.Error("bad beta")
	}
	if err := (&HoltWinters{Alpha: 0.5, Period: 0}).Fit(make([]float64, 20)); !errors.Is(err, ErrBadParam) {
		t.Error("bad period")
	}
	m := &HoltWinters{Alpha: 0.5, Beta: 0.1, Gamma: 0.1, Period: 12}
	if err := m.Fit(make([]float64, 20)); err != ErrTooShort {
		t.Error("short history")
	}
	if _, err := m.Forecast(1); err != ErrNotFitted {
		t.Error("unfitted")
	}
	if m.Name() == "" {
		t.Error("name")
	}
	m2 := &HoltWinters{Alpha: 0.5, Beta: 0.1, Gamma: 0.1, Period: 2}
	if err := m2.Fit([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Forecast(0); err != ErrBadHorizon {
		t.Error("bad horizon")
	}
}

func TestForecastPower(t *testing.T) {
	history := timeseries.ConstantPower(t0, time.Hour, 48, 5000)
	m := &SeasonalNaive{Period: 24}
	fc, err := ForecastPower(m, history, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !fc.Start().Equal(history.End()) {
		t.Error("forecast should start where history ends")
	}
	if fc.Len() != 24 || fc.At(0) != 5000 {
		t.Errorf("forecast = %v", fc)
	}
	// Fit error propagates.
	short := timeseries.ConstantPower(t0, time.Hour, 3, 5000)
	if _, err := ForecastPower(m, short, 24); err == nil {
		t.Error("short history should fail")
	}
	// Forecast error propagates.
	if _, err := ForecastPower(&SeasonalNaive{Period: 24}, history, 0); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestAccuracyMetrics(t *testing.T) {
	actual := []float64{10, 20, 30}
	pred := []float64{12, 18, 30}
	mae, err := MAE(actual, pred)
	if err != nil || math.Abs(mae-4.0/3) > 1e-12 {
		t.Errorf("MAE = %v (%v)", mae, err)
	}
	rmse, err := RMSE(actual, pred)
	if err != nil || math.Abs(rmse-math.Sqrt(8.0/3)) > 1e-12 {
		t.Errorf("RMSE = %v (%v)", rmse, err)
	}
	// Percentage errors: 20%, 10%, 0% → MAPE 10%.
	mape, err := MAPE(actual, pred)
	if err != nil || math.Abs(mape-10) > 1e-9 {
		t.Errorf("MAPE = %v (%v)", mape, err)
	}
}

func TestAccuracyErrors(t *testing.T) {
	if _, err := MAE(nil, nil); err == nil {
		t.Error("empty MAE")
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched RMSE")
	}
	if _, err := MAPE([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero MAPE")
	}
	// Zero actuals are skipped, not fatal, when some are nonzero.
	mape, err := MAPE([]float64{0, 10}, []float64{5, 11})
	if err != nil || math.Abs(mape-10) > 1e-9 {
		t.Errorf("MAPE skipping zeros = %v (%v)", mape, err)
	}
}

func TestDetectDeviations(t *testing.T) {
	baseline := timeseries.ConstantPower(t0, 15*time.Minute, 8, 10000)
	actual := timeseries.MustNewPower(t0, 15*time.Minute, []units.Power{
		10000, 10100, 14000, 15000, 10000, 6000, 10050, 10000,
	})
	devs, err := DetectDeviations(actual, baseline, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 2 {
		t.Fatalf("deviations = %d, want 2: %v", len(devs), devs)
	}
	up := devs[0]
	if !up.Above || up.Duration != 30*time.Minute || up.Peak != 5000 {
		t.Errorf("up deviation = %+v", up)
	}
	down := devs[1]
	if down.Above || down.Peak != 4000 {
		t.Errorf("down deviation = %+v", down)
	}
	if up.String() == "" || down.String() == "" {
		t.Error("deviations should format")
	}
}

func TestDetectDeviationsErrors(t *testing.T) {
	a := timeseries.ConstantPower(t0, time.Hour, 4, 1000)
	b := timeseries.ConstantPower(t0, time.Hour, 5, 1000)
	if _, err := DetectDeviations(a, b, 100); err == nil {
		t.Error("misaligned series should fail")
	}
	c := timeseries.ConstantPower(t0, time.Hour, 4, 1000)
	if _, err := DetectDeviations(a, c, -1); err == nil {
		t.Error("negative threshold should fail")
	}
	devs, err := DetectDeviations(a, c, 0)
	if err != nil || len(devs) != 0 {
		t.Errorf("identical series should have no deviations: %v (%v)", devs, err)
	}
}

func TestDeviationAdjacentOpposingRunsSplit(t *testing.T) {
	baseline := timeseries.ConstantPower(t0, time.Hour, 2, 10000)
	actual := timeseries.MustNewPower(t0, time.Hour, []units.Power{15000, 5000})
	devs, err := DetectDeviations(actual, baseline, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 2 || !devs[0].Above || devs[1].Above {
		t.Errorf("opposing runs should split: %v", devs)
	}
}
