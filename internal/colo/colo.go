// Package colo models the colocation split incentive the paper's related
// work analyzes (Islam et al.'s "paying to save" rewards and Ren &
// Islam's "why do I turn off my servers?", §2): in a colocation data
// center the operator pays the power bill while tenants control the
// workload, so tenants are "shielded from the direct consequences of the
// power bill" and have no reason to curtail. The studied remedy — also
// quoted by the paper — is a reverse auction: the operator buys
// curtailment from tenants, who bid their reserve prices.
//
// The package provides the tenant model, two standard auction pricing
// rules (pay-as-bid and uniform clearing price), and the operator's
// decision problem: is buying tenant flexibility cheaper than the
// penalty/charge it avoids?
package colo

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/units"
)

// Tenant is one colocation customer.
type Tenant struct {
	// Name identifies the tenant.
	Name string
	// Baseline is the tenant's draw during the event window.
	Baseline units.Power
	// Flexible is how much of that draw the tenant could shed.
	Flexible units.Power
	// ReservePrice is the minimum reward per kWh curtailed at which the
	// tenant participates (its private cost of degraded service).
	ReservePrice units.EnergyPrice
}

// Validate checks tenant fields.
func (t *Tenant) Validate() error {
	if t.Name == "" {
		return errors.New("colo: tenant needs a name")
	}
	if t.Baseline < 0 || t.Flexible < 0 {
		return errors.New("colo: tenant powers must be non-negative")
	}
	if t.Flexible > t.Baseline {
		return errors.New("colo: flexible power cannot exceed baseline")
	}
	if t.ReservePrice < 0 {
		return errors.New("colo: reserve price must be non-negative")
	}
	return nil
}

// PricingRule selects how auction winners are paid.
type PricingRule int

// Pricing rules.
const (
	// PayAsBid pays each winner its own reserve price.
	PayAsBid PricingRule = iota
	// UniformPrice pays every winner the highest accepted reserve price
	// (the clearing price) — incentive-compatible but costlier.
	UniformPrice
)

// String returns the rule name.
func (p PricingRule) String() string {
	switch p {
	case PayAsBid:
		return "pay-as-bid"
	case UniformPrice:
		return "uniform-price"
	default:
		return fmt.Sprintf("PricingRule(%d)", int(p))
	}
}

// Allocation is one tenant's accepted curtailment.
type Allocation struct {
	Tenant    *Tenant
	Reduction units.Power
	// PricePaid is the per-kWh reward the tenant receives.
	PricePaid units.EnergyPrice
	// Payment is the total reward for the event.
	Payment units.Money
}

// AuctionResult is the outcome of a reverse auction.
type AuctionResult struct {
	// Target and Achieved are the requested and procured reductions.
	Target   units.Power
	Achieved units.Power
	// Winners in merit order (cheapest first).
	Winners []Allocation
	// TotalPayment is the operator's reward outlay.
	TotalPayment units.Money
	// ClearingPrice is the marginal accepted reserve price.
	ClearingPrice units.EnergyPrice
}

// Shortfall returns the unprocured reduction.
func (r *AuctionResult) Shortfall() units.Power {
	if r.Achieved >= r.Target {
		return 0
	}
	return r.Target - r.Achieved
}

// ReverseAuction procures `target` load reduction for an event of the
// given duration from the tenants, cheapest reserve prices first. The
// marginal winner may be accepted partially.
func ReverseAuction(tenants []*Tenant, target units.Power, duration time.Duration, rule PricingRule) (*AuctionResult, error) {
	if target <= 0 {
		return nil, errors.New("colo: auction target must be positive")
	}
	if duration <= 0 {
		return nil, errors.New("colo: event duration must be positive")
	}
	if len(tenants) == 0 {
		return nil, errors.New("colo: no tenants")
	}
	for _, t := range tenants {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	order := append([]*Tenant(nil), tenants...)
	sort.SliceStable(order, func(a, b int) bool {
		return order[a].ReservePrice < order[b].ReservePrice
	})
	res := &AuctionResult{Target: target}
	remaining := target
	for _, t := range order {
		if remaining <= 0 {
			break
		}
		if t.Flexible <= 0 {
			continue
		}
		take := units.MinPower(t.Flexible, remaining)
		res.Winners = append(res.Winners, Allocation{Tenant: t, Reduction: take})
		res.Achieved += take
		res.ClearingPrice = t.ReservePrice
		remaining -= take
	}
	if len(res.Winners) == 0 {
		return nil, errors.New("colo: no tenant offered flexibility")
	}
	// Settle.
	hours := duration.Hours()
	for i := range res.Winners {
		w := &res.Winners[i]
		switch rule {
		case UniformPrice:
			w.PricePaid = res.ClearingPrice
		default:
			w.PricePaid = w.Tenant.ReservePrice
		}
		energy := units.Energy(float64(w.Reduction) * hours)
		w.Payment = w.PricePaid.Cost(energy)
		res.TotalPayment += w.Payment
	}
	return res, nil
}

// OperatorDecision frames the operator's choice for one event: buy
// tenant flexibility or absorb the avoidable cost (penalty, demand
// charge, forgone program revenue).
type OperatorDecision struct {
	// Auction is the procurement outcome.
	Auction *AuctionResult
	// AvoidableCost is what the operator pays if it does nothing.
	AvoidableCost units.Money
	// ResidualCost prices the auction shortfall at the avoidable
	// cost's pro-rata rate (partial procurement avoids only part).
	ResidualCost units.Money
	// Net = AvoidableCost − TotalPayment − ResidualCost: positive means
	// running the auction pays.
	Net units.Money
}

// Decide evaluates the operator's choice. avoidableCost is the full cost
// of non-response; it scales pro-rata with any auction shortfall.
func Decide(auction *AuctionResult, avoidableCost units.Money) (*OperatorDecision, error) {
	if auction == nil {
		return nil, errors.New("colo: nil auction result")
	}
	if avoidableCost < 0 {
		return nil, errors.New("colo: avoidable cost must be non-negative")
	}
	d := &OperatorDecision{Auction: auction, AvoidableCost: avoidableCost}
	if auction.Target > 0 {
		frac := float64(auction.Shortfall()) / float64(auction.Target)
		d.ResidualCost = avoidableCost.MulFloat(frac)
	}
	d.Net = avoidableCost - auction.TotalPayment - d.ResidualCost
	return d, nil
}

// SplitIncentiveBaseline states the no-mechanism outcome the literature
// describes: tenants shielded from the power bill curtail nothing, so
// the operator absorbs the entire avoidable cost.
func SplitIncentiveBaseline(avoidableCost units.Money) units.Money {
	return avoidableCost
}
