// Command scserved runs the billing-as-a-service daemon: a long-lived
// HTTP/JSON server exposing bill computation (with an LRU cache of
// compiled contract engines), the survey dataset, and the renegotiation
// advisor. See internal/serve for the API.
//
// Usage:
//
//	scserved -addr :8080
//	scserved -addr :8080 -max-concurrent 8 -queue 128 -timeout 10s
//	scserved -addr :8080 -debug-addr 127.0.0.1:6060 -slow-request 250ms
//
// The daemon sheds load with 429 + Retry-After when its request queue
// fills, and drains in-flight bills on SIGINT/SIGTERM before exiting.
// Every request is logged as one structured line (JSON or logfmt-style
// text) carrying the request ID; requests slower than -slow-request log
// at warning level. With -debug-addr set, a second listener serves
// net/http/pprof — keep it on loopback or behind a firewall.
//
// Dynamic tariffs can bill against a live market feed:
//
//	scserved -feed-url http://market.example/prices.csv
//	scserved -feed-file /var/lib/market/prices.csv -feed-ttl 5m -feed-stale-budget 1h
//
// The feed is cached with a TTL, served stale within -feed-stale-budget
// while the upstream is failing (background refresh retries behind a
// circuit breaker), and past the budget bills degrade to the contract's
// fallback_rate (or -fallback-rate) and are marked degraded. The
// -chaos-* flags wrap the feed with a deterministic fault injector for
// soak testing — never set them in production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/feed"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/units"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "parallel bill evaluations (0 = all CPUs)")
	queueDepth := flag.Int("queue", 64, "requests allowed to wait for a slot before shedding with 429 (-1 = no queue)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline, queue wait included")
	cacheSize := flag.Int("cache", 128, "compiled contract engines kept in the LRU")
	monthWorkers := flag.Int("month-workers", 0, "worker pool per monthly request (0 = all CPUs)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight bills")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled; use 127.0.0.1:6060)")
	slowRequest := flag.Duration("slow-request", time.Second, "log requests at or above this latency at warning level (negative = never)")
	logFormat := flag.String("log-format", "text", "request log format: text, json, or off")
	feedURL := flag.String("feed-url", "", "HTTP price feed for dynamic tariffs (CSV, or JSON by Content-Type)")
	feedFile := flag.String("feed-file", "", "price-feed file for dynamic tariffs (.json = JSON, else CSV; re-read on refresh)")
	feedFlatRate := flag.Float64("feed-flat-rate", 0, "serve dynamic tariffs from a flat feed at this price/kWh (testing)")
	feedTTL := flag.Duration("feed-ttl", 5*time.Minute, "how long fetched prices stay fresh")
	feedStaleBudget := flag.Duration("feed-stale-budget", time.Hour, "max age of cached prices served while the feed is failing")
	fallbackRate := flag.Float64("fallback-rate", 0, "fixed price/kWh for degraded bills when the spec declares no fallback_rate (0 = built-in default)")
	chaosSeed := flag.Int64("chaos-seed", 0, "seed for the feed fault injector (soak testing)")
	chaosErrorRate := flag.Float64("chaos-error-rate", 0, "probability an upstream price fetch fails outright")
	chaosLatencyRate := flag.Float64("chaos-latency-rate", 0, "probability an upstream price fetch is delayed by -chaos-latency")
	chaosLatency := flag.Duration("chaos-latency", 50*time.Millisecond, "injected upstream latency spike")
	flag.Parse()

	logger, err := requestLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scserved:", err)
		os.Exit(2)
	}

	priceFeed, err := buildFeed(feedOptions{
		url: *feedURL, file: *feedFile, flatRate: *feedFlatRate,
		ttl: *feedTTL, staleBudget: *feedStaleBudget,
		chaosSeed: *chaosSeed, chaosErrorRate: *chaosErrorRate,
		chaosLatencyRate: *chaosLatencyRate, chaosLatency: *chaosLatency,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scserved:", err)
		os.Exit(2)
	}
	if priceFeed != nil {
		defer priceFeed.Close()
		log.Printf("scserved price feed: %s", priceFeed.Describe())
	}

	if err := run(*addr, *debugAddr, serve.Config{
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queueDepth,
		RequestTimeout:  *timeout,
		EngineCacheSize: *cacheSize,
		MonthWorkers:    *monthWorkers,
		Logger:          logger,
		SlowRequest:     *slowRequest,
		PriceFeed:       priceFeed,
		FallbackRate:    *fallbackRate,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "scserved:", err)
		os.Exit(1)
	}
}

// feedOptions collects the price-feed and chaos flags.
type feedOptions struct {
	url, file        string
	flatRate         float64
	ttl, staleBudget time.Duration
	chaosSeed        int64
	chaosErrorRate   float64
	chaosLatencyRate float64
	chaosLatency     time.Duration
}

// buildFeed assembles the resilient price-feed stack from the flags:
// provider (HTTP, file, or flat) -> optional chaos injector -> cached
// wrapper. Returns nil when no feed source is selected.
func buildFeed(o feedOptions) (*feed.Cached, error) {
	var provider feed.PriceProvider
	switch {
	case o.url != "" && o.file != "":
		return nil, errors.New("set at most one of -feed-url and -feed-file")
	case o.url != "":
		provider = &feed.HTTP{URL: o.url}
	case o.file != "":
		provider = &feed.File{Path: o.file}
	case o.flatRate > 0:
		provider = &feed.Flat{Rate: units.EnergyPrice(o.flatRate)}
	default:
		if o.chaosErrorRate > 0 || o.chaosLatencyRate > 0 {
			return nil, errors.New("-chaos-* flags need a feed source (-feed-url, -feed-file, or -feed-flat-rate)")
		}
		return nil, nil
	}
	if o.chaosErrorRate > 0 || o.chaosLatencyRate > 0 || o.chaosSeed != 0 {
		provider = chaos.New(provider, chaos.Config{
			Seed:        o.chaosSeed,
			ErrorRate:   o.chaosErrorRate,
			LatencyRate: o.chaosLatencyRate,
			Latency:     o.chaosLatency,
		})
		log.Printf("scserved: CHAOS MODE: %s", provider.Describe())
	}
	return feed.NewCached(provider, feed.CachedConfig{
		TTL:             o.ttl,
		StalenessBudget: o.staleBudget,
	}), nil
}

// requestLogger builds the per-request slog.Logger from -log-format;
// "off" returns nil, which disables request logging in the service.
func requestLogger(format string) (*slog.Logger, error) {
	switch format {
	case "off", "none":
		return nil, nil
	case "text", "json":
		return obs.NewLogger(os.Stderr, format, slog.LevelInfo), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text, json, or off)", format)
	}
}

// debugMux is the pprof handler set, registered explicitly instead of
// importing net/http/pprof for its DefaultServeMux side effect — the
// profiler only exists when -debug-addr asks for it.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(addr, debugAddr string, cfg serve.Config, drainTimeout time.Duration) error {
	svc := serve.NewServer(cfg)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	var debugSrv *http.Server
	if debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("scserved pprof on http://%s/debug/pprof/", debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("scserved: pprof listener: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("scserved listening on %s", addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		log.Printf("scserved: %s received, draining in-flight bills", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Refuse new work and wait for admitted bills first, then close the
	// listener and idle connections.
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("scserved: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			log.Printf("scserved: pprof shutdown: %v", err)
		}
	}
	log.Printf("scserved: drained, bye")
	return nil
}
