package demand

// Columnar kernels for the kW branch. Both accumulators in producer.go
// are already streaming with O(1)/O(N-peaks) state, so their scanners
// are direct transliterations over contiguous sample chunks: the gain
// is dropping the per-sample interface call and Sample boxing, plus a
// fast single-peak loop when no top-N tracker is needed. Arithmetic is
// kept operation-for-operation identical (same comparisons, same
// insertion order, same per-excursion rounding).

import (
	"strconv"
	"time"

	"repro/internal/billing"
	"repro/internal/units"
)

// CompileKernel compiles the demand charge. The line-item description
// is period-invariant, so it renders once here.
func (c *Charge) CompileKernel() billing.Kernel {
	n := 0
	if c.Method == NPeakAverage {
		n = c.NPeaks
		if n <= 0 {
			n = 3
		}
	}
	return &chargeKernel{charge: c, desc: c.Describe(), n: n}
}

var _ billing.KernelProducer = (*Charge)(nil)

type chargeKernel struct {
	charge *Charge
	desc   string
	n      int
}

func (k *chargeKernel) NewScanner() billing.Scanner {
	s := &chargeScanner{charge: k.charge, desc: k.desc, n: k.n}
	if k.n > 0 {
		s.top = make([]peakEntry, 0, k.n)
	}
	return s
}

// chargeScanner is chargeAcc over chunks. The top-N tracker keeps the
// identical (power desc, index asc) order and tie-breaks.
type chargeScanner struct {
	charge     *Charge
	desc       string
	historical units.Power

	seen bool
	peak units.Power

	top []peakEntry
	n   int

	buf []byte
}

func (s *chargeScanner) Begin(pctx *billing.PeriodContext, _ time.Time, _ time.Duration, _ int) {
	s.historical = pctx.HistoricalPeak
	s.seen = false
	s.peak = 0
	s.top = s.top[:0]
}

func (s *chargeScanner) Scan(samples []units.Power, base int) {
	if len(samples) == 0 {
		return
	}
	if s.n == 0 {
		// Single-peak and ratchet methods only need the running maximum.
		peak := s.peak
		if !s.seen {
			peak = samples[0]
			s.seen = true
		}
		for _, p := range samples {
			if p > peak {
				peak = p
			}
		}
		s.peak = peak
		return
	}
	for j, p := range samples {
		if !s.seen || p > s.peak {
			s.peak = p
			s.seen = true
		}
		if len(s.top) == s.n {
			if p <= s.top[s.n-1].power {
				continue
			}
			s.top = s.top[:s.n-1]
		}
		at := len(s.top)
		for at > 0 && s.top[at-1].power < p {
			at--
		}
		s.top = append(s.top, peakEntry{})
		copy(s.top[at+1:], s.top[at:])
		s.top[at] = peakEntry{power: p, index: base + j}
	}
}

// billed replicates chargeAcc.billed (itself Charge.BilledDemand).
func (s *chargeScanner) billed() units.Power {
	if !s.seen {
		return 0
	}
	peak := s.peak
	if peak < 0 {
		peak = 0
	}
	switch s.charge.Method {
	case SinglePeak:
		return peak
	case NPeakAverage:
		var sum float64
		for _, e := range s.top {
			v := float64(e.power)
			if v < 0 {
				v = 0
			}
			sum += v
		}
		return units.Power(sum / float64(len(s.top)))
	case Ratchet:
		floor := units.Power(float64(s.historical) * s.charge.RatchetFraction)
		return units.MaxPower(peak, floor)
	default:
		return peak
	}
}

func (s *chargeScanner) AppendLines(dst []billing.LineItem) []billing.LineItem {
	billed := s.billed()
	s.buf = units.AppendPower(s.buf[:0], billed)
	return append(dst, billing.LineItem{
		Class:       billing.ClassDemandCharge,
		Description: s.desc,
		Quantity:    string(s.buf),
		Amount:      s.charge.Price.Cost(billed),
	})
}

// CompileKernel compiles the powerband excursion tracker.
func (b *Powerband) CompileKernel() billing.Kernel {
	return &bandKernel{band: b, desc: b.Describe()}
}

var _ billing.KernelProducer = (*Powerband)(nil)

type bandKernel struct {
	band *Powerband
	desc string
}

func (k *bandKernel) NewScanner() billing.Scanner {
	return &bandScanner{band: k.band, desc: k.desc}
}

// bandScanner is bandAcc over chunks: excess energy accumulates per
// contiguous out-of-band run and rounds once per excursion at flush.
// Runs straddle chunk and month-block boundaries unflushed, exactly as
// the sample walk carries them across samples.
type bandScanner struct {
	band *Powerband
	desc string
	h    float64

	inRun  bool
	above  bool
	excess units.Energy

	count int
	cost  units.Money

	buf []byte
}

func (s *bandScanner) Begin(_ *billing.PeriodContext, _ time.Time, interval time.Duration, _ int) {
	s.h = interval.Hours()
	s.inRun = false
	s.excess = 0
	s.count = 0
	s.cost = 0
}

func (s *bandScanner) flush() {
	if !s.inRun {
		return
	}
	if s.above {
		s.cost += s.band.OverPenalty.Cost(s.excess)
	} else {
		s.cost += s.band.UnderPenalty.Cost(s.excess)
	}
	s.count++
	s.inRun = false
	s.excess = 0
}

func (s *bandScanner) Scan(samples []units.Power, _ int) {
	upper := s.band.Upper
	lower := s.band.Lower
	hasLower := s.band.HasLower
	h := s.h
	for _, p := range samples {
		var above bool
		var excess units.Energy
		switch {
		case p > upper:
			above = true
			excess = units.Energy(float64(p-upper) * h)
		case hasLower && p < lower:
			above = false
			excess = units.Energy(float64(lower-p) * h)
		default:
			s.flush()
			continue
		}
		if !s.inRun || s.above != above {
			s.flush()
			s.inRun = true
			s.above = above
		}
		s.excess += excess
	}
}

func (s *bandScanner) AppendLines(dst []billing.LineItem) []billing.LineItem {
	s.flush()
	s.buf = strconv.AppendInt(s.buf[:0], int64(s.count), 10)
	s.buf = append(s.buf, " excursions"...)
	return append(dst, billing.LineItem{
		Class:       billing.ClassPowerband,
		Description: s.desc,
		Quantity:    string(s.buf),
		Amount:      s.cost,
	})
}
