package obs

// Histograms in the fixed-bucket, cumulative style Prometheus expects.
// A Histogram is a standalone latency distribution; a Registry is a
// lazily-populated map of named histograms sharing one bucket layout,
// used as the span sink (one histogram per span name). Both are safe
// for concurrent use.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// DefaultLatencyBuckets are the span/request bucket upper bounds in
// seconds: the billing hot path is a ~3.4 ms year-bill, so the layout
// resolves sub-millisecond cache hits through multi-second monthly
// sweeps.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets. The zero value is
// not usable; construct with NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; the last bucket is +Inf
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram with the given ascending upper
// bounds. No bounds selects DefaultLatencyBuckets.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: h.bounds,
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // per-bucket (non-cumulative), last is +Inf
	Sum    float64
	Count  uint64
}

// Mean returns the average observed value, 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) the way Prometheus
// histogram_quantile does: find the bucket the rank lands in and
// interpolate linearly between its bounds. Observations in the +Inf
// bucket clamp to the largest finite bound — the histogram cannot say
// more than "at least this". Returns 0 with no observations.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, ub := range s.Bounds {
		next := cum + float64(s.Counts[i])
		if next >= rank {
			lb := 0.0
			if i > 0 {
				lb = s.Bounds[i-1]
			}
			if s.Counts[i] == 0 {
				return ub
			}
			return lb + (ub-lb)*(rank-cum)/float64(s.Counts[i])
		}
		cum = next
	}
	// The rank lives in the +Inf bucket.
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// WriteProm writes the snapshot as Prometheus exposition lines:
// cumulative name_bucket series including the +Inf bucket, then
// name_sum and name_count. labels, when non-empty, is an inner label
// list ready to merge with le (e.g. `stage="compile"`). The caller
// writes the # HELP / # TYPE header once per metric family.
func (s HistogramSnapshot) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, ub := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, FormatBound(ub), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, s.Sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
}

// FormatBound renders a bucket bound the way Prometheus client
// libraries do: shortest decimal representation, no trailing zeros.
func FormatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Registry is a set of named histograms sharing one bucket layout —
// the sink Span records into. Names appear on first observation.
type Registry struct {
	mu     sync.Mutex
	bounds []float64
	spans  map[string]*Histogram
}

// NewRegistry builds a registry whose histograms use the given bounds
// (DefaultLatencyBuckets when empty).
func NewRegistry(bounds ...float64) *Registry {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Registry{
		bounds: append([]float64(nil), bounds...),
		spans:  make(map[string]*Histogram),
	}
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	h, ok := r.spans[name]
	if !ok {
		h = NewHistogram(r.bounds...)
		r.spans[name] = h
	}
	r.mu.Unlock()
	return h
}

// Observe records one value into the named histogram.
func (r *Registry) Observe(name string, v float64) {
	r.Histogram(name).Observe(v)
}

// Snapshot returns every named histogram's snapshot, sorted by name.
func (r *Registry) Snapshot() []NamedSnapshot {
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.spans))
	for name, h := range r.spans {
		hists[name] = h
	}
	r.mu.Unlock()

	out := make([]NamedSnapshot, 0, len(hists))
	for name, h := range hists {
		out = append(out, NamedSnapshot{Name: name, HistogramSnapshot: h.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedSnapshot pairs a span name with its histogram snapshot.
type NamedSnapshot struct {
	Name string
	HistogramSnapshot
}
