package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGeneratedWorkload(t *testing.T) {
	if err := run("small", 6, 0.8, "backfill", 0, false, false, "", "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunFCFSWithCapAndShutdown(t *testing.T) {
	if err := run("small", 6, 0.8, "fcfs", 1.0, false, true, "", "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunPriceAware(t *testing.T) {
	if err := run("small", 6, 0.8, "backfill", 0, true, false, "", "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithContract(t *testing.T) {
	p := filepath.Join(t.TempDir(), "site.json")
	spec := `{"name":"sim-site","tariffs":[{"type":"fixed","rate":0.07}]}`
	if err := os.WriteFile(p, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("small", 6, 0.8, "backfill", 0, false, false, p, "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSWFTrace(t *testing.T) {
	p := filepath.Join(t.TempDir(), "trace.swf")
	swf := "; test\n1 0 10 3600 32 -1 -1 32 7200 -1 1 1 1 1 1 1 -1 -1\n"
	if err := os.WriteFile(p, []byte(swf), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("small", 6, 0.8, "backfill", 0, false, false, "", p, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("bogus", 6, 0.8, "backfill", 0, false, false, "", "", 1); err == nil {
		t.Error("unknown machine should fail")
	}
	if err := run("small", 6, 0.8, "bogus", 0, false, false, "", "", 1); err == nil {
		t.Error("unknown policy should fail")
	}
	if err := run("small", 6, 0.8, "backfill", 0, false, false, "/nonexistent.json", "", 1); err == nil {
		t.Error("missing contract file should fail")
	}
	if err := run("small", 6, 0.8, "backfill", 0, false, false, "", "/nonexistent.swf", 1); err == nil {
		t.Error("missing SWF file should fail")
	}
}
