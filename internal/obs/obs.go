// Package obs is the reproduction's stdlib-only observability layer:
// request IDs carried through contexts, lightweight span hooks that
// record stage latencies into named histograms, and structured request
// logging via log/slog. The paper's management case studies (the CSCS
// procurement redesign, LANL's 15 min–1 h demand-response window) hinge
// on knowing where time and peak power go; this package gives the
// billing daemon and the CLIs that visibility without pulling in a
// metrics client library — histograms render themselves in Prometheus
// text exposition format.
//
// Span hooks are designed to cost nothing when unused: Span consults
// the context for a Registry and returns a no-op closure when none is
// attached, so library code (the billing engine's streaming loop, the
// contract engine) can be instrumented unconditionally while batch
// callers pay only a context lookup.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

type ctxKey int

const (
	reqIDKey ctxKey = iota
	spansKey
)

// reqIDFallback numbers request IDs when the system's entropy source is
// unavailable (it practically never is).
var reqIDFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-digit request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", reqIDFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey, id)
}

// RequestIDFrom returns the context's request ID, or "" when none is
// attached.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey).(string)
	return id
}

// WithSpans attaches a span registry to the context: Span calls below
// this context record their durations into it.
func WithSpans(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, spansKey, r)
}

// SpansFrom returns the context's span registry, or nil when tracing is
// not enabled for this context.
func SpansFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(spansKey).(*Registry)
	return r
}

// Span opens a named span and returns its end function. When the
// context carries no registry the returned closure is a no-op, so
// instrumented code costs one context lookup on untraced paths.
//
//	end := obs.Span(ctx, "compile")
//	defer end()
func Span(ctx context.Context, name string) func() {
	r := SpansFrom(ctx)
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() { r.Observe(name, time.Since(start).Seconds()) }
}

// NewLogger builds a slog.Logger writing to w. format is "json" or
// "text" (anything else selects text).
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
