package contract

// Columnar kernel for the emergency-DR obligation. The accumulator's
// per-sample work is a window-coverage test; the scanner compiles the
// period's declared windows into merged, sorted sample-index spans at
// Begin, so the scan is a cursor walk over [lo, hi) ranges with no
// per-sample time arithmetic. The penalty depends only on whether a
// sample's instant is covered by any window, so merging overlapping
// windows cannot change the amount; the per-sample cost expression is
// identical to emergencyAcc.Observe.

import (
	"strconv"
	"time"

	"repro/internal/billing"
	"repro/internal/units"
)

// CompileKernel compiles the obligation for columnar evaluation.
func (o *EmergencyObligation) CompileKernel() billing.Kernel {
	return &emergencyKernel{ob: o, desc: o.Describe()}
}

var _ billing.KernelProducer = (*EmergencyObligation)(nil)

type emergencyKernel struct {
	ob   *EmergencyObligation
	desc string
}

func (k *emergencyKernel) NewScanner() billing.Scanner {
	return &emergencyScanner{ob: k.ob, desc: k.desc}
}

// idxSpan is a half-open covered range of period-relative sample
// indices.
type idxSpan struct{ lo, hi int }

type emergencyScanner struct {
	ob   *EmergencyObligation
	desc string
	h    float64

	spans    []idxSpan
	cur      int
	nwindows int
	total    units.Money

	buf []byte
}

func (s *emergencyScanner) Begin(pctx *billing.PeriodContext, start time.Time, interval time.Duration, n int) {
	s.h = interval.Hours()
	s.total = 0
	s.cur = 0
	s.nwindows = len(pctx.Emergencies)
	s.spans = s.spans[:0]
	for _, w := range pctx.Emergencies {
		if !w.End.After(start) {
			continue
		}
		lo := 0
		if w.Start.After(start) {
			lo = billing.CeilIndex(w.Start.Sub(start), interval)
		}
		hi := billing.CeilIndex(w.End.Sub(start), interval)
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		// Insertion sort by lo: window lists are tiny and almost sorted.
		at := len(s.spans)
		s.spans = append(s.spans, idxSpan{})
		for at > 0 && s.spans[at-1].lo > lo {
			s.spans[at] = s.spans[at-1]
			at--
		}
		s.spans[at] = idxSpan{lo: lo, hi: hi}
	}
	// Merge overlapping spans in place.
	merged := s.spans[:0]
	for _, sp := range s.spans {
		if len(merged) > 0 && sp.lo <= merged[len(merged)-1].hi {
			if sp.hi > merged[len(merged)-1].hi {
				merged[len(merged)-1].hi = sp.hi
			}
			continue
		}
		merged = append(merged, sp)
	}
	s.spans = merged
}

func (s *emergencyScanner) Scan(samples []units.Power, base int) {
	if s.cur >= len(s.spans) {
		return
	}
	end := base + len(samples)
	limit := s.ob.Cap
	h := s.h
	for s.cur < len(s.spans) {
		sp := s.spans[s.cur]
		lo, hi := sp.lo, sp.hi
		if lo < base {
			lo = base
		}
		if hi > end {
			hi = end
		}
		for i := lo; i < hi; i++ {
			if p := samples[i-base]; p > limit {
				s.total += s.ob.Penalty.Cost(units.Energy(float64(p-limit) * h))
			}
		}
		if sp.hi > end {
			// The span continues into the next chunk.
			return
		}
		s.cur++
	}
}

func (s *emergencyScanner) AppendLines(dst []billing.LineItem) []billing.LineItem {
	s.buf = strconv.AppendInt(s.buf[:0], int64(s.nwindows), 10)
	s.buf = append(s.buf, " events"...)
	return append(dst, billing.LineItem{
		Class:       billing.ClassEmergencyDR,
		Description: s.desc,
		Quantity:    string(s.buf),
		Amount:      s.total,
	})
}
