package unitchecker

// The ignores inventory: `scvet -ignores [dir]` loads the whole module
// from source, runs every analyzer, and prints one line per
// //lint:scvet-ignore directive — file:line, analyzer, reason — so the
// suppression surface is a reviewable ledger instead of grep output.
// Directives that earned nothing this run are marked: STALE when a
// reasoned directive suppressed no diagnostic (the blessed code moved
// or was fixed; delete the directive before it masks a regression),
// MALFORMED when the reason is missing, and UNKNOWN ANALYZER when the
// name matches nothing in the suite. Under -strict any marked
// directive makes the run exit 1, so CI can hold the ledger clean.
//
// The vet protocol cannot drive this mode: cmd/go hands a vettool one
// compilation unit at a time and never says when the tree is done, so
// a tree-wide ledger needs its own loader. This one is deliberately
// small: find go.mod, walk the module for production packages, parse,
// topologically sort by module-local imports, and type-check with a
// hybrid importer — module packages resolve to the packages just
// checked, everything else falls through to the stdlib source
// importer.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// RunIgnores prints the suppression ledger for the module containing
// dir and returns the process exit code: 0 when the ledger is clean or
// strict is off, 1 when strict is on and any directive is stale,
// malformed, or names an unknown analyzer.
func RunIgnores(w io.Writer, dir string, strict bool, analyzers []*analysis.Analyzer) (int, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	pkgs, err := loadModule(fset, root, modPath)
	if err != nil {
		return 0, err
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var uses []analysis.DirectiveUse
	checked := map[string]*types.Package{}
	// One stdlib importer for the whole run: a fresh source importer
	// per package would mint distinct instances of each stdlib package,
	// and types checked against one instance are not identical to the
	// other's.
	std := importer.ForCompiler(fset, "source", nil)
	for _, p := range pkgs {
		pkg, info, err := checkPackage(fset, p, std, checked)
		if err != nil {
			return 0, fmt.Errorf("typecheck %s: %w", p.path, err)
		}
		checked[p.path] = pkg
		_, du, err := analysis.RunAnalyzersDetail(fset, p.files, pkg, info, analyzers)
		if err != nil {
			return 0, err
		}
		uses = append(uses, du...)
	}

	sort.Slice(uses, func(i, j int) bool {
		if uses[i].File != uses[j].File {
			return uses[i].File < uses[j].File
		}
		return uses[i].Line < uses[j].Line
	})

	var stale, malformed, unknown int
	for _, u := range uses {
		rel := u.File
		if r, err := filepath.Rel(root, u.File); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		switch {
		case u.Reason == "":
			malformed++
			fmt.Fprintf(w, "%s:%d: %s — [MALFORMED: missing reason; suppresses nothing]\n", rel, u.Line, u.Analyzer)
		case !known[u.Analyzer]:
			unknown++
			fmt.Fprintf(w, "%s:%d: %s — %s [UNKNOWN ANALYZER]\n", rel, u.Line, u.Analyzer, u.Reason)
		case !u.Used:
			stale++
			fmt.Fprintf(w, "%s:%d: %s — %s [STALE: suppressed nothing in this run]\n", rel, u.Line, u.Analyzer, u.Reason)
		default:
			fmt.Fprintf(w, "%s:%d: %s — %s\n", rel, u.Line, u.Analyzer, u.Reason)
		}
	}
	fmt.Fprintf(w, "%d directive(s): %d active, %d stale, %d malformed, %d unknown\n",
		len(uses), len(uses)-stale-malformed-unknown, stale, malformed, unknown)

	if strict && stale+malformed+unknown > 0 {
		return 1, nil
	}
	return 0, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// modPkg is one parsed production package of the module, pre-typecheck.
type modPkg struct {
	path    string // import path
	files   []*ast.File
	imports []string // module-local imports only
}

// loadModule parses every production package under root and returns
// them in dependency order (imports before importers).
func loadModule(fset *token.FileSet, root, modPath string) ([]*modPkg, error) {
	byPath := map[string]*modPkg{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || name == "bin" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		p := byPath[importPath]
		if p == nil {
			p = &modPkg{path: importPath}
			byPath[importPath] = p
		} else if p.files[0].Name.Name != f.Name.Name {
			// Two package clauses in one directory (stray main, etc):
			// keep the first and skip the straggler rather than failing
			// the whole inventory.
			return nil
		}
		p.files = append(p.files, f)
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
				p.imports = append(p.imports, ip)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topological order by module-local imports, ties broken by path so
	// the ledger is deterministic.
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var order []*modPkg
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		pkg := byPath[p]
		deps := append([]string(nil), pkg.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if byPath[dep] != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = 2
		order = append(order, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// checkPackage type-checks one module package. Module-local imports
// resolve to already-checked packages (the topological order
// guarantees they exist); everything else goes to the shared stdlib
// source importer.
func checkPackage(fset *token.FileSet, p *modPkg, std types.Importer, checked map[string]*types.Package) (*types.Package, *types.Info, error) {
	imp := importerFunc(func(path string) (*types.Package, error) {
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return std.Import(path)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tcfg := types.Config{Importer: imp}
	pkg, err := tcfg.Check(p.path, fset, p.files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
