package procurement

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)

func refLoad() *timeseries.PowerSeries {
	// Flat 5 MW for 30 days: 3.6 GWh.
	return timeseries.ConstantPower(t0, time.Hour, 30*24, 5000)
}

func cscsTender() *Tender {
	return &Tender{
		Name:                  "CSCS-style tender",
		Variables:             CSCSVariables(),
		RenewableShareMin:     0.80,
		DisallowDemandCharges: true,
		ReferenceLoad:         refLoad(),
	}
}

func compliantBid(name string, base units.EnergyPrice) *Bid {
	return &Bid{
		Bidder: name,
		Values: map[string]units.EnergyPrice{
			"base-energy":   base,
			"green-premium": 0.005,
			"balancing":     0.003,
			"margin":        0.002,
		},
		RenewableShare: 0.85,
	}
}

func TestTenderValidate(t *testing.T) {
	if err := cscsTender().Validate(); err != nil {
		t.Errorf("good tender: %v", err)
	}
	bad := []*Tender{
		{ReferenceLoad: refLoad()},
		{Variables: []Variable{{Name: ""}}, ReferenceLoad: refLoad()},
		{Variables: []Variable{{Name: "a"}, {Name: "a"}}, ReferenceLoad: refLoad()},
		{Variables: []Variable{{Name: "a", Min: -1, Max: 1}}, ReferenceLoad: refLoad()},
		{Variables: []Variable{{Name: "a", Min: 2, Max: 1}}, ReferenceLoad: refLoad()},
		{Variables: []Variable{{Name: "a", Max: 1}}, RenewableShareMin: 1.5, ReferenceLoad: refLoad()},
		{Variables: []Variable{{Name: "a", Max: 1}}},
	}
	for i, tt := range bad {
		if err := tt.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestCSCSVariablesShape(t *testing.T) {
	vars := CSCSVariables()
	if len(vars) != 4 {
		t.Fatalf("CSCS left four variables to the ESPs, got %d", len(vars))
	}
	for _, v := range vars {
		if v.Name == "" || v.Max <= 0 {
			t.Errorf("variable %+v malformed", v)
		}
	}
}

func TestComplianceChecks(t *testing.T) {
	tender := cscsTender()
	// Missing variable.
	b := compliantBid("x", 0.04)
	delete(b.Values, "margin")
	if err := tender.CheckCompliance(b); err == nil {
		t.Error("missing variable should fail")
	}
	// Out of range.
	b2 := compliantBid("x", 0.50)
	if err := tender.CheckCompliance(b2); err == nil {
		t.Error("out-of-range variable should fail")
	}
	// Extra variable.
	b3 := compliantBid("x", 0.04)
	b3.Values["sneaky-fee"] = 0.01
	if err := tender.CheckCompliance(b3); err == nil {
		t.Error("extra variable should fail")
	}
	// Weak renewable share.
	b4 := compliantBid("x", 0.04)
	b4.RenewableShare = 0.5
	if err := tender.CheckCompliance(b4); err == nil {
		t.Error("weak supply mix should fail")
	}
	// Demand-charge rider.
	b5 := compliantBid("x", 0.04)
	b5.DemandCharge = demand.SimpleCharge(10)
	err := tender.CheckCompliance(b5)
	if err == nil {
		t.Error("demand charge should fail when disallowed")
	}
	var ce *ComplianceError
	if !errors.As(err, &ce) || !strings.Contains(ce.Error(), "disallowed") {
		t.Errorf("error should be a ComplianceError: %v", err)
	}
	// Fully compliant.
	if err := tender.CheckCompliance(compliantBid("x", 0.04)); err != nil {
		t.Errorf("compliant bid rejected: %v", err)
	}
}

func TestPriceBid(t *testing.T) {
	tender := cscsTender()
	b := compliantBid("x", 0.040)
	cost, err := tender.PriceBid(b)
	if err != nil {
		t.Fatal(err)
	}
	// Rate = 0.040+0.005+0.003+0.002 = 0.050; energy = 3.6 GWh → 180,000.
	if cost != units.CurrencyUnits(180000) {
		t.Errorf("cost = %v, want 180,000", cost)
	}
}

func TestRunTenderRanksByCost(t *testing.T) {
	tender := cscsTender()
	cheap := compliantBid("cheap", 0.030)
	mid := compliantBid("mid", 0.045)
	pricey := compliantBid("pricey", 0.070)
	nc := compliantBid("nc", 0.025)
	nc.RenewableShare = 0.10
	outcome, err := tender.Run([]*Bid{pricey, nc, cheap, mid})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Winner == nil || outcome.Winner.Bid.Bidder != "cheap" {
		t.Fatalf("winner = %+v", outcome.Winner)
	}
	if len(outcome.Ranked) != 4 {
		t.Fatalf("ranked = %d", len(outcome.Ranked))
	}
	// Compliant ordering.
	if outcome.Ranked[0].Bid.Bidder != "cheap" || outcome.Ranked[1].Bid.Bidder != "mid" || outcome.Ranked[2].Bid.Bidder != "pricey" {
		t.Error("compliant bids must rank by ascending cost")
	}
	last := outcome.Ranked[3]
	if last.Compliant || last.Reason == "" {
		t.Errorf("non-compliant bid should carry a reason: %+v", last)
	}
}

func TestRunTenderErrors(t *testing.T) {
	bad := &Tender{}
	if _, err := bad.Run([]*Bid{compliantBid("x", 0.04)}); err == nil {
		t.Error("invalid tender should fail")
	}
	if _, err := cscsTender().Run(nil); err == nil {
		t.Error("no bids should fail")
	}
}

func TestRunTenderNoCompliantBids(t *testing.T) {
	tender := cscsTender()
	nc := compliantBid("nc", 0.04)
	nc.RenewableShare = 0
	outcome, err := tender.Run([]*Bid{nc})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Winner != nil {
		t.Error("no compliant bids, no winner")
	}
	if _, err := outcome.WinnerContract("w"); err == nil {
		t.Error("WinnerContract should fail without a winner")
	}
	if _, _, _, err := tender.Savings(outcome, nil); err == nil {
		t.Error("Savings should fail without a winner")
	}
}

func TestWinnerContract(t *testing.T) {
	tender := cscsTender()
	outcome, err := tender.Run([]*Bid{compliantBid("w", 0.040)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := outcome.WinnerContract("post-tender")
	if err != nil {
		t.Fatal(err)
	}
	p := contract.Classify(c)
	if !p.FixedTariff || p.DemandCharge {
		t.Errorf("winner contract profile = %+v; CSCS removed demand charges", p)
	}
	bill, err := contract.ComputeBill(c, tender.ReferenceLoad, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if bill.Total != outcome.Winner.AnnualCost {
		t.Errorf("contract bill %v != scored cost %v", bill.Total, outcome.Winner.AnnualCost)
	}
}

func TestSavingsVersusStatusQuo(t *testing.T) {
	tender := cscsTender()
	outcome, err := tender.Run([]*Bid{compliantBid("w", 0.040)})
	if err != nil {
		t.Fatal(err)
	}
	// Status quo: higher fixed rate plus the demand charge CSCS removed.
	statusQuo := &contract.Contract{
		Name:          "status-quo",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.060)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(11)},
	}
	base, won, saved, err := tender.Savings(outcome, statusQuo)
	if err != nil {
		t.Fatal(err)
	}
	if saved <= 0 {
		t.Errorf("CSCS-style tender should save: base %v, won %v", base, won)
	}
	if base-won != saved {
		t.Error("savings must equal the difference")
	}
}

func TestGenerateBids(t *testing.T) {
	tender := cscsTender()
	bids, err := GenerateBids(tender, BidGenConfig{N: 40, CompliantFraction: 0.7, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(bids) != 40 {
		t.Fatalf("bids = %d", len(bids))
	}
	compliant := 0
	for _, b := range bids {
		if len(b.Values) != 4 {
			t.Fatalf("bid %s quotes %d variables", b.Bidder, len(b.Values))
		}
		if tender.CheckCompliance(b) == nil {
			compliant++
		}
	}
	// Around 70% compliant (loose bound for a random draw).
	if compliant < 20 || compliant > 38 {
		t.Errorf("compliant = %d of 40, want ≈28", compliant)
	}
	// Deterministic.
	again, _ := GenerateBids(tender, BidGenConfig{N: 40, CompliantFraction: 0.7, Seed: 11})
	for i := range bids {
		if bids[i].Bidder != again[i].Bidder || bids[i].RenewableShare != again[i].RenewableShare {
			t.Fatal("equal seeds must reproduce bids")
		}
	}
}

func TestGenerateBidsValidation(t *testing.T) {
	tender := cscsTender()
	if _, err := GenerateBids(tender, BidGenConfig{N: 0}); err == nil {
		t.Error("N=0 should fail")
	}
	if _, err := GenerateBids(tender, BidGenConfig{N: 5, CompliantFraction: 2}); err == nil {
		t.Error("bad fraction should fail")
	}
	if _, err := GenerateBids(&Tender{}, BidGenConfig{N: 5}); err == nil {
		t.Error("invalid tender should fail")
	}
}

func TestEndToEndTenderSimulation(t *testing.T) {
	tender := cscsTender()
	bids, err := GenerateBids(tender, BidGenConfig{N: 25, CompliantFraction: 0.8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := tender.Run(bids)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Winner == nil {
		t.Fatal("25 bids at 80% compliance should produce a winner")
	}
	// Winner must be compliant and cheapest among compliant.
	for _, s := range outcome.Ranked {
		if s.Compliant && s.AnnualCost < outcome.Winner.AnnualCost {
			t.Error("winner is not the cheapest compliant bid")
		}
	}
}
