package exp

// Cost-structure experiments: E2 (demand-charge share vs peak/average
// ratio), E3 (powerband vs demand charge sensitivity), E4 (CSCS-style
// tender savings).

import (
	"fmt"
	"time"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/hpc"
	"repro/internal/procurement"
	"repro/internal/report"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func init() {
	register("E2", runE2)
	register("E3", runE3)
	register("E4", runE4)
}

var expStart = time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)

// E2Point is one row of the E2 sweep, exported for the test layer.
type E2Point struct {
	PeakToAverage float64
	LoadFactor    float64
	DemandShare   float64
	Total         units.Money
}

// SweepE2 runs the E2 sweep and returns the raw points.
func SweepE2(ratios []float64) ([]E2Point, error) {
	c := &contract.Contract{
		Name:          "industrial-style",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.06)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(13)},
	}
	// The contract is fixed across the sweep: compile it once.
	eng, err := contract.NewEngine(c)
	if err != nil {
		return nil, err
	}
	out := make([]E2Point, 0, len(ratios))
	for _, r := range ratios {
		load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
			Start: expStart, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
			Base: 10 * units.Megawatt, PeakToAverage: r, NoiseSigma: 0.02, Seed: 7,
		})
		if err != nil {
			return nil, err
		}
		bill, err := eng.Bill(load, contract.BillingInput{})
		if err != nil {
			return nil, err
		}
		out = append(out, E2Point{
			PeakToAverage: r,
			LoadFactor:    load.LoadFactor(),
			DemandShare:   bill.DemandShare(),
			Total:         bill.Total,
		})
	}
	return out, nil
}

func runE2() (*Exhibit, error) {
	ratios := []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	points, err := SweepE2(ratios)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Demand-charge share of the monthly bill vs peak/average ratio (10 MW base load)",
		"Peak/Avg", "Load factor", "Demand share", "Monthly total")
	for _, p := range points {
		tbl.AddRow(
			fmt.Sprintf("%.1f", p.PeakToAverage),
			fmt.Sprintf("%.2f", p.LoadFactor),
			fmt.Sprintf("%.1f%%", p.DemandShare*100),
			p.Total.String(),
		)
	}
	return &Exhibit{
		ID:         "E2",
		Title:      "Demand-charge share grows with peak/average power ratio",
		PaperClaim: "§2 (Xu & Li): the share of the power charge within the electricity bill increases with the ratio of peak versus average power consumption.",
		Table:      tbl,
		Notes: []string{
			"The share is monotone in the ratio across the sweep, reproducing the cited result's shape.",
		},
	}, nil
}

// E3Point is one row of the E3 comparison.
type E3Point struct {
	Excursions    int
	DemandCharge  units.Money
	PowerbandCost units.Money
}

// SweepE3 builds a load with a controlled number of one-hour excursions
// to 14 MW over a 10 MW base and compares a 3-peak demand charge against
// a powerband with a 12 MW ceiling.
func SweepE3(excursionCounts []int) ([]E3Point, error) {
	dc := demand.SimpleCharge(13)
	band, err := demand.NewUpperPowerband(12*units.Megawatt, 0.40)
	if err != nil {
		return nil, err
	}
	out := make([]E3Point, 0, len(excursionCounts))
	for _, n := range excursionCounts {
		samples := make([]units.Power, 30*96) // a 15-min-metered month
		for i := range samples {
			samples[i] = 10 * units.Megawatt
		}
		// n one-hour excursions to 14 MW, one per day starting at noon.
		for k := 0; k < n && k < 30; k++ {
			at := k*96 + 48
			for j := 0; j < 4; j++ {
				samples[at+j] = 14 * units.Megawatt
			}
		}
		load, err := timeseries.NewPower(expStart, 15*time.Minute, samples)
		if err != nil {
			return nil, err
		}
		out = append(out, E3Point{
			Excursions:    n,
			DemandCharge:  dc.Cost(load, 0),
			PowerbandCost: band.Cost(load),
		})
	}
	return out, nil
}

func runE3() (*Exhibit, error) {
	counts := []int{0, 1, 3, 5, 10, 20}
	points, err := SweepE3(counts)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Powerband vs demand charge under repeated excursions (10 MW base, 14 MW spikes, 12 MW band)",
		"Excursions/month", "3-peak demand charge", "Powerband penalty")
	for _, p := range points {
		tbl.AddRow(fmt.Sprintf("%d", p.Excursions), p.DemandCharge.String(), p.PowerbandCost.String())
	}
	return &Exhibit{
		ID:         "E3",
		Title:      "Powerbands sample continuously; demand charges saturate at N peaks",
		PaperClaim: "§3.2.2: powerbands are a variation over demand charges with upper/lower limits and continuous sampling, as opposed to measuring a fixed number of peaks.",
		Table:      tbl,
		Notes: []string{
			"The demand charge is flat once ≥3 excursions exist (only the top three peaks bill); the powerband penalty keeps growing with every excursion.",
		},
	}, nil
}

// E4Result summarizes the tender simulation.
type E4Result struct {
	Winner      string
	WinnerRate  units.EnergyPrice
	StatusQuo   units.Money
	WinnerCost  units.Money
	Savings     units.Money
	CompliantOf int
	TotalBids   int
}

// RunTenderE4 executes the CSCS-style tender simulation.
func RunTenderE4() (*E4Result, *procurement.Outcome, error) {
	refLoad, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: expStart, Span: 365 * 24 * time.Hour, Interval: time.Hour,
		Base: 5 * units.Megawatt, PeakToAverage: 1.4, NoiseSigma: 0.02, Seed: 3,
	})
	if err != nil {
		return nil, nil, err
	}
	tender := &procurement.Tender{
		Name:                  "CSCS-style public tender",
		Variables:             procurement.CSCSVariables(),
		RenewableShareMin:     0.80,
		DisallowDemandCharges: true,
		ReferenceLoad:         refLoad,
	}
	bids, err := procurement.GenerateBids(tender, procurement.BidGenConfig{
		N: 25, CompliantFraction: 0.7, Seed: 17,
	})
	if err != nil {
		return nil, nil, err
	}
	outcome, err := tender.Run(bids)
	if err != nil {
		return nil, nil, err
	}
	statusQuo := &contract.Contract{
		Name:          "pre-tender contract",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.075)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(11)},
	}
	base, won, saved, err := tender.Savings(outcome, statusQuo)
	if err != nil {
		return nil, nil, err
	}
	compliant := 0
	for _, s := range outcome.Ranked {
		if s.Compliant {
			compliant++
		}
	}
	return &E4Result{
		Winner:      outcome.Winner.Bid.Bidder,
		WinnerRate:  outcome.Winner.Bid.EffectiveRate(),
		StatusQuo:   base,
		WinnerCost:  won,
		Savings:     saved,
		CompliantOf: compliant,
		TotalBids:   len(bids),
	}, outcome, nil
}

func runE4() (*Exhibit, error) {
	res, outcome, err := RunTenderE4()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("CSCS-style tender: top compliant bids vs status quo",
		"Rank", "Bidder", "Effective rate", "Annual cost", "Renewables")
	rank := 1
	for _, s := range outcome.Ranked {
		if !s.Compliant || rank > 5 {
			continue
		}
		tbl.AddRow(
			fmt.Sprintf("%d", rank),
			s.Bid.Bidder,
			s.Bid.EffectiveRate().String(),
			s.AnnualCost.String(),
			fmt.Sprintf("%.0f%%", s.Bid.RenewableShare*100),
		)
		rank++
	}
	return &Exhibit{
		ID:         "E4",
		Title:      "Public tender with demand-charge removal, 80% renewables, 4-variable bid formula",
		PaperClaim: "§4: CSCS transformed from passive consumer to active procurement, removing demand charges, requiring 80% renewables and a 4-variable price formula — yielding a direct economic benefit.",
		Table:      tbl,
		Notes: []string{
			fmt.Sprintf("%d of %d bids compliant; winner %s at %s.", res.CompliantOf, res.TotalBids, res.Winner, res.WinnerRate),
			fmt.Sprintf("Status quo %s/yr vs winner %s/yr: savings %s/yr.", res.StatusQuo, res.WinnerCost, res.Savings),
		},
	}, nil
}
