package exp

// E15: the colocation split incentive and its reverse-auction remedy
// (§2, Islam et al. / Ren & Islam). A colocation operator facing a
// mandatory emergency-DR curtailment compares doing nothing (tenants are
// power-shielded and will not curtail) against buying tenant flexibility
// in a reverse auction under both pricing rules.

import (
	"fmt"
	"time"

	"repro/internal/colo"
	"repro/internal/report"
	"repro/internal/units"
)

func init() {
	register("E15", runE15)
}

// E15Result summarizes the operator's options for one event.
type E15Result struct {
	AvoidableCost units.Money
	DoNothing     units.Money
	PayAsBid      *colo.OperatorDecision
	Uniform       *colo.OperatorDecision
}

// RunE15 evaluates a 2.5 MW, 2-hour mandatory curtailment for a colo
// with four tenants of differing flexibility and reserve prices. The
// avoidable cost is the emergency penalty for non-compliance:
// 2.5 MW × 2 h × 2.00/kWh = 10,000.
func RunE15() (*E15Result, error) {
	tenants := []*colo.Tenant{
		{Name: "web-tier", Baseline: 2 * units.Megawatt, Flexible: 500, ReservePrice: 0.20},
		{Name: "batch-analytics", Baseline: 3 * units.Megawatt, Flexible: 2000, ReservePrice: 0.05},
		{Name: "database", Baseline: 1500, Flexible: 100, ReservePrice: 1.50},
		{Name: "dev-cluster", Baseline: 1000, Flexible: 800, ReservePrice: 0.10},
	}
	const (
		// 2.5 MW makes dev-cluster the marginal winner, separating the
		// two pricing rules.
		target   = 2500 * units.Kilowatt
		duration = 2 * time.Hour
	)
	avoidable := units.EnergyPrice(2.0).Cost(target.Over(duration))

	pab, err := colo.ReverseAuction(tenants, target, duration, colo.PayAsBid)
	if err != nil {
		return nil, err
	}
	pabDecision, err := colo.Decide(pab, avoidable)
	if err != nil {
		return nil, err
	}
	uni, err := colo.ReverseAuction(tenants, target, duration, colo.UniformPrice)
	if err != nil {
		return nil, err
	}
	uniDecision, err := colo.Decide(uni, avoidable)
	if err != nil {
		return nil, err
	}
	return &E15Result{
		AvoidableCost: avoidable,
		DoNothing:     colo.SplitIncentiveBaseline(avoidable),
		PayAsBid:      pabDecision,
		Uniform:       uniDecision,
	}, nil
}

func runE15() (*Exhibit, error) {
	res, err := RunE15()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Colocation operator's options for a 2.5 MW × 2 h mandatory curtailment",
		"Option", "Reward outlay", "Residual cost", "Operator cost", "Saved vs doing nothing")
	doNothing := res.DoNothing
	tbl.AddRow("do nothing (split incentive)", "0.00", doNothing.String(), doNothing.String(), "0.00")
	for _, opt := range []struct {
		name string
		d    *colo.OperatorDecision
	}{
		{"reverse auction, pay-as-bid", res.PayAsBid},
		{"reverse auction, uniform price", res.Uniform},
	} {
		cost := opt.d.Auction.TotalPayment + opt.d.ResidualCost
		tbl.AddRow(opt.name,
			opt.d.Auction.TotalPayment.String(),
			opt.d.ResidualCost.String(),
			cost.String(),
			(doNothing - cost).String(),
		)
	}
	return &Exhibit{
		ID:         "E15",
		Title:      "Colocation split incentive and the reverse-auction remedy (extension, §2)",
		PaperClaim: "§2: colocation tenants are shielded from the power bill (\"split incentive\"), so \"a special incentive for tenants is needed ... for example via reverse auctioning which was implemented in contracts with the tenants.\"",
		Table:      tbl,
		Notes: []string{
			fmt.Sprintf("Both auction designs procure the full 2.5 MW; pay-as-bid costs the operator %s, uniform pricing %s (it pays every winner the marginal bid) — either beats absorbing the %s penalty the split incentive would otherwise leave on the table.",
				res.PayAsBid.Auction.TotalPayment, res.Uniform.Auction.TotalPayment, res.DoNothing),
		},
	}, nil
}
