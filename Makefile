# Developer entry points. `make check` is the full gate: build, vet,
# and the race-enabled test suite (the parallel month evaluator in
# internal/billing makes -race mandatory before merging).

GO ?= go

.PHONY: all build vet test race check fmt-check serve bench bench-billing fuzz clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

# Fail if any file is not gofmt-clean (CI gate).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Run the billing-as-a-service daemon on :8080 (see cmd/scserved -h).
serve:
	$(GO) run ./cmd/scserved -addr :8080

# Full benchmark sweep (paper exhibits + ablations).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the billing-engine pair: legacy multi-pass vs single-pass engine.
bench-billing:
	$(GO) test -run '^$$' -bench 'BenchmarkBillYear|BenchmarkBillingYear' -benchmem .

# Short fuzz pass over the timeseries parsers and transforms.
fuzz:
	$(GO) test ./internal/timeseries/ -fuzz FuzzReadPowerCSV -fuzztime 20s
	$(GO) test ./internal/timeseries/ -fuzz FuzzResampleWindow -fuzztime 20s

clean:
	$(GO) clean ./...
