// Package exporter is outside the metricname scopes; it may spell
// metric-like strings however it wants (e.g. docs or test fixtures).
package exporter

const doc = "# TYPE scserved_Whatever gauge"

func name() string { return "scserved_NotAMetricHere_total" }
