package route

// Router tests against scripted stub backends: spec affinity, health
// ejection/readmission through the breaker, failover with zero client-
// visible 5xx while a spare backend lives, shed (429) relayed as
// backend success, and the router's own health endpoints.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/contract"
)

// stubBackend is a fake scserved: answers /readyz and counts proxied
// requests, with a swappable handler for fault scripts.
type stubBackend struct {
	ts    *httptest.Server
	hits  atomic.Int64
	ready atomic.Bool

	mu      sync.Mutex
	handler http.HandlerFunc
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	sb := &stubBackend{}
	sb.ready.Store(true)
	sb.handler = func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"ok":true}`)
	}
	sb.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			if sb.ready.Load() {
				w.WriteHeader(http.StatusOK)
			} else {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			return
		}
		sb.hits.Add(1)
		sb.mu.Lock()
		h := sb.handler
		sb.mu.Unlock()
		h(w, r)
	}))
	t.Cleanup(sb.ts.Close)
	return sb
}

func (sb *stubBackend) setHandler(h http.HandlerFunc) {
	sb.mu.Lock()
	sb.handler = h
	sb.mu.Unlock()
}

func specBody(t *testing.T, name string) []byte {
	t.Helper()
	spec := &contract.Spec{
		Name:    name,
		Tariffs: []contract.TariffSpec{{Type: "fixed", Rate: 0.085}},
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]json.RawMessage{"contract": raw})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func newTestRouter(t *testing.T, cfg Config, stubs ...*stubBackend) (*Router, *httptest.Server) {
	t.Helper()
	for _, sb := range stubs {
		cfg.Backends = append(cfg.Backends, sb.ts.URL)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return rt, front
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, string(data)
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSpecAffinity: one spec always lands on one backend; distinct
// specs spread over the fleet.
func TestSpecAffinity(t *testing.T) {
	stubs := []*stubBackend{newStubBackend(t), newStubBackend(t), newStubBackend(t)}
	_, front := newTestRouter(t, Config{}, stubs...)

	body := specBody(t, "site-affinity")
	for i := 0; i < 9; i++ {
		if resp, out := postJSON(t, front.URL+"/v1/bill", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("bill %d: %d %s", i, resp.StatusCode, out)
		}
	}
	owners := 0
	for _, sb := range stubs {
		if n := sb.hits.Load(); n == 9 {
			owners++
		} else if n != 0 {
			t.Errorf("backend got %d of 9 requests; affinity must send all or none", n)
		}
	}
	if owners != 1 {
		t.Fatalf("one backend must own the spec, got %d owners", owners)
	}

	// Many distinct specs reach more than one backend.
	for i := 0; i < 30; i++ {
		postJSON(t, front.URL+"/v1/bill", specBody(t, fmt.Sprintf("site-%d", i)))
	}
	spread := 0
	for _, sb := range stubs {
		if sb.hits.Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("30 distinct specs reached only %d backends", spread)
	}
}

// TestUnkeyedRoundRobin: bodies without a parseable spec rotate over
// the fleet instead of hammering one backend.
func TestUnkeyedRoundRobin(t *testing.T) {
	stubs := []*stubBackend{newStubBackend(t), newStubBackend(t), newStubBackend(t)}
	_, front := newTestRouter(t, Config{}, stubs...)

	for i := 0; i < 9; i++ {
		resp, err := http.Get(front.URL + "/v1/profiles")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for _, sb := range stubs {
		if got := sb.hits.Load(); got != 3 {
			t.Errorf("round-robin uneven: backend saw %d of 9", got)
		}
	}
}

// TestFailoverHidesDeadBackend: with the spec's owner down, requests
// retry onto the next backend in rank order — the client sees 200s,
// never a 5xx, and the dead backend is ejected after FailureThreshold.
func TestFailoverHidesDeadBackend(t *testing.T) {
	stubs := []*stubBackend{newStubBackend(t), newStubBackend(t), newStubBackend(t)}
	rt, front := newTestRouter(t, Config{FailureThreshold: 2, OpenTimeout: time.Hour}, stubs...)

	// Find the owner of this spec and kill it.
	body := specBody(t, "site-failover")
	key, ok := routingKey(body)
	if !ok {
		t.Fatal("spec body must produce a routing key")
	}
	owner := Owner(rt.names, key)
	for _, sb := range stubs {
		if sb.ts.URL == owner {
			sb.ts.CloseClientConnections()
			sb.ts.Close()
		}
	}

	for i := 0; i < 6; i++ {
		resp, out := postJSON(t, front.URL+"/v1/bill", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d through dead owner: %d %s", i, resp.StatusCode, out)
		}
	}
	if state := rt.byName[owner].breaker.State(); state.String() != "open" {
		t.Errorf("dead owner's breaker = %s, want open", state)
	}
	if rt.metrics.retries.Load() == 0 {
		t.Error("failover must count retries")
	}
	// Once ejected, forwards stop trying the dead backend entirely, so
	// later requests retry nothing.
	before := rt.metrics.retries.Load()
	postJSON(t, front.URL+"/v1/bill", body)
	if got := rt.metrics.retries.Load(); got != before {
		t.Errorf("ejected backend still being tried: retries %d -> %d", before, got)
	}
}

// TestShedRelaysAsSuccess: a backend 429 relays to the client intact
// (Retry-After included) and does NOT count against the breaker —
// shedding is the fleet working, not failing.
func TestShedRelaysAsSuccess(t *testing.T) {
	sb := newStubBackend(t)
	sb.setHandler(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintln(w, `{"error":"request queue is full, retry later"}`)
	})
	rt, front := newTestRouter(t, Config{FailureThreshold: 1}, sb)

	resp, _ := postJSON(t, front.URL+"/v1/bill", specBody(t, "site-shed"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed response = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After not relayed: %q", got)
	}
	if state := rt.byName[sb.ts.URL].breaker.State(); state.String() != "closed" {
		t.Errorf("429 tripped the breaker (state %s); shed must count as success", state)
	}
}

// TestDrainingBackendEjectedAndReadmitted: the health poller ejects a
// backend whose /readyz goes 503 and readmits it — via the breaker's
// half-open probe — when it recovers.
func TestDrainingBackendEjectedAndReadmitted(t *testing.T) {
	sb := newStubBackend(t)
	rt, _ := newTestRouter(t, Config{
		PollInterval:     5 * time.Millisecond,
		FailureThreshold: 2,
		OpenTimeout:      20 * time.Millisecond,
	}, sb)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.Start(ctx)

	b := rt.byName[sb.ts.URL]
	waitUntil(t, "the first poll", func() bool { return b.ready.Load() })

	sb.ready.Store(false) // backend starts draining
	waitUntil(t, "the draining backend to be ejected", func() bool { return !b.eligible() })

	sb.ready.Store(true) // backend restarts
	waitUntil(t, "the recovered backend to be readmitted", func() bool { return b.eligible() })
}

// TestReadyzReflectsFleet: the router's own /readyz is 200 while any
// backend lives and 503 when the whole fleet is ejected; /metrics
// carries the scroute_ series.
func TestReadyzReflectsFleet(t *testing.T) {
	sb := newStubBackend(t)
	_, front := newTestRouter(t, Config{FailureThreshold: 1, OpenTimeout: time.Hour}, sb)

	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with live fleet = %d", resp.StatusCode)
	}

	// Kill the only backend and trip its breaker with one forward.
	sb.ts.CloseClientConnections()
	sb.ts.Close()
	if resp, out := postJSON(t, front.URL+"/v1/bill", specBody(t, "site-dead")); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead fleet forward = %d %s, want 502", resp.StatusCode, out)
	}

	resp, err = http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead fleet = %d %s", resp.StatusCode, body)
	}

	resp, err = http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"scroute_no_backend_total 1",
		`scroute_backend_healthy{backend=` + fmt.Sprintf("%q", sb.ts.URL) + `} 0`,
		"scroute_backend_ejections_total",
		`scroute_requests_total{path="/v1/bill",code="502"} 1`,
		`scroute_upstream_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestLastUpstream503Relays: when every backend answers 503 (whole
// fleet draining), the router relays the upstream 503 — truthful — and
// counts no retries as success.
func TestLastUpstream503Relays(t *testing.T) {
	stubs := []*stubBackend{newStubBackend(t), newStubBackend(t)}
	for _, sb := range stubs {
		sb.setHandler(func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"server is draining"}`)
		})
	}
	_, front := newTestRouter(t, Config{FailureThreshold: 5}, stubs...)

	resp, out := postJSON(t, front.URL+"/v1/bill", specBody(t, "site-drain"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("whole-fleet drain = %d %s, want relayed 503", resp.StatusCode, out)
	}
	if !strings.Contains(out, "draining") {
		t.Errorf("relayed body lost the upstream error: %s", out)
	}
}
