package resilience

import (
	"sync"
	"testing"
)

// TestBudgetColdStartBurst: a fresh budget starts with a full bucket so
// a cold-start failure burst can still fail over.
func TestBudgetColdStartBurst(t *testing.T) {
	b := NewBudget(BudgetConfig{Ratio: 0.1, Burst: 3})
	for i := 0; i < 3; i++ {
		if !b.TryAcquire() {
			t.Fatalf("acquire %d refused on a full cold-start bucket", i)
		}
	}
	if b.TryAcquire() {
		t.Fatal("acquire past burst must be refused")
	}
	st := b.Stats()
	if st.Granted != 3 || st.Denied != 1 {
		t.Fatalf("stats = %+v, want 3 granted / 1 denied", st)
	}
}

// TestBudgetRefillByPrimaries: tokens refill as a fraction of primary
// requests — ten primaries at ratio 0.1 buy one retry.
func TestBudgetRefillByPrimaries(t *testing.T) {
	b := NewBudget(BudgetConfig{Ratio: 0.1, Burst: 5})
	for b.TryAcquire() { // drain the cold-start burst
	}
	for i := 0; i < 9; i++ {
		b.OnPrimary()
	}
	if b.TryAcquire() {
		t.Fatal("0.9 tokens must not buy a retry")
	}
	b.OnPrimary()
	if !b.TryAcquire() {
		t.Fatal("10 primaries at ratio 0.1 must buy exactly one retry")
	}
	if b.TryAcquire() {
		t.Fatal("the one earned token is spent; next acquire must fail")
	}
}

// TestBudgetBurstCap: banked tokens never exceed Burst no matter how
// long traffic stays healthy.
func TestBudgetBurstCap(t *testing.T) {
	b := NewBudget(BudgetConfig{Ratio: 1, Burst: 2})
	for i := 0; i < 100; i++ {
		b.OnPrimary()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens = %g, want capped at 2", got)
	}
}

// TestBudgetStormBound: the attempted/offered multiplication bound —
// with ratio r and burst b, extra attempts over N offered requests can
// never exceed r*N + b, even when every request wants a retry.
func TestBudgetStormBound(t *testing.T) {
	const offered = 1000
	cfg := BudgetConfig{Ratio: 0.1, Burst: 10}
	b := NewBudget(cfg)
	extra := 0
	for i := 0; i < offered; i++ {
		b.OnPrimary()
		if b.TryAcquire() { // brownout: every request asks for a retry
			extra++
		}
	}
	bound := int(cfg.Ratio*offered + cfg.Burst)
	if extra > bound {
		t.Fatalf("%d extra attempts over %d offered exceeds the %d bound", extra, offered, bound)
	}
	// And the ratio the acceptance pins: attempted/offered <= 1.2 here.
	if ratio := float64(offered+extra) / float64(offered); ratio > 1.2+1e-9 {
		t.Fatalf("attempted/offered = %.3f, want <= 1.2", ratio)
	}
}

// TestBudgetConcurrent: hammer the budget from many goroutines under
// -race and check conservation: granted <= ratio*primaries + burst.
func TestBudgetConcurrent(t *testing.T) {
	cfg := BudgetConfig{Ratio: 0.5, Burst: 4}
	b := NewBudget(cfg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b.OnPrimary()
				b.TryAcquire()
			}
		}()
	}
	wg.Wait()
	st := b.Stats()
	if max := cfg.Ratio*float64(st.Primaries) + cfg.Burst; float64(st.Granted) > max {
		t.Fatalf("granted %d exceeds earned %g", st.Granted, max)
	}
	if st.Tokens < 0 || st.Tokens > cfg.Burst {
		t.Fatalf("balance %g outside [0, %g]", st.Tokens, cfg.Burst)
	}
}
