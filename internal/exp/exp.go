// Package exp implements the reproduction's experiment harness: one
// runner per paper exhibit (Table 1, Table 2, Figure 1) and one per
// quantified narrative claim (E1–E10, indexed in DESIGN.md). Each runner
// is deterministic, returns a structured result plus a rendered table,
// and asserts nothing itself — the accompanying tests pin the qualitative
// shape (who wins, what is monotone, where crossovers fall), and
// EXPERIMENTS.md records paper-vs-measured.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/report"
)

// Exhibit is one reproduced table/figure/claim.
type Exhibit struct {
	// ID is the experiment index ("T1", "E2", ...).
	ID string
	// Title describes the exhibit.
	Title string
	// PaperClaim quotes or paraphrases what the paper reports.
	PaperClaim string
	// Table is the regenerated output (nil for figures).
	Table *report.Table
	// Figure is the regenerated tree output ("" for tables).
	Figure string
	// Notes records measured findings and any deviation from the paper.
	Notes []string
}

// Render returns the exhibit as terminal text.
func (e *Exhibit) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", e.ID, e.Title)
	if e.PaperClaim != "" {
		fmt.Fprintf(&b, "Paper: %s\n", e.PaperClaim)
	}
	b.WriteString("\n")
	if e.Table != nil {
		b.WriteString(e.Table.Render())
	}
	if e.Figure != "" {
		b.WriteString(e.Figure)
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "\nNote: %s", n)
	}
	b.WriteString("\n")
	return b.String()
}

// Runner produces one exhibit.
type Runner func() (*Exhibit, error)

// registry maps experiment IDs to runners.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// Run executes the runner for an experiment ID.
func Run(id string) (*Exhibit, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r()
}

// IDs lists the registered experiments in a stable order (T* first,
// then E* numerically).
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool {
		ka, kb := idKey(out[a]), idKey(out[b])
		if ka != kb {
			return ka < kb
		}
		return out[a] < out[b]
	})
	return out
}

// idKey orders T1 < T2 < F1 < E1 < E2 < ... < E10.
func idKey(id string) int {
	if id == "" {
		return 1 << 20
	}
	var base int
	switch id[0] {
	case 'T':
		base = 0
	case 'F':
		base = 100
	case 'E':
		base = 200
	default:
		base = 1000
	}
	n := 0
	fmt.Sscanf(id[1:], "%d", &n)
	return base + n
}

// RunAll executes every registered experiment in order.
func RunAll() ([]*Exhibit, error) {
	var out []*Exhibit
	for _, id := range IDs() {
		e, err := Run(id)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", id, err)
		}
		out = append(out, e)
	}
	return out, nil
}
