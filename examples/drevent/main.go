// DR event walkthrough: the grid gets stressed, the ESP dispatches an
// emergency-DR event, and the supercomputing center answers with three
// different strategies — power capping, office-load shedding and on-site
// generation — each settled against the program and costed against its
// own operational impact.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/grid"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/tariff"
	"repro/internal/units"
)

func main() {
	start := time.Date(2016, time.July, 18, 0, 0, 0, 0, time.UTC)

	// ESP side: a stressed summer week.
	region := grid.DefaultRegion(start)
	region.Span = 7 * 24 * time.Hour
	regional, err := grid.SystemLoad(region)
	if err != nil {
		log.Fatal(err)
	}
	threshold, err := regional.Percentile(0.98)
	if err != nil {
		log.Fatal(err)
	}
	stress, err := grid.DetectStress(regional, threshold)
	if err != nil {
		log.Fatal(err)
	}
	program := &repro.DRProgram{
		Kind:                 market.EmergencyDR,
		CommittedReduction:   3 * units.Megawatt,
		EnergyIncentive:      0.60,
		UnderDeliveryPenalty: 0.30,
		MaxEventDuration:     time.Hour,
		MaxEventsPerPeriod:   3,
	}
	events := program.DispatchFromStress(stress)
	fmt.Printf("Grid stress: %d events above %s; program dispatches %d.\n\n",
		len(stress), threshold, len(events))

	// SC side: a 20 MW site under a typical contract.
	baseline, err := repro.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: start, Span: 7 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 20 * units.Megawatt, PeakToAverage: 1.25, NoiseSigma: 0.02, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := &repro.Contract{
		Name:          "summer-site",
		Tariffs:       []repro.Tariff{tariff.MustNewFixed(0.06)},
		DemandCharges: []*repro.DemandCharge{demand.SimpleCharge(12)},
	}

	strategies := []repro.DRStrategy{
		&dr.CapStrategy{Cap: 18 * units.Megawatt, OpCostPerKWh: 0.80}, // curtails compute: expensive
		&dr.ShedStrategy{Fraction: 0.08, OpCostPerKWh: 0.02},          // office/support load: cheap
		&dr.GenStrategy{Capacity: 3 * units.Megawatt, FuelCostPerKWh: 0.25},
	}

	tbl := report.NewTable("Strategy comparison for the dispatched events",
		"Strategy", "Curtailed", "Bill savings", "Program net", "Op cost", "NET BENEFIT", "Worth it?")
	for _, s := range strategies {
		ev, err := repro.EvaluateDR(c, baseline, s, program, events, contract.BillingInput{})
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(
			ev.Strategy,
			ev.Settlement.CurtailedEnergy.String(),
			ev.BillSavings().String(),
			ev.Settlement.Net.String(),
			ev.OpCost.String(),
			ev.NetBenefit.String(),
			report.Check(ev.WorthIt()),
		)
	}
	fmt.Print(tbl.Render())
	fmt.Println("\nCapping compute rarely pays (the paper's central finding); shedding")
	fmt.Println("non-mission load or running on-site generation can — exactly the LANL path.")
}
