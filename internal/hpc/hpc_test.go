package hpc

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2016, time.June, 1, 0, 0, 0, 0, time.UTC)

func TestNodeSpecValidate(t *testing.T) {
	good := DefaultNode()
	if err := good.Validate(); err != nil {
		t.Errorf("default node should validate: %v", err)
	}
	bad := []*NodeSpec{
		{IdlePower: -1, States: []PowerState{{FreqFactor: 1, Power: 1}}, Cores: 1},
		{IdlePower: 0, States: nil, Cores: 1},
		{IdlePower: 0, States: []PowerState{{FreqFactor: 0, Power: 1}}, Cores: 1},
		{IdlePower: 2, States: []PowerState{{FreqFactor: 1, Power: 1}}, Cores: 1},
		{IdlePower: 0, States: []PowerState{{FreqFactor: 1, Power: 1}}, Cores: 0},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("bad node %d should fail", i)
		}
	}
}

func TestNodeMaxPower(t *testing.T) {
	n := DefaultNode()
	if got := n.MaxPower(); got != 0.350 {
		t.Errorf("MaxPower = %v", got)
	}
}

func TestPUEModel(t *testing.T) {
	p := PUEModel{Fixed: 100, Factor: 1.2}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Total(1000); got != 1300 {
		t.Errorf("Total = %v", got)
	}
	if got := p.EffectivePUE(1000); math.Abs(got-1.3) > 1e-12 {
		t.Errorf("EffectivePUE = %v", got)
	}
	if got := p.EffectivePUE(0); got != 1.2 {
		t.Errorf("zero-IT PUE = %v", got)
	}
	if err := (PUEModel{Factor: 0.9}).Validate(); err == nil {
		t.Error("factor < 1 should fail")
	}
	if err := (PUEModel{Fixed: -1, Factor: 1.1}).Validate(); err == nil {
		t.Error("negative fixed should fail")
	}
}

func TestNewMachineValidation(t *testing.T) {
	node := DefaultNode()
	if _, err := NewMachine("x", nil, 10, PUEModel{Factor: 1.1}); err == nil {
		t.Error("nil node should fail")
	}
	if _, err := NewMachine("x", node, 0, PUEModel{Factor: 1.1}); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := NewMachine("x", node, 10, PUEModel{Factor: 0.5}); err == nil {
		t.Error("bad PUE should fail")
	}
	bad := &NodeSpec{States: nil, Cores: 1}
	if _, err := NewMachine("x", bad, 10, PUEModel{Factor: 1.1}); err == nil {
		t.Error("invalid node should fail")
	}
}

func TestReferenceMachinesMatchPaperMagnitudes(t *testing.T) {
	big := Top50Machine()
	peak := big.PeakFacilityPower()
	// The paper: major US sites above 10 MW in 2013, feeders up to 60 MW.
	if peak.MW() < 10 || peak.MW() > 60 {
		t.Errorf("Top50 peak = %v, want 10–60 MW", peak)
	}
	if big.IdleFacilityPower() >= peak {
		t.Error("idle must be below peak")
	}
	small := SmallSiteMachine()
	sp := small.PeakFacilityPower()
	if sp.MW() < 0.5 || sp.MW() > 3 {
		t.Errorf("small site peak = %v, want ≈1 MW class", sp)
	}
}

func TestJobValidate(t *testing.T) {
	good := &Job{Arrival: 0, Runtime: time.Hour, Walltime: 2 * time.Hour, Nodes: 4, PowerFraction: 0.8}
	if err := good.Validate(); err != nil {
		t.Errorf("good job: %v", err)
	}
	bad := []*Job{
		{Arrival: -1, Runtime: 1, Walltime: 1, Nodes: 1, PowerFraction: 0.5},
		{Runtime: 0, Walltime: 1, Nodes: 1, PowerFraction: 0.5},
		{Runtime: 2, Walltime: 1, Nodes: 1, PowerFraction: 0.5},
		{Runtime: 1, Walltime: 1, Nodes: 0, PowerFraction: 0.5},
		{Runtime: 1, Walltime: 1, Nodes: 1, PowerFraction: 0},
		{Runtime: 1, Walltime: 1, Nodes: 1, PowerFraction: 1.5},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("bad job %d should fail", i)
		}
	}
}

func TestJobNodePower(t *testing.T) {
	spec := DefaultNode()
	j := &Job{Runtime: time.Hour, Walltime: time.Hour, Nodes: 1, PowerFraction: 1}
	full := j.NodePower(spec, spec.States[0])
	if full != spec.States[0].Power {
		t.Errorf("full-power job draw = %v", full)
	}
	j.PowerFraction = 0.5
	half := j.NodePower(spec, spec.States[0])
	want := spec.IdlePower + (spec.States[0].Power-spec.IdlePower)/2
	if math.Abs(float64(half-want)) > 1e-9 {
		t.Errorf("half-power draw = %v, want %v", half, want)
	}
	// Powersave state draws less for the same job.
	save := j.NodePower(spec, spec.States[2])
	if save >= half {
		t.Error("powersave state should draw less")
	}
}

func TestGenerateWorkloadValidationErrors(t *testing.T) {
	m := SmallSiteMachine()
	cases := []WorkloadConfig{
		{},
		{Span: time.Hour, TargetUtilization: 0},
		{Span: time.Hour, TargetUtilization: 2, MeanRuntime: time.Hour, MaxJobFraction: 0.5},
		{Span: time.Hour, TargetUtilization: 0.9, MeanRuntime: 0, MaxJobFraction: 0.5},
		{Span: time.Hour, TargetUtilization: 0.9, MeanRuntime: time.Hour, MaxJobFraction: 0},
	}
	for i, cfg := range cases {
		if _, err := GenerateWorkload(m, cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := GenerateWorkload(nil, DefaultWorkload()); err == nil {
		t.Error("nil machine should fail")
	}
}

func TestGenerateWorkloadShape(t *testing.T) {
	m := SmallSiteMachine()
	cfg := DefaultWorkload()
	jobs, err := GenerateWorkload(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 50 {
		t.Fatalf("only %d jobs generated", len(jobs))
	}
	maxNodes := int(float64(m.Nodes) * cfg.MaxJobFraction)
	var prev time.Duration
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", j.ID, err)
		}
		if j.Nodes > maxNodes {
			t.Fatalf("job %d exceeds size cap: %d nodes", j.ID, j.Nodes)
		}
		if j.Arrival < prev {
			t.Fatal("jobs must be sorted by arrival")
		}
		prev = j.Arrival
		if j.Arrival >= cfg.Span {
			t.Fatal("arrivals must lie inside the span")
		}
	}
	// Node-hour demand should land within a factor ~2 of the target
	// (it is a random process).
	demand := TotalNodeHours(jobs)
	target := float64(m.Nodes) * cfg.Span.Hours() * cfg.TargetUtilization
	if demand < target*0.5 || demand > target*2.0 {
		t.Errorf("node-hours = %.0f, target %.0f", demand, target)
	}
}

func TestGenerateWorkloadDeterministic(t *testing.T) {
	m := SmallSiteMachine()
	cfg := DefaultWorkload()
	a, err := GenerateWorkload(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorkload(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("job %d differs between equal-seed runs", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 2
	c, err := GenerateWorkload(m, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if *a[i] != *c[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds should produce different traces")
	}
}

func TestSyntheticFacilityLoadValidation(t *testing.T) {
	cases := []LoadProfileConfig{
		{},
		{Span: time.Hour, Interval: 0, Base: 1000, PeakToAverage: 1},
		{Span: time.Hour, Interval: time.Minute, Base: 0, PeakToAverage: 1},
		{Span: time.Hour, Interval: time.Minute, Base: 1000, PeakToAverage: 0.5},
		{Span: time.Hour, Interval: time.Minute, Base: 1000, PeakToAverage: 1, NoiseSigma: -1},
		{Span: time.Minute, Interval: time.Hour, Base: 1000, PeakToAverage: 1},
	}
	for i, cfg := range cases {
		if _, err := SyntheticFacilityLoad(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSyntheticFacilityLoadFlat(t *testing.T) {
	s, err := SyntheticFacilityLoad(LoadProfileConfig{
		Start: t0, Span: 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 10000, PeakToAverage: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 96 {
		t.Fatalf("len = %d", s.Len())
	}
	peak, _, _ := s.Peak()
	if peak != 10000 || s.Mean() != 10000 {
		t.Errorf("flat profile: peak %v mean %v", peak, s.Mean())
	}
}

func TestSyntheticFacilityLoadPeakTarget(t *testing.T) {
	for _, ratio := range []float64{1.5, 2.0, 3.0} {
		s, err := SyntheticFacilityLoad(LoadProfileConfig{
			Start: t0, Span: 7 * 24 * time.Hour, Interval: 15 * time.Minute,
			Base: 10000, PeakToAverage: ratio, NoiseSigma: 0.02, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		peak, _, _ := s.Peak()
		wantPeak := 10000 * ratio
		if math.Abs(float64(peak)-wantPeak) > wantPeak*0.05 {
			t.Errorf("ratio %.1f: peak = %v, want ≈%v", ratio, peak, wantPeak)
		}
		// Mean should stay near base (spikes are rare).
		if math.Abs(float64(s.Mean())-10000) > 2000 {
			t.Errorf("ratio %.1f: mean drifted to %v", ratio, s.Mean())
		}
	}
}

func TestSyntheticFacilityLoadDiurnal(t *testing.T) {
	s, err := SyntheticFacilityLoad(LoadProfileConfig{
		Start: t0, Span: 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 10000, PeakToAverage: 1, DiurnalSwing: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Midnight sample should be near the trough, midday near the crest.
	if s.At(0) >= s.At(48) {
		t.Errorf("diurnal: midnight %v should be below midday %v", s.At(0), s.At(48))
	}
	mn, _ := s.Min()
	if mn < 7000 {
		t.Errorf("trough too deep: %v", mn)
	}
}

func TestSyntheticLoadDeterministic(t *testing.T) {
	cfg := LoadProfileConfig{
		Start: t0, Span: 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 10000, PeakToAverage: 2, NoiseSigma: 0.05, Seed: 9,
	}
	a, _ := SyntheticFacilityLoad(cfg)
	b, _ := SyntheticFacilityLoad(cfg)
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatal("equal seeds must reproduce the trace")
		}
	}
}

// Property: generated profiles are non-negative and have peak within a
// small tolerance of base × ratio for ratios > 1.
func TestQuickSyntheticLoadInvariants(t *testing.T) {
	f := func(seed int64, ratioPct uint8) bool {
		ratio := 1 + float64(ratioPct%200)/100 // 1.00–2.99
		s, err := SyntheticFacilityLoad(LoadProfileConfig{
			Start: t0, Span: 48 * time.Hour, Interval: 15 * time.Minute,
			Base: 8000, PeakToAverage: ratio, NoiseSigma: 0.03, Seed: seed,
		})
		if err != nil {
			return false
		}
		mn, _ := s.Min()
		if mn < 0 {
			return false
		}
		peak, _, _ := s.Peak()
		return float64(peak) <= 8000*ratio*1.15+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTotalNodeHours(t *testing.T) {
	jobs := []*Job{
		{Nodes: 2, Runtime: time.Hour},
		{Nodes: 3, Runtime: 2 * time.Hour},
	}
	if got := TotalNodeHours(jobs); got != 8 {
		t.Errorf("TotalNodeHours = %v", got)
	}
	if TotalNodeHours(nil) != 0 {
		t.Error("empty = 0")
	}
}

func BenchmarkGenerateWorkloadWeek(b *testing.B) {
	m := Top50Machine()
	cfg := DefaultWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateWorkload(m, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyntheticFacilityLoadYear(b *testing.B) {
	cfg := LoadProfileConfig{
		Start: t0, Span: 365 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 12000, PeakToAverage: 1.8, NoiseSigma: 0.04, DiurnalSwing: 0.05, Seed: 5,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SyntheticFacilityLoad(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
