// Package lockheld forbids slow or blocking work while a mutex is
// held.
//
// Invariant guarded: scserved's hot paths serialize on small critical
// sections (engine cache, feed cache, breaker state). Doing anything
// slow under one of those locks — a network call, a retry/breaker Do,
// an engine compile, a channel send, a sleep — turns a per-request
// cost into a whole-server stall, and calling back into user code
// under a lock invites the reentrancy deadlock class PR 3 fixed by
// hand in the engine cache. The analyzer tracks Lock/RLock ... Unlock
// pairs intra-procedurally (straight-line, if/else, switch, loops) and
// flags banned operations on any path where a lock is still held.
// Methods named ...Locked with a receiver are analyzed as holding
// their receiver's lock at entry, per the repo's naming convention.
//
// Calls through plain function values are banned too (a callback's
// cost is unknowable at the call site) with one blessing: values of
// type func() time.Time — the injected-clock shape — are exempt.
package lockheld

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "forbid network calls, retry/breaker Do, engine compiles, sleeps, and " +
		"channel operations while holding a sync.Mutex/RWMutex",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := map[string]bool{}
			if fd.Recv != nil && strings.HasSuffix(fd.Name.Name, "Locked") {
				held["the caller's lock (...Locked convention)"] = true
			}
			w := &walker{pass: pass}
			w.stmts(fd.Body.List, held)
		}
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
}

// stmts walks a statement list in order, mutating held as locks are
// acquired and released, and returns true if the list always
// terminates (ends in return or an unconditional control transfer).
func (w *walker) stmts(list []ast.Stmt, held map[string]bool) bool {
	for _, s := range list {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

// stmt walks one statement; the bool result reports "control never
// proceeds past this statement".
func (w *walker) stmt(s ast.Stmt, held map[string]bool) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if w.lockOp(call, held) {
				return false
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to the end of the
		// function, which is exactly what tracking "still held" models;
		// other deferred work runs at return and is out of scope.
	case *ast.GoStmt:
		// The spawned goroutine does not hold the caller's lock; its
		// body is a function literal and literals are not descended.
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			w.pass.Reportf(s.Arrow, "channel send while holding %s; release the lock first", heldNames(held))
		}
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto: stop tracking this list
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		branches := [][]ast.Stmt{s.Body.List}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			branches = append(branches, e.List)
		case *ast.IfStmt:
			branches = append(branches, []ast.Stmt{e})
		}
		w.branchJoin(branches, held, s.Else == nil)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				w.stmt(sw.Init, held)
			}
			if sw.Tag != nil {
				w.expr(sw.Tag, held)
			}
			body = sw.Body
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			if ts.Init != nil {
				w.stmt(ts.Init, held)
			}
			body = ts.Body
		}
		var branches [][]ast.Stmt
		for _, c := range body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branches = append(branches, cc.Body)
			}
		}
		w.branchJoin(branches, held, true)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range body(s.Body) {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			w.pass.Reportf(s.Pos(), "blocking select while holding %s; release the lock first", heldNames(held))
		}
		var branches [][]ast.Stmt
		for _, c := range body(s.Body) {
			if cc, ok := c.(*ast.CommClause); ok {
				branches = append(branches, cc.Body)
			}
		}
		w.branchJoin(branches, held, true)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		loop := copyHeld(held)
		w.stmts(s.Body.List, loop)
		if s.Post != nil {
			w.stmt(s.Post, loop)
		}
		union(held, loop)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		loop := copyHeld(held)
		w.stmts(s.Body.List, loop)
		union(held, loop)
	}
	return false
}

// branchJoin walks each branch on a copy of the entry state and joins
// the survivors: a branch that terminates (returns) contributes
// nothing; the rest contribute the union of their exit states, plus
// the fall-through entry state when the construct may be skipped
// entirely (no else / no exhaustive cases).
func (w *walker) branchJoin(branches [][]ast.Stmt, held map[string]bool, mayFallThrough bool) {
	exit := map[string]bool{}
	if mayFallThrough {
		union(exit, held)
	}
	any := mayFallThrough
	for _, b := range branches {
		st := copyHeld(held)
		if !w.stmts(b, st) {
			union(exit, st)
			any = true
		}
	}
	if any {
		for k := range held {
			delete(held, k)
		}
		union(held, exit)
	}
}

// lockOp handles mu.Lock/RLock/Unlock/RUnlock expression statements,
// returning true if the call was one.
func (w *walker) lockOp(call *ast.CallExpr, held map[string]bool) bool {
	fn := analysis.CalleeFunc(w.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		held[key] = true
		return true
	case "Unlock", "RUnlock":
		delete(held, key)
		return true
	case "TryLock", "TryRLock":
		// Result-dependent; treated as not acquiring for tracking.
		return true
	}
	return false
}

// expr inspects an expression subtree for banned operations while a
// lock is held. Function literals are not descended: they run later,
// in a context of their own.
func (w *walker) expr(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				w.pass.Reportf(n.OpPos, "blocking channel receive while holding %s; release the lock first", heldNames(held))
			}
		case *ast.CallExpr:
			w.checkCall(n, held)
		}
		return true
	})
}

// checkCall flags banned callees while a lock is held.
func (w *walker) checkCall(call *ast.CallExpr, held map[string]bool) {
	info := w.pass.TypesInfo
	if analysis.IsBuiltin(info, call) || analysis.IsConversion(info, call) {
		return
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		// A call through a plain function value: unknowable cost and a
		// reentrancy hazard — except the blessed injected clock.
		if tv, ok := info.Types[call.Fun]; ok && analysis.IsClockFuncType(tv.Type) {
			return
		}
		w.pass.Reportf(call.Pos(),
			"call through function value %s while holding %s; deliver callbacks after unlocking",
			types.ExprString(call.Fun), heldNames(held))
		return
	}
	name := fn.Name()
	var pkgPath string
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	hasRecv := sig != nil && sig.Recv() != nil

	bad := ""
	switch {
	case pkgPath == "time" && name == "Sleep":
		bad = "time.Sleep"
	case pkgPath == "sync" && name == "Wait":
		bad = "sync ...Wait"
	case pkgPath == "net/http" && (name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
		bad = "net/http " + name
	case pkgPath == "net" && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")):
		bad = "net." + name
	case pkgPath == "os/exec" && hasRecv && (name == "Run" || name == "Output" || name == "CombinedOutput" || name == "Start" || name == "Wait"):
		bad = "os/exec Cmd." + name
	case name == "Do" && analysis.PathHasSegments(pkgPath, "internal/resilience"):
		bad = "resilience " + recvName(sig) + ".Do"
	case analysis.PathHasSegments(pkgPath, "internal/contract") && (name == "Build" || name == "NewEngine"):
		bad = "contract engine compile (" + name + ")"
	case name == "Fetch" && hasRecv && sig.Params().Len() > 0 && analysis.IsContextType(sig.Params().At(0).Type()):
		bad = "provider Fetch"
	}
	if bad != "" {
		w.pass.Reportf(call.Pos(), "%s while holding %s; release the lock first", bad, heldNames(held))
	}
}

func recvName(sig *types.Signature) string {
	if sig == nil || sig.Recv() == nil {
		return "Retry/Breaker"
	}
	if n := analysis.NamedOf(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return "Retry/Breaker"
}

func body(b *ast.BlockStmt) []ast.Stmt {
	if b == nil {
		return nil
	}
	return b.List
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func union(dst, src map[string]bool) {
	for k := range src {
		dst[k] = true
	}
}

func heldNames(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
