package exp

// E13: energy buffering against demand charges (the Yao et al. line of
// work cited in §2). E14: the SC as a regulation provider — the paper's
// observation that SCs "are able to exhibit rapid changes in their
// electricity power use, which could be of great benefit to grid
// operators" (§4), priced.

import (
	"fmt"
	"time"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/storage"
	"repro/internal/tariff"
	"repro/internal/units"
)

func init() {
	register("E13", runE13)
	register("E14", runE14)
}

// E13Point is one battery size in the peak-shaving study.
type E13Point struct {
	BatteryCapacity units.Energy
	ShaveDepth      units.Power
	BaselineBill    units.Money
	ShavedBill      units.Money
	Savings         units.Money
	Cycles          float64
}

// SweepE13 sizes a battery against a peaky month and measures
// demand-charge savings. The operating policy is the realistic one: the
// shave threshold is chosen per battery so the spike energy the battery
// can actually sustain is what gets shaved (a too-deep threshold that
// the battery cannot hold through a spike buys nothing under a
// single-peak demand charge).
func SweepE13(capacities []units.Energy) ([]E13Point, error) {
	const (
		base     = 10 * units.Megawatt
		peak     = 16 * units.Megawatt // base × 1.6
		spikeHrs = 1.0
		maxDis   = 4 * units.Megawatt
		headroom = 0.90 // SoC margin for losses and noise
	)
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: expStart, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: base, PeakToAverage: 1.6, NoiseSigma: 0.02, Seed: 31,
	})
	if err != nil {
		return nil, err
	}
	c := &contract.Contract{
		Name:          "storage-site",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.06)},
		DemandCharges: []*demand.Charge{demand.MustNewCharge(13, demand.SinglePeak, 0, 0)},
	}
	// One compiled engine bills the baseline and every battery variant.
	eng, err := contract.NewEngine(c)
	if err != nil {
		return nil, err
	}
	baseBill, err := eng.Bill(load, contract.BillingInput{})
	if err != nil {
		return nil, err
	}
	out := make([]E13Point, 0, len(capacities))
	for _, capE := range capacities {
		depth := units.MinPower(maxDis, units.Power(float64(capE)*headroom/spikeHrs))
		threshold := peak - depth
		b := &storage.Battery{
			Capacity:            capE,
			MaxCharge:           2 * units.Megawatt,
			MaxDischarge:        maxDis,
			RoundTripEfficiency: 0.90,
			InitialSoC:          1.0,
		}
		res, err := storage.PeakShave(b, load, threshold)
		if err != nil {
			return nil, err
		}
		bill, err := eng.Bill(res.Net, contract.BillingInput{})
		if err != nil {
			return nil, err
		}
		out = append(out, E13Point{
			BatteryCapacity: capE,
			ShaveDepth:      depth,
			BaselineBill:    baseBill.Total,
			ShavedBill:      bill.Total,
			Savings:         baseBill.Total - bill.Total,
			Cycles:          res.EquivalentFullCycles,
		})
	}
	return out, nil
}

func runE13() (*Exhibit, error) {
	capacities := []units.Energy{
		1 * units.MegawattHour, 2 * units.MegawattHour,
		4 * units.MegawattHour, 8 * units.MegawattHour,
		16 * units.MegawattHour,
	}
	points, err := SweepE13(capacities)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Battery peak shaving vs demand charges (10 MW site, 16 MW hourly spikes, depth sized to the battery)",
		"Battery", "Shave depth", "Monthly bill", "Savings", "Full cycles")
	for _, p := range points {
		tbl.AddRow(p.BatteryCapacity.String(), p.ShaveDepth.String(),
			p.ShavedBill.String(), p.Savings.String(), fmt.Sprintf("%.1f", p.Cycles))
	}
	return &Exhibit{
		ID:         "E13",
		Title:      "Energy buffering against demand charges (extension, §2 [35])",
		PaperClaim: "§2: the data-center DR literature the paper surveys includes predictive electricity cost minimization through energy buffering (Yao, Liu & Zhang).",
		Table:      tbl,
		Notes: []string{
			"Savings grow with battery size until the battery covers the worst spike's energy, then saturate — sizing to the spike, not the peak power, is what matters.",
		},
	}, nil
}

// E14Point is one ramp capability in the regulation study.
type E14Point struct {
	MaxRamp units.RampRate
	Score   float64
	Payment units.Money
}

// SweepE14 prices an SC's regulation service as a function of its ramp
// capability (2 MW offered on a 10-hour signal).
func SweepE14(ramps []units.RampRate) ([]E14Point, error) {
	sig, err := market.GenerateRegulationSignal(expStart, time.Minute, 600, 41)
	if err != nil {
		return nil, err
	}
	out := make([]E14Point, 0, len(ramps))
	for _, r := range ramps {
		res, err := market.TrackRegulation(sig, 2*units.Megawatt, r, 5)
		if err != nil {
			return nil, err
		}
		out = append(out, E14Point{MaxRamp: r, Score: res.Score, Payment: res.Payment})
	}
	return out, nil
}

func runE14() (*Exhibit, error) {
	ramps := []units.RampRate{20, 100, 500, 2000, 10000}
	points, err := SweepE14(ramps)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Regulation performance vs facility ramp capability (2 MW offered, 10 h signal)",
		"Max ramp", "Tracking score", "Payment")
	for _, p := range points {
		tbl.AddRow(p.MaxRamp.String(), fmt.Sprintf("%.3f", p.Score), p.Payment.String())
	}
	return &Exhibit{
		ID:         "E14",
		Title:      "The SC's fast ramping as a grid service (extension, §4)",
		PaperClaim: "§4: \"SCs are able to exhibit rapid changes in their electricity power use, which could be of great benefit to grid operators.\"",
		Table:      tbl,
		Notes: []string{
			"Tracking score — and therefore regulation revenue — rises steeply with ramp capability; the batch facility's MW-per-minute agility (E9) sits at the top of this curve, turning the grid-straining property into a marketable service.",
		},
	}, nil
}
