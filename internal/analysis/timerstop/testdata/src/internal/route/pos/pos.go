// Positive fixtures: timers and tickers that are not released on
// every exit path, plus the loop-local time.After and time.Tick
// shapes. Package path is scope-aligned with internal/route.
package pos

import (
	"context"
	"time"
)

// Fall-through end of function with a live timer.
func fallThrough(d time.Duration) {
	t := time.NewTimer(d) // want "time.NewTimer result t is not Stopped on every exit path"
	<-t.C
}

// Stopped on one branch, leaked on the early return.
func oneBranch(d time.Duration, fast bool) {
	t := time.NewTimer(d) // want "time.NewTimer result t is not Stopped on every exit path"
	if fast {
		return
	}
	t.Stop()
}

// A ticker is never stopped.
func tickerLeak(d time.Duration, work chan struct{}) {
	tk := time.NewTicker(d) // want "time.NewTicker result tk is not Stopped on every exit path"
	for range work {
		<-tk.C
	}
}

// AfterFunc whose cancel is never released: the callback stays armed.
func afterFuncLeak(ctx context.Context, d time.Duration, cancel context.CancelFunc) error {
	timer := time.AfterFunc(d, func() { cancel() }) // want "time.AfterFunc result timer is not Stopped on every exit path"
	if err := ctx.Err(); err != nil {
		return err
	}
	_ = timer
	return nil
}

// time.After in a loop arms a fresh timer per iteration.
func afterInLoop(ctx context.Context, interval time.Duration) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval): // want "time.After in a loop arms a new timer per iteration"
		}
	}
}

// time.After in a range loop, outside a select.
func afterInRange(items []int, d time.Duration) {
	for range items {
		<-time.After(d) // want "time.After in a loop arms a new timer per iteration"
	}
}

// time.Tick can never be stopped.
func tickLeak(d time.Duration, stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-time.Tick(d): // want "time.Tick leaks its ticker"
		}
	}
}

// A switch where only one case stops the timer.
func switchLeak(mode int, d time.Duration) {
	t := time.NewTimer(d) // want "time.NewTimer result t is not Stopped on every exit path"
	switch mode {
	case 0:
		t.Stop()
	case 1:
		<-t.C
	}
}

// Discarding the handle means nothing can ever Stop it.
func discarded(d time.Duration, f func()) {
	time.AfterFunc(d, f) // want "time.AfterFunc result is discarded"
}
