package survey

import (
	"strings"
	"testing"
)

func TestQuestionsMatchPaperStructure(t *testing.T) {
	qs := Questions()
	if len(qs) != 6 {
		t.Fatalf("§3.1 has six questions, got %d", len(qs))
	}
	wantIDs := []string{"3.1.1", "3.1.2", "3.1.3", "3.1.4", "3.1.5", "3.1.6"}
	for i, q := range qs {
		if q.ID != wantIDs[i] {
			t.Errorf("question %d ID = %s", i, q.ID)
		}
		if q.Topic == "" || q.Text == "" || q.Motivation == "" {
			t.Errorf("question %s incomplete", q.ID)
		}
	}
	// Spot checks against the paper's wording.
	if !strings.Contains(qs[0].Text, "negotiating the contract") {
		t.Error("Q1 should ask about negotiation responsibility")
	}
	if !strings.Contains(qs[2].Text, "power band") {
		t.Error("Q3 should mention power bands")
	}
	if !strings.Contains(qs[5].Topic, "DR") {
		t.Error("Q6 is the DR-potential question")
	}
}

func TestQuestionsTable(t *testing.T) {
	out := QuestionsTable().Render()
	if !strings.Contains(out, "3.1.6") || !strings.Contains(out, "Pricing Structure") {
		t.Error("questions table incomplete")
	}
}
