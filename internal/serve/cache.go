package serve

// LRU cache of compiled billing engines. Compiling a contract spec into
// a contract.Engine validates every component and builds the producer
// set; billing with a compiled engine is then a single streaming pass.
// The service compiles each distinct spec once and reuses the engine
// across requests — the cache key is the canonical content hash of the
// spec (contract.HashSpec) so formatting differences between clients
// cannot cause duplicate compiles, concatenated with a descriptor of
// the price feed for specs that contain dynamic tariffs (the same spec
// built against a different feed is a different executable engine;
// specs without dynamic tariffs ignore the feed and share one entry).
//
// Compilation is per-key single-flight, not under the global mutex: a
// miss inserts a placeholder entry and compiles after releasing the
// lock, so a slow compile parks only requests for the same key while
// hits (and misses for other keys) proceed. Concurrent requests for an
// in-flight key wait on the entry's ready channel and share the one
// compile. Eviction is safe during compilation: waiters hold the entry
// pointer directly, so an entry evicted mid-compile still delivers its
// engine to everyone already waiting and simply is not reused after.

import (
	"container/list"
	"sync"

	"repro/internal/contract"
)

// cacheEntry is one cached (possibly still compiling) engine. engine
// and err may be read only after ready is closed.
type cacheEntry struct {
	key    string
	ready  chan struct{}
	engine *contract.Engine
	err    error
}

// engineCache is a mutex-guarded LRU with single-flight compilation.
// The mutex guards only the map/list/counters — never a compile.
type engineCache struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List               // front = most recent
	entries   map[string]*list.Element // key -> *cacheEntry element
	hits      uint64
	misses    uint64
	evictions uint64
	compiles  uint64
	building  int // compiles currently in flight
}

func newEngineCache(capacity int) *engineCache {
	if capacity < 1 {
		capacity = 1
	}
	return &engineCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// get returns the engine for key, compiling it with build on a miss.
// build runs at most once per key while the key stays resident; callers
// that race on the same missing key share one compile, and callers for
// other keys never wait on it.
func (c *engineCache) get(key string, build func() (*contract.Engine, error)) (*contract.Engine, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.hits++
		c.order.MoveToFront(el)
		c.mu.Unlock()
		// Resident but possibly still compiling: wait without holding
		// the lock so unrelated lookups proceed.
		<-ent.ready
		return ent.engine, ent.err
	}
	c.misses++
	c.compiles++
	c.building++
	ent := &cacheEntry{key: key, ready: make(chan struct{})}
	el := c.order.PushFront(ent)
	c.entries[key] = el
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.mu.Unlock()

	ent.engine, ent.err = build()
	close(ent.ready)

	c.mu.Lock()
	c.building--
	if ent.err != nil {
		// Failed compiles are not cached: the error goes back to every
		// waiter and the (cheap) validation re-runs on retry. Remove
		// only our own entry — the key may have been evicted and
		// re-inserted by an unrelated compile meanwhile.
		if el2, ok := c.entries[key]; ok && el2 == el {
			c.order.Remove(el2)
			delete(c.entries, key)
		}
	}
	c.mu.Unlock()
	return ent.engine, ent.err
}

// cacheStats is a consistent snapshot of the cache counters.
type cacheStats struct {
	size, capacity                    int
	hits, misses, evictions, compiles uint64
	building                          int
}

func (c *engineCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		size:      c.order.Len(),
		capacity:  c.capacity,
		hits:      c.hits,
		misses:    c.misses,
		evictions: c.evictions,
		compiles:  c.compiles,
		building:  c.building,
	}
}
