#!/usr/bin/env bash
# Fleet loadtest: boots scserved backends (plus scroute for sharded
# shapes), drives a seeded open-loop load with scload, and asserts
# shed-not-collapse — at saturation the fleet answers 429 (rate rising
# with offered load), admitted p99 stays bounded, and nothing returns
# a 5xx. For the sharded shape it additionally asserts the point of the
# router: every backend's engine-cache hit rate beats the unsharded
# single-process baseline, because consistent hashing keeps each shard
# of the spec universe on one backend's LRU.
#
# Usage:
#   scripts/loadtest.sh accept   # 1-backend baseline vs 3-backend fleet,
#                                # writes ACCEPTANCE_loadtest.md
#   scripts/loadtest.sh smoke    # 2-backend fleet, short run for CI,
#                                # writes loadtest-summary.md
#
# Backends run deliberately tiny (-max-concurrent 1 -queue 2 -cache 16)
# so saturation and cache pressure are reachable at CI scale: the spec
# universe (96 specs) is 6x one engine cache but under 2x a 3-way
# shard of it.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-accept}"
BIN=bin
DUR="${LOADTEST_DURATION:-15s}"
SPECS=96
CACHE=16
BASE=19100
ROUTER_PORT=19110
TMP="$(mktemp -d)"

go build -o $BIN/scserved ./cmd/scserved
go build -o $BIN/scroute ./cmd/scroute
go build -o $BIN/scload ./cmd/scload

PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

wait_ready() { # base-url
    for _ in $(seq 1 100); do
        if curl -fsS "$1/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "loadtest: $1 never became ready" >&2
    return 1
}

start_backend() { # port
    $BIN/scserved -addr "127.0.0.1:$1" -max-concurrent 1 -queue 2 \
        -cache $CACHE -timeout 20s -log-format off &
    PIDS+=($!)
    wait_ready "http://127.0.0.1:$1"
}

start_router() { # backend-urls
    $BIN/scroute -addr "127.0.0.1:$ROUTER_PORT" -backends "$1" \
        -poll-interval 250ms -log-format off &
    PIDS+=($!)
    wait_ready "http://127.0.0.1:$ROUTER_PORT"
}

stop_all() {
    for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    PIDS=()
}

hit_rate() { # base-url -> "0.427 (hits/total)"
    curl -fsS "$1/metrics" | awk '
        /^scserved_engine_cache_hits_total /   {h=$2}
        /^scserved_engine_cache_misses_total / {m=$2}
        END { if (h+m == 0) { print "0.000 (0/0)" }
              else { printf "%.3f (%d/%d)\n", h/(h+m), h, h+m } }'
}

# run_load <label> <target> <rps> <seed> [extra scload flags...]
# Summary lands in $TMP/<label>.txt; assertions make scload exit 1.
run_load() {
    local label=$1 target=$2 rps=$3 seed=$4
    shift 4
    echo "== $label: $rps rps for $DUR against $target"
    $BIN/scload -target "$target" -rps "$rps" -duration "$DUR" -seed "$seed" \
        -specs $SPECS -profiles year-in-life "$@" | tee "$TMP/$label.txt"
}

shed_pct() { sed -n 's/.*shed: \([0-9.]*\)%.*/\1/p' "$TMP/$1.txt"; }
summary_row() { # label shape phase rps
    awk -v shape="$2" -v phase="$3" -v rps="$4" '
        /^sent:/ {
            sent=$2; okc=$4; shed=$6; s5=$10
            sub(/%$/, "", $(NF))
            pct=$(NF)
        }
        /^admitted p99/ { p99=$(NF-1) }
        END { printf "| %s | %s | %s | %s | %s | %s | %s%% | %s |\n",
              shape, phase, rps, sent, okc, shed, pct, p99 }
    ' "$TMP/$1.txt"
}

# Overload workload: batch-only year-in-life bills, the heaviest shape
# the API serves, so demand exceeds fleet capacity on any hardware.
OVERLOAD_ARGS=(-batch-fraction 1 -batch-items 64
    -assert-zero-5xx -assert-min-shed 0.05 -assert-p99 10s)
NOMINAL_ARGS=(-batch-fraction 0 -assert-zero-5xx -assert-p99 10s)

if [ "$MODE" = smoke ]; then
    OUT=loadtest-summary.md
    DUR="${LOADTEST_DURATION:-10s}"
    start_backend $((BASE + 1))
    start_backend $((BASE + 2))
    start_router "http://127.0.0.1:$((BASE + 1)),http://127.0.0.1:$((BASE + 2))"
    run_load smoke "http://127.0.0.1:$ROUTER_PORT" 600 2 "${OVERLOAD_ARGS[@]}"
    {
        echo "# scload smoke (2 backends behind scroute, $DUR)"
        echo
        echo '```'
        cat "$TMP/smoke.txt"
        echo '```'
    } >"$OUT"
    echo "loadtest smoke: zero 5xx, shed $(shed_pct smoke)% — wrote $OUT"
    exit 0
fi

OUT="${LOADTEST_OUT:-ACCEPTANCE_loadtest.md}"

# ---- Shape A: one unsharded backend, hit directly. -------------------
start_backend $((BASE + 1))
BASE_URL="http://127.0.0.1:$((BASE + 1))"
run_load base-nominal "$BASE_URL" 30 1 "${NOMINAL_ARGS[@]}"
# Scrape cache hit rate after the single-bill phase, where one request
# is one engine-cache lookup. (The batch overload phase would swamp the
# signal: each admitted 64-load batch is 1 miss + 63 same-spec hits,
# pushing every shape toward ~98% regardless of sharding.)
BASE_HIT=$(hit_rate "$BASE_URL")
run_load base-overload "$BASE_URL" 1200 2 "${OVERLOAD_ARGS[@]}"
stop_all

# ---- Shape B: three backends behind scroute. -------------------------
start_backend $((BASE + 1))
start_backend $((BASE + 2))
start_backend $((BASE + 3))
start_router "http://127.0.0.1:$((BASE + 1)),http://127.0.0.1:$((BASE + 2)),http://127.0.0.1:$((BASE + 3))"
FRONT="http://127.0.0.1:$ROUTER_PORT"
run_load fleet-nominal "$FRONT" 90 1 "${NOMINAL_ARGS[@]}"
HIT1=$(hit_rate "http://127.0.0.1:$((BASE + 1))")
HIT2=$(hit_rate "http://127.0.0.1:$((BASE + 2))")
HIT3=$(hit_rate "http://127.0.0.1:$((BASE + 3))")
run_load fleet-overload "$FRONT" 1200 2 "${OVERLOAD_ARGS[@]}"
ROUTER_5XX=$(curl -fsS "$FRONT/metrics" | awk '$1 ~ /^scroute_requests_total\{.*code="5/ {n+=$2} END{print n+0}')
stop_all

# ---- Assertions beyond scload's own. ---------------------------------
fail=0
if [ "$ROUTER_5XX" != 0 ]; then
    echo "loadtest: FAIL: router relayed $ROUTER_5XX 5xx responses" >&2
    fail=1
fi
# 429 rate must rise with offered load in both shapes.
for shape in base fleet; do
    if ! awk -v lo="$(shed_pct $shape-nominal)" -v hi="$(shed_pct $shape-overload)" \
        'BEGIN{exit !(hi > lo)}'; then
        echo "loadtest: FAIL: $shape shed did not rise under overload" >&2
        fail=1
    fi
done
# Every sharded backend's cache hit rate must beat the unsharded baseline.
for hr in "$HIT1" "$HIT2" "$HIT3"; do
    if ! awk -v a="${hr%% *}" -v b="${BASE_HIT%% *}" 'BEGIN{exit !(a > b)}'; then
        echo "loadtest: FAIL: sharded hit rate $hr not above baseline $BASE_HIT" >&2
        fail=1
    fi
done

{
    echo "# Sharded-fleet loadtest acceptance"
    echo
    echo "Seeded open-loop load (scload, year-in-life bills, $SPECS distinct"
    echo "specs, engine cache $CACHE per backend) against one unsharded scserved"
    echo "versus three scserved behind scroute. Overload phase is batch-only"
    echo "(64 loads per request) at 1200 rps, far past fleet capacity."
    echo
    echo "| shape | phase | rps | sent | 2xx | 429 | shed | admitted p99 ms |"
    echo "|---|---|---|---|---|---|---|---|"
    summary_row base-nominal "1 backend" nominal 30
    summary_row base-overload "1 backend" overload 1200
    summary_row fleet-nominal "3 backends + scroute" nominal 90
    summary_row fleet-overload "3 backends + scroute" overload 1200
    echo
    echo "Engine-cache hit rate after the single-bill nominal phase, where"
    echo "one request is one cache lookup (hits/lookups):"
    echo
    echo "| process | hit rate |"
    echo "|---|---|"
    echo "| unsharded baseline | $BASE_HIT |"
    echo "| shard backend 1 | $HIT1 |"
    echo "| shard backend 2 | $HIT2 |"
    echo "| shard backend 3 | $HIT3 |"
    echo
    echo "Router 5xx relayed: $ROUTER_5XX."
    echo
    if [ "$fail" = 0 ]; then
        echo "Verdict: PASS — zero 5xx end to end, 429 rate rises with offered"
        echo "load in both shapes, admitted p99 bounded, and every sharded"
        echo "backend's cache hit rate beats the unsharded baseline."
    else
        echo "Verdict: FAIL — see run log."
    fi
} >"$OUT"

echo
echo "loadtest: wrote $OUT"
exit $fail
