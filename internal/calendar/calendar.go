// Package calendar provides the wall-clock machinery behind electricity
// contracts: billing periods (calendar months by convention), time-of-use
// windows (season × day-kind × hour-band rules, as in "day/night pricing"
// and "seasonal pricing" from the paper's typology), and holiday calendars
// that shift weekday rules to off-peak.
package calendar

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Season is a coarse part of the year used by seasonal tariffs.
type Season int

// Seasons. Utilities usually distinguish only summer/winter, but shoulder
// seasons appear in some European contracts.
const (
	AllYear Season = iota
	Summer
	Winter
	Shoulder
)

var seasonNames = map[Season]string{
	AllYear:  "all-year",
	Summer:   "summer",
	Winter:   "winter",
	Shoulder: "shoulder",
}

// String returns the season name.
func (s Season) String() string {
	if n, ok := seasonNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Season(%d)", int(s))
}

// SeasonOf maps a month to a season under the conventional northern-
// hemisphere utility definition: June–September summer, November–February
// winter, the rest shoulder.
func SeasonOf(t time.Time) Season {
	return SeasonOfMonth(t.Month())
}

// SeasonOfMonth is SeasonOf on the calendar month alone — the season is
// a function of the month only, which is what lets TOU schedules be
// compiled into month-indexed lookup tables.
func SeasonOfMonth(m time.Month) Season {
	switch m {
	case time.June, time.July, time.August, time.September:
		return Summer
	case time.November, time.December, time.January, time.February:
		return Winter
	default:
		return Shoulder
	}
}

// DayKind classifies a day for TOU purposes.
type DayKind int

// Day kinds.
const (
	AnyDay DayKind = iota
	Weekday
	Weekend
	Holiday
)

var dayKindNames = map[DayKind]string{
	AnyDay:  "any-day",
	Weekday: "weekday",
	Weekend: "weekend",
	Holiday: "holiday",
}

// String returns the day-kind name.
func (d DayKind) String() string {
	if n, ok := dayKindNames[d]; ok {
		return n
	}
	return fmt.Sprintf("DayKind(%d)", int(d))
}

// HolidayCalendar is a set of dates (at midnight in some location) that
// count as holidays; holidays are treated as off-peak by TOU tariffs.
type HolidayCalendar struct {
	days map[string]bool
}

// NewHolidayCalendar builds a calendar from a list of dates. Only the
// year, month and day of each time are significant.
func NewHolidayCalendar(dates ...time.Time) *HolidayCalendar {
	c := &HolidayCalendar{days: make(map[string]bool, len(dates))}
	for _, d := range dates {
		c.days[dateKey(d)] = true
	}
	return c
}

func dateKey(t time.Time) string { return t.Format("2006-01-02") }

// IsHoliday reports whether t falls on a holiday.
func (c *HolidayCalendar) IsHoliday(t time.Time) bool {
	if c == nil {
		return false
	}
	return c.days[dateKey(t)]
}

// Add marks an additional date as a holiday.
func (c *HolidayCalendar) Add(d time.Time) { c.days[dateKey(d)] = true }

// Len returns the number of holidays.
func (c *HolidayCalendar) Len() int {
	if c == nil {
		return 0
	}
	return len(c.days)
}

// KindOf classifies instant t given an optional holiday calendar
// (holidays dominate, then weekend, then weekday).
func KindOf(t time.Time, holidays *HolidayCalendar) DayKind {
	if holidays.IsHoliday(t) {
		return Holiday
	}
	switch t.Weekday() {
	case time.Saturday, time.Sunday:
		return Weekend
	default:
		return Weekday
	}
}

// HourBand is a half-open daily hour range [From, To). A band with
// From ≥ To wraps past midnight (e.g. 22→6 is the classic night band).
type HourBand struct {
	From int // inclusive hour 0..23
	To   int // exclusive hour 0..24; if ≤ From the band wraps midnight
}

// Contains reports whether the hour of t lies in the band.
func (b HourBand) Contains(t time.Time) bool {
	return b.ContainsHour(t.Hour())
}

// ContainsHour reports whether wall-clock hour h (0..23) lies in the band.
func (b HourBand) ContainsHour(h int) bool {
	if b.From < b.To {
		return h >= b.From && h < b.To
	}
	// Wrapping band (or empty when From==To which we treat as full day).
	if b.From == b.To {
		return true
	}
	return h >= b.From || h < b.To
}

// Validate checks the band's hour fields are in range.
func (b HourBand) Validate() error {
	if b.From < 0 || b.From > 23 || b.To < 0 || b.To > 24 {
		return fmt.Errorf("calendar: hour band %d-%d out of range", b.From, b.To)
	}
	return nil
}

// String formats the band as "HH-HH".
func (b HourBand) String() string { return fmt.Sprintf("%02d-%02d", b.From, b.To) }

// Rule matches instants by season, day kind and hour band. Zero values
// (AllYear, AnyDay, HourBand{0,0}) match everything, so the zero Rule is
// a catch-all.
type Rule struct {
	Season  Season
	DayKind DayKind
	Hours   HourBand
}

// Matches reports whether the rule applies at instant t.
func (r Rule) Matches(t time.Time, holidays *HolidayCalendar) bool {
	return r.MatchesSlot(t.Month(), KindOf(t, holidays), t.Hour())
}

// MatchesSlot reports whether the rule applies at any instant whose
// calendar month is m, whose day classifies as k (per KindOf), and whose
// wall-clock hour is h. Matches is exactly MatchesSlot on the instant's
// (month, day-kind, hour) triple — rule matching depends on nothing
// else, which is what lets schedules compile to slot-indexed tables.
func (r Rule) MatchesSlot(m time.Month, k DayKind, h int) bool {
	if r.Season != AllYear && SeasonOfMonth(m) != r.Season {
		return false
	}
	if r.DayKind != AnyDay {
		if r.DayKind == Weekday && k != Weekday {
			return false
		}
		if r.DayKind == Weekend && k != Weekend && k != Holiday {
			// Holidays count as weekend/off-peak days.
			return false
		}
		if r.DayKind == Holiday && k != Holiday {
			return false
		}
	}
	return r.Hours.ContainsHour(h)
}

// String describes the rule.
func (r Rule) String() string {
	return fmt.Sprintf("%s/%s/%s", r.Season, r.DayKind, r.Hours)
}

// BillingPeriod is a half-open interval [Start, End) over which a bill is
// computed — conventionally a calendar month.
type BillingPeriod struct {
	Start time.Time
	End   time.Time
}

// Contains reports whether t falls inside the period.
func (p BillingPeriod) Contains(t time.Time) bool {
	return !t.Before(p.Start) && t.Before(p.End)
}

// Duration returns the period length.
func (p BillingPeriod) Duration() time.Duration { return p.End.Sub(p.Start) }

// Validate checks End is after Start.
func (p BillingPeriod) Validate() error {
	if !p.End.After(p.Start) {
		return errors.New("calendar: billing period end must be after start")
	}
	return nil
}

// String formats the period.
func (p BillingPeriod) String() string {
	return fmt.Sprintf("[%s, %s)", p.Start.Format("2006-01-02"), p.End.Format("2006-01-02"))
}

// MonthOf returns the calendar-month billing period containing t, in t's
// location.
func MonthOf(t time.Time) BillingPeriod {
	y, m, _ := t.Date()
	start := time.Date(y, m, 1, 0, 0, 0, 0, t.Location())
	return BillingPeriod{Start: start, End: start.AddDate(0, 1, 0)}
}

// MonthsBetween returns the consecutive calendar-month periods covering
// [from, to). The first and last periods are clipped to the range.
func MonthsBetween(from, to time.Time) []BillingPeriod {
	if !to.After(from) {
		return nil
	}
	var out []BillingPeriod
	cur := from
	for cur.Before(to) {
		p := MonthOf(cur)
		start := p.Start
		if start.Before(from) {
			start = from
		}
		end := p.End
		if end.After(to) {
			end = to
		}
		out = append(out, BillingPeriod{Start: start, End: end})
		cur = p.End
	}
	return out
}

// YearOf returns the calendar-year billing period containing t. Annual
// ratchet demand charges reference this.
func YearOf(t time.Time) BillingPeriod {
	start := time.Date(t.Year(), time.January, 1, 0, 0, 0, 0, t.Location())
	return BillingPeriod{Start: start, End: start.AddDate(1, 0, 0)}
}

// Schedule maps instants to named bands via an ordered rule list: the
// first matching rule's label wins, with a default label when none match.
// This is the general form of a TOU tariff's time structure.
type Schedule struct {
	entries  []ScheduleEntry
	fallback string
	holidays *HolidayCalendar
}

// ScheduleEntry pairs a Rule with the label it assigns.
type ScheduleEntry struct {
	Rule  Rule
	Label string
}

// NewSchedule builds a Schedule. The fallback label applies when no rule
// matches; holidays may be nil.
func NewSchedule(fallback string, holidays *HolidayCalendar, entries ...ScheduleEntry) (*Schedule, error) {
	if fallback == "" {
		return nil, errors.New("calendar: schedule needs a fallback label")
	}
	for _, e := range entries {
		if e.Label == "" {
			return nil, errors.New("calendar: schedule entry needs a label")
		}
		if err := e.Rule.Hours.Validate(); err != nil {
			return nil, err
		}
	}
	return &Schedule{entries: entries, fallback: fallback, holidays: holidays}, nil
}

// MustNewSchedule is NewSchedule that panics on error.
func MustNewSchedule(fallback string, holidays *HolidayCalendar, entries ...ScheduleEntry) *Schedule {
	s, err := NewSchedule(fallback, holidays, entries...)
	if err != nil {
		panic(err)
	}
	return s
}

// LabelAt returns the label in effect at instant t.
func (s *Schedule) LabelAt(t time.Time) string {
	return s.LabelForSlot(t.Month(), KindOf(t, s.holidays), t.Hour())
}

// LabelForSlot returns the label for the (month, day-kind, hour) slot.
// LabelAt(t) is exactly LabelForSlot(t.Month(), DayKindAt(t), t.Hour()):
// a schedule's label is a pure function of that triple, so callers can
// precompute a 12×kind×24 price table once per compiled tariff.
func (s *Schedule) LabelForSlot(m time.Month, k DayKind, h int) string {
	for _, e := range s.entries {
		if e.Rule.MatchesSlot(m, k, h) {
			return e.Label
		}
	}
	return s.fallback
}

// DayKindAt classifies instant t's day under the schedule's holiday
// calendar — the day-kind argument LabelForSlot expects.
func (s *Schedule) DayKindAt(t time.Time) DayKind {
	return KindOf(t, s.holidays)
}

// Labels returns all distinct labels the schedule can produce, sorted,
// always including the fallback.
func (s *Schedule) Labels() []string {
	set := map[string]bool{s.fallback: true}
	for _, e := range s.entries {
		set[e.Label] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Fallback returns the schedule's default label.
func (s *Schedule) Fallback() string { return s.fallback }

// DayNight returns the classic two-band day/night schedule mentioned in
// the paper ("day/night pricing"): label "peak" on weekdays dayFrom–dayTo,
// "offpeak" otherwise.
func DayNight(dayFrom, dayTo int, holidays *HolidayCalendar) *Schedule {
	return MustNewSchedule("offpeak", holidays, ScheduleEntry{
		Rule:  Rule{DayKind: Weekday, Hours: HourBand{From: dayFrom, To: dayTo}},
		Label: "peak",
	})
}

// SeasonalDayNight returns a three-band schedule with a distinct summer
// peak: "summer-peak" on summer weekdays dayFrom–dayTo, "peak" on other
// weekdays in the same hours, "offpeak" otherwise.
func SeasonalDayNight(dayFrom, dayTo int, holidays *HolidayCalendar) *Schedule {
	return MustNewSchedule("offpeak", holidays,
		ScheduleEntry{
			Rule:  Rule{Season: Summer, DayKind: Weekday, Hours: HourBand{From: dayFrom, To: dayTo}},
			Label: "summer-peak",
		},
		ScheduleEntry{
			Rule:  Rule{DayKind: Weekday, Hours: HourBand{From: dayFrom, To: dayTo}},
			Label: "peak",
		},
	)
}
