package contract

// Batch billing: N (engine, load) pairs evaluated as one unit of work.
// The fan-out mirrors the billing engine's month pool — a bounded
// worker pool fed by an index channel, results in input order, errors
// isolated per item so one bad contract cannot poison the batch. The
// serve layer and scbill -batch both sit on top of this; each item's
// bill is exactly what Bill/BillMonths would have produced for that
// pair, so batching is a pure amortization (parse and compile once,
// evaluate N times), never an arithmetic change.

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/timeseries"
)

// BatchItem is one unit of a batch: a compiled engine and the load it
// bills. Engines and loads may repeat across items (one profile × N
// contracts, or N profiles × one contract).
type BatchItem struct {
	Engine *Engine
	Load   *timeseries.PowerSeries
}

// BatchOutcome is one item's result. Exactly one of Bill (single
// period), Months (monthly batch) or Err is meaningful.
type BatchOutcome struct {
	Bill   *Bill
	Months []*Bill
	Err    error
}

// BatchOptions tunes BillBatch.
type BatchOptions struct {
	// Monthly selects per-calendar-month bills instead of one bill per
	// item.
	Monthly bool
	// Workers caps the batch fan-out pool; <= 0 selects GOMAXPROCS.
	Workers int
	// MonthWorkers is the per-item month pool size used when Monthly is
	// set; <= 0 lets the engine pick. Batches that already fan out
	// across items usually want 1 here to avoid nested parallelism.
	MonthWorkers int
}

// BillBatch evaluates every item and returns the outcomes in item
// order. A cancelled context stops work: items not yet evaluated
// report the context's error. Item failures do not abort the batch.
func BillBatch(ctx context.Context, items []BatchItem, in BillingInput, opts BatchOptions) []BatchOutcome {
	out := make([]BatchOutcome, len(items))
	if len(items) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}

	evalOne := func(i int) {
		it := items[i]
		if it.Engine == nil {
			out[i].Err = errors.New("contract: batch item has no engine")
			return
		}
		if opts.Monthly {
			out[i].Months, out[i].Err = it.Engine.BillMonthsCtx(ctx, it.Load, in, opts.MonthWorkers)
		} else {
			out[i].Bill, out[i].Err = it.Engine.BillCtx(ctx, it.Load, in)
		}
	}

	if workers <= 1 {
		for i := range items {
			if err := ctx.Err(); err != nil {
				out[i].Err = err
				continue
			}
			evalOne(i)
		}
		return out
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					out[i].Err = err
					continue
				}
				evalOne(i)
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
