package serve

// Observability-layer tests: status-code accounting (including the
// implicit-200 path), request IDs, structured/slow request logging,
// stage histograms on /metrics, and the occupancy-based Retry-After.

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}

// TestImplicitStatusRecorded: a handler that writes a body without an
// explicit WriteHeader must land in the code="200" series, and a late
// WriteHeader after the first Write (a no-op on the wire) must not
// reclassify the request.
func TestImplicitStatusRecorded(t *testing.T) {
	s := NewServer(Config{})

	implicit := s.instrument("/implicit", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok")) // no WriteHeader: implicit 200
	}))
	implicit.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/implicit", nil))

	late := s.instrument("/late", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok"))
		w.WriteHeader(http.StatusInternalServerError) // ignored by net/http
	}))
	late.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/late", nil))

	explicit := s.instrument("/explicit", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	explicit.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/explicit", nil))

	s.metrics.mu.Lock()
	defer s.metrics.mu.Unlock()
	for key, want := range map[string]uint64{
		"/implicit|200": 1,
		"/late|200":     1,
		"/explicit|418": 1,
	} {
		if got := s.metrics.requests[key]; got != want {
			t.Errorf("requests[%q] = %d, want %d (have %v)", key, got, want, s.metrics.requests)
		}
	}
	if got := s.metrics.requests["/late|500"]; got != 0 {
		t.Errorf("late WriteHeader after Write miscounted as 500 (%d times)", got)
	}
}

// TestHealthzCountsAs200 pins the end-to-end series: GET /healthz must
// appear under code="200" on /metrics.
func TestHealthzCountsAs200(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if want := `scserved_requests_total{path="/healthz",code="200"} 1`; !strings.Contains(scrapeMetrics(t, ts), want) {
		t.Errorf("metrics missing %q", want)
	}
}

// TestRequestIDIssuedAndEchoed: every response carries X-Request-ID —
// generated when absent, echoed when the client supplies one.
func TestRequestIDIssuedAndEchoed(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); len(id) != 16 {
		t.Errorf("generated request ID %q, want 16 hex digits", id)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-chosen-1")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id != "client-chosen-1" {
		t.Errorf("client request ID not echoed: %q", id)
	}
}

// TestRequestLoggingAndSlowLog: requests log one structured line with
// the request ID; past the slow threshold the line is a warning with
// the threshold attached.
func TestRequestLoggingAndSlowLog(t *testing.T) {
	var buf bytes.Buffer
	s := NewServer(Config{
		Logger:      slog.New(slog.NewJSONHandler(&buf, nil)),
		SlowRequest: time.Nanosecond, // everything is slow
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "slowtest")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	line := buf.String()
	for _, want := range []string{`"slow request"`, `"request_id":"slowtest"`, `"path":"/healthz"`, `"code":200`, `"level":"WARN"`} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log missing %s:\n%s", want, line)
		}
	}

	// Under the threshold: info-level "request".
	buf.Reset()
	s2 := NewServer(Config{
		Logger:      slog.New(slog.NewJSONHandler(&buf, nil)),
		SlowRequest: time.Minute,
	})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err = ts2.Client().Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if line := buf.String(); !strings.Contains(line, `"msg":"request"`) || strings.Contains(line, "slow") {
		t.Errorf("fast request must log at info without the slow marker:\n%s", line)
	}
}

// TestStageHistogramsExposed: after a bill request, /metrics carries
// per-stage histograms — the HTTP pipeline stages and the billing
// engine's per-family spans — with full _bucket/_sum/_count exposition.
func TestStageHistogramsExposed(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postBill(t, ts, "/v1/bill", BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bill: %d %s", resp.StatusCode, body)
	}

	text := scrapeMetrics(t, ts)
	for _, want := range []string{
		`scserved_stage_seconds_bucket{stage="admission_wait",le="+Inf"} 1`,
		`scserved_stage_seconds_bucket{stage="cache",le="+Inf"} 1`,
		`scserved_stage_seconds_bucket{stage="compile",le="+Inf"} 1`,
		`scserved_stage_seconds_bucket{stage="evaluate",le="+Inf"} 1`,
		`scserved_stage_seconds_bucket{stage="encode",le="+Inf"} 1`,
		`scserved_stage_seconds_bucket{stage="billing.period",le="+Inf"} 1`,
		`scserved_stage_seconds_bucket{stage="billing.tariff",le="+Inf"} 1`,
		`scserved_stage_seconds_bucket{stage="billing.demand",le="+Inf"} 1`,
		`scserved_stage_seconds_bucket{stage="billing.powerband",le="+Inf"} 1`,
		`scserved_stage_seconds_sum{stage="evaluate"}`,
		`scserved_stage_seconds_count{stage="evaluate"} 1`,
		`scserved_request_seconds_bucket{le="+Inf"}`,
		"scserved_request_seconds_sum",
		"scserved_request_seconds_count",
		"scserved_engine_cache_capacity 128",
		"scserved_engine_compiles_inflight 0",
		"scserved_queue_capacity 64",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// A second (cached) request must not record a second compile span.
	if resp, body := postBill(t, ts, "/v1/bill", BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("second bill: %d %s", resp.StatusCode, body)
	}
	text = scrapeMetrics(t, ts)
	for _, want := range []string{
		`scserved_stage_seconds_count{stage="compile"} 1`,
		`scserved_stage_seconds_count{stage="cache"} 2`,
		`scserved_stage_seconds_count{stage="evaluate"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("after cached request, metrics missing %q", want)
		}
	}
}

// TestRetryAfterTracksOccupancy: the 429 hint must scale with observed
// backlog and service time instead of parroting the request timeout.
func TestRetryAfterTracksOccupancy(t *testing.T) {
	s := NewServer(Config{MaxConcurrent: 2, QueueDepth: 4, RequestTimeout: 30 * time.Second})

	// Near-empty: no backlog, no history — floor of 1 s, not the 30 s
	// static timeout.
	if got := s.retryAfterHint(); got != "1" {
		t.Errorf("near-empty hint = %s, want 1", got)
	}

	// Saturated: 2 active + 4 queued with ~2 s observed service time
	// → ceil(6 × 2 / 2) = 6 s.
	for i := 0; i < 2; i++ {
		if err := s.limiter.acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		defer s.limiter.release()
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.limiter.acquire(ctx) // parks in the queue until cancel
		}()
	}
	defer wg.Wait()
	defer cancel()
	waitUntil(t, "the queue to fill", func() bool { return s.limiter.waiting() == 4 })

	for i := 0; i < 4; i++ {
		s.metrics.observeGated(classSingle, 2*time.Second)
	}
	if got := s.retryAfterHint(); got != "6" {
		t.Errorf("saturated hint = %s, want 6", got)
	}
}
