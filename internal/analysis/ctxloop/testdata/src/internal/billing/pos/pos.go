// Package pos holds ctxloop true positives: functions that accept a
// context and then iterate PowerSeries samples without ever polling it.
package pos

import (
	"context"

	"internal/timeseries"
)

func SumEnergy(ctx context.Context, load *timeseries.PowerSeries) float64 {
	var kwh float64
	for i := 0; i < load.Len(); i++ { // want "loop reads PowerSeries samples but never polls ctx"
		kwh += load.At(i)
	}
	return kwh
}

func Peak(ctx context.Context, load *timeseries.PowerSeries) (peak float64) {
	_ = ctx.Err()                     // a pre-loop check is not a poll: the loop itself never looks again
	for i := 0; i < load.Len(); i++ { // want "loop reads PowerSeries samples but never polls ctx"
		if p := load.At(i); p > peak {
			peak = p
		}
	}
	return peak
}

// The ctx can hide among other parameters; position doesn't matter.
func Windowed(load *timeseries.PowerSeries, ctx context.Context, stride int) float64 {
	var acc float64
	for i := 0; i < load.Len(); i += stride { // want "loop reads PowerSeries samples but never polls ctx"
		acc += load.At(i) + float64(load.TimeAt(i).Unix())
	}
	return acc
}

// A columnar block scan reads the same sample stream without ever
// calling At: touching MonthBlock.Samples carries the same obligation.
func BlockScan(ctx context.Context, load *timeseries.PowerSeries) float64 {
	var kwh float64
	blocks := load.Blocks()
	for _, blk := range blocks { // want "loop reads PowerSeries samples but never polls ctx"
		for _, p := range blk.Samples {
			kwh += p
		}
	}
	return kwh
}

// Fetching the block view inside the loop counts too, even before any
// per-sample read is visible to the analyzer.
func BlockFetch(ctx context.Context, loads []*timeseries.PowerSeries) int {
	n := 0
	for _, load := range loads { // want "loop reads PowerSeries samples but never polls ctx"
		n += len(load.AppendBlocks(nil))
	}
	return n
}
