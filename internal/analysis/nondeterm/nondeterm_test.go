package nondeterm_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nondeterm"
)

func TestNonDeterm(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nondeterm.Analyzer,
		"internal/billing/pos",
		"internal/billing/neg",
		"outofscope/clock",
	)
}
