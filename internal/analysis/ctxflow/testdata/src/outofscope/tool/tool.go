// Out of scope: ctxflow only patrols the request-path packages, so a
// dropped ctx here must not diagnose.
package tool

import "context"

func Run(ctx context.Context) error {
	return work(context.Background())
}

func work(ctx context.Context) error { return ctx.Err() }
