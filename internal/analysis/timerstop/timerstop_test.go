package timerstop_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/timerstop"
)

func TestTimerStop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), timerstop.Analyzer,
		"internal/route/pos",
		"internal/route/neg",
		"outofscope/sched",
	)
}
