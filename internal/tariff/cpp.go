package tariff

// Critical-peak pricing (CPP) — the price-based DR program design the
// related-work taxonomy distinguishes from incentive-based programs. A
// CPP tariff wraps a base tariff; during declared critical events the
// price is replaced (or topped) by a very high critical rate. Utilities
// typically cap the number of events per season, which the type tracks.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// CriticalWindow is one declared critical-peak event.
type CriticalWindow struct {
	Start time.Time
	End   time.Time
}

// Covers reports whether t falls inside the window.
func (w CriticalWindow) Covers(t time.Time) bool {
	return !t.Before(w.Start) && t.Before(w.End)
}

// CPPTariff layers a critical rate over a base tariff during declared
// windows. It classifies as Dynamic: the windows are announced by
// real-time communication, which is exactly the typology's criterion.
type CPPTariff struct {
	base         Tariff
	criticalRate units.EnergyPrice
	windows      []CriticalWindow
	maxEvents    int
}

// NewCPP builds a CPP tariff over base. criticalRate must exceed the
// base tariff's price during every declared window (a CPP event that is
// cheaper than the base rate is a configuration error). maxEvents caps
// how many windows may be declared (0 = unlimited).
func NewCPP(base Tariff, criticalRate units.EnergyPrice, maxEvents int) (*CPPTariff, error) {
	if base == nil {
		return nil, errors.New("tariff: CPP requires a base tariff")
	}
	if criticalRate <= 0 {
		return nil, errors.New("tariff: CPP critical rate must be positive")
	}
	if maxEvents < 0 {
		return nil, errors.New("tariff: CPP max events must be non-negative")
	}
	return &CPPTariff{base: base, criticalRate: criticalRate, maxEvents: maxEvents}, nil
}

// Declare adds a critical window. It fails when the window is inverted,
// when the event budget is exhausted, or when the critical rate does not
// exceed the base price at the window start.
func (t *CPPTariff) Declare(w CriticalWindow) error {
	if !w.End.After(w.Start) {
		return errors.New("tariff: CPP window end must be after start")
	}
	if t.maxEvents > 0 && len(t.windows) >= t.maxEvents {
		return fmt.Errorf("tariff: CPP event budget (%d) exhausted", t.maxEvents)
	}
	if base := t.base.PriceAt(w.Start); t.criticalRate <= base {
		return fmt.Errorf("tariff: CPP critical rate %s does not exceed base %s", t.criticalRate, base)
	}
	t.windows = append(t.windows, w)
	return nil
}

// Windows returns the declared windows.
func (t *CPPTariff) Windows() []CriticalWindow {
	out := make([]CriticalWindow, len(t.windows))
	copy(out, t.windows)
	return out
}

// Kind returns Dynamic: CPP prices depend on real-time declarations.
func (t *CPPTariff) Kind() Kind { return Dynamic }

// PriceAt returns the critical rate inside a declared window, the base
// price otherwise.
func (t *CPPTariff) PriceAt(at time.Time) units.EnergyPrice {
	for _, w := range t.windows {
		if w.Covers(at) {
			return t.criticalRate
		}
	}
	return t.base.PriceAt(at)
}

// Cost prices the load with critical windows applied.
func (t *CPPTariff) Cost(load *timeseries.PowerSeries) units.Money {
	return costByPriceAt(t, load)
}

// CriticalCost returns only the premium paid because of critical
// windows: Cost minus what the base tariff alone would have charged.
func (t *CPPTariff) CriticalCost(load *timeseries.PowerSeries) units.Money {
	return t.Cost(load) - t.base.Cost(load)
}

// Describe returns a one-line description.
func (t *CPPTariff) Describe() string {
	return fmt.Sprintf("critical-peak pricing @ %s over [%s], %d events declared",
		t.criticalRate, t.base.Describe(), len(t.windows))
}

var _ Tariff = (*CPPTariff)(nil)
