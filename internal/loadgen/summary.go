package loadgen

// Human-readable run summary: a markdown table per endpoint plus run
// totals, the format `make loadtest` commits as its acceptance record.

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// ms renders a histogram quantile (stored in seconds) in milliseconds.
func ms(s obs.HistogramSnapshot, q float64) string {
	if s.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", s.Quantile(q)*1000)
}

// WriteSummary writes the run header and per-endpoint outcome table.
// The 5xx column splits by origin — router-originated errors ("the
// router gave up": no healthy backend, expired deadline) versus
// upstream failures a backend produced itself — so chaos assertions
// can target the layer that actually failed.
func (r *Report) WriteSummary(w io.Writer) {
	sent, ok, shed, serverErr, clientErr, transport := r.Totals()
	routerErr, upstreamErr := r.ErrOrigins()
	fmt.Fprintf(w, "target: %s  seed: %d  rps: %g  duration: %s  elapsed: %s\n",
		r.Target, r.Seed, r.RPS, r.Duration, r.Elapsed.Round(1e6))
	fmt.Fprintf(w, "sent: %d  2xx: %d  429: %d  4xx: %d  5xx: %d (router: %d, upstream: %d)  transport-errors: %d  skipped: %d  shed: %.1f%%\n\n",
		sent, ok, shed, clientErr, serverErr, routerErr, upstreamErr, transport, r.Skipped, 100*r.ShedFraction())

	fmt.Fprintln(w, "| endpoint | sent | 2xx | 429 | 4xx | 5xx router | 5xx upstream | net err | p50 ms | p90 ms | p99 ms |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|---|---|")
	eps := r.Endpoints()
	names := make([]string, 0, len(eps))
	for name := range eps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := eps[name]
		adm := e.Admitted()
		fmt.Fprintf(w, "| %s | %d | %d | %d | %d | %d | %d | %d | %s | %s | %s |\n",
			name, e.Sent, e.OK, e.Shed, e.ClientErr, e.RouterErr, e.UpstreamErr, e.Transport,
			ms(adm, 0.50), ms(adm, 0.90), ms(adm, 0.99))
	}
	fmt.Fprintf(w, "\nadmitted p99 across endpoints: %.1f ms\n", r.AdmittedP99()*1000)
}
