package serve

// Hand-rolled metrics in Prometheus text exposition format — request
// counts by path and status, a request-latency histogram, engine-cache
// counters, the in-flight/queued gauges and shed count. No client
// library: the format is lines of `name{labels} value`, which fifty
// lines of code produce exactly.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds. The hot
// path is a ~3.4 ms year-bill, so the buckets resolve sub-millisecond
// cache hits through multi-second monthly sweeps.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type metrics struct {
	mu       sync.Mutex
	requests map[string]uint64 // "path|code" -> count
	buckets  []uint64          // len(latencyBuckets)+1, last is +Inf
	sum      float64
	count    uint64

	shed atomic.Uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]uint64),
		buckets:  make([]uint64, len(latencyBuckets)+1),
	}
}

func (m *metrics) observe(path string, code int, elapsed time.Duration) {
	secs := elapsed.Seconds()
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s|%d", path, code)]++
	i := sort.SearchFloat64s(latencyBuckets, secs)
	m.buckets[i]++
	m.sum += secs
	m.count++
	m.mu.Unlock()
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency
// observation under the given path label.
func (s *Server) instrument(path string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(rec, r)
		s.metrics.observe(path, rec.code, time.Since(start))
	})
}

// render writes the exposition. Gauges are sampled at scrape time.
func (m *metrics) render(w *strings.Builder, s *Server) {
	m.mu.Lock()
	requests := make(map[string]uint64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	buckets := append([]uint64(nil), m.buckets...)
	sum, count := m.sum, m.count
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP scserved_requests_total Requests served, by path and status code.\n")
	fmt.Fprintf(w, "# TYPE scserved_requests_total counter\n")
	keys := make([]string, 0, len(requests))
	for k := range requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		path, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "scserved_requests_total{path=%q,code=%q} %d\n", path, code, requests[k])
	}

	fmt.Fprintf(w, "# HELP scserved_request_seconds Request latency histogram.\n")
	fmt.Fprintf(w, "# TYPE scserved_request_seconds histogram\n")
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += buckets[i]
		fmt.Fprintf(w, "scserved_request_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	cum += buckets[len(latencyBuckets)]
	fmt.Fprintf(w, "scserved_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "scserved_request_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "scserved_request_seconds_count %d\n", count)

	cs := s.cache.stats()
	fmt.Fprintf(w, "# HELP scserved_engine_cache_hits_total Engine cache hits.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_cache_hits_total counter\n")
	fmt.Fprintf(w, "scserved_engine_cache_hits_total %d\n", cs.hits)
	fmt.Fprintf(w, "# HELP scserved_engine_cache_misses_total Engine cache misses.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_cache_misses_total counter\n")
	fmt.Fprintf(w, "scserved_engine_cache_misses_total %d\n", cs.misses)
	fmt.Fprintf(w, "# HELP scserved_engine_compiles_total Contract engines compiled.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_compiles_total counter\n")
	fmt.Fprintf(w, "scserved_engine_compiles_total %d\n", cs.compiles)
	fmt.Fprintf(w, "# HELP scserved_engine_cache_evictions_total Engines evicted from the LRU.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_cache_evictions_total counter\n")
	fmt.Fprintf(w, "scserved_engine_cache_evictions_total %d\n", cs.evictions)
	fmt.Fprintf(w, "# HELP scserved_engine_cache_size Engines currently cached.\n")
	fmt.Fprintf(w, "# TYPE scserved_engine_cache_size gauge\n")
	fmt.Fprintf(w, "scserved_engine_cache_size %d\n", cs.size)

	fmt.Fprintf(w, "# HELP scserved_in_flight Gated requests holding an evaluation slot.\n")
	fmt.Fprintf(w, "# TYPE scserved_in_flight gauge\n")
	fmt.Fprintf(w, "scserved_in_flight %d\n", s.limiter.active())
	fmt.Fprintf(w, "# HELP scserved_queued Gated requests waiting for a slot.\n")
	fmt.Fprintf(w, "# TYPE scserved_queued gauge\n")
	fmt.Fprintf(w, "scserved_queued %d\n", s.limiter.waiting())
	fmt.Fprintf(w, "# HELP scserved_shed_total Requests shed with 429 because the queue was full.\n")
	fmt.Fprintf(w, "# TYPE scserved_shed_total counter\n")
	fmt.Fprintf(w, "scserved_shed_total %d\n", m.shed.Load())

	fmt.Fprintf(w, "# HELP scserved_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE scserved_uptime_seconds gauge\n")
	fmt.Fprintf(w, "scserved_uptime_seconds %g\n", time.Since(s.started).Seconds())
}

// trimFloat renders a bucket bound the way Prometheus clients do
// (no trailing zeros).
func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	s.metrics.render(&b, s)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
