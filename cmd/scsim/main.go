// Command scsim runs the facility simulator end to end: generate a batch
// workload for a machine, schedule it under a chosen policy (optionally
// with a power cap or price-aware shifting), and bill the resulting
// facility load under a contract spec.
//
// Usage:
//
//	scsim -machine small -span-hours 48
//	scsim -machine top50 -policy fcfs -cap-mw 10
//	scsim -machine small -contract site.json -price-aware
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/contract"
	"repro/internal/grid"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/timeseries"
	"repro/internal/units"
)

func main() {
	machineName := flag.String("machine", "small", `machine model: "small" (≈1 MW) or "top50" (≈12 MW)`)
	spanHours := flag.Int("span-hours", 48, "workload arrival span in hours")
	utilization := flag.Float64("utilization", 0.9, "target machine utilization")
	policy := flag.String("policy", "backfill", `queue policy: "fcfs" or "backfill"`)
	capMW := flag.Float64("cap-mw", 0, "static IT power cap in MW (0 = none)")
	priceAware := flag.Bool("price-aware", false, "defer checkpointable jobs in expensive hours")
	shutdown := flag.Bool("shutdown-idle", false, "power off idle nodes")
	contractPath := flag.String("contract", "", "optional JSON contract spec to bill the run")
	swfPath := flag.String("swf", "", "replay an SWF trace instead of generating a workload")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	if err := run(*machineName, *spanHours, *utilization, *policy, *capMW, *priceAware, *shutdown, *contractPath, *swfPath, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "scsim:", err)
		os.Exit(1)
	}
}

func run(machineName string, spanHours int, utilization float64, policy string,
	capMW float64, priceAware, shutdown bool, contractPath, swfPath string, seed int64) error {

	var m *hpc.Machine
	switch machineName {
	case "small":
		m = hpc.SmallSiteMachine()
	case "top50":
		m = hpc.Top50Machine()
	default:
		return fmt.Errorf("unknown machine %q (want small or top50)", machineName)
	}

	var jobs []*hpc.Job
	var err error
	if swfPath != "" {
		f, err := os.Open(swfPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jobs, err = hpc.ParseSWF(f, hpc.SWFConfig{CoresPerNode: m.Node.Cores})
		if err != nil {
			return err
		}
	} else {
		wcfg := hpc.DefaultWorkload()
		wcfg.Span = time.Duration(spanHours) * time.Hour
		wcfg.TargetUtilization = utilization
		wcfg.Seed = seed
		jobs, err = hpc.GenerateWorkload(m, wcfg)
		if err != nil {
			return err
		}
	}

	start := time.Date(2016, time.June, 6, 0, 0, 0, 0, time.UTC)
	cfg := sched.Config{
		Start:        start,
		ShutdownIdle: shutdown,
		Horizon:      time.Duration(spanHours) * time.Hour,
	}
	switch policy {
	case "fcfs":
		cfg.Policy = sched.FCFS
	case "backfill":
		cfg.Policy = sched.EASYBackfill
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}
	if capMW > 0 {
		cfg.PowerCap = units.Power(capMW) * units.Megawatt
	}
	if priceAware {
		region := grid.DefaultRegion(start)
		region.Span = time.Duration(spanHours+48) * time.Hour
		regional, err := grid.SystemLoad(region)
		if err != nil {
			return err
		}
		pm := market.DefaultPriceModel(6 * units.Gigawatt)
		feed, err := pm.PriceSeries(regional)
		if err != nil {
			return err
		}
		cfg.PriceFeed = feed
		cfg.PriceThreshold = feed.Mean()
	}

	res, err := sched.Simulate(m, jobs, cfg)
	if err != nil {
		return err
	}

	peak, _, err := res.FacilityLoad.Peak()
	if err != nil {
		return err
	}
	fmt.Printf("Simulated %s: %d jobs over %dh under %s\n\n", m.Name, len(jobs), spanHours, cfg.Policy)
	fmt.Print(report.KV([][2]string{
		{"Jobs started", fmt.Sprintf("%d (unstarted %d)", len(res.Records), res.Unstarted)},
		{"Utilization", fmt.Sprintf("%.1f%%", res.Utilization*100)},
		{"Mean wait", res.MeanWait().Round(time.Minute).String()},
		{"Mean bounded slowdown", fmt.Sprintf("%.2f", res.MeanBoundedSlowdown())},
		{"Facility energy", res.FacilityLoad.Energy().String()},
		{"Facility peak", peak.String()},
		{"Max ramp", res.FacilityLoad.MaxRamp().String()},
	}))

	if contractPath != "" {
		data, err := os.ReadFile(contractPath)
		if err != nil {
			return err
		}
		spec, err := contract.ParseSpec(data)
		if err != nil {
			return err
		}
		feed := timeseries.ConstantPrice(start, time.Hour, spanHours+1, 0.045)
		c, err := spec.Build(contract.BuildContext{Feed: feed})
		if err != nil {
			return err
		}
		bill, err := contract.ComputeBill(c, res.FacilityLoad, contract.BillingInput{})
		if err != nil {
			return err
		}
		fmt.Printf("\nBilled under %s: total %s (peak demand %s)\n", c.Name, bill.Total, bill.PeakDemand)
	}
	return nil
}
