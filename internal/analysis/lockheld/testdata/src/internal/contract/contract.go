// Package contract is a fixture stub of the repo's spec-compile
// surface: just enough for the lockheld fixtures to type-check.
package contract

type Spec struct{}

type Engine struct{}

func (s Spec) Build() (*Engine, error) { return &Engine{}, nil }

func NewEngine(s Spec) (*Engine, error) { return s.Build() }
