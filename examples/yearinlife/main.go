// A year in the life of a supercomputing center's electricity contract:
// twelve monthly bills with a ratchet demand charge, a summer of
// emergency-DR events answered by a battery, and a year-end procurement
// decision — the full stack of the library in one run.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/procurement"
	"repro/internal/report"
	"repro/internal/storage"
	"repro/internal/tariff"
	"repro/internal/units"
)

func main() {
	start := time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)

	// The site: 12 MW average with seasonal benchmark campaigns.
	load, err := repro.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: start, Span: 365 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 12 * units.Megawatt, PeakToAverage: 1.5, NoiseSigma: 0.02,
		DiurnalSwing: 0.03, Seed: 2016,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The contract: fixed energy + ratchet demand charge (one bad month
	// haunts the year).
	c := &repro.Contract{
		Name:          "annual-contract",
		Tariffs:       []repro.Tariff{tariff.MustNewFixed(0.065)},
		DemandCharges: []*repro.DemandCharge{demand.MustNewCharge(12, demand.Ratchet, 0, 0.8)},
	}

	// Twelve monthly bills.
	scenario := &core.Scenario{Contract: c, Load: load}
	res, err := scenario.Run()
	if err != nil {
		log.Fatal(err)
	}
	tbl := report.NewTable("Monthly bills (ratchet demand charge)",
		"Month", "Energy", "Peak", "Total")
	for _, b := range res.Bills {
		tbl.AddRow(b.PeriodStart.Format("Jan"), b.Energy.String(), b.PeakDemand.String(), b.Total.String())
	}
	fmt.Print(tbl.Render())
	fmt.Printf("\nAnnual total: %s\n\n", res.Total)

	// Summer DR: three emergency events answered by an 8 MWh battery.
	events := []repro.DREvent{
		{Start: start.Add((31+28+31+30+31+20)*24*time.Hour + 15*time.Hour), Duration: time.Hour, RequestedReduction: 3000},
		{Start: start.Add((31+28+31+30+31+30+14)*24*time.Hour + 16*time.Hour), Duration: 2 * time.Hour, RequestedReduction: 3000},
		{Start: start.Add((31+28+31+30+31+30+31+8)*24*time.Hour + 14*time.Hour), Duration: time.Hour, RequestedReduction: 3000},
	}
	program := &repro.DRProgram{
		Kind: market.EmergencyDR, CommittedReduction: 3000,
		EnergyIncentive: 0.55, UnderDeliveryPenalty: 0.25,
	}
	battery := &storage.Battery{
		Capacity: 8 * units.MegawattHour, MaxCharge: 2 * units.Megawatt,
		MaxDischarge: 4 * units.Megawatt, RoundTripEfficiency: 0.9, InitialSoC: 1,
	}
	ev, err := repro.EvaluateDR(c, load,
		&dr.StorageStrategy{Battery: battery, CycleCostPerKWh: 0.04},
		program, events, contract.BillingInput{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.KV([][2]string{
		{"DR strategy", ev.Strategy},
		{"Curtailed over 3 events", ev.Settlement.CurtailedEnergy.String()},
		{"Program net", ev.Settlement.Net.String()},
		{"DR net benefit", ev.NetBenefit.String()},
	}))

	// Year end: put the supply through a CSCS-style tender.
	hourly, err := load.Resample(time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	tender := &repro.Tender{
		Name: "year-end tender", Variables: procurement.CSCSVariables(),
		RenewableShareMin: 0.80, DisallowDemandCharges: true,
		ReferenceLoad: hourly,
	}
	bids, err := procurement.GenerateBids(tender, procurement.BidGenConfig{N: 20, CompliantFraction: 0.7, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	outcome, err := tender.Run(bids)
	if err != nil {
		log.Fatal(err)
	}
	base, won, saved, err := tender.Savings(outcome, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report.KV([][2]string{
		{"Tender winner", outcome.Winner.Bid.Bidder},
		{"Old contract, next year", base.String()},
		{"Tendered contract", won.String()},
		{"Procurement savings", fmt.Sprintf("%s (%.1f%%)", saved, saved.Float()/base.Float()*100)},
	}))
}
