package contract

// Canonical content hashing for contract specs. The billing service
// caches compiled engines keyed by what a spec *means*, not by the
// bytes a client happened to send: two requests whose JSON differs only
// in whitespace, key order or the presence of zero-valued optional
// fields must land on the same cache entry. HashSpec therefore hashes
// the canonical EncodeSpec serialization of the parsed spec — Go struct
// field order is fixed and omitempty strips zero values, so the
// encoding is a canonical form.

import (
	"crypto/sha256"
	"encoding/hex"
)

// HashSpec returns the canonical content hash of a spec: the hex
// SHA-256 of its EncodeSpec serialization. Specs that re-encode to the
// same canonical JSON hash identically regardless of the formatting,
// key order or redundant zero fields of the JSON they were parsed from.
func HashSpec(s *Spec) (string, error) {
	data, err := EncodeSpec(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
