package timeseries

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/units"
)

// FuzzReadPowerCSV checks the CSV reader never panics and that accepted
// series are structurally sound (positive interval, grid-aligned).
func FuzzReadPowerCSV(f *testing.F) {
	f.Add("timestamp,kw\n2016-01-01T00:00:00Z,1\n2016-01-01T00:15:00Z,2\n2016-01-01T00:30:00Z,3\n")
	f.Add("timestamp,kw\n")
	f.Add("garbage")
	f.Add("timestamp,kw\n2016-01-01T00:00:00Z,1\nbroken,2\n")
	f.Add("a,b\nc,d\ne,f\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadPowerCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if s.Interval() <= 0 {
			t.Fatal("accepted series with non-positive interval")
		}
		if s.Len() < 2 {
			t.Fatal("accepted series with fewer than two samples")
		}
		if !s.End().After(s.Start()) {
			t.Fatal("accepted series with inverted span")
		}
	})
}

// FuzzResampleWindow round-trips arbitrary series through Resample and
// Window: resampling by a whole-group factor must conserve energy, and
// windowing with arbitrary bounds must never panic and must stay inside
// the parent span.
func FuzzResampleWindow(f *testing.F) {
	f.Add(uint8(4), uint8(2), int64(0), int64(3600), uint16(1000), uint16(2000))
	f.Add(uint8(96), uint8(4), int64(-7200), int64(7200), uint16(0), uint16(65535))
	f.Add(uint8(1), uint8(1), int64(900), int64(900), uint16(500), uint16(500))
	f.Add(uint8(13), uint8(5), int64(100000), int64(-100000), uint16(9), uint16(42))
	f.Fuzz(func(t *testing.T, n, k uint8, fromOff, toOff int64, a, b uint16) {
		if n == 0 {
			return
		}
		start := time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
		interval := 15 * time.Minute
		// Deterministic sample ramp between the two fuzzed endpoints.
		samples := make([]units.Power, int(n))
		for i := range samples {
			frac := 0.0
			if len(samples) > 1 {
				frac = float64(i) / float64(len(samples)-1)
			}
			samples[i] = units.Power(float64(a) + (float64(b)-float64(a))*frac)
		}
		s, err := NewPower(start, interval, samples)
		if err != nil {
			t.Fatalf("NewPower rejected a valid series: %v", err)
		}

		// Resample by k groups: never panics; rejects non-multiples;
		// conserves energy when every group is complete.
		if k > 0 {
			target := time.Duration(k) * interval
			r, err := s.Resample(target)
			if err != nil {
				t.Fatalf("Resample(%v) on %v-interval series: %v", target, interval, err)
			}
			if r.Interval() != target {
				t.Fatalf("resampled interval = %v, want %v", r.Interval(), target)
			}
			if !r.Start().Equal(s.Start()) {
				t.Fatalf("resampled start moved: %v != %v", r.Start(), s.Start())
			}
			if int(n)%int(k) == 0 {
				e0, e1 := float64(s.Energy()), float64(r.Energy())
				if diff := math.Abs(e0 - e1); diff > 1e-6*math.Max(1, math.Abs(e0)) {
					t.Fatalf("complete-group resample lost energy: %g != %g", e0, e1)
				}
			}
		}

		// Window with arbitrary bounds: never panics; either errors or
		// returns a sub-series fully inside the parent span.
		from := start.Add(time.Duration(fromOff) * time.Second)
		to := start.Add(time.Duration(toOff) * time.Second)
		w, err := s.Window(from, to)
		if err != nil {
			return
		}
		if w.Len() == 0 || w.Len() > s.Len() {
			t.Fatalf("window returned %d samples of %d", w.Len(), s.Len())
		}
		if w.Start().Before(s.Start()) || w.End().After(s.End()) {
			t.Fatalf("window [%v, %v] escapes parent [%v, %v]",
				w.Start(), w.End(), s.Start(), s.End())
		}
		if w.Start().Before(from.Add(-interval)) {
			t.Fatalf("window start %v far before requested %v", w.Start(), from)
		}
	})
}
