package survey

// The survey instrument itself (§3.1): the six open-ended questions,
// each with the motivation the paper records. The sites answering the
// questions were not shown the motivations; the Question type keeps the
// two separated the same way.

import "repro/internal/report"

// Question is one item of the "HPC power contracts and grid integration"
// survey.
type Question struct {
	// ID is the paper's section number within §3.1.
	ID string
	// Topic is the short name used in the section headers.
	Topic string
	// Text is the question as posed to the sites.
	Text string
	// Motivation is the rationale the paper gives for asking —
	// NOT shown to respondents.
	Motivation string
}

// Questions returns the survey instrument in the paper's order.
func Questions() []Question {
	return []Question{
		{
			ID:    "3.1.1",
			Topic: "Contract Negotiation Responsibility",
			Text: "In your institution, who is responsible for negotiating the contract " +
				"between your HPC facility and your ESP? What role do you play, if any, " +
				"in this contract negotiation?",
			Motivation: "The more the SC participates in the actual negotiation with the ESP, " +
				"the greater the likelihood that the contract would be tailored to the needs " +
				"and abilities of the SC.",
		},
		{
			ID:    "3.1.2",
			Topic: "Details on Pricing Structure",
			Text: "Could you elaborate on the details of the pricing structure of your " +
				"electricity? What are the basic pricing components?",
			Motivation: "Knowing what sort of tariffs exist among SCs helps to understand the " +
				"degree to which SCs already participate in DR-like programs and how they act " +
				"in this context.",
		},
		{
			ID:    "3.1.3",
			Topic: "Obligations Towards the ESP",
			Text: "Do you have any obligations towards your ESP, e.g. a contractually agreed " +
				"power band or requirement to deliver power profiles? What is your incentive " +
				"towards committing to these obligations?",
			Motivation: "The range of obligations spans from none to very tightly coupled; these " +
				"are static, 'pre-smart-grid' commitments needing no real-time communication.",
		},
		{
			ID:    "3.1.4",
			Topic: "Services Provided to ESP",
			Text: "Do you offer any kind of services for your ESP — load capping, powering up " +
				"backup generators, and similar two-way-communication services? What is your " +
				"incentive for offering these services?",
			Motivation: "Services extend the concept of obligation to one where the SC actively " +
				"offers capabilities to the ESP in response to signals.",
		},
		{
			ID:    "3.1.5",
			Topic: "Future Relationship with your ESP",
			Text: "How do you envision your future relationship with your electricity provider? " +
				"Tighter, for example by selling local generation capacity? Looser, for example " +
				"by being self-sufficient with respect to electricity?",
			Motivation: "Combined with the current relationship, this describes the SC's " +
				"readiness for the grid transition.",
		},
		{
			ID:    "3.1.6",
			Topic: "DR Potential",
			Text: "Imagine your ESP offered a voluntary DR program. Is there some part of the " +
				"load that you can reduce or increase for a certain time-span without negatively " +
				"impacting your operations? How much load could you shift, and what incentive " +
				"would you expect — including for shifts with tangible impact on users?",
			Motivation: "To understand how responsive SCs are to DR and what incentives would " +
				"have to be created, or barriers removed, to change behavior.",
		},
	}
}

// QuestionsTable renders the instrument.
func QuestionsTable() *report.Table {
	t := report.NewTable(`Survey instrument: "HPC power contracts and grid integration" (§3.1)`,
		"§", "Topic", "Question")
	for _, q := range Questions() {
		t.AddRow(q.ID, q.Topic, q.Text)
	}
	return t
}
