// Package neg holds optimizer-shaped loops that must stay silent: the
// candidate-evaluation shapes internal/optimize actually uses.
package neg

import (
	"context"

	"internal/timeseries"
)

// The optimizer's real shape: a strided ctx poll between candidates
// (every 64th iteration), per-candidate pricing delegated further down.
func StridedSearch(ctx context.Context, load *timeseries.PowerSeries, candidates int) (float64, error) {
	done := ctx.Done()
	best := 0.0
	for k := 0; k < candidates; k++ {
		if k&63 == 0 {
			select {
			case <-done:
				return 0, ctx.Err()
			default:
			}
		}
		var obj float64
		for _, blk := range load.Blocks() {
			for _, p := range blk.Samples {
				obj += p
			}
		}
		if obj > best {
			best = obj
		}
	}
	return best, nil
}

func stageCtx(ctx context.Context, load *timeseries.PowerSeries, k int) float64 {
	select {
	case <-ctx.Done():
		return 0
	default:
	}
	return load.At(k % load.Len())
}

// Delegating each candidate's evaluation to a ctx-forwarding ...Ctx
// helper (the IncrementalMonths.Stage shape) counts as polling.
func DelegatedSearch(ctx context.Context, load *timeseries.PowerSeries, candidates int) float64 {
	best := 0.0
	for k := 0; k < candidates; k++ {
		if obj := stageCtx(ctx, load, k); obj > best {
			best = obj
		}
	}
	return best
}

// Move helpers without a context parameter have nothing to poll: a
// single bounded perturbation over one month's samples stays legal.
func clipMonth(blk timeseries.MonthBlock, level float64) float64 {
	removed := 0.0
	for _, p := range blk.Samples {
		if p > level {
			removed += p - level
		}
	}
	return removed
}

// A candidate loop that never touches the sample stream (pure RNG
// bookkeeping) has nothing to answer for.
func TemperatureSchedule(ctx context.Context, candidates int) float64 {
	temp := 1.0
	for k := 0; k < candidates; k++ {
		temp *= 0.999
	}
	return temp
}
