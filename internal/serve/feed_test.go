package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/feed"
	"repro/internal/resilience"
)

// dynamicSpec is a market-indexed contract with a declared fixed
// fallback — the degraded-mode backstop.
func dynamicSpec() *contract.Spec {
	return &contract.Spec{
		Name: "dynamic-site",
		Tariffs: []contract.TariffSpec{
			{Type: "dynamic", Multiplier: 1.1, Adder: 0.01, FallbackRate: 0.06},
		},
	}
}

// priceUpstream is a toggleable HTTP price source covering March 2016
// (the quickstart-month load window) with hourly prices.
type priceUpstream struct {
	ts   *httptest.Server
	down atomic.Bool
}

func newPriceUpstream(t *testing.T) *priceUpstream {
	t.Helper()
	start := time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
	var csv strings.Builder
	csv.WriteString("timestamp,price_per_kwh\n")
	for i := 0; i < 32*24; i++ {
		fmt.Fprintf(&csv, "%s,%.4f\n",
			start.Add(time.Duration(i)*time.Hour).Format(time.RFC3339),
			0.03+0.01*float64(i%24)/24)
	}
	body := csv.String()
	u := &priceUpstream{}
	u.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if u.down.Load() {
			http.Error(w, "market endpoint down", http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(u.ts.Close)
	return u
}

// newFeedServer wires upstream -> feed.HTTP -> feed.Cached -> Server.
func newFeedServer(t *testing.T, u *priceUpstream, ttl time.Duration) (*Server, *httptest.Server, *feed.Cached) {
	t.Helper()
	cached := feed.NewCached(&feed.HTTP{URL: u.ts.URL}, feed.CachedConfig{
		TTL:             ttl,
		StalenessBudget: time.Hour,
		Retry:           resilience.Retry{MaxAttempts: 1},
		Breaker:         &resilience.BreakerConfig{FailureThreshold: 1000},
	})
	t.Cleanup(cached.Close)
	s := NewServer(Config{PriceFeed: cached})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, cached
}

func dynamicBillRequest(t *testing.T) BillRequest {
	return BillRequest{
		Contract: specJSON(t, dynamicSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}
}

func TestBillWithServerFeedFresh(t *testing.T) {
	u := newPriceUpstream(t)
	_, ts, _ := newFeedServer(t, u, time.Minute)

	resp, body := postBill(t, ts, "/v1/bill", dynamicBillRequest(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bill against live feed: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-SCBill-Feed"); got != "fresh" {
		t.Errorf("X-SCBill-Feed = %q, want fresh", got)
	}
	if strings.Contains(string(body), `"degraded"`) {
		t.Errorf("healthy feed produced a degraded-marked bill: %s", body)
	}
	// The bill priced against the upstream curve, not the flat
	// reference feed: decode and sanity-check a positive total.
	var out struct {
		Total float64 `json:"total"`
	}
	if err := json.Unmarshal(body, &out); err != nil || out.Total <= 0 {
		t.Fatalf("bill body: total=%g err=%v", out.Total, err)
	}
}

func TestBillServedStaleDuringOutage(t *testing.T) {
	u := newPriceUpstream(t)
	s, ts, _ := newFeedServer(t, u, time.Nanosecond) // every request refetches

	if resp, body := postBill(t, ts, "/v1/bill", dynamicBillRequest(t)); resp.StatusCode != http.StatusOK {
		t.Fatalf("priming bill: %d %s", resp.StatusCode, body)
	}
	u.down.Store(true)

	resp, body := postBill(t, ts, "/v1/bill", dynamicBillRequest(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bill during outage within budget: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-SCBill-Feed"); got != "stale" {
		t.Errorf("X-SCBill-Feed = %q, want stale", got)
	}
	if resp.Header.Get("X-SCBill-Feed-Age") == "" {
		t.Error("stale response missing X-SCBill-Feed-Age")
	}
	if strings.Contains(string(body), `"degraded"`) {
		t.Errorf("stale-within-budget must not be marked degraded: %s", body)
	}
	if got := s.metrics.feedStale.Load(); got != 1 {
		t.Errorf("feedStale counter = %d, want 1", got)
	}
}

func TestBillDegradesToFallback(t *testing.T) {
	u := newPriceUpstream(t)
	u.down.Store(true) // the feed never succeeds
	s, ts, _ := newFeedServer(t, u, time.Minute)

	resp, body := postBill(t, ts, "/v1/bill", dynamicBillRequest(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded bill must still be 200: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-SCBill-Feed"); got != "degraded" {
		t.Errorf("X-SCBill-Feed = %q, want degraded", got)
	}
	if resp.Header.Get("X-SCBill-Degraded") == "" {
		t.Error("degraded response missing X-SCBill-Degraded reason header")
	}
	var out struct {
		Total          float64 `json:"total"`
		Degraded       bool    `json:"degraded"`
		DegradedReason string  `json:"degraded_reason"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("degraded bill is not valid JSON: %v\n%s", err, body)
	}
	if !out.Degraded || out.DegradedReason == "" {
		t.Fatalf("degraded bill not marked: %+v", out)
	}

	// The degraded total is exactly the declared fixed fallback: bill
	// the fallback spec in process and compare.
	load := namedLoad(t, "quickstart-month")
	fb, err := dynamicSpec().FallbackSpec(defaultFlatFeedRate).Build(contract.BuildContext{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := contract.NewEngine(fb)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.BillCtx(context.Background(), load, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Total != want.Total.Float() {
		t.Errorf("degraded total %g != fallback-tariff total %g", out.Total, want.Total.Float())
	}

	if got := s.metrics.degraded.Load(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}
	if !strings.Contains(scrapeMetrics(t, ts), "scserved_degraded_total 1") {
		t.Error("metrics missing scserved_degraded_total 1")
	}
}

func TestBillDegradedMonthlyMarked(t *testing.T) {
	u := newPriceUpstream(t)
	u.down.Store(true)
	_, ts, _ := newFeedServer(t, u, time.Minute)

	resp, body := postBill(t, ts, "/v1/bill?monthly=1", dynamicBillRequest(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("monthly degraded bill: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Months         []json.RawMessage `json:"months"`
		Degraded       bool              `json:"degraded"`
		DegradedReason string            `json:"degraded_reason"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.DegradedReason == "" || len(out.Months) == 0 {
		t.Fatalf("monthly degraded response not marked: %s", body)
	}
}

// TestExplicitFlatRateBypassesServerFeed: a request pinning its own
// flat feed rate must not consult the configured feed at all, so the
// flat-rate path keeps working even when the market feed is dead.
func TestExplicitFlatRateBypassesServerFeed(t *testing.T) {
	u := newPriceUpstream(t)
	u.down.Store(true)
	_, ts, cached := newFeedServer(t, u, time.Minute)

	req := dynamicBillRequest(t)
	req.Feed = &FeedSpec{FlatRatePerKWh: 0.05}
	resp, body := postBill(t, ts, "/v1/bill", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit flat rate: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-SCBill-Feed"); got != "" {
		t.Errorf("flat-rate request has feed header %q", got)
	}
	if st := cached.Stats(); st.Fresh+st.Stale+st.Degraded != 0 {
		t.Errorf("flat-rate request consulted the server feed: %+v", st)
	}
}

// TestStaticSpecIgnoresFeedConfig is the byte-identity acceptance
// check: a spec without dynamic tariffs must produce the identical
// response bytes whether or not a price feed is configured — and must
// never touch the feed, even one that is down.
func TestStaticSpecIgnoresFeedConfig(t *testing.T) {
	u := newPriceUpstream(t)
	u.down.Store(true)
	_, withFeed, cached := newFeedServer(t, u, time.Minute)

	plain := NewServer(Config{})
	plainTS := httptest.NewServer(plain.Handler())
	defer plainTS.Close()

	req := BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}
	respA, bodyA := postBill(t, withFeed, "/v1/bill", req)
	respB, bodyB := postBill(t, plainTS, "/v1/bill", req)
	if respA.StatusCode != http.StatusOK || respB.StatusCode != http.StatusOK {
		t.Fatalf("static bills: %d / %d", respA.StatusCode, respB.StatusCode)
	}
	if string(bodyA) != string(bodyB) {
		t.Error("static-spec bill differs between feed-configured and plain servers")
	}
	if got := respA.Header.Get("X-SCBill-Feed"); got != "" {
		t.Errorf("static spec has feed header %q", got)
	}
	if st := cached.Stats(); st.Fresh+st.Stale+st.Degraded != 0 {
		t.Errorf("static spec consulted the feed: %+v", st)
	}
}

// TestPanicRecovery pins the recovery middleware: a panicking handler
// answers 500, bumps scserved_panics_total, and the server keeps
// serving afterwards.
func TestPanicRecovery(t *testing.T) {
	s := NewServer(Config{})
	boom := true
	s.billHook = func(context.Context) {
		if boom {
			boom = false
			panic("deliberate test panic")
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := BillRequest{
		Contract: specJSON(t, quickstartSpec()),
		Load:     LoadSpec{Profile: "quickstart-month"},
	}
	resp, body := postBill(t, ts, "/v1/bill", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: %d %s, want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "internal server error") {
		t.Errorf("panic body: %s", body)
	}
	if got := s.metrics.panics.Load(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	if !strings.Contains(scrapeMetrics(t, ts), "scserved_panics_total 1") {
		t.Error("metrics missing scserved_panics_total 1")
	}
	// The daemon survived: the next request is served normally, and the
	// panicking request released its slot and in-flight count.
	if s.Inflight() != 0 || s.limiter.active() != 0 {
		t.Fatalf("panicked request leaked: inflight=%d active=%d", s.Inflight(), s.limiter.active())
	}
	resp, body = postBill(t, ts, "/v1/bill", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: %d %s", resp.StatusCode, body)
	}
}

// TestReadyzBeforeDrain: readiness and liveness both 200 on a healthy
// server (the drain-time flip is pinned in TestShutdownDrains).
func TestReadyzBeforeDrain(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s on healthy server: %d", path, resp.StatusCode)
		}
	}
}
