package contract

// JSON export for bills — the machine-readable counterpart of the
// rendered bill, with currency amounts as floats and typology components
// by name.

import (
	"encoding/json"
	"time"
)

// billJSON is the serialized shape.
type billJSON struct {
	Contract    string         `json:"contract"`
	PeriodStart time.Time      `json:"period_start"`
	PeriodEnd   time.Time      `json:"period_end"`
	EnergyKWh   float64        `json:"energy_kwh"`
	PeakKW      float64        `json:"peak_kw"`
	Lines       []lineItemJSON `json:"lines"`
	Total       float64        `json:"total"`
	DemandShare float64        `json:"demand_share"`
}

type lineItemJSON struct {
	Component   string  `json:"component"`
	Description string  `json:"description"`
	Quantity    string  `json:"quantity"`
	Amount      float64 `json:"amount"`
}

// JSON serializes the bill as indented JSON.
func (b *Bill) JSON() ([]byte, error) {
	out := billJSON{
		Contract:    b.Contract,
		PeriodStart: b.PeriodStart,
		PeriodEnd:   b.PeriodEnd,
		EnergyKWh:   float64(b.Energy),
		PeakKW:      float64(b.PeakDemand),
		Total:       b.Total.Float(),
		DemandShare: b.DemandShare(),
	}
	for _, l := range b.Lines {
		out.Lines = append(out.Lines, lineItemJSON{
			Component:   l.Component.String(),
			Description: l.Description,
			Quantity:    l.Quantity,
			Amount:      l.Amount.Float(),
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
