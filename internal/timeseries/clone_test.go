package timeseries

import (
	"testing"
	"time"

	"repro/internal/units"
)

func TestCloneIsDeep(t *testing.T) {
	start := time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
	orig := MustNewPower(start, time.Hour, []units.Power{100, 200, 300})
	cl := orig.Clone()
	if !cl.Start().Equal(orig.Start()) || cl.Interval() != orig.Interval() || cl.Len() != orig.Len() {
		t.Fatalf("clone shape mismatch: %v vs %v", cl, orig)
	}
	cl.samples[1] = 999
	if orig.At(1) != 200 {
		t.Fatalf("mutating the clone leaked into the original: %v", orig.At(1))
	}
	orig.samples[0] = 888
	if cl.At(0) != 100 {
		t.Fatalf("mutating the original leaked into the clone: %v", cl.At(0))
	}
}

func TestAppendSamplesReusesCapacity(t *testing.T) {
	start := time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
	s := MustNewPower(start, time.Hour, []units.Power{1, 2, 3, 4})
	scratch := make([]units.Power, 0, 8)
	got := s.AppendSamples(scratch[:0])
	if len(got) != 4 || got[2] != 3 {
		t.Fatalf("AppendSamples = %v", got)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatalf("AppendSamples reallocated despite sufficient capacity")
	}
	// nil destination behaves like Samples(): a private copy.
	cp := s.AppendSamples(nil)
	cp[0] = 42
	if s.At(0) != 1 {
		t.Fatalf("AppendSamples(nil) aliased the series storage")
	}
}

func TestWithSamplesTracksBufferMutations(t *testing.T) {
	start := time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)
	// Two months of daily samples so the view has a real month split.
	n := 31 + 29 // 2016 is a leap year
	base := make([]units.Power, n)
	for i := range base {
		base[i] = 1000
	}
	orig := MustNewPower(start, 24*time.Hour, base)

	buf := orig.AppendSamples(nil)
	cand := orig.WithSamples(buf)
	blocks := cand.Blocks()
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(blocks))
	}

	buf[40] = 5000 // index 40 is in February
	if cand.At(40) != 5000 {
		t.Fatalf("WithSamples series does not see buffer mutation: %v", cand.At(40))
	}
	if p := blocks[1].Peak(); p != 5000 {
		t.Fatalf("pre-existing block view does not see buffer mutation: peak %v", p)
	}
	if orig.At(40) != 1000 {
		t.Fatalf("buffer mutation leaked into the source series")
	}
}
