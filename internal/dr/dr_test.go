package dr

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/demand"
	"repro/internal/forecast"
	"repro/internal/market"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.August, 1, 0, 0, 0, 0, time.UTC)

func flat(n int, p units.Power) *timeseries.PowerSeries {
	return timeseries.ConstantPower(t0, 15*time.Minute, n, p)
}

func oneHourEvent(startOffset time.Duration) []market.Event {
	return []market.Event{{
		Start: t0.Add(startOffset), Duration: time.Hour, RequestedReduction: 2000,
	}}
}

func TestCapStrategy(t *testing.T) {
	s := &CapStrategy{Cap: 8000, OpCostPerKWh: 0.3}
	baseline := flat(8, 10000) // 2 hours
	resp, err := s.Respond(baseline, oneHourEvent(0))
	if err != nil {
		t.Fatal(err)
	}
	// First hour capped to 8 MW, second untouched.
	for i := 0; i < 4; i++ {
		if resp.Load.At(i) != 8000 {
			t.Errorf("sample %d = %v, want capped 8000", i, resp.Load.At(i))
		}
	}
	for i := 4; i < 8; i++ {
		if resp.Load.At(i) != 10000 {
			t.Errorf("sample %d = %v, want 10000", i, resp.Load.At(i))
		}
	}
	// Curtailed 2 MW × 1 h = 2 MWh; op cost 2000 × 0.3 = 600.
	if math.Abs(resp.CurtailedEnergy.MWh()-2) > 1e-9 {
		t.Errorf("curtailed = %v", resp.CurtailedEnergy)
	}
	if resp.OpCost != units.CurrencyUnits(600) {
		t.Errorf("op cost = %v", resp.OpCost)
	}
	if !strings.Contains(s.Name(), "power-cap") {
		t.Error("name")
	}
}

func TestCapStrategyValidation(t *testing.T) {
	if _, err := (&CapStrategy{Cap: 0}).Respond(flat(1, 1), nil); err == nil {
		t.Error("zero cap should fail")
	}
	if _, err := (&CapStrategy{Cap: 1, OpCostPerKWh: -1}).Respond(flat(1, 1), nil); err == nil {
		t.Error("negative op cost should fail")
	}
}

func TestShedStrategy(t *testing.T) {
	s := &ShedStrategy{Fraction: 0.10, OpCostPerKWh: 0.1}
	baseline := flat(8, 10000)
	resp, err := s.Respond(baseline, oneHourEvent(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Load.At(0) != 10000 {
		t.Error("pre-event load should be untouched")
	}
	if resp.Load.At(4) != 9000 {
		t.Errorf("event load = %v, want 9000", resp.Load.At(4))
	}
	if math.Abs(resp.CurtailedEnergy.MWh()-1) > 1e-9 {
		t.Errorf("curtailed = %v", resp.CurtailedEnergy)
	}
	if !strings.Contains(s.Name(), "shed") {
		t.Error("name")
	}
}

func TestShedStrategyValidation(t *testing.T) {
	if _, err := (&ShedStrategy{Fraction: 0}).Respond(flat(1, 1), nil); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, err := (&ShedStrategy{Fraction: 1.5}).Respond(flat(1, 1), nil); err == nil {
		t.Error("fraction > 1 should fail")
	}
	if _, err := (&ShedStrategy{Fraction: 0.5, OpCostPerKWh: -1}).Respond(flat(1, 1), nil); err == nil {
		t.Error("negative cost should fail")
	}
}

func TestShiftStrategyConservesEnergy(t *testing.T) {
	s := &ShiftStrategy{Fraction: 0.5, RecoverySpan: time.Hour, OpCostPerKWh: 0.05}
	baseline := flat(12, 10000) // 3 hours
	events := oneHourEvent(0)
	resp, err := s.Respond(baseline, events)
	if err != nil {
		t.Fatal(err)
	}
	// Event hour halves; the hour after gains the removed energy.
	if resp.Load.At(0) != 5000 {
		t.Errorf("event sample = %v", resp.Load.At(0))
	}
	if resp.Load.At(4) != 15000 {
		t.Errorf("rebound sample = %v, want 15000", resp.Load.At(4))
	}
	if resp.Load.At(9) != 10000 {
		t.Errorf("post-recovery sample = %v", resp.Load.At(9))
	}
	// Total energy conserved.
	if math.Abs(float64(resp.Load.Energy()-baseline.Energy())) > 1e-6 {
		t.Errorf("shift should conserve energy: %v vs %v", resp.Load.Energy(), baseline.Energy())
	}
	if math.Abs(resp.CurtailedEnergy.MWh()-5) > 1e-9 {
		t.Errorf("shifted = %v", resp.CurtailedEnergy)
	}
	if !strings.Contains(s.Name(), "shift") {
		t.Error("name")
	}
}

func TestShiftStrategyEventAtProfileEnd(t *testing.T) {
	// Event ending past the profile: removed energy leaves the window.
	s := &ShiftStrategy{Fraction: 1, RecoverySpan: time.Hour}
	baseline := flat(4, 10000) // exactly one hour
	events := oneHourEvent(0)
	resp, err := s.Respond(baseline, events)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if resp.Load.At(i) != 0 {
			t.Errorf("sample %d = %v, want 0", i, resp.Load.At(i))
		}
	}
}

func TestShiftStrategyValidation(t *testing.T) {
	if _, err := (&ShiftStrategy{Fraction: 0, RecoverySpan: time.Hour}).Respond(flat(1, 1), nil); err == nil {
		t.Error("zero fraction")
	}
	if _, err := (&ShiftStrategy{Fraction: 0.5, RecoverySpan: 0}).Respond(flat(1, 1), nil); err == nil {
		t.Error("zero recovery span")
	}
	if _, err := (&ShiftStrategy{Fraction: 0.5, RecoverySpan: time.Hour, OpCostPerKWh: -1}).Respond(flat(1, 1), nil); err == nil {
		t.Error("negative cost")
	}
}

func TestGenStrategy(t *testing.T) {
	s := &GenStrategy{Capacity: 3000, FuelCostPerKWh: 0.25}
	baseline := flat(8, 10000)
	resp, err := s.Respond(baseline, oneHourEvent(0))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Load.At(0) != 7000 {
		t.Errorf("netted load = %v", resp.Load.At(0))
	}
	if math.Abs(resp.CurtailedEnergy.MWh()-3) > 1e-9 {
		t.Errorf("generated = %v", resp.CurtailedEnergy)
	}
	// Generation larger than load nets to zero, not negative.
	small := flat(4, 1000)
	resp2, err := s.Respond(small, oneHourEvent(0))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Load.At(0) != 0 {
		t.Errorf("over-generation should clamp at 0, got %v", resp2.Load.At(0))
	}
	if !strings.Contains(s.Name(), "onsite-gen") {
		t.Error("name")
	}
}

func TestGenStrategyValidation(t *testing.T) {
	if _, err := (&GenStrategy{Capacity: 0}).Respond(flat(1, 1), nil); err == nil {
		t.Error("zero capacity")
	}
	if _, err := (&GenStrategy{Capacity: 1, FuelCostPerKWh: -1}).Respond(flat(1, 1), nil); err == nil {
		t.Error("negative fuel cost")
	}
}

func drContract() *contract.Contract {
	return &contract.Contract{
		Name:          "dr-test",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.10)},
		DemandCharges: []*demand.Charge{demand.MustNewCharge(15, demand.SinglePeak, 0, 0)},
	}
}

func TestEvaluatePositiveCase(t *testing.T) {
	// Baseline has its monthly peak inside the event window; capping it
	// cuts the demand charge and earns program payments.
	samples := make([]units.Power, 96)
	for i := range samples {
		samples[i] = 8000
	}
	for i := 40; i < 44; i++ {
		samples[i] = 12000 // one-hour peak
	}
	baseline := timeseries.MustNewPower(t0, 15*time.Minute, samples)
	events := []market.Event{{Start: t0.Add(10 * time.Hour), Duration: time.Hour, RequestedReduction: 4000}}
	program := &market.Program{
		Kind: market.EmergencyDR, CommittedReduction: 4000,
		EnergyIncentive: 0.50,
	}
	strategy := &CapStrategy{Cap: 8000, OpCostPerKWh: 0.05}

	ev, err := Evaluate(drContract(), baseline, strategy, program, events, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	// Demand charge falls from 12000×15 to 8000×15 → 60000 saved.
	if got := ev.BillSavings(); got < units.CurrencyUnits(60000) {
		t.Errorf("bill savings = %v, want ≥ 60000", got)
	}
	if ev.Settlement.CurtailedEnergy.MWh() < 3.9 {
		t.Errorf("curtailed = %v", ev.Settlement.CurtailedEnergy)
	}
	if !ev.WorthIt() {
		t.Errorf("net benefit = %v, should be positive", ev.NetBenefit)
	}
	if ev.Strategy == "" {
		t.Error("strategy name should be recorded")
	}
}

func TestEvaluateNegativeCase(t *testing.T) {
	// Flat load, event far from any peak, high op cost, weak incentive:
	// the paper's usual outcome — not worth it.
	baseline := flat(96, 8000)
	events := []market.Event{{Start: t0.Add(10 * time.Hour), Duration: time.Hour, RequestedReduction: 2000}}
	program := &market.Program{
		Kind: market.EmergencyDR, CommittedReduction: 2000,
		EnergyIncentive: 0.05, UnderDeliveryPenalty: 0.0,
	}
	// Shedding compute at 2.00/kWh lost value versus 0.05 incentive.
	strategy := &ShedStrategy{Fraction: 0.25, OpCostPerKWh: 2.0}
	ev, err := Evaluate(drContract(), baseline, strategy, program, events, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.WorthIt() {
		t.Errorf("net benefit = %v, should be negative for costly shedding", ev.NetBenefit)
	}
}

func TestEvaluateWithoutProgram(t *testing.T) {
	baseline := flat(96, 8000)
	ev, err := Evaluate(drContract(), baseline, &CapStrategy{Cap: 7000}, nil, oneHourEvent(0), contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Settlement.Net != 0 {
		t.Error("no program, no settlement")
	}
}

func TestEvaluateErrors(t *testing.T) {
	baseline := flat(4, 8000)
	if _, err := Evaluate(drContract(), baseline, nil, nil, nil, contract.BillingInput{}); err == nil {
		t.Error("nil strategy should fail")
	}
	badC := &contract.Contract{Name: "bad"}
	if _, err := Evaluate(badC, baseline, &CapStrategy{Cap: 1000}, nil, nil, contract.BillingInput{}); err == nil {
		t.Error("invalid contract should fail")
	}
	badS := &CapStrategy{Cap: 0}
	if _, err := Evaluate(drContract(), baseline, badS, nil, nil, contract.BillingInput{}); err == nil {
		t.Error("invalid strategy should fail")
	}
	badP := &market.Program{CommittedReduction: 0}
	if _, err := Evaluate(drContract(), baseline, &CapStrategy{Cap: 1000}, badP, nil, contract.BillingInput{}); err == nil {
		t.Error("invalid program should fail")
	}
}

func TestGoodNeighborNotify(t *testing.T) {
	devs := []forecast.Deviation{
		{Start: t0.Add(24 * time.Hour), Duration: 2 * time.Hour, Peak: 5000, Above: true},
		{Start: t0.Add(48 * time.Hour), Duration: time.Hour, Peak: 100, Above: false}, // below threshold
	}
	policy := GoodNeighborPolicy{LeadTime: 4 * time.Hour, MinDeviation: 1000, ByContract: false}
	notes := policy.Notify(devs, func(d forecast.Deviation) string {
		if d.Above {
			return "benchmark run"
		}
		return "maintenance"
	})
	if len(notes) != 1 {
		t.Fatalf("notes = %d, want 1 (threshold filters the second)", len(notes))
	}
	if !notes[0].SendAt.Equal(t0.Add(20 * time.Hour)) {
		t.Errorf("SendAt = %v, want 4 h lead", notes[0].SendAt)
	}
	if notes[0].Reason != "benchmark run" {
		t.Errorf("reason = %q", notes[0].Reason)
	}
	if !strings.Contains(notes[0].String(), "benchmark run") {
		t.Error("notification should format with reason")
	}
	// Nil reason lookup.
	notes2 := policy.Notify(devs, nil)
	if len(notes2) != 1 || notes2[0].Reason != "" {
		t.Error("nil reason lookup should produce empty reasons")
	}
	if !strings.Contains(notes2[0].String(), "unexplained") {
		t.Error("empty reason should render as unexplained")
	}
}
