package main

import "testing"

func TestRunTender(t *testing.T) {
	if err := run(15, 0.8, false, 0.7, 5, 17, 0.075); err != nil {
		t.Fatal(err)
	}
}

func TestRunTenderAllowingDemandCharges(t *testing.T) {
	if err := run(15, 0.8, true, 0.7, 5, 17, 0.075); err != nil {
		t.Fatal(err)
	}
}

func TestRunTenderNoCompliantBids(t *testing.T) {
	// Zero compliant fraction: every bid violates something, but the
	// command reports the empty outcome instead of erroring.
	if err := run(5, 0.9, false, 0, 5, 3, 0.075); err != nil {
		t.Fatal(err)
	}
}

func TestRunTenderValidation(t *testing.T) {
	if err := run(0, 0.8, false, 0.7, 5, 17, 0.075); err == nil {
		t.Error("zero bids should fail")
	}
	if err := run(5, 1.5, false, 0.7, 5, 17, 0.075); err == nil {
		t.Error("bad renewable floor should fail")
	}
}
