// Positive fixtures: ctx-taking functions that drop their context.
// Package path is scope-aligned with internal/serve.
package pos

import (
	"context"
	"net/http"
	"time"
)

// Minting a fresh root context mid-request detaches the call chain
// from the deadline.
func background(ctx context.Context, d time.Duration) error {
	dctx, cancel := context.WithTimeout(context.Background(), d) // want `context.Background\(\) inside a ctx-taking function`
	defer cancel()
	return work(dctx)
}

// context.TODO is the same drop with a different name.
func todo(ctx context.Context) error {
	return work(context.TODO()) // want `context.TODO\(\) inside a ctx-taking function`
}

// An uncancelable request in a cancelable function.
func fetch(ctx context.Context, client *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil) // want `http.NewRequest inside a ctx-taking function`
	if err != nil {
		return nil, err
	}
	return client.Do(req)
}

// The dropped ctx inside a literal spawned from a patrolled function
// is the same bug: the literal captures ctx and ignores it.
func inLiteral(ctx context.Context, run func(func() error)) {
	run(func() error {
		return work(context.Background()) // want `context.Background\(\) inside a ctx-taking function`
	})
}

// Calling the uncancelable variant when a Ctx sibling exists.
type engine struct{}

func (engine) Bill(n int) int                         { return n }
func (engine) BillCtx(ctx context.Context, n int) int { return n }

func evaluate(ctx context.Context, e engine, n int) int {
	return e.Bill(n) // want `Bill has a context-taking sibling BillCtx`
}

// Package-scope sibling pair.
func Evaluate(n int) int                         { return n }
func EvaluateCtx(ctx context.Context, n int) int { return n }

func sweep(ctx context.Context, n int) int {
	return Evaluate(n) // want `Evaluate has a context-taking sibling EvaluateCtx`
}

func work(ctx context.Context) error { return ctx.Err() }
