package survey

// Property test for spec serialization over the empirical dataset: for
// every one of the ten survey-site contracts, ParseSpec(EncodeSpec(s))
// must reproduce the spec (re-encoding is byte-identical) and the
// round-tripped spec must Build a contract that classifies and bills
// identically to the original. This is the property the billing service
// relies on: a spec that travelled through JSON is the same contract.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/hpc"
	"repro/internal/units"
)

func TestSiteSpecRoundTripsAndBuildsIdentically(t *testing.T) {
	start := time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)
	ctx := DefaultBuildContext(start)
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: start, Span: 30 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 8 * units.Megawatt, PeakToAverage: 1.6, NoiseSigma: 0.02, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := contract.BillingInput{
		HistoricalPeak: 15 * units.Megawatt,
		Events: []contract.EmergencyEvent{
			{Start: start.Add(36 * time.Hour), Duration: 2 * time.Hour},
		},
	}

	for _, site := range Records() {
		t.Run(fmt.Sprintf("site-%d", site.ID), func(t *testing.T) {
			spec := SiteSpec(site)

			first, err := contract.EncodeSpec(&spec)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := contract.ParseSpec(first)
			if err != nil {
				t.Fatal(err)
			}
			second, err := contract.EncodeSpec(parsed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("re-encoding differs:\n%s\nvs\n%s", first, second)
			}

			// The canonical hash — the service's cache key — survives
			// the trip too.
			h1, err := contract.HashSpec(&spec)
			if err != nil {
				t.Fatal(err)
			}
			h2, err := contract.HashSpec(parsed)
			if err != nil {
				t.Fatal(err)
			}
			if h1 != h2 {
				t.Errorf("hash changed across round trip: %s != %s", h1, h2)
			}

			// Both specs build contracts that classify the same and
			// bill the same, line for line.
			orig, err := spec.Build(ctx)
			if err != nil {
				t.Fatal(err)
			}
			back, err := parsed.Build(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := contract.Classify(back), contract.Classify(orig); got != want {
				t.Fatalf("classification changed: %v != %v", got, want)
			}
			if got, want := contract.Classify(back), site.Profile; got != want {
				t.Fatalf("classification %v does not match Table 2 row %v", got, want)
			}
			wantBill, err := contract.ComputeBill(orig, load, in)
			if err != nil {
				t.Fatal(err)
			}
			gotBill, err := contract.ComputeBill(back, load, in)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := wantBill.JSON()
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := gotBill.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Errorf("bills differ after round trip:\n%s\nvs\n%s", gotJSON, wantJSON)
			}
		})
	}
}
