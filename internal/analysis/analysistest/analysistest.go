// Package analysistest runs a scvet analyzer over fixture packages
// under a testdata directory and checks its diagnostics against
// `// want` annotations — a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest.
//
// Layout mirrors x/tools: fixtures live in testdata/src/<pkgpath>/ and
// are loaded GOPATH-style, so a fixture at testdata/src/internal/units
// is importable from sibling fixtures as "internal/units" and carries
// the package path "internal/units" — which is exactly what the
// analyzers' segment-aligned scope matching keys on. Standard-library
// imports resolve from GOROOT source via the "source" compiler
// importer, so fixtures may import time, sync, math/rand, and friends.
//
// Annotations:
//
//	code()        // want "regexp" "second regexp"
//	// want-below "regexp"       (applies to the next line; used when
//	                              the diagnostic's own line already
//	                              carries a directive comment)
//
// Each expectation must match exactly one diagnostic reported on its
// line, by analyzer-agnostic regexp match on the message. Unmatched
// diagnostics and unsatisfied expectations both fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: resolving testdata: %v", err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("analysistest: no testdata directory: %v", err)
	}
	return dir
}

// loader shares one FileSet and one source importer per testdata root:
// the "source" importer type-checks stdlib packages from GOROOT source,
// which is expensive enough to be worth caching across fixture
// packages and analyzers within a test binary.
type loader struct {
	fset *token.FileSet
	imp  types.Importer
}

var (
	loadersMu sync.Mutex
	loaders   = map[string]*loader{}
)

// loaderFor returns the cached loader for the testdata root, pointing
// go/build's default context at it GOPATH-style so fixture-local
// imports ("internal/units") resolve under testdata/src.
func loaderFor(testdata string) *loader {
	loadersMu.Lock()
	defer loadersMu.Unlock()
	if l, ok := loaders[testdata]; ok {
		return l
	}
	// The source importer captures &build.Default; pointing GOPATH at
	// the fixture tree is what makes testdata/src the import root.
	// Test binaries for one analyzer package share one testdata dir,
	// so the mutation is stable for the life of the process. Module
	// mode must be off or go/build would ask the go command to resolve
	// fixture imports against the enclosing repro module (where they
	// deliberately don't exist).
	os.Setenv("GO111MODULE", "off")
	build.Default.GOPATH = testdata
	fset := token.NewFileSet()
	l := &loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
	loaders[testdata] = l
	return l
}

// Run loads each fixture package under testdata/src and checks the
// analyzer's (suppression-filtered) diagnostics against the fixture's
// want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := loaderFor(testdata)
	for _, pkgpath := range pkgpaths {
		runOne(t, l, testdata, a, pkgpath)
	}
}

func runOne(t *testing.T, l *loader, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Errorf("%s: %v", pkgpath, err)
		return
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Errorf("%s: %v", pkgpath, err)
			return
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Errorf("%s: no Go files in %s", pkgpath, dir)
		return
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: l.imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(pkgpath, l.fset, files, info)
	if err != nil {
		t.Errorf("%s: fixture does not type-check: %v", pkgpath, err)
		return
	}

	diags, err := analysis.RunAnalyzers(l.fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Errorf("%s: %v", pkgpath, err)
		return
	}

	wants := collectWants(t, l.fset, files)
	for _, d := range diags {
		posn := l.fset.Position(d.Pos)
		key := lineKey{posn.Filename, posn.Line}
		matched := false
		rest := wants[key][:0]
		for _, w := range wants[key] {
			if !matched && w.MatchString(d.Message) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		wants[key] = rest
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: [%s] %s", pkgpath, posn, d.Analyzer, d.Message)
		}
	}
	var leftover []string
	for key, ws := range wants {
		for _, w := range ws {
			leftover = append(leftover, fmt.Sprintf("%s:%d: no diagnostic matching %q%s",
				key.file, key.line, w.String(), nearestDiagnostic(l.fset, diags, key)))
		}
	}
	sort.Strings(leftover)
	for _, msg := range leftover {
		t.Errorf("%s: %s", pkgpath, msg)
	}
}

// nearestDiagnostic describes the actual diagnostic closest to an
// unsatisfied want — same file by line distance first, any file as a
// fallback — so a failing fixture shows what the analyzer really said
// instead of leaving the author to re-run with print statements. The
// usual failure is a near-miss: the diagnostic fired one line off, or
// with a message the regexp almost matches.
func nearestDiagnostic(fset *token.FileSet, diags []analysis.Diagnostic, key lineKey) string {
	if len(diags) == 0 {
		return " (no diagnostics were reported in this package)"
	}
	best := -1
	bestScore := 1 << 40
	for i, d := range diags {
		posn := fset.Position(d.Pos)
		score := 1 << 20 // other-file diagnostics rank behind any same-file one
		if posn.Filename == key.file {
			score = posn.Line - key.line
			if score < 0 {
				score = -score
			}
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	posn := fset.Position(diags[best].Pos)
	return fmt.Sprintf("; nearest actual diagnostic: %s:%d: [%s] %s",
		posn.Filename, posn.Line, diags[best].Analyzer, diags[best].Message)
}

type lineKey struct {
	file string
	line int
}

// collectWants parses `// want "rx"...` and `// want-below "rx"...`
// annotations out of the fixture comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*regexp.Regexp {
	t.Helper()
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				lineDelta := 0
				spec, below := strings.CutPrefix(text, "want-below")
				if below {
					lineDelta = 1
				} else if spec, ok = strings.CutPrefix(text, "want"); !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				key := lineKey{posn.Filename, posn.Line + lineDelta}
				for _, q := range splitQuoted(spec) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", posn, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, pat, err)
					}
					wants[key] = append(wants[key], rx)
				}
			}
		}
	}
	return wants
}

// splitQuoted returns the double-quoted or backquoted tokens of s.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && (s[j] != '"' || s[j-1] == '\\') {
				j++
			}
			if j < len(s) {
				out = append(out, s[i:j+1])
				i = j
			}
		case '`':
			j := strings.IndexByte(s[i+1:], '`')
			if j >= 0 {
				out = append(out, s[i:i+j+2])
				i += j + 1
			}
		}
	}
	return out
}
