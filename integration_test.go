package repro

// Integration tests: full pipelines across subsystem boundaries, the
// kind of wiring the per-package unit tests cannot see.

import (
	"math"
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/dr"
	"repro/internal/grid"
	"repro/internal/hpc"
	"repro/internal/market"
	"repro/internal/procurement"
	"repro/internal/sched"
	"repro/internal/tariff"
	"repro/internal/units"
)

// TestIntegrationWorkloadToBill drives jobs through the scheduler and
// bills the resulting facility profile: the energy billed must equal the
// energy simulated, and the billed peak the simulated peak.
func TestIntegrationWorkloadToBill(t *testing.T) {
	start := time.Date(2016, time.June, 1, 0, 0, 0, 0, time.UTC)
	m := hpc.SmallSiteMachine()
	wcfg := hpc.DefaultWorkload()
	wcfg.Span = 24 * time.Hour
	jobs, err := hpc.GenerateWorkload(m, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Simulate(m, jobs, sched.Config{Start: start, Horizon: 36 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	c := &contract.Contract{
		Name:          "integration",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.07)},
		DemandCharges: []*demand.Charge{demand.MustNewCharge(10, demand.SinglePeak, 0, 0)},
	}
	bill, err := contract.ComputeBill(c, res.FacilityLoad, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(bill.Energy-res.FacilityLoad.Energy())) > 1e-6 {
		t.Error("billed energy must equal simulated energy")
	}
	peak, _, _ := res.FacilityLoad.Peak()
	if bill.PeakDemand != peak {
		t.Error("billed peak must equal simulated peak")
	}
	// Cross-check the energy line: energy × rate within rounding.
	energyLine := bill.ComponentTotal(contract.CompFixedTariff)
	want := units.EnergyPrice(0.07).Cost(bill.Energy)
	if d := energyLine - want; d < -2 || d > 2 {
		t.Errorf("energy line %v vs %v", energyLine, want)
	}
}

// TestIntegrationGridToDR runs the whole supply-side chain: regional
// load → renewables → net load → prices + stress → program dispatch →
// SC response → settlement. Every link must stay consistent.
func TestIntegrationGridToDR(t *testing.T) {
	start := time.Date(2016, time.July, 4, 0, 0, 0, 0, time.UTC)
	region := grid.DefaultRegion(start)
	region.Span = 7 * 24 * time.Hour
	demandLoad, err := grid.SystemLoad(region)
	if err != nil {
		t.Fatal(err)
	}
	solar, err := grid.Solar(demandLoad, grid.SolarConfig{Capacity: 800 * units.Megawatt, CloudNoise: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	net, err := grid.NetLoad(demandLoad, solar)
	if err != nil {
		t.Fatal(err)
	}
	threshold, err := net.Percentile(0.98)
	if err != nil {
		t.Fatal(err)
	}
	stress, err := grid.DetectStress(net, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(stress) == 0 {
		t.Fatal("a 98th-percentile threshold must produce stress events")
	}
	program := &market.Program{
		Kind: market.EmergencyDR, CommittedReduction: 2 * units.Megawatt,
		EnergyIncentive: 0.6, MaxEventDuration: time.Hour, MaxEventsPerPeriod: 3,
	}
	events := program.DispatchFromStress(stress)
	if len(events) == 0 || len(events) > 3 {
		t.Fatalf("dispatches = %d", len(events))
	}

	baseline, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: start, Span: 7 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 15 * units.Megawatt, PeakToAverage: 1.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &contract.Contract{Name: "site", Tariffs: []tariff.Tariff{tariff.MustNewFixed(0.06)}}
	ev, err := dr.Evaluate(c, baseline, &dr.ShedStrategy{Fraction: 0.15, OpCostPerKWh: 0.01},
		program, events, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	// Settlement consistency: curtailment matches the bill delta's
	// energy within rounding (the shed energy left the bill).
	savedEnergy := float64(ev.BaselineBill.Energy - ev.ResponseBill.Energy)
	if math.Abs(savedEnergy-float64(ev.Settlement.CurtailedEnergy)) > 1 {
		t.Errorf("curtailed %v vs billed delta %v kWh", ev.Settlement.CurtailedEnergy, savedEnergy)
	}
	if ev.Settlement.EnergyPayment <= 0 {
		t.Error("dispatched events with real shedding must earn payment")
	}
}

// TestIntegrationTenderedContractRebills closes the procurement loop:
// the winner's contract, billed over the tender's own reference load,
// reproduces the auction's scored cost exactly.
func TestIntegrationTenderedContractRebills(t *testing.T) {
	start := time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)
	refLoad, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: start, Span: 365 * 24 * time.Hour, Interval: time.Hour,
		Base: 5 * units.Megawatt, PeakToAverage: 1.3, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tender := &procurement.Tender{
		Name: "loop", Variables: procurement.CSCSVariables(),
		RenewableShareMin: 0.8, DisallowDemandCharges: true, ReferenceLoad: refLoad,
	}
	bids, err := procurement.GenerateBids(tender, procurement.BidGenConfig{N: 15, CompliantFraction: 0.8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := tender.Run(bids)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Winner == nil {
		t.Fatal("no winner")
	}
	won, err := outcome.WinnerContract("tendered")
	if err != nil {
		t.Fatal(err)
	}
	bill, err := contract.ComputeBill(won, refLoad, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if bill.Total != outcome.Winner.AnnualCost {
		t.Errorf("re-billed %v vs scored %v", bill.Total, outcome.Winner.AnnualCost)
	}
}

// TestIntegrationScenarioMatchesManualBilling cross-checks core.Scenario
// against manual month splitting.
func TestIntegrationScenarioMatchesManualBilling(t *testing.T) {
	start := time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)
	load, err := hpc.SyntheticFacilityLoad(hpc.LoadProfileConfig{
		Start: start, Span: 61 * 24 * time.Hour, Interval: 15 * time.Minute,
		Base: 9 * units.Megawatt, PeakToAverage: 1.4, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &contract.Contract{
		Name:          "cross-check",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.08)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(11)},
	}
	scenario := &core.Scenario{Contract: c, Load: load}
	res, err := scenario.Run()
	if err != nil {
		t.Fatal(err)
	}
	manual, err := contract.BillMonths(c, load, contract.BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bills) != len(manual) {
		t.Fatalf("months: %d vs %d", len(res.Bills), len(manual))
	}
	for i := range manual {
		if res.Bills[i].Total != manual[i].Total {
			t.Errorf("month %d: %v vs %v", i, res.Bills[i].Total, manual[i].Total)
		}
	}
}
