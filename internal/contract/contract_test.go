package contract

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/calendar"
	"repro/internal/demand"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

var t0 = time.Date(2016, time.March, 1, 0, 0, 0, 0, time.UTC)

func flatLoad(n int, p units.Power) *timeseries.PowerSeries {
	return timeseries.ConstantPower(t0, time.Hour, n, p)
}

func load(kw ...float64) *timeseries.PowerSeries {
	samples := make([]units.Power, len(kw))
	for i, v := range kw {
		samples[i] = units.Power(v)
	}
	return timeseries.MustNewPower(t0, time.Hour, samples)
}

func simpleContract() *Contract {
	return &Contract{
		Name:          "test",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.10)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
	}
}

func TestComponentNamesAndBranches(t *testing.T) {
	for _, c := range AllComponents() {
		if c.String() == "" || strings.HasPrefix(c.String(), "Component(") {
			t.Errorf("component %d should have a name", int(c))
		}
		if c.Branch() == "unknown" {
			t.Errorf("component %v should have a branch", c)
		}
	}
	if Component(99).String() == "" || Component(99).Branch() != "unknown" {
		t.Error("unknown component handling")
	}
	if len(AllComponents()) != 6 {
		t.Error("Table 2 has six component columns")
	}
}

func TestValidate(t *testing.T) {
	var nilC *Contract
	if err := nilC.Validate(); err == nil {
		t.Error("nil contract should fail")
	}
	if err := (&Contract{Name: "x"}).Validate(); err == nil {
		t.Error("no tariffs should fail")
	}
	if err := (&Contract{Name: "x", Tariffs: []tariff.Tariff{nil}}).Validate(); err == nil {
		t.Error("nil tariff should fail")
	}
	bad := &Contract{
		Name:        "x",
		Tariffs:     []tariff.Tariff{tariff.MustNewFixed(0.1)},
		Emergencies: []*EmergencyObligation{{Cap: -1}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("invalid emergency should fail")
	}
	if err := simpleContract().Validate(); err != nil {
		t.Errorf("valid contract: %v", err)
	}
}

func TestEmergencyObligationValidate(t *testing.T) {
	cases := []EmergencyObligation{
		{Cap: -1},
		{Penalty: -1},
		{Notice: -time.Minute},
	}
	for i, o := range cases {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	good := EmergencyObligation{Name: "PJM", Cap: 5000, Notice: 30 * time.Minute, Penalty: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good obligation: %v", err)
	}
	if !strings.Contains(good.Describe(), "PJM") {
		t.Error("describe should include name")
	}
	if !strings.Contains((&EmergencyObligation{}).Describe(), "emergency DR") {
		t.Error("unnamed obligation describe")
	}
}

func TestEmergencyEventCovers(t *testing.T) {
	e := EmergencyEvent{Start: t0, Duration: time.Hour}
	if !e.Covers(t0) || e.Covers(e.End()) || e.Covers(t0.Add(-time.Second)) {
		t.Error("event coverage is half-open [start, end)")
	}
}

func TestEmergencyCost(t *testing.T) {
	o := &EmergencyObligation{Cap: 5000, Penalty: 2}
	l := load(10000, 10000, 10000) // 3 hours at 10 MW
	ev := []EmergencyEvent{{Start: t0.Add(time.Hour), Duration: time.Hour}}
	// Only hour 2 is covered: excess 5 MW × 1 h × 2/kWh = 10000.
	if got, want := o.Cost(l, ev), units.CurrencyUnits(10000); got != want {
		t.Errorf("cost = %v, want %v", got, want)
	}
	if o.Cost(l, nil) != 0 {
		t.Error("no events, no cost")
	}
	// Compliant load: no cost even during events.
	if o.Cost(load(4000, 4000, 4000), ev) != 0 {
		t.Error("compliant load should cost nothing")
	}
}

func TestClassify(t *testing.T) {
	c := &Contract{
		Name: "full",
		Tariffs: []tariff.Tariff{
			tariff.MustNewFixed(0.1),
		},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(10)},
		Powerbands:    []*demand.Powerband{demand.MustNewPowerband(1000, 9000, 1, 1)},
		Emergencies:   []*EmergencyObligation{{Cap: 5000, Penalty: 1}},
	}
	p := Classify(c)
	if !p.FixedTariff || p.TOUTariff || p.DynamicTariff {
		t.Errorf("tariff classification = %+v", p)
	}
	if !p.DemandCharge || !p.Powerband || !p.EmergencyDR {
		t.Errorf("kW/other classification = %+v", p)
	}
	if !p.EncouragesDSM() {
		t.Error("should encourage DSM")
	}
	if !p.EncouragesRealTimeDR() {
		t.Error("emergency DR is a real-time element")
	}
	if len(p.Components()) != 4 {
		t.Errorf("Components = %v", p.Components())
	}
	if p.String() == "(none)" {
		t.Error("String should list components")
	}
}

func TestClassifyUnpacksStacks(t *testing.T) {
	// The Sites 1/9 configuration: fixed base + TOU service-charge rider.
	feedless := tariff.MustNewStack(
		tariff.MustNewFixed(0.08),
		mustTOU(),
	)
	c := &Contract{Name: "site1", Tariffs: []tariff.Tariff{feedless}}
	p := Classify(c)
	if !p.FixedTariff || !p.TOUTariff {
		t.Errorf("stack should tick both fixed and TOU: %+v", p)
	}
}

// mustTOU builds a simple day/night TOU tariff for tests.
func mustTOU() *tariff.TOUTariff {
	return tariff.MustNewTOU(
		dayNightSchedule(),
		map[string]units.EnergyPrice{"peak": 0.2, "offpeak": 0.05},
	)
}

func TestProfileHasExhaustive(t *testing.T) {
	p := Profile{
		DemandCharge: true, Powerband: true, FixedTariff: true,
		TOUTariff: true, DynamicTariff: true, EmergencyDR: true,
	}
	for _, c := range AllComponents() {
		if !p.Has(c) {
			t.Errorf("full profile should have %v", c)
		}
	}
	if p.Has(Component(99)) {
		t.Error("unknown component should be false")
	}
	var empty Profile
	if empty.EncouragesDSM() || empty.EncouragesRealTimeDR() {
		t.Error("empty profile encourages nothing")
	}
	if empty.String() != "(none)" {
		t.Error("empty profile string")
	}
}

func TestComputeBill(t *testing.T) {
	c := simpleContract()
	l := flatLoad(24, 10000) // 10 MW flat for a day = 240 MWh
	bill, err := ComputeBill(c, l, BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bill.Energy.MWh()-240) > 1e-9 {
		t.Errorf("Energy = %v", bill.Energy)
	}
	if bill.PeakDemand != 10000 {
		t.Errorf("PeakDemand = %v", bill.PeakDemand)
	}
	// Tariff: 240 MWh × 0.10 = 24000. Demand: 10 MW × 12 = 120000.
	wantTotal := units.CurrencyUnits(24000 + 120000)
	if bill.Total != wantTotal {
		t.Errorf("Total = %v, want %v", bill.Total, wantTotal)
	}
	// Total is the exact sum of lines.
	var sum units.Money
	for _, line := range bill.Lines {
		sum += line.Amount
	}
	if sum != bill.Total {
		t.Error("Total must equal sum of lines")
	}
	if bill.String() == "" {
		t.Error("bill should format")
	}
}

func TestComputeBillErrors(t *testing.T) {
	if _, err := ComputeBill(&Contract{Name: "x"}, flatLoad(1, 1), BillingInput{}); err == nil {
		t.Error("invalid contract should fail")
	}
	if _, err := ComputeBill(simpleContract(), nil, BillingInput{}); err == nil {
		t.Error("nil load should fail")
	}
	empty := timeseries.MustNewPower(t0, time.Hour, nil)
	if _, err := ComputeBill(simpleContract(), empty, BillingInput{}); err == nil {
		t.Error("empty load should fail")
	}
}

func TestBillComponentTotalAndDemandShare(t *testing.T) {
	c := simpleContract()
	l := flatLoad(24, 10000)
	bill, err := ComputeBill(c, l, BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	energy := bill.ComponentTotal(CompFixedTariff)
	dc := bill.ComponentTotal(CompDemandCharge)
	if energy != units.CurrencyUnits(24000) || dc != units.CurrencyUnits(120000) {
		t.Errorf("component totals = %v / %v", energy, dc)
	}
	share := bill.DemandShare()
	want := 120000.0 / 144000.0
	if math.Abs(share-want) > 1e-9 {
		t.Errorf("DemandShare = %v, want %v", share, want)
	}
	zero := &Bill{}
	if zero.DemandShare() != 0 {
		t.Error("zero bill share = 0")
	}
}

func TestBillWithAllComponents(t *testing.T) {
	c := &Contract{
		Name:          "full",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.10)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
		Powerbands:    []*demand.Powerband{demand.MustNewPowerband(1000, 9000, 0.5, 1.0)},
		Emergencies:   []*EmergencyObligation{{Cap: 5000, Penalty: 2}},
		Fees:          []FixedFee{{Name: "metering", Amount: units.CurrencyUnits(500)}},
	}
	l := load(10000, 8000, 8000)
	ev := []EmergencyEvent{{Start: t0, Duration: time.Hour}}
	bill, err := ComputeBill(c, l, BillingInput{Events: ev})
	if err != nil {
		t.Fatal(err)
	}
	if len(bill.Lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(bill.Lines))
	}
	// Powerband: hour 0 at 10 MW breaches 9 MW → 1 MWh × 1.0 = 1000.
	if got := bill.ComponentTotal(CompPowerband); got != units.CurrencyUnits(1000) {
		t.Errorf("powerband total = %v", got)
	}
	// Emergency: hour 0 covered, excess 5 MWh × 2 = 10000.
	if got := bill.ComponentTotal(CompEmergencyDR); got != units.CurrencyUnits(10000) {
		t.Errorf("emergency total = %v", got)
	}
	// Fee line carries the real flat-fee component.
	var feeSeen bool
	for _, line := range bill.Lines {
		if line.Component == CompFlatFee && line.Amount == units.CurrencyUnits(500) {
			feeSeen = true
		}
	}
	if !feeSeen {
		t.Error("fee line missing")
	}
	if got := bill.ComponentTotal(CompFlatFee); got != units.CurrencyUnits(500) {
		t.Errorf("flat-fee total = %v", got)
	}
	if CompFlatFee.Branch() != "fees" {
		t.Errorf("flat-fee branch = %q", CompFlatFee.Branch())
	}
}

func TestBillMonthsThreadsRatchet(t *testing.T) {
	c := &Contract{
		Name:          "ratchet",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.05)},
		DemandCharges: []*demand.Charge{demand.MustNewCharge(10, demand.Ratchet, 0, 0.8)},
	}
	// Two months: March with a 20 MW spike, April flat at 10 MW.
	march := 31 * 24
	april := 30 * 24
	samples := make([]units.Power, march+april)
	for i := range samples {
		samples[i] = 10000
	}
	samples[100] = 20000
	l := timeseries.MustNewPower(t0, time.Hour, samples)
	bills, err := BillMonths(c, l, BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bills) != 2 {
		t.Fatalf("months = %d", len(bills))
	}
	// April's ratchet floor: 0.8 × 20 MW = 16 MW > its own 10 MW peak.
	aprDC := bills[1].ComponentTotal(CompDemandCharge)
	if aprDC != units.DemandPrice(10).Cost(16000) {
		t.Errorf("April demand charge = %v, want ratcheted 16 MW", aprDC)
	}
	if TotalOf(bills) != bills[0].Total+bills[1].Total {
		t.Error("TotalOf")
	}
}

// A mid-year peak must ratchet every later month's billed demand while
// leaving earlier months untouched — the "one bad month haunts the whole
// year" behavior, asserted month by month across the parallel evaluator.
func TestBillMonthsRatchetMidYearPeak(t *testing.T) {
	c := &Contract{
		Name:          "ratchet-year",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.05)},
		DemandCharges: []*demand.Charge{demand.MustNewCharge(10, demand.Ratchet, 0, 0.8)},
	}
	// Six months (Mar–Aug 2016), flat 10 MW except a 25 MW spike in June.
	start := t0
	end := time.Date(2016, time.September, 1, 0, 0, 0, 0, time.UTC)
	n := int(end.Sub(start) / time.Hour)
	samples := make([]units.Power, n)
	for i := range samples {
		samples[i] = 10000
	}
	spike := time.Date(2016, time.June, 15, 12, 0, 0, 0, time.UTC)
	samples[int(spike.Sub(start)/time.Hour)] = 25000
	l := timeseries.MustNewPower(start, time.Hour, samples)

	bills, err := BillMonths(c, l, BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bills) != 6 {
		t.Fatalf("months = %d, want 6", len(bills))
	}
	price := units.DemandPrice(10)
	// Months before the spike bill their own 10 MW peak; the spike month
	// bills 25 MW; every later month floors at 0.8 × 25 MW = 20 MW.
	want := []units.Power{10000, 10000, 10000, 25000, 20000, 20000}
	for i, b := range bills {
		if got := b.ComponentTotal(CompDemandCharge); got != price.Cost(want[i]) {
			t.Errorf("month %d (%s) demand charge = %v, want %v billed at %v",
				i, b.PeriodStart.Format("2006-01"), got, price.Cost(want[i]), want[i])
		}
	}
	// The engine's parallel path must agree with the sequential legacy
	// threading exactly.
	legacy, err := BillMonthsLegacy(c, l, BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bills {
		if bills[i].Total != legacy[i].Total {
			t.Errorf("month %d total = %v, legacy %v", i, bills[i].Total, legacy[i].Total)
		}
	}
}

func TestBillMonthsPropagatesError(t *testing.T) {
	bad := &Contract{Name: "x"}
	if _, err := BillMonths(bad, flatLoad(24, 1), BillingInput{}); err == nil {
		t.Error("invalid contract should propagate")
	}
}

func TestBillJSON(t *testing.T) {
	c := &Contract{
		Name:          "json-test",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.10)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(12)},
		Fees:          []FixedFee{{Name: "metering", Amount: units.CurrencyUnits(500)}},
	}
	bill, err := ComputeBill(c, flatLoad(24, 10000), BillingInput{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := bill.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("bill JSON not parseable: %v", err)
	}
	if decoded["contract"] != "json-test" {
		t.Error("contract name missing")
	}
	if decoded["total"].(float64) != bill.Total.Float() {
		t.Error("total mismatch")
	}
	lines := decoded["lines"].([]interface{})
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	last := lines[2].(map[string]interface{})
	if last["component"] != "flat-fee" {
		t.Errorf("fee component = %v", last["component"])
	}
	first := lines[0].(map[string]interface{})
	if first["component"] != "fixed-tariff" {
		t.Errorf("tariff component = %v", first["component"])
	}
}

func TestTypologyTree(t *testing.T) {
	tree := Typology()
	leaves := tree.Leaves()
	if len(leaves) != 6 {
		t.Fatalf("typology has %d leaves, want 6", len(leaves))
	}
	// Every leaf maps to a distinct component.
	seen := map[Component]bool{}
	for _, l := range leaves {
		if l.Component < 0 {
			t.Errorf("leaf %q must carry a component", l.Title)
		}
		if seen[l.Component] {
			t.Errorf("duplicate component %v", l.Component)
		}
		seen[l.Component] = true
		if l.Encourages == "" {
			t.Errorf("leaf %q must state its incentive", l.Title)
		}
	}
	// Three branches under the root.
	if len(tree.Children) != 3 {
		t.Errorf("branches = %d, want 3", len(tree.Children))
	}
	if n := tree.Find("Powerband"); n == nil || !n.IsLeaf() {
		t.Error("Find(Powerband)")
	}
	if tree.Find("nonexistent") != nil {
		t.Error("Find should return nil for unknown title")
	}
	// Walk depth sanity: root 0, branches 1, leaves 2.
	tree.Walk(func(n *TypologyNode, depth int) {
		if n.IsLeaf() && depth != 2 {
			t.Errorf("leaf %q at depth %d", n.Title, depth)
		}
	})
}

// Property: the bill total always equals the exact sum of line items.
func TestQuickBillTotalIsSumOfLines(t *testing.T) {
	c := &Contract{
		Name:          "q",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.09)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(11)},
		Powerbands:    []*demand.Powerband{demand.MustNewPowerband(500, 9000, 0.4, 1.1)},
	}
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		l := timeseries.MustNewPower(t0, time.Hour, samples)
		bill, err := ComputeBill(c, l, BillingInput{})
		if err != nil {
			return false
		}
		var sum units.Money
		for _, line := range bill.Lines {
			sum += line.Amount
		}
		return sum == bill.Total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: power capping can only reduce (or keep) the bill under a
// contract of fixed tariff + demand charge + upper powerband.
func TestQuickCappingNeverRaisesBill(t *testing.T) {
	band, _ := demand.NewUpperPowerband(8000, 2)
	c := &Contract{
		Name:          "q2",
		Tariffs:       []tariff.Tariff{tariff.MustNewFixed(0.09)},
		DemandCharges: []*demand.Charge{demand.SimpleCharge(11)},
		Powerbands:    []*demand.Powerband{band},
	}
	f := func(raw []uint16, capRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]units.Power, len(raw))
		for i, v := range raw {
			samples[i] = units.Power(v)
		}
		l := timeseries.MustNewPower(t0, time.Hour, samples)
		capped := l.ClampAbove(units.Power(capRaw))
		b1, err1 := ComputeBill(c, l, BillingInput{})
		b2, err2 := ComputeBill(c, capped, BillingInput{})
		if err1 != nil || err2 != nil {
			return false
		}
		return b2.Total <= b1.Total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func dayNightSchedule() *calendar.Schedule {
	return calendar.DayNight(8, 20, nil)
}
