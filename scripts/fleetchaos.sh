#!/usr/bin/env bash
# Fleet chaos harness: boots scserved backends behind scchaos fault
# proxies, fronts them with scroute, and drives seeded load through the
# router while scheduled scload events flip a proxy into blackhole or
# brownout mode mid-run. It asserts the brownout-proofing machinery
# end to end:
#
#   blackhole — a backend that stops answering entirely is detected by
#     per-try timeouts and failing polls, ejected within the poll
#     window, and the post-ejection error rate stays under 1% with
#     zero 5xx after readmission settles.
#   brownout  — a backend answering 10x slow (400ms +/- 100ms per
#     write vs a millisecond-scale baseline) is bridged by hedged
#     requests until the poll signal pulls it from rotation; admitted
#     p99 stays within 2x the healthy baseline (+25ms measurement
#     grace), hedges demonstrably engage, and the retry/hedge budget
#     caps attempted/offered at 1.2x.
#
# Usage:
#   scripts/fleetchaos.sh accept   # 3 backends, blackhole + brownout
#                                  # phases, writes ACCEPTANCE_fleetchaos.md
#   scripts/fleetchaos.sh smoke    # 2 backends + 1 proxy, short
#                                  # blackhole run for CI, writes
#                                  # fleetchaos-summary.md
#
# The router runs with a deliberately low try-timeout ceiling (300ms)
# and poll interval (250ms): the ceiling is the gray-failure detector
# (a browned 400ms backend cannot answer inside it) and the poll
# timeout inherits the interval, so probes through a faulted proxy
# fail fast and pull the backend from rotation within one poll period.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-accept}"
BIN=bin
BASE=19300
ROUTER_PORT=19320
ADMIN_PORT=19330
FRONT="http://127.0.0.1:$ROUTER_PORT"
ADMIN="http://127.0.0.1:$ADMIN_PORT"
TMP="$(mktemp -d)"

go build -o $BIN/scserved ./cmd/scserved
go build -o $BIN/scroute ./cmd/scroute
go build -o $BIN/scload ./cmd/scload
go build -o $BIN/scchaos ./cmd/scchaos

PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

wait_ready() { # url
    for _ in $(seq 1 100); do
        if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "fleetchaos: $1 never became ready" >&2
    return 1
}

start_backend() { # port
    $BIN/scserved -addr "127.0.0.1:$1" -max-concurrent 4 -queue 64 \
        -cache 64 -timeout 20s -log-format off &
    PIDS+=($!)
    wait_ready "http://127.0.0.1:$1/readyz"
}

start_chaos() { # proxy specs...
    $BIN/scchaos -admin "127.0.0.1:$ADMIN_PORT" -seed 7 "$@" &
    PIDS+=($!)
    wait_ready "$ADMIN/healthz"
}

start_router() { # backend-urls
    $BIN/scroute -addr "127.0.0.1:$ROUTER_PORT" -backends "$1" \
        -poll-interval 250ms -failure-threshold 3 -open-timeout 2s \
        -request-timeout 6s -try-timeout-floor 100ms -try-timeout-ceil 300ms \
        -hedge-delay-floor 25ms -retry-budget-ratio 0.1 -retry-budget-burst 10 \
        -log-format off &
    PIDS+=($!)
    wait_ready "$FRONT/readyz"
}

stop_all() {
    for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    PIDS=()
}

# router_metric <family> — sum the family's series (labels collapsed).
router_metric() {
    curl -fsS "$FRONT/metrics" | awk -v n="$1" \
        '$1 == n || index($1, n "{") == 1 {s += $2} END {printf "%d\n", s + 0}'
}

# fault_event <offset> <json> — an scload -event that POSTs a fault
# flip to the scchaos admin API at a run-clock offset.
fault_event() { printf '%s|%s/v1/fault|%s' "$1" "$ADMIN" "$2"; }

# run_load <label> <rps> <duration> <seed> [extra scload flags...]
run_load() {
    local label=$1 rps=$2 dur=$3 seed=$4
    shift 4
    echo "== $label: $rps rps for $dur against $FRONT"
    $BIN/scload -target "$FRONT" -rps "$rps" -duration "$dur" -seed "$seed" \
        -specs 24 -profiles quickstart-month "$@" | tee "$TMP/$label.txt"
}

p99_ms() { sed -n 's/^admitted p99 across endpoints: \([0-9.]*\) ms$/\1/p' "$TMP/$1.txt"; }

if [ "$MODE" = smoke ]; then
    OUT=fleetchaos-summary.md
    DUR="${FLEETCHAOS_DURATION:-12s}"
    start_backend $((BASE + 1))
    start_backend $((BASE + 2))
    start_chaos -proxy "p1=127.0.0.1:$((BASE + 11))@127.0.0.1:$((BASE + 1))"
    start_router "http://127.0.0.1:$((BASE + 11)),http://127.0.0.1:$((BASE + 2))"
    run_load smoke 40 "$DUR" 5 \
        -event "$(fault_event 3s '{"proxy":"p1","mode":"blackhole"}')" \
        -event "$(fault_event 8s '{"proxy":"p1","mode":"pass"}')" \
        -assert-error-rate-after 5s:0.02 -assert-zero-5xx-after 6s -assert-p99 5s
    HEDGES=$(router_metric scroute_hedges_total)
    TRY_TIMEOUTS=$(router_metric scroute_try_timeouts_total)
    EJECTIONS=$(router_metric scroute_backend_ejections_total)
    {
        echo "# fleetchaos smoke (2 backends, 1 chaos proxy, $DUR)"
        echo
        echo "Blackhole on p1 at 3s, restored at 8s. Error rate after 5s < 2%,"
        echo "zero 5xx after 6s, admitted p99 under 5s."
        echo
        echo '```'
        cat "$TMP/smoke.txt"
        echo '```'
        echo
        echo "Router: $TRY_TIMEOUTS per-try timeouts, $EJECTIONS ejections, $HEDGES hedges."
    } >"$OUT"
    echo "fleetchaos smoke: PASS — wrote $OUT"
    exit 0
fi

OUT="${FLEETCHAOS_OUT:-ACCEPTANCE_fleetchaos.md}"
PROXIES="http://127.0.0.1:$((BASE + 11)),http://127.0.0.1:$((BASE + 12)),http://127.0.0.1:$((BASE + 13))"

boot_fleet() {
    start_backend $((BASE + 1))
    start_backend $((BASE + 2))
    start_backend $((BASE + 3))
    start_chaos \
        -proxy "p1=127.0.0.1:$((BASE + 11))@127.0.0.1:$((BASE + 1))" \
        -proxy "p2=127.0.0.1:$((BASE + 12))@127.0.0.1:$((BASE + 2))" \
        -proxy "p3=127.0.0.1:$((BASE + 13))@127.0.0.1:$((BASE + 3))"
    start_router "$PROXIES"
}

# ---- Phase 1: blackhole a backend mid-load. --------------------------
# p1 stops answering at 4s: per-try timeouts burn its breaker while
# hedges bridge the in-flight tail, failing polls pull it from rotation
# within a poll period, and after the restore at 10s a half-open probe
# readmits it. The windowed assertions are the acceptance criteria:
# error rate < 1% once the ejection window has passed, zero 5xx after
# readmission settles.
boot_fleet
run_load blackhole 60 18s 11 \
    -event "$(fault_event 4s '{"proxy":"p1","mode":"blackhole"}')" \
    -event "$(fault_event 10s '{"proxy":"p1","mode":"pass"}')" \
    -assert-error-rate-after 7s:0.01 -assert-zero-5xx-after 13s -assert-p99 5s
BH_TRY_TIMEOUTS=$(router_metric scroute_try_timeouts_total)
BH_EJECTIONS=$(router_metric scroute_backend_ejections_total)
BH_HEDGES=$(router_metric scroute_hedges_total)
BH_ROUTER_5XX=$(grep -oE '5xx: [0-9]+ \(router: [0-9]+' "$TMP/blackhole.txt" | grep -oE '[0-9]+$')
stop_all

# ---- Phase 2: 10x brownout. ------------------------------------------
# Fresh fleet: a healthy run fixes the baseline, then the same load
# repeats with p1 browned out (every write delayed 400ms +/- 100ms)
# from 3s to the end. The try-timeout ceiling (300ms) sits below the
# browned latency, so p1 cannot answer inside a try; hedges mask the
# window until failing polls eject it. Admitted p99 must stay within
# 2x the healthy baseline (+25ms grace for millisecond-scale noise),
# hedges must engage, and the budget must cap attempted/offered.
boot_fleet
run_load baseline 60 12s 21 -assert-zero-5xx -assert-p99 5s
BASE_P99="$(p99_ms baseline)"
BOUND_MS=$(awk -v b="$BASE_P99" 'BEGIN{printf "%d", 2*b + 25}')
run_load brownout 60 30s 22 \
    -event "$(fault_event 3s '{"proxy":"p1","mode":"latency","latency_ms":400,"jitter_ms":100}')" \
    -assert-error-rate-after 6s:0.01 -assert-p99 "${BOUND_MS}ms"
BR_P99="$(p99_ms brownout)"
BR_HEDGES=$(router_metric scroute_hedges_total)
BR_HEDGE_WINS=$(router_metric scroute_hedge_wins_total)
BR_BUDGET_DENIED=$(router_metric scroute_retry_budget_exhausted_total)
ATTEMPTED=$(router_metric scroute_backend_requests_total)
OFFERED=$(router_metric scroute_requests_total)
stop_all

# ---- Assertions beyond scload's own. ---------------------------------
fail=0
if [ "$BH_EJECTIONS" -lt 1 ]; then
    echo "fleetchaos: FAIL: blackholed backend was never ejected" >&2
    fail=1
fi
if [ "$BR_HEDGES" -lt 1 ]; then
    echo "fleetchaos: FAIL: no hedges engaged during the brownout" >&2
    fail=1
fi
if ! awk -v a="$ATTEMPTED" -v o="$OFFERED" 'BEGIN{exit !(o > 0 && a <= 1.2 * o)}'; then
    echo "fleetchaos: FAIL: attempted/offered $ATTEMPTED/$OFFERED above 1.2" >&2
    fail=1
fi
RATIO=$(awk -v a="$ATTEMPTED" -v o="$OFFERED" 'BEGIN{printf "%.3f", o ? a / o : 0}')

{
    echo "# Fleet chaos acceptance: brownout-proof routing"
    echo
    echo "Seeded open-loop load (scload, quickstart-month bills, 24 specs)"
    echo "through scroute fronting 3 scserved backends, each behind an"
    echo "scchaos fault proxy. Router: 300ms try-timeout ceiling, 250ms"
    echo "polls, 25ms hedge-delay floor, retry budget ratio 0.1 burst 10."
    echo
    echo "## Phase 1: blackhole (60 rps, 18s; p1 dark from 4s to 10s)"
    echo
    echo '```'
    cat "$TMP/blackhole.txt"
    echo '```'
    echo
    echo "Asserted by scload: error rate after 7s < 1%, zero 5xx after 13s."
    echo "Router counters: $BH_TRY_TIMEOUTS per-try timeouts, $BH_EJECTIONS"
    echo "ejections, $BH_HEDGES hedges, $BH_ROUTER_5XX router-originated 5xx."
    echo
    echo "## Phase 2: 10x brownout (60 rps; p1 +400ms/write from 3s on)"
    echo
    echo "Healthy baseline (12s):"
    echo
    echo '```'
    cat "$TMP/baseline.txt"
    echo '```'
    echo
    echo "Browned run (30s):"
    echo
    echo '```'
    cat "$TMP/brownout.txt"
    echo '```'
    echo
    echo "| check | value | bound | verdict |"
    echo "|---|---|---|---|"
    echo "| admitted p99 (browned) | ${BR_P99} ms | 2x baseline ${BASE_P99} ms + 25ms = ${BOUND_MS} ms | asserted by scload |"
    echo "| hedges engaged | $BR_HEDGES ($BR_HEDGE_WINS won) | > 0 | $([ "$BR_HEDGES" -ge 1 ] && echo pass || echo FAIL) |"
    echo "| attempted/offered | $ATTEMPTED/$OFFERED = $RATIO | <= 1.2 | $(awk -v a="$ATTEMPTED" -v o="$OFFERED" 'BEGIN{print (o > 0 && a <= 1.2 * o) ? "pass" : "FAIL"}') |"
    echo "| budget refusals | $BR_BUDGET_DENIED | informational | - |"
    echo
    if [ "$fail" = 0 ]; then
        echo "Verdict: PASS — a dark backend is ejected inside the poll window"
        echo "with < 1% errors after it and zero 5xx once readmission settles;"
        echo "a 10x browned backend is bridged by hedges and then ejected, with"
        echo "admitted p99 inside 2x the healthy baseline and the retry/hedge"
        echo "budget holding attempted/offered to $RATIO."
    else
        echo "Verdict: FAIL — see run log."
    fi
} >"$OUT"

echo
echo "fleetchaos: wrote $OUT"
exit $fail
