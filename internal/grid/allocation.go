package grid

// Infrastructure cost allocation — the economics behind §1's opening:
// "the transmission and distribution grid infrastructure is sized and
// operated to meet the peak demand needs (kW) of the consumers", and
// ESPs recover those costs "by including demand charges ... where a
// consumer that has [a] peakier load profile shares the higher cost of
// the investment."
//
// The model: a feeder's capacity cost is driven by the coincident system
// peak (the one interval where the sum of all consumers peaks). Two
// standard allocation rules are implemented:
//
//   - CoincidentPeak: each consumer pays in proportion to its draw at
//     the system-peak interval (pure cost causation);
//   - NonCoincidentPeak: each consumer pays in proportion to its own
//     individual peak (what a simple demand charge actually measures).
//
// The gap between the two is the classic critique of demand charges: a
// consumer whose private peak is off the system peak overpays under
// non-coincident allocation.

import (
	"errors"
	"fmt"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// AllocationRule selects how capacity cost is split.
type AllocationRule int

// Allocation rules.
const (
	// CoincidentPeak allocates by draw at the system-peak interval.
	CoincidentPeak AllocationRule = iota
	// NonCoincidentPeak allocates by each consumer's own peak.
	NonCoincidentPeak
)

// String returns the rule name.
func (r AllocationRule) String() string {
	switch r {
	case CoincidentPeak:
		return "coincident-peak"
	case NonCoincidentPeak:
		return "non-coincident-peak"
	default:
		return fmt.Sprintf("AllocationRule(%d)", int(r))
	}
}

// Consumer is one load on the shared feeder.
type Consumer struct {
	Name string
	Load *timeseries.PowerSeries
}

// AllocationShare is one consumer's outcome.
type AllocationShare struct {
	Name string
	// AtSystemPeak is the consumer's draw at the coincident peak.
	AtSystemPeak units.Power
	// OwnPeak is the consumer's individual peak.
	OwnPeak units.Power
	// Share is the fraction of the capacity cost allocated.
	Share float64
	// Cost is the allocated amount.
	Cost units.Money
}

// Allocation is the result of splitting a capacity cost.
type Allocation struct {
	Rule AllocationRule
	// SystemPeak is the coincident peak of the summed load.
	SystemPeak units.Power
	Shares     []AllocationShare
}

// AllocateCapacityCost splits capacityCost across the consumers under
// the rule. All loads must be aligned.
func AllocateCapacityCost(consumers []Consumer, capacityCost units.Money, rule AllocationRule) (*Allocation, error) {
	if len(consumers) == 0 {
		return nil, errors.New("grid: no consumers")
	}
	if capacityCost < 0 {
		return nil, errors.New("grid: capacity cost must be non-negative")
	}
	total := consumers[0].Load
	var err error
	for _, c := range consumers[1:] {
		total, err = total.Add(c.Load)
		if err != nil {
			return nil, fmt.Errorf("grid: consumer %q misaligned: %w", c.Name, err)
		}
	}
	systemPeak, peakAt, err := total.Peak()
	if err != nil {
		return nil, err
	}
	out := &Allocation{Rule: rule, SystemPeak: systemPeak}
	var denom float64
	for _, c := range consumers {
		idx, _ := c.Load.IndexAt(peakAt)
		atPeak := c.Load.At(idx)
		own, _, err := c.Load.Peak()
		if err != nil {
			return nil, err
		}
		share := AllocationShare{Name: c.Name, AtSystemPeak: atPeak, OwnPeak: own}
		switch rule {
		case CoincidentPeak:
			denom += float64(atPeak)
		case NonCoincidentPeak:
			denom += float64(own)
		default:
			return nil, fmt.Errorf("grid: unknown allocation rule %d", int(rule))
		}
		out.Shares = append(out.Shares, share)
	}
	if denom <= 0 {
		return nil, errors.New("grid: consumers draw no power at the allocation basis")
	}
	for i := range out.Shares {
		s := &out.Shares[i]
		switch rule {
		case CoincidentPeak:
			s.Share = float64(s.AtSystemPeak) / denom
		case NonCoincidentPeak:
			s.Share = float64(s.OwnPeak) / denom
		}
		s.Cost = capacityCost.MulFloat(s.Share)
	}
	return out, nil
}

// ShareOf returns the named consumer's share, or an error.
func (a *Allocation) ShareOf(name string) (AllocationShare, error) {
	for _, s := range a.Shares {
		if s.Name == name {
			return s, nil
		}
	}
	return AllocationShare{}, fmt.Errorf("grid: no consumer %q in allocation", name)
}
