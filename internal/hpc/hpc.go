// Package hpc models the supercomputing facility itself: compute nodes
// with power states (DVFS), the machine room's cooling overhead (PUE),
// batch jobs with power profiles, and synthetic workload generation
// calibrated to the magnitudes the paper reports (facility feeders of
// 10–60 MW at the large US sites; 40 kW to 10+ MW across the Top500).
//
// The package supplies the demand side of every experiment: either
// job-level traces scheduled by package sched, or statistically shaped
// facility load profiles for billing studies where job-level detail is
// irrelevant.
package hpc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/timeseries"
	"repro/internal/units"
)

// PowerState is one DVFS operating point of a node: relative frequency
// and the node power drawn at full load in this state.
type PowerState struct {
	// Name of the state ("turbo", "nominal", "powersave").
	Name string
	// FreqFactor is performance relative to nominal (1.0 = nominal).
	FreqFactor float64
	// Power is the node's full-load draw in this state.
	Power units.Power
}

// NodeSpec describes one compute-node model.
type NodeSpec struct {
	// Name of the node model.
	Name string
	// IdlePower is the draw of a powered-on but idle node.
	IdlePower units.Power
	// States are the DVFS operating points, ordered fastest first.
	// States[0] is the default full-power state.
	States []PowerState
	// Cores per node (scheduling granularity is whole nodes; cores
	// inform job sizing only).
	Cores int
}

// Validate checks the node spec.
func (n *NodeSpec) Validate() error {
	if n.IdlePower < 0 {
		return errors.New("hpc: idle power must be non-negative")
	}
	if len(n.States) == 0 {
		return errors.New("hpc: node needs at least one power state")
	}
	for i, s := range n.States {
		if s.FreqFactor <= 0 {
			return fmt.Errorf("hpc: state %d has non-positive frequency factor", i)
		}
		if s.Power < n.IdlePower {
			return fmt.Errorf("hpc: state %d full-load power below idle power", i)
		}
	}
	if n.Cores <= 0 {
		return errors.New("hpc: node needs at least one core")
	}
	return nil
}

// MaxPower returns the node's highest full-load draw across states.
func (n *NodeSpec) MaxPower() units.Power {
	var best units.Power
	for _, s := range n.States {
		if s.Power > best {
			best = s.Power
		}
	}
	return best
}

// DefaultNode returns a node spec representative of a 2016-era HPC node:
// dual-socket, ~350 W idle-inclusive full load, with powersave states.
func DefaultNode() *NodeSpec {
	return &NodeSpec{
		Name:      "2s-xeon",
		IdlePower: 0.120,
		States: []PowerState{
			{Name: "nominal", FreqFactor: 1.0, Power: 0.350},
			{Name: "balanced", FreqFactor: 0.85, Power: 0.270},
			{Name: "powersave", FreqFactor: 0.65, Power: 0.200},
		},
		Cores: 32,
	}
}

// PUEModel converts IT (compute) power into total facility power.
// Real facilities have load-dependent PUE — cooling is less efficient at
// partial load — so the model is affine: total = Fixed + IT × Factor.
type PUEModel struct {
	// Fixed is the load-independent facility overhead (lighting, UPS
	// losses, baseline cooling).
	Fixed units.Power
	// Factor multiplies IT power (≥ 1; 1.1 is a modern efficient SC).
	Factor float64
}

// Validate checks the model.
func (p PUEModel) Validate() error {
	if p.Factor < 1 {
		return errors.New("hpc: PUE factor must be >= 1")
	}
	if p.Fixed < 0 {
		return errors.New("hpc: fixed overhead must be non-negative")
	}
	return nil
}

// Total returns facility power for a given IT power.
func (p PUEModel) Total(it units.Power) units.Power {
	return p.Fixed + units.Power(float64(it)*p.Factor)
}

// EffectivePUE returns total/IT at the given IT power (∞ avoided by
// returning Factor for zero IT).
func (p PUEModel) EffectivePUE(it units.Power) float64 {
	if it <= 0 {
		return p.Factor
	}
	return float64(p.Total(it)) / float64(it)
}

// Machine is a homogeneous cluster: N nodes of one spec plus a PUE model.
type Machine struct {
	Name  string
	Node  *NodeSpec
	Nodes int
	PUE   PUEModel
}

// NewMachine validates and returns a machine.
func NewMachine(name string, node *NodeSpec, nodes int, pue PUEModel) (*Machine, error) {
	if node == nil {
		return nil, errors.New("hpc: machine needs a node spec")
	}
	if err := node.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, errors.New("hpc: machine needs at least one node")
	}
	if err := pue.Validate(); err != nil {
		return nil, err
	}
	return &Machine{Name: name, Node: node, Nodes: nodes, PUE: pue}, nil
}

// PeakFacilityPower returns the feeder-level peak: all nodes at max
// state through the PUE model.
func (m *Machine) PeakFacilityPower() units.Power {
	return m.PUE.Total(units.Power(float64(m.Node.MaxPower()) * float64(m.Nodes)))
}

// IdleFacilityPower returns facility power with every node idle.
func (m *Machine) IdleFacilityPower() units.Power {
	return m.PUE.Total(units.Power(float64(m.Node.IdlePower) * float64(m.Nodes)))
}

// Top50Machine returns a machine representative of the paper's Top50
// target population: ~10 MW IT load (≈28600 nodes at 350 W) with an
// efficient cooling plant, giving a feeder peak near 12 MW.
func Top50Machine() *Machine {
	m, err := NewMachine("top50-class", DefaultNode(), 28600, PUEModel{Fixed: 800, Factor: 1.08})
	if err != nil {
		panic(err)
	}
	return m
}

// SmallSiteMachine returns a machine representative of the paper's
// "smaller site" (rank ~167 on the 2015 Top500): ~1 MW IT load.
func SmallSiteMachine() *Machine {
	m, err := NewMachine("rank167-class", DefaultNode(), 2860, PUEModel{Fixed: 150, Factor: 1.25})
	if err != nil {
		panic(err)
	}
	return m
}

// Job is one batch job.
type Job struct {
	// ID is unique within a workload.
	ID int
	// Arrival is when the job enters the queue, as an offset from the
	// workload start.
	Arrival time.Duration
	// Walltime is the requested (limit) runtime.
	Walltime time.Duration
	// Runtime is the actual runtime at nominal frequency (≤ Walltime).
	Runtime time.Duration
	// Nodes is the number of whole nodes requested.
	Nodes int
	// PowerFraction is the job's average draw per node as a fraction of
	// the node's full-load state power (0,1]; CPU-bound ≈ 1, memory- or
	// IO-bound lower.
	PowerFraction float64
	// Checkpointable marks jobs that can be preempted and resumed at a
	// bounded cost (relevant to DR strategies).
	Checkpointable bool
}

// Validate checks job fields.
func (j *Job) Validate() error {
	if j.Arrival < 0 {
		return errors.New("hpc: job arrival must be non-negative")
	}
	if j.Runtime <= 0 || j.Walltime <= 0 {
		return errors.New("hpc: job runtime and walltime must be positive")
	}
	if j.Runtime > j.Walltime {
		return errors.New("hpc: job runtime exceeds walltime")
	}
	if j.Nodes <= 0 {
		return errors.New("hpc: job needs at least one node")
	}
	if j.PowerFraction <= 0 || j.PowerFraction > 1 {
		return errors.New("hpc: power fraction must be in (0,1]")
	}
	return nil
}

// NodePower returns the job's per-node draw when running in the given
// power state: idle power plus the job's fraction of the dynamic range.
func (j *Job) NodePower(spec *NodeSpec, state PowerState) units.Power {
	dynamic := float64(state.Power - spec.IdlePower)
	return spec.IdlePower + units.Power(dynamic*j.PowerFraction)
}

// WorkloadConfig parameterizes the synthetic trace generator.
type WorkloadConfig struct {
	// Span is the length of the generated trace.
	Span time.Duration
	// TargetUtilization is the long-run fraction of node-hours demanded
	// (SCs run hot: the paper stresses "high system utilization"; 0.9+
	// is typical).
	TargetUtilization float64
	// MeanRuntime is the mean job runtime (lognormal).
	MeanRuntime time.Duration
	// MaxJobFraction caps single-job size as a fraction of the machine.
	MaxJobFraction float64
	// CheckpointableFraction of jobs can be checkpointed.
	CheckpointableFraction float64
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultWorkload returns a one-week, 90 %-utilization configuration.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		Span:                   7 * 24 * time.Hour,
		TargetUtilization:      0.90,
		MeanRuntime:            4 * time.Hour,
		MaxJobFraction:         0.25,
		CheckpointableFraction: 0.5,
		Seed:                   1,
	}
}

// GenerateWorkload produces a synthetic job trace for the machine. Jobs
// arrive by a Poisson process whose rate is chosen so expected node-hour
// demand matches TargetUtilization; runtimes are lognormal; node counts
// follow the power-of-two-heavy distribution observed in production HPC
// traces; power fractions are beta-shaped around 0.75.
func GenerateWorkload(m *Machine, cfg WorkloadConfig) ([]*Job, error) {
	if m == nil {
		return nil, errors.New("hpc: nil machine")
	}
	if cfg.Span <= 0 {
		return nil, errors.New("hpc: workload span must be positive")
	}
	if cfg.TargetUtilization <= 0 || cfg.TargetUtilization > 1 {
		return nil, errors.New("hpc: target utilization must be in (0,1]")
	}
	if cfg.MeanRuntime <= 0 {
		return nil, errors.New("hpc: mean runtime must be positive")
	}
	if cfg.MaxJobFraction <= 0 || cfg.MaxJobFraction > 1 {
		return nil, errors.New("hpc: max job fraction must be in (0,1]")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	maxNodes := int(float64(m.Nodes) * cfg.MaxJobFraction)
	if maxNodes < 1 {
		maxNodes = 1
	}
	meanNodes := meanJobNodes(maxNodes)
	// Poisson arrival rate so that rate × E[runtime] × E[nodes] equals
	// the demanded node-hours.
	demandNodeHours := float64(m.Nodes) * cfg.Span.Hours() * cfg.TargetUtilization
	perJobNodeHours := cfg.MeanRuntime.Hours() * meanNodes
	expectedJobs := demandNodeHours / perJobNodeHours
	meanInterarrival := cfg.Span.Hours() / expectedJobs

	var jobs []*Job
	id := 0
	at := 0.0 // hours
	for {
		at += rng.ExpFloat64() * meanInterarrival
		if at >= cfg.Span.Hours() {
			break
		}
		runtime := lognormalDuration(rng, cfg.MeanRuntime)
		j := &Job{
			ID:             id,
			Arrival:        time.Duration(at * float64(time.Hour)),
			Runtime:        runtime,
			Walltime:       time.Duration(float64(runtime) * (1.1 + rng.Float64())),
			Nodes:          sampleJobNodes(rng, maxNodes),
			PowerFraction:  samplePowerFraction(rng),
			Checkpointable: rng.Float64() < cfg.CheckpointableFraction,
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("hpc: generated invalid job: %w", err)
		}
		jobs = append(jobs, j)
		id++
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	return jobs, nil
}

// lognormalDuration draws a lognormal duration with the given mean and a
// shape typical of HPC runtimes (sigma 1.0, capped at 10× mean).
func lognormalDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	const sigma = 1.0
	mu := math.Log(mean.Hours()) - sigma*sigma/2
	h := math.Exp(mu + sigma*rng.NormFloat64())
	if h > 10*mean.Hours() {
		h = 10 * mean.Hours()
	}
	if h < 1.0/60 {
		h = 1.0 / 60 // one minute floor
	}
	return time.Duration(h * float64(time.Hour))
}

// sampleJobNodes draws a node count: mostly small powers of two, with a
// heavy tail of large jobs up to maxNodes.
func sampleJobNodes(rng *rand.Rand, maxNodes int) int {
	u := rng.Float64()
	var n int
	switch {
	case u < 0.5: // small jobs: 1..16 nodes
		n = 1 << rng.Intn(5)
	case u < 0.85: // medium: 32..256
		n = 32 << rng.Intn(4)
	default: // large: up to the cap
		n = maxNodes/4 + rng.Intn(maxNodes/2+1)
	}
	if n > maxNodes {
		n = maxNodes
	}
	if n < 1 {
		n = 1
	}
	return n
}

// meanJobNodes approximates the expectation of sampleJobNodes, used for
// arrival-rate calibration.
func meanJobNodes(maxNodes int) float64 {
	// E[small] = (1+2+4+8+16)/5 = 6.2, weight 0.5.
	// E[medium] = (32+64+128+256)/4 = 120, weight 0.35.
	// E[large] ≈ maxNodes/2, weight 0.15.
	e := 0.5*6.2 + 0.35*120 + 0.15*float64(maxNodes)/2
	if e > float64(maxNodes) {
		e = float64(maxNodes)
	}
	return e
}

// samplePowerFraction draws a job's power intensity: beta(5,2)-like,
// mean ≈ 0.71, support (0.2, 1].
func samplePowerFraction(rng *rand.Rand) float64 {
	// Sum of two uniforms biased high, clamped.
	f := 0.2 + 0.8*math.Sqrt(rng.Float64())
	if f > 1 {
		f = 1
	}
	return f
}

// TotalNodeHours sums node-hours over a trace.
func TotalNodeHours(jobs []*Job) float64 {
	var nh float64
	for _, j := range jobs {
		nh += float64(j.Nodes) * j.Runtime.Hours()
	}
	return nh
}

// LoadProfileConfig parameterizes SyntheticFacilityLoad, the statistical
// (non-job-level) facility load generator used by billing experiments.
type LoadProfileConfig struct {
	// Start and Span delimit the profile; Interval is the metering step.
	Start    time.Time
	Span     time.Duration
	Interval time.Duration
	// Base is the facility's average load.
	Base units.Power
	// PeakToAverage sets how peaky the profile is (≥ 1). A flat
	// profile has 1.0; the paper's demand-charge discussion sweeps this.
	PeakToAverage float64
	// DiurnalSwing is the relative amplitude of the day/night cycle
	// (0 = none; SCs are famously flat compared to offices).
	DiurnalSwing float64
	// NoiseSigma is the relative σ of sample-to-sample noise.
	NoiseSigma float64
	// Seed drives the deterministic generator.
	Seed int64
}

// SyntheticFacilityLoad generates a facility load profile with a
// controlled peak-to-average ratio: a base load with optional diurnal
// swing and noise, plus rare short spikes sized so the profile's peak is
// close to Base × PeakToAverage (the spike pattern models benchmark runs
// and acceptance tests — the events the paper says sites phone in).
func SyntheticFacilityLoad(cfg LoadProfileConfig) (*timeseries.PowerSeries, error) {
	if cfg.Span <= 0 || cfg.Interval <= 0 {
		return nil, errors.New("hpc: span and interval must be positive")
	}
	if cfg.Base <= 0 {
		return nil, errors.New("hpc: base load must be positive")
	}
	if cfg.PeakToAverage < 1 {
		return nil, errors.New("hpc: peak-to-average must be >= 1")
	}
	if cfg.NoiseSigma < 0 || cfg.DiurnalSwing < 0 {
		return nil, errors.New("hpc: noise and diurnal swing must be non-negative")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int(cfg.Span / cfg.Interval)
	if n <= 0 {
		return nil, errors.New("hpc: span shorter than interval")
	}
	samples := make([]units.Power, n)
	perDay := int((24 * time.Hour) / cfg.Interval)
	if perDay < 1 {
		perDay = 1
	}
	base := float64(cfg.Base)
	for i := range samples {
		v := base
		if cfg.DiurnalSwing > 0 {
			phase := 2 * math.Pi * float64(i%perDay) / float64(perDay)
			v += base * cfg.DiurnalSwing * math.Sin(phase-math.Pi/2)
		}
		if cfg.NoiseSigma > 0 {
			v += base * cfg.NoiseSigma * rng.NormFloat64()
		}
		if v < 0 {
			v = 0
		}
		samples[i] = units.Power(v)
	}
	// Inject spikes: roughly one per day, an hour long, reaching the
	// target peak.
	if cfg.PeakToAverage > 1 {
		peak := base * cfg.PeakToAverage
		spikeLen := int(time.Hour / cfg.Interval)
		if spikeLen < 1 {
			spikeLen = 1
		}
		days := n / perDay
		if days < 1 {
			days = 1
		}
		for d := 0; d < days; d++ {
			at := d*perDay + rng.Intn(perDay)
			for k := 0; k < spikeLen && at+k < n; k++ {
				samples[at+k] = units.Power(peak)
			}
		}
		// Guarantee at least one exact peak even for sub-day spans.
		at := rng.Intn(n)
		samples[at] = units.Power(peak)
	}
	return timeseries.NewPower(cfg.Start, cfg.Interval, samples)
}
