package timeseries

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/units"
)

// randSeries builds a deterministic random series for partition tests.
func randSeries(t *testing.T, start time.Time, interval time.Duration, n int, seed int64) *PowerSeries {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	samples := make([]units.Power, n)
	for i := range samples {
		samples[i] = units.Power(1000 + 500*rng.Float64())
	}
	return MustNewPower(start, interval, samples)
}

// assertBlocksMatchSplit checks AppendBlocks and Months against the
// canonical SplitMonths partition, sample by sample.
func assertBlocksMatchSplit(t *testing.T, s *PowerSeries) {
	t.Helper()
	split := s.SplitMonths()
	blocks := s.Blocks()
	months := s.Months()
	if len(blocks) != len(split) || len(months) != len(split) {
		t.Fatalf("partition sizes differ: split %d, blocks %d, months %d",
			len(split), len(blocks), len(months))
	}
	offset := 0
	for i, m := range split {
		b := blocks[i]
		if !b.Start.Equal(m.Start()) {
			t.Fatalf("month %d: block start %v, split start %v", i, b.Start, m.Start())
		}
		if b.Offset != offset {
			t.Fatalf("month %d: block offset %d, want %d", i, b.Offset, offset)
		}
		if len(b.Samples) != m.Len() {
			t.Fatalf("month %d: block has %d samples, split has %d", i, len(b.Samples), m.Len())
		}
		for j := range b.Samples {
			if b.Samples[j] != m.At(j) {
				t.Fatalf("month %d sample %d: block %v, split %v", i, j, b.Samples[j], m.At(j))
			}
		}
		v := months[i]
		if !v.Start().Equal(m.Start()) || v.Interval() != m.Interval() || v.Len() != m.Len() {
			t.Fatalf("month %d: Months() view differs from split", i)
		}
		for j := 0; j < v.Len(); j++ {
			if v.At(j) != m.At(j) {
				t.Fatalf("month %d sample %d: view %v, split %v", i, j, v.At(j), m.At(j))
			}
		}
		peak, _, err := m.Peak()
		if err != nil {
			t.Fatalf("month %d: split peak: %v", i, err)
		}
		if got := b.Peak(); got != peak {
			t.Fatalf("month %d: block peak %v, split peak %v", i, got, peak)
		}
		offset += m.Len()
	}
	if offset != s.Len() {
		t.Fatalf("partition covers %d of %d samples", offset, s.Len())
	}
}

func TestBlocksMatchSplitMonthsUTC(t *testing.T) {
	start := time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)
	s := randSeries(t, start, 15*time.Minute, 366*96, 1)
	assertBlocksMatchSplit(t, s)
}

func TestBlocksMatchSplitMonthsPartialEdges(t *testing.T) {
	// Start mid-month at an odd minute, end mid-month: partial first and
	// last months, boundaries not aligned to the interval grid.
	start := time.Date(2016, time.March, 17, 13, 7, 0, 0, time.UTC)
	for _, interval := range []time.Duration{15 * time.Minute, 7 * time.Minute, time.Hour} {
		s := randSeries(t, start, interval, 5000, 2)
		assertBlocksMatchSplit(t, s)
	}
}

func TestBlocksMatchSplitMonthsZurichDST(t *testing.T) {
	loc, err := time.LoadLocation("Europe/Zurich")
	if err != nil {
		t.Skipf("tzdata unavailable: %v", err)
	}
	// 2016 transitions: spring forward March 27, fall back October 30.
	for _, tc := range []struct {
		name  string
		start time.Time
		n     int
	}{
		{"spring", time.Date(2016, time.February, 15, 0, 0, 0, 0, loc), 90 * 96},
		{"fall", time.Date(2016, time.September, 20, 23, 45, 0, 0, loc), 70 * 96},
		{"year", time.Date(2016, time.January, 1, 0, 0, 0, 0, loc), 366 * 96},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := randSeries(t, tc.start, 15*time.Minute, tc.n, 3)
			assertBlocksMatchSplit(t, s)
		})
	}
}

func TestBlocksMatchSplitMonthsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := time.Date(2015, time.June, 1, 0, 0, 0, 0, time.UTC)
	for trial := 0; trial < 50; trial++ {
		start := base.Add(time.Duration(rng.Intn(400*24*60)) * time.Minute)
		interval := time.Duration(1+rng.Intn(180)) * time.Minute
		n := 1 + rng.Intn(20000)
		s := randSeries(t, start, interval, n, int64(trial))
		assertBlocksMatchSplit(t, s)
	}
}

func TestBlocksEmptySeries(t *testing.T) {
	s := MustNewPower(time.Now(), time.Minute, nil)
	if got := s.Blocks(); len(got) != 0 {
		t.Fatalf("empty series produced %d blocks", len(got))
	}
	if got := s.Months(); got != nil {
		t.Fatalf("empty series produced %d month views", len(got))
	}
}

// TestAppendBlocksPrescanZeroAlloc pins the allocation-free contract of
// the peak prescan: with a reused scratch slice, partitioning a year
// into month blocks and scanning each block's peak must not allocate.
func TestAppendBlocksPrescanZeroAlloc(t *testing.T) {
	start := time.Date(2016, time.January, 1, 0, 0, 0, 0, time.UTC)
	s := randSeries(t, start, 15*time.Minute, 366*96, 7)
	scratch := make([]MonthBlock, 0, 16)
	var sink units.Power
	allocs := testing.AllocsPerRun(100, func() {
		scratch = s.AppendBlocks(scratch)
		for _, b := range scratch {
			if p := b.Peak(); p > sink {
				sink = p
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("prescan allocated %.1f times per run, want 0", allocs)
	}
}
