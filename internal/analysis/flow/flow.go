// Package flow is the intra-procedural branch-join dataflow walk
// shared by the stateful scvet analyzers (lockheld, timerstop,
// respclose). It was hoisted out of lockheld when the concurrency
// analyzers arrived: all three track a "must be released before exit"
// obligation — a lock still held, a timer not yet stopped, a response
// body not yet closed — over the same control-flow shapes (if/else,
// switch, select, loops, early returns), and only the per-statement
// transfer function differs.
//
// The state is a set of string keys with may-hold semantics: a key is
// present when the obligation may be outstanding on some path reaching
// this point. Branches are walked on copies of the entry state and
// joined by union, so a branch that releases and a branch that does
// not join to "may still be outstanding" — the conservative answer for
// every client. A branch that terminates (returns, or transfers
// control unconditionally) contributes nothing to the join. Loop
// bodies are walked once on a copy and unioned back, which
// over-approximates "acquired inside the loop" without fixed-point
// iteration.
//
// Clients supply Hooks: Stmt and Expr implement the transfer function
// and any reporting, Cond lets a client specialize the two arms of an
// if (nil-check pruning for respclose), Exit observes every point
// where control leaves the function (where timerstop and respclose
// report obligations still outstanding), and Select observes select
// statements (where lockheld reports blocking under a lock). Function
// literals are not descended by the walk itself — they run later, in a
// context of their own; clients that care about literals walk them as
// separate function bodies.
package flow

import (
	"go/ast"
	"go/token"
)

// State is the dataflow fact set: key present means the obligation it
// names may be outstanding on some path reaching the current point.
type State map[string]bool

// Copy returns an independent copy of st.
func Copy(st State) State {
	out := make(State, len(st))
	for k := range st {
		out[k] = true
	}
	return out
}

// Union folds src into dst (may-hold join).
func Union(dst, src State) {
	for k := range src {
		dst[k] = true
	}
}

// Hooks are the client's visitors. Every field is optional.
type Hooks struct {
	// Stmt observes each leaf statement (expression, assign, declare,
	// defer, go, send, inc/dec, return) with the state at that point,
	// before the walker's generic expression scan. It implements the
	// client's transfer function and may mutate st. Returning true
	// suppresses the generic Expr scan of the statement's expressions
	// (use when the hook consumed the statement itself, e.g. a
	// mu.Lock() call or a tracked t.Stop()).
	Stmt func(s ast.Stmt, st State) (skipExprs bool)

	// Expr observes each top-level expression position the walker
	// evaluates (conditions, call statements, assignment sides, return
	// results, channel operands). The client inspects the subtree
	// itself, typically pruning function literals.
	Expr func(e ast.Expr, st State)

	// Select observes each select statement before its cases are
	// walked as branches.
	Select func(s *ast.SelectStmt, st State)

	// Cond observes an if condition together with the two branch entry
	// states (already copied from the state at the condition). A client
	// may specialize them — e.g. drop a tracked response from the
	// branch where its variable is known nil. When the if has no else,
	// elseSt is the fall-through state.
	Cond func(cond ast.Expr, thenSt, elseSt State)

	// Exit observes each point where control leaves the function: every
	// return statement (after its result expressions were scanned) and
	// the end of the body when it may fall through.
	Exit func(pos token.Pos, st State)

	// WalkComm, when set, walks each select case's communication
	// statement (the send or receive after `case`) at the head of that
	// case's branch, so sends and receives in select headers feed the
	// transfer function. Off by default to preserve lockheld's
	// original semantics (it reports the blocking select as a whole).
	WalkComm bool
}

// Walk runs the dataflow walk over a function body with the given
// entry state, which it mutates in place.
func Walk(body *ast.BlockStmt, entry State, h Hooks) {
	if body == nil {
		return
	}
	w := &walker{h: h}
	if !w.stmts(body.List, entry) && h.Exit != nil {
		h.Exit(body.Rbrace, entry)
	}
}

type walker struct {
	h Hooks
}

// stmts walks a statement list in order, mutating st as obligations
// are acquired and released, and returns true if the list always
// terminates (ends in return or an unconditional control transfer).
func (w *walker) stmts(list []ast.Stmt, st State) bool {
	for _, s := range list {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

// leaf dispatches a leaf statement: client hook first, then the
// generic expression scan unless the hook consumed the statement.
func (w *walker) leaf(s ast.Stmt, st State, exprs ...ast.Expr) {
	if w.h.Stmt != nil && w.h.Stmt(s, st) {
		return
	}
	for _, e := range exprs {
		w.expr(e, st)
	}
}

func (w *walker) expr(e ast.Expr, st State) {
	if e != nil && w.h.Expr != nil {
		w.h.Expr(e, st)
	}
}

// stmt walks one statement; the bool result reports "control never
// proceeds past this statement".
func (w *walker) stmt(s ast.Stmt, st State) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.leaf(s, st, s.X)
	case *ast.DeferStmt:
		// Deferred work runs at return; only the client knows whether it
		// discharges an obligation (a deferred Unlock keeps the lock
		// held to the end, a deferred Stop releases the timer on every
		// exit). The generic scan never descends a defer.
		if w.h.Stmt != nil {
			w.h.Stmt(s, st)
		}
	case *ast.GoStmt:
		// The spawned goroutine runs in a context of its own; only the
		// call's arguments are evaluated here and now.
		if !(w.h.Stmt != nil && w.h.Stmt(s, st)) {
			for _, arg := range s.Call.Args {
				w.expr(arg, st)
			}
		}
	case *ast.SendStmt:
		w.leaf(s, st, s.Chan, s.Value)
	case *ast.AssignStmt:
		exprs := make([]ast.Expr, 0, len(s.Rhs)+len(s.Lhs))
		exprs = append(exprs, s.Rhs...)
		exprs = append(exprs, s.Lhs...)
		w.leaf(s, st, exprs...)
	case *ast.DeclStmt:
		var exprs []ast.Expr
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					exprs = append(exprs, vs.Values...)
				}
			}
		}
		w.leaf(s, st, exprs...)
	case *ast.IncDecStmt:
		w.leaf(s, st, s.X)
	case *ast.ReturnStmt:
		w.leaf(s, st, s.Results...)
		if w.h.Exit != nil {
			w.h.Exit(s.Pos(), st)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto: stop tracking this list
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.expr(s.Cond, st)
		thenSt, elseSt := Copy(st), Copy(st)
		if w.h.Cond != nil {
			w.h.Cond(s.Cond, thenSt, elseSt)
		}
		exit := State{}
		any := false
		if !w.stmts(s.Body.List, thenSt) {
			Union(exit, thenSt)
			any = true
		}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			if !w.stmts(e.List, elseSt) {
				Union(exit, elseSt)
				any = true
			}
		case *ast.IfStmt:
			if !w.stmt(e, elseSt) {
				Union(exit, elseSt)
				any = true
			}
		case nil:
			Union(exit, elseSt) // fall-through carries the else-side state
			any = true
		}
		if any {
			replace(st, exit)
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var bodyBlk *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				w.stmt(sw.Init, st)
			}
			if sw.Tag != nil {
				w.expr(sw.Tag, st)
			}
			bodyBlk = sw.Body
		} else {
			ts := s.(*ast.TypeSwitchStmt)
			if ts.Init != nil {
				w.stmt(ts.Init, st)
			}
			bodyBlk = ts.Body
		}
		var branches [][]ast.Stmt
		for _, c := range body(bodyBlk) {
			if cc, ok := c.(*ast.CaseClause); ok {
				branches = append(branches, cc.Body)
			}
		}
		w.branchJoin(branches, st, true)
	case *ast.SelectStmt:
		if w.h.Select != nil {
			w.h.Select(s, st)
		}
		var branches [][]ast.Stmt
		for _, c := range body(s.Body) {
			if cc, ok := c.(*ast.CommClause); ok {
				b := cc.Body
				if w.h.WalkComm && cc.Comm != nil {
					b = append([]ast.Stmt{cc.Comm}, b...)
				}
				branches = append(branches, b)
			}
		}
		w.branchJoin(branches, st, true)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		loop := Copy(st)
		w.stmts(s.Body.List, loop)
		if s.Post != nil {
			w.stmt(s.Post, loop)
		}
		Union(st, loop)
	case *ast.RangeStmt:
		w.expr(s.X, st)
		loop := Copy(st)
		w.stmts(s.Body.List, loop)
		Union(st, loop)
	}
	return false
}

// branchJoin walks each branch on a copy of the entry state and joins
// the survivors: a branch that terminates contributes nothing; the
// rest contribute the union of their exit states, plus the entry state
// itself when the construct may be skipped entirely (non-exhaustive
// cases).
func (w *walker) branchJoin(branches [][]ast.Stmt, st State, mayFallThrough bool) {
	exit := State{}
	if mayFallThrough {
		Union(exit, st)
	}
	any := mayFallThrough
	for _, b := range branches {
		bst := Copy(st)
		if !w.stmts(b, bst) {
			Union(exit, bst)
			any = true
		}
	}
	if any {
		replace(st, exit)
	}
}

func replace(dst, src State) {
	for k := range dst {
		delete(dst, k)
	}
	Union(dst, src)
}

func body(b *ast.BlockStmt) []ast.Stmt {
	if b == nil {
		return nil
	}
	return b.List
}
