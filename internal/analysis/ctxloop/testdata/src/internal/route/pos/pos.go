// Package pos holds clock-wait violations ctxloop must flag: router
// background loops that block on the clock without polling ctx leak
// their goroutines past shutdown.
package pos

import (
	"context"
	"time"
)

// A health poller that sleeps without consulting ctx never exits.
func SleepPoller(ctx context.Context, probe func() bool) {
	for { // want "loop blocks on the clock but never polls ctx"
		time.Sleep(50 * time.Millisecond)
		probe()
	}
}

// A bare ticker receive carries the same obligation.
func TickerPoller(ctx context.Context, t *time.Ticker, probe func() bool) {
	for { // want "loop blocks on the clock but never polls ctx"
		<-t.C
		probe()
	}
}

// Ranging over the ticker channel is still a clock wait.
func RangePoller(ctx context.Context, t *time.Ticker, probe func() bool) {
	for range t.C { // want "loop blocks on the clock but never polls ctx"
		probe()
	}
}
