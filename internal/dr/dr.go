// Package dr implements the supercomputing-center side of demand
// response: the load-management strategies a site can deploy when its ESP
// dispatches an event, the operational-cost accounting that decides
// whether participating is worth it, and the "good neighbor" notification
// protocol the paper reports (sites proactively phoning in maintenance
// periods, benchmarks and other events that make their consumption
// deviate from default operation).
//
// Strategies transform a facility load profile in response to dispatched
// events and report their own operational cost — the checkpoint overhead,
// lost compute value or generator fuel that the paper identifies as the
// reason "the economic incentive offered through tariffs and DR programs
// is not high enough to alter operation strategies in SCs".
package dr

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/contract"
	"repro/internal/forecast"
	"repro/internal/market"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// Response is a strategy's answer to a set of dispatched events.
type Response struct {
	// Load is the modified facility profile.
	Load *timeseries.PowerSeries
	// CurtailedEnergy is the total event-window reduction achieved.
	CurtailedEnergy units.Energy
	// OpCost is the strategy's own operational cost (lost compute,
	// checkpoint overhead, generator fuel).
	OpCost units.Money
}

// Strategy is one SC load-management capability.
type Strategy interface {
	// Name identifies the strategy in reports and ablations.
	Name() string
	// Respond applies the strategy to the baseline load for the given
	// events.
	Respond(baseline *timeseries.PowerSeries, events []market.Event) (*Response, error)
}

// inEvent reports whether instant t falls inside any event.
func inEvent(t time.Time, events []market.Event) bool {
	for _, e := range events {
		if !t.Before(e.Start) && t.Before(e.End()) {
			return true
		}
	}
	return false
}

// CapStrategy clamps facility power to Cap during events — the "power
// capping" strategy from the EE HPC survey. OpCostPerKWh prices the
// compute lost to the cap (jobs run slower or wait).
type CapStrategy struct {
	Cap          units.Power
	OpCostPerKWh units.EnergyPrice
}

// Name implements Strategy.
func (s *CapStrategy) Name() string { return fmt.Sprintf("power-cap(%s)", s.Cap) }

// Respond implements Strategy.
func (s *CapStrategy) Respond(baseline *timeseries.PowerSeries, events []market.Event) (*Response, error) {
	if s.Cap <= 0 {
		return nil, errors.New("dr: cap must be positive")
	}
	if s.OpCostPerKWh < 0 {
		return nil, errors.New("dr: op cost must be non-negative")
	}
	samples := make([]units.Power, baseline.Len())
	var curtailed units.Energy
	h := baseline.Interval().Hours()
	for i := 0; i < baseline.Len(); i++ {
		p := baseline.At(i)
		if inEvent(baseline.TimeAt(i), events) && p > s.Cap {
			curtailed += units.Energy(float64(p-s.Cap) * h)
			p = s.Cap
		}
		samples[i] = p
	}
	load, err := timeseries.NewPower(baseline.Start(), baseline.Interval(), samples)
	if err != nil {
		return nil, err
	}
	return &Response{
		Load:            load,
		CurtailedEnergy: curtailed,
		OpCost:          s.OpCostPerKWh.Cost(curtailed),
	}, nil
}

// ShedStrategy drops a fixed fraction of instantaneous load during
// events — the LANL-style sheddable office/support load that does not
// touch the compute mission. OpCostPerKWh prices occupant impact.
type ShedStrategy struct {
	Fraction     float64
	OpCostPerKWh units.EnergyPrice
}

// Name implements Strategy.
func (s *ShedStrategy) Name() string { return fmt.Sprintf("shed(%.0f%%)", s.Fraction*100) }

// Respond implements Strategy.
func (s *ShedStrategy) Respond(baseline *timeseries.PowerSeries, events []market.Event) (*Response, error) {
	if s.Fraction <= 0 || s.Fraction > 1 {
		return nil, errors.New("dr: shed fraction must be in (0,1]")
	}
	if s.OpCostPerKWh < 0 {
		return nil, errors.New("dr: op cost must be non-negative")
	}
	samples := make([]units.Power, baseline.Len())
	var curtailed units.Energy
	h := baseline.Interval().Hours()
	for i := 0; i < baseline.Len(); i++ {
		p := baseline.At(i)
		if inEvent(baseline.TimeAt(i), events) {
			cut := units.Power(float64(p) * s.Fraction)
			curtailed += units.Energy(float64(cut) * h)
			p -= cut
		}
		samples[i] = p
	}
	load, err := timeseries.NewPower(baseline.Start(), baseline.Interval(), samples)
	if err != nil {
		return nil, err
	}
	return &Response{Load: load, CurtailedEnergy: curtailed, OpCost: s.OpCostPerKWh.Cost(curtailed)}, nil
}

// ShiftStrategy moves a fraction of event-window energy into the
// RecoverySpan following each event (the checkpoint-and-resume pattern:
// work is not lost, it is delayed and reappears as a rebound). The
// strategy is energy-conserving up to profile boundaries.
type ShiftStrategy struct {
	Fraction     float64
	RecoverySpan time.Duration
	// OpCostPerKWh prices the checkpoint/restart overhead per shifted kWh.
	OpCostPerKWh units.EnergyPrice
}

// Name implements Strategy.
func (s *ShiftStrategy) Name() string {
	return fmt.Sprintf("shift(%.0f%% over %s)", s.Fraction*100, s.RecoverySpan)
}

// Respond implements Strategy.
func (s *ShiftStrategy) Respond(baseline *timeseries.PowerSeries, events []market.Event) (*Response, error) {
	if s.Fraction <= 0 || s.Fraction > 1 {
		return nil, errors.New("dr: shift fraction must be in (0,1]")
	}
	if s.RecoverySpan <= 0 {
		return nil, errors.New("dr: recovery span must be positive")
	}
	if s.OpCostPerKWh < 0 {
		return nil, errors.New("dr: op cost must be non-negative")
	}
	interval := baseline.Interval()
	samples := baseline.Samples()
	h := interval.Hours()
	var shifted units.Energy
	for _, e := range events {
		// Collect the energy removed during this event.
		var removed float64 // kWh
		for i := 0; i < len(samples); i++ {
			ts := baseline.TimeAt(i)
			if !ts.Before(e.Start) && ts.Before(e.End()) {
				cut := float64(samples[i]) * s.Fraction
				samples[i] -= units.Power(cut)
				removed += cut * h
			}
		}
		if removed == 0 {
			continue
		}
		shifted += units.Energy(removed)
		// Spread it uniformly over the recovery span after the event.
		recIntervals := int(s.RecoverySpan / interval)
		if recIntervals < 1 {
			recIntervals = 1
		}
		addPower := removed / (float64(recIntervals) * h)
		startIdx, ok := baseline.IndexAt(e.End())
		if !ok {
			continue // recovery starts past the profile; energy leaves the window
		}
		for k := 0; k < recIntervals && startIdx+k < len(samples); k++ {
			samples[startIdx+k] += units.Power(addPower)
		}
	}
	load, err := timeseries.NewPower(baseline.Start(), interval, samples)
	if err != nil {
		return nil, err
	}
	return &Response{Load: load, CurtailedEnergy: shifted, OpCost: s.OpCostPerKWh.Cost(shifted)}, nil
}

// GenStrategy runs on-site generation during events, netting up to
// Capacity off the metered load — the LANL configuration ("they have
// on-site generation and participate in generation and voltage control
// programs"). FuelCostPerKWh prices the generated energy.
type GenStrategy struct {
	Capacity       units.Power
	FuelCostPerKWh units.EnergyPrice
}

// Name implements Strategy.
func (s *GenStrategy) Name() string { return fmt.Sprintf("onsite-gen(%s)", s.Capacity) }

// Respond implements Strategy.
func (s *GenStrategy) Respond(baseline *timeseries.PowerSeries, events []market.Event) (*Response, error) {
	if s.Capacity <= 0 {
		return nil, errors.New("dr: generation capacity must be positive")
	}
	if s.FuelCostPerKWh < 0 {
		return nil, errors.New("dr: fuel cost must be non-negative")
	}
	samples := make([]units.Power, baseline.Len())
	var generated units.Energy
	h := baseline.Interval().Hours()
	for i := 0; i < baseline.Len(); i++ {
		p := baseline.At(i)
		if inEvent(baseline.TimeAt(i), events) {
			g := units.MinPower(s.Capacity, p)
			generated += units.Energy(float64(g) * h)
			p -= g
		}
		samples[i] = p
	}
	load, err := timeseries.NewPower(baseline.Start(), baseline.Interval(), samples)
	if err != nil {
		return nil, err
	}
	return &Response{Load: load, CurtailedEnergy: generated, OpCost: s.FuelCostPerKWh.Cost(generated)}, nil
}

// Evaluation is the full economics of one DR participation decision.
type Evaluation struct {
	Strategy string
	// BaselineBill and ResponseBill are the contract bills without and
	// with the response applied.
	BaselineBill *contract.Bill
	ResponseBill *contract.Bill
	// Settlement is the program payout for the delivered reduction.
	Settlement *market.Settlement
	// OpCost is the strategy's own cost.
	OpCost units.Money
	// NetBenefit = bill savings + settlement net − op cost. The paper's
	// core finding is that this is usually not high enough to alter SC
	// operation; this field is that claim made computable.
	NetBenefit units.Money
}

// BillSavings returns baseline minus response bill totals.
func (e *Evaluation) BillSavings() units.Money {
	return e.BaselineBill.Total - e.ResponseBill.Total
}

// WorthIt reports whether participation pays.
func (e *Evaluation) WorthIt() bool { return e.NetBenefit > 0 }

// Evaluate runs the full decision: apply the strategy to the baseline,
// re-bill under the contract, settle with the program, subtract
// operational cost.
func Evaluate(
	c *contract.Contract,
	baseline *timeseries.PowerSeries,
	strategy Strategy,
	program *market.Program,
	events []market.Event,
	in contract.BillingInput,
) (*Evaluation, error) {
	if strategy == nil {
		return nil, errors.New("dr: nil strategy")
	}
	resp, err := strategy.Respond(baseline, events)
	if err != nil {
		return nil, err
	}
	// One compiled engine bills both the baseline and the response.
	eng, err := contract.NewEngine(c)
	if err != nil {
		return nil, err
	}
	baseBill, err := eng.Bill(baseline, in)
	if err != nil {
		return nil, err
	}
	respBill, err := eng.Bill(resp.Load, in)
	if err != nil {
		return nil, err
	}
	var settlement *market.Settlement
	if program != nil {
		settlement, err = program.Settle(baseline, resp.Load, events)
		if err != nil {
			return nil, err
		}
	} else {
		settlement = &market.Settlement{}
	}
	ev := &Evaluation{
		Strategy:     strategy.Name(),
		BaselineBill: baseBill,
		ResponseBill: respBill,
		Settlement:   settlement,
		OpCost:       resp.OpCost,
	}
	ev.NetBenefit = ev.BillSavings() + settlement.Net - resp.OpCost
	return ev, nil
}

// Notification is one good-neighbor call to the ESP.
type Notification struct {
	// SendAt is when the site should notify the ESP (lead time before
	// the deviation).
	SendAt time.Time
	// Deviation is what is being reported.
	Deviation forecast.Deviation
	// Reason is the operator-supplied cause ("benchmark run",
	// "maintenance", ...); empty for unexplained deviations.
	Reason string
}

// String renders the call as an operator would log it.
func (n Notification) String() string {
	r := n.Reason
	if r == "" {
		r = "unexplained deviation"
	}
	return fmt.Sprintf("[%s] notify ESP: %s (%s)", n.SendAt.Format("2006-01-02 15:04"), n.Deviation, r)
}

// GoodNeighborPolicy converts detected deviations into ESP notifications.
// The paper: "SCs act proactively as allies towards the ESPs by reporting
// (i.e. via phone) maintenance periods, benchmarks and other events which
// make their power consumption deviate significantly from default
// operation"; six of ten sites do this, some by contract, some as good
// business practice.
type GoodNeighborPolicy struct {
	// LeadTime is how far ahead of a planned deviation the site calls.
	LeadTime time.Duration
	// MinDeviation filters reportable deviations.
	MinDeviation units.Power
	// ByContract records whether reporting is a contractual obligation
	// (vs. voluntary good business practice).
	ByContract bool
}

// Notify builds the notification schedule for a set of deviations, each
// optionally annotated by a reason lookup (may be nil).
func (p GoodNeighborPolicy) Notify(devs []forecast.Deviation, reasonFor func(forecast.Deviation) string) []Notification {
	var out []Notification
	for _, d := range devs {
		if d.Peak < p.MinDeviation {
			continue
		}
		reason := ""
		if reasonFor != nil {
			reason = reasonFor(d)
		}
		out = append(out, Notification{
			SendAt:    d.Start.Add(-p.LeadTime),
			Deviation: d,
			Reason:    reason,
		})
	}
	return out
}
