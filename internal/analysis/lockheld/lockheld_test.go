package lockheld_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockheld"
)

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockheld.Analyzer,
		"locktest/pos",
		"locktest/neg",
	)
}
