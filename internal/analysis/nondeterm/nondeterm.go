// Package nondeterm forbids nondeterminism in the billing core.
//
// Invariant guarded: the same contract spec and load series must
// produce byte-identical bills on every run (the repo's golden tests
// depend on it, and the paper's comparisons are meaningless without
// it). Inside internal/billing, internal/contract, internal/feed and
// internal/resilience that means: no wall-clock reads (time.Now,
// time.Since — clocks are injected, so taking a *reference* to
// time.Now as a default is fine, calling it is not), no process-seeded
// global math/rand (construct a seeded generator with rand.New /
// rand.NewSource instead), and no output produced while ranging over a
// map (collect the keys, sort, then emit).
package nondeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var scopes = []string{
	"internal/billing",
	"internal/contract",
	"internal/feed",
	"internal/resilience",
}

// seededConstructors are the math/rand functions that build an
// explicitly seeded generator; everything else at package level draws
// from the process-global source.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

var Analyzer = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: "forbid wall-clock reads, global math/rand, and map-iteration-ordered " +
		"output in the deterministic billing packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg, scopes...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
			pass.Reportf(call.Pos(),
				"time.%s() reads the wall clock in deterministic billing code; inject a clock (func() time.Time) and call that",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand are fine: the generator was built from
		// an explicit seed. Package-level functions draw from the
		// process-global, per-run source.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return
		}
		if seededConstructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"global %s.%s() is process-seeded and nondeterministic; use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
			fn.Pkg().Name(), fn.Name())
	}
}

// checkMapRange flags a range over a map whose body emits output: the
// iteration order leaks into what the user (or a golden file) sees.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if why := emitsOutput(pass.TypesInfo, call); why != "" {
			pass.Reportf(call.Pos(),
				"%s inside range over map has nondeterministic order; collect keys, sort, then emit", why)
			return false
		}
		return true
	})
}

// emitsOutput describes a call that writes user-visible output, or "".
func emitsOutput(info *types.Info, call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return "fmt." + name
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return "(" + types.TypeString(sig.Recv().Type(), nil) + ")." + name
		}
	}
	return ""
}
