// Out of scope: timerstop only patrols the fleet-path packages, so a
// leaky timer here must not diagnose.
package sched

import "time"

func leakElsewhere(d time.Duration) {
	t := time.NewTimer(d)
	<-t.C
}

func tickElsewhere(d time.Duration) <-chan time.Time {
	return time.Tick(d)
}
