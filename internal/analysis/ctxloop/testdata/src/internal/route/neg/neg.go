// Package neg holds compliant router loop shapes that must stay
// silent.
package neg

import (
	"context"
	"time"
)

// The canonical poll loop: ticker and ctx.Done() in one select — the
// shape the router's health poller uses.
func PollLoop(ctx context.Context, t *time.Ticker, probe func() bool) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			probe()
		}
	}
}

// Forwarding ctx into the per-tick work counts as polling (the callee
// owns the cancellation check).
func DelegatedWait(ctx context.Context, t *time.Ticker, probe func(context.Context) bool) {
	for {
		<-t.C
		if !probe(ctx) {
			return
		}
	}
}

// Receiving from a struct{} stop channel is an accepted cancellation
// vocabulary too.
func StopChannelWait(ctx context.Context, stop chan struct{}, t *time.Ticker, probe func() bool) {
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			probe()
		}
	}
}

// The hedge dispatch shape the router's proxy path uses: the select
// waits on the hedge timer and the attempt results, but ctx.Done()
// sits alongside them, so a client hangup or an expired deadline ends
// the wait immediately.
func HedgeLoop(ctx context.Context, hedge *time.Timer, results chan int, launch func()) (int, error) {
	for {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-hedge.C:
			launch()
		case r := <-results:
			return r, nil
		}
	}
}

// No context parameter: helpers with their own lifecycle discipline
// are exempt.
func backgroundFlush(t *time.Ticker, flush func()) {
	for range t.C {
		flush()
	}
}

// A ctx-taking function whose loop never blocks on the clock has
// nothing to answer for (measuring time is not waiting on it).
func CountRecent(ctx context.Context, stamps []time.Time, cutoff time.Time) int {
	n := 0
	for _, ts := range stamps {
		if ts.After(cutoff) {
			n++
		}
	}
	return n
}
