// Package core is the top of the library: it ties the facility, contract,
// grid and demand-response layers into the analyses the paper performs in
// prose — classifying a site's contract against the typology, decomposing
// its bill, quantifying how operation strategies (peak shaving, load
// shifting, DR participation) move the bill, and locating the incentive
// level at which DR participation starts to pay (the paper's central
// "the economic incentive ... is not high enough" claim, made computable).
package core

import (
	"errors"
	"fmt"

	"repro/internal/contract"
	"repro/internal/dr"
	"repro/internal/market"
	"repro/internal/tariff"
	"repro/internal/timeseries"
	"repro/internal/units"
)

// Analysis is the contract-against-load report for one billing period.
type Analysis struct {
	// Profile is the contract's typology classification.
	Profile contract.Profile
	// Bill is the itemized bill for the period.
	Bill *contract.Bill
	// DemandShare is the kW-branch fraction of the bill.
	DemandShare float64
	// LoadFactor is average/peak of the period's load.
	LoadFactor float64
	// EffectiveRate is the all-in average price paid per kWh.
	EffectiveRate units.EnergyPrice
	// Incentives lists, per present tariff kind, the behaviour the
	// contract rewards (the paper's §3.2.1 mapping).
	Incentives []string
}

// Analyze bills one period's load under the contract and derives the
// headline quantities.
func Analyze(c *contract.Contract, load *timeseries.PowerSeries, in contract.BillingInput) (*Analysis, error) {
	bill, err := contract.ComputeBill(c, load, in)
	if err != nil {
		return nil, err
	}
	profile := contract.Classify(c)
	a := &Analysis{
		Profile:     profile,
		Bill:        bill,
		DemandShare: bill.DemandShare(),
		LoadFactor:  load.LoadFactor(),
	}
	if e := bill.Energy; e > 0 {
		a.EffectiveRate = units.EnergyPrice(bill.Total.Float() / float64(e))
	}
	for _, k := range []tariff.Kind{tariff.Fixed, tariff.TimeOfUse, tariff.Dynamic} {
		present := (k == tariff.Fixed && profile.FixedTariff) ||
			(k == tariff.TimeOfUse && profile.TOUTariff) ||
			(k == tariff.Dynamic && profile.DynamicTariff)
		if present {
			a.Incentives = append(a.Incentives, fmt.Sprintf("%s: %s", k, k.Incentive()))
		}
	}
	return a, nil
}

// PeakShave caps the load at (1−fraction) of its current peak — the
// simplest model of the "energy and power-aware" peak management the
// paper recommends SCs pursue against demand charges.
func PeakShave(load *timeseries.PowerSeries, fraction float64) (*timeseries.PowerSeries, error) {
	if fraction < 0 || fraction >= 1 {
		return nil, errors.New("core: shave fraction must be in [0,1)")
	}
	peak, _, err := load.Peak()
	if err != nil {
		return nil, err
	}
	limit := units.Power(float64(peak) * (1 - fraction))
	return load.ClampAbove(limit), nil
}

// ShaveResult quantifies one peak-shave what-if.
type ShaveResult struct {
	Fraction float64
	// BaselineTotal and ShavedTotal are the period bills.
	BaselineTotal units.Money
	ShavedTotal   units.Money
	// Savings = baseline − shaved.
	Savings units.Money
	// EnergyLost is the consumption removed by the cap (compute the
	// facility did not run).
	EnergyLost units.Energy
}

// PeakShaveSweep evaluates a set of shave fractions against a contract —
// the E2/E3 harness core.
func PeakShaveSweep(c *contract.Contract, load *timeseries.PowerSeries, fractions []float64, in contract.BillingInput) ([]ShaveResult, error) {
	// One compiled engine prices the baseline and every shaved variant.
	eng, err := contract.NewEngine(c)
	if err != nil {
		return nil, err
	}
	baseBill, err := eng.Bill(load, in)
	if err != nil {
		return nil, err
	}
	out := make([]ShaveResult, 0, len(fractions))
	for _, f := range fractions {
		shaved, err := PeakShave(load, f)
		if err != nil {
			return nil, err
		}
		bill, err := eng.Bill(shaved, in)
		if err != nil {
			return nil, err
		}
		out = append(out, ShaveResult{
			Fraction:      f,
			BaselineTotal: baseBill.Total,
			ShavedTotal:   bill.Total,
			Savings:       baseBill.Total - bill.Total,
			EnergyLost:    load.Energy() - shaved.Energy(),
		})
	}
	return out, nil
}

// TariffComparison prices the same load under several tariffs — the E10
// harness core (fixed vs TOU vs dynamic exposure).
type TariffComparison struct {
	Kind tariff.Kind
	Name string
	Cost units.Money
}

// CompareTariffs bills the load under each tariff.
func CompareTariffs(load *timeseries.PowerSeries, tariffs ...tariff.Tariff) ([]TariffComparison, error) {
	if len(tariffs) == 0 {
		return nil, errors.New("core: need at least one tariff to compare")
	}
	out := make([]TariffComparison, 0, len(tariffs))
	for _, t := range tariffs {
		out = append(out, TariffComparison{Kind: t.Kind(), Name: t.Describe(), Cost: t.Cost(load)})
	}
	return out, nil
}

// BreakEvenIncentive finds, by bisection, the per-kWh DR energy
// incentive at which participating with the given strategy becomes
// profitable (net benefit crosses zero). Returns an error if even the
// hi incentive does not pay (the strategy's own cost dominates) or if
// participation pays even at lo (break-even below the bracket).
//
// This is the quantity behind the paper's conclusion that "the economic
// incentive in performing demand-side management ... is likely too low to
// accommodate the costly depreciation on hardware in SCs".
func BreakEvenIncentive(
	c *contract.Contract,
	baseline *timeseries.PowerSeries,
	strategy dr.Strategy,
	events []market.Event,
	committed units.Power,
	lo, hi units.EnergyPrice,
	in contract.BillingInput,
) (units.EnergyPrice, error) {
	if lo < 0 || hi <= lo {
		return 0, errors.New("core: need 0 <= lo < hi")
	}
	netAt := func(incentive units.EnergyPrice) (units.Money, error) {
		program := &market.Program{
			Kind:               market.EmergencyDR,
			CommittedReduction: committed,
			EnergyIncentive:    incentive,
		}
		ev, err := dr.Evaluate(c, baseline, strategy, program, events, in)
		if err != nil {
			return 0, err
		}
		return ev.NetBenefit, nil
	}
	nLo, err := netAt(lo)
	if err != nil {
		return 0, err
	}
	if nLo > 0 {
		return 0, fmt.Errorf("core: participation already pays at %v", lo)
	}
	nHi, err := netAt(hi)
	if err != nil {
		return 0, err
	}
	if nHi <= 0 {
		return 0, fmt.Errorf("core: participation does not pay even at %v", hi)
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		n, err := netAt(mid)
		if err != nil {
			return 0, err
		}
		if n > 0 {
			hi = mid
		} else {
			lo = mid
		}
		if hi-lo < 1e-6 {
			break
		}
	}
	return hi, nil
}

// Scenario bundles one full facility-under-contract study.
type Scenario struct {
	// Contract the site signed.
	Contract *contract.Contract
	// Load is the multi-month facility profile.
	Load *timeseries.PowerSeries
	// Billing carries historical peak and declared grid emergencies.
	Billing contract.BillingInput
	// Program and Strategy, when both set, add a DR participation
	// evaluated over Events.
	Program  *market.Program
	Strategy dr.Strategy
	Events   []market.Event
}

// ScenarioResult is the outcome of Run.
type ScenarioResult struct {
	// Bills are the per-calendar-month bills.
	Bills []*contract.Bill
	// Total is the sum over months.
	Total units.Money
	// DR is the participation evaluation (nil when not configured).
	DR *dr.Evaluation
}

// Run executes the scenario.
func (s *Scenario) Run() (*ScenarioResult, error) {
	if s.Contract == nil || s.Load == nil {
		return nil, errors.New("core: scenario needs a contract and a load")
	}
	bills, err := contract.BillMonths(s.Contract, s.Load, s.Billing)
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{Bills: bills, Total: contract.TotalOf(bills)}
	if s.Program != nil && s.Strategy != nil {
		ev, err := dr.Evaluate(s.Contract, s.Load, s.Strategy, s.Program, s.Events, s.Billing)
		if err != nil {
			return nil, err
		}
		res.DR = ev
	}
	return res, nil
}
