package exp

import (
	"strings"
	"testing"

	"repro/internal/survey"
)

func TestE16AdvisesEverySite(t *testing.T) {
	rows, err := RunE16()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	// RNP distribution carried through: 1 SC / 6 internal / 3 external.
	counts := map[survey.RNP]int{}
	renegotiable := 0
	for _, r := range rows {
		counts[r.RNP]++
		if r.Renegotiate {
			renegotiable++
			if r.Saving <= 0 {
				t.Errorf("site %d flagged without a positive saving", r.Site)
			}
		}
		if r.CurrentAnnual <= 0 {
			t.Errorf("site %d current cost must be positive", r.Site)
		}
	}
	if counts[survey.RNPSupercomputingCenter] != 1 || counts[survey.RNPInternal] != 6 || counts[survey.RNPExternal] != 3 {
		t.Errorf("RNP counts = %v", counts)
	}
	// The paper's CSCS story needs at least some sites to benefit — and
	// the one SC-negotiated site (Site 6, the CSCS analogue) must be
	// among the candidates the advisor looks at.
	if renegotiable == 0 {
		t.Error("no site benefits — the advisor scenario is degenerate")
	}
}

func TestE16SiteSixBenefitsLikeCSCS(t *testing.T) {
	rows, err := RunE16()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Site != 6 {
			continue
		}
		if r.RNP != survey.RNPSupercomputingCenter {
			t.Fatal("site 6 should be the SC-negotiated site")
		}
		if !r.Renegotiate {
			t.Error("the SC-negotiated site should benefit from restructuring (the CSCS story)")
		}
		return
	}
	t.Fatal("site 6 missing")
}

func TestE16Exhibit(t *testing.T) {
	e, err := Run("E16")
	if err != nil {
		t.Fatal(err)
	}
	out := e.Render()
	for _, want := range []string{"Site 1", "Site 10", "SC", "Internal", "External", "governance gap"} {
		if !strings.Contains(out, want) {
			t.Errorf("E16 missing %q", want)
		}
	}
}
